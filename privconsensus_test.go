package privconsensus

import (
	"context"
	"math"
	"net"
	"testing"
	"time"
)

// testEngine builds a small deterministic engine for tests.
func testEngine(t *testing.T, users, classes int) *Engine {
	t.Helper()
	cfg := DefaultConfig(users)
	cfg.Classes = classes
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.Seed = 42
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

// oneHot returns a one-hot vote vector.
func oneHot(classes, label int) []float64 {
	v := make([]float64, classes)
	v[label] = 1
	return v
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Error("expected error for zero users")
	}
	bad := DefaultConfig(5)
	bad.ThresholdFrac = 2
	if _, err := NewEngine(bad); err == nil {
		t.Error("expected error for threshold > 1")
	}
	bad = DefaultConfig(5)
	bad.PaillierBits = 8
	if _, err := NewEngine(bad); err == nil {
		t.Error("expected error for tiny Paillier key")
	}
}

func TestEngineLabelInstanceConsensus(t *testing.T) {
	e := testEngine(t, 5, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	votes := [][]float64{
		oneHot(4, 2), oneHot(4, 2), oneHot(4, 2), oneHot(4, 2), oneHot(4, 1),
	}
	out, err := e.LabelInstance(ctx, votes)
	if err != nil {
		t.Fatalf("LabelInstance: %v", err)
	}
	if !out.Consensus || out.Label != 2 {
		t.Fatalf("outcome %+v, want consensus on 2", out)
	}
}

func TestEngineLabelInstanceNoConsensus(t *testing.T) {
	e := testEngine(t, 5, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	votes := [][]float64{
		oneHot(4, 0), oneHot(4, 1), oneHot(4, 2), oneHot(4, 3), oneHot(4, 0),
	}
	out, err := e.LabelInstance(ctx, votes)
	if err != nil {
		t.Fatalf("LabelInstance: %v", err)
	}
	if out.Consensus || out.Label != -1 {
		t.Fatalf("outcome %+v, want no consensus", out)
	}
}

func TestEngineVoteValidation(t *testing.T) {
	e := testEngine(t, 3, 4)
	if _, err := e.SubmissionFor(0, []float64{1, 0}); err == nil {
		t.Error("expected error for wrong vote length")
	}
	if _, err := e.SubmissionFor(0, []float64{2, 0, 0, 0}); err == nil {
		t.Error("expected error for vote > 1")
	}
	if _, err := e.SubmissionFor(0, []float64{-0.5, 0, 0, 0}); err == nil {
		t.Error("expected error for negative vote")
	}
	ctx := context.Background()
	if _, err := e.LabelInstance(ctx, [][]float64{oneHot(4, 0)}); err == nil {
		t.Error("expected error for wrong user count")
	}
	if _, err := e.runServer(ctx, RoleS1, nil, []*Submission{nil, nil, nil}); err == nil {
		t.Error("expected error for nil submissions")
	}
}

func TestEngineOverTCP(t *testing.T) {
	e := testEngine(t, 3, 3)
	votes := [][]float64{oneHot(3, 1), oneHot(3, 1), oneHot(3, 0)}
	subs := make([]*Submission, len(votes))
	for u, v := range votes {
		s, err := e.SubmissionFor(u, v)
		if err != nil {
			t.Fatal(err)
		}
		subs[u] = s
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	type result struct {
		out *Outcome
		err error
	}
	ch := make(chan result, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			ch <- result{nil, err}
			return
		}
		defer conn.Close()
		out, err := e.RunServer(ctx, RoleS1, conn, subs)
		ch <- result{out, err}
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	out2, err := e.RunServer(ctx, RoleS2, conn, subs)
	if err != nil {
		t.Fatalf("S2 over TCP: %v", err)
	}
	r1 := <-ch
	if r1.err != nil {
		t.Fatalf("S1 over TCP: %v", r1.err)
	}
	if *r1.out != *out2 {
		t.Fatalf("servers disagree over TCP: %+v vs %+v", r1.out, out2)
	}
	if !out2.Consensus || out2.Label != 1 {
		t.Fatalf("TCP outcome %+v, want consensus on 1", out2)
	}
}

func TestEngineLabelInstanceMetered(t *testing.T) {
	e := testEngine(t, 4, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	votes := [][]float64{oneHot(3, 2), oneHot(3, 2), oneHot(3, 2), oneHot(3, 0)}
	out, stats, err := e.LabelInstanceMetered(ctx, votes)
	if err != nil {
		t.Fatalf("LabelInstanceMetered: %v", err)
	}
	if !out.Consensus || out.Label != 2 {
		t.Fatalf("outcome %+v, want consensus on 2", out)
	}
	if len(stats) == 0 {
		t.Fatal("no step stats recorded")
	}
	byStep := map[string]StepStats{}
	for _, s := range stats {
		byStep[s.Step] = s
	}
	cmp, ok := byStep["secure-comparison(4)"]
	if !ok || cmp.BytesSent == 0 {
		t.Errorf("comparison step not metered: %+v", stats)
	}
	bp, ok := byStep["blind-and-permute(3)"]
	if !ok {
		t.Error("blind-and-permute step missing")
	}
	if cmp.BytesSent <= bp.BytesSent {
		t.Errorf("Table II shape violated: comparison %d <= B&P %d", cmp.BytesSent, bp.BytesSent)
	}
}

func TestEngineLabelBatch(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Classes = 3
	cfg.Sigma1, cfg.Sigma2 = 0.5, 0.5
	cfg.Seed = 77
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	batch := [][][]float64{
		{oneHot(3, 0), oneHot(3, 0), oneHot(3, 0), oneHot(3, 0)}, // unanimous
		{oneHot(3, 0), oneHot(3, 1), oneHot(3, 2), oneHot(3, 1)}, // split
	}
	res, err := e.LabelBatch(ctx, batch)
	if err != nil {
		t.Fatalf("LabelBatch: %v", err)
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("expected 2 outcomes, got %d", len(res.Outcomes))
	}
	if !res.Outcomes[0].Consensus {
		t.Error("unanimous batch entry should reach consensus")
	}
	if res.Epsilon <= 0 {
		t.Errorf("batch epsilon not tracked: %+v", res)
	}
	if res.Released < 1 {
		t.Errorf("released count wrong: %+v", res)
	}
}

func TestAccountantFlow(t *testing.T) {
	acc := NewAccountant()
	for i := 0; i < 50; i++ {
		if err := acc.RecordQuery(4); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		if err := acc.RecordRelease(4); err != nil {
			t.Fatal(err)
		}
	}
	eps, alpha, err := acc.Epsilon(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if eps <= 0 || alpha <= 1 {
		t.Errorf("eps=%g alpha=%g", eps, alpha)
	}
	if err := acc.RecordQuery(0); err == nil {
		t.Error("expected error for sigma 0")
	}
}

func TestQueryEpsilonMatchesPaperForm(t *testing.T) {
	sigma1, sigma2, delta := 5.0, 4.0, 1e-6
	eps, err := QueryEpsilon(sigma1, sigma2, delta)
	if err != nil {
		t.Fatal(err)
	}
	c := 9/(2*sigma1*sigma1) + 1/(sigma2*sigma2)
	want := math.Sqrt(2*(9/(sigma1*sigma1)+2/(sigma2*sigma2))*math.Log(1/delta)) + c
	if math.Abs(eps-want) > 1e-12 {
		t.Errorf("QueryEpsilon = %g, want %g", eps, want)
	}
}

func TestPlanNoise(t *testing.T) {
	m, err := PlanNoise(8.19, 1e-6, 200)
	if err != nil {
		t.Fatal(err)
	}
	if m <= 0 {
		t.Errorf("multiplier %g", m)
	}
	acc := NewAccountant()
	for i := 0; i < 200; i++ {
		if err := acc.RecordQuery(m); err != nil {
			t.Fatal(err)
		}
		if err := acc.RecordRelease(m); err != nil {
			t.Fatal(err)
		}
	}
	eps, _, err := acc.Epsilon(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if eps > 8.19*1.0001 {
		t.Errorf("planned noise overspends: eps=%g", eps)
	}
}

func TestRunPATEMulticlass(t *testing.T) {
	res, err := RunPATE(PATEConfig{
		Dataset:      "mnist",
		Scale:        0.008,
		Users:        8,
		Division:     "even",
		Queries:      60,
		UseConsensus: true,
		Sigma1:       3,
		Sigma2:       3,
		Seed:         5,
		Epochs:       8,
	})
	if err != nil {
		t.Fatalf("RunPATE: %v", err)
	}
	if res.UserAccMean <= 0.3 {
		t.Errorf("teachers too weak: %+v", res)
	}
	if res.Retention <= 0 || res.Retention > 1 {
		t.Errorf("retention out of range: %+v", res)
	}
	if res.Epsilon <= 0 {
		t.Errorf("epsilon missing: %+v", res)
	}
}

func TestRunPATECelebA(t *testing.T) {
	res, err := RunPATE(PATEConfig{
		Dataset:      "celeba",
		Scale:        0.002,
		Users:        6,
		Division:     "2-8",
		Queries:      20,
		UseConsensus: true,
		Sigma1:       2,
		Sigma2:       2,
		Seed:         6,
		Epochs:       4,
	})
	if err != nil {
		t.Fatalf("RunPATE celeba: %v", err)
	}
	if res.LabelAccuracy <= 0.5 {
		t.Errorf("celeba label accuracy %g", res.LabelAccuracy)
	}
	if res.MajorityAcc == 0 || res.MinorityAcc == 0 {
		t.Errorf("group accuracies missing: %+v", res)
	}
}

func TestRunPATEValidation(t *testing.T) {
	if _, err := RunPATE(PATEConfig{Dataset: "bogus", Scale: 0.01, Users: 3, Queries: 10}); err == nil {
		t.Error("expected error for unknown dataset")
	}
	if _, err := RunPATE(PATEConfig{Dataset: "mnist", Scale: 0.01, Users: 3, Queries: 10, Division: "5-5"}); err == nil {
		t.Error("expected error for unknown division")
	}
	if _, err := RunPATE(PATEConfig{Dataset: "mnist", Scale: 0.01, Users: 3, Queries: 10, VoteType: "fuzzy"}); err == nil {
		t.Error("expected error for unknown vote type")
	}
}
