package dataset

import (
	"math"
	"math/rand"
	"testing"

	"github.com/privconsensus/privconsensus/internal/ml"
)

func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestSpecsValidate(t *testing.T) {
	for _, s := range []Spec{MNISTLike(), SVHNLike(), CelebALike()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	if err := (Spec{Classes: 1, Dim: 2, Noise: 1, Train: 10, Test: 10}).Validate(); err == nil {
		t.Error("expected error for 1 class")
	}
	if err := CelebAAttrSpec().Validate(); err != nil {
		t.Errorf("CelebAAttrSpec: %v", err)
	}
	bad := CelebAAttrSpec()
	bad.PositiveRate = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("expected error for positive rate > 1")
	}
}

func TestScaled(t *testing.T) {
	s := MNISTLike().Scaled(0.01)
	if s.Train != 600 || s.Test != 100 {
		t.Errorf("scaled sizes %d/%d", s.Train, s.Test)
	}
	tiny := MNISTLike().Scaled(0.0000001)
	if tiny.Train < 1 || tiny.Test < 1 {
		t.Error("scaling must keep at least one sample")
	}
	a := CelebAAttrSpec().Scaled(0.01)
	if a.Train != 1600 || a.Test != 400 {
		t.Errorf("scaled attr sizes %d/%d", a.Train, a.Test)
	}
}

func TestGenerateShapes(t *testing.T) {
	rng := testRNG(1)
	spec := MNISTLike().Scaled(0.01)
	train, test, err := Generate(rng, spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if train.Len() != spec.Train || test.Len() != spec.Test {
		t.Errorf("sizes %d/%d, want %d/%d", train.Len(), test.Len(), spec.Train, spec.Test)
	}
	if err := train.Validate(); err != nil {
		t.Errorf("train invalid: %v", err)
	}
	if len(train.X[0]) != spec.Dim {
		t.Errorf("dim %d, want %d", len(train.X[0]), spec.Dim)
	}
	// All classes should appear.
	seen := map[int]bool{}
	for _, y := range train.Labels {
		seen[y] = true
	}
	if len(seen) != spec.Classes {
		t.Errorf("only %d/%d classes present", len(seen), spec.Classes)
	}
}

// Learnability calibration: a model on the full MNIST-like set should be
// strong, the SVHN-like set noticeably harder but still well above chance.
func TestGeneratorDifficultyOrdering(t *testing.T) {
	rng := testRNG(2)
	accOf := func(spec Spec) float64 {
		train, test, err := Generate(rng, spec.Scaled(0.05))
		if err != nil {
			t.Fatal(err)
		}
		m, err := ml.TrainSoftmax(rng, train, ml.DefaultTrainConfig())
		if err != nil {
			t.Fatal(err)
		}
		acc, err := m.Accuracy(test)
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	mnist := accOf(MNISTLike())
	svhn := accOf(SVHNLike())
	if mnist < 0.9 {
		t.Errorf("MNIST-like full-data accuracy %g, want >= 0.9", mnist)
	}
	if svhn < 0.6 {
		t.Errorf("SVHN-like full-data accuracy %g, want >= 0.6", svhn)
	}
	if svhn >= mnist {
		t.Errorf("SVHN-like (%g) should be harder than MNIST-like (%g)", svhn, mnist)
	}
}

func TestGenerateAttrsShapesAndSparsity(t *testing.T) {
	rng := testRNG(3)
	spec := CelebAAttrSpec().Scaled(0.02)
	train, test, err := GenerateAttrs(rng, spec)
	if err != nil {
		t.Fatalf("GenerateAttrs: %v", err)
	}
	if train.Len() != spec.Train || test.Len() != spec.Test {
		t.Errorf("sizes %d/%d", train.Len(), test.Len())
	}
	if len(train.Attrs[0]) != spec.Attrs {
		t.Errorf("attr count %d, want %d", len(train.Attrs[0]), spec.Attrs)
	}
	// Positive rate should be near the target (sparse positives).
	var positives, total int
	for _, attrs := range train.Attrs {
		for _, a := range attrs {
			if a {
				positives++
			}
			total++
		}
	}
	rate := float64(positives) / float64(total)
	if math.Abs(rate-spec.PositiveRate) > 0.05 {
		t.Errorf("positive rate %g, want ~%g", rate, spec.PositiveRate)
	}
}

func TestNormQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413447, 1.0},
		{0.9772499, 2.0},
		{0.0227501, -2.0},
	}
	for _, c := range cases {
		got := normQuantile(c.p)
		if math.Abs(got-c.want) > 1e-4 {
			t.Errorf("normQuantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if !math.IsNaN(normQuantile(0)) || !math.IsNaN(normQuantile(1)) {
		t.Error("quantile at 0/1 should be NaN")
	}
}

func TestPartitionEven(t *testing.T) {
	rng := testRNG(4)
	train, _, err := Generate(rng, MNISTLike().Scaled(0.01))
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionEven(rng, train, 10)
	if err != nil {
		t.Fatalf("PartitionEven: %v", err)
	}
	total := 0
	for u, ds := range part.Users {
		if ds.Len() == 0 {
			t.Errorf("user %d got no data", u)
		}
		total += ds.Len()
	}
	if total != train.Len() {
		t.Errorf("partition loses rows: %d != %d", total, train.Len())
	}
	// Shares within 1 of each other.
	minLen, maxLen := part.Users[0].Len(), part.Users[0].Len()
	for _, ds := range part.Users {
		minLen = min(minLen, ds.Len())
		maxLen = max(maxLen, ds.Len())
	}
	if maxLen-minLen > 1 {
		t.Errorf("uneven even-partition: min %d max %d", minLen, maxLen)
	}
	if _, err := PartitionEven(rng, train, 0); err == nil {
		t.Error("expected error for 0 users")
	}
	if _, err := PartitionEven(rng, train, train.Len()+1); err == nil {
		t.Error("expected error for more users than rows")
	}
}

func TestPartitionUneven(t *testing.T) {
	rng := testRNG(5)
	train, _, err := Generate(rng, MNISTLike().Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	for _, div := range []Division{Division28, Division37, Division46} {
		part, err := PartitionUneven(rng, train, 10, div)
		if err != nil {
			t.Fatalf("PartitionUneven(%v): %v", div, err)
		}
		total := 0
		for _, ds := range part.Users {
			total += ds.Len()
		}
		if total != train.Len() {
			t.Errorf("%v: mass not conserved: %d != %d", div, total, train.Len())
		}
		if len(part.MajorityIdx)+len(part.MinorityIdx) != 10 {
			t.Errorf("%v: group indices don't cover users", div)
		}
		// Majority users individually hold less data than minority users.
		majMax := 0
		for _, u := range part.MajorityIdx {
			majMax = max(majMax, part.Users[u].Len())
		}
		minMin := train.Len()
		for _, u := range part.MinorityIdx {
			minMin = min(minMin, part.Users[u].Len())
		}
		if majMax >= minMin {
			t.Errorf("%v: majority user holds %d rows >= minority user's %d", div, majMax, minMin)
		}
	}
	// Even passthrough.
	part, err := PartitionUneven(rng, train, 10, DivisionEven)
	if err != nil || len(part.MajorityIdx) != 0 {
		t.Errorf("even passthrough: %v, %d majority members", err, len(part.MajorityIdx))
	}
	if _, err := PartitionUneven(rng, train, 1, Division28); err == nil {
		t.Error("expected error for single user")
	}
	if _, err := PartitionUneven(rng, train, 10, Division(99)); err == nil {
		t.Error("expected error for unknown division")
	}
}

func TestDivisionFractions(t *testing.T) {
	d, u, err := Division28.fractions()
	if err != nil || d != 0.2 || u != 0.8 {
		t.Errorf("2-8 fractions = %g/%g, %v", d, u, err)
	}
	if Division37.String() != "3-7" || DivisionEven.String() != "even" {
		t.Error("division names wrong")
	}
	if Division(42).String() == "" {
		t.Error("unknown division should still render")
	}
}

func TestQuerySplit(t *testing.T) {
	rng := testRNG(6)
	train, _, err := Generate(rng, MNISTLike().Scaled(0.01))
	if err != nil {
		t.Fatal(err)
	}
	pool, rest, err := QuerySplit(rng, train, 100)
	if err != nil {
		t.Fatalf("QuerySplit: %v", err)
	}
	if pool.Len() != 100 || rest.Len() != train.Len()-100 {
		t.Errorf("split sizes %d/%d", pool.Len(), rest.Len())
	}
	if _, _, err := QuerySplit(rng, train, 0); err == nil {
		t.Error("expected error for empty pool")
	}
	if _, _, err := QuerySplit(rng, train, train.Len()); err == nil {
		t.Error("expected error for pool covering everything")
	}
}
