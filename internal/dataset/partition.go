package dataset

import (
	"fmt"
	"math/rand"

	"github.com/privconsensus/privconsensus/internal/ml"
)

// Division names the paper's uneven data distributions. Division 2-8 means
// 20% of the data is held by 80% of the users (the "majority" group) and
// the remaining 80% of the data by 20% of the users (the "minority").
type Division int

// Supported divisions.
const (
	DivisionEven Division = iota + 1
	Division28
	Division37
	Division46
)

// String implements fmt.Stringer.
func (d Division) String() string {
	switch d {
	case DivisionEven:
		return "even"
	case Division28:
		return "2-8"
	case Division37:
		return "3-7"
	case Division46:
		return "4-6"
	default:
		return fmt.Sprintf("division(%d)", int(d))
	}
}

// fractions returns (dataFrac, userFrac): dataFrac of the data goes to
// userFrac of the users (the majority group).
func (d Division) fractions() (dataFrac, userFrac float64, err error) {
	switch d {
	case DivisionEven:
		return 0, 0, fmt.Errorf("dataset: even division has no fractions")
	case Division28:
		return 0.2, 0.8, nil
	case Division37:
		return 0.3, 0.7, nil
	case Division46:
		return 0.4, 0.6, nil
	default:
		return 0, 0, fmt.Errorf("dataset: unknown division %d", int(d))
	}
}

// Partition holds the per-user datasets plus group bookkeeping for the
// paper's majority/minority accuracy reporting (Fig. 2(b)-(d)).
type Partition struct {
	Users []*ml.Dataset
	// MajorityIdx lists user indices in the majority group (the many
	// users sharing little data); empty for even partitions.
	MajorityIdx []int
	// MinorityIdx lists the few users holding most of the data.
	MinorityIdx []int
}

// PartitionEven splits ds uniformly at random into `users` near-equal
// shards.
func PartitionEven(rng *rand.Rand, ds *ml.Dataset, users int) (*Partition, error) {
	if users < 1 {
		return nil, fmt.Errorf("dataset: need at least 1 user, got %d", users)
	}
	if ds.Len() < users {
		return nil, fmt.Errorf("dataset: %d rows cannot cover %d users", ds.Len(), users)
	}
	idx := rng.Perm(ds.Len())
	out := &Partition{Users: make([]*ml.Dataset, users)}
	for u := 0; u < users; u++ {
		lo := u * len(idx) / users
		hi := (u + 1) * len(idx) / users
		out.Users[u] = ds.Subset(idx[lo:hi])
	}
	return out, nil
}

// PartitionUneven splits ds per the division: dataFrac of rows spread over
// userFrac of users, the rest over the remaining users. Group sizes are
// rounded to keep at least one user in each group.
func PartitionUneven(rng *rand.Rand, ds *ml.Dataset, users int, div Division) (*Partition, error) {
	if div == DivisionEven {
		return PartitionEven(rng, ds, users)
	}
	if users < 2 {
		return nil, fmt.Errorf("dataset: uneven partition needs >= 2 users, got %d", users)
	}
	dataFrac, userFrac, err := div.fractions()
	if err != nil {
		return nil, err
	}
	if ds.Len() < users {
		return nil, fmt.Errorf("dataset: %d rows cannot cover %d users", ds.Len(), users)
	}
	majUsers := int(float64(users)*userFrac + 0.5)
	majUsers = min(max(majUsers, 1), users-1)
	minUsers := users - majUsers
	majRows := int(float64(ds.Len()) * dataFrac)
	majRows = min(max(majRows, majUsers), ds.Len()-minUsers)

	idx := rng.Perm(ds.Len())
	out := &Partition{Users: make([]*ml.Dataset, users)}
	// Majority group: many users, few rows.
	for u := 0; u < majUsers; u++ {
		lo := u * majRows / majUsers
		hi := (u + 1) * majRows / majUsers
		out.Users[u] = ds.Subset(idx[lo:hi])
		out.MajorityIdx = append(out.MajorityIdx, u)
	}
	// Minority group: few users, most rows.
	rest := idx[majRows:]
	for u := 0; u < minUsers; u++ {
		lo := u * len(rest) / minUsers
		hi := (u + 1) * len(rest) / minUsers
		out.Users[majUsers+u] = ds.Subset(rest[lo:hi])
		out.MinorityIdx = append(out.MinorityIdx, majUsers+u)
	}
	return out, nil
}

// QuerySplit carves the aggregator's query pool out of a training set,
// mirroring the paper's "9000 training samples set aside for the
// aggregator". It returns the aggregator pool and the remainder for users.
func QuerySplit(rng *rand.Rand, ds *ml.Dataset, aggregatorSamples int) (pool, rest *ml.Dataset, err error) {
	if aggregatorSamples < 1 || aggregatorSamples >= ds.Len() {
		return nil, nil, fmt.Errorf("dataset: aggregator pool %d outside (0, %d)", aggregatorSamples, ds.Len())
	}
	idx := rng.Perm(ds.Len())
	return ds.Subset(idx[:aggregatorSamples]), ds.Subset(idx[aggregatorSamples:]), nil
}
