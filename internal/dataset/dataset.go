// Package dataset generates the synthetic stand-ins for MNIST, SVHN and
// CelebA (the substitution documented in DESIGN.md) and implements the
// paper's data-partition schemes: even splits and the uneven divisions 2-8,
// 3-7 and 4-6 (§VI-C: "Division 2-8 represents that 20% of the data is held
// by 80% of the users").
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/privconsensus/privconsensus/internal/ml"
)

// Spec describes a synthetic multiclass dataset: Gaussian class clusters in
// Dim dimensions with centroid separation fixed at 1 and per-class noise
// controlling difficulty.
type Spec struct {
	Name    string
	Classes int
	Dim     int
	// Noise is the within-class standard deviation; larger = harder.
	Noise float64
	// Train and Test are the number of samples generated.
	Train int
	Test  int
}

// MNISTLike mirrors MNIST's regime: 10 easy classes, 60k/10k split
// (scaled by the caller for fast runs).
func MNISTLike() Spec {
	return Spec{Name: "mnist", Classes: 10, Dim: 24, Noise: 0.22, Train: 60000, Test: 10000}
}

// SVHNLike mirrors SVHN: 10 harder classes, ~73k/26k split.
func SVHNLike() Spec {
	return Spec{Name: "svhn", Classes: 10, Dim: 24, Noise: 0.32, Train: 73000, Test: 26000}
}

// Scaled returns the spec with train/test sizes multiplied by f (at least
// one sample each), for fast experiment runs.
func (s Spec) Scaled(f float64) Spec {
	out := s
	out.Train = max(1, int(float64(s.Train)*f))
	out.Test = max(1, int(float64(s.Test)*f))
	return out
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Classes < 2 || s.Dim < 1 || s.Noise <= 0 || s.Train < 1 || s.Test < 1 {
		return fmt.Errorf("dataset: invalid spec %+v", s)
	}
	return nil
}

// Generate produces the train and test sets for a multiclass spec. The
// class centroids are random unit-norm directions scaled to pairwise
// separation ~1, shared between train and test.
func Generate(rng *rand.Rand, s Spec) (train, test *ml.Dataset, err error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	centroids := make([][]float64, s.Classes)
	for c := range centroids {
		v := make([]float64, s.Dim)
		var norm float64
		for i := range v {
			v[i] = rng.NormFloat64()
			norm += v[i] * v[i]
		}
		norm = math.Sqrt(norm)
		for i := range v {
			v[i] /= norm
		}
		centroids[c] = v
	}
	sample := func(n int) *ml.Dataset {
		ds := &ml.Dataset{Classes: s.Classes, X: make([][]float64, n), Labels: make([]int, n)}
		for i := 0; i < n; i++ {
			c := rng.Intn(s.Classes)
			x := make([]float64, s.Dim)
			for j := range x {
				x[j] = centroids[c][j] + rng.NormFloat64()*s.Noise
			}
			ds.X[i] = x
			ds.Labels[i] = c
		}
		return ds
	}
	return sample(s.Train), sample(s.Test), nil
}

// AttrSpec describes the CelebA stand-in: a latent-factor model producing
// sparse binary attribute vectors.
type AttrSpec struct {
	Name  string
	Attrs int
	Dim   int
	// LatentDim is the dimensionality of the shared latent factors.
	LatentDim int
	// PositiveRate is the target marginal rate of positive attributes
	// (CelebA attributes are sparse: most are negative, §VI-C).
	PositiveRate float64
	// Noise is the observation noise on the features.
	Noise float64
	Train int
	Test  int
}

// CelebALike mirrors CelebA: 200k images with 40 sparse binary attributes.
func CelebALike() Spec {
	// Returned as a Spec-compatible marker; use GenerateAttrs with
	// CelebAAttrSpec for the real generator.
	return Spec{Name: "celeba", Classes: 40, Dim: 24, Noise: 0.6, Train: 160000, Test: 40000}
}

// CelebAAttrSpec returns the attribute-generator parameters for the CelebA
// stand-in.
func CelebAAttrSpec() AttrSpec {
	return AttrSpec{
		Name: "celeba", Attrs: 40, Dim: 24, LatentDim: 8,
		PositiveRate: 0.2, Noise: 0.45, Train: 160000, Test: 40000,
	}
}

// Scaled scales the attribute spec's sample counts.
func (s AttrSpec) Scaled(f float64) AttrSpec {
	out := s
	out.Train = max(1, int(float64(s.Train)*f))
	out.Test = max(1, int(float64(s.Test)*f))
	return out
}

// Validate checks the attribute spec.
func (s AttrSpec) Validate() error {
	if s.Attrs < 1 || s.Dim < 1 || s.LatentDim < 1 || s.Noise <= 0 ||
		s.PositiveRate <= 0 || s.PositiveRate >= 1 || s.Train < 1 || s.Test < 1 {
		return fmt.Errorf("dataset: invalid attribute spec %+v", s)
	}
	return nil
}

// GenerateAttrs produces multi-label train/test sets: each sample has a
// latent vector z; attribute a fires when w_a . z exceeds a bias chosen so
// the marginal positive rate matches PositiveRate; features are a linear
// map of z plus noise.
func GenerateAttrs(rng *rand.Rand, s AttrSpec) (train, test *ml.Dataset, err error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	// Attribute weight vectors over the latent space.
	attrW := make([][]float64, s.Attrs)
	for a := range attrW {
		w := make([]float64, s.LatentDim)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		attrW[a] = w
	}
	// Feature mixing matrix.
	mix := make([][]float64, s.Dim)
	for d := range mix {
		row := make([]float64, s.LatentDim)
		for i := range row {
			row[i] = rng.NormFloat64() / math.Sqrt(float64(s.LatentDim))
		}
		mix[d] = row
	}
	// The score w_a . z for z ~ N(0, I) is N(0, |w_a|^2); the bias that
	// yields P(score > bias) = PositiveRate is |w_a| * Phi^-1(1 - rate).
	quantile := normQuantile(1 - s.PositiveRate)
	bias := make([]float64, s.Attrs)
	for a, w := range attrW {
		var norm float64
		for _, wi := range w {
			norm += wi * wi
		}
		bias[a] = math.Sqrt(norm) * quantile
	}
	sample := func(n int) *ml.Dataset {
		ds := &ml.Dataset{Classes: s.Attrs, X: make([][]float64, n), Attrs: make([][]bool, n)}
		for i := 0; i < n; i++ {
			z := make([]float64, s.LatentDim)
			for j := range z {
				z[j] = rng.NormFloat64()
			}
			attrs := make([]bool, s.Attrs)
			for a := range attrs {
				var score float64
				for j := range z {
					score += attrW[a][j] * z[j]
				}
				attrs[a] = score > bias[a]
			}
			x := make([]float64, s.Dim)
			for d := range x {
				var v float64
				for j := range z {
					v += mix[d][j] * z[j]
				}
				x[d] = v + rng.NormFloat64()*s.Noise
			}
			ds.X[i] = x
			ds.Attrs[i] = attrs
		}
		return ds
	}
	return sample(s.Train), sample(s.Test), nil
}

// normQuantile approximates the standard normal quantile function using the
// Acklam rational approximation (max abs error ~1.15e-9).
func normQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	a := []float64{-39.69683028665376, 220.9460984245205, -275.9285104469687,
		138.3577518672690, -30.66479806614716, 2.506628277459239}
	b := []float64{-54.47609879822406, 161.5858368580409, -155.6989798598866,
		66.80131188771972, -13.28068155288572}
	c := []float64{-0.007784894002430293, -0.3223964580411365, -2.400758277161838,
		-2.549732539343734, 4.374664141464968, 2.938163982698783}
	d := []float64{0.007784695709041462, 0.3224671290700398, 2.445134137142996,
		3.754408661907416}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
