package pate

import (
	"math/rand"
	"testing"

	"github.com/privconsensus/privconsensus/internal/dataset"
	"github.com/privconsensus/privconsensus/internal/ml"
)

// noisyFourClass builds a moderately hard 4-class dataset.
func noisyFourClass(rng *rand.Rand, n int) *ml.Dataset {
	ds := &ml.Dataset{Classes: 4, X: make([][]float64, n), Labels: make([]int, n)}
	centers := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {0.7, 0.7, 0}}
	for i := 0; i < n; i++ {
		c := rng.Intn(4)
		x := make([]float64, 3)
		for j := range x {
			x[j] = centers[c][j] + rng.NormFloat64()*0.5
		}
		ds.X[i] = x
		ds.Labels[i] = c
	}
	return ds
}

func TestSelfTrainConfigValidate(t *testing.T) {
	if err := DefaultSelfTrainConfig().Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	if err := (SelfTrainConfig{Rounds: 0, Confidence: 0.9}).Validate(); err == nil {
		t.Error("expected rounds error")
	}
	if err := (SelfTrainConfig{Rounds: 1, Confidence: 1.5}).Validate(); err == nil {
		t.Error("expected confidence error")
	}
}

func TestSelfTrainImprovesWithUnlabeledData(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	labeled := noisyFourClass(rng, 40)
	unlabeled := noisyFourClass(rng, 800)
	unlabeled.Labels = nil // genuinely unlabeled
	test := noisyFourClass(rng, 1500)
	train := ml.TrainConfig{Epochs: 20, LearnRate: 0.3, L2: 1e-4, BatchSize: 16}

	const reps = 3
	var accPlain, accST float64
	for r := 0; r < reps; r++ {
		rr := rand.New(rand.NewSource(int64(100 + r)))
		plain, err := ml.TrainSoftmax(rr, labeled, train)
		if err != nil {
			t.Fatal(err)
		}
		ap, err := plain.Accuracy(test)
		if err != nil {
			t.Fatal(err)
		}
		rr2 := rand.New(rand.NewSource(int64(100 + r)))
		st, adopted, err := SelfTrain(rr2, labeled, unlabeled, train, DefaultSelfTrainConfig())
		if err != nil {
			t.Fatal(err)
		}
		if adopted == 0 {
			t.Log("no pseudo-labels adopted this round")
		}
		as, err := st.Accuracy(test)
		if err != nil {
			t.Fatal(err)
		}
		accPlain += ap / reps
		accST += as / reps
	}
	// Self-training should not hurt on this regime and usually helps.
	if accST < accPlain-0.02 {
		t.Errorf("self-training hurt: %g vs plain %g", accST, accPlain)
	}
}

func TestSelfTrainEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	labeled := noisyFourClass(rng, 30)
	train := ml.TrainConfig{Epochs: 5, LearnRate: 0.3, L2: 0, BatchSize: 8}

	// No unlabeled data: plain training, zero adopted.
	st, adopted, err := SelfTrain(rng, labeled, nil, train, DefaultSelfTrainConfig())
	if err != nil || st == nil || adopted != 0 {
		t.Errorf("nil unlabeled: %v, adopted=%d", err, adopted)
	}
	empty := &ml.Dataset{Classes: 4}
	if _, _, err := SelfTrain(rng, empty, nil, train, DefaultSelfTrainConfig()); err == nil {
		t.Error("expected error for empty labeled set")
	}
	bad := SelfTrainConfig{Rounds: 0, Confidence: 0.5}
	if _, _, err := SelfTrain(rng, labeled, nil, train, bad); err == nil {
		t.Error("expected config error")
	}
	// Impossible confidence: no pseudo-labels adopted.
	strict := SelfTrainConfig{Rounds: 1, Confidence: 0.999999}
	unlabeled := noisyFourClass(rng, 50)
	_, adopted, err = SelfTrain(rng, labeled, unlabeled, train, strict)
	if err != nil {
		t.Fatal(err)
	}
	if adopted > 5 {
		t.Errorf("near-1 confidence adopted %d pseudo-labels", adopted)
	}
}

func TestPipelineSelfTrainFlag(t *testing.T) {
	base := PipelineConfig{
		Spec:          dataset.SVHNLike(),
		Scale:         0.01,
		Users:         15,
		Division:      dataset.DivisionEven,
		VoteType:      OneHot,
		Queries:       120,
		UseConsensus:  true,
		ThresholdFrac: 0.8, // high threshold -> plenty of unlabeled leftovers
		Sigma1:        2,
		Sigma2:        2,
		Train:         fastTrain(),
		Seed:          99,
	}
	plain, err := RunPipeline(base)
	if err != nil {
		t.Fatal(err)
	}
	st := base
	st.SelfTrain = true
	stRes, err := RunPipeline(st)
	if err != nil {
		t.Fatal(err)
	}
	// Identical labeling path; only the student differs.
	if plain.Retention != stRes.Retention || plain.LabelAccuracy != stRes.LabelAccuracy {
		t.Errorf("self-training changed the labeling path: %+v vs %+v", plain, stRes)
	}
	if stRes.StudentAccuracy == 0 {
		t.Error("self-trained student missing")
	}
}
