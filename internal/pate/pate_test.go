package pate

import (
	"math/rand"
	"testing"

	"github.com/privconsensus/privconsensus/internal/dataset"
	"github.com/privconsensus/privconsensus/internal/ml"
)

func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// fastTrain returns a quick training config for tests.
func fastTrain() ml.TrainConfig {
	return ml.TrainConfig{Epochs: 10, LearnRate: 0.3, L2: 1e-4, BatchSize: 16}
}

// smallPartition builds a small even partition of an MNIST-like dataset.
func smallPartition(t *testing.T, rng *rand.Rand, users int) (*dataset.Partition, *ml.Dataset) {
	t.Helper()
	train, test, err := dataset.Generate(rng, dataset.MNISTLike().Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	part, err := dataset.PartitionEven(rng, train, users)
	if err != nil {
		t.Fatal(err)
	}
	return part, test
}

func TestTrainTeachersAndVotes(t *testing.T) {
	rng := testRNG(1)
	part, test := smallPartition(t, rng, 5)
	teachers, err := TrainTeachers(rng, part, 10, fastTrain())
	if err != nil {
		t.Fatalf("TrainTeachers: %v", err)
	}
	if len(teachers.Models) != 5 {
		t.Fatalf("expected 5 teachers, got %d", len(teachers.Models))
	}

	accs, err := teachers.Accuracies(test)
	if err != nil {
		t.Fatal(err)
	}
	if mean(accs) < 0.5 {
		t.Errorf("mean teacher accuracy %g suspiciously low", mean(accs))
	}

	x := test.X[0]
	oneHot, err := teachers.Votes(x, OneHot)
	if err != nil {
		t.Fatal(err)
	}
	for u, v := range oneHot {
		var sum float64
		ones := 0
		for _, c := range v {
			sum += c
			if c == 1 {
				ones++
			}
		}
		if sum != 1 || ones != 1 {
			t.Errorf("user %d one-hot vote invalid: %v", u, v)
		}
	}
	soft, err := teachers.Votes(x, Softmax)
	if err != nil {
		t.Fatal(err)
	}
	for u, v := range soft {
		var sum float64
		for _, c := range v {
			sum += c
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("user %d softmax vote sums to %g", u, sum)
		}
	}
	if _, err := teachers.Votes(x, VoteType(9)); err == nil {
		t.Error("expected error for unknown vote type")
	}
}

func TestTrainTeachersEmptyPartitionUser(t *testing.T) {
	rng := testRNG(2)
	part, test := smallPartition(t, rng, 3)
	part.Users[1] = &ml.Dataset{Classes: 10} // simulate a data-less user
	teachers, err := TrainTeachers(rng, part, 10, fastTrain())
	if err != nil {
		t.Fatalf("TrainTeachers with empty user: %v", err)
	}
	// The dummy teacher predicts uniformly; voting still works.
	if _, err := teachers.Votes(test.X[0], OneHot); err != nil {
		t.Fatalf("Votes: %v", err)
	}
	if _, err := TrainTeachers(rng, &dataset.Partition{}, 10, fastTrain()); err == nil {
		t.Error("expected error for empty partition")
	}
}

func TestSumVotes(t *testing.T) {
	total, err := SumVotes([][]float64{{1, 0}, {0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if total[0] != 2 || total[1] != 1 {
		t.Errorf("SumVotes = %v", total)
	}
	if _, err := SumVotes(nil); err == nil {
		t.Error("expected error for no votes")
	}
	if _, err := SumVotes([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("expected error for ragged votes")
	}
}

func TestConsensusLabeler(t *testing.T) {
	rng := testRNG(3)
	l := ConsensusLabeler{Threshold: 6, Sigma1: 0.01, Sigma2: 0.01}
	// 8 of 10 votes on class 1: passes threshold 6.
	label, ok := l.Label(rng, []float64{2, 8, 0})
	if !ok || label != 1 {
		t.Errorf("Label = %d, %v; want 1, true", label, ok)
	}
	// 4 votes max < 6: rejected (noise is tiny).
	if _, ok := l.Label(rng, []float64{4, 3, 3}); ok {
		t.Error("expected rejection below threshold")
	}
	if !l.SpendsRNM() {
		t.Error("consensus labeler spends RNM")
	}
}

func TestBaselineLabelerAlwaysReleases(t *testing.T) {
	rng := testRNG(4)
	l := BaselineLabeler{Sigma2: 0.01}
	for i := 0; i < 10; i++ {
		label, ok := l.Label(rng, []float64{1, 2, 30})
		if !ok || label != 2 {
			t.Errorf("baseline Label = %d, %v", label, ok)
		}
	}
}

func TestPlainLabeler(t *testing.T) {
	l := PlainLabeler{Threshold: 5}
	label, ok := l.Label(nil, []float64{1, 7})
	if !ok || label != 1 {
		t.Errorf("plain Label = %d, %v", label, ok)
	}
	if _, ok := l.Label(nil, []float64{1, 4}); ok {
		t.Error("expected rejection")
	}
	if l.SpendsRNM() {
		t.Error("plain labeler is noise-free")
	}
}

func TestRunPipelineConsensusBeatsBaselineOnLabelAccuracy(t *testing.T) {
	base := PipelineConfig{
		Spec:          dataset.SVHNLike(),
		Scale:         0.01,
		Users:         20,
		Division:      dataset.DivisionEven,
		VoteType:      OneHot,
		Queries:       150,
		ThresholdFrac: 0.6,
		Sigma1:        3,
		Sigma2:        3,
		Train:         fastTrain(),
		Seed:          42,
	}
	cons := base
	cons.UseConsensus = true
	rCons, err := RunPipeline(cons)
	if err != nil {
		t.Fatalf("consensus pipeline: %v", err)
	}
	rBase, err := RunPipeline(base)
	if err != nil {
		t.Fatalf("baseline pipeline: %v", err)
	}
	if rCons.Retention >= 1.0 && rBase.Retention != 1.0 {
		t.Errorf("retention bookkeeping wrong: cons=%g base=%g", rCons.Retention, rBase.Retention)
	}
	if rBase.Retention != 1.0 {
		t.Errorf("baseline must retain everything, got %g", rBase.Retention)
	}
	// The headline claim: consensus filtering yields better label quality
	// under the same noise.
	if rCons.LabelAccuracy <= rBase.LabelAccuracy {
		t.Errorf("consensus label accuracy %g <= baseline %g", rCons.LabelAccuracy, rBase.LabelAccuracy)
	}
	if rCons.Retained == 0 || rCons.StudentAccuracy == 0 {
		t.Errorf("consensus run produced no student: %+v", rCons)
	}
}

func TestRunPipelineUnevenGroupsReported(t *testing.T) {
	cfg := PipelineConfig{
		Spec:          dataset.MNISTLike(),
		Scale:         0.01,
		Users:         10,
		Division:      dataset.Division28,
		VoteType:      OneHot,
		Queries:       50,
		UseConsensus:  true,
		ThresholdFrac: 0.5,
		Sigma1:        2,
		Sigma2:        2,
		Train:         fastTrain(),
		Seed:          7,
	}
	r, err := RunPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.MajorityAcc == 0 || r.MinorityAcc == 0 {
		t.Errorf("group accuracies not reported: %+v", r)
	}
	// Minority users hold most of the data, so they should be stronger.
	if r.MinorityAcc <= r.MajorityAcc {
		t.Errorf("minority acc %g should exceed majority acc %g", r.MinorityAcc, r.MajorityAcc)
	}
	if r.Epsilon <= 0 {
		t.Errorf("epsilon not computed: %+v", r)
	}
}

func TestRunPipelineValidation(t *testing.T) {
	good := PipelineConfig{
		Spec: dataset.MNISTLike(), Scale: 0.01, Users: 5, Division: dataset.DivisionEven,
		VoteType: OneHot, Queries: 10, ThresholdFrac: 0.5, Sigma1: 1, Sigma2: 1,
		Train: fastTrain(), Seed: 1,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []func(*PipelineConfig){
		func(c *PipelineConfig) { c.Scale = 0 },
		func(c *PipelineConfig) { c.Scale = 2 },
		func(c *PipelineConfig) { c.Users = 0 },
		func(c *PipelineConfig) { c.Queries = 0 },
		func(c *PipelineConfig) { c.ThresholdFrac = -0.1 },
		func(c *PipelineConfig) { c.Sigma1 = -1 },
		func(c *PipelineConfig) { c.VoteType = 0 },
		func(c *PipelineConfig) { c.Train.Epochs = 0 },
	}
	for i, mutate := range cases {
		cfg := good
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestEpsilonSpendAccounting(t *testing.T) {
	cfg := PipelineConfig{Sigma1: 4, Sigma2: 4, UseConsensus: true}
	eps1, err := cfg.epsilonSpend(100, 50)
	if err != nil {
		t.Fatal(err)
	}
	eps2, err := cfg.epsilonSpend(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if eps2 <= eps1 {
		t.Errorf("more releases must cost more: %g vs %g", eps1, eps2)
	}
	zero := PipelineConfig{Sigma1: 0, Sigma2: 0}
	eps, err := zero.epsilonSpend(10, 10)
	if err != nil || eps != 0 {
		t.Errorf("non-private run should report eps=0, got %g, %v", eps, err)
	}
}

func TestRunAttrPipeline(t *testing.T) {
	cfg := AttrPipelineConfig{
		Spec:          dataset.CelebAAttrSpec(),
		Scale:         0.004,
		Users:         10,
		Division:      dataset.DivisionEven,
		Queries:       40,
		UseConsensus:  true,
		ThresholdFrac: 0.6,
		Sigma1:        1.5,
		Sigma2:        1.5,
		Train:         ml.TrainConfig{Epochs: 5, LearnRate: 0.3, L2: 1e-4, BatchSize: 16},
		Seed:          9,
	}
	r, err := RunAttrPipeline(cfg)
	if err != nil {
		t.Fatalf("RunAttrPipeline: %v", err)
	}
	if r.UserAccMean < 0.6 {
		t.Errorf("attribute teachers too weak: %g", r.UserAccMean)
	}
	if r.Retention <= 0 || r.Retention > 1 {
		t.Errorf("retention %g outside (0, 1]", r.Retention)
	}
	if r.LabelAccuracy <= 0.5 {
		t.Errorf("label accuracy %g not better than chance", r.LabelAccuracy)
	}
	if r.StudentAccuracy <= 0.5 {
		t.Errorf("student accuracy %g not better than chance", r.StudentAccuracy)
	}
	if r.Epsilon <= 0 {
		t.Errorf("epsilon not computed")
	}
}

func TestRunAttrPipelineValidation(t *testing.T) {
	bad := AttrPipelineConfig{Spec: dataset.CelebAAttrSpec(), Scale: 0, Users: 5, Queries: 10,
		ThresholdFrac: 0.5, Train: fastTrain()}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero scale")
	}
	bad.Scale = 0.01
	bad.Users = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero users")
	}
}

func TestMeanHelpers(t *testing.T) {
	if mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if meanAt([]float64{1, 2, 3}, []int{0, 2}) != 2 {
		t.Error("meanAt wrong")
	}
	if meanAt([]float64{1}, nil) != 0 {
		t.Error("meanAt of empty should be 0")
	}
}

func TestVoteTypeString(t *testing.T) {
	if OneHot.String() != "one-hot" || Softmax.String() != "softmax" {
		t.Error("vote type names wrong")
	}
	if VoteType(42).String() == "" {
		t.Error("unknown vote type should still render")
	}
}

func TestBaselineLabelerSpendsRNM(t *testing.T) {
	if !(BaselineLabeler{}).SpendsRNM() {
		t.Error("baseline spends RNM on every query")
	}
}

func TestTrainAttrTeachersEmptyUser(t *testing.T) {
	rng := testRNG(55)
	train, test, err := dataset.GenerateAttrs(rng, dataset.CelebAAttrSpec().Scaled(0.001))
	if err != nil {
		t.Fatal(err)
	}
	part, err := dataset.PartitionEven(rng, train, 2)
	if err != nil {
		t.Fatal(err)
	}
	part.Users[1] = &ml.Dataset{Classes: 40} // data-less user
	teachers, err := TrainAttrTeachers(rng, part, 40, fastTrain())
	if err != nil {
		t.Fatalf("TrainAttrTeachers with empty user: %v", err)
	}
	if _, err := teachers.AttrVotes(test.X[0]); err != nil {
		t.Fatalf("AttrVotes: %v", err)
	}
	if _, err := TrainAttrTeachers(rng, &dataset.Partition{}, 40, fastTrain()); err == nil {
		t.Error("expected error for empty partition")
	}
}
