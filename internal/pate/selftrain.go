package pate

import (
	"fmt"
	"math/rand"

	"github.com/privconsensus/privconsensus/internal/ml"
)

// Semi-supervised student training. The paper's aggregator "conducts
// semi-supervised learning on the collection of data-label pairs": beyond
// supervised training on consensus-labeled pairs, the unlabeled remainder
// of the query pool (instances that failed the threshold check) still
// carries information. SelfTrain implements the classic self-training
// loop: fit a student on the labeled pairs, pseudo-label unlabeled
// instances the student is confident about, and refit on the union.
//
// Privacy note: pseudo-labels are produced by the student alone from
// already-released information, so self-training spends no additional
// privacy budget — a free utility lever the paper leaves implicit.

// SelfTrainConfig controls the self-training loop.
type SelfTrainConfig struct {
	// Rounds is the number of pseudo-label/refit iterations.
	Rounds int
	// Confidence is the minimum predicted probability required to adopt
	// a pseudo-label.
	Confidence float64
}

// DefaultSelfTrainConfig mirrors common practice: two rounds at 0.9.
func DefaultSelfTrainConfig() SelfTrainConfig {
	return SelfTrainConfig{Rounds: 2, Confidence: 0.9}
}

// Validate checks the configuration.
func (c SelfTrainConfig) Validate() error {
	if c.Rounds < 1 {
		return fmt.Errorf("pate: self-train rounds must be >= 1, got %d", c.Rounds)
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return fmt.Errorf("pate: self-train confidence %g outside (0, 1)", c.Confidence)
	}
	return nil
}

// SelfTrain fits a student on labeled, then iteratively pseudo-labels
// unlabeled and refits. It returns the final student and the number of
// pseudo-labels adopted in the last round.
func SelfTrain(rng *rand.Rand, labeled, unlabeled *ml.Dataset, train ml.TrainConfig, cfg SelfTrainConfig) (*ml.SoftmaxClassifier, int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	if labeled.Len() == 0 {
		return nil, 0, fmt.Errorf("pate: self-training needs at least one labeled instance")
	}
	student, err := ml.TrainSoftmax(rng, labeled, train)
	if err != nil {
		return nil, 0, fmt.Errorf("pate: initial student: %w", err)
	}
	if unlabeled == nil || unlabeled.Len() == 0 {
		return student, 0, nil
	}

	adopted := 0
	for round := 0; round < cfg.Rounds; round++ {
		// Pseudo-label the unlabeled pool with the current student.
		aug := &ml.Dataset{Classes: labeled.Classes}
		aug.X = append(aug.X, labeled.X...)
		aug.Labels = append(aug.Labels, labeled.Labels...)
		adopted = 0
		for _, x := range unlabeled.X {
			proba, err := student.PredictProba(x)
			if err != nil {
				return nil, 0, err
			}
			best := ml.Argmax(proba)
			if proba[best] < cfg.Confidence {
				continue
			}
			aug.X = append(aug.X, x)
			aug.Labels = append(aug.Labels, best)
			adopted++
		}
		if adopted == 0 {
			break // nothing confident to learn from
		}
		student, err = ml.TrainSoftmax(rng, aug, train)
		if err != nil {
			return nil, 0, fmt.Errorf("pate: self-train round %d: %w", round, err)
		}
	}
	return student, adopted, nil
}
