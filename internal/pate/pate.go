// Package pate implements the semi-supervised knowledge-transfer framework
// of Fig. 1: teachers train on private partitions, the aggregator queries
// them on an unlabeled pool, votes are aggregated under one of the paper's
// policies (the private consensus protocol or the noisy-argmax baseline),
// and a student model trains on the labeled pairs.
//
// The accuracy experiments use the plaintext-equivalent fast path of
// Alg. 4; the internal/protocol package proves the cryptographic path makes
// identical decisions for the same noise draws.
package pate

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/privconsensus/privconsensus/internal/dataset"
	"github.com/privconsensus/privconsensus/internal/dp"
	"github.com/privconsensus/privconsensus/internal/ml"
)

// VoteType selects how teachers encode their predictions (§VI-C, Fig. 4).
type VoteType int

// Supported vote encodings.
const (
	// OneHot casts a single vote for the predicted class.
	OneHot VoteType = iota + 1
	// Softmax casts the full probability vector.
	Softmax
)

// String implements fmt.Stringer.
func (v VoteType) String() string {
	switch v {
	case OneHot:
		return "one-hot"
	case Softmax:
		return "softmax"
	default:
		return fmt.Sprintf("votetype(%d)", int(v))
	}
}

// ErrNoTeachers is returned when a teacher ensemble is empty.
var ErrNoTeachers = errors.New("pate: no teachers")

// Teachers is an ensemble of locally trained multiclass models.
type Teachers struct {
	Models  []*ml.SoftmaxClassifier
	Classes int
}

// TrainTeachers fits one softmax model per user partition. Users whose
// partition is empty get a uniform-voting dummy (they own no data, as can
// happen in extreme uneven divisions).
func TrainTeachers(rng *rand.Rand, part *dataset.Partition, classes int, cfg ml.TrainConfig) (*Teachers, error) {
	if len(part.Users) == 0 {
		return nil, ErrNoTeachers
	}
	out := &Teachers{Models: make([]*ml.SoftmaxClassifier, len(part.Users)), Classes: classes}
	for u, ds := range part.Users {
		if ds.Len() == 0 {
			dim := 1
			for _, other := range part.Users {
				if other.Len() > 0 {
					dim = len(other.X[0])
					break
				}
			}
			m, err := ml.NewSoftmaxClassifier(classes, dim)
			if err != nil {
				return nil, err
			}
			out.Models[u] = m // zero weights: uniform prediction
			continue
		}
		m, err := ml.TrainSoftmax(rng, ds, cfg)
		if err != nil {
			return nil, fmt.Errorf("pate: train teacher %d: %w", u, err)
		}
		out.Models[u] = m
	}
	return out, nil
}

// Votes returns the per-user vote vectors for one query. With OneHot each
// row is an indicator vector; with Softmax it is the probability vector.
func (t *Teachers) Votes(x []float64, vt VoteType) ([][]float64, error) {
	if len(t.Models) == 0 {
		return nil, ErrNoTeachers
	}
	out := make([][]float64, len(t.Models))
	for u, m := range t.Models {
		switch vt {
		case OneHot:
			pred, err := m.Predict(x)
			if err != nil {
				return nil, fmt.Errorf("pate: teacher %d: %w", u, err)
			}
			v := make([]float64, t.Classes)
			v[pred] = 1
			out[u] = v
		case Softmax:
			p, err := m.PredictProba(x)
			if err != nil {
				return nil, fmt.Errorf("pate: teacher %d: %w", u, err)
			}
			out[u] = p
		default:
			return nil, fmt.Errorf("pate: unknown vote type %d", int(vt))
		}
	}
	return out, nil
}

// SumVotes aggregates per-user votes into the per-class total (Eq. 4).
func SumVotes(votes [][]float64) ([]float64, error) {
	if len(votes) == 0 {
		return nil, errors.New("pate: no votes")
	}
	k := len(votes[0])
	out := make([]float64, k)
	for u, v := range votes {
		if len(v) != k {
			return nil, fmt.Errorf("pate: user %d vote length %d != %d", u, len(v), k)
		}
		for i, c := range v {
			out[i] += c
		}
	}
	return out, nil
}

// Accuracies returns each teacher's accuracy on the evaluation set.
func (t *Teachers) Accuracies(test *ml.Dataset) ([]float64, error) {
	out := make([]float64, len(t.Models))
	for u, m := range t.Models {
		acc, err := m.Accuracy(test)
		if err != nil {
			return nil, fmt.Errorf("pate: evaluate teacher %d: %w", u, err)
		}
		out[u] = acc
	}
	return out, nil
}

// Labeler decides the released label for one query's aggregated votes.
// ok=false means the query is discarded.
type Labeler interface {
	Label(rng *rand.Rand, votes []float64) (label int, ok bool)
	// SpendsRNM reports whether a released label pays the Report Noisy
	// Maximum privacy cost (used by the accountant).
	SpendsRNM() bool
}

// ConsensusLabeler is the paper's mechanism (Alg. 4): an SVT threshold
// check on the highest vote, then Report Noisy Maximum.
type ConsensusLabeler struct {
	// Threshold is T in votes (e.g. 0.6 * users).
	Threshold float64
	Sigma1    float64
	Sigma2    float64
}

// Label implements Labeler.
func (l ConsensusLabeler) Label(rng *rand.Rand, votes []float64) (int, bool) {
	maxVotes := votes[ml.Argmax(votes)]
	if !dp.NoisyThresholdCheck(rng, maxVotes, l.Threshold, l.Sigma1) {
		return -1, false
	}
	return dp.ReportNoisyMax(rng, votes, l.Sigma2), true
}

// SpendsRNM implements Labeler.
func (ConsensusLabeler) SpendsRNM() bool { return true }

// BaselineLabeler is the paper's comparison baseline (§VI-C): it always
// releases the noisy argmax, with no consensus check. For fair comparison
// it applies the same total noise budget by using both sigmas on the
// argmax (the paper applies "the same differential privacy scheme and the
// same privacy level").
type BaselineLabeler struct {
	Sigma2 float64
}

// Label implements Labeler.
func (l BaselineLabeler) Label(rng *rand.Rand, votes []float64) (int, bool) {
	return dp.ReportNoisyMax(rng, votes, l.Sigma2), true
}

// SpendsRNM implements Labeler.
func (BaselineLabeler) SpendsRNM() bool { return true }

// PlainLabeler implements the non-private Alg. 1: exact argmax with an
// exact threshold check. Used for ablations and debugging.
type PlainLabeler struct {
	Threshold float64
}

// Label implements Labeler.
func (l PlainLabeler) Label(_ *rand.Rand, votes []float64) (int, bool) {
	i := ml.Argmax(votes)
	if votes[i] < l.Threshold {
		return -1, false
	}
	return i, true
}

// SpendsRNM implements Labeler.
func (PlainLabeler) SpendsRNM() bool { return false }
