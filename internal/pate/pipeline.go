package pate

import (
	"fmt"
	"math/rand"

	"github.com/privconsensus/privconsensus/internal/dataset"
	"github.com/privconsensus/privconsensus/internal/dp"
	"github.com/privconsensus/privconsensus/internal/ml"
)

// PipelineConfig drives one end-to-end multiclass experiment run.
type PipelineConfig struct {
	// Spec describes the dataset; Scale shrinks its sample counts for
	// fast runs (1.0 = paper-sized).
	Spec  dataset.Spec
	Scale float64
	// Users is the number of teachers.
	Users int
	// Division selects the data distribution across users.
	Division dataset.Division
	// VoteType selects one-hot or softmax teacher votes.
	VoteType VoteType
	// Queries is the size of the aggregator's unlabeled pool (the paper
	// sets aside 9000 training samples).
	Queries int
	// UseConsensus selects the paper's mechanism; false runs the
	// noisy-argmax baseline.
	UseConsensus bool
	// ThresholdFrac is T as a fraction of users (default 0.6).
	ThresholdFrac float64
	// Sigma1, Sigma2 are the DP noise deviations in votes.
	Sigma1, Sigma2 float64
	// Train configures teacher and student SGD.
	Train ml.TrainConfig
	// Seed makes the run reproducible.
	Seed int64
	// SelfTrain enables the semi-supervised self-training extension: the
	// student pseudo-labels the discarded (unlabeled) queries it is
	// confident about and refits. Spends no extra privacy budget.
	SelfTrain bool
	// SelfTrainCfg tunes the loop (zero value = DefaultSelfTrainConfig).
	SelfTrainCfg SelfTrainConfig
}

// Validate checks the configuration.
func (c PipelineConfig) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.Scale <= 0 || c.Scale > 1 {
		return fmt.Errorf("pate: scale %g outside (0, 1]", c.Scale)
	}
	if c.Users < 1 {
		return fmt.Errorf("pate: need at least 1 user, got %d", c.Users)
	}
	if c.Queries < 1 {
		return fmt.Errorf("pate: need at least 1 query, got %d", c.Queries)
	}
	if c.ThresholdFrac < 0 || c.ThresholdFrac > 1 {
		return fmt.Errorf("pate: threshold fraction %g outside [0, 1]", c.ThresholdFrac)
	}
	if c.Sigma1 < 0 || c.Sigma2 < 0 {
		return fmt.Errorf("pate: negative sigma")
	}
	if c.VoteType != OneHot && c.VoteType != Softmax {
		return fmt.Errorf("pate: unknown vote type %d", int(c.VoteType))
	}
	return c.Train.Validate()
}

// Result summarizes one pipeline run.
type Result struct {
	// UserAccMean is the mean teacher accuracy on the test set (Fig. 2a).
	UserAccMean float64
	// MajorityAcc and MinorityAcc are group means for uneven divisions
	// (Fig. 2b-d); zero for even distributions.
	MajorityAcc float64
	MinorityAcc float64
	// LabelAccuracy is the fraction of retained queries labeled
	// correctly (Fig. 3a/3c).
	LabelAccuracy float64
	// Retention is the fraction of queries that reached consensus
	// (Table III).
	Retention float64
	// StudentAccuracy is the aggregator model's test accuracy after
	// training on the retained pairs (Fig. 3b/3d).
	StudentAccuracy float64
	// Epsilon is the (ε, δ=1e-6)-DP spend of the label release.
	Epsilon float64
	// Retained is the number of labeled training pairs.
	Retained int
}

// RunPipeline executes the full semi-supervised knowledge transfer flow.
func RunPipeline(cfg PipelineConfig) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	spec := cfg.Spec.Scaled(cfg.Scale)
	train, test, err := dataset.Generate(rng, spec)
	if err != nil {
		return nil, err
	}
	queries := min(cfg.Queries, train.Len()-cfg.Users)
	pool, userData, err := dataset.QuerySplit(rng, train, queries)
	if err != nil {
		return nil, err
	}
	part, err := dataset.PartitionUneven(rng, userData, cfg.Users, cfg.Division)
	if err != nil {
		return nil, err
	}
	teachers, err := TrainTeachers(rng, part, spec.Classes, cfg.Train)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	accs, err := teachers.Accuracies(test)
	if err != nil {
		return nil, err
	}
	res.UserAccMean = mean(accs)
	if len(part.MajorityIdx) > 0 {
		res.MajorityAcc = meanAt(accs, part.MajorityIdx)
		res.MinorityAcc = meanAt(accs, part.MinorityIdx)
	}

	labeler := cfg.labeler()
	labeled, unlabeled, correct, err := labelPool(rng, teachers, pool, cfg.VoteType, labeler)
	if err != nil {
		return nil, err
	}
	res.Retained = labeled.Len()
	res.Retention = float64(labeled.Len()) / float64(pool.Len())
	if labeled.Len() > 0 {
		res.LabelAccuracy = float64(correct) / float64(labeled.Len())
		var student *ml.SoftmaxClassifier
		if cfg.SelfTrain {
			stCfg := cfg.SelfTrainCfg
			if stCfg == (SelfTrainConfig{}) {
				stCfg = DefaultSelfTrainConfig()
			}
			student, _, err = SelfTrain(rng, labeled, unlabeled, cfg.Train, stCfg)
		} else {
			student, err = ml.TrainSoftmax(rng, labeled, cfg.Train)
		}
		if err != nil {
			return nil, fmt.Errorf("pate: train student: %w", err)
		}
		if res.StudentAccuracy, err = student.Accuracy(test); err != nil {
			return nil, err
		}
	}

	res.Epsilon, err = cfg.epsilonSpend(pool.Len(), labeled.Len())
	if err != nil {
		return nil, err
	}
	return res, nil
}

// labeler constructs the configured aggregation policy.
func (c PipelineConfig) labeler() Labeler {
	if c.UseConsensus {
		return ConsensusLabeler{
			Threshold: c.ThresholdFrac * float64(c.Users),
			Sigma1:    c.Sigma1,
			Sigma2:    c.Sigma2,
		}
	}
	return BaselineLabeler{Sigma2: c.Sigma2}
}

// labelPool queries the teachers on every pool instance and collects the
// retained (instance, label) pairs, the rejected (unlabeled) instances, and
// the count labeled correctly.
func labelPool(rng *rand.Rand, teachers *Teachers, pool *ml.Dataset, vt VoteType, labeler Labeler) (labeled, unlabeled *ml.Dataset, correct int, err error) {
	labeled = &ml.Dataset{Classes: pool.Classes}
	unlabeled = &ml.Dataset{Classes: pool.Classes}
	for i, x := range pool.X {
		votes, err := teachers.Votes(x, vt)
		if err != nil {
			return nil, nil, 0, err
		}
		total, err := SumVotes(votes)
		if err != nil {
			return nil, nil, 0, err
		}
		label, ok := labeler.Label(rng, total)
		if !ok {
			unlabeled.X = append(unlabeled.X, x)
			continue
		}
		labeled.X = append(labeled.X, x)
		labeled.Labels = append(labeled.Labels, label)
		if label == pool.Labels[i] {
			correct++
		}
	}
	return labeled, unlabeled, correct, nil
}

// epsilonSpend computes the (ε, δ=1e-6) privacy cost: every query pays the
// SVT budget; released labels additionally pay RNM. The baseline (no
// threshold) pays RNM on every query.
func (c PipelineConfig) epsilonSpend(queries, released int) (float64, error) {
	// Zero sigma marks a non-private ablation run; the baseline never
	// uses sigma1.
	if c.Sigma2 == 0 || (c.UseConsensus && c.Sigma1 == 0) {
		return 0, nil
	}
	acc := dp.NewAccountant()
	if c.UseConsensus {
		for i := 0; i < queries; i++ {
			if err := acc.AddSVT(c.Sigma1); err != nil {
				return 0, err
			}
		}
		for i := 0; i < released; i++ {
			if err := acc.AddRNM(c.Sigma2); err != nil {
				return 0, err
			}
		}
	} else {
		for i := 0; i < queries; i++ {
			if err := acc.AddRNM(c.Sigma2); err != nil {
				return 0, err
			}
		}
	}
	eps, _, err := acc.Epsilon(1e-6)
	return eps, err
}

// mean returns the arithmetic mean of xs (0 for empty input).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// meanAt returns the mean of xs at the given indices.
func meanAt(xs []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += xs[i]
	}
	return s / float64(len(idx))
}
