package pate

import (
	"fmt"
	"math/rand"

	"github.com/privconsensus/privconsensus/internal/dataset"
	"github.com/privconsensus/privconsensus/internal/dp"
	"github.com/privconsensus/privconsensus/internal/ml"
)

// Attribute (CelebA-like) pipeline: each of the 40 binary attributes is a
// separate two-class vote; consensus is checked attribute-by-attribute, so
// one query may yield labels for some attributes and be discarded for
// others (§VI-C's sparse-positive discussion).

// AttrTeachers is an ensemble of per-user attribute models.
type AttrTeachers struct {
	Models []*ml.AttributeModel
	Attrs  int
}

// TrainAttrTeachers fits one attribute model per user partition.
func TrainAttrTeachers(rng *rand.Rand, part *dataset.Partition, attrs int, cfg ml.TrainConfig) (*AttrTeachers, error) {
	if len(part.Users) == 0 {
		return nil, ErrNoTeachers
	}
	out := &AttrTeachers{Models: make([]*ml.AttributeModel, len(part.Users)), Attrs: attrs}
	for u, ds := range part.Users {
		if ds.Len() == 0 {
			dim := 1
			for _, other := range part.Users {
				if other.Len() > 0 {
					dim = len(other.X[0])
					break
				}
			}
			heads := make([]*ml.BinaryClassifier, attrs)
			for a := range heads {
				heads[a] = &ml.BinaryClassifier{W: make([]float64, dim+1), Dim: dim}
			}
			out.Models[u] = &ml.AttributeModel{Heads: heads, Dim: dim}
			continue
		}
		m, err := ml.TrainAttributes(rng, ds, cfg)
		if err != nil {
			return nil, fmt.Errorf("pate: train attribute teacher %d: %w", u, err)
		}
		out.Models[u] = m
	}
	return out, nil
}

// Accuracies returns each teacher's mean per-attribute accuracy.
func (t *AttrTeachers) Accuracies(test *ml.Dataset) ([]float64, error) {
	out := make([]float64, len(t.Models))
	for u, m := range t.Models {
		acc, err := m.AttrAccuracy(test)
		if err != nil {
			return nil, fmt.Errorf("pate: evaluate attribute teacher %d: %w", u, err)
		}
		out[u] = acc
	}
	return out, nil
}

// AttrVotes returns, for attribute a of query x, the two-class vote totals
// [votes-for-negative, votes-for-positive].
func (t *AttrTeachers) AttrVotes(x []float64) ([][2]float64, error) {
	if len(t.Models) == 0 {
		return nil, ErrNoTeachers
	}
	out := make([][2]float64, t.Attrs)
	for u, m := range t.Models {
		pred, err := m.PredictAttrs(x)
		if err != nil {
			return nil, fmt.Errorf("pate: attribute teacher %d: %w", u, err)
		}
		for a, p := range pred {
			if p {
				out[a][1]++
			} else {
				out[a][0]++
			}
		}
	}
	return out, nil
}

// AttrPipelineConfig drives one CelebA-like experiment run.
type AttrPipelineConfig struct {
	Spec          dataset.AttrSpec
	Scale         float64
	Users         int
	Division      dataset.Division
	Queries       int
	UseConsensus  bool
	ThresholdFrac float64
	Sigma1        float64
	Sigma2        float64
	Train         ml.TrainConfig
	Seed          int64
}

// Validate checks the configuration.
func (c AttrPipelineConfig) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.Scale <= 0 || c.Scale > 1 {
		return fmt.Errorf("pate: scale %g outside (0, 1]", c.Scale)
	}
	if c.Users < 1 || c.Queries < 1 {
		return fmt.Errorf("pate: invalid users=%d queries=%d", c.Users, c.Queries)
	}
	if c.ThresholdFrac < 0 || c.ThresholdFrac > 1 || c.Sigma1 < 0 || c.Sigma2 < 0 {
		return fmt.Errorf("pate: invalid threshold/sigma parameters")
	}
	return c.Train.Validate()
}

// AttrResult summarizes one attribute-pipeline run.
type AttrResult struct {
	UserAccMean     float64
	MajorityAcc     float64
	MinorityAcc     float64
	LabelAccuracy   float64 // over retained (instance, attribute) pairs
	Retention       float64 // retained pairs / total pairs
	StudentAccuracy float64
	Epsilon         float64
	Retained        int
}

// RunAttrPipeline executes the CelebA-like end-to-end flow.
func RunAttrPipeline(cfg AttrPipelineConfig) (*AttrResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	spec := cfg.Spec.Scaled(cfg.Scale)
	train, test, err := dataset.GenerateAttrs(rng, spec)
	if err != nil {
		return nil, err
	}
	queries := min(cfg.Queries, train.Len()-cfg.Users)
	pool, userData, err := dataset.QuerySplit(rng, train, queries)
	if err != nil {
		return nil, err
	}
	part, err := dataset.PartitionUneven(rng, userData, cfg.Users, cfg.Division)
	if err != nil {
		return nil, err
	}
	teachers, err := TrainAttrTeachers(rng, part, spec.Attrs, cfg.Train)
	if err != nil {
		return nil, err
	}

	res := &AttrResult{}
	accs, err := teachers.Accuracies(test)
	if err != nil {
		return nil, err
	}
	res.UserAccMean = mean(accs)
	if len(part.MajorityIdx) > 0 {
		res.MajorityAcc = meanAt(accs, part.MajorityIdx)
		res.MinorityAcc = meanAt(accs, part.MinorityIdx)
	}

	threshold := cfg.ThresholdFrac * float64(cfg.Users)
	var labeler Labeler
	if cfg.UseConsensus {
		labeler = ConsensusLabeler{Threshold: threshold, Sigma1: cfg.Sigma1, Sigma2: cfg.Sigma2}
	} else {
		labeler = BaselineLabeler{Sigma2: cfg.Sigma2}
	}

	// Per-attribute labeled subsets: pairs[a] lists (row in pool, label).
	type pair struct {
		row   int
		value bool
	}
	perAttr := make([][]pair, spec.Attrs)
	totalPairs := pool.Len() * spec.Attrs
	correct, retained, released := 0, 0, 0
	for i, x := range pool.X {
		votes, err := teachers.AttrVotes(x)
		if err != nil {
			return nil, err
		}
		for a := 0; a < spec.Attrs; a++ {
			label, ok := labeler.Label(rng, votes[a][:])
			if !ok {
				continue
			}
			released++
			retained++
			val := label == 1
			perAttr[a] = append(perAttr[a], pair{row: i, value: val})
			if val == pool.Attrs[i][a] {
				correct++
			}
		}
	}
	res.Retained = retained
	res.Retention = float64(retained) / float64(totalPairs)
	if retained > 0 {
		res.LabelAccuracy = float64(correct) / float64(retained)
	}

	// Student: one binary head per attribute, trained on that attribute's
	// retained pairs; attributes with no pairs keep a zero (majority
	// negative) head.
	dim := spec.Dim
	student := &ml.AttributeModel{Heads: make([]*ml.BinaryClassifier, spec.Attrs), Dim: dim}
	for a := 0; a < spec.Attrs; a++ {
		if len(perAttr[a]) == 0 {
			student.Heads[a] = &ml.BinaryClassifier{W: make([]float64, dim+1), Dim: dim}
			continue
		}
		sub := &ml.Dataset{Classes: 1, X: make([][]float64, len(perAttr[a])), Attrs: make([][]bool, len(perAttr[a]))}
		for j, p := range perAttr[a] {
			sub.X[j] = pool.X[p.row]
			sub.Attrs[j] = []bool{p.value}
		}
		m, err := ml.TrainAttributes(rng, sub, cfg.Train)
		if err != nil {
			return nil, fmt.Errorf("pate: train student head %d: %w", a, err)
		}
		student.Heads[a] = m.Heads[0]
	}
	if res.StudentAccuracy, err = student.AttrAccuracy(test); err != nil {
		return nil, err
	}

	// Privacy: each (query, attribute) vote release is a mechanism
	// invocation.
	if cfg.Sigma1 > 0 && cfg.Sigma2 > 0 {
		acc := dp.NewAccountant()
		if cfg.UseConsensus {
			if err := acc.AddLinear(float64(totalPairs) * 9 / (2 * cfg.Sigma1 * cfg.Sigma1)); err != nil {
				return nil, err
			}
			if err := acc.AddLinear(float64(released) / (cfg.Sigma2 * cfg.Sigma2)); err != nil {
				return nil, err
			}
		} else {
			if err := acc.AddLinear(float64(totalPairs) / (cfg.Sigma2 * cfg.Sigma2)); err != nil {
				return nil, err
			}
		}
		if res.Epsilon, _, err = acc.Epsilon(1e-6); err != nil {
			return nil, err
		}
	}
	return res, nil
}
