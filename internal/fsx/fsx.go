// Package fsx provides the small set of filesystem primitives the durable
// state files (privacy accountant, per-tenant ledger) need beyond the
// standard library: crash-safe atomic file replacement (fsync the data,
// fsync the directory) and exclusive advisory lock files so two server
// processes cannot interleave writes to the same state path.
package fsx

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// ErrLocked reports that another process (or another open handle in this
// process) already holds the exclusive lock for a state path.
var ErrLocked = errors.New("fsx: state file locked by another process")

// WriteFileSync atomically replaces path with data: the bytes are written
// to a temporary file in the same directory, fsynced, renamed over path,
// and the directory is fsynced so the rename itself survives a crash.
// A reader never observes a torn file — only the old or the new contents.
func WriteFileSync(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("fsx: create temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return fmt.Errorf("fsx: chmod temp: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("fsx: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("fsx: fsync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fsx: close temp: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("fsx: rename: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Some
// filesystems refuse fsync on directories; that is reported, not ignored,
// except for the well-known "not supported" errnos.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsx: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("fsx: fsync dir: %w", err)
	}
	return nil
}

// Lock is a held exclusive advisory lock on a state path. Release it with
// Unlock; the lock also dies with the process, so a crash never wedges the
// state file.
type Lock struct {
	f    *os.File
	path string
}

// LockPath derives the lock-file path guarding a state file.
func LockPath(statePath string) string { return statePath + ".lock" }

// Acquire takes the exclusive advisory lock guarding statePath, creating
// the lock file if needed. It fails immediately with an error wrapping
// ErrLocked when any other handle holds it — including one in the same
// process, so double-opening a durable state file is always caught.
func Acquire(statePath string) (*Lock, error) {
	path := LockPath(statePath)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("fsx: open lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return nil, fmt.Errorf("%w: %s (is another server using this state file?)", ErrLocked, statePath)
		}
		return nil, fmt.Errorf("fsx: flock %s: %w", path, err)
	}
	// Best-effort breadcrumb for operators inspecting a held lock.
	f.Truncate(0)
	fmt.Fprintf(f, "pid %d\n", os.Getpid())
	return &Lock{f: f, path: path}, nil
}

// Unlock releases the lock. Idempotent; the lock file itself is left in
// place (removing it would race a concurrent Acquire).
func (l *Lock) Unlock() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	return f.Close()
}
