package fsx

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileSyncAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFileSync(path, []byte("one"), 0o600); err != nil {
		t.Fatalf("WriteFileSync: %v", err)
	}
	if err := WriteFileSync(path, []byte("two"), 0o600); err != nil {
		t.Fatalf("WriteFileSync replace: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if string(b) != "two" {
		t.Fatalf("content = %q, want %q", b, "two")
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	for _, e := range entries {
		if e.Name() != "state.json" {
			t.Fatalf("leftover temp file %q", e.Name())
		}
	}
	if fi, err := os.Stat(path); err != nil || fi.Mode().Perm() != 0o600 {
		t.Fatalf("stat = %v mode %v, want 0600", err, fi.Mode().Perm())
	}
}

func TestAcquireConflictsAndReleases(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	l1, err := Acquire(path)
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	if _, err := Acquire(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Acquire err = %v, want ErrLocked", err)
	}
	if err := l1.Unlock(); err != nil {
		t.Fatalf("Unlock: %v", err)
	}
	if err := l1.Unlock(); err != nil {
		t.Fatalf("Unlock twice: %v", err)
	}
	l2, err := Acquire(path)
	if err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}
	defer l2.Unlock()
}
