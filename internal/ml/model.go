package ml

import (
	"fmt"
	"math/rand"
)

// Dataset is a labeled collection of feature vectors. For multiclass tasks
// Labels holds the class index per row; for multi-label (attribute) tasks
// Attrs holds a binary vector per row and Labels is unused.
type Dataset struct {
	X       [][]float64
	Labels  []int
	Attrs   [][]bool
	Classes int // number of classes (multiclass) or attributes (multi-label)
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// Validate checks internal shape consistency.
func (d *Dataset) Validate() error {
	if d.Classes < 1 {
		return fmt.Errorf("ml: dataset has %d classes", d.Classes)
	}
	if d.Labels != nil && len(d.Labels) != len(d.X) {
		return fmt.Errorf("ml: %d rows but %d labels", len(d.X), len(d.Labels))
	}
	if d.Attrs != nil && len(d.Attrs) != len(d.X) {
		return fmt.Errorf("ml: %d rows but %d attribute vectors", len(d.X), len(d.Attrs))
	}
	for i, y := range d.Labels {
		if y < 0 || y >= d.Classes {
			return fmt.Errorf("ml: row %d label %d outside [0, %d)", i, y, d.Classes)
		}
	}
	return nil
}

// Subset returns a view of the rows at the given indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{Classes: d.Classes}
	out.X = make([][]float64, len(idx))
	if d.Labels != nil {
		out.Labels = make([]int, len(idx))
	}
	if d.Attrs != nil {
		out.Attrs = make([][]bool, len(idx))
	}
	for j, i := range idx {
		out.X[j] = d.X[i]
		if d.Labels != nil {
			out.Labels[j] = d.Labels[i]
		}
		if d.Attrs != nil {
			out.Attrs[j] = d.Attrs[i]
		}
	}
	return out
}

// TrainConfig controls SGD training.
type TrainConfig struct {
	Epochs    int
	LearnRate float64
	L2        float64
	BatchSize int
}

// DefaultTrainConfig returns settings that converge quickly on the
// synthetic generators.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, LearnRate: 0.3, L2: 1e-4, BatchSize: 16}
}

// Validate checks the training configuration.
func (c TrainConfig) Validate() error {
	if c.Epochs <= 0 || c.LearnRate <= 0 || c.BatchSize <= 0 || c.L2 < 0 {
		return fmt.Errorf("ml: invalid train config %+v", c)
	}
	return nil
}

// SoftmaxClassifier is a multinomial logistic-regression model with a bias
// term folded into the weight matrix.
type SoftmaxClassifier struct {
	// W[c] is the weight vector for class c; W[c][dim] is the bias.
	W       [][]float64
	Classes int
	Dim     int
}

// NewSoftmaxClassifier creates a zero-initialized model.
func NewSoftmaxClassifier(classes, dim int) (*SoftmaxClassifier, error) {
	if classes < 2 || dim < 1 {
		return nil, fmt.Errorf("ml: invalid model shape classes=%d dim=%d", classes, dim)
	}
	w := make([][]float64, classes)
	for c := range w {
		w[c] = make([]float64, dim+1)
	}
	return &SoftmaxClassifier{W: w, Classes: classes, Dim: dim}, nil
}

// logits computes the pre-softmax scores for x.
func (m *SoftmaxClassifier) logits(x []float64) []float64 {
	out := make([]float64, m.Classes)
	for c := 0; c < m.Classes; c++ {
		w := m.W[c]
		var s float64
		for i, xi := range x {
			s += w[i] * xi
		}
		out[c] = s + w[m.Dim]
	}
	return out
}

// PredictProba returns the class-probability vector for x.
func (m *SoftmaxClassifier) PredictProba(x []float64) ([]float64, error) {
	if len(x) != m.Dim {
		return nil, fmt.Errorf("%w: input %d, model %d", ErrDimensionMismatch, len(x), m.Dim)
	}
	return Softmax(m.logits(x)), nil
}

// Predict returns the most likely class for x.
func (m *SoftmaxClassifier) Predict(x []float64) (int, error) {
	if len(x) != m.Dim {
		return 0, fmt.Errorf("%w: input %d, model %d", ErrDimensionMismatch, len(x), m.Dim)
	}
	return Argmax(m.logits(x)), nil
}

// TrainSoftmax fits a softmax classifier to ds with minibatch SGD.
func TrainSoftmax(rng *rand.Rand, ds *Dataset, cfg TrainConfig) (*SoftmaxClassifier, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("ml: cannot train on empty dataset")
	}
	if ds.Labels == nil {
		return nil, fmt.Errorf("ml: softmax training requires class labels")
	}
	dim := len(ds.X[0])
	m, err := NewSoftmaxClassifier(ds.Classes, dim)
	if err != nil {
		return nil, err
	}
	n := ds.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := cfg.LearnRate / (1 + 0.05*float64(epoch))
		for start := 0; start < n; start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, n)
			m.sgdStep(ds, order[start:end], lr, cfg.L2)
		}
	}
	return m, nil
}

// sgdStep applies one minibatch gradient step.
func (m *SoftmaxClassifier) sgdStep(ds *Dataset, batch []int, lr, l2 float64) {
	scale := lr / float64(len(batch))
	for _, i := range batch {
		x := ds.X[i]
		p := Softmax(m.logits(x))
		for c := 0; c < m.Classes; c++ {
			grad := p[c]
			if c == ds.Labels[i] {
				grad -= 1
			}
			if grad == 0 {
				continue
			}
			w := m.W[c]
			g := scale * grad
			for j, xj := range x {
				w[j] -= g * xj
			}
			w[m.Dim] -= g
		}
	}
	if l2 > 0 {
		decay := 1 - lr*l2
		for c := range m.W {
			for j := 0; j < m.Dim; j++ { // do not decay the bias
				m.W[c][j] *= decay
			}
		}
	}
}

// Accuracy returns the fraction of rows in ds classified correctly.
func (m *SoftmaxClassifier) Accuracy(ds *Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, fmt.Errorf("ml: empty evaluation set")
	}
	correct := 0
	for i, x := range ds.X {
		pred, err := m.Predict(x)
		if err != nil {
			return 0, err
		}
		if pred == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

// BinaryClassifier is a logistic-regression model for one binary attribute.
type BinaryClassifier struct {
	W   []float64 // W[dim] is the bias
	Dim int
}

// PredictProba returns P(attr = 1 | x).
func (m *BinaryClassifier) PredictProba(x []float64) (float64, error) {
	if len(x) != m.Dim {
		return 0, fmt.Errorf("%w: input %d, model %d", ErrDimensionMismatch, len(x), m.Dim)
	}
	var s float64
	for i, xi := range x {
		s += m.W[i] * xi
	}
	return Sigmoid(s + m.W[m.Dim]), nil
}

// Predict returns the thresholded attribute prediction.
func (m *BinaryClassifier) Predict(x []float64) (bool, error) {
	p, err := m.PredictProba(x)
	return p >= 0.5, err
}

// AttributeModel is a bank of independent binary classifiers, one per
// attribute (the CelebA substitute).
type AttributeModel struct {
	Heads []*BinaryClassifier
	Dim   int
}

// TrainAttributes fits one binary logistic head per attribute.
func TrainAttributes(rng *rand.Rand, ds *Dataset, cfg TrainConfig) (*AttributeModel, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("ml: cannot train on empty dataset")
	}
	if ds.Attrs == nil {
		return nil, fmt.Errorf("ml: attribute training requires attribute vectors")
	}
	dim := len(ds.X[0])
	model := &AttributeModel{Heads: make([]*BinaryClassifier, ds.Classes), Dim: dim}
	n := ds.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for a := 0; a < ds.Classes; a++ {
		head := &BinaryClassifier{W: make([]float64, dim+1), Dim: dim}
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
			lr := cfg.LearnRate / (1 + 0.05*float64(epoch))
			for start := 0; start < n; start += cfg.BatchSize {
				end := min(start+cfg.BatchSize, n)
				for _, i := range order[start:end] {
					x := ds.X[i]
					var s float64
					for j, xj := range x {
						s += head.W[j] * xj
					}
					p := Sigmoid(s + head.W[dim])
					y := 0.0
					if ds.Attrs[i][a] {
						y = 1
					}
					g := lr * (p - y) / float64(end-start)
					for j, xj := range x {
						head.W[j] -= g * xj
					}
					head.W[dim] -= g
				}
				if cfg.L2 > 0 {
					decay := 1 - lr*cfg.L2
					for j := 0; j < dim; j++ {
						head.W[j] *= decay
					}
				}
			}
		}
		model.Heads[a] = head
	}
	return model, nil
}

// PredictAttrs returns the thresholded attribute vector for x.
func (m *AttributeModel) PredictAttrs(x []float64) ([]bool, error) {
	out := make([]bool, len(m.Heads))
	for a, head := range m.Heads {
		v, err := head.Predict(x)
		if err != nil {
			return nil, err
		}
		out[a] = v
	}
	return out, nil
}

// AttrAccuracy returns the mean per-attribute accuracy over ds.
func (m *AttributeModel) AttrAccuracy(ds *Dataset) (float64, error) {
	if ds.Len() == 0 || ds.Attrs == nil {
		return 0, fmt.Errorf("ml: empty or non-attribute evaluation set")
	}
	var correct, total int
	for i, x := range ds.X {
		pred, err := m.PredictAttrs(x)
		if err != nil {
			return 0, err
		}
		for a := range pred {
			if pred[a] == ds.Attrs[i][a] {
				correct++
			}
			total++
		}
	}
	return float64(correct) / float64(total), nil
}
