package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestDot(t *testing.T) {
	got, err := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil || got != 32 {
		t.Errorf("Dot = %g, %v; want 32", got, err)
	}
	if _, err := Dot([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestAXPYScale(t *testing.T) {
	y := []float64{1, 1}
	if err := AXPY(2, []float64{3, 4}, y); err != nil {
		t.Fatal(err)
	}
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("AXPY result %v", y)
	}
	if err := AXPY(1, []float64{1}, y); err == nil {
		t.Error("expected dimension error")
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Errorf("Scale result %v", y)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	var sum float64
	for _, v := range p {
		if v <= 0 || v >= 1 {
			t.Errorf("probability %g outside (0,1)", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sums to %g", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Errorf("softmax not order preserving: %v", p)
	}
	// Stability for huge logits.
	p = Softmax([]float64{1000, 1001})
	if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
		t.Error("softmax overflowed")
	}
}

func TestSoftmaxQuick(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		logits := make([]float64, len(raw))
		for i, v := range raw {
			logits[i] = float64(v) / 8
		}
		p := Softmax(logits)
		var sum float64
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("Sigmoid(0) = %g", s)
	}
	if s := Sigmoid(100); s <= 0.999 {
		t.Errorf("Sigmoid(100) = %g", s)
	}
	if s := Sigmoid(-100); s >= 0.001 {
		t.Errorf("Sigmoid(-100) = %g", s)
	}
	// Symmetry: sigmoid(-x) = 1 - sigmoid(x).
	for _, x := range []float64{0.5, 2, 10} {
		if math.Abs(Sigmoid(-x)-(1-Sigmoid(x))) > 1e-12 {
			t.Errorf("sigmoid asymmetric at %g", x)
		}
	}
}

func TestArgmax(t *testing.T) {
	if got := Argmax([]float64{1, 5, 3}); got != 1 {
		t.Errorf("Argmax = %d, want 1", got)
	}
	if got := Argmax([]float64{7, 7, 3}); got != 0 {
		t.Errorf("Argmax tie = %d, want 0 (lowest index)", got)
	}
}

// linearlySeparable builds a trivially separable 3-class dataset.
func linearlySeparable(rng *rand.Rand, n int) *Dataset {
	ds := &Dataset{Classes: 3, X: make([][]float64, n), Labels: make([]int, n)}
	centers := [][]float64{{3, 0}, {0, 3}, {-3, -3}}
	for i := 0; i < n; i++ {
		c := rng.Intn(3)
		ds.X[i] = []float64{centers[c][0] + rng.NormFloat64()*0.3, centers[c][1] + rng.NormFloat64()*0.3}
		ds.Labels[i] = c
	}
	return ds
}

func TestTrainSoftmaxLearnsSeparableData(t *testing.T) {
	rng := testRNG(1)
	train := linearlySeparable(rng, 300)
	test := linearlySeparable(rng, 200)
	m, err := TrainSoftmax(rng, train, DefaultTrainConfig())
	if err != nil {
		t.Fatalf("TrainSoftmax: %v", err)
	}
	acc, err := m.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.97 {
		t.Errorf("accuracy %g on separable data, want >= 0.97", acc)
	}
}

func TestTrainSoftmaxValidation(t *testing.T) {
	rng := testRNG(2)
	good := linearlySeparable(rng, 10)
	if _, err := TrainSoftmax(rng, &Dataset{Classes: 3}, DefaultTrainConfig()); err == nil {
		t.Error("expected error for empty dataset")
	}
	bad := DefaultTrainConfig()
	bad.Epochs = 0
	if _, err := TrainSoftmax(rng, good, bad); err == nil {
		t.Error("expected error for bad config")
	}
	noLabels := &Dataset{Classes: 2, X: [][]float64{{1}}}
	if _, err := TrainSoftmax(rng, noLabels, DefaultTrainConfig()); err == nil {
		t.Error("expected error for missing labels")
	}
	corrupt := linearlySeparable(rng, 10)
	corrupt.Labels[0] = 99
	if _, err := TrainSoftmax(rng, corrupt, DefaultTrainConfig()); err == nil {
		t.Error("expected error for out-of-range label")
	}
}

func TestPredictProbaSumsToOne(t *testing.T) {
	rng := testRNG(3)
	m, err := TrainSoftmax(rng, linearlySeparable(rng, 100), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.PredictProba([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", sum)
	}
	if _, err := m.PredictProba([]float64{1}); err == nil {
		t.Error("expected dimension error")
	}
	if _, err := m.Predict([]float64{1, 2, 3}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestMoreDataHelps(t *testing.T) {
	// The load-bearing property for Fig. 2: accuracy grows with local
	// dataset size on a noisy problem.
	gen := func(rng *rand.Rand, n int) *Dataset {
		ds := &Dataset{Classes: 4, X: make([][]float64, n), Labels: make([]int, n)}
		centers := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {0.6, 0.6, 0.6}}
		for i := 0; i < n; i++ {
			c := rng.Intn(4)
			x := make([]float64, 3)
			for j := range x {
				x[j] = centers[c][j] + rng.NormFloat64()*0.8
			}
			ds.X[i] = x
			ds.Labels[i] = c
		}
		return ds
	}
	rng := testRNG(4)
	test := gen(rng, 2000)
	accSmall, accLarge := 0.0, 0.0
	const reps = 3
	for r := 0; r < reps; r++ {
		mSmall, err := TrainSoftmax(rng, gen(rng, 12), DefaultTrainConfig())
		if err != nil {
			t.Fatal(err)
		}
		mLarge, err := TrainSoftmax(rng, gen(rng, 1200), DefaultTrainConfig())
		if err != nil {
			t.Fatal(err)
		}
		a1, err := mSmall.Accuracy(test)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := mLarge.Accuracy(test)
		if err != nil {
			t.Fatal(err)
		}
		accSmall += a1 / reps
		accLarge += a2 / reps
	}
	if accLarge <= accSmall {
		t.Errorf("more data did not help: small=%g large=%g", accSmall, accLarge)
	}
}

func TestSubset(t *testing.T) {
	rng := testRNG(5)
	ds := linearlySeparable(rng, 20)
	sub := ds.Subset([]int{0, 5, 7})
	if sub.Len() != 3 {
		t.Fatalf("subset length %d", sub.Len())
	}
	if sub.Labels[1] != ds.Labels[5] {
		t.Error("subset labels misaligned")
	}
}

func attrDataset(rng *rand.Rand, n int) *Dataset {
	// Two attributes driven by two features.
	ds := &Dataset{Classes: 2, X: make([][]float64, n), Attrs: make([][]bool, n)}
	for i := 0; i < n; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		ds.X[i] = x
		ds.Attrs[i] = []bool{x[0] > 0.5, x[1] < -0.2}
	}
	return ds
}

func TestTrainAttributesLearns(t *testing.T) {
	rng := testRNG(6)
	train := attrDataset(rng, 600)
	test := attrDataset(rng, 400)
	m, err := TrainAttributes(rng, train, DefaultTrainConfig())
	if err != nil {
		t.Fatalf("TrainAttributes: %v", err)
	}
	acc, err := m.AttrAccuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("attribute accuracy %g, want >= 0.9", acc)
	}
	preds, err := m.PredictAttrs(test.X[0])
	if err != nil || len(preds) != 2 {
		t.Errorf("PredictAttrs = %v, %v", preds, err)
	}
}

func TestTrainAttributesValidation(t *testing.T) {
	rng := testRNG(7)
	noAttrs := linearlySeparable(rng, 10)
	if _, err := TrainAttributes(rng, noAttrs, DefaultTrainConfig()); err == nil {
		t.Error("expected error for missing attributes")
	}
	if _, err := TrainAttributes(rng, &Dataset{Classes: 2}, DefaultTrainConfig()); err == nil {
		t.Error("expected error for empty dataset")
	}
}

func TestBinaryClassifierDimCheck(t *testing.T) {
	m := &BinaryClassifier{W: []float64{1, 2, 0}, Dim: 2}
	if _, err := m.PredictProba([]float64{1}); err == nil {
		t.Error("expected dimension error")
	}
	p, err := m.PredictProba([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-Sigmoid(1)) > 1e-12 {
		t.Errorf("PredictProba = %g, want %g", p, Sigmoid(1))
	}
}

func TestAccuracyEmptySet(t *testing.T) {
	m, _ := NewSoftmaxClassifier(2, 1)
	if _, err := m.Accuracy(&Dataset{Classes: 2}); err == nil {
		t.Error("expected error for empty evaluation set")
	}
	am := &AttributeModel{}
	if _, err := am.AttrAccuracy(&Dataset{Classes: 2}); err == nil {
		t.Error("expected error for empty attribute evaluation set")
	}
}

func TestNewSoftmaxClassifierValidation(t *testing.T) {
	if _, err := NewSoftmaxClassifier(1, 5); err == nil {
		t.Error("expected error for single class")
	}
	if _, err := NewSoftmaxClassifier(3, 0); err == nil {
		t.Error("expected error for zero dim")
	}
}
