// Package ml is the machine-learning substrate standing in for the paper's
// PyTorch stack: dense linear algebra, multinomial (softmax) and binary
// logistic classifiers trained with minibatch SGD, and evaluation metrics.
//
// The substitution rationale (DESIGN.md): every effect the paper evaluates
// is a function of the vote statistics of locally trained models — accuracy
// as a function of local data size, inter-user agreement, attribute
// sparsity — all of which logistic models on controllable synthetic data
// reproduce.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when vector/matrix shapes disagree.
var ErrDimensionMismatch = errors.New("ml: dimension mismatch")

// Dot returns the inner product of a and b.
func Dot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(a), len(b))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}

// AXPY computes y += alpha * x in place.
func AXPY(alpha float64, x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(x), len(y))
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
	return nil
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Softmax returns the softmax of logits, computed stably.
func Softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(v - maxv)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Sigmoid returns 1/(1+e^-x).
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Argmax returns the index of the largest element (lowest index on ties).
func Argmax(xs []float64) int {
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}
