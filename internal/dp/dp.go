// Package dp implements the differential-privacy substrate of the paper:
// Gaussian noise generation (including the distributed per-user noise
// shares of §IV-D), the Rényi-DP accountant, the RDP costs of the Sparse
// Vector Technique (Lemma 1) and Report Noisy Maximum (Lemma 2), and the
// RDP → (ε, δ)-DP conversion of Theorem 5.
package dp

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Errors returned by the package.
var (
	ErrBadSigma = errors.New("dp: sigma must be positive")
	ErrBadDelta = errors.New("dp: delta must be in (0, 1)")
)

// Gaussian draws one sample from N(0, sigma^2).
func Gaussian(rng *rand.Rand, sigma float64) float64 {
	return rng.NormFloat64() * sigma
}

// GaussianVector draws k independent samples from N(0, sigma^2).
func GaussianVector(rng *rand.Rand, sigma float64, k int) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = Gaussian(rng, sigma)
	}
	return out
}

// UserNoiseSigma1 returns the standard deviation each user applies to its
// z1 shares so that the threshold check carries total noise N(0, sigma1^2).
//
// Alg. 5 sends +z1^u to S1 and -z1^u to S2 inside the offset shares; the
// recombined check value carries 2*Σ z1^u. With per-user deviation
// sigma1/(2*sqrt(|U|)) the total is N(0, sigma1^2) exactly (DESIGN.md,
// protocol note 3; the paper's stated sigma1^2/(2|U|) per-user variance
// would double the effective variance).
func UserNoiseSigma1(sigma1 float64, users int) (float64, error) {
	if sigma1 <= 0 {
		return 0, ErrBadSigma
	}
	if users <= 0 {
		return 0, fmt.Errorf("dp: user count must be positive, got %d", users)
	}
	return sigma1 / (2 * math.Sqrt(float64(users))), nil
}

// UserNoiseSigma2 returns the per-user deviation for the z2 shares. Both
// servers receive +z2^u (Alg. 5 step 6), so the recombined noisy votes
// carry 2*Σ z2^u; per-user deviation sigma2/(2*sqrt(|U|)) yields total
// N(0, sigma2^2).
func UserNoiseSigma2(sigma2 float64, users int) (float64, error) {
	return UserNoiseSigma1(sigma2, users)
}

// NoisyThresholdCheck is the plaintext reference of the Sparse Vector
// Technique instance (Alg. 4 line 1): it reports whether
// maxVotes + N(0, sigma1^2) >= threshold.
func NoisyThresholdCheck(rng *rand.Rand, maxVotes, threshold, sigma1 float64) bool {
	return maxVotes+Gaussian(rng, sigma1) >= threshold
}

// ReportNoisyMax is the plaintext reference of the Report Noisy Maximum
// instance (Alg. 4 line 2): it returns argmax_i (votes[i] + N(0, sigma2^2)).
func ReportNoisyMax(rng *rand.Rand, votes []float64, sigma2 float64) int {
	best, bestIdx := math.Inf(-1), -1
	for i, v := range votes {
		noisy := v + Gaussian(rng, sigma2)
		if noisy > best {
			best, bestIdx = noisy, i
		}
	}
	return bestIdx
}

// SVTCost returns the RDP cost of one Sparse Vector Technique invocation at
// order alpha (Lemma 1): 9*alpha / (2*sigma1^2).
func SVTCost(alpha, sigma1 float64) float64 {
	return 9 * alpha / (2 * sigma1 * sigma1)
}

// RNMCost returns the RDP cost of one Report Noisy Maximum invocation at
// order alpha (Lemma 2): alpha / sigma2^2.
func RNMCost(alpha, sigma2 float64) float64 {
	return alpha / (sigma2 * sigma2)
}

// Accountant composes RDP mechanisms whose cost is linear in the order
// alpha, i.e. eps(alpha) = coef * alpha — which covers every mechanism in
// the paper (Gaussian-based SVT and RNM). Composition (Theorem 2) adds
// coefficients.
type Accountant struct {
	coef float64
	// counters for reporting
	svtCount int
	rnmCount int
}

// NewAccountant returns an empty accountant.
func NewAccountant() *Accountant { return &Accountant{} }

// AddSVT records one SVT invocation with deviation sigma1 (every query
// pays this, answered or not).
func (a *Accountant) AddSVT(sigma1 float64) error {
	if sigma1 <= 0 {
		return ErrBadSigma
	}
	a.coef += 9 / (2 * sigma1 * sigma1)
	a.svtCount++
	return nil
}

// AddRNM records one Report Noisy Maximum invocation with deviation sigma2
// (paid only by queries that pass the threshold check).
func (a *Accountant) AddRNM(sigma2 float64) error {
	if sigma2 <= 0 {
		return ErrBadSigma
	}
	a.coef += 1 / (sigma2 * sigma2)
	a.rnmCount++
	return nil
}

// AddLinear records a custom mechanism with RDP eps(alpha) = coef*alpha.
func (a *Accountant) AddLinear(coef float64) error {
	if coef < 0 {
		return fmt.Errorf("dp: RDP coefficient must be non-negative, got %g", coef)
	}
	a.coef += coef
	return nil
}

// Coefficient returns the accumulated linear RDP coefficient c with
// eps_RDP(alpha) = c * alpha.
func (a *Accountant) Coefficient() float64 { return a.coef }

// Counts returns the number of recorded SVT and RNM invocations.
func (a *Accountant) Counts() (svt, rnm int) { return a.svtCount, a.rnmCount }

// RDPEpsilon returns the composed RDP epsilon at order alpha.
func (a *Accountant) RDPEpsilon(alpha float64) float64 { return a.coef * alpha }

// accountantState is the serialized shape of an Accountant: the linear RDP
// coefficient plus the invocation counters, which fully determine the
// privacy spend.
type accountantState struct {
	Coefficient float64 `json:"coefficient"`
	SVTCount    int     `json:"svt_count"`
	RNMCount    int     `json:"rnm_count"`
}

// MarshalJSON serializes the accountant so its spend can be persisted
// across process restarts.
func (a *Accountant) MarshalJSON() ([]byte, error) {
	return json.Marshal(accountantState{Coefficient: a.coef, SVTCount: a.svtCount, RNMCount: a.rnmCount})
}

// UnmarshalJSON restores an accountant serialized by MarshalJSON,
// rejecting states that could silently under-report spend.
func (a *Accountant) UnmarshalJSON(b []byte) error {
	var s accountantState
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	if s.Coefficient < 0 || math.IsNaN(s.Coefficient) || math.IsInf(s.Coefficient, 0) ||
		s.SVTCount < 0 || s.RNMCount < 0 {
		return fmt.Errorf("dp: invalid accountant state (coefficient %g, svt %d, rnm %d)",
			s.Coefficient, s.SVTCount, s.RNMCount)
	}
	a.coef, a.svtCount, a.rnmCount = s.Coefficient, s.SVTCount, s.RNMCount
	return nil
}

// Epsilon converts the accumulated RDP guarantee to (ε, δ)-DP using the
// standard conversion ε = min_α [c·α + log(1/δ)/(α-1)]. For linear RDP the
// optimum is closed-form: α* = 1 + sqrt(log(1/δ)/c), giving
// ε = c + 2*sqrt(c*log(1/δ)).
func (a *Accountant) Epsilon(delta float64) (eps, alphaStar float64, err error) {
	if delta <= 0 || delta >= 1 {
		return 0, 0, ErrBadDelta
	}
	if a.coef == 0 {
		return 0, math.Inf(1), nil
	}
	logInv := math.Log(1 / delta)
	alphaStar = 1 + math.Sqrt(logInv/a.coef)
	eps = a.coef + 2*math.Sqrt(a.coef*logInv)
	return eps, alphaStar, nil
}

// TheoremFiveEpsilon returns the per-query (ε, δ) guarantee of Theorem 5
// for one full Alg. 5 execution (one SVT + one RNM):
//
//	ε = sqrt(2*(9/σ1² + 2/σ2²)*log(1/δ)) + (9/(2σ1²) + 1/σ2²)
func TheoremFiveEpsilon(sigma1, sigma2, delta float64) (float64, error) {
	if sigma1 <= 0 || sigma2 <= 0 {
		return 0, ErrBadSigma
	}
	if delta <= 0 || delta >= 1 {
		return 0, ErrBadDelta
	}
	c := 9/(2*sigma1*sigma1) + 1/(sigma2*sigma2)
	return math.Sqrt(2*(9/(sigma1*sigma1)+2/(sigma2*sigma2))*math.Log(1/delta)) + c, nil
}

// TheoremFiveAlpha returns the optimal RDP order from Theorem 5:
//
//	α* = 1 + sqrt(2*log(1/δ) / (9/σ1² + 2/σ2²))
func TheoremFiveAlpha(sigma1, sigma2, delta float64) (float64, error) {
	if sigma1 <= 0 || sigma2 <= 0 {
		return 0, ErrBadSigma
	}
	if delta <= 0 || delta >= 1 {
		return 0, ErrBadDelta
	}
	return 1 + math.Sqrt(2*math.Log(1/delta)/(9/(sigma1*sigma1)+2/(sigma2*sigma2))), nil
}

// CoefficientForEpsilon inverts the linear-RDP conversion: it returns the
// RDP coefficient c such that a mechanism with eps_RDP(alpha) = c*alpha
// converts to exactly (epsilon, delta)-DP. Inverse of Accountant.Epsilon:
// with s = sqrt(c), epsilon = s^2 + 2*s*sqrt(log(1/delta)), so
// s = sqrt(L + epsilon) - sqrt(L) with L = log(1/delta).
func CoefficientForEpsilon(epsilon, delta float64) (float64, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("dp: epsilon must be positive, got %g", epsilon)
	}
	if delta <= 0 || delta >= 1 {
		return 0, ErrBadDelta
	}
	l := math.Log(1 / delta)
	s := math.Sqrt(l+epsilon) - math.Sqrt(l)
	return s * s, nil
}

// SigmaForBudget searches for a common noise multiplier m such that running
// queries full Alg. 5 executions with sigma1 = m*ratio1, sigma2 = m*ratio2
// meets the (epsilon, delta) target. It returns the smallest such m found
// by bisection (larger m = more noise = less privacy spend).
func SigmaForBudget(epsilon, delta float64, queries int, ratio1, ratio2 float64) (float64, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("dp: epsilon must be positive, got %g", epsilon)
	}
	if delta <= 0 || delta >= 1 {
		return 0, ErrBadDelta
	}
	if queries <= 0 {
		return 0, fmt.Errorf("dp: query count must be positive, got %d", queries)
	}
	if ratio1 <= 0 || ratio2 <= 0 {
		return 0, ErrBadSigma
	}
	spend := func(m float64) float64 {
		acc := NewAccountant()
		for i := 0; i < queries; i++ {
			_ = acc.AddSVT(m * ratio1)
			_ = acc.AddRNM(m * ratio2)
		}
		eps, _, err := acc.Epsilon(delta)
		if err != nil {
			return math.Inf(1)
		}
		return eps
	}
	lo, hi := 1e-6, 1e6
	if spend(hi) > epsilon {
		return 0, fmt.Errorf("dp: budget ε=%g unattainable even with multiplier %g", epsilon, hi)
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection over 12 decades
		if spend(mid) > epsilon {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}
