package dp

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestGaussianMoments(t *testing.T) {
	rng := testRNG(1)
	const n = 200000
	sigma := 3.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := Gaussian(rng, sigma)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean = %g, want ~0", mean)
	}
	if math.Abs(variance-sigma*sigma) > 0.2 {
		t.Errorf("variance = %g, want ~%g", variance, sigma*sigma)
	}
}

func TestGaussianVector(t *testing.T) {
	rng := testRNG(2)
	v := GaussianVector(rng, 1.0, 10)
	if len(v) != 10 {
		t.Fatalf("expected 10 samples, got %d", len(v))
	}
	allZero := true
	for _, x := range v {
		if x != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("all samples are zero")
	}
}

// The calibrated per-user noise shares must yield total check noise of
// variance sigma1^2: total = 2 * Σ_u z1^u.
func TestUserNoiseCalibration(t *testing.T) {
	rng := testRNG(3)
	const users = 50
	const trials = 20000
	sigma1 := 4.0
	perUser, err := UserNoiseSigma1(sigma1, users)
	if err != nil {
		t.Fatal(err)
	}
	var sumSq float64
	for i := 0; i < trials; i++ {
		var z float64
		for u := 0; u < users; u++ {
			z += Gaussian(rng, perUser)
		}
		total := 2 * z
		sumSq += total * total
	}
	variance := sumSq / trials
	if math.Abs(variance-sigma1*sigma1) > 0.8 {
		t.Errorf("effective check variance = %g, want ~%g", variance, sigma1*sigma1)
	}
}

func TestUserNoiseValidation(t *testing.T) {
	if _, err := UserNoiseSigma1(0, 10); err == nil {
		t.Error("expected error for sigma <= 0")
	}
	if _, err := UserNoiseSigma1(1, 0); err == nil {
		t.Error("expected error for users <= 0")
	}
	if _, err := UserNoiseSigma2(-1, 10); err == nil {
		t.Error("expected error for negative sigma")
	}
}

func TestNoisyThresholdCheckExtremes(t *testing.T) {
	rng := testRNG(4)
	// Far above threshold: essentially always passes.
	pass := 0
	for i := 0; i < 1000; i++ {
		if NoisyThresholdCheck(rng, 100, 10, 1.0) {
			pass++
		}
	}
	if pass != 1000 {
		t.Errorf("far-above threshold passed %d/1000", pass)
	}
	// Far below: essentially never.
	pass = 0
	for i := 0; i < 1000; i++ {
		if NoisyThresholdCheck(rng, 10, 100, 1.0) {
			pass++
		}
	}
	if pass != 0 {
		t.Errorf("far-below threshold passed %d/1000", pass)
	}
}

func TestReportNoisyMax(t *testing.T) {
	rng := testRNG(5)
	votes := []float64{1, 2, 50, 3}
	// With tiny noise the true argmax wins essentially always.
	hits := 0
	for i := 0; i < 500; i++ {
		if ReportNoisyMax(rng, votes, 0.01) == 2 {
			hits++
		}
	}
	if hits != 500 {
		t.Errorf("argmax hit %d/500 with tiny noise", hits)
	}
	// With huge noise the winner should vary.
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		seen[ReportNoisyMax(rng, votes, 1000)] = true
	}
	if len(seen) < 3 {
		t.Errorf("with huge noise expected varied winners, saw %d", len(seen))
	}
}

func TestCostFormulas(t *testing.T) {
	if got, want := SVTCost(2, 3), 9.0*2/(2*9); got != want {
		t.Errorf("SVTCost = %g, want %g", got, want)
	}
	if got, want := RNMCost(2, 3), 2.0/9; got != want {
		t.Errorf("RNMCost = %g, want %g", got, want)
	}
}

func TestAccountantComposition(t *testing.T) {
	acc := NewAccountant()
	if err := acc.AddSVT(2); err != nil {
		t.Fatal(err)
	}
	if err := acc.AddRNM(3); err != nil {
		t.Fatal(err)
	}
	wantCoef := 9.0/(2*4) + 1.0/9
	if math.Abs(acc.Coefficient()-wantCoef) > 1e-12 {
		t.Errorf("coefficient = %g, want %g", acc.Coefficient(), wantCoef)
	}
	if got := acc.RDPEpsilon(5); math.Abs(got-5*wantCoef) > 1e-12 {
		t.Errorf("RDPEpsilon(5) = %g, want %g", got, 5*wantCoef)
	}
	svt, rnm := acc.Counts()
	if svt != 1 || rnm != 1 {
		t.Errorf("counts = %d, %d; want 1, 1", svt, rnm)
	}
	if err := acc.AddSVT(0); err == nil {
		t.Error("expected error for sigma 0")
	}
	if err := acc.AddLinear(-1); err == nil {
		t.Error("expected error for negative coefficient")
	}
}

// The accountant's closed-form conversion must match Theorem 5 for a single
// query (one SVT + one RNM).
func TestEpsilonMatchesTheoremFive(t *testing.T) {
	sigma1, sigma2, delta := 5.0, 4.0, 1e-6
	acc := NewAccountant()
	if err := acc.AddSVT(sigma1); err != nil {
		t.Fatal(err)
	}
	if err := acc.AddRNM(sigma2); err != nil {
		t.Fatal(err)
	}
	eps, alpha, err := acc.Epsilon(delta)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TheoremFiveEpsilon(sigma1, sigma2, delta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eps-want) > 1e-9 {
		t.Errorf("accountant eps = %g, Theorem 5 = %g", eps, want)
	}
	wantAlpha, err := TheoremFiveAlpha(sigma1, sigma2, delta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha-wantAlpha) > 1e-9 {
		t.Errorf("accountant alpha = %g, Theorem 5 = %g", alpha, wantAlpha)
	}
}

// The closed-form optimum must actually minimize c*a + log(1/δ)/(a-1).
func TestEpsilonIsMinimum(t *testing.T) {
	acc := NewAccountant()
	if err := acc.AddSVT(3); err != nil {
		t.Fatal(err)
	}
	delta := 1e-5
	eps, alphaStar, err := acc.Epsilon(delta)
	if err != nil {
		t.Fatal(err)
	}
	c := acc.Coefficient()
	obj := func(a float64) float64 { return c*a + math.Log(1/delta)/(a-1) }
	if math.Abs(obj(alphaStar)-eps) > 1e-9 {
		t.Errorf("objective at alpha* = %g, eps = %g", obj(alphaStar), eps)
	}
	for _, a := range []float64{alphaStar * 0.5, alphaStar * 0.9, alphaStar * 1.1, alphaStar * 2} {
		if a <= 1 {
			continue
		}
		if obj(a) < eps-1e-9 {
			t.Errorf("objective at alpha=%g is %g < eps=%g: not a minimum", a, obj(a), eps)
		}
	}
}

func TestEpsilonValidation(t *testing.T) {
	acc := NewAccountant()
	if _, _, err := acc.Epsilon(0); err == nil {
		t.Error("expected error for delta = 0")
	}
	if _, _, err := acc.Epsilon(1); err == nil {
		t.Error("expected error for delta = 1")
	}
	eps, alpha, err := acc.Epsilon(1e-5)
	if err != nil || eps != 0 || !math.IsInf(alpha, 1) {
		t.Errorf("empty accountant: eps=%g alpha=%g err=%v", eps, alpha, err)
	}
}

func TestEpsilonMonotoneInQueries(t *testing.T) {
	prev := 0.0
	for q := 1; q <= 5; q++ {
		acc := NewAccountant()
		for i := 0; i < q; i++ {
			if err := acc.AddSVT(4); err != nil {
				t.Fatal(err)
			}
			if err := acc.AddRNM(4); err != nil {
				t.Fatal(err)
			}
		}
		eps, _, err := acc.Epsilon(1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if eps <= prev {
			t.Errorf("epsilon not increasing: q=%d eps=%g prev=%g", q, eps, prev)
		}
		prev = eps
	}
}

func TestTheoremFiveValidation(t *testing.T) {
	if _, err := TheoremFiveEpsilon(0, 1, 1e-6); err == nil {
		t.Error("expected sigma error")
	}
	if _, err := TheoremFiveEpsilon(1, 1, 2); err == nil {
		t.Error("expected delta error")
	}
	if _, err := TheoremFiveAlpha(1, 0, 1e-6); err == nil {
		t.Error("expected sigma error")
	}
	if _, err := TheoremFiveAlpha(1, 1, 0); err == nil {
		t.Error("expected delta error")
	}
}

// CoefficientForEpsilon must invert the accountant's conversion exactly.
func TestCoefficientForEpsilonInverse(t *testing.T) {
	delta := 1e-6
	for _, c := range []float64{0.001, 0.05, 1.3, 10} {
		acc := NewAccountant()
		if err := acc.AddLinear(c); err != nil {
			t.Fatal(err)
		}
		eps, _, err := acc.Epsilon(delta)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CoefficientForEpsilon(eps, delta)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c)/c > 1e-9 {
			t.Errorf("CoefficientForEpsilon(%g) = %g, want %g", eps, got, c)
		}
	}
	if _, err := CoefficientForEpsilon(0, delta); err == nil {
		t.Error("expected error for epsilon 0")
	}
	if _, err := CoefficientForEpsilon(1, 0); err == nil {
		t.Error("expected error for delta 0")
	}
}

func TestSigmaForBudget(t *testing.T) {
	eps, delta := 8.19, 1e-6
	const queries = 100
	m, err := SigmaForBudget(eps, delta, queries, 1.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Spending with the found multiplier must be within budget...
	acc := NewAccountant()
	for i := 0; i < queries; i++ {
		if err := acc.AddSVT(m); err != nil {
			t.Fatal(err)
		}
		if err := acc.AddRNM(m); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := acc.Epsilon(delta)
	if err != nil {
		t.Fatal(err)
	}
	if got > eps*1.0001 {
		t.Errorf("found multiplier %g spends ε=%g > budget %g", m, got, eps)
	}
	// ...and close to it (not wastefully noisy).
	acc2 := NewAccountant()
	for i := 0; i < queries; i++ {
		if err := acc2.AddSVT(m * 0.99); err != nil {
			t.Fatal(err)
		}
		if err := acc2.AddRNM(m * 0.99); err != nil {
			t.Fatal(err)
		}
	}
	tight, _, err := acc2.Epsilon(delta)
	if err != nil {
		t.Fatal(err)
	}
	if tight <= eps {
		t.Errorf("multiplier %g is not tight: 0.99m still within budget (ε=%g)", m, tight)
	}
}

func TestSigmaForBudgetValidation(t *testing.T) {
	if _, err := SigmaForBudget(0, 1e-6, 1, 1, 1); err == nil {
		t.Error("expected epsilon error")
	}
	if _, err := SigmaForBudget(1, 0, 1, 1, 1); err == nil {
		t.Error("expected delta error")
	}
	if _, err := SigmaForBudget(1, 1e-6, 0, 1, 1); err == nil {
		t.Error("expected queries error")
	}
	if _, err := SigmaForBudget(1, 1e-6, 1, 0, 1); err == nil {
		t.Error("expected ratio error")
	}
}

func TestAccountantJSONRoundTrip(t *testing.T) {
	a := NewAccountant()
	if err := a.AddSVT(1.5); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSVT(3.0); err != nil {
		t.Fatal(err)
	}
	if err := a.AddRNM(2.0); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	restored := NewAccountant()
	if err := json.Unmarshal(b, restored); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	q, r := restored.Counts()
	if wq, wr := a.Counts(); q != wq || r != wr {
		t.Fatalf("counts %d/%d after round trip, want %d/%d", q, r, wq, wr)
	}
	for _, delta := range []float64{1e-5, 1e-9} {
		want, _, err := a.Epsilon(delta)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := restored.Epsilon(delta)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("epsilon(%g) = %g after round trip, want %g", delta, got, want)
		}
	}
}

func TestAccountantJSONRejectsHostileState(t *testing.T) {
	for name, state := range map[string]string{
		"negative-coefficient": `{"coefficient": -0.5, "svt_count": 1, "rnm_count": 0}`,
		"nan-coefficient":      `{"coefficient": "NaN", "svt_count": 1, "rnm_count": 0}`,
		"negative-svt":         `{"coefficient": 1, "svt_count": -1, "rnm_count": 0}`,
		"negative-rnm":         `{"coefficient": 1, "svt_count": 0, "rnm_count": -2}`,
		"not-json":             `coefficient=1`,
	} {
		a := NewAccountant()
		if err := json.Unmarshal([]byte(state), a); err == nil {
			t.Errorf("%s: hostile state accepted", name)
		}
	}
}
