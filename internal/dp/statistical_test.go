package dp

import (
	"math"
	"testing"
)

// normCDF is the standard normal CDF via erf.
func normCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// The SVT check's pass probability must match Phi((c - T) / sigma1).
func TestNoisyThresholdCheckDistribution(t *testing.T) {
	rng := testRNG(100)
	const trials = 60000
	cases := []struct {
		votes, threshold, sigma float64
	}{
		{10, 8, 2},   // above threshold: expect Phi(1) ~ 0.841
		{8, 10, 2},   // below: Phi(-1) ~ 0.159
		{10, 10, 4},  // at threshold: 0.5
		{12, 6, 1.5}, // far above: ~1
	}
	for _, c := range cases {
		pass := 0
		for i := 0; i < trials; i++ {
			if NoisyThresholdCheck(rng, c.votes, c.threshold, c.sigma) {
				pass++
			}
		}
		got := float64(pass) / trials
		want := normCDF((c.votes - c.threshold) / c.sigma)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("pass rate for (c=%g, T=%g, sigma=%g): got %.4f, want %.4f",
				c.votes, c.threshold, c.sigma, got, want)
		}
	}
}

// Report Noisy Maximum with two candidates must pick the larger one with
// probability Phi(gap / (sigma * sqrt(2))).
func TestReportNoisyMaxTwoCandidateDistribution(t *testing.T) {
	rng := testRNG(101)
	const trials = 60000
	votes := []float64{10, 13} // gap 3
	sigma := 3.0
	wins := 0
	for i := 0; i < trials; i++ {
		if ReportNoisyMax(rng, votes, sigma) == 1 {
			wins++
		}
	}
	got := float64(wins) / trials
	want := normCDF(3 / (sigma * math.Sqrt2))
	if math.Abs(got-want) > 0.01 {
		t.Errorf("argmax win rate: got %.4f, want %.4f", got, want)
	}
}

// Distributed noise shares must be exchangeable with a single central draw:
// the recombined 2*sum of user shares has the same distribution as
// N(0, sigma^2). Kolmogorov–Smirnov-style check on a few quantiles.
func TestDistributedNoiseMatchesCentral(t *testing.T) {
	rng := testRNG(102)
	const users = 30
	const trials = 40000
	sigma := 5.0
	perUser, err := UserNoiseSigma1(sigma, users)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]float64, trials)
	for i := range samples {
		var sum float64
		for u := 0; u < users; u++ {
			sum += Gaussian(rng, perUser)
		}
		samples[i] = 2 * sum
	}
	// Empirical fraction below sigma*z vs Phi(z) at several z.
	for _, z := range []float64{-1.5, -0.5, 0, 0.5, 1.5} {
		cut := sigma * z
		count := 0
		for _, s := range samples {
			if s <= cut {
				count++
			}
		}
		got := float64(count) / trials
		want := normCDF(z)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("CDF at z=%g: got %.4f, want %.4f", z, got, want)
		}
	}
}
