package secshare

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func ints(vs ...int64) []*big.Int {
	out := make([]*big.Int, len(vs))
	for i, v := range vs {
		out[i] = big.NewInt(v)
	}
	return out
}

func TestSplitRecombine(t *testing.T) {
	rng := testRNG(1)
	values := ints(0, 1, 65536, -5, 1<<23)
	a, b, err := Split(rng, values, DefaultKappa)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	back, err := Recombine(a, b)
	if err != nil {
		t.Fatalf("Recombine: %v", err)
	}
	for i := range values {
		if back[i].Cmp(values[i]) != 0 {
			t.Errorf("element %d: %v != %v", i, back[i], values[i])
		}
	}
}

func TestSplitBounds(t *testing.T) {
	rng := testRNG(2)
	values := ints(100, 200, 300)
	kappa := 16
	bound := big.NewInt(1 << 16)
	_, b, err := Split(rng, values, kappa)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range b {
		if s.Sign() < 0 || s.Cmp(bound) >= 0 {
			t.Errorf("b share %d = %v outside [0, 2^%d)", i, s, kappa)
		}
	}
}

func TestSplitValidation(t *testing.T) {
	rng := testRNG(3)
	if _, _, err := Split(rng, ints(1), 0); err == nil {
		t.Error("expected error for kappa = 0")
	}
	if _, _, err := Split(rng, []*big.Int{nil}, 8); err == nil {
		t.Error("expected error for nil value")
	}
}

func TestRecombineValidation(t *testing.T) {
	if _, err := Recombine(ints(1, 2), ints(1)); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := Recombine([]*big.Int{nil}, ints(1)); err == nil {
		t.Error("expected nil share error")
	}
}

func TestSplitRecombineQuick(t *testing.T) {
	rng := testRNG(4)
	f := func(raw []int32) bool {
		values := make([]*big.Int, len(raw))
		for i, v := range raw {
			values[i] = big.NewInt(int64(v))
		}
		a, b, err := Split(rng, values, DefaultKappa)
		if err != nil {
			return false
		}
		back, err := Recombine(a, b)
		if err != nil {
			return false
		}
		for i := range values {
			if back[i].Cmp(values[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumShares(t *testing.T) {
	shares := [][]*big.Int{ints(1, 2, 3), ints(10, 20, 30), ints(-1, -2, -3)}
	sum, err := SumShares(shares)
	if err != nil {
		t.Fatal(err)
	}
	want := ints(10, 20, 30)
	for i := range want {
		if sum[i].Cmp(want[i]) != 0 {
			t.Errorf("sum[%d] = %v, want %v", i, sum[i], want[i])
		}
	}
	if _, err := SumShares(nil); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := SumShares([][]*big.Int{ints(1), ints(1, 2)}); err == nil {
		t.Error("expected error for ragged input")
	}
	if _, err := SumShares([][]*big.Int{{nil}}); err == nil {
		t.Error("expected error for nil element")
	}
}

// The aggregate of all users' threshold shares must satisfy Eq. (6):
// Σ toS1 = a_total - T/2 + z1_total and Σ toS2 = T/2 - b_total - z1_total,
// so (Σ toS1 >= Σ toS2) iff (c_total + 2*z1_total >= T).
func TestThresholdSharesAggregateIdentity(t *testing.T) {
	rng := testRNG(5)
	const users = 4
	perUser := big.NewInt(25) // T/(2|U|) with T=200, |U|=4
	total := new(big.Int)
	s1Sum := ints(0)[0]
	s2Sum := ints(0)[0]
	zTotal := new(big.Int)
	for u := 0; u < users; u++ {
		votes := ints(int64(10 * (u + 1)))
		a, b, err := Split(rng, votes, 12)
		if err != nil {
			t.Fatal(err)
		}
		z := ints(int64(u - 2)) // arbitrary small noise share
		toS1, toS2, err := ThresholdShares(a, b, z, perUser)
		if err != nil {
			t.Fatal(err)
		}
		s1Sum.Add(s1Sum, toS1[0])
		s2Sum.Add(s2Sum, toS2[0])
		total.Add(total, votes[0])
		zTotal.Add(zTotal, z[0])
	}
	// s1Sum - s2Sum should equal total + 2*z - T (T = 200).
	diff := new(big.Int).Sub(s1Sum, s2Sum)
	want := new(big.Int).Add(total, new(big.Int).Lsh(zTotal, 1))
	want.Sub(want, big.NewInt(200))
	if diff.Cmp(want) != 0 {
		t.Fatalf("aggregate identity violated: diff=%v want=%v", diff, want)
	}
}

func TestThresholdSharesValidation(t *testing.T) {
	if _, _, err := ThresholdShares(ints(1), ints(1, 2), ints(1), big.NewInt(1)); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, _, err := ThresholdShares(ints(1), ints(1), ints(1), nil); err == nil {
		t.Error("expected nil offset error")
	}
	if _, _, err := ThresholdShares([]*big.Int{nil}, ints(1), ints(1), big.NewInt(1)); err == nil {
		t.Error("expected nil element error")
	}
}

func TestNoisyShares(t *testing.T) {
	rng := testRNG(6)
	votes := ints(7, 9)
	a, b, err := Split(rng, votes, 10)
	if err != nil {
		t.Fatal(err)
	}
	z := ints(3, -4)
	toS1, toS2, err := NoisyShares(a, b, z)
	if err != nil {
		t.Fatal(err)
	}
	// Recombined noisy votes carry votes + 2z.
	sum, err := Recombine(toS1, toS2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range votes {
		want := new(big.Int).Add(votes[i], new(big.Int).Lsh(z[i], 1))
		if sum[i].Cmp(want) != 0 {
			t.Errorf("noisy element %d: %v, want %v", i, sum[i], want)
		}
	}
	if _, _, err := NoisyShares(ints(1), ints(1), ints(1, 2)); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, _, err := NoisyShares(ints(1), []*big.Int{nil}, ints(1)); err == nil {
		t.Error("expected nil element error")
	}
}
