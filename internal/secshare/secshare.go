// Package secshare implements the bounded additive secret sharing used in
// the setup step of the Private Consensus Protocol (Alg. 5): each user
// splits its prediction vector as c = a + b, sending a to S1 and b to S2.
//
// Shares are bounded rather than uniform over Z_n: the random part is drawn
// from [0, 2^κ) for a statistical masking parameter κ, so that server-side
// differences stay within the DGK comparison bit length (DESIGN.md, protocol
// note 2). With κ = 40 the statistical leakage is 2^-40-close to uniform
// relative to vote magnitudes of ~2^23.
package secshare

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"

	"github.com/privconsensus/privconsensus/internal/mathutil"
)

// DefaultKappa is the default statistical masking bit length.
const DefaultKappa = 20

// Split shares each element of values as values[i] = a[i] + b[i], where
// b[i] is uniform in [0, 2^kappa) and a[i] = values[i] - b[i] (possibly
// negative). rng defaults to crypto/rand.Reader.
func Split(rng io.Reader, values []*big.Int, kappa int) (a, b []*big.Int, err error) {
	if kappa <= 0 {
		return nil, nil, fmt.Errorf("secshare: kappa must be positive, got %d", kappa)
	}
	if rng == nil {
		rng = rand.Reader
	}
	a = make([]*big.Int, len(values))
	b = make([]*big.Int, len(values))
	for i, v := range values {
		if v == nil {
			return nil, nil, fmt.Errorf("secshare: nil value at index %d", i)
		}
		r, err := mathutil.RandBits(rng, kappa)
		if err != nil {
			return nil, nil, fmt.Errorf("secshare: sample share %d: %w", i, err)
		}
		b[i] = r
		a[i] = new(big.Int).Sub(v, r)
	}
	return a, b, nil
}

// Recombine reconstructs the original values from two share vectors.
func Recombine(a, b []*big.Int) ([]*big.Int, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("secshare: share length mismatch %d vs %d", len(a), len(b))
	}
	out := make([]*big.Int, len(a))
	for i := range a {
		if a[i] == nil || b[i] == nil {
			return nil, fmt.Errorf("secshare: nil share at index %d", i)
		}
		out[i] = new(big.Int).Add(a[i], b[i])
	}
	return out, nil
}

// SumShares adds per-user share vectors element-wise: out[i] = Σ_u shares[u][i].
// All vectors must have equal length.
func SumShares(shares [][]*big.Int) ([]*big.Int, error) {
	if len(shares) == 0 {
		return nil, fmt.Errorf("secshare: no shares to sum")
	}
	k := len(shares[0])
	out := make([]*big.Int, k)
	for i := range out {
		out[i] = new(big.Int)
	}
	for u, s := range shares {
		if len(s) != k {
			return nil, fmt.Errorf("secshare: share %d has length %d, want %d", u, len(s), k)
		}
		for i, v := range s {
			if v == nil {
				return nil, fmt.Errorf("secshare: nil element %d in share %d", i, u)
			}
			out[i].Add(out[i], v)
		}
	}
	return out, nil
}

// ThresholdShares builds the threshold-offset share vectors of Alg. 5's
// first Secure Sum step for one user:
//
//	toS1[i] = a[i] - T/(2|U|) + z1[i]
//	toS2[i] = T/(2|U|) - b[i] - z1[i]
//
// where T and the noise shares z1 are integers in the same fixed-point
// units as the vote shares a, b. perUserOffset must be T/(2|U|), computed
// once by the caller so rounding is consistent across users.
func ThresholdShares(a, b, z1 []*big.Int, perUserOffset *big.Int) (toS1, toS2 []*big.Int, err error) {
	if len(a) != len(b) || len(a) != len(z1) {
		return nil, nil, fmt.Errorf("secshare: length mismatch a=%d b=%d z1=%d", len(a), len(b), len(z1))
	}
	if perUserOffset == nil {
		return nil, nil, fmt.Errorf("secshare: nil per-user offset")
	}
	toS1 = make([]*big.Int, len(a))
	toS2 = make([]*big.Int, len(a))
	for i := range a {
		if a[i] == nil || b[i] == nil || z1[i] == nil {
			return nil, nil, fmt.Errorf("secshare: nil element at index %d", i)
		}
		toS1[i] = new(big.Int).Sub(a[i], perUserOffset)
		toS1[i].Add(toS1[i], z1[i])
		toS2[i] = new(big.Int).Sub(perUserOffset, b[i])
		toS2[i].Sub(toS2[i], z1[i])
	}
	return toS1, toS2, nil
}

// NoisyShares builds the second Secure Sum step's share vectors:
//
//	toS1[i] = a[i] + z2[i],  toS2[i] = b[i] + z2[i]
//
// Note both sides receive +z2 so the recombined noisy votes carry 2*z2; the
// dp package calibrates the per-user variance accordingly.
func NoisyShares(a, b, z2 []*big.Int) (toS1, toS2 []*big.Int, err error) {
	if len(a) != len(b) || len(a) != len(z2) {
		return nil, nil, fmt.Errorf("secshare: length mismatch a=%d b=%d z2=%d", len(a), len(b), len(z2))
	}
	toS1 = make([]*big.Int, len(a))
	toS2 = make([]*big.Int, len(a))
	for i := range a {
		if a[i] == nil || b[i] == nil || z2[i] == nil {
			return nil, nil, fmt.Errorf("secshare: nil element at index %d", i)
		}
		toS1[i] = new(big.Int).Add(a[i], z2[i])
		toS2[i] = new(big.Int).Add(b[i], z2[i])
	}
	return toS1, toS2, nil
}
