package deploy

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/protocol"
)

// chaosFaultSpec is the seeded schedule for the chaos deployment test:
// small per-operation probabilities of resets, stalls, partial writes and
// delays, with a hard budget so the schedule quiesces and the run is
// guaranteed to converge once the budget is spent.
const chaosFaultSpec = "seed=7,reset=0.01,stall=0.01,partial=0.01,delay=0.03,stall-ms=20,delay-ms=3,max=25"

// TestChaosResilientDeployment runs a full two-server deployment of 20
// query instances through an injected fault schedule. The acceptance bar:
// the run terminates (no hang), every instance either reaches the correct
// consensus label or fails cleanly with a descriptive error, and the
// retry/fault counters are visible on the metrics endpoint.
func TestChaosResilientDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos deployment test is slow in -short mode")
	}
	const (
		users     = 2
		instances = 20
	)
	s1File, s2File, pubFile, cfg := testSetup(t, users)
	// CI sets CHAOS_JOURNAL_DIR to keep the journals as build artifacts
	// (and verifies them again with cmd/trace); locally they are ephemeral.
	journalDir := os.Getenv("CHAOS_JOURNAL_DIR")
	if journalDir == "" {
		journalDir = t.TempDir()
	} else if err := os.MkdirAll(journalDir, 0o755); err != nil {
		t.Fatal(err)
	}
	s1Journal := filepath.Join(journalDir, "s1.jsonl")
	s2Journal := filepath.Join(journalDir, "s2.jsonl")

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	type repResult struct {
		rep *Report
		err error
	}

	// S1 injects faults into every connection it accepts: the S2 peer link
	// and both user uploads all run through the fault layer.
	s1Ready := make(chan string, 1)
	metricsReady := make(chan string, 1)
	s1Done := make(chan repResult, 1)
	go func() {
		rep, err := RunS1Report(ctx, s1File, ServerOptions{
			ListenAddr:     "127.0.0.1:0",
			Instances:      instances,
			Seed:           601,
			Ready:          s1Ready,
			MaxRetries:     5,
			Backoff:        5 * time.Millisecond,
			AttemptTimeout: 30 * time.Second,
			FaultSpec:      chaosFaultSpec,
			ArgmaxStrategy: protocol.StrategyTournament,
			MetricsAddr:    "127.0.0.1:0",
			MetricsReady:   metricsReady,
			MetricsLinger:  5 * time.Second,
			JournalPath:    s1Journal,
		})
		s1Done <- repResult{rep, err}
	}()
	s1Addr := <-s1Ready
	metricsAddr := <-metricsReady

	s2Ready := make(chan string, 1)
	s2Done := make(chan repResult, 1)
	go func() {
		rep, err := RunS2Report(ctx, s2File, ServerOptions{
			ListenAddr:     "127.0.0.1:0",
			PeerAddr:       s1Addr,
			Instances:      instances,
			Seed:           602,
			Ready:          s2Ready,
			MaxRetries:     5,
			Backoff:        5 * time.Millisecond,
			AttemptTimeout: 30 * time.Second,
			ArgmaxStrategy: protocol.StrategyTournament,
			JournalPath:    s2Journal,
		})
		s2Done <- repResult{rep, err}
	}()
	s2Addr := <-s2Ready

	// All users vote class 1 unanimously on every instance, so any
	// instance that completes must report consensus on label 1 — a wrong
	// label is a hard failure, not chaos noise.
	votes := make([][]float64, instances)
	for i := range votes {
		votes[i] = oneHot(cfg.Classes, 1)
	}
	userErr := make(chan error, users)
	for u := 0; u < users; u++ {
		go func(u int) {
			userErr <- SubmitVotes(ctx, pubFile, UserOptions{
				User:           u,
				S1Addr:         s1Addr,
				S2Addr:         s2Addr,
				Seed:           int64(700 + u),
				MaxRetries:     10,
				Backoff:        2 * time.Millisecond,
				AttemptTimeout: 30 * time.Second,
			}, votes)
		}(u)
	}
	for u := 0; u < users; u++ {
		if err := <-userErr; err != nil {
			t.Fatalf("user submit under faults: %v", err)
		}
	}

	// S2 returning means S1 has finished (or is in its last reconnect
	// attempts), so the counters are final; scrape while S1's metrics
	// endpoint lingers, before its report is collected — the report is
	// only delivered once the linger window closes.
	r2 := <-s2Done
	assertChaosMetrics(t, metricsAddr)
	r1 := <-s1Done
	if r1.err != nil {
		t.Fatalf("S1 structural failure: %v", r1.err)
	}
	if r2.err != nil {
		t.Fatalf("S2 structural failure: %v", r2.err)
	}
	if got := len(r1.rep.Results); got != instances {
		t.Fatalf("S1 report has %d results, want %d", got, instances)
	}
	if got := len(r2.rep.Results); got != instances {
		t.Fatalf("S2 report has %d results, want %d", got, instances)
	}

	okBoth := checkChaosReport(t, "s1", r1.rep, instances)
	_ = checkChaosReport(t, "s2", r2.rep, instances)
	for i := 0; i < instances; i++ {
		a, b := r1.rep.Results[i], r2.rep.Results[i]
		if a.Err == nil && b.Err == nil && a.Outcome != b.Outcome {
			t.Errorf("instance %d: servers disagree: %+v vs %+v", i, a.Outcome, b.Outcome)
		}
	}
	// The fault budget (25) and retry budget (5) bound how many instances
	// can fail on S1: a failure costs at least MaxRetries+1 faulted
	// attempts, so at most 4 can fail even in the worst schedule.
	if okBoth < instances-5 {
		t.Errorf("only %d/%d S1 instances succeeded under the bounded fault budget", okBoth, instances)
	}

	// Both journals must survive the chaos run with intact hash chains, and
	// the disruptions themselves must be on the record: S1 injected the
	// faults, so its journal carries the fault events, and the schedule is
	// hot enough that at least one retry lands in some journal.
	var faultEvents, retryEvents int
	for _, path := range []string{s1Journal, s2Journal} {
		if n, err := obs.VerifyJournalFile(path); err != nil || n == 0 {
			t.Errorf("%s after chaos: %d records, err %v; the chain must verify", path, n, err)
			continue
		}
		evs, err := obs.ReadJournalFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			switch ev.Type {
			case obs.EventFault:
				faultEvents++
			case obs.EventRetry:
				retryEvents++
			}
		}
	}
	if faultEvents == 0 {
		t.Error("no fault events journaled; S1's injector observer never fired")
	}
	if retryEvents == 0 {
		t.Error("no retry events journaled despite a firing fault schedule")
	}
}

// checkChaosReport asserts every instance either reached consensus on label
// 1 or failed cleanly, and returns the success count.
func checkChaosReport(t *testing.T, role string, rep *Report, instances int) int {
	t.Helper()
	ok := 0
	for i, res := range rep.Results {
		if res.Instance != i {
			t.Errorf("%s result %d has instance index %d", role, i, res.Instance)
		}
		if res.Err != nil {
			if res.Err.Error() == "" {
				t.Errorf("%s instance %d failed with an empty error", role, i)
			}
			t.Logf("%s instance %d cleanly failed after %d attempts: %v", role, i, res.Attempts, res.Err)
			continue
		}
		if !res.Outcome.Consensus || res.Outcome.Label != 1 {
			t.Errorf("%s instance %d: outcome %+v, want consensus on label 1", role, i, res.Outcome)
		}
		ok++
	}
	return ok
}

// assertChaosMetrics scrapes /metrics and checks the resilience counter
// families: some faults must have been injected and some retries recorded.
func assertChaosMetrics(t *testing.T, addr string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape metrics: %v", err)
	}
	defer resp.Body.Close()
	var faults, retries float64
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 1<<20))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "faults_injected_total{"):
			faults += metricValue(t, line)
		case strings.HasPrefix(line, "retries_total{"):
			retries += metricValue(t, line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read metrics body: %v", err)
	}
	if faults <= 0 {
		t.Error("faults_injected_total is zero on /metrics; the schedule never fired")
	}
	if retries <= 0 {
		t.Error("retries_total is zero on /metrics; faults fired but nothing retried")
	}
}

// metricValue parses the sample value from a Prometheus text line.
func metricValue(t *testing.T, line string) float64 {
	t.Helper()
	idx := strings.LastIndexByte(line, ' ')
	if idx < 0 {
		t.Fatalf("malformed metric line %q", line)
	}
	v, err := strconv.ParseFloat(line[idx+1:], 64)
	if err != nil {
		t.Fatalf("malformed metric value in %q: %v", line, err)
	}
	return v
}
