package deploy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"
	"sync"
	"time"

	"github.com/privconsensus/privconsensus/internal/keystore"
	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// Continuous-operation S2: the serve-control follower. S2 dials two links
// to S1 — the dedicated ctl link, on which S1 announces queries and
// drives the epoch state machine, and the protocol link, on which S1's
// begin frames (query ID in the instance slot) trigger protocol runs.
// User submissions arrive on the accept loop keyed by query ID.

// s2Query is one announced query's state on S2.
type s2Query struct {
	qid       int
	tenant    int64
	epoch     int
	col       *collector
	announced time.Time
}

// s2Epoch is one epoch's loaded material on S2.
type s2Epoch struct {
	keys  protocol.KeysS2
	pools *protocol.S2Pools
	ring  *big.Int
	live  int // protocol runs currently using this epoch's keys
}

// serveS2 is S2's shared serve-mode state.
type serveS2 struct {
	s     *serverSetup
	opts  ServeOptions
	files []*keystore.S2File

	mu         sync.Mutex
	epochs     map[int]*s2Epoch
	retired    map[int]bool
	wantRetire map[int]bool
	queries    map[int]*s2Query
	results    map[int]InstanceResult
	draining   bool
	maxQID     int
}

// ServeS2 runs S2 in continuous-operation mode until S1 drains the
// stream (or ctx ends). files[0] is the initial epoch; later entries are
// the pre-provisioned rotation epochs, loaded on demand when S1 prepares
// or announces into them.
func ServeS2(ctx context.Context, files []*keystore.S2File, opts ServeOptions) (*Report, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("deploy: serve mode needs at least one epoch key file")
	}
	opts.Instances = 1
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := opts.validateServe(); err != nil {
		return nil, err
	}
	if opts.PeerAddr == "" {
		return nil, fmt.Errorf("deploy: S2 requires the S1 peer address")
	}
	for i, f := range files[1:] {
		if f.Config != files[0].Config {
			return nil, fmt.Errorf("deploy: epoch %d key file config differs from epoch 0", i+1)
		}
	}
	keys0, err := files[0].KeysS2()
	if err != nil {
		return nil, err
	}
	s, err := setupServer(ctx, "S2", files[0].Config, opts.ServerOptions, ringOf(keys0.PeerPub))
	if err != nil {
		return nil, err
	}
	defer s.admin.close(ctx)
	defer s.journal.Close()
	defer s.l.Close()

	st := &serveS2{
		s:          s,
		opts:       opts,
		files:      files,
		epochs:     make(map[int]*s2Epoch),
		retired:    make(map[int]bool),
		wantRetire: make(map[int]bool),
		queries:    make(map[int]*s2Query),
		results:    make(map[int]InstanceResult),
	}
	defer st.closeEpochs()
	if err := st.ensureEpoch(0); err != nil {
		return nil, err
	}
	obs.ServeEpoch("s2").Set(0)

	// drainCtx bounds the protocol loop once S1's drain marker arrives: if
	// the end-of-session frame is lost, the loop still exits within the
	// drain timeout instead of blocking on an idle link forever.
	drainCtx, cancelDrain := context.WithCancel(ctx)
	defer cancelDrain()
	var drainOnce sync.Once
	drained := func() {
		drainOnce.Do(func() {
			go func() {
				sleepCtx(ctx, opts.drainTimeout())
				cancelDrain()
			}()
		})
	}

	acceptErr := make(chan error, 1)
	acceptCtx, stopAccept := context.WithCancel(ctx)
	defer stopAccept()
	go st.acceptUsers(acceptCtx, acceptErr)

	ctlCtx, stopCtl := context.WithCancel(ctx)
	defer stopCtl()
	go st.ctlLoop(ctlCtx, drained)

	rep, err := st.protocolLoop(drainCtx)
	stopCtl()
	return rep, err
}

// closeEpochs releases every still-open epoch's pools and zeroizes keys.
func (st *serveS2) closeEpochs() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for e, ep := range st.epochs {
		if st.retired[e] {
			continue
		}
		if ep.pools != nil {
			ep.pools.Close()
		}
		ep.keys.Zeroize()
		st.retired[e] = true
	}
}

// ensureEpoch loads epoch e's key material (idempotent). Announcing or
// preparing a retired epoch is refused: its material is gone.
func (st *serveS2) ensureEpoch(e int) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ensureEpochLocked(e)
}

func (st *serveS2) ensureEpochLocked(e int) error {
	if st.retired[e] {
		return fmt.Errorf("deploy: epoch %d is retired", e)
	}
	if _, ok := st.epochs[e]; ok {
		return nil
	}
	if e < 0 || e >= len(st.files) {
		return fmt.Errorf("deploy: no epoch %d key file is provisioned", e)
	}
	keys, err := st.files[e].KeysS2()
	if err != nil {
		return err
	}
	keys.Precompute()
	pools, err := protocol.NewS2Pools(st.s.cfg, keys)
	if err != nil {
		return err
	}
	st.epochs[e] = &s2Epoch{keys: keys, pools: pools, ring: ringOf(keys.PeerPub)}
	return nil
}

// retire marks epoch e for retirement; the zeroize happens immediately
// when no protocol run is using the epoch, or right after the last one
// finishes. Idempotent.
func (st *serveS2) retire(e int) {
	st.mu.Lock()
	st.wantRetire[e] = true
	st.finishRetireLocked(e)
	st.mu.Unlock()
}

func (st *serveS2) finishRetireLocked(e int) {
	ep := st.epochs[e]
	if ep == nil || st.retired[e] || !st.wantRetire[e] || ep.live > 0 {
		return
	}
	if ep.pools != nil {
		ep.pools.Close()
	}
	ep.keys.Zeroize()
	st.retired[e] = true
	st.s.journalEvent(st.opts.ServerOptions, obs.Event{Type: obs.EventEpoch, Instance: -1,
		Note: fmt.Sprintf("retired epoch=%d", e)})
	st.opts.log(levelInfo, "S2 retired epoch %d: private material zeroized", e)
}

// announce registers an announced query (idempotent — a re-announce after
// a lost ack returns success without a second registration).
func (st *serveS2) announce(qid int, epoch int, tenant int64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.queries[qid]; ok {
		return nil
	}
	if err := st.ensureEpochLocked(epoch); err != nil {
		return err
	}
	cfg := st.s.cfg
	perVec := cfg.Classes
	if cfg.Packing {
		perVec = cfg.PackedCiphertexts()
	}
	col := newCollector(cfg.Users, 1, perVec, st.epochs[epoch].ring)
	col.packed = st.s.col.packed
	col.packedClasses = st.s.col.packedClasses
	col.events = st.s.col.events
	st.queries[qid] = &s2Query{qid: qid, tenant: tenant, epoch: epoch, col: col, announced: time.Now()}
	if qid >= st.maxQID {
		st.maxQID = qid + 1
	}
	obs.ServeInflight("s2").Add(1)
	return nil
}

// ctlLoop keeps the serve-control link to S1 alive and answers its
// requests. Every request is idempotent, so replays after a lost ack are
// safe. drained is invoked once the drain marker arrives.
func (st *serveS2) ctlLoop(ctx context.Context, drained func()) {
	opts := st.opts
	fails := 0
	for {
		if ctx.Err() != nil {
			return
		}
		if fails > 0 {
			sleepCtx(ctx, backoffDelay(opts.Backoff, fails))
		}
		conn, err := st.dialS1(ctx, capServe|capServeCtl, opts.Seed+43)
		if err != nil {
			fails++
			opts.log(levelWarn, "S2 ctl link dial failed: %v", err)
			continue
		}
		opts.log(levelDebug, "S2 ctl link to S1 established")
		fails = 0
		if err := st.ctlServe(ctx, conn, drained); err != nil {
			opts.log(levelWarn, "S2 ctl link error, redialing: %v", err)
			fails++
		}
		conn.Close()
	}
}

// ctlServe answers requests on one ctl connection until it fails.
func (st *serveS2) ctlServe(ctx context.Context, conn transport.Conn, drained func()) error {
	for {
		msg, err := transport.ExpectKind(ctx, conn, transport.KindControl)
		if err != nil {
			return err
		}
		if len(msg.Flags) < 2 {
			return fmt.Errorf("deploy: short ctl frame %v", msg.Flags)
		}
		code, arg := msg.Flags[0], msg.Flags[1]
		var reply *transport.Message
		switch code {
		case ctrlServeAnnounce:
			if len(msg.Flags) < 4 {
				return fmt.Errorf("deploy: short announce frame %v", msg.Flags)
			}
			status := int64(0)
			if err := st.announce(int(arg), int(msg.Flags[2]), msg.Flags[3]); err != nil {
				st.opts.log(levelWarn, "S2 refusing announced query %d: %v", arg, err)
				status = 1
			}
			reply = &transport.Message{Kind: transport.KindControl, Flags: []int64{ctrlServeAck, arg, status}}
		case ctrlEpochPrepare:
			status := int64(0)
			if err := st.ensureEpoch(int(arg)); err != nil {
				st.opts.log(levelWarn, "S2 epoch %d prepare failed: %v", arg, err)
				status = 1
			} else {
				st.s.journalEvent(st.opts.ServerOptions, obs.Event{Type: obs.EventEpoch, Instance: -1,
					Note: fmt.Sprintf("prepared epoch=%d", arg)})
			}
			reply = &transport.Message{Kind: transport.KindControl, Flags: []int64{ctrlEpochAck, arg, status}}
		case ctrlEpochCommit:
			obs.ServeEpoch("s2").Set(float64(arg))
			st.s.journalEvent(st.opts.ServerOptions, obs.Event{Type: obs.EventEpoch, Instance: -1,
				Note: fmt.Sprintf("committed epoch=%d", arg)})
			reply = &transport.Message{Kind: transport.KindControl, Flags: []int64{ctrlEpochAck, arg, 0}}
		case ctrlEpochRetire:
			st.retire(int(arg))
			reply = &transport.Message{Kind: transport.KindControl, Flags: []int64{ctrlEpochAck, arg, 0}}
		case ctrlServeDrain:
			st.mu.Lock()
			st.draining = true
			st.mu.Unlock()
			st.s.journalEvent(st.opts.ServerOptions, obs.Event{Type: obs.EventEpoch, Instance: -1, Note: "draining"})
			reply = &transport.Message{Kind: transport.KindControl, Flags: []int64{ctrlEpochAck, 0, 0}}
			drained()
		default:
			return transport.MarkFatal(fmt.Errorf("deploy: unknown ctl code %d", code))
		}
		if err := conn.Send(ctx, reply); err != nil {
			return err
		}
	}
}

// dialS1 establishes one capability-tagged peer connection to S1.
func (st *serveS2) dialS1(ctx context.Context, extraCaps, seed int64) (transport.Conn, error) {
	opts := st.opts
	d := transport.Dialer{
		Attempts:       opts.MaxRetries + 1,
		Backoff:        opts.Backoff,
		AttemptTimeout: opts.attemptTimeout(),
		Seed:           seed,
		Faults:         st.s.faults,
	}
	conn, err := d.Dial(ctx, opts.PeerAddr)
	if err != nil {
		return nil, fmt.Errorf("deploy: dial S1: %w", err)
	}
	if err := sendHelloCaps(ctx, conn, partyPeer, opts.helloCaps(st.s.cfg)|extraCaps); err != nil {
		conn.Close()
		return nil, err
	}
	if opts.traced() {
		id, err := recvTraceContext(ctx, conn)
		if err != nil {
			conn.Close()
			return nil, err
		}
		st.s.adoptTraceID(id, opts.ServerOptions)
	}
	return conn, nil
}

// acceptUsers routes inbound user connections to the per-query upload
// handler. (S2 accepts no peer connections — it dials S1.)
func (st *serveS2) acceptUsers(ctx context.Context, errCh chan<- error) {
	opts := st.opts
	for {
		conn, err := st.s.l.Accept()
		if err != nil {
			select {
			case <-ctx.Done():
			default:
				select {
				case errCh <- fmt.Errorf("deploy: accept: %w", err):
				default:
				}
			}
			return
		}
		go func(conn transport.Conn) {
			defer conn.Close()
			party, caps, err := recvHello(ctx, conn)
			if err != nil {
				opts.log(levelWarn, "dropping connection with bad hello: %v", err)
				return
			}
			if party != partyUser {
				opts.log(levelWarn, "dropping unexpected party %d in serve mode", party)
				return
			}
			if caps&capTrace != 0 {
				if err := replyTraceContext(ctx, st.s, conn); err != nil {
					opts.log(levelWarn, "user trace context send failed: %v", err)
					return
				}
			}
			if err := st.serveUploads(ctx, conn); err != nil {
				opts.log(levelWarn, "serve user connection error: %v", err)
			}
		}(conn)
	}
}

// serveUploads drains one client connection: submission frames keyed by
// query ID plus the upload-done flush barrier. S2 answers no admission or
// result frames — those are S1's.
func (st *serveS2) serveUploads(ctx context.Context, conn transport.Conn) error {
	for {
		msg, err := conn.Recv(ctx)
		if err != nil {
			return nil //nolint:nilerr // EOF-equivalent by protocol design
		}
		if msg.Kind == transport.KindControl && len(msg.Flags) >= 1 {
			if msg.Flags[0] == ctrlUploadDone {
				user := int64(-1)
				if len(msg.Flags) >= 2 {
					user = msg.Flags[1]
				}
				ack := &transport.Message{Kind: transport.KindControl, Flags: []int64{ctrlUploadAck, user}}
				if err := conn.Send(ctx, ack); err != nil {
					return nil //nolint:nilerr // client gone; it will retry
				}
			}
			continue
		}
		user, qid, half, err := decodeServeUpload(st.s, msg)
		if errors.Is(err, errFrameRejected) {
			continue
		}
		if err != nil {
			return err
		}
		st.mu.Lock()
		q := st.queries[qid]
		st.mu.Unlock()
		if q == nil {
			submissionsRejected("unknown-query").Inc()
			st.s.journalEvent(st.opts.ServerOptions, obs.Event{Type: obs.EventRejection, Instance: qid, Note: "unknown-query"})
			continue
		}
		if err := q.col.add(user, 0, half); err != nil {
			if errors.Is(err, errDuplicateSubmission) || errors.Is(err, errRejectedSubmission) {
				continue
			}
			return err
		}
	}
}

// protocolLoop follows S1's begin frames on the protocol link, running
// each named query against the local collector, until the end frame (or
// the drain timeout backstop, when the end frame is lost).
func (st *serveS2) protocolLoop(ctx context.Context) (*Report, error) {
	opts := st.opts
	seed := opts.Seed
	if seed != 0 {
		seed++
	}
	rng := newRNG(seed)
	var peer transport.Conn
	consecFail := 0
	sawEnd := false

	for !sawEnd {
		if ctx.Err() != nil {
			break
		}
		if peer == nil {
			if consecFail > opts.MaxRetries {
				opts.log(levelWarn, "S2 reconnect budget exhausted; assembling report from local results")
				break
			}
			if consecFail > 0 {
				retriesTotal("s2", "reconnect").Inc()
				st.s.journalEvent(opts.ServerOptions, obs.Event{Type: obs.EventRetry, Instance: -1, Note: "reconnect"})
				sleepCtx(ctx, backoffDelay(opts.Backoff, consecFail))
			}
			var err error
			peer, err = st.dialS1(ctx, capServe, opts.Seed+17)
			if err != nil {
				consecFail++
				opts.log(levelWarn, "S2 reconnect to S1 failed: %v", err)
				continue
			}
			opts.log(levelDebug, "S2 protocol link to S1 established")
		}
		// No per-frame deadline: an idle serve link between queries is
		// normal. A dead connection surfaces as a Recv error (S1 closes
		// its end before retrying), and the drain backstop bounds exit.
		frame, err := recvSessionFrame(ctx, peer)
		if err != nil {
			peer.Close()
			peer = nil
			if ctx.Err() != nil {
				break
			}
			if !attemptRetryable(ctx, err) {
				return st.report(), fmt.Errorf("deploy: s2 serve session: %w", err)
			}
			consecFail++
			continue
		}
		consecFail = 0
		switch frame.code {
		case ctrlEndSession:
			sawEnd = true
		case ctrlBeginInstance:
			if st.runServeQuery(ctx, frame, peer, rng) {
				continue
			}
			peer.Close()
			peer = nil
			consecFail++
		}
	}
	if peer != nil {
		peer.Close()
	}
	return st.report(), nil
}

// runServeQuery executes one begin frame. It returns false when the
// connection must be discarded (transport failure mid-run).
func (st *serveS2) runServeQuery(ctx context.Context, frame sessionFrame, peer transport.Conn, rng io.Reader) bool {
	opts := st.opts
	qid := frame.instance
	st.mu.Lock()
	q := st.queries[qid]
	st.mu.Unlock()
	if q == nil {
		// The announce ack was delivered before any begin frame can name
		// this query, so an unknown qid means state divergence; drop the
		// connection and let S1's retry budget drive recovery.
		opts.log(levelWarn, "S2 received begin for unannounced query %d", qid)
		return false
	}
	if frame.attempt > 0 {
		retriesTotal("s2", "instance").Inc()
		st.s.journalEvent(opts.ServerOptions, obs.Event{Type: obs.EventRetry, Instance: qid, Attempt: frame.attempt + 1, Note: "instance"})
	}

	// Wait for the local collector to fill or the submit window to lapse,
	// mirroring S1's watcher, then run the per-query participant exchange.
	window := opts.submitWindow()
	timer := time.NewTimer(time.Until(q.announced.Add(window)))
	select {
	case <-q.col.done:
	case <-timer.C:
	case <-ctx.Done():
		timer.Stop()
		return false
	}
	timer.Stop()
	q.col.release()

	st.mu.Lock()
	ep := st.epochs[q.epoch]
	if ep == nil || st.retired[q.epoch] {
		st.mu.Unlock()
		opts.log(levelWarn, "S2 cannot run query %d: epoch %d unavailable", qid, q.epoch)
		return false
	}
	ep.live++
	st.mu.Unlock()
	defer func() {
		st.mu.Lock()
		ep.live--
		st.finishRetireLocked(q.epoch)
		st.mu.Unlock()
	}()

	actx, cancel := context.WithTimeout(ctx, opts.attemptTimeout())
	defer cancel()
	out, err := func() (*protocol.Outcome, error) {
		local := q.col.bitmap(0)
		agreed, err := exchangeParticipantsS2(actx, peer, qid, local)
		if err != nil {
			return nil, err
		}
		p := popcount(agreed)
		obs.Participants("s2").Set(float64(p))
		if p < opts.quorumCount(st.s.cfg.Users) {
			queriesTotal("s2", "quorum-not-met").Inc()
			return nil, fmt.Errorf("deploy: query %d has %d of %d participants: %w",
				qid, p, st.s.cfg.Users, protocol.ErrQuorumNotMet)
		}
		groups, err := q.col.maskedGroups(0, agreed)
		if err != nil {
			return nil, err
		}
		return runInstance(actx, st.s, "s2", qid, frame.attempt, p, st.s.cfg.Users-p, opts.ServerOptions,
			func(qctx context.Context, meter *transport.Meter) (*protocol.Outcome, error) {
				return protocol.RunS2GroupsWithPools(qctx, rng, st.s.cfg, ep.keys, peer, groups, meter, ep.pools)
			})
	}()
	res := InstanceResult{Instance: qid, Outcome: protocol.Outcome{Consensus: false, Label: -1}, Attempts: frame.attempt + 1}
	if err != nil {
		res.Err = err
		st.setResult(qid, res)
		if errors.Is(err, protocol.ErrQuorumNotMet) {
			// Clean verdict on a clean wire: keep the connection.
			return true
		}
		opts.log(levelWarn, "S2 query %d attempt failed, awaiting replay: %v", qid, err)
		return false
	}
	res.Outcome = *out
	res.Participants = out.Participants
	res.Dropped = st.s.cfg.Users - out.Participants
	st.setResult(qid, res)
	return true
}

// setResult records a query's freshest local result.
func (st *serveS2) setResult(qid int, res InstanceResult) {
	st.mu.Lock()
	prev, seen := st.results[qid]
	if !seen {
		obs.ServeInflight("s2").Add(-1)
	}
	if seen && prev.Err == nil && res.Err != nil {
		// A completed outcome is never downgraded by a later failed replay.
		res = prev
		res.Attempts++
	}
	st.results[qid] = res
	st.mu.Unlock()
}

// report assembles the per-query report in query order. Announced queries
// that never ran locally appear with an error entry.
func (st *serveS2) report() *Report {
	st.mu.Lock()
	defer st.mu.Unlock()
	qids := make([]int, 0, len(st.queries))
	for qid := range st.queries {
		qids = append(qids, qid)
	}
	sort.Ints(qids)
	results := make([]InstanceResult, 0, len(qids))
	for _, qid := range qids {
		if res, ok := st.results[qid]; ok {
			results = append(results, res)
			continue
		}
		results = append(results, InstanceResult{
			Instance: qid,
			Outcome:  protocol.Outcome{Consensus: false, Label: -1},
			Err:      fmt.Errorf("deploy: s2 query %d never completed: %w", qid, errPeerGone),
		})
	}
	return &Report{Results: results}
}
