package deploy

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/dp"
	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/protocol"
)

// soakQueries returns the soak length: a bounded CI-sized run by default,
// 200 queries under SOAK=1 (the `make soak` lane), and the full
// 1000-query chaos soak under SOAK_FULL=1.
func soakQueries() int {
	switch {
	case os.Getenv("SOAK_FULL") == "1":
		return 1000
	case os.Getenv("SOAK") == "1":
		return 200
	default:
		return 24
	}
}

// TestSoakServe runs the continuous-operation chaos soak: concurrent
// tenants stream queries through a serve-mode pair under the seeded
// fault layer, with one epoch rotation mid-soak. It asserts zero unclean
// failures (every outcome is a consensus result or a typed quorum miss),
// that queries completed under both epochs, that the retired epoch's key
// material was zeroized, that the durable ledger equals an accountant
// replayed from the journaled per-query spends, and that both journals
// chain-verify.
func TestSoakServe(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is slow in -short mode")
	}
	const (
		users   = 2
		workers = 3
		sigma1  = 2.0
		sigma2  = 1.5
		delta   = 1e-6
	)
	total := soakQueries()
	s1Files, s2Files, pubs, cfg := serveTestSetup(t, users, 2, sigma1, sigma2)

	journalDir := os.Getenv("SOAK_JOURNAL_DIR")
	if journalDir == "" {
		journalDir = t.TempDir()
	} else if err := os.MkdirAll(journalDir, 0o755); err != nil {
		t.Fatal(err)
	}
	s1Journal := filepath.Join(journalDir, "soak_s1.jsonl")
	s2Journal := filepath.Join(journalDir, "soak_s2.jsonl")
	for _, p := range []string{s1Journal, s2Journal} {
		if err := os.RemoveAll(p); err != nil {
			t.Fatal(err)
		}
	}
	ledgerPath := filepath.Join(t.TempDir(), "soak_ledger.json")

	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Minute)
	defer cancel()

	drainCh := make(chan struct{})
	s1Ready := make(chan string, 1)
	s1Done := make(chan s1ServeResult, 1)
	base := ServerOptions{
		ListenAddr:     "127.0.0.1:0",
		Seed:           811,
		MaxRetries:     5,
		Backoff:        5 * time.Millisecond,
		AttemptTimeout: 30 * time.Second,
		Quorum:         float64(users),
		SubmitDeadline: 30 * time.Second,
		FaultSpec:      chaosFaultSpec,
	}
	go func() {
		opts := base
		opts.Ready = s1Ready
		opts.JournalPath = s1Journal
		rep, err := ServeS1(ctx, s1Files, ServeOptions{
			ServerOptions: opts,
			LedgerPath:    ledgerPath,
			Delta:         delta,
			MaxInFlight:   workers + 1,
			RotateAfter:   total / 2,
			DrainCh:       drainCh,
			DrainTimeout:  2 * time.Minute,
		})
		s1Done <- s1ServeResult{rep, err}
	}()
	s1Addr := <-s1Ready

	s2Ready := make(chan string, 1)
	s2Done := make(chan s2ServeResult, 1)
	go func() {
		opts := base
		opts.Seed = 812
		opts.PeerAddr = s1Addr
		opts.Ready = s2Ready
		opts.JournalPath = s2Journal
		rep, err := ServeS2(ctx, s2Files, ServeOptions{ServerOptions: opts, DrainTimeout: 2 * time.Minute})
		s2Done <- s2ServeResult{rep, err}
	}()
	s2Addr := <-s2Ready

	// Concurrent tenants drain a shared queue of queries; a worker keeps
	// its own ServeClient (clients are single-goroutine by contract), so
	// admissions from one tenant overlap other tenants' in-flight
	// comparison phases.
	jobs := make(chan int, total)
	for i := 0; i < total; i++ {
		jobs <- i
	}
	close(jobs)
	var (
		mu         sync.Mutex
		results    []ServeResult
		quorumMiss int
		faulted    int
		unclean    []string
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client, err := NewServeClient(pubs, ServeClientOptions{
				Tenant: int64(w + 1), S1Addr: s1Addr, S2Addr: s2Addr,
				Seed: int64(821 + w), MaxRetries: 5, Backoff: 5 * time.Millisecond,
				AttemptTimeout: 30 * time.Second, FaultSpec: chaosFaultSpec,
			})
			if err != nil {
				mu.Lock()
				unclean = append(unclean, fmt.Sprintf("worker %d client: %v", w, err))
				mu.Unlock()
				return
			}
			for q := range jobs {
				votes := make([][]float64, users)
				for u := range votes {
					votes[u] = oneHot(cfg.Classes, q%cfg.Classes)
				}
				for {
					res, err := client.Do(ctx, votes)
					switch {
					case err == nil:
						mu.Lock()
						results = append(results, *res)
						mu.Unlock()
					case errors.Is(err, protocol.ErrQuorumNotMet):
						// A typed quorum miss is a clean outcome under
						// chaos: the query resolved, no label released.
						mu.Lock()
						quorumMiss++
						mu.Unlock()
					case errors.Is(err, ErrQueryFailed):
						// So is a typed retry-budget exhaustion: the query
						// resolved, its spend committed, and the failure
						// was reported — bounded below.
						mu.Lock()
						faulted++
						mu.Unlock()
					case errors.Is(err, ErrOverloaded):
						time.Sleep(20 * time.Millisecond)
						continue
					default:
						mu.Lock()
						unclean = append(unclean, fmt.Sprintf("query %d (tenant %d): %v", q, w+1, err))
						mu.Unlock()
					}
					break
				}
			}
		}(w)
	}
	wg.Wait()

	close(drainCh)
	r1 := <-s1Done
	r2 := <-s2Done
	if r1.err != nil {
		t.Fatalf("S1 serve: %v", r1.err)
	}
	if r2.err != nil {
		t.Fatalf("S2 serve: %v", r2.err)
	}
	for _, msg := range unclean {
		t.Errorf("unclean failure: %s", msg)
	}
	if got := len(results) + quorumMiss + faulted; got != total {
		t.Errorf("resolved %d of %d queries (%d consensus-path, %d quorum misses, %d faulted)",
			got, total, len(results), quorumMiss, faulted)
	}
	// The fault layer may exhaust a query's retry budget; that resolves
	// the query with a typed failure, which is clean — but it must stay a
	// small minority or the retry sizing is broken.
	if faulted > total/5 {
		t.Errorf("%d of %d queries exhausted retries, want <= %d", faulted, total, total/5)
	}
	if len(r1.rep.Results) != total {
		t.Errorf("S1 report has %d queries, want %d", len(r1.rep.Results), total)
	}
	s1Failed := 0
	for _, res := range r1.rep.Results {
		if res.Err != nil && !errors.Is(res.Err, protocol.ErrQuorumNotMet) {
			s1Failed++
		}
	}
	if s1Failed != faulted {
		t.Errorf("S1 reports %d failed queries, clients observed %d", s1Failed, faulted)
	}
	if got := r1.rep.Admissions["admitted"]; got != total {
		t.Errorf("admitted %d, want %d", got, total)
	}

	// Rotation: exactly one mid-soak, with queries completing under both
	// epochs and the old epoch retired (keys zeroized) after its drain.
	if r1.rep.Rotations != 1 || r1.rep.Epoch != 1 {
		t.Errorf("rotations=%d final epoch=%d, want 1/1", r1.rep.Rotations, r1.rep.Epoch)
	}
	epochs := map[int]int{}
	for _, res := range results {
		epochs[res.Epoch]++
	}
	if epochs[0] == 0 || epochs[1] == 0 {
		t.Errorf("epoch spread %v: want queries under both epoch 0 and epoch 1", epochs)
	}
	evs, err := obs.ReadJournalFile(s1Journal)
	if err != nil {
		t.Fatal(err)
	}
	var committed, retired, faults, retries int
	for _, ev := range evs {
		switch {
		case ev.Type == obs.EventEpoch && ev.Note == "committed epoch=1":
			committed++
		case ev.Type == obs.EventEpoch && ev.Note == "retired epoch=0":
			retired++
		case ev.Type == obs.EventFault:
			faults++
		case ev.Type == obs.EventRetry:
			retries++
		}
	}
	if committed != 1 || retired != 1 {
		t.Errorf("journal rotation trail: committed=%d retired=%d, want 1/1", committed, retired)
	}
	t.Logf("soak: %d queries, %d quorum misses, %d faulted, %d faults injected, %d retries journaled",
		total, quorumMiss, faulted, faults, retries)

	// Accounting invariant: the ledger's committed state equals a fresh
	// accountant replayed from the journaled per-query spend events —
	// exactly, since both apply the same float operations in commit order.
	replayed := map[int64]*dp.Accountant{}
	counts := map[int64][2]int{}
	for _, ev := range evs {
		if ev.Type != obs.EventSpend {
			continue
		}
		var sigma float64
		var tenant int64
		if n, err := fmt.Sscanf(ev.Note, "svt sigma=%g tenant=%d", &sigma, &tenant); n == 2 && err == nil {
			if replayed[tenant] == nil {
				replayed[tenant] = dp.NewAccountant()
			}
			if err := replayed[tenant].AddSVT(sigma); err != nil {
				t.Fatal(err)
			}
			c := counts[tenant]
			c[0]++
			counts[tenant] = c
			continue
		}
		if n, err := fmt.Sscanf(ev.Note, "rnm sigma=%g tenant=%d", &sigma, &tenant); n == 2 && err == nil {
			if replayed[tenant] == nil {
				t.Fatalf("journal releases tenant %d before any SVT spend", tenant)
			}
			if err := replayed[tenant].AddRNM(sigma); err != nil {
				t.Fatal(err)
			}
			c := counts[tenant]
			c[1]++
			counts[tenant] = c
			continue
		}
		t.Fatalf("unparseable spend event %q", ev.Note)
	}
	if len(r1.rep.Tenants) != len(replayed) {
		t.Fatalf("ledger has %d tenants, journal replay has %d", len(r1.rep.Tenants), len(replayed))
	}
	for _, spend := range r1.rep.Tenants {
		acc := replayed[spend.Tenant]
		if acc == nil {
			t.Errorf("tenant %d in ledger but not in journal", spend.Tenant)
			continue
		}
		if spend.Coefficient != acc.Coefficient() {
			t.Errorf("tenant %d: ledger coefficient %v != journal replay %v", spend.Tenant, spend.Coefficient, acc.Coefficient())
		}
		c := counts[spend.Tenant]
		if spend.Queries != c[0] || spend.Releases != c[1] {
			t.Errorf("tenant %d: ledger counts (%d, %d) != journaled (%d, %d)",
				spend.Tenant, spend.Queries, spend.Releases, c[0], c[1])
		}
	}

	// The durable ledger file reloads to the same state the report carried.
	b, err := openLedger(ledgerPath, nil, 0, delta)
	if err != nil {
		t.Fatalf("reload ledger: %v", err)
	}
	defer b.close()
	reloaded := b.spends()
	if len(reloaded) != len(r1.rep.Tenants) {
		t.Fatalf("reloaded ledger %+v != report %+v", reloaded, r1.rep.Tenants)
	}
	for i := range reloaded {
		if reloaded[i] != r1.rep.Tenants[i] {
			t.Errorf("reloaded spend %+v != report %+v", reloaded[i], r1.rep.Tenants[i])
		}
	}

	// Journals chain-verify end to end.
	for _, path := range []string{s1Journal, s2Journal} {
		if n, err := obs.VerifyJournalFile(path); err != nil || n == 0 {
			t.Errorf("%s: %d records, err %v", path, n, err)
		}
	}
}
