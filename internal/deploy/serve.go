package deploy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
	"time"

	"github.com/privconsensus/privconsensus/internal/ingest"
	"github.com/privconsensus/privconsensus/internal/keystore"
	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// Continuous-operation S1: the admission controller, ε-budget scheduler,
// epoch state machine and query pipeline. See docs/PROTOCOL.md
// § Continuous operation.

// serveQuery is one admitted query's lifecycle state on S1. Collection
// (the per-query collector fed by the accept loop) overlaps the protocol
// phases of earlier queries; the serve loop runs queries one at a time on
// the peer protocol link once their collector releases.
type serveQuery struct {
	qid       int
	tenant    int64
	epoch     int
	cost      float64
	col       *collector
	announced time.Time

	res  InstanceResult
	done chan struct{} // closed exactly once, when res is final
}

// ServeReport summarizes one serve-mode run.
type ServeReport struct {
	// Results holds one entry per admitted query, in admission order.
	Results []InstanceResult
	// Admissions counts admission decisions by label ("admitted",
	// "budget-exhausted", "draining", "overloaded", "unavailable").
	Admissions map[string]int
	// Rotations is the number of committed epoch rotations.
	Rotations int
	// Epoch is the final admission epoch.
	Epoch int
	// Tenants is the committed per-tenant ledger state at shutdown.
	Tenants []TenantSpend
}

// serveState is S1's shared serve-mode state. The accept-side admission
// path and the serve loop communicate through it under mu; the ctl link
// to S2 serializes its request/response exchanges independently.
type serveState struct {
	s     *serverSetup
	opts  ServeOptions
	files []*keystore.S1File
	keys  []protocol.KeysS1 // loaded per epoch; zeroized on retirement
	rings []*big.Int        // per-epoch peer-key N², for per-query collectors

	ledger *budgetLedger
	cost   float64 // worst-case per-query coefficient

	ctl *ctlLink

	mu         sync.Mutex
	draining   bool
	epoch      int
	loaded     int // epochs with keys loaded: [0, loaded)
	nextQID    int
	queries    map[int]*serveQuery
	grants     map[grantKey]*serveQuery
	inflight   int
	epochLive  map[int]int
	retired    map[int]bool
	admitted   int
	admissions map[string]int
	rotations  int

	runnable   chan *serveQuery
	rotateKick chan struct{}
}

// grantKey makes admission idempotent: a client that lost the admit reply
// redials with the same (tenant, nonce) and receives the original grant.
type grantKey struct {
	tenant int64
	nonce  int64
}

// ctlLink is S1's view of the serve-control connection S2 dials. One
// request/response exchange at a time; a failed exchange discards the
// connection and waits for S2's redial.
type ctlLink struct {
	mu      sync.Mutex
	src     *peerSource
	conn    transport.Conn
	retries int
	backoff time.Duration
	timeout time.Duration
}

// roundTrip sends one ctl request and awaits its ack, retrying on a fresh
// connection within the budget. Every ctl request is idempotent on S2, so
// a retry after a lost ack is safe.
func (c *ctlLink) roundTrip(ctx context.Context, ackCode, code int64, args ...int64) ([]int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for try := 0; try <= c.retries; try++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if try > 0 {
			sleepCtx(ctx, backoffDelay(c.backoff, try))
		}
		if c.conn == nil {
			awaitCtx, cancel := context.WithTimeout(ctx, c.timeout)
			conn, _, err := c.src.await(awaitCtx)
			cancel()
			if err != nil {
				lastErr = err
				continue
			}
			c.conn = conn
		} else {
			c.conn = c.src.takeNewer(c.conn)
		}
		rctx, cancel := context.WithTimeout(ctx, c.timeout)
		reply, err := sendCtl(rctx, c.conn, ackCode, code, args...)
		cancel()
		if err == nil {
			return reply, nil
		}
		lastErr = err
		c.conn.Close()
		c.conn = nil
		if !attemptRetryable(ctx, err) {
			break
		}
	}
	return nil, fmt.Errorf("deploy: serve ctl %d: %w", code, lastErr)
}

// ServeS1 runs S1 in continuous-operation mode: it admits queries over
// the serve handshake, enforces per-tenant ε quotas at admission, runs
// admitted queries on the resilient peer link while later queries
// collect, rotates key epochs (files[1:] are the pre-provisioned future
// epochs), and drains gracefully when DrainCh fires or ctx ends.
func ServeS1(ctx context.Context, files []*keystore.S1File, opts ServeOptions) (*ServeReport, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("deploy: serve mode needs at least one epoch key file")
	}
	opts.Instances = 1 // serve mode has no batch instance count
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := opts.validateServe(); err != nil {
		return nil, err
	}
	for i, f := range files[1:] {
		if f.Config != files[0].Config {
			return nil, fmt.Errorf("deploy: epoch %d key file config differs from epoch 0", i+1)
		}
	}
	keys0, err := files[0].KeysS1()
	if err != nil {
		return nil, err
	}
	keys0.Precompute()
	s, err := setupServer(ctx, "S1", files[0].Config, opts.ServerOptions, ringOf(keys0.PeerPub))
	if err != nil {
		return nil, err
	}
	defer s.admin.close(ctx)
	defer s.journal.Close()
	defer s.l.Close()

	ledger, err := openLedger(opts.LedgerPath, opts.Tenants, opts.DefaultQuota, opts.delta())
	if err != nil {
		return nil, err
	}
	defer ledger.close()

	st := &serveState{
		s:          s,
		opts:       opts,
		files:      files,
		keys:       make([]protocol.KeysS1, len(files)),
		rings:      make([]*big.Int, len(files)),
		ledger:     ledger,
		cost:       queryCost(s.cfg.Sigma1, s.cfg.Sigma2),
		queries:    make(map[int]*serveQuery),
		grants:     make(map[grantKey]*serveQuery),
		epochLive:  make(map[int]int),
		retired:    make(map[int]bool),
		admissions: make(map[string]int),
		runnable:   make(chan *serveQuery),
		rotateKick: make(chan struct{}, 1),
		loaded:     1,
	}
	st.keys[0] = keys0
	st.rings[0] = ringOf(keys0.PeerPub)
	if st.cost == 0 && st.hasFiniteQuota() {
		return nil, fmt.Errorf("deploy: tenant quotas need positive sigma1/sigma2 (accounting is off at zero noise)")
	}
	st.ctl = &ctlLink{
		src:     newPeerSource(),
		retries: opts.MaxRetries,
		backoff: opts.Backoff,
		timeout: opts.attemptTimeout(),
	}
	defer st.ctl.src.close()

	ps := newPeerSource()
	defer ps.close()
	acceptErr := make(chan error, 1)
	acceptCtx, stopAccept := context.WithCancel(ctx)
	defer stopAccept()
	go st.acceptLoop(acceptCtx, ps, acceptErr)

	obs.ServeEpoch("s1").Set(0)
	st.updateReadiness()
	defer obs.SetReadiness("", true)

	// The startup wait spans S2's full dial-retry budget: under fault
	// injection the first protocol dial may be dropped several times.
	awaitCtx, cancel := context.WithTimeout(ctx, time.Duration(opts.MaxRetries+1)*opts.attemptTimeout())
	peer, caps, err := ps.await(awaitCtx)
	cancel()
	if err != nil {
		select {
		case aerr := <-acceptErr:
			return nil, aerr
		default:
		}
		return nil, fmt.Errorf("deploy: waiting for S2 serve link: %w", err)
	}
	if caps&capServe == 0 {
		peer.Close()
		return nil, fmt.Errorf("deploy: peer S2 did not advertise serve mode; run both servers with -serve")
	}
	if err := checkPeerCaps(caps, opts.ServerOptions, s.cfg); err != nil {
		peer.Close()
		return nil, err
	}
	opts.log(levelInfo, "S1 serving: admission open (window %d, epoch 0 of %d provisioned)",
		opts.maxInFlight(), len(files))
	return st.run(ctx, ps, peer)
}

// hasFiniteQuota reports whether any quota actually binds.
func (st *serveState) hasFiniteQuota() bool {
	if st.opts.DefaultQuota > 0 {
		return true
	}
	for _, q := range st.opts.Tenants {
		if q > 0 {
			return true
		}
	}
	return false
}

// acceptLoop routes inbound serve-mode connections: peer hellos carrying
// capServeCtl feed the ctl link, other peer hellos the protocol source,
// user hellos the serve admission/upload handler.
func (st *serveState) acceptLoop(ctx context.Context, ps *peerSource, errCh chan<- error) {
	opts := st.opts
	for {
		conn, err := st.s.l.Accept()
		if err != nil {
			select {
			case <-ctx.Done():
			default:
				select {
				case errCh <- fmt.Errorf("deploy: accept: %w", err):
				default:
				}
			}
			return
		}
		go func(conn transport.Conn) {
			party, caps, err := recvHello(ctx, conn)
			if err != nil {
				opts.log(levelWarn, "dropping connection with bad hello: %v", err)
				conn.Close()
				return
			}
			switch party {
			case partyPeer:
				if caps&capTrace != 0 && opts.traced() {
					if err := replyTraceContext(ctx, st.s, conn); err != nil {
						opts.log(levelWarn, "peer trace context send failed: %v", err)
						conn.Close()
						return
					}
				}
				if caps&capServeCtl != 0 {
					st.ctl.src.offer(conn, caps)
					return
				}
				ps.offer(conn, caps)
			case partyUser:
				if caps&capTrace != 0 {
					if err := replyTraceContext(ctx, st.s, conn); err != nil {
						opts.log(levelWarn, "user trace context send failed: %v", err)
						conn.Close()
						return
					}
				}
				if err := st.serveUser(ctx, conn); err != nil {
					opts.log(levelWarn, "serve user connection error: %v", err)
				}
				conn.Close()
			default:
				opts.log(levelWarn, "dropping unexpected party %d in serve mode", party)
				conn.Close()
			}
		}(conn)
	}
}

// serveUser drains one client connection: admission requests, submission
// frames routed to per-query collectors, and blocking result waits.
func (st *serveState) serveUser(ctx context.Context, conn transport.Conn) error {
	for {
		msg, err := conn.Recv(ctx)
		if err != nil {
			return nil //nolint:nilerr // EOF-equivalent by protocol design
		}
		if msg.Kind == transport.KindControl && len(msg.Flags) >= 1 {
			switch msg.Flags[0] {
			case ctrlUploadDone:
				user := int64(-1)
				if len(msg.Flags) >= 2 {
					user = msg.Flags[1]
				}
				ack := &transport.Message{Kind: transport.KindControl, Flags: []int64{ctrlUploadAck, user}}
				if err := conn.Send(ctx, ack); err != nil {
					return nil //nolint:nilerr // client gone; it will retry
				}
			case ctrlAdmitRequest:
				if len(msg.Flags) < 3 {
					return fmt.Errorf("deploy: short admit request %v", msg.Flags)
				}
				status, qid, epoch := st.admit(ctx, msg.Flags[1], msg.Flags[2])
				if err := transport.SendControl(ctx, conn, ctrlAdmitReply, status, int64(qid), int64(epoch)); err != nil {
					return nil //nolint:nilerr // client gone; the grant is idempotent
				}
			case ctrlResultWait:
				if len(msg.Flags) < 2 {
					return fmt.Errorf("deploy: short result wait %v", msg.Flags)
				}
				if err := st.replyResult(ctx, conn, msg.Flags[1]); err != nil {
					return nil //nolint:nilerr // client gone; results are re-queryable
				}
			}
			continue
		}
		if err := st.acceptUpload(msg); err != nil {
			return err
		}
	}
}

// acceptUpload decodes one submission frame and routes it to its query's
// collector. Frames for unknown queries are counted rejections, not
// connection errors.
func (st *serveState) acceptUpload(msg *transport.Message) error {
	user, qid, half, err := decodeServeUpload(st.s, msg)
	if errors.Is(err, errFrameRejected) {
		return nil // already counted as a rejection
	}
	if err != nil {
		return err
	}
	st.mu.Lock()
	q := st.queries[qid]
	st.mu.Unlock()
	if q == nil {
		submissionsRejected("unknown-query").Inc()
		st.s.journalEvent(st.opts.ServerOptions, obs.Event{Type: obs.EventRejection, Instance: qid, Note: "unknown-query"})
		return nil
	}
	if err := q.col.add(user, 0, half); err != nil {
		if errors.Is(err, errDuplicateSubmission) || errors.Is(err, errRejectedSubmission) {
			return nil
		}
		return err
	}
	return nil
}

// errFrameRejected marks a frame already counted as a rejection.
var errFrameRejected = errors.New("deploy: frame rejected")

// decodeServeUpload decodes a submit frame in the server's resolved
// grammar (packed or unpacked), applying the same layout validation as
// the batch path. The returned instance slot carries the query ID.
func decodeServeUpload(s *serverSetup, msg *transport.Message) (user, qid int, half protocol.SubmissionHalf, err error) {
	if p := s.col.packed; p != nil {
		var classes, width int
		user, qid, classes, width, half, err = ingest.DecodePackedHalf(msg)
		if err != nil {
			return 0, 0, protocol.SubmissionHalf{}, err
		}
		if p.Capacity(width) < 1 {
			_ = s.col.reject("slot-overflow", fmt.Errorf("user %d declared slot width %d below the %d headroom bits", user, width, p.Headroom))
			return 0, 0, protocol.SubmissionHalf{}, errFrameRejected
		}
		if classes != s.col.packedClasses || width != p.Width {
			_ = s.col.reject("bad-width", fmt.Errorf("user %d declared packed layout %dx%d, want %dx%d",
				user, classes, width, s.col.packedClasses, p.Width))
			return 0, 0, protocol.SubmissionHalf{}, errFrameRejected
		}
		return user, qid, half, nil
	}
	user, qid, half, err = DecodeHalf(msg)
	return user, qid, half, err
}

// admit is the admission controller: idempotent grant replay, drain and
// window checks, ε-budget reservation, and the ctl announce that
// registers the query on S2 before the grant is returned. Refusals spend
// no protocol bytes.
func (st *serveState) admit(ctx context.Context, tenant, nonce int64) (status int64, qid, epoch int) {
	start := time.Now()
	defer func() {
		obs.AdmissionWaitSeconds("s1").Observe(time.Since(start).Seconds())
	}()

	key := grantKey{tenant: tenant, nonce: nonce}
	st.mu.Lock()
	if q, ok := st.grants[key]; ok {
		st.mu.Unlock()
		return admitOK, q.qid, q.epoch // idempotent replay of a lost reply
	}
	if st.draining {
		st.mu.Unlock()
		return st.refuse(admitDraining, tenant)
	}
	if st.inflight >= st.opts.maxInFlight() {
		st.mu.Unlock()
		return st.refuse(admitOverloaded, tenant)
	}
	st.mu.Unlock()

	if err := st.ledger.reserve(tenant, st.cost); err != nil {
		if errors.Is(err, ErrBudgetExhausted) {
			st.opts.log(levelWarn, "S1 refusing tenant %d: %v", tenant, err)
			status, qid, epoch = st.refuse(admitBudgetExhausted, tenant)
			st.updateReadiness()
			return status, qid, epoch
		}
		st.opts.log(levelWarn, "S1 budget reservation error for tenant %d: %v", tenant, err)
		return st.refuse(admitUnavailable, tenant)
	}

	st.mu.Lock()
	if st.draining { // drain began while reserving
		st.mu.Unlock()
		st.ledger.unreserve(tenant, st.cost)
		return st.refuse(admitDraining, tenant)
	}
	q := &serveQuery{
		qid:       st.nextQID,
		tenant:    tenant,
		epoch:     st.epoch,
		cost:      st.cost,
		announced: time.Now(),
		done:      make(chan struct{}),
	}
	q.res = InstanceResult{Instance: q.qid, Outcome: protocol.Outcome{Consensus: false, Label: -1}}
	q.col = st.newQueryCollector(q.epoch)
	st.nextQID++
	st.queries[q.qid] = q
	st.grants[key] = q
	st.inflight++
	st.epochLive[q.epoch]++
	st.admitted++
	rotateDue := st.opts.RotateAfter > 0 && st.admitted == st.opts.RotateAfter
	st.mu.Unlock()

	reply, err := st.ctl.roundTrip(ctx, ctrlServeAck, ctrlServeAnnounce, int64(q.qid), int64(q.epoch), tenant)
	if err == nil && (len(reply) < 2 || reply[1] != 0) {
		err = fmt.Errorf("deploy: S2 refused query %d (ack %v)", q.qid, reply)
	}
	if err != nil {
		st.opts.log(levelWarn, "S1 could not announce query %d to S2: %v", q.qid, err)
		st.mu.Lock()
		delete(st.queries, q.qid)
		delete(st.grants, key)
		st.inflight--
		st.epochLive[q.epoch]--
		st.mu.Unlock()
		st.ledger.unreserve(tenant, st.cost)
		return st.refuse(admitUnavailable, tenant)
	}

	st.decide("admitted", tenant, q.qid)
	obs.ServeInflight("s1").Add(1)
	go st.watch(ctx, q)
	if rotateDue {
		select {
		case st.rotateKick <- struct{}{}:
		default:
		}
	}
	return admitOK, q.qid, q.epoch
}

// refuse records one typed refusal.
func (st *serveState) refuse(status int64, tenant int64) (int64, int, int) {
	st.decide(admitDecision(status), tenant, -1)
	return status, 0, 0
}

// decide counts and journals one admission decision.
func (st *serveState) decide(decision string, tenant int64, qid int) {
	st.mu.Lock()
	st.admissions[decision]++
	st.mu.Unlock()
	obs.Admissions("s1", decision).Inc()
	st.s.journalEvent(st.opts.ServerOptions, obs.Event{Type: obs.EventAdmission, Instance: qid,
		Note: fmt.Sprintf("decision=%s tenant=%d", decision, tenant)})
}

// newQueryCollector builds the one-instance submission grid for a query
// admitted under the given epoch. Callers hold st.mu (reads loaded keys).
func (st *serveState) newQueryCollector(epoch int) *collector {
	cfg := st.s.cfg
	perVec := cfg.Classes
	if cfg.Packing {
		perVec = cfg.PackedCiphertexts()
	}
	col := newCollector(cfg.Users, 1, perVec, st.rings[epoch])
	col.packed = st.s.col.packed
	col.packedClasses = st.s.col.packedClasses
	col.events = st.s.col.events
	return col
}

// watch releases the query when its grid fills or its submit window
// elapses, then hands it to the serve loop.
func (st *serveState) watch(ctx context.Context, q *serveQuery) {
	window := st.opts.submitWindow()
	timer := time.NewTimer(time.Until(q.announced.Add(window)))
	defer timer.Stop()
	select {
	case <-q.col.done:
	case <-timer.C:
	case <-ctx.Done():
		return
	}
	q.col.release()
	select {
	case st.runnable <- q:
	case <-ctx.Done():
	}
}

// updateReadiness publishes the /healthz serve state.
func (st *serveState) updateReadiness() {
	st.mu.Lock()
	draining := st.draining
	st.mu.Unlock()
	switch {
	case draining:
		obs.SetReadiness("draining", false)
	case st.ledger.exhausted(st.cost):
		obs.SetReadiness("budget-exhausted", false)
	default:
		obs.SetReadiness("admitting", true)
	}
}

// run is the serve loop: it executes runnable queries sequentially on the
// peer protocol link (collection of later queries overlaps), applies
// rotation and drain triggers, and returns the report once drained.
func (st *serveState) run(ctx context.Context, ps *peerSource, peer transport.Conn) (*ServeReport, error) {
	rng := newRNG(st.opts.Seed)
	prev := statusNone
	drainC := st.opts.DrainCh
	var drainTimer <-chan time.Time
	var runErr error

loop:
	for {
		if st.drained() {
			break
		}
		select {
		case q := <-st.runnable:
			peer = st.runQuery(ctx, q, ps, peer, rng, &prev)
			st.resolve(q)
			st.maybeRetire(ctx)
			st.updateReadiness()
		case <-st.rotateKick:
			st.rotate(ctx)
		case <-st.external(st.opts.RotateCh):
			st.rotate(ctx)
		case <-st.external(drainC):
			drainC = nil
			st.beginDrain()
			drainTimer = time.After(st.opts.drainTimeout())
		case <-drainTimer:
			st.opts.log(levelWarn, "S1 drain timeout; failing %d unresolved queries", st.inflightCount())
			st.failUnresolved(fmt.Errorf("deploy: drain timeout: %w", ErrDraining))
			break loop
		case <-ctx.Done():
			runErr = ctx.Err()
			st.beginDrain()
			st.failUnresolved(fmt.Errorf("deploy: serve cancelled: %w", ctx.Err()))
			break loop
		}
	}

	// Tell S2 the stream is over: a drain marker on the ctl link (so it
	// stops expecting announces) and the end-of-session frame on the
	// protocol link (so its frame loop exits).
	dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), st.opts.attemptTimeout())
	if _, err := st.ctl.roundTrip(dctx, ctrlEpochAck, ctrlServeDrain, 0); err != nil {
		st.opts.log(levelWarn, "S1 could not deliver drain marker to S2: %v", err)
	}
	peer = s1SendEnd(dctx, st.s, st.opts.ServerOptions, ps, peer, prev)
	cancel()
	if peer != nil {
		peer.Close()
	}

	st.mu.Lock()
	results := make([]InstanceResult, 0, len(st.queries))
	for qid := 0; qid < st.nextQID; qid++ {
		if q, ok := st.queries[qid]; ok {
			results = append(results, q.res)
		}
	}
	rep := &ServeReport{
		Results:    results,
		Admissions: make(map[string]int, len(st.admissions)),
		Rotations:  st.rotations,
		Epoch:      st.epoch,
	}
	for k, v := range st.admissions {
		rep.Admissions[k] = v
	}
	st.mu.Unlock()
	rep.Tenants = st.ledger.spends()
	st.opts.log(levelInfo, "S1 drained: %d queries, %d rotations, final epoch %d", len(rep.Results), rep.Rotations, rep.Epoch)
	return rep, runErr
}

// external adapts a possibly-nil trigger channel for select (a nil
// channel never fires).
func (st *serveState) external(ch <-chan struct{}) <-chan struct{} { return ch }

// drained reports whether the loop may exit: draining with nothing in
// flight.
func (st *serveState) drained() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.draining && st.inflight == 0
}

// inflightCount returns the live admission count.
func (st *serveState) inflightCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.inflight
}

// beginDrain stops admission; in-flight queries keep running.
func (st *serveState) beginDrain() {
	st.mu.Lock()
	already := st.draining
	st.draining = true
	st.mu.Unlock()
	if !already {
		st.opts.log(levelInfo, "S1 draining: admission closed, %d queries in flight", st.inflightCount())
		obs.SetReadiness("draining", false)
		st.s.journalEvent(st.opts.ServerOptions, obs.Event{Type: obs.EventEpoch, Instance: -1, Note: "draining"})
	}
}

// runQuery executes one released query on the peer link with the session
// retry discipline of the batch path: begin frame (query ID in the
// instance slot), participant exchange, protocol run; transient failures
// retry on a fresh connection within the budget. It returns the (possibly
// replaced) peer connection; q.res holds the terminal result.
func (st *serveState) runQuery(ctx context.Context, q *serveQuery, ps *peerSource,
	peer transport.Conn, rng io.Reader, prev *int64) transport.Conn {
	opts := st.opts
	keys := st.epochKeys(q.epoch)
	var lastErr error
	participants := st.s.cfg.Users
	for attempt := 0; attempt <= opts.MaxRetries; attempt++ {
		q.res.Attempts = attempt + 1
		if attempt > 0 {
			retriesTotal("s1", "instance").Inc()
			st.s.journalEvent(opts.ServerOptions, obs.Event{Type: obs.EventRetry, Instance: q.qid, Attempt: attempt + 1, Note: "instance"})
			sleepCtx(ctx, backoffDelay(opts.Backoff, attempt))
		}
		if err := ctx.Err(); err != nil {
			lastErr = err
			break
		}
		if peer == nil {
			awaitCtx, cancel := context.WithTimeout(ctx, opts.attemptTimeout())
			var err error
			peer, _, err = ps.await(awaitCtx)
			cancel()
			if err != nil {
				lastErr = err
				retriesTotal("s1", "reconnect").Inc()
				st.s.journalEvent(opts.ServerOptions, obs.Event{Type: obs.EventRetry, Instance: q.qid, Note: "reconnect"})
				continue
			}
		} else {
			peer = ps.takeNewer(peer)
		}
		actx, cancel := context.WithTimeout(ctx, opts.attemptTimeout())
		out, err := func() (*protocol.Outcome, error) {
			if err := sendBegin(actx, peer, q.qid, attempt, *prev); err != nil {
				return nil, fmt.Errorf("deploy: begin query %d: %w", q.qid, err)
			}
			groups, p, err := st.prepareQuery(actx, q, peer)
			participants = p
			if err != nil {
				return nil, err
			}
			return runInstance(actx, st.s, "s1", q.qid, attempt, p, st.s.cfg.Users-p, opts.ServerOptions,
				func(qctx context.Context, meter *transport.Meter) (*protocol.Outcome, error) {
					return protocol.RunS1Groups(qctx, rng, st.s.cfg, keys, peer, groups, meter)
				})
		}()
		cancel()
		if err == nil {
			q.res.Outcome = *out
			lastErr = nil
			break
		}
		lastErr = err
		if errors.Is(err, protocol.ErrQuorumNotMet) {
			// Clean verdict on a clean wire: keep the connection.
			break
		}
		peer.Close()
		peer = nil
		if !attemptRetryable(ctx, err) {
			break
		}
		opts.log(levelWarn, "S1 query %d attempt %d failed, will retry: %v", q.qid, attempt+1, err)
	}
	q.res.Participants = participants
	q.res.Dropped = st.s.cfg.Users - participants
	if lastErr != nil {
		q.res.Err = lastErr
		if !errors.Is(lastErr, protocol.ErrQuorumNotMet) {
			queriesFailed("s1").Inc()
		}
		opts.log(levelWarn, "S1 query %d failed after %d attempts: %v", q.qid, q.res.Attempts, lastErr)
		*prev = statusFailed
	} else {
		*prev = statusOK
	}
	return peer
}

// epochKeys returns the loaded key view for an epoch.
func (st *serveState) epochKeys(epoch int) protocol.KeysS1 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.keys[epoch]
}

// prepareQuery is the per-query participant exchange: S1 proposes its
// released bitmap (frames keyed by query ID), S2 intersects, and the
// agreed set is masked onto the collector. Serve mode always runs the
// exchange — per-query release means the servers' sets can differ even
// at full participation.
func (st *serveState) prepareQuery(ctx context.Context, q *serveQuery, peer transport.Conn) ([]protocol.Group, int, error) {
	opts := st.opts
	local := q.col.bitmap(0)
	agreed, err := exchangeParticipantsS1(ctx, peer, q.qid, local)
	if err != nil {
		return nil, st.s.cfg.Users, err
	}
	participants := popcount(agreed)
	obs.Participants("s1").Set(float64(participants))
	st.s.journalEvent(opts.ServerOptions, obs.Event{Type: obs.EventQuorum, Instance: q.qid,
		Note: fmt.Sprintf("participants=%d dropped=%d quorum=%d",
			participants, st.s.cfg.Users-participants, opts.quorumCount(st.s.cfg.Users))})
	if participants < opts.quorumCount(st.s.cfg.Users) {
		queriesTotal("s1", "quorum-not-met").Inc()
		opts.log(levelWarn, "S1 query %d released %d of %d users, below quorum %d",
			q.qid, participants, st.s.cfg.Users, opts.quorumCount(st.s.cfg.Users))
		return nil, participants, fmt.Errorf("deploy: query %d has %d of %d participants: %w",
			q.qid, participants, st.s.cfg.Users, protocol.ErrQuorumNotMet)
	}
	groups, err := q.col.maskedGroups(0, agreed)
	if err != nil {
		return nil, participants, err
	}
	return groups, participants, nil
}

// resolve finalizes a query: ledger commit (SVT always — conservative,
// protocol bytes may have flowed on any attempt — RNM only on a released
// label), the spend journal records the soak replays, bookkeeping, and
// the result broadcast to waiting clients.
func (st *serveState) resolve(q *serveQuery) {
	released := q.res.Err == nil && q.res.Outcome.Consensus
	cfg := st.s.cfg
	if err := st.ledger.commit(q.tenant, q.cost, cfg.Sigma1, cfg.Sigma2, released); err != nil {
		st.opts.log(levelWarn, "S1 ledger commit for query %d failed: %v", q.qid, err)
	}
	if cfg.Sigma1 > 0 {
		st.s.journalEvent(st.opts.ServerOptions, obs.Event{Type: obs.EventSpend, Instance: q.qid,
			Note: fmt.Sprintf("svt sigma=%g tenant=%d", cfg.Sigma1, q.tenant)})
	}
	if released && cfg.Sigma2 > 0 {
		st.s.journalEvent(st.opts.ServerOptions, obs.Event{Type: obs.EventSpend, Instance: q.qid,
			Note: fmt.Sprintf("rnm sigma=%g tenant=%d", cfg.Sigma2, q.tenant)})
	}
	st.mu.Lock()
	st.inflight--
	st.epochLive[q.epoch]--
	st.mu.Unlock()
	obs.ServeInflight("s1").Add(-1)
	close(q.done)
}

// failUnresolved resolves every still-open query with err (drain timeout
// or cancellation). The queries never ran, but their admission was
// granted, so they still commit conservatively.
func (st *serveState) failUnresolved(err error) {
	st.mu.Lock()
	var open []*serveQuery
	for _, q := range st.queries {
		select {
		case <-q.done:
		default:
			open = append(open, q)
		}
	}
	st.mu.Unlock()
	for _, q := range open {
		q.res.Err = err
		queriesFailed("s1").Inc()
		st.resolve(q)
	}
}

// replyResult answers a result-wait: it blocks until the query resolves
// (the client sends nothing else on the connection until the reply), then
// reports the terminal status.
func (st *serveState) replyResult(ctx context.Context, conn transport.Conn, qid64 int64) error {
	qid := int(qid64)
	st.mu.Lock()
	q := st.queries[qid]
	st.mu.Unlock()
	if q == nil {
		return transport.SendControl(ctx, conn, ctrlResultReply, qid64, resultUnknown, -1, 0)
	}
	select {
	case <-q.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	status := resultFailed
	label := int64(-1)
	switch {
	case q.res.Err == nil && q.res.Outcome.Consensus:
		status = resultConsensus
		label = int64(q.res.Outcome.Label)
	case q.res.Err == nil:
		status = resultNoConsensus
	case errors.Is(q.res.Err, protocol.ErrQuorumNotMet):
		status = resultQuorumMiss
	}
	return transport.SendControl(ctx, conn, ctrlResultReply, qid64, status, label, int64(q.res.Attempts))
}

// rotate performs one S1-led two-phase epoch bump: load and prepare the
// next epoch's keys on both sides, then commit — admission flips to the
// new epoch while in-flight queries drain under the old one. The old
// epoch's material is zeroized by maybeRetire once its last query
// resolves.
func (st *serveState) rotate(ctx context.Context) {
	st.mu.Lock()
	next := st.epoch + 1
	if next >= len(st.files) {
		st.mu.Unlock()
		st.opts.log(levelWarn, "S1 rotation requested but no epoch %d key file is provisioned", next)
		st.s.journalEvent(st.opts.ServerOptions, obs.Event{Type: obs.EventEpoch, Instance: -1,
			Note: fmt.Sprintf("rotate-skipped epoch=%d reason=no-keys", next)})
		return
	}
	st.mu.Unlock()

	keys, err := st.files[next].KeysS1()
	if err != nil {
		st.opts.log(levelWarn, "S1 epoch %d key load failed: %v", next, err)
		return
	}
	keys.Precompute()

	reply, err := st.ctl.roundTrip(ctx, ctrlEpochAck, ctrlEpochPrepare, int64(next))
	if err != nil || len(reply) < 2 || reply[1] != 0 {
		st.opts.log(levelWarn, "S1 epoch %d prepare failed on S2 (reply %v): %v", next, reply, err)
		st.s.journalEvent(st.opts.ServerOptions, obs.Event{Type: obs.EventEpoch, Instance: -1,
			Note: fmt.Sprintf("prepare-failed epoch=%d", next)})
		return
	}
	st.s.journalEvent(st.opts.ServerOptions, obs.Event{Type: obs.EventEpoch, Instance: -1,
		Note: fmt.Sprintf("prepared epoch=%d", next)})

	st.mu.Lock()
	st.keys[next] = keys
	st.rings[next] = ringOf(keys.PeerPub)
	if next >= st.loaded {
		st.loaded = next + 1
	}
	st.epoch = next
	st.rotations++
	st.mu.Unlock()
	obs.ServeEpoch("s1").Set(float64(next))
	st.s.journalEvent(st.opts.ServerOptions, obs.Event{Type: obs.EventEpoch, Instance: -1,
		Note: fmt.Sprintf("committed epoch=%d", next)})
	st.opts.log(levelInfo, "S1 rotated to epoch %d; epoch %d drains %d in-flight queries", next, next-1, st.epochLiveCount(next-1))

	if _, err := st.ctl.roundTrip(ctx, ctrlEpochAck, ctrlEpochCommit, int64(next)); err != nil {
		// S2 learns epochs authoritatively from announces; the commit
		// marker is observability, so its loss is logged, not fatal.
		st.opts.log(levelWarn, "S1 epoch %d commit marker lost: %v", next, err)
	}
	st.maybeRetire(ctx)
}

// epochLiveCount returns the in-flight count of one epoch.
func (st *serveState) epochLiveCount(epoch int) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.epochLive[epoch]
}

// maybeRetire zeroizes every pre-current epoch whose last in-flight query
// has resolved, telling S2 to do the same. Admission can no longer grant
// into those epochs (grants only use the current one), so retirement is
// final.
func (st *serveState) maybeRetire(ctx context.Context) {
	st.mu.Lock()
	var retire []int
	for e := 0; e < st.epoch; e++ {
		if e < st.loaded && !st.retired[e] && st.epochLive[e] == 0 {
			st.retired[e] = true
			retire = append(retire, e)
		}
	}
	st.mu.Unlock()
	for _, e := range retire {
		if _, err := st.ctl.roundTrip(ctx, ctrlEpochAck, ctrlEpochRetire, int64(e)); err != nil {
			st.opts.log(levelWarn, "S1 epoch %d retire marker lost: %v", e, err)
		}
		st.keys[e].Zeroize()
		st.s.journalEvent(st.opts.ServerOptions, obs.Event{Type: obs.EventEpoch, Instance: -1,
			Note: fmt.Sprintf("retired epoch=%d", e)})
		st.opts.log(levelInfo, "S1 retired epoch %d: private material zeroized", e)
	}
}
