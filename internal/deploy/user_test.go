package deploy

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/transport"
)

// TestSubmitVotesServerUnreachable: a resilient upload against a dead
// address must exhaust its retry budget and return a descriptive error
// instead of hanging.
func TestSubmitVotesServerUnreachable(t *testing.T) {
	if testing.Short() {
		t.Skip("key generation is slow in -short mode")
	}
	_, _, pubFile, cfg := testSetup(t, 2)

	// Bind a port, then free it, so the dial is refused instead of hanging.
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l.Addr()
	l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	err = SubmitVotes(ctx, pubFile, UserOptions{
		User:           0,
		S1Addr:         deadAddr,
		S2Addr:         deadAddr,
		Seed:           801,
		MaxRetries:     2,
		Backoff:        time.Millisecond,
		AttemptTimeout: 2 * time.Second,
	}, [][]float64{oneHot(cfg.Classes, 0)})
	if err == nil {
		t.Fatal("expected upload failure against a dead server")
	}
	if !strings.Contains(err.Error(), "upload to S1") {
		t.Errorf("error %q does not name the target server", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error %q does not report the exhausted budget", err)
	}
}

// TestSubmitVotesReconnectMidUpload: the server kills the first connection
// after accepting one submission frame; the resilient client must reconnect,
// replay the whole upload, and the collector must end up with exactly one
// copy per (user, instance) cell despite the replayed duplicate.
func TestSubmitVotesReconnectMidUpload(t *testing.T) {
	if testing.Short() {
		t.Skip("key generation is slow in -short mode")
	}
	_, _, pubFile, cfg := testSetup(t, 2)
	const instances = 3

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Flaky S1: first connection ingests one frame then resets; the second
	// connection is served normally.
	l1, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	col1 := newCollector(1, instances, cfg.Classes, nil)
	s1Err := make(chan error, 1)
	go func() {
		s1Err <- func() error {
			conn, err := l1.Accept()
			if err != nil {
				return err
			}
			if _, _, err := recvHello(ctx, conn); err != nil {
				conn.Close()
				return err
			}
			msg, err := conn.Recv(ctx)
			if err != nil {
				conn.Close()
				return err
			}
			// Commit the first frame so the replay really duplicates it.
			user, instance, half, err := DecodeHalf(msg)
			if err != nil {
				conn.Close()
				return err
			}
			if err := col1.add(user, instance, half); err != nil {
				conn.Close()
				return err
			}
			conn.Close() // simulated mid-upload reset

			conn, err = l1.Accept()
			if err != nil {
				return err
			}
			defer conn.Close()
			if _, _, err := recvHello(ctx, conn); err != nil {
				return err
			}
			return serveUserConn(ctx, conn, col1)
		}()
	}()

	// Well-behaved S2.
	l2, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	col2 := newCollector(1, instances, cfg.Classes, nil)
	go func() {
		for {
			conn, err := l2.Accept()
			if err != nil {
				return
			}
			go func(c transport.Conn) {
				defer c.Close()
				if _, _, err := recvHello(ctx, c); err != nil {
					return
				}
				_ = serveUserConn(ctx, c, col2)
			}(conn)
		}
	}()

	votes := make([][]float64, instances)
	for i := range votes {
		votes[i] = oneHot(cfg.Classes, 2)
	}
	if err := SubmitVotes(ctx, pubFile, UserOptions{
		User:           0,
		S1Addr:         l1.Addr(),
		S2Addr:         l2.Addr(),
		Seed:           802,
		MaxRetries:     3,
		Backoff:        time.Millisecond,
		AttemptTimeout: 10 * time.Second,
	}, votes); err != nil {
		t.Fatalf("resilient upload did not survive the mid-upload reset: %v", err)
	}
	if err := <-s1Err; err != nil {
		t.Fatalf("flaky S1 stub: %v", err)
	}

	// Every cell filled exactly once: add() rejects duplicates, so a filled
	// grid after a replay proves the dedup path absorbed the repeats.
	wctx, wcancel := context.WithTimeout(ctx, 5*time.Second)
	defer wcancel()
	if err := col1.wait(wctx); err != nil {
		t.Fatalf("S1 collector incomplete after replay: %v", err)
	}
	if err := col2.wait(wctx); err != nil {
		t.Fatalf("S2 collector incomplete: %v", err)
	}
	for i := 0; i < instances; i++ {
		if got := popcount(col1.bitmap(i)); got != 1 {
			t.Errorf("S1 instance %d has %d submissions, want 1", i, got)
		}
	}
}

// TestSubmitVotesCancelWhileAwaitingAck: the server accepts the upload but
// never acks, and the caller cancels mid-wait. The client maps its context
// deadline onto connection I/O only at call start, so without the
// close-on-cancel hook the attempt would sit in the ack read until the
// attempt timeout; cancellation must instead surface promptly.
func TestSubmitVotesCancelWhileAwaitingAck(t *testing.T) {
	if testing.Short() {
		t.Skip("key generation is slow in -short mode")
	}
	_, _, pubFile, cfg := testSetup(t, 2)

	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c transport.Conn) {
				// Drain everything the client sends, ack nothing.
				for {
					if _, err := c.Recv(context.Background()); err != nil {
						c.Close()
						return
					}
				}
			}(conn)
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(200*time.Millisecond, cancel)
	start := time.Now()
	err = SubmitVotes(ctx, pubFile, UserOptions{
		User:           0,
		S1Addr:         l.Addr(),
		S2Addr:         l.Addr(),
		Seed:           803,
		MaxRetries:     2,
		Backoff:        time.Millisecond,
		AttemptTimeout: time.Minute,
	}, [][]float64{oneHot(cfg.Classes, 0)})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected an error from the cancelled upload")
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled upload took %v; cancellation did not unblock the ack wait", elapsed)
	}
}
