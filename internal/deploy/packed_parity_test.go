package deploy

import (
	"math/big"
	"testing"

	"github.com/privconsensus/privconsensus/internal/ingest"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// TestPackedCapabilityParity pins the wire-parity contract for capPacked:
// the bit is advertised iff the resolved config packs, and a packing
// mismatch between the servers is rejected at the hello in both
// directions — before any submission frame could desynchronize the wire.
func TestPackedCapabilityParity(t *testing.T) {
	_, _, _, cfg := testSetup(t, 2)
	plain := cfg
	plain.Packing = false
	packed := cfg
	packed.Packing = true
	opts := ServerOptions{Instances: 1}

	if caps := opts.helloCaps(plain); caps&capPacked != 0 {
		t.Fatalf("unpacked hello caps = %d advertise capPacked; the bit must stay off the wire", caps)
	}
	if caps := opts.helloCaps(packed); caps&capPacked == 0 {
		t.Fatalf("packed hello caps = %d, want capPacked (%d) set", caps, capPacked)
	}
	// Agreement in both modes is accepted ...
	if err := checkPeerCaps(opts.helloCaps(plain), opts, plain); err != nil {
		t.Errorf("unpacked pair rejected: %v", err)
	}
	if err := checkPeerCaps(opts.helloCaps(packed), opts, packed); err != nil {
		t.Errorf("packed pair rejected: %v", err)
	}
	// ... and a mismatch is caught whichever side enables -packed.
	if err := checkPeerCaps(opts.helloCaps(plain), opts, packed); err == nil {
		t.Error("unpacked S2 hello accepted by a packed S1")
	}
	if err := checkPeerCaps(opts.helloCaps(packed), opts, plain); err == nil {
		t.Error("packed S2 hello accepted by an unpacked S1")
	}
}

// TestPackingOffWireParity pins the opt-out contract: with packing off, the
// user client's submission frame is byte-for-byte the legacy KindShares
// grammar (identical digest to ingest.EncodeHalf), so a fleet that never
// sets -packed on sees no wire change at all. With packing on, the same
// vote becomes a KindPacked frame carrying P < K ciphertexts per sequence.
func TestPackingOffWireParity(t *testing.T) {
	_, _, pub, cfg := testSetup(t, 3)
	cfg.Packing = false

	units := make([]*big.Int, cfg.Classes)
	for i := range units {
		units[i] = big.NewInt(0)
	}
	units[1] = big.NewInt(protocol.VoteScale)
	build := func(c protocol.Config) *protocol.Submission {
		t.Helper()
		sub, _, err := protocol.BuildSubmission(testRNG(31), testRNG(37), c, 1, units, pub.PK1, pub.PK2)
		if err != nil {
			t.Fatal(err)
		}
		return sub
	}

	sub := build(cfg)
	got, err := encodeSubmission(cfg, 1, 0, sub.ToS1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ingest.EncodeHalf(1, 0, sub.ToS1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != transport.KindShares {
		t.Fatalf("unpacked submission frame kind = %d, want KindShares (%d)", got.Kind, transport.KindShares)
	}
	if ingest.FrameDigest(got) != ingest.FrameDigest(want) {
		t.Error("packing off changed the submission wire bytes; the legacy grammar must survive unchanged")
	}

	pcfg := cfg
	pcfg.Packing = true
	psub := build(pcfg)
	pmsg, err := encodeSubmission(pcfg, 1, 0, psub.ToS1)
	if err != nil {
		t.Fatal(err)
	}
	if pmsg.Kind != transport.KindPacked {
		t.Fatalf("packed submission frame kind = %d, want KindPacked (%d)", pmsg.Kind, transport.KindPacked)
	}
	// At the 64-bit test key one slot fits per plaintext, so P = K here;
	// the size reduction itself is pinned at production key sizes by the
	// experiments package's sizing tests and the bench guard.
	if p := len(psub.ToS1.Votes); p != pcfg.PackedCiphertexts() {
		t.Errorf("packed half carries %d ciphertexts per sequence, want %d", p, pcfg.PackedCiphertexts())
	}
}
