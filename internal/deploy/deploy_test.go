package deploy

import (
	"context"
	"math/rand"
	"os"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/dgk"
	"github.com/privconsensus/privconsensus/internal/keystore"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// testSetup generates key files for a small deployment.
func testSetup(t *testing.T, users int) (*keystore.S1File, *keystore.S2File, *keystore.PublicFile, protocol.Config) {
	t.Helper()
	cfg := protocol.DefaultConfig(users)
	cfg.Classes = 4
	cfg.Kappa = 24
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.ThresholdFrac = 0.5
	cfg.DGK = dgk.Params{NBits: 160, TBits: 32, U: 1009, L: 50}
	// CHAOS_PACKED=1 (the `make chaos-packed` lane) flips every test
	// deployment to slot-packed submissions: the key files carry the mode,
	// so servers and users follow without per-test wiring. The assertions
	// stay identical — outcomes must not depend on the wire encoding.
	if os.Getenv("CHAOS_PACKED") == "1" {
		cfg.Packing = true
	}
	keys, err := protocol.GenerateKeys(testRNG(200), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2, pub, err := keystore.Split(cfg, keys)
	if err != nil {
		t.Fatal(err)
	}
	return s1, s2, pub, cfg
}

// oneHot builds a one-hot float vote vector.
func oneHot(classes, label int) []float64 {
	v := make([]float64, classes)
	v[label] = 1
	return v
}

// TestEndToEndDeployment spins up both servers and all users as real TCP
// endpoints and runs two query instances through the full protocol.
func TestEndToEndDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-endpoint deployment test is slow in -short mode")
	}
	const users = 3
	s1File, s2File, pubFile, cfg := testSetup(t, users)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	const instances = 2
	s1Ready := make(chan string, 1)
	s2Ready := make(chan string, 1)

	type serverResult struct {
		outcomes []protocol.Outcome
		err      error
	}
	s1Done := make(chan serverResult, 1)
	go func() {
		out, err := RunS1(ctx, s1File, ServerOptions{
			ListenAddr: "127.0.0.1:0", Instances: instances, Seed: 201, Ready: s1Ready,
		})
		s1Done <- serverResult{out, err}
	}()
	s1Addr := <-s1Ready

	s2Done := make(chan serverResult, 1)
	go func() {
		out, err := RunS2(ctx, s2File, ServerOptions{
			ListenAddr: "127.0.0.1:0", PeerAddr: s1Addr, Instances: instances, Seed: 202, Ready: s2Ready,
		})
		s2Done <- serverResult{out, err}
	}()
	s2Addr := <-s2Ready

	// Users: instance 0 unanimous on class 2; instance 1 split 3 ways.
	userErr := make(chan error, users)
	for u := 0; u < users; u++ {
		go func(u int) {
			votes := [][]float64{
				oneHot(cfg.Classes, 2),
				oneHot(cfg.Classes, u%cfg.Classes),
			}
			userErr <- SubmitVotes(ctx, pubFile, UserOptions{
				User: u, S1Addr: s1Addr, S2Addr: s2Addr, Seed: int64(300 + u),
			}, votes)
		}(u)
	}
	for u := 0; u < users; u++ {
		if err := <-userErr; err != nil {
			t.Fatalf("user submit: %v", err)
		}
	}

	r1 := <-s1Done
	r2 := <-s2Done
	if r1.err != nil {
		t.Fatalf("S1: %v", r1.err)
	}
	if r2.err != nil {
		t.Fatalf("S2: %v", r2.err)
	}
	for i := 0; i < instances; i++ {
		if r1.outcomes[i] != r2.outcomes[i] {
			t.Errorf("instance %d: servers disagree: %+v vs %+v", i, r1.outcomes[i], r2.outcomes[i])
		}
	}
	if !r1.outcomes[0].Consensus || r1.outcomes[0].Label != 2 {
		t.Errorf("instance 0: %+v, want consensus on 2", r1.outcomes[0])
	}
	if r1.outcomes[1].Consensus {
		t.Errorf("instance 1: %+v, want no consensus (split vote, T=50%% of 3)", r1.outcomes[1])
	}
}

// A connection with a garbage hello must be dropped without breaking the
// server: the deployment still completes with well-behaved parties.
func TestBadHelloIsDropped(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment test is slow in -short mode")
	}
	const users = 2
	s1File, s2File, pubFile, cfg := testSetup(t, users)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	s1Ready := make(chan string, 1)
	s2Ready := make(chan string, 1)
	type serverResult struct {
		outcomes []protocol.Outcome
		err      error
	}
	s1Done := make(chan serverResult, 1)
	go func() {
		out, err := RunS1(ctx, s1File, ServerOptions{
			ListenAddr: "127.0.0.1:0", Instances: 1, Seed: 400, Ready: s1Ready,
		})
		s1Done <- serverResult{out, err}
	}()
	s1Addr := <-s1Ready

	// Hostile/broken client: connects and sends a non-hello frame.
	rogue, err := transport.Dial(ctx, s1Addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := rogue.Send(ctx, &transport.Message{Kind: transport.KindBits}); err != nil {
		t.Fatal(err)
	}
	rogue.Close()

	s2Done := make(chan serverResult, 1)
	go func() {
		out, err := RunS2(ctx, s2File, ServerOptions{
			ListenAddr: "127.0.0.1:0", PeerAddr: s1Addr, Instances: 1, Seed: 401, Ready: s2Ready,
		})
		s2Done <- serverResult{out, err}
	}()
	s2Addr := <-s2Ready

	for u := 0; u < users; u++ {
		if err := SubmitVotes(ctx, pubFile, UserOptions{
			User: u, S1Addr: s1Addr, S2Addr: s2Addr, Seed: int64(500 + u),
		}, [][]float64{oneHot(cfg.Classes, 1)}); err != nil {
			t.Fatalf("user %d: %v", u, err)
		}
	}
	r1 := <-s1Done
	r2 := <-s2Done
	if r1.err != nil || r2.err != nil {
		t.Fatalf("servers failed after rogue connection: %v / %v", r1.err, r2.err)
	}
	if !r1.outcomes[0].Consensus || r1.outcomes[0].Label != 1 {
		t.Errorf("outcome %+v, want consensus on 1", r1.outcomes[0])
	}
}

// A server whose users never show up must time out with a useful error.
func TestServerTimesOutOnMissingUsers(t *testing.T) {
	s1File, _, _, _ := testSetup(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		_, err := RunS1(ctx, s1File, ServerOptions{
			ListenAddr: "127.0.0.1:0", Instances: 1, Ready: ready,
		})
		done <- err
	}()
	addr := <-ready
	// Connect the peer so S1 advances to submission collection.
	peer, err := transport.Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	if err := sendHelloCaps(context.Background(), peer, partyPeer, capBatched); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected timeout error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not time out")
	}
}

func TestEncodeDecodeHalfRoundTrip(t *testing.T) {
	s1File, _, pubFile, cfg := testSetup(t, 2)
	_ = s1File
	units := make([][]float64, 1)
	units[0] = oneHot(cfg.Classes, 1)
	bigUnits, err := votesToUnits(units[0], cfg.Classes)
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := protocol.BuildSubmission(testRNG(210), testRNG(211), cfg, 0, bigUnits, pubFile.PK1, pubFile.PK2)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := EncodeHalf(1, 3, sub.ToS1)
	if err != nil {
		t.Fatal(err)
	}
	user, instance, half, err := DecodeHalf(msg)
	if err != nil {
		t.Fatal(err)
	}
	if user != 1 || instance != 3 {
		t.Errorf("indices %d/%d, want 1/3", user, instance)
	}
	if len(half.Votes) != cfg.Classes || len(half.Thresh) != cfg.Classes || len(half.Noisy) != cfg.Classes {
		t.Error("vector lengths wrong after decode")
	}
	for i := range half.Votes {
		if half.Votes[i].C.Cmp(sub.ToS1.Votes[i].C) != 0 {
			t.Errorf("vote ciphertext %d corrupted", i)
		}
	}
}

func TestDecodeHalfRejectsMalformed(t *testing.T) {
	if _, _, _, err := DecodeHalf(&transport.Message{Kind: transport.KindControl}); err == nil {
		t.Error("expected kind error")
	}
	if _, _, _, err := DecodeHalf(&transport.Message{
		Kind: transport.KindShares, Flags: []int64{0, 0, 5},
	}); err == nil {
		t.Error("expected value-count error")
	}
}

func TestEncodeHalfValidation(t *testing.T) {
	if _, err := EncodeHalf(0, 0, protocol.SubmissionHalf{}); err == nil {
		t.Error("expected error for empty half")
	}
}

func TestCollector(t *testing.T) {
	_, _, pubFile, cfg := testSetup(t, 2)
	col := newCollector(2, 1, cfg.Classes, nil)

	bigUnits, err := votesToUnits(oneHot(cfg.Classes, 0), cfg.Classes)
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := protocol.BuildSubmission(testRNG(220), testRNG(221), cfg, 0, bigUnits, pubFile.PK1, pubFile.PK2)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.add(0, 0, sub.ToS1); err != nil {
		t.Fatal(err)
	}
	if err := col.add(0, 0, sub.ToS1); err == nil {
		t.Error("expected duplicate error")
	}
	if err := col.add(5, 0, sub.ToS1); err == nil {
		t.Error("expected user range error")
	}
	if err := col.add(0, 9, sub.ToS1); err == nil {
		t.Error("expected instance range error")
	}
	// Timeout while one submission is missing.
	shortCtx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := col.wait(shortCtx); err == nil {
		t.Error("expected timeout with missing submissions")
	}
	// Complete it.
	if err := col.add(1, 0, sub.ToS1); err != nil {
		t.Fatal(err)
	}
	if err := col.wait(context.Background()); err != nil {
		t.Errorf("wait after completion: %v", err)
	}
	got, err := col.instanceGroups(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("instanceGroups returned %d groups", len(got))
	}
}

func TestVotesToUnits(t *testing.T) {
	if _, err := votesToUnits([]float64{1, 0}, 3); err == nil {
		t.Error("expected length error")
	}
	if _, err := votesToUnits([]float64{2, 0, 0}, 3); err == nil {
		t.Error("expected range error")
	}
	units, err := votesToUnits([]float64{0.5, 0.5, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if units[0].Int64() != protocol.VoteScale/2 {
		t.Errorf("unit conversion wrong: %v", units[0])
	}
}

func TestServerOptionValidation(t *testing.T) {
	s1File, s2File, _, _ := testSetup(t, 2)
	ctx := context.Background()
	if _, err := RunS1(ctx, s1File, ServerOptions{ListenAddr: "127.0.0.1:0"}); err == nil {
		t.Error("expected instances error")
	}
	if _, err := RunS2(ctx, s2File, ServerOptions{ListenAddr: "127.0.0.1:0", Instances: 1}); err == nil {
		t.Error("expected peer-address error")
	}
}

func TestSubmitVotesValidation(t *testing.T) {
	_, _, pubFile, cfg := testSetup(t, 2)
	ctx := context.Background()
	if err := SubmitVotes(ctx, pubFile, UserOptions{User: 9}, [][]float64{oneHot(cfg.Classes, 0)}); err == nil {
		t.Error("expected user range error")
	}
	if err := SubmitVotes(ctx, pubFile, UserOptions{User: 0}, nil); err == nil {
		t.Error("expected empty-instances error")
	}
}

func TestDefaultLoggerAndNewRNG(t *testing.T) {
	logf := DefaultLogger("[test] ")
	logf("hello %d", 42) // must not panic
	if newRNG(0) == nil || newRNG(5) == nil {
		t.Error("newRNG returned nil")
	}
}
