package deploy

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"strings"
	"time"

	"github.com/privconsensus/privconsensus/internal/ingest"
	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// relayBatchesTotal counts combined frames this server received from
// relays, by outcome: accepted, replay (tolerated duplicate) or rejected.
func relayBatchesTotal(outcome string) *obs.Counter {
	return obs.Default.Counter("privconsensus_relay_batches_total",
		"Combined relay frames received by a server.",
		obs.L("outcome", outcome))
}

// serveRelayConn drains combined frames from one relay connection into the
// collector, acking each so the relay can retransmit over a reconnect. A
// batch rejected by validation is acked with the rejected status — the
// relay logs and counts it but does not retry (resending cannot help); an
// undecodable frame has no (relay, seq) identity to ack and is dropped.
func serveRelayConn(ctx context.Context, conn transport.Conn, s *serverSetup, opts ServerOptions) {
	for {
		msg, err := conn.Recv(ctx)
		if err != nil {
			return // relay closed or reconnecting; normal end of stream
		}
		var c ingest.Combined
		if msg.Kind == transport.KindPacked {
			c, err = ingest.DecodePackedCombined(msg)
		} else {
			c, err = ingest.DecodeCombined(msg)
		}
		if err != nil {
			submissionsRejected("bad-frame").Inc()
			s.journalEvent(opts, obs.Event{Type: obs.EventRejection, Instance: -1, Note: "bad-frame"})
			opts.log(levelWarn, "dropping undecodable relay frame: %v", err)
			continue
		}
		status := ingest.BatchAccepted
		if reason, lerr := packedBatchCheck(s.col, c); reason != "" {
			_ = s.col.reject(reason, lerr)
			relayBatchesTotal("rejected").Inc()
			status = ingest.BatchRejected
		} else {
			err = s.col.addBatch(c.Relay, c.Seq, c.Instance, c.Bitmap, c.Half, ingest.FrameDigest(msg))
			switch {
			case err == nil:
				relayBatchesTotal("accepted").Inc()
				s.journalEvent(opts, obs.Event{Type: obs.EventRelayBatch, Instance: c.Instance,
					Note: fmt.Sprintf("relay=%d seq=%d users=%d", c.Relay, c.Seq, c.Users())})
			case errors.Is(err, errDuplicateSubmission):
				relayBatchesTotal("replay").Inc() // idempotent retransmission; re-ack
			case errors.Is(err, errRejectedSubmission):
				relayBatchesTotal("rejected").Inc()
				status = ingest.BatchRejected
			default:
				opts.log(levelWarn, "relay connection error: %v", err)
				return
			}
		}
		ack := &transport.Message{Kind: transport.KindControl,
			Flags: []int64{ingest.CtrlBatchAck, c.Relay, c.Seq, status}}
		if err := conn.Send(ctx, ack); err != nil {
			return
		}
	}
}

// packedBatchCheck validates a combined frame's declared packing mode and
// slot layout against the collector's expectations, returning a rejection
// reason ("" when the frame is acceptable). Overflow capacity is judged
// against the frame's own declared width before the layout comparison,
// mirroring the relay tier's validation order.
func packedBatchCheck(col *collector, c ingest.Combined) (string, error) {
	p := col.packed
	if (p != nil) != (c.Width > 0) {
		return "bad-frame", fmt.Errorf("combined frame packing mode mismatch (frame packed=%v, server packed=%v)", c.Width > 0, p != nil)
	}
	if p == nil {
		return "", nil
	}
	if c.Users() > p.Capacity(c.Width) {
		return "slot-overflow", fmt.Errorf("batch relay=%d seq=%d sums %d users but width %d absorbs at most %d",
			c.Relay, c.Seq, c.Users(), c.Width, p.Capacity(c.Width))
	}
	if c.Classes != col.packedClasses || c.Width != p.Width {
		return "bad-width", fmt.Errorf("batch relay=%d seq=%d declared packed layout %dx%d, want %dx%d",
			c.Relay, c.Seq, c.Classes, c.Width, col.packedClasses, p.Width)
	}
	return "", nil
}

// IngestInstance is one instance's final ingestion state.
type IngestInstance struct {
	Instance int
	// Participants is the number of users covered (directly or via relay
	// batches).
	Participants int
	// Bitmap has bit u set iff user u's submission was ingested.
	Bitmap *big.Int
}

// IngestReport summarizes one RunIngest run.
type IngestReport struct {
	Instances []IngestInstance
	// Wait is the time from listening to the collector's release — with a
	// quorum armed, the quorum wait the protocol run would have seen.
	Wait time.Duration
}

// RunIngest runs one server's ingestion path only: it accepts user and
// relay submissions exactly like RunS1/RunS2 (same validation, same
// metrics, same quorum/deadline release, same journal events) but stops
// after the collector releases, without running the protocol. The load
// harness uses it as a measurement sink — the reported wait is the quorum
// wait a real query would have paid for ingestion. role labels metrics and
// the journal ("s1" or "s2"); ring is the N² modulus submissions must live
// in (the peer server's Paillier key, as on the real servers).
func RunIngest(ctx context.Context, role string, cfg protocol.Config, ring *big.Int, opts ServerOptions) (*IngestReport, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	s, err := setupServer(ctx, strings.ToUpper(role), cfg, opts, ring)
	if err != nil {
		return nil, err
	}
	defer s.admin.close(ctx)
	defer s.journal.Close()
	defer s.l.Close()
	acceptErr := make(chan error, 1)
	acceptCtx, stopAccept := context.WithCancel(ctx)
	defer stopAccept()
	go acceptLoop(acceptCtx, s, nil, nil, acceptErr, opts)
	start := time.Now()
	if err := collectSubmissions(ctx, s, opts, strings.ToLower(role)); err != nil {
		select {
		case aerr := <-acceptErr:
			return nil, aerr
		default:
		}
		return nil, err
	}
	rep := &IngestReport{Wait: time.Since(start)}
	for i := 0; i < opts.Instances; i++ {
		bm := s.col.bitmap(i)
		rep.Instances = append(rep.Instances, IngestInstance{Instance: i, Participants: popcount(bm), Bitmap: bm})
	}
	return rep, nil
}
