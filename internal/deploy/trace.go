package deploy

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// Cross-process query tracing for the two-server deployment.
//
// With ServerOptions.JournalPath set the server journals every query to an
// append-only hash-chained event log (internal/obs/journal.go) and the
// deployment shares one trace identity: S1 mints a per-run trace ID and
// propagates it over a capability-negotiated ctrl frame,
//
//	trace := Message{Kind: KindControl, Flags: [106, traceID]}
//
// sent once per connection right after the hello — S1→S2 on every peer
// connection (reconnects included, so a link reset cannot orphan S2), and
// server→user on any user connection whose hello advertised capTrace. All
// three processes stamp their journal events with the same ID and append a
// trace-begin anchor when they learn it; cmd/trace aligns their clocks on
// those anchors when merging the journals into one timeline.
//
// With JournalPath unset the capability bit is never advertised, the frame
// is never sent, and the wire format stays byte-for-byte the untraced
// protocol (parity-tested like the resilience/partial/batched bits).

// capTrace is the hello capability bit advertising trace-context
// propagation. Both servers must agree, like capPartial: the trace frame
// changes the peer wire format.
const capTrace int64 = 8

// ctrlTraceContext carries the minted trace ID: [code, traceID].
const ctrlTraceContext int64 = 106

// traced reports whether journaling (and with it trace propagation) is on.
func (o ServerOptions) traced() bool { return o.JournalPath != "" }

// mintTraceID draws a non-zero 63-bit trace ID: deterministic from a
// distinct stream when seeded, crypto/rand otherwise.
func mintTraceID(seed int64) (int64, error) {
	if seed != 0 {
		seed += 8191 // stay off the protocol's deterministic stream
	}
	rng := newRNG(seed)
	var b [8]byte
	for {
		if _, err := io.ReadFull(rng, b[:]); err != nil {
			return 0, fmt.Errorf("deploy: mint trace id: %w", err)
		}
		id := int64(binary.BigEndian.Uint64(b[:]) &^ (1 << 63))
		if id != 0 {
			return id, nil
		}
	}
}

// traceIDString renders a trace ID for journals and logs.
func traceIDString(id int64) string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("t-%016x", uint64(id))
}

// traceState publishes the run's trace ID once it is known. S1 knows it at
// setup; S2 learns it from the first peer connection, and user connections
// accepted before then block (bounded by their ctx) in get.
type traceState struct {
	mu    sync.Mutex
	id    int64
	set   bool
	ready chan struct{}
}

func newTraceState() *traceState {
	return &traceState{ready: make(chan struct{})}
}

// put publishes the ID; only the first call wins. It reports whether this
// call was the one that set it.
func (t *traceState) put(id int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.set {
		return false
	}
	t.id = id
	t.set = true
	close(t.ready)
	return true
}

// get blocks until the ID is published or ctx ends.
func (t *traceState) get(ctx context.Context) (int64, error) {
	select {
	case <-t.ready:
		t.mu.Lock()
		defer t.mu.Unlock()
		return t.id, nil
	case <-ctx.Done():
		return 0, fmt.Errorf("deploy: waiting for trace context: %w", ctx.Err())
	}
}

// idString returns the published ID rendered for journals ("" if unset or
// untraced).
func (t *traceState) idString() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.set {
		return ""
	}
	return traceIDString(t.id)
}

// sendTraceContext delivers the trace ID on a fresh connection.
func sendTraceContext(ctx context.Context, conn transport.Conn, id int64) error {
	return conn.Send(ctx, &transport.Message{
		Kind:  transport.KindControl,
		Flags: []int64{ctrlTraceContext, id},
	})
}

// recvTraceContext reads the trace frame that follows a capTrace hello.
func recvTraceContext(ctx context.Context, conn transport.Conn) (int64, error) {
	msg, err := transport.ExpectKind(ctx, conn, transport.KindControl)
	if err != nil {
		return 0, fmt.Errorf("deploy: trace context: %w", err)
	}
	if len(msg.Flags) != 2 || msg.Flags[0] != ctrlTraceContext || msg.Flags[1] < 0 {
		return 0, transport.MarkFatal(fmt.Errorf("deploy: malformed trace context frame %v", msg.Flags))
	}
	return msg.Flags[1], nil
}

// adoptTraceID records a trace identity learned from the wire: the first
// call publishes it and journals the anchor event. Safe on every
// reconnection — later calls are no-ops.
func (s *serverSetup) adoptTraceID(id int64, opts ServerOptions) {
	if !s.trace.put(id) {
		return
	}
	if id == 0 {
		return
	}
	opts.log(levelDebug, "trace context %s adopted", traceIDString(id))
	if err := s.journal.BeginTrace(traceIDString(id)); err != nil {
		opts.log(levelWarn, "journal trace anchor failed: %v", err)
	}
}

// journalEvent appends a lifecycle event to the server's journal (no-op
// when journaling is off). Append failures are logged, never fatal:
// observability must not kill a query.
func (s *serverSetup) journalEvent(opts ServerOptions, ev obs.Event) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(ev); err != nil {
		opts.log(levelWarn, "journal append failed: %v", err)
	}
}
