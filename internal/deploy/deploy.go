// Package deploy implements the multi-process deployment of the private
// consensus protocol: standalone S1 and S2 servers that accept user
// submissions and each other's protocol traffic over TCP, and the user
// client that builds and delivers encrypted submissions.
//
// Wire protocol. Every connection opens with a hello frame identifying the
// party. Users then send one frame per query instance carrying their
// submission half; the peer server connection carries the Alg. 5 protocol
// messages unchanged.
//
//	hello  := Message{Kind: KindControl, Flags: [party]}
//	submit := Message{Kind: KindShares,
//	                  Flags: [user, instance, classes],
//	                  Values: votes || thresh || noisy}   (3K ciphertexts)
//
// With ServerOptions.MaxRetries > 0 the hello may carry a second
// capability flag, the peer link is wrapped in a begin/end session
// protocol, and users end uploads with a done/ack exchange so replays
// after a reconnect stay idempotent — see session.go and
// docs/PROTOCOL.md § Failure semantics. With MaxRetries == 0 the wire
// format above is exact, byte for byte.
package deploy

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	mrand "math/rand"
	"sync"
	"time"

	"github.com/privconsensus/privconsensus/internal/ingest"
	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// Party identifiers in hello frames. A relay (the ingestion tier) connects
// with partyRelay and the ingest.CapPresum capability; its combined frames
// carry pre-summed batches the collector expands back into attested users.
const (
	partyUser  int64 = ingest.PartyUser
	partyPeer  int64 = ingest.PartyPeer
	partyRelay int64 = ingest.PartyRelay
)

// EncodeHalf packs one user's submission half for one instance into a wire
// message. The canonical codec lives in the ingest package (relays speak the
// same frame); this wrapper keeps the deploy API stable.
func EncodeHalf(user, instance int, h protocol.SubmissionHalf) (*transport.Message, error) {
	return ingest.EncodeHalf(user, instance, h)
}

// DecodeHalf unpacks a wire submission frame.
func DecodeHalf(msg *transport.Message) (user, instance int, half protocol.SubmissionHalf, err error) {
	return ingest.DecodeHalf(msg)
}

// sendHello identifies this connection's party to the acceptor.
func sendHello(ctx context.Context, conn transport.Conn, party int64) error {
	return sendHelloCaps(ctx, conn, party, 0)
}

// sendHelloCaps identifies the party and, when caps is non-zero, advertises
// capability flags (currently only capResilient). A zero caps produces the
// original one-flag hello, byte for byte.
func sendHelloCaps(ctx context.Context, conn transport.Conn, party, caps int64) error {
	flags := []int64{party}
	if caps != 0 {
		flags = append(flags, caps)
	}
	return conn.Send(ctx, &transport.Message{Kind: transport.KindControl, Flags: flags})
}

// recvHello reads and validates a hello frame, returning the party and any
// advertised capability flags (0 for legacy one-flag hellos).
func recvHello(ctx context.Context, conn transport.Conn) (party, caps int64, err error) {
	msg, err := transport.ExpectKind(ctx, conn, transport.KindControl)
	if err != nil {
		return 0, 0, fmt.Errorf("deploy: hello: %w", err)
	}
	if len(msg.Flags) < 1 || len(msg.Flags) > 2 ||
		(msg.Flags[0] != partyUser && msg.Flags[0] != partyPeer && msg.Flags[0] != partyRelay) {
		return 0, 0, fmt.Errorf("deploy: invalid hello frame")
	}
	if len(msg.Flags) == 2 {
		caps = msg.Flags[1]
	}
	return msg.Flags[0], caps, nil
}

// collector gathers user submissions until every (user, instance) cell is
// filled, or — with a submit deadline armed — until the deadline releases
// whatever arrived. Every submission is validated on ingestion; rejected
// submissions are counted by reason and never enter the grid.
type collector struct {
	mu        sync.Mutex
	users     int
	instances int
	// perVec is the expected ciphertext count per vector: Classes on an
	// unpacked grid, PackedCiphertexts() on a packed one.
	perVec int
	// packed, when non-nil, marks the grid as slot-packed: frames must
	// declare exactly this layout (checked by the serving loops before
	// add/addBatch) and carry perVec packed ciphertexts per vector.
	packed *ingest.PackedParams
	// packedClasses is the logical class count K packed frames must
	// declare (0 on an unpacked grid).
	packedClasses int
	ring          *big.Int                     // Paillier N² the halves must live in (nil disables the check)
	halves        [][]*protocol.SubmissionHalf // [instance][user]
	// covered has bit u set iff user u's submission for the instance is
	// held locally — directly in halves, or pre-summed inside a relay
	// batch. It is the authoritative participant bitmap.
	covered []*big.Int // [instance]
	// batches holds accepted relay pre-sums per instance; their members
	// have covered bits set but no per-user half.
	batches [][]relayBatch // [instance]
	// batchSeen keys relay-batch replay dedup by (relay, seq) identity.
	batchSeen map[batchKey][32]byte
	remaining int
	released  bool
	done      chan struct{}
	doneOnce  sync.Once
	events    func(reason string) // optional rejection observer (journal hook)
}

// relayBatch is one accepted combined frame: the homomorphic sum of the
// bitmap members' halves for one instance.
type relayBatch struct {
	bm   *big.Int
	half protocol.SubmissionHalf
}

// batchKey identifies one relay batch for replay dedup.
type batchKey struct {
	relay int64
	seq   int64
}

// newCollector prepares an empty submission grid. ring is the N² modulus of
// the Paillier key the stored halves are encrypted under; every ciphertext
// of every submission must fall in [0, ring) or the submission is rejected.
func newCollector(users, instances, perVec int, ring *big.Int) *collector {
	c := &collector{
		users:     users,
		instances: instances,
		perVec:    perVec,
		ring:      ring,
		halves:    make([][]*protocol.SubmissionHalf, instances),
		covered:   make([]*big.Int, instances),
		batches:   make([][]relayBatch, instances),
		batchSeen: make(map[batchKey][32]byte),
		remaining: users * instances,
		done:      make(chan struct{}),
	}
	for i := range c.halves {
		c.halves[i] = make([]*protocol.SubmissionHalf, users)
		c.covered[i] = new(big.Int)
	}
	return c
}

// reject counts a refused submission by reason and returns the wrapped
// sentinel; serveUserConn tolerates rejections without dropping the
// connection, so one hostile frame cannot suppress a user's later valid
// submissions.
func (c *collector) reject(reason string, err error) error {
	submissionsRejected(reason).Inc()
	if c.events != nil {
		c.events(reason)
	}
	return fmt.Errorf("%w (%s): %v", errRejectedSubmission, reason, err)
}

// add validates and records one submission. Validation order: identity and
// shape first (unknown-user, bad-instance, bad-length), ring membership of
// every ciphertext, then exact-once semantics — a byte-identical replay of
// the recorded submission is a tolerated duplicate (reconnect idempotency),
// a conflicting one is rejected first-write-wins, and anything arriving
// after the collector released is rejected as late.
func (c *collector) add(user, instance int, half protocol.SubmissionHalf) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if user < 0 || user >= c.users {
		return c.reject("unknown-user", fmt.Errorf("user index %d outside [0, %d)", user, c.users))
	}
	if instance < 0 || instance >= c.instances {
		return c.reject("bad-instance", fmt.Errorf("instance index %d outside [0, %d)", instance, c.instances))
	}
	if len(half.Votes) != c.perVec || len(half.Thresh) != c.perVec || len(half.Noisy) != c.perVec {
		return c.reject("bad-length", fmt.Errorf("submission has %d/%d/%d ciphertexts, want %d each",
			len(half.Votes), len(half.Thresh), len(half.Noisy), c.perVec))
	}
	if c.ring != nil {
		for _, group := range [][]*paillier.Ciphertext{half.Votes, half.Thresh, half.Noisy} {
			for _, ct := range group {
				if ct == nil || ct.C == nil || ct.C.Sign() < 0 || ct.C.Cmp(c.ring) >= 0 {
					return c.reject("out-of-ring", fmt.Errorf("user %d instance %d ciphertext outside [0, N²)", user, instance))
				}
			}
		}
	}
	if prev := c.halves[instance][user]; prev != nil {
		if halfEqual(*prev, half) {
			return fmt.Errorf("%w from user %d for instance %d", errDuplicateSubmission, user, instance)
		}
		return c.reject("duplicate", fmt.Errorf("conflicting resubmission from user %d for instance %d (first write wins)", user, instance))
	}
	if c.covered[instance].Bit(user) == 1 {
		// The user is already pre-summed inside a relay batch; its bytes
		// cannot be compared, so a direct frame is a conflicting identity.
		return c.reject("duplicate", fmt.Errorf("user %d already covered by a relay batch for instance %d", user, instance))
	}
	if c.released {
		return c.reject("late", fmt.Errorf("submission from user %d for instance %d arrived after release", user, instance))
	}
	h := half
	c.halves[instance][user] = &h
	c.covered[instance].SetBit(c.covered[instance], user, 1)
	c.remaining--
	if c.remaining == 0 {
		c.doneOnce.Do(func() { close(c.done) })
	}
	return nil
}

// addBatch validates and records one relay batch. Validation mirrors add:
// identity and shape first, ring membership, then exact-once semantics —
// the (relay, seq) identity with a byte-identical frame digest is a
// tolerated replay, a conflicting one is rejected, and a bitmap that
// overlaps any covered user is rejected whole (a relay never legitimately
// re-sums a delivered user).
func (c *collector) addBatch(relay, seq int64, instance int, bm *big.Int, half protocol.SubmissionHalf, digest [32]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if instance < 0 || instance >= c.instances {
		return c.reject("bad-instance", fmt.Errorf("instance index %d outside [0, %d)", instance, c.instances))
	}
	if bm == nil || bm.Sign() <= 0 || bm.BitLen() > c.users {
		return c.reject("bad-bitmap", fmt.Errorf("batch relay=%d seq=%d bitmap names users outside [0, %d)", relay, seq, c.users))
	}
	if len(half.Votes) != c.perVec || len(half.Thresh) != c.perVec || len(half.Noisy) != c.perVec {
		return c.reject("bad-length", fmt.Errorf("batch has %d/%d/%d ciphertexts, want %d each",
			len(half.Votes), len(half.Thresh), len(half.Noisy), c.perVec))
	}
	if c.ring != nil {
		for _, group := range [][]*paillier.Ciphertext{half.Votes, half.Thresh, half.Noisy} {
			for _, ct := range group {
				if ct == nil || ct.C == nil || ct.C.Sign() < 0 || ct.C.Cmp(c.ring) >= 0 {
					return c.reject("out-of-ring", fmt.Errorf("batch relay=%d seq=%d ciphertext outside [0, N²)", relay, seq))
				}
			}
		}
	}
	key := batchKey{relay: relay, seq: seq}
	if prev, ok := c.batchSeen[key]; ok {
		if prev == digest {
			return fmt.Errorf("%w from relay %d seq %d", errDuplicateSubmission, relay, seq)
		}
		return c.reject("duplicate", fmt.Errorf("conflicting reuse of batch identity relay=%d seq=%d (first write wins)", relay, seq))
	}
	if new(big.Int).And(c.covered[instance], bm).Sign() != 0 {
		return c.reject("overlap", fmt.Errorf("batch relay=%d seq=%d repeats already-covered users for instance %d", relay, seq, instance))
	}
	if c.released {
		return c.reject("late", fmt.Errorf("batch relay=%d seq=%d arrived after release", relay, seq))
	}
	c.batchSeen[key] = digest
	c.covered[instance].Or(c.covered[instance], bm)
	c.batches[instance] = append(c.batches[instance], relayBatch{bm: new(big.Int).Set(bm), half: half})
	c.remaining -= popcount(bm)
	if c.remaining <= 0 {
		c.doneOnce.Do(func() { close(c.done) })
	}
	return nil
}

// halfEqual reports whether two equal-shape submission halves carry the
// same ciphertext bytes.
func halfEqual(a, b protocol.SubmissionHalf) bool {
	pairs := [][2][]*paillier.Ciphertext{{a.Votes, b.Votes}, {a.Thresh, b.Thresh}, {a.Noisy, b.Noisy}}
	for _, p := range pairs {
		for i := range p[0] {
			if p[0][i].C.Cmp(p[1][i].C) != 0 {
				return false
			}
		}
	}
	return true
}

// wait blocks until all submissions arrived or ctx is done.
func (c *collector) wait(ctx context.Context) error {
	select {
	case <-c.done:
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		missing := c.remaining
		c.mu.Unlock()
		return fmt.Errorf("deploy: timed out with %d submissions missing: %w", missing, ctx.Err())
	}
}

// waitQuorum blocks until full participation or the submit window elapses,
// whichever comes first, then freezes the grid: later submissions are
// rejected as late, so both servers' participant sets stay stable across
// instance retries. The wait duration feeds the quorum-wait histogram.
func (c *collector) waitQuorum(ctx context.Context, window time.Duration, role string) error {
	start := time.Now()
	timer := time.NewTimer(window)
	defer timer.Stop()
	select {
	case <-c.done:
	case <-timer.C:
	case <-ctx.Done():
		c.mu.Lock()
		missing := c.remaining
		c.mu.Unlock()
		return fmt.Errorf("deploy: timed out with %d submissions missing: %w", missing, ctx.Err())
	}
	c.mu.Lock()
	c.released = true
	c.mu.Unlock()
	obs.QuorumWaitSeconds(role).Observe(time.Since(start).Seconds())
	return nil
}

// release freezes the grid immediately: serve mode's per-query watcher
// decides the release moment (grid full or submit window elapsed), after
// which late frames are rejected and the participant bitmap is stable
// across protocol retries.
func (c *collector) release() {
	c.mu.Lock()
	c.released = true
	c.mu.Unlock()
}

// counts reports filled and total grid cells.
func (c *collector) counts() (got, want int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.users*c.instances - c.remaining, c.users * c.instances
}

// bitmap returns the participant bitmap for one instance: bit u set iff
// user u's validated submission is held locally — directly or inside a
// relay batch.
func (c *collector) bitmap(i int) *big.Int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return new(big.Int).Set(c.covered[i])
}

// instanceGroups returns one instance's submissions as aggregation groups
// (relay batches whole, direct users as singletons); only valid after a
// successful wait() (every user covered).
func (c *collector) instanceGroups(i int) ([]protocol.Group, error) {
	full := new(big.Int)
	for u := 0; u < c.users; u++ {
		full.SetBit(full, u, 1)
	}
	return c.maskedGroups(i, full)
}

// maskedGroups returns the aggregation groups for one instance restricted
// to the agreed participant set. A relay batch is atomic — its members were
// homomorphically summed at the relay and cannot be separated — so an
// agreed set that covers only part of a batch is a fatal peer mismatch
// (the servers would sum different subsets), as is an agreed participant
// with no local submission.
func (c *collector) maskedGroups(i int, agreed *big.Int) ([]protocol.Group, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	groups := make([]protocol.Group, 0, len(c.batches[i])+c.users)
	rest := new(big.Int).Set(agreed)
	for _, b := range c.batches[i] {
		inter := new(big.Int).And(b.bm, agreed)
		if inter.Sign() == 0 {
			continue
		}
		if inter.Cmp(b.bm) != 0 {
			return nil, transport.MarkFatal(fmt.Errorf("deploy: agreed participant set for instance %d splits a relay batch (a pre-sum cannot be separated): %w",
				i, protocol.ErrPeerMismatch))
		}
		groups = append(groups, protocol.Group{Members: bitmapIndices(b.bm, c.users), Half: b.half})
		rest.AndNot(rest, b.bm)
	}
	for u := 0; u < c.users; u++ {
		if rest.Bit(u) == 0 {
			continue
		}
		h := c.halves[i][u]
		if h == nil {
			return nil, transport.MarkFatal(fmt.Errorf("deploy: agreed participant %d has no local submission for instance %d: %w",
				u, i, protocol.ErrPeerMismatch))
		}
		groups = append(groups, protocol.Group{Members: []int{u}, Half: *h})
	}
	return groups, nil
}

// errDuplicateSubmission marks a byte-identical submission for an
// already-filled cell. The collector reports it so tests can assert
// exact-once semantics; serveUserConn tolerates it, which is what makes
// upload replays after a reconnect idempotent.
var errDuplicateSubmission = errors.New("deploy: duplicate submission")

// errRejectedSubmission marks a submission refused by server-side
// validation (counted in privconsensus_submissions_rejected_total).
var errRejectedSubmission = errors.New("deploy: submission rejected")

// serveUserConn drains submission frames from one user connection into the
// collector until the user closes or sends all frames. A resilient user
// ends its upload with a done frame and waits for the ack; replayed
// submissions (after a reconnect) are deduplicated against the collector.
func serveUserConn(ctx context.Context, conn transport.Conn, col *collector) error {
	for {
		msg, err := conn.Recv(ctx)
		if err != nil {
			// Users close after their last frame; a closed connection
			// is the normal end of stream.
			return nil //nolint:nilerr // EOF-equivalent by protocol design
		}
		if msg.Kind == transport.KindControl && len(msg.Flags) >= 1 && msg.Flags[0] == ctrlUploadDone {
			user := int64(-1)
			if len(msg.Flags) >= 2 {
				user = msg.Flags[1]
			}
			ack := &transport.Message{Kind: transport.KindControl, Flags: []int64{ctrlUploadAck, user}}
			if err := conn.Send(ctx, ack); err != nil {
				return nil //nolint:nilerr // user gone; it will retry
			}
			continue
		}
		var (
			user, instance int
			half           protocol.SubmissionHalf
		)
		if p := col.packed; p != nil {
			var classes, width int
			user, instance, classes, width, half, err = ingest.DecodePackedHalf(msg)
			if err != nil {
				return err
			}
			// Layout mismatches are counted rejections, not connection
			// errors: one hostile frame must not suppress later valid ones.
			if p.Capacity(width) < 1 {
				_ = col.reject("slot-overflow", fmt.Errorf("user %d declared slot width %d below the %d headroom bits", user, width, p.Headroom))
				continue
			}
			if classes != col.packedClasses || width != p.Width {
				_ = col.reject("bad-width", fmt.Errorf("user %d declared packed layout %dx%d, want %dx%d",
					user, classes, width, col.packedClasses, p.Width))
				continue
			}
		} else {
			user, instance, half, err = DecodeHalf(msg)
			if err != nil {
				return err
			}
		}
		if err := col.add(user, instance, half); err != nil {
			if errors.Is(err, errDuplicateSubmission) {
				continue // idempotent replay after a reconnect
			}
			if errors.Is(err, errRejectedSubmission) {
				continue // counted and excluded; keep serving valid frames
			}
			return err
		}
	}
}

// newRNG derives a per-run randomness source: deterministic if seed != 0.
func newRNG(seed int64) io.Reader {
	if seed != 0 {
		return mrand.New(mrand.NewSource(seed))
	}
	return rand.Reader
}
