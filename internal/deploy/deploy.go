// Package deploy implements the multi-process deployment of the private
// consensus protocol: standalone S1 and S2 servers that accept user
// submissions and each other's protocol traffic over TCP, and the user
// client that builds and delivers encrypted submissions.
//
// Wire protocol. Every connection opens with a hello frame identifying the
// party. Users then send one frame per query instance carrying their
// submission half; the peer server connection carries the Alg. 5 protocol
// messages unchanged.
//
//	hello  := Message{Kind: KindControl, Flags: [party]}
//	submit := Message{Kind: KindShares,
//	                  Flags: [user, instance, classes],
//	                  Values: votes || thresh || noisy}   (3K ciphertexts)
//
// With ServerOptions.MaxRetries > 0 the hello may carry a second
// capability flag, the peer link is wrapped in a begin/end session
// protocol, and users end uploads with a done/ack exchange so replays
// after a reconnect stay idempotent — see session.go and
// docs/PROTOCOL.md § Failure semantics. With MaxRetries == 0 the wire
// format above is exact, byte for byte.
package deploy

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	mrand "math/rand"
	"sync"

	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// Party identifiers in hello frames.
const (
	partyUser int64 = 1
	partyPeer int64 = 2
)

// EncodeHalf packs one user's submission half for one instance into a wire
// message.
func EncodeHalf(user, instance int, h protocol.SubmissionHalf) (*transport.Message, error) {
	k := len(h.Votes)
	if k == 0 || len(h.Thresh) != k || len(h.Noisy) != k {
		return nil, fmt.Errorf("deploy: malformed submission half (%d/%d/%d ciphertexts)",
			len(h.Votes), len(h.Thresh), len(h.Noisy))
	}
	values := make([]*big.Int, 0, 3*k)
	for _, group := range [][]*paillier.Ciphertext{h.Votes, h.Thresh, h.Noisy} {
		for _, c := range group {
			if c == nil || c.C == nil {
				return nil, fmt.Errorf("deploy: nil ciphertext in submission")
			}
			values = append(values, c.C)
		}
	}
	return &transport.Message{
		Kind:   transport.KindShares,
		Flags:  []int64{int64(user), int64(instance), int64(k)},
		Values: values,
	}, nil
}

// DecodeHalf unpacks a wire submission frame.
func DecodeHalf(msg *transport.Message) (user, instance int, half protocol.SubmissionHalf, err error) {
	if msg.Kind != transport.KindShares || len(msg.Flags) != 3 {
		return 0, 0, half, fmt.Errorf("deploy: malformed submission frame")
	}
	k := int(msg.Flags[2])
	if k <= 0 || len(msg.Values) != 3*k {
		return 0, 0, half, fmt.Errorf("deploy: submission frame has %d values for %d classes", len(msg.Values), k)
	}
	toCipher := func(vs []*big.Int) []*paillier.Ciphertext {
		out := make([]*paillier.Ciphertext, len(vs))
		for i, v := range vs {
			out[i] = &paillier.Ciphertext{C: v}
		}
		return out
	}
	half.Votes = toCipher(msg.Values[:k])
	half.Thresh = toCipher(msg.Values[k : 2*k])
	half.Noisy = toCipher(msg.Values[2*k:])
	return int(msg.Flags[0]), int(msg.Flags[1]), half, nil
}

// sendHello identifies this connection's party to the acceptor.
func sendHello(ctx context.Context, conn transport.Conn, party int64) error {
	return sendHelloCaps(ctx, conn, party, 0)
}

// sendHelloCaps identifies the party and, when caps is non-zero, advertises
// capability flags (currently only capResilient). A zero caps produces the
// original one-flag hello, byte for byte.
func sendHelloCaps(ctx context.Context, conn transport.Conn, party, caps int64) error {
	flags := []int64{party}
	if caps != 0 {
		flags = append(flags, caps)
	}
	return conn.Send(ctx, &transport.Message{Kind: transport.KindControl, Flags: flags})
}

// recvHello reads and validates a hello frame, returning the party and any
// advertised capability flags (0 for legacy one-flag hellos).
func recvHello(ctx context.Context, conn transport.Conn) (party, caps int64, err error) {
	msg, err := transport.ExpectKind(ctx, conn, transport.KindControl)
	if err != nil {
		return 0, 0, fmt.Errorf("deploy: hello: %w", err)
	}
	if len(msg.Flags) < 1 || len(msg.Flags) > 2 ||
		(msg.Flags[0] != partyUser && msg.Flags[0] != partyPeer) {
		return 0, 0, fmt.Errorf("deploy: invalid hello frame")
	}
	if len(msg.Flags) == 2 {
		caps = msg.Flags[1]
	}
	return msg.Flags[0], caps, nil
}

// collector gathers user submissions until every (user, instance) cell is
// filled.
type collector struct {
	mu        sync.Mutex
	users     int
	instances int
	classes   int
	halves    [][]*protocol.SubmissionHalf // [instance][user]
	remaining int
	done      chan struct{}
	doneOnce  sync.Once
}

// newCollector prepares an empty submission grid.
func newCollector(users, instances, classes int) *collector {
	c := &collector{
		users:     users,
		instances: instances,
		classes:   classes,
		halves:    make([][]*protocol.SubmissionHalf, instances),
		remaining: users * instances,
		done:      make(chan struct{}),
	}
	for i := range c.halves {
		c.halves[i] = make([]*protocol.SubmissionHalf, users)
	}
	return c
}

// add records one submission; duplicate or out-of-range cells error.
func (c *collector) add(user, instance int, half protocol.SubmissionHalf) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if user < 0 || user >= c.users {
		return fmt.Errorf("deploy: user index %d outside [0, %d)", user, c.users)
	}
	if instance < 0 || instance >= c.instances {
		return fmt.Errorf("deploy: instance index %d outside [0, %d)", instance, c.instances)
	}
	if len(half.Votes) != c.classes {
		return fmt.Errorf("deploy: submission has %d classes, want %d", len(half.Votes), c.classes)
	}
	if c.halves[instance][user] != nil {
		return fmt.Errorf("%w from user %d for instance %d", errDuplicateSubmission, user, instance)
	}
	h := half
	c.halves[instance][user] = &h
	c.remaining--
	if c.remaining == 0 {
		c.doneOnce.Do(func() { close(c.done) })
	}
	return nil
}

// wait blocks until all submissions arrived or ctx is done.
func (c *collector) wait(ctx context.Context) error {
	select {
	case <-c.done:
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		missing := c.remaining
		c.mu.Unlock()
		return fmt.Errorf("deploy: timed out with %d submissions missing: %w", missing, ctx.Err())
	}
}

// instance returns the ordered submission halves for one instance.
func (c *collector) instance(i int) []protocol.SubmissionHalf {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]protocol.SubmissionHalf, c.users)
	for u, h := range c.halves[i] {
		out[u] = *h
	}
	return out
}

// errDuplicateSubmission marks a submission for an already-filled cell.
// The collector reports it so tests can assert exact-once semantics;
// serveUserConn tolerates it, which is what makes upload replays after a
// reconnect idempotent.
var errDuplicateSubmission = errors.New("deploy: duplicate submission")

// serveUserConn drains submission frames from one user connection into the
// collector until the user closes or sends all frames. A resilient user
// ends its upload with a done frame and waits for the ack; replayed
// submissions (after a reconnect) are deduplicated against the collector.
func serveUserConn(ctx context.Context, conn transport.Conn, col *collector) error {
	for {
		msg, err := conn.Recv(ctx)
		if err != nil {
			// Users close after their last frame; a closed connection
			// is the normal end of stream.
			return nil //nolint:nilerr // EOF-equivalent by protocol design
		}
		if msg.Kind == transport.KindControl && len(msg.Flags) >= 1 && msg.Flags[0] == ctrlUploadDone {
			user := int64(-1)
			if len(msg.Flags) >= 2 {
				user = msg.Flags[1]
			}
			ack := &transport.Message{Kind: transport.KindControl, Flags: []int64{ctrlUploadAck, user}}
			if err := conn.Send(ctx, ack); err != nil {
				return nil //nolint:nilerr // user gone; it will retry
			}
			continue
		}
		user, instance, half, err := DecodeHalf(msg)
		if err != nil {
			return err
		}
		if err := col.add(user, instance, half); err != nil {
			if errors.Is(err, errDuplicateSubmission) {
				continue // idempotent replay after a reconnect
			}
			return err
		}
	}
}

// newRNG derives a per-run randomness source: deterministic if seed != 0.
func newRNG(seed int64) io.Reader {
	if seed != 0 {
		return mrand.New(mrand.NewSource(seed))
	}
	return rand.Reader
}
