// Package deploy implements the multi-process deployment of the private
// consensus protocol: standalone S1 and S2 servers that accept user
// submissions and each other's protocol traffic over TCP, and the user
// client that builds and delivers encrypted submissions.
//
// Wire protocol. Every connection opens with a hello frame identifying the
// party. Users then send one frame per query instance carrying their
// submission half; the peer server connection carries the Alg. 5 protocol
// messages unchanged.
//
//	hello  := Message{Kind: KindControl, Flags: [party]}
//	submit := Message{Kind: KindShares,
//	                  Flags: [user, instance, classes],
//	                  Values: votes || thresh || noisy}   (3K ciphertexts)
//
// With ServerOptions.MaxRetries > 0 the hello may carry a second
// capability flag, the peer link is wrapped in a begin/end session
// protocol, and users end uploads with a done/ack exchange so replays
// after a reconnect stay idempotent — see session.go and
// docs/PROTOCOL.md § Failure semantics. With MaxRetries == 0 the wire
// format above is exact, byte for byte.
package deploy

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	mrand "math/rand"
	"sync"
	"time"

	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// Party identifiers in hello frames.
const (
	partyUser int64 = 1
	partyPeer int64 = 2
)

// EncodeHalf packs one user's submission half for one instance into a wire
// message.
func EncodeHalf(user, instance int, h protocol.SubmissionHalf) (*transport.Message, error) {
	k := len(h.Votes)
	if k == 0 || len(h.Thresh) != k || len(h.Noisy) != k {
		return nil, fmt.Errorf("deploy: malformed submission half (%d/%d/%d ciphertexts)",
			len(h.Votes), len(h.Thresh), len(h.Noisy))
	}
	values := make([]*big.Int, 0, 3*k)
	for _, group := range [][]*paillier.Ciphertext{h.Votes, h.Thresh, h.Noisy} {
		for _, c := range group {
			if c == nil || c.C == nil {
				return nil, fmt.Errorf("deploy: nil ciphertext in submission")
			}
			values = append(values, c.C)
		}
	}
	return &transport.Message{
		Kind:   transport.KindShares,
		Flags:  []int64{int64(user), int64(instance), int64(k)},
		Values: values,
	}, nil
}

// DecodeHalf unpacks a wire submission frame.
func DecodeHalf(msg *transport.Message) (user, instance int, half protocol.SubmissionHalf, err error) {
	if msg.Kind != transport.KindShares || len(msg.Flags) != 3 {
		return 0, 0, half, fmt.Errorf("deploy: malformed submission frame")
	}
	k := int(msg.Flags[2])
	if k <= 0 || len(msg.Values) != 3*k {
		return 0, 0, half, fmt.Errorf("deploy: submission frame has %d values for %d classes", len(msg.Values), k)
	}
	toCipher := func(vs []*big.Int) []*paillier.Ciphertext {
		out := make([]*paillier.Ciphertext, len(vs))
		for i, v := range vs {
			out[i] = &paillier.Ciphertext{C: v}
		}
		return out
	}
	half.Votes = toCipher(msg.Values[:k])
	half.Thresh = toCipher(msg.Values[k : 2*k])
	half.Noisy = toCipher(msg.Values[2*k:])
	return int(msg.Flags[0]), int(msg.Flags[1]), half, nil
}

// sendHello identifies this connection's party to the acceptor.
func sendHello(ctx context.Context, conn transport.Conn, party int64) error {
	return sendHelloCaps(ctx, conn, party, 0)
}

// sendHelloCaps identifies the party and, when caps is non-zero, advertises
// capability flags (currently only capResilient). A zero caps produces the
// original one-flag hello, byte for byte.
func sendHelloCaps(ctx context.Context, conn transport.Conn, party, caps int64) error {
	flags := []int64{party}
	if caps != 0 {
		flags = append(flags, caps)
	}
	return conn.Send(ctx, &transport.Message{Kind: transport.KindControl, Flags: flags})
}

// recvHello reads and validates a hello frame, returning the party and any
// advertised capability flags (0 for legacy one-flag hellos).
func recvHello(ctx context.Context, conn transport.Conn) (party, caps int64, err error) {
	msg, err := transport.ExpectKind(ctx, conn, transport.KindControl)
	if err != nil {
		return 0, 0, fmt.Errorf("deploy: hello: %w", err)
	}
	if len(msg.Flags) < 1 || len(msg.Flags) > 2 ||
		(msg.Flags[0] != partyUser && msg.Flags[0] != partyPeer) {
		return 0, 0, fmt.Errorf("deploy: invalid hello frame")
	}
	if len(msg.Flags) == 2 {
		caps = msg.Flags[1]
	}
	return msg.Flags[0], caps, nil
}

// collector gathers user submissions until every (user, instance) cell is
// filled, or — with a submit deadline armed — until the deadline releases
// whatever arrived. Every submission is validated on ingestion; rejected
// submissions are counted by reason and never enter the grid.
type collector struct {
	mu        sync.Mutex
	users     int
	instances int
	classes   int
	ring      *big.Int                     // Paillier N² the halves must live in (nil disables the check)
	halves    [][]*protocol.SubmissionHalf // [instance][user]
	remaining int
	released  bool
	done      chan struct{}
	doneOnce  sync.Once
	events    func(reason string) // optional rejection observer (journal hook)
}

// newCollector prepares an empty submission grid. ring is the N² modulus of
// the Paillier key the stored halves are encrypted under; every ciphertext
// of every submission must fall in [0, ring) or the submission is rejected.
func newCollector(users, instances, classes int, ring *big.Int) *collector {
	c := &collector{
		users:     users,
		instances: instances,
		classes:   classes,
		ring:      ring,
		halves:    make([][]*protocol.SubmissionHalf, instances),
		remaining: users * instances,
		done:      make(chan struct{}),
	}
	for i := range c.halves {
		c.halves[i] = make([]*protocol.SubmissionHalf, users)
	}
	return c
}

// reject counts a refused submission by reason and returns the wrapped
// sentinel; serveUserConn tolerates rejections without dropping the
// connection, so one hostile frame cannot suppress a user's later valid
// submissions.
func (c *collector) reject(reason string, err error) error {
	submissionsRejected(reason).Inc()
	if c.events != nil {
		c.events(reason)
	}
	return fmt.Errorf("%w (%s): %v", errRejectedSubmission, reason, err)
}

// add validates and records one submission. Validation order: identity and
// shape first (unknown-user, bad-instance, bad-length), ring membership of
// every ciphertext, then exact-once semantics — a byte-identical replay of
// the recorded submission is a tolerated duplicate (reconnect idempotency),
// a conflicting one is rejected first-write-wins, and anything arriving
// after the collector released is rejected as late.
func (c *collector) add(user, instance int, half protocol.SubmissionHalf) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if user < 0 || user >= c.users {
		return c.reject("unknown-user", fmt.Errorf("user index %d outside [0, %d)", user, c.users))
	}
	if instance < 0 || instance >= c.instances {
		return c.reject("bad-instance", fmt.Errorf("instance index %d outside [0, %d)", instance, c.instances))
	}
	if len(half.Votes) != c.classes || len(half.Thresh) != c.classes || len(half.Noisy) != c.classes {
		return c.reject("bad-length", fmt.Errorf("submission has %d/%d/%d ciphertexts, want %d each",
			len(half.Votes), len(half.Thresh), len(half.Noisy), c.classes))
	}
	if c.ring != nil {
		for _, group := range [][]*paillier.Ciphertext{half.Votes, half.Thresh, half.Noisy} {
			for _, ct := range group {
				if ct == nil || ct.C == nil || ct.C.Sign() < 0 || ct.C.Cmp(c.ring) >= 0 {
					return c.reject("out-of-ring", fmt.Errorf("user %d instance %d ciphertext outside [0, N²)", user, instance))
				}
			}
		}
	}
	if prev := c.halves[instance][user]; prev != nil {
		if halfEqual(*prev, half) {
			return fmt.Errorf("%w from user %d for instance %d", errDuplicateSubmission, user, instance)
		}
		return c.reject("duplicate", fmt.Errorf("conflicting resubmission from user %d for instance %d (first write wins)", user, instance))
	}
	if c.released {
		return c.reject("late", fmt.Errorf("submission from user %d for instance %d arrived after release", user, instance))
	}
	h := half
	c.halves[instance][user] = &h
	c.remaining--
	if c.remaining == 0 {
		c.doneOnce.Do(func() { close(c.done) })
	}
	return nil
}

// halfEqual reports whether two equal-shape submission halves carry the
// same ciphertext bytes.
func halfEqual(a, b protocol.SubmissionHalf) bool {
	pairs := [][2][]*paillier.Ciphertext{{a.Votes, b.Votes}, {a.Thresh, b.Thresh}, {a.Noisy, b.Noisy}}
	for _, p := range pairs {
		for i := range p[0] {
			if p[0][i].C.Cmp(p[1][i].C) != 0 {
				return false
			}
		}
	}
	return true
}

// wait blocks until all submissions arrived or ctx is done.
func (c *collector) wait(ctx context.Context) error {
	select {
	case <-c.done:
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		missing := c.remaining
		c.mu.Unlock()
		return fmt.Errorf("deploy: timed out with %d submissions missing: %w", missing, ctx.Err())
	}
}

// waitQuorum blocks until full participation or the submit window elapses,
// whichever comes first, then freezes the grid: later submissions are
// rejected as late, so both servers' participant sets stay stable across
// instance retries. The wait duration feeds the quorum-wait histogram.
func (c *collector) waitQuorum(ctx context.Context, window time.Duration, role string) error {
	start := time.Now()
	timer := time.NewTimer(window)
	defer timer.Stop()
	select {
	case <-c.done:
	case <-timer.C:
	case <-ctx.Done():
		c.mu.Lock()
		missing := c.remaining
		c.mu.Unlock()
		return fmt.Errorf("deploy: timed out with %d submissions missing: %w", missing, ctx.Err())
	}
	c.mu.Lock()
	c.released = true
	c.mu.Unlock()
	obs.QuorumWaitSeconds(role).Observe(time.Since(start).Seconds())
	return nil
}

// counts reports filled and total grid cells.
func (c *collector) counts() (got, want int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.users*c.instances - c.remaining, c.users * c.instances
}

// bitmap returns the participant bitmap for one instance: bit u set iff
// user u's validated submission is held locally.
func (c *collector) bitmap(i int) *big.Int {
	c.mu.Lock()
	defer c.mu.Unlock()
	bm := new(big.Int)
	for u, h := range c.halves[i] {
		if h != nil {
			bm.SetBit(bm, u, 1)
		}
	}
	return bm
}

// instance returns the ordered submission halves for one instance; only
// valid after a successful wait() (every cell filled).
func (c *collector) instance(i int) []protocol.SubmissionHalf {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]protocol.SubmissionHalf, c.users)
	for u, h := range c.halves[i] {
		out[u] = *h
	}
	return out
}

// maskedInstance returns the full-length submission slice for one instance
// with zero-value halves for every user outside the agreed set (the
// protocol engine's dropped-user representation). An agreed participant
// with no local submission is a fatal peer mismatch: the servers would sum
// different subsets.
func (c *collector) maskedInstance(i int, agreed *big.Int) ([]protocol.SubmissionHalf, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]protocol.SubmissionHalf, c.users)
	for u := 0; u < c.users; u++ {
		if agreed.Bit(u) == 0 {
			continue
		}
		h := c.halves[i][u]
		if h == nil {
			return nil, transport.MarkFatal(fmt.Errorf("deploy: agreed participant %d has no local submission for instance %d: %w",
				u, i, protocol.ErrPeerMismatch))
		}
		out[u] = *h
	}
	return out, nil
}

// errDuplicateSubmission marks a byte-identical submission for an
// already-filled cell. The collector reports it so tests can assert
// exact-once semantics; serveUserConn tolerates it, which is what makes
// upload replays after a reconnect idempotent.
var errDuplicateSubmission = errors.New("deploy: duplicate submission")

// errRejectedSubmission marks a submission refused by server-side
// validation (counted in privconsensus_submissions_rejected_total).
var errRejectedSubmission = errors.New("deploy: submission rejected")

// serveUserConn drains submission frames from one user connection into the
// collector until the user closes or sends all frames. A resilient user
// ends its upload with a done frame and waits for the ack; replayed
// submissions (after a reconnect) are deduplicated against the collector.
func serveUserConn(ctx context.Context, conn transport.Conn, col *collector) error {
	for {
		msg, err := conn.Recv(ctx)
		if err != nil {
			// Users close after their last frame; a closed connection
			// is the normal end of stream.
			return nil //nolint:nilerr // EOF-equivalent by protocol design
		}
		if msg.Kind == transport.KindControl && len(msg.Flags) >= 1 && msg.Flags[0] == ctrlUploadDone {
			user := int64(-1)
			if len(msg.Flags) >= 2 {
				user = msg.Flags[1]
			}
			ack := &transport.Message{Kind: transport.KindControl, Flags: []int64{ctrlUploadAck, user}}
			if err := conn.Send(ctx, ack); err != nil {
				return nil //nolint:nilerr // user gone; it will retry
			}
			continue
		}
		user, instance, half, err := DecodeHalf(msg)
		if err != nil {
			return err
		}
		if err := col.add(user, instance, half); err != nil {
			if errors.Is(err, errDuplicateSubmission) {
				continue // idempotent replay after a reconnect
			}
			if errors.Is(err, errRejectedSubmission) {
				continue // counted and excluded; keep serving valid frames
			}
			return err
		}
	}
}

// newRNG derives a per-run randomness source: deterministic if seed != 0.
func newRNG(seed int64) io.Reader {
	if seed != 0 {
		return mrand.New(mrand.NewSource(seed))
	}
	return rand.Reader
}
