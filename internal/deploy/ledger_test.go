package deploy

import (
	"errors"
	"math"
	"path/filepath"
	"testing"

	"github.com/privconsensus/privconsensus/internal/dp"
	"github.com/privconsensus/privconsensus/internal/fsx"
)

// epsAfter computes the (ε, δ)-DP spend of n worst-case queries at the
// given cost coefficient, the quantity the ledger projects at admission.
func epsAfter(t *testing.T, cost float64, n int, delta float64) float64 {
	t.Helper()
	a := dp.NewAccountant()
	if err := a.AddLinear(cost * float64(n)); err != nil {
		t.Fatal(err)
	}
	eps, _, err := a.Epsilon(delta)
	if err != nil {
		t.Fatal(err)
	}
	return eps
}

func TestLedgerQuotaRefusesAtProjection(t *testing.T) {
	const (
		sigma1, sigma2 = 4.0, 2.0
		delta          = 1e-6
	)
	cost := queryCost(sigma1, sigma2)
	if want := 9/(2*sigma1*sigma1) + 1/(sigma2*sigma2); math.Abs(cost-want) > 1e-15 {
		t.Fatalf("queryCost = %g, want %g", cost, want)
	}
	// A quota between one and two queries' spend admits exactly one.
	quota := (epsAfter(t, cost, 1, delta) + epsAfter(t, cost, 2, delta)) / 2
	b, err := openLedger("", map[int64]float64{9: quota}, 0, delta)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.reserve(9, cost); err != nil {
		t.Fatalf("first reservation refused: %v", err)
	}
	if err := b.reserve(9, cost); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("second reservation: got %v, want ErrBudgetExhausted", err)
	}
	// Reservations count: the first query has not committed yet, but its
	// worst-case spend is already held against the quota.
	b.unreserve(9, cost)
	if err := b.reserve(9, cost); err != nil {
		t.Fatalf("reservation after unreserve refused: %v", err)
	}
	if err := b.commit(9, cost, sigma1, sigma2, true); err != nil {
		t.Fatal(err)
	}
	if err := b.reserve(9, cost); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("post-commit reservation: got %v, want ErrBudgetExhausted", err)
	}
	// An unlisted tenant under an unlimited default is never refused.
	if err := b.reserve(1, cost); err != nil {
		t.Fatalf("unlimited tenant refused: %v", err)
	}
}

func TestLedgerCommitMatchesAccountant(t *testing.T) {
	const sigma1, sigma2, delta = 4.0, 2.0, 1e-6
	cost := queryCost(sigma1, sigma2)
	b, err := openLedger("", nil, 0, delta)
	if err != nil {
		t.Fatal(err)
	}
	// Three queries, two of which released a label.
	for i, released := range []bool{true, false, true} {
		if err := b.reserve(7, cost); err != nil {
			t.Fatalf("reserve %d: %v", i, err)
		}
		if err := b.commit(7, cost, sigma1, sigma2, released); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	want := dp.NewAccountant()
	for _, released := range []bool{true, false, true} {
		if err := want.AddSVT(sigma1); err != nil {
			t.Fatal(err)
		}
		if released {
			if err := want.AddRNM(sigma2); err != nil {
				t.Fatal(err)
			}
		}
	}
	spends := b.spends()
	if len(spends) != 1 || spends[0].Tenant != 7 {
		t.Fatalf("spends = %+v, want one entry for tenant 7", spends)
	}
	if spends[0].Coefficient != want.Coefficient() {
		t.Fatalf("ledger coefficient %g != accountant %g", spends[0].Coefficient, want.Coefficient())
	}
	q, r := want.Counts()
	if spends[0].Queries != q || spends[0].Releases != r {
		t.Fatalf("ledger counts (%d, %d) != accountant (%d, %d)", spends[0].Queries, spends[0].Releases, q, r)
	}
	if len(b.reserved) != 0 {
		t.Fatalf("reservations leaked: %v", b.reserved)
	}
}

func TestLedgerPersistsAndLocks(t *testing.T) {
	const sigma1, sigma2, delta = 4.0, 2.0, 1e-6
	cost := queryCost(sigma1, sigma2)
	path := filepath.Join(t.TempDir(), "ledger.json")
	b, err := openLedger(path, nil, 0, delta)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.reserve(3, cost); err != nil {
		t.Fatal(err)
	}
	if err := b.commit(3, cost, sigma1, sigma2, true); err != nil {
		t.Fatal(err)
	}
	// The state file is exclusively locked while open.
	if _, err := openLedger(path, nil, 0, delta); !errors.Is(err, fsx.ErrLocked) {
		t.Fatalf("concurrent open: got %v, want fsx.ErrLocked", err)
	}
	if err := b.close(); err != nil {
		t.Fatal(err)
	}
	// Reload resumes the committed spend exactly.
	b2, err := openLedger(path, nil, 0, delta)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.close()
	spends := b2.spends()
	if len(spends) != 1 || spends[0].Tenant != 3 {
		t.Fatalf("reloaded spends = %+v", spends)
	}
	if want := b.spends()[0]; spends[0] != want {
		t.Fatalf("reloaded spend %+v != original %+v", spends[0], want)
	}
}

func TestLedgerExhaustion(t *testing.T) {
	const sigma1, sigma2, delta = 4.0, 2.0, 1e-6
	cost := queryCost(sigma1, sigma2)
	quota := (epsAfter(t, cost, 1, delta) + epsAfter(t, cost, 2, delta)) / 2
	b, err := openLedger("", map[int64]float64{1: quota, 2: quota}, 0, delta)
	if err != nil {
		t.Fatal(err)
	}
	if b.exhausted(cost) {
		t.Fatal("fresh ledger reports exhaustion")
	}
	for _, tenant := range []int64{1, 2} {
		if err := b.reserve(tenant, cost); err != nil {
			t.Fatal(err)
		}
		if err := b.commit(tenant, cost, sigma1, sigma2, true); err != nil {
			t.Fatal(err)
		}
	}
	if !b.exhausted(cost) {
		t.Fatal("ledger with every quota spent does not report exhaustion")
	}
	// An open default quota keeps the service admitting fresh tenants.
	b.defaultQuota = quota
	if b.exhausted(cost) {
		t.Fatal("ledger with an open default quota reports exhaustion")
	}
}
