package deploy

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
	mrand "math/rand"
	"strings"
	"time"

	"github.com/privconsensus/privconsensus/internal/fixedpoint"
	"github.com/privconsensus/privconsensus/internal/ingest"
	"github.com/privconsensus/privconsensus/internal/keystore"
	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// UserOptions configures one user client.
type UserOptions struct {
	// User is this party's index in [0, Users).
	User int
	// S1Addr and S2Addr are the servers' listen addresses.
	S1Addr string
	S2Addr string
	// Seed, when non-zero, makes share/noise randomness deterministic.
	Seed int64
	// MaxRetries enables resilient uploads: on a transient failure the
	// client reconnects and replays the whole upload up to this many
	// times, ending each upload with a done frame and waiting for the
	// server's ack. Replays are safe — the server deduplicates
	// (user, instance) submissions. 0 (the default) keeps the original
	// fire-and-forget wire behavior.
	MaxRetries int
	// Backoff is the delay before the first retry (default 50ms),
	// doubling per retry.
	Backoff time.Duration
	// AttemptTimeout bounds each upload attempt (default 2m).
	AttemptTimeout time.Duration
	// FaultSpec, when non-empty, injects deterministic faults into the
	// client's connections (see transport.ParseFaultSpec). Testing only.
	FaultSpec string
	// JournalPath, when non-empty, appends the client's upload spans and
	// retries to a hash-chained JSONL journal at this path, and asks each
	// server for the run's trace ID (capTrace in the hello) so the events
	// merge into the cross-process timeline. Empty (the default) keeps the
	// wire byte-for-byte the untraced protocol.
	JournalPath string
	// LogLevel filters Logf output: "debug", "info" (the default), "warn"
	// or "silent".
	LogLevel string
	// Logf receives progress lines; nil silences logging.
	Logf func(format string, args ...any)
	// Packing overrides the key file's slot-packing mode: "on", "off", or
	// "" to keep the key file's setting. Must match the servers' resolved
	// mode — a packed server rejects unpacked frames and vice versa.
	Packing string
}

// attemptTimeout returns the per-attempt deadline with its default.
func (o UserOptions) attemptTimeout() time.Duration {
	if o.AttemptTimeout > 0 {
		return o.AttemptTimeout
	}
	return 2 * time.Minute
}

// traced reports whether journaling (and trace-context requests) are on.
func (o UserOptions) traced() bool { return o.JournalPath != "" }

// log is the user client's leveled logging helper, mirroring the server's.
func (o UserOptions) log(lv logLevel, format string, args ...any) {
	if o.Logf == nil {
		return
	}
	min, err := parseLogLevel(o.LogLevel)
	if err != nil {
		min = levelInfo
	}
	if lv < min {
		return
	}
	if lv == levelWarn {
		format = "WARN " + format
	}
	o.Logf(format, args...)
}

// userObs bundles the user client's optional journal and trace adoption.
// All methods are nil-safe no-ops when journaling is off.
type userObs struct {
	opts    UserOptions
	journal *obs.Journal
}

// adopt records a trace identity learned from a server. The first non-zero
// ID wins (untraced servers answer with 0) and journals the anchor event
// cmd/trace aligns clocks on.
func (u *userObs) adopt(id int64) {
	if u == nil || u.journal == nil || id == 0 {
		return
	}
	u.opts.log(levelDebug, "trace context %s adopted", traceIDString(id))
	if err := u.journal.BeginTrace(traceIDString(id)); err != nil {
		u.opts.log(levelWarn, "journal trace anchor failed: %v", err)
	}
}

// event appends one journal record; failures are logged, never fatal.
func (u *userObs) event(ev obs.Event) {
	if u == nil || u.journal == nil {
		return
	}
	if err := u.journal.Append(ev); err != nil {
		u.opts.log(levelWarn, "journal append failed: %v", err)
	}
}

// userHello sends the user hello and, when traced, requests and adopts the
// run's trace identity from the server.
func userHello(ctx context.Context, conn transport.Conn, u *userObs) error {
	caps := int64(0)
	if u != nil && u.opts.traced() {
		caps = capTrace
	}
	if err := sendHelloCaps(ctx, conn, partyUser, caps); err != nil {
		return err
	}
	if caps&capTrace == 0 {
		return nil
	}
	id, err := recvTraceContext(ctx, conn)
	if err != nil {
		return err
	}
	u.adopt(id)
	return nil
}

// SubmitVotes builds encrypted submissions for each instance's vote vector
// (votes[instance][class], entries in [0, 1]) and delivers the halves to
// both servers. It returns after both servers have accepted every frame.
func SubmitVotes(ctx context.Context, pub *keystore.PublicFile, opts UserOptions, votes [][]float64) error {
	if err := pub.Validate(); err != nil {
		return err
	}
	cfg := pub.Config
	if err := checkPackingMode(opts.Packing); err != nil {
		return err
	}
	applyPacking(&cfg, opts.Packing)
	if err := cfg.Validate(); err != nil {
		return err
	}
	if opts.User < 0 || opts.User >= cfg.Users {
		return fmt.Errorf("deploy: user index %d outside [0, %d)", opts.User, cfg.Users)
	}
	if len(votes) == 0 {
		return fmt.Errorf("deploy: no instances to submit")
	}
	if _, err := parseLogLevel(opts.LogLevel); err != nil {
		return err
	}
	u := &userObs{opts: opts}
	if opts.traced() {
		j, err := obs.OpenJournal(opts.JournalPath, obs.JournalOptions{Role: fmt.Sprintf("user%d", opts.User)})
		if err != nil {
			return err
		}
		u.journal = j
		defer u.journal.Close()
	}

	cryptoRNG := newRNG(opts.Seed)
	noiseSeed := opts.Seed * 7919
	if opts.Seed == 0 {
		// Unseeded runs must draw unpredictable DP noise: derive the
		// noise stream's seed from crypto/rand rather than anything an
		// observer could guess (such as the user index).
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return fmt.Errorf("deploy: seed noise rng: %w", err)
		}
		noiseSeed = int64(binary.BigEndian.Uint64(b[:]))
	}
	noiseRNG := mrand.New(mrand.NewSource(noiseSeed))

	if opts.MaxRetries > 0 {
		return submitResilient(ctx, pub, opts, u, votes, cryptoRNG, noiseRNG)
	}

	conn1, err := transport.Dial(ctx, opts.S1Addr)
	if err != nil {
		return fmt.Errorf("deploy: dial S1: %w", err)
	}
	defer conn1.Close()
	conn2, err := transport.Dial(ctx, opts.S2Addr)
	if err != nil {
		return fmt.Errorf("deploy: dial S2: %w", err)
	}
	defer conn2.Close()
	if err := userHello(ctx, conn1, u); err != nil {
		return err
	}
	if err := userHello(ctx, conn2, u); err != nil {
		return err
	}

	uploadStart := time.Now()
	for instance, vote := range votes {
		units, err := votesToUnits(vote, cfg.Classes)
		if err != nil {
			return fmt.Errorf("deploy: instance %d: %w", instance, err)
		}
		sub, _, err := protocol.BuildSubmission(cryptoRNG, noiseRNG, cfg, opts.User, units, pub.PK1, pub.PK2)
		if err != nil {
			return fmt.Errorf("deploy: build submission %d: %w", instance, err)
		}
		msg1, err := encodeSubmission(cfg, opts.User, instance, sub.ToS1)
		if err != nil {
			return err
		}
		msg2, err := encodeSubmission(cfg, opts.User, instance, sub.ToS2)
		if err != nil {
			return err
		}
		if err := conn1.Send(ctx, msg1); err != nil {
			return fmt.Errorf("deploy: send to S1: %w", err)
		}
		if err := conn2.Send(ctx, msg2); err != nil {
			return fmt.Errorf("deploy: send to S2: %w", err)
		}
	}
	u.event(obs.Event{Type: obs.EventSpan, Instance: -1, Phase: "upload",
		StartNs: uploadStart.UnixNano(), DurNs: int64(time.Since(uploadStart)),
		MsgsSent: int64(2 * len(votes))})
	return nil
}

// submitResilient builds every submission frame once, then uploads the S1
// and S2 halves with per-server retry: each attempt dials a fresh
// connection, replays all frames, sends a done marker and waits for the
// server's ack. The server deduplicates (user, instance) cells, so a
// replay after a mid-upload reset cannot double-count a vote.
func submitResilient(ctx context.Context, pub *keystore.PublicFile, opts UserOptions, u *userObs,
	votes [][]float64, cryptoRNG io.Reader, noiseRNG *mrand.Rand) error {
	cfg := pub.Config
	msgs1 := make([]*transport.Message, 0, len(votes))
	msgs2 := make([]*transport.Message, 0, len(votes))
	for instance, vote := range votes {
		units, err := votesToUnits(vote, cfg.Classes)
		if err != nil {
			return fmt.Errorf("deploy: instance %d: %w", instance, err)
		}
		sub, _, err := protocol.BuildSubmission(cryptoRNG, noiseRNG, cfg, opts.User, units, pub.PK1, pub.PK2)
		if err != nil {
			return fmt.Errorf("deploy: build submission %d: %w", instance, err)
		}
		m1, err := encodeSubmission(cfg, opts.User, instance, sub.ToS1)
		if err != nil {
			return err
		}
		m2, err := encodeSubmission(cfg, opts.User, instance, sub.ToS2)
		if err != nil {
			return err
		}
		msgs1 = append(msgs1, m1)
		msgs2 = append(msgs2, m2)
	}

	var inj *transport.FaultInjector
	if opts.FaultSpec != "" {
		spec, err := transport.ParseFaultSpec(opts.FaultSpec)
		if err != nil {
			return err
		}
		inj = transport.NewFaultInjector(spec)
	}
	if err := uploadWithRetry(ctx, "S1", opts.S1Addr, msgs1, opts, u, inj); err != nil {
		return err
	}
	return uploadWithRetry(ctx, "S2", opts.S2Addr, msgs2, opts, u, inj)
}

// uploadWithRetry delivers one server's frames, retrying transient
// failures on a fresh connection within the budget. The whole exchange is
// journaled as one upload span carrying the attempt count.
func uploadWithRetry(ctx context.Context, server, addr string, msgs []*transport.Message,
	opts UserOptions, u *userObs, inj *transport.FaultInjector) error {
	start := time.Now()
	var lastErr error
	for attempt := 0; attempt <= opts.MaxRetries; attempt++ {
		if attempt > 0 {
			retriesTotal("user", "upload").Inc()
			u.event(obs.Event{Type: obs.EventRetry, Instance: -1, Attempt: attempt + 1,
				Note: "upload " + strings.ToLower(server)})
			sleepCtx(ctx, backoffDelay(opts.Backoff, attempt))
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("deploy: upload to %s: %w", server, err)
		}
		err := uploadOnce(ctx, addr, msgs, opts, u, inj)
		if err == nil {
			u.event(obs.Event{Type: obs.EventSpan, Instance: -1, Attempt: attempt + 1,
				Phase:   "upload-" + strings.ToLower(server),
				StartNs: start.UnixNano(), DurNs: int64(time.Since(start)),
				MsgsSent: int64(len(msgs))})
			return nil
		}
		lastErr = err
		if !attemptRetryable(ctx, err) {
			return fmt.Errorf("deploy: upload to %s: %w", server, err)
		}
	}
	return fmt.Errorf("deploy: upload to %s failed after %d attempts: %w", server, opts.MaxRetries+1, lastErr)
}

// uploadOnce is a single upload attempt: dial, hello, all frames, done
// marker, ack.
func uploadOnce(ctx context.Context, addr string, msgs []*transport.Message,
	opts UserOptions, u *userObs, inj *transport.FaultInjector) error {
	actx, cancel := context.WithTimeout(ctx, opts.attemptTimeout())
	defer cancel()
	d := transport.Dialer{AttemptTimeout: opts.attemptTimeout(), Faults: inj, Seed: opts.Seed + int64(opts.User) + 29}
	conn, err := d.Dial(actx, addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	// The TCP transport maps the context deadline onto I/O deadlines only
	// at call start, so a mid-call cancellation would otherwise leave the
	// attempt blocked (typically on the ack read) until the attempt
	// deadline. Closing the connection unblocks it immediately.
	stop := context.AfterFunc(actx, func() { conn.Close() })
	defer stop()
	if err := userHello(actx, conn, u); err != nil {
		return err
	}
	for _, m := range msgs {
		if err := conn.Send(actx, m); err != nil {
			return err
		}
	}
	done := &transport.Message{Kind: transport.KindControl, Flags: []int64{ctrlUploadDone, int64(opts.User)}}
	if err := conn.Send(actx, done); err != nil {
		return err
	}
	ack, err := conn.Recv(actx)
	if err != nil {
		return err
	}
	if ack.Kind != transport.KindControl || len(ack.Flags) < 1 || ack.Flags[0] != ctrlUploadAck {
		return transport.MarkFatal(fmt.Errorf("deploy: unexpected upload ack %v", ack.Flags))
	}
	return nil
}

// encodeSubmission picks the submit frame grammar by the resolved packing
// mode: an unpacked config produces the original KindShares frame byte for
// byte; a packed one the KindPacked frame with its slot-layout flags.
func encodeSubmission(cfg protocol.Config, user, instance int, h protocol.SubmissionHalf) (*transport.Message, error) {
	if cfg.Packing {
		return ingest.EncodePackedHalf(user, instance, cfg.Classes, cfg.PackedWidth(), h)
	}
	return EncodeHalf(user, instance, h)
}

// votesToUnits converts a [0,1] float vote vector to fixed-point units.
func votesToUnits(vote []float64, classes int) ([]*big.Int, error) {
	if len(vote) != classes {
		return nil, fmt.Errorf("vote vector length %d, want %d", len(vote), classes)
	}
	units := make([]*big.Int, classes)
	for i, v := range vote {
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("vote %g for class %d outside [0, 1]", v, i)
		}
		u, err := fixedpoint.EncodeUnits(v)
		if err != nil {
			return nil, fmt.Errorf("encode vote for class %d: %w", i, err)
		}
		units[i] = big.NewInt(u)
	}
	return units, nil
}
