package deploy

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"math/big"
	mrand "math/rand"

	"github.com/privconsensus/privconsensus/internal/fixedpoint"
	"github.com/privconsensus/privconsensus/internal/keystore"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// UserOptions configures one user client.
type UserOptions struct {
	// User is this party's index in [0, Users).
	User int
	// S1Addr and S2Addr are the servers' listen addresses.
	S1Addr string
	S2Addr string
	// Seed, when non-zero, makes share/noise randomness deterministic.
	Seed int64
}

// SubmitVotes builds encrypted submissions for each instance's vote vector
// (votes[instance][class], entries in [0, 1]) and delivers the halves to
// both servers. It returns after both servers have accepted every frame.
func SubmitVotes(ctx context.Context, pub *keystore.PublicFile, opts UserOptions, votes [][]float64) error {
	if err := pub.Validate(); err != nil {
		return err
	}
	cfg := pub.Config
	if err := cfg.Validate(); err != nil {
		return err
	}
	if opts.User < 0 || opts.User >= cfg.Users {
		return fmt.Errorf("deploy: user index %d outside [0, %d)", opts.User, cfg.Users)
	}
	if len(votes) == 0 {
		return fmt.Errorf("deploy: no instances to submit")
	}

	cryptoRNG := newRNG(opts.Seed)
	noiseSeed := opts.Seed * 7919
	if opts.Seed == 0 {
		// Unseeded runs must draw unpredictable DP noise: derive the
		// noise stream's seed from crypto/rand rather than anything an
		// observer could guess (such as the user index).
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return fmt.Errorf("deploy: seed noise rng: %w", err)
		}
		noiseSeed = int64(binary.BigEndian.Uint64(b[:]))
	}
	noiseRNG := mrand.New(mrand.NewSource(noiseSeed))

	conn1, err := transport.Dial(ctx, opts.S1Addr)
	if err != nil {
		return fmt.Errorf("deploy: dial S1: %w", err)
	}
	defer conn1.Close()
	conn2, err := transport.Dial(ctx, opts.S2Addr)
	if err != nil {
		return fmt.Errorf("deploy: dial S2: %w", err)
	}
	defer conn2.Close()
	if err := sendHello(ctx, conn1, partyUser); err != nil {
		return err
	}
	if err := sendHello(ctx, conn2, partyUser); err != nil {
		return err
	}

	for instance, vote := range votes {
		units, err := votesToUnits(vote, cfg.Classes)
		if err != nil {
			return fmt.Errorf("deploy: instance %d: %w", instance, err)
		}
		sub, _, err := protocol.BuildSubmission(cryptoRNG, noiseRNG, cfg, opts.User, units, pub.PK1, pub.PK2)
		if err != nil {
			return fmt.Errorf("deploy: build submission %d: %w", instance, err)
		}
		msg1, err := EncodeHalf(opts.User, instance, sub.ToS1)
		if err != nil {
			return err
		}
		msg2, err := EncodeHalf(opts.User, instance, sub.ToS2)
		if err != nil {
			return err
		}
		if err := conn1.Send(ctx, msg1); err != nil {
			return fmt.Errorf("deploy: send to S1: %w", err)
		}
		if err := conn2.Send(ctx, msg2); err != nil {
			return fmt.Errorf("deploy: send to S2: %w", err)
		}
	}
	return nil
}

// votesToUnits converts a [0,1] float vote vector to fixed-point units.
func votesToUnits(vote []float64, classes int) ([]*big.Int, error) {
	if len(vote) != classes {
		return nil, fmt.Errorf("vote vector length %d, want %d", len(vote), classes)
	}
	units := make([]*big.Int, classes)
	for i, v := range vote {
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("vote %g for class %d outside [0, 1]", v, i)
		}
		u, err := fixedpoint.EncodeUnits(v)
		if err != nil {
			return nil, fmt.Errorf("encode vote for class %d: %w", i, err)
		}
		units[i] = big.NewInt(u)
	}
	return units, nil
}
