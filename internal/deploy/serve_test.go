package deploy

import (
	"context"
	"errors"
	"io"
	mrand "math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/dgk"
	"github.com/privconsensus/privconsensus/internal/keystore"
	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// serveTestSetup generates key files for a serve-mode deployment with the
// given number of pre-provisioned epochs (distinct key material per
// epoch, identical config).
func serveTestSetup(t *testing.T, users, epochs int, sigma1, sigma2 float64) (
	[]*keystore.S1File, []*keystore.S2File, []*keystore.PublicFile, protocol.Config) {
	t.Helper()
	cfg := protocol.DefaultConfig(users)
	cfg.Classes = 4
	cfg.Kappa = 24
	cfg.Sigma1, cfg.Sigma2 = sigma1, sigma2
	cfg.ThresholdFrac = 0.5
	cfg.DGK = dgk.Params{NBits: 160, TBits: 32, U: 1009, L: 50}
	if os.Getenv("CHAOS_PACKED") == "1" {
		cfg.Packing = true
	}
	var s1s []*keystore.S1File
	var s2s []*keystore.S2File
	var pubs []*keystore.PublicFile
	for e := 0; e < epochs; e++ {
		keys, err := protocol.GenerateKeys(testRNG(int64(210+37*e)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		s1, s2, pub, err := keystore.Split(cfg, keys)
		if err != nil {
			t.Fatal(err)
		}
		s1s, s2s, pubs = append(s1s, s1), append(s2s, s2), append(pubs, pub)
	}
	return s1s, s2s, pubs, cfg
}

// serveResult carries one server goroutine's return.
type s1ServeResult struct {
	rep *ServeReport
	err error
}

type s2ServeResult struct {
	rep *Report
	err error
}

// admitRaw performs a raw admission handshake on an open S1 user conn.
func admitRaw(ctx context.Context, t *testing.T, conn transport.Conn, tenant, nonce int64) (status int64, qid, epoch int) {
	t.Helper()
	if err := transport.SendControl(ctx, conn, ctrlAdmitRequest, tenant, nonce); err != nil {
		t.Fatalf("admit request: %v", err)
	}
	reply, err := transport.ExpectControl(ctx, conn, ctrlAdmitReply)
	if err != nil {
		t.Fatalf("admit reply: %v", err)
	}
	if len(reply) < 3 {
		t.Fatalf("short admit reply %v", reply)
	}
	return reply[0], int(reply[1]), int(reply[2])
}

// serveUserConnTo dials addr and performs the serve user hello.
func serveUserConnTo(ctx context.Context, t *testing.T, addr string) transport.Conn {
	t.Helper()
	conn, err := transport.Dial(ctx, addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	if err := sendHelloCaps(ctx, conn, partyUser, capServe); err != nil {
		t.Fatalf("hello: %v", err)
	}
	return conn
}

// uploadQueryRaw builds and delivers every user's halves for one granted
// query ID over the given open connections, with the done/ack barrier.
func uploadQueryRaw(ctx context.Context, t *testing.T, cfg protocol.Config, pub *keystore.PublicFile,
	qid, label int, crypto io.Reader, noise *mrand.Rand, conn1, conn2 transport.Conn) {
	t.Helper()
	for user := 0; user < cfg.Users; user++ {
		units, err := votesToUnits(oneHot(cfg.Classes, label), cfg.Classes)
		if err != nil {
			t.Fatal(err)
		}
		sub, _, err := protocol.BuildSubmission(crypto, noise, cfg, user, units, pub.PK1, pub.PK2)
		if err != nil {
			t.Fatal(err)
		}
		m1, err := encodeSubmission(cfg, user, qid, sub.ToS1)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := encodeSubmission(cfg, user, qid, sub.ToS2)
		if err != nil {
			t.Fatal(err)
		}
		if err := conn1.Send(ctx, m1); err != nil {
			t.Fatalf("send to S1: %v", err)
		}
		if err := conn2.Send(ctx, m2); err != nil {
			t.Fatalf("send to S2: %v", err)
		}
	}
	for _, conn := range []transport.Conn{conn1, conn2} {
		if err := transport.SendControl(ctx, conn, ctrlUploadDone, -1); err != nil {
			t.Fatalf("upload done: %v", err)
		}
		if _, err := transport.ExpectControl(ctx, conn, ctrlUploadAck); err != nil {
			t.Fatalf("upload ack: %v", err)
		}
	}
}

// healthzState fetches /healthz and returns (status code, body state).
func healthzState(t *testing.T, addr string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 256))
	if err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	return resp.StatusCode, strings.TrimSpace(string(body))
}

// TestServeGracefulShutdown covers the serve-mode lifecycle end to end:
// pipelined admission (a second query completes while the first is still
// collecting), /healthz readiness transitions, the drain handshake (stop
// admitting, finish in-flight queries, flush state) and journal
// integrity with no torn tail.
func TestServeGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("serve deployment test is slow in -short mode")
	}
	const users = 2
	s1Files, s2Files, pubs, cfg := serveTestSetup(t, users, 1, 0, 0)
	journalDir := t.TempDir()
	s1Journal := filepath.Join(journalDir, "s1.jsonl")
	s2Journal := filepath.Join(journalDir, "s2.jsonl")

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	drainCh := make(chan struct{})
	s1Ready := make(chan string, 1)
	metricsReady := make(chan string, 1)
	s1Done := make(chan s1ServeResult, 1)
	base := ServerOptions{
		ListenAddr:     "127.0.0.1:0",
		Seed:           611,
		MaxRetries:     3,
		Backoff:        5 * time.Millisecond,
		AttemptTimeout: 30 * time.Second,
		Quorum:         float64(users),
		SubmitDeadline: 30 * time.Second,
	}
	go func() {
		opts := base
		opts.Ready = s1Ready
		opts.MetricsAddr = "127.0.0.1:0"
		opts.MetricsReady = metricsReady
		opts.JournalPath = s1Journal
		rep, err := ServeS1(ctx, s1Files, ServeOptions{
			ServerOptions: opts,
			DrainCh:       drainCh,
			DrainTimeout:  time.Minute,
		})
		s1Done <- s1ServeResult{rep, err}
	}()
	s1Addr := <-s1Ready
	metricsAddr := <-metricsReady

	s2Ready := make(chan string, 1)
	s2Done := make(chan s2ServeResult, 1)
	go func() {
		opts := base
		opts.Seed = 612
		opts.PeerAddr = s1Addr
		opts.Ready = s2Ready
		opts.JournalPath = s2Journal
		rep, err := ServeS2(ctx, s2Files, ServeOptions{ServerOptions: opts, DrainTimeout: time.Minute})
		s2Done <- s2ServeResult{rep, err}
	}()
	s2Addr := <-s2Ready

	if code, state := healthzState(t, metricsAddr); code != http.StatusOK || state != "admitting" {
		t.Errorf("healthz before drain = (%d, %q), want (200, admitting)", code, state)
	}

	// Admit query A but withhold its uploads: it stays in flight,
	// collecting.
	connA1 := serveUserConnTo(ctx, t, s1Addr)
	defer connA1.Close()
	status, qidA, epochA := admitRaw(ctx, t, connA1, 1, 1001)
	if status != admitOK {
		t.Fatalf("query A admission status %d", status)
	}
	// Replaying the same (tenant, nonce) returns the original grant.
	status2, qidA2, _ := admitRaw(ctx, t, connA1, 1, 1001)
	if status2 != admitOK || qidA2 != qidA {
		t.Fatalf("admission replay = (%d, qid %d), want the original grant (0, qid %d)", status2, qidA2, qidA)
	}

	// Query B runs start to finish while A is still collecting: admission
	// is pipelined with A's open collection window.
	clientB, err := NewServeClient(pubs, ServeClientOptions{
		Tenant: 2, S1Addr: s1Addr, S2Addr: s2Addr, Seed: 621,
		MaxRetries: 3, Backoff: 5 * time.Millisecond, AttemptTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	votes := make([][]float64, users)
	for u := range votes {
		votes[u] = oneHot(cfg.Classes, 1)
	}
	resB, err := clientB.Do(ctx, votes)
	if err != nil {
		t.Fatalf("query B while A in flight: %v", err)
	}
	if !resB.Consensus || resB.Label != 1 {
		t.Fatalf("query B outcome %+v, want consensus on label 1", resB)
	}
	if resB.QID == qidA {
		t.Fatalf("query B was granted A's query ID %d", qidA)
	}

	// Drain with A still in flight: admission must refuse with the typed
	// draining status, A must still complete, and the servers must return.
	close(drainCh)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code, state := healthzState(t, metricsAddr); code == http.StatusServiceUnavailable && state == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := clientB.Do(ctx, votes); !errors.Is(err, ErrDraining) {
		t.Fatalf("admission during drain: got %v, want ErrDraining", err)
	}

	// Deliver A's withheld uploads; the drain must wait for it.
	connA2 := serveUserConnTo(ctx, t, s2Addr)
	defer connA2.Close()
	uploadQueryRaw(ctx, t, cfg, pubs[epochA], qidA, 1, testRNG(631), mrand.New(mrand.NewSource(632)), connA1, connA2)
	if err := transport.SendControl(ctx, connA1, ctrlResultWait, int64(qidA)); err != nil {
		t.Fatal(err)
	}
	reply, err := transport.ExpectControl(ctx, connA1, ctrlResultReply)
	if err != nil {
		t.Fatalf("query A result: %v", err)
	}
	if len(reply) < 4 || reply[1] != resultConsensus || reply[2] != 1 {
		t.Fatalf("query A result reply %v, want consensus on label 1", reply)
	}

	r1 := <-s1Done
	r2 := <-s2Done
	if r1.err != nil {
		t.Fatalf("S1 serve: %v", r1.err)
	}
	if r2.err != nil {
		t.Fatalf("S2 serve: %v", r2.err)
	}
	if got := len(r1.rep.Results); got != 2 {
		t.Fatalf("S1 report has %d results, want 2", got)
	}
	for _, res := range r1.rep.Results {
		if res.Err != nil {
			t.Errorf("query %d failed under graceful drain: %v", res.Instance, res.Err)
		}
	}
	if got := r1.rep.Admissions["admitted"]; got != 2 {
		t.Errorf("admitted count %d, want 2", got)
	}
	if got := r1.rep.Admissions["draining"]; got < 1 {
		t.Errorf("draining refusals %d, want >= 1", got)
	}

	// Both journals must verify end to end — a drain that tears the tail
	// beyond the one-record crash tolerance is a flush bug.
	for _, path := range []string{s1Journal, s2Journal} {
		if n, err := obs.VerifyJournalFile(path); err != nil || n == 0 {
			t.Errorf("%s after drain: %d records, err %v", path, n, err)
		}
	}
	evs, err := obs.ReadJournalFile(s1Journal)
	if err != nil {
		t.Fatal(err)
	}
	var admitted, refused, drainMark int
	for _, ev := range evs {
		if ev.Type != obs.EventAdmission && !(ev.Type == obs.EventEpoch && ev.Note == "draining") {
			continue
		}
		switch {
		case ev.Type == obs.EventEpoch:
			drainMark++
		case strings.Contains(ev.Note, "decision=admitted"):
			admitted++
		case strings.Contains(ev.Note, "decision=draining"):
			refused++
		}
	}
	if admitted != 2 || refused < 1 || drainMark < 1 {
		t.Errorf("journal admission trail: admitted=%d refused=%d drain=%d, want 2/>=1/>=1", admitted, refused, drainMark)
	}
}

// TestServeBudgetRefusal asserts the ε-budget admission path: a tenant
// whose quota affords exactly one query is granted once and refused with
// the typed budget-exhausted status on the second attempt — before any
// protocol bytes are spent — while the durable ledger records exactly the
// committed spend. When every configured quota is exhausted, /healthz
// flips to budget-exhausted.
func TestServeBudgetRefusal(t *testing.T) {
	if testing.Short() {
		t.Skip("serve deployment test is slow in -short mode")
	}
	const (
		users  = 2
		sigma1 = 4.0
		sigma2 = 2.0
		delta  = 1e-6
	)
	s1Files, s2Files, pubs, cfg := serveTestSetup(t, users, 1, sigma1, sigma2)
	cost := queryCost(sigma1, sigma2)
	quota := (epsAfter(t, cost, 1, delta) + epsAfter(t, cost, 2, delta)) / 2
	ledgerPath := filepath.Join(t.TempDir(), "ledger.json")

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	drainCh := make(chan struct{})
	s1Ready := make(chan string, 1)
	metricsReady := make(chan string, 1)
	s1Done := make(chan s1ServeResult, 1)
	base := ServerOptions{
		ListenAddr:     "127.0.0.1:0",
		Seed:           711,
		MaxRetries:     3,
		Backoff:        5 * time.Millisecond,
		AttemptTimeout: 30 * time.Second,
		Quorum:         float64(users),
		SubmitDeadline: 30 * time.Second,
	}
	go func() {
		opts := base
		opts.Ready = s1Ready
		opts.MetricsAddr = "127.0.0.1:0"
		opts.MetricsReady = metricsReady
		rep, err := ServeS1(ctx, s1Files, ServeOptions{
			ServerOptions: opts,
			Tenants:       map[int64]float64{9: quota},
			Delta:         delta,
			LedgerPath:    ledgerPath,
			DrainCh:       drainCh,
			DrainTimeout:  time.Minute,
		})
		s1Done <- s1ServeResult{rep, err}
	}()
	s1Addr := <-s1Ready
	metricsAddr := <-metricsReady

	s2Ready := make(chan string, 1)
	s2Done := make(chan s2ServeResult, 1)
	go func() {
		opts := base
		opts.Seed = 712
		opts.PeerAddr = s1Addr
		opts.Ready = s2Ready
		rep, err := ServeS2(ctx, s2Files, ServeOptions{ServerOptions: opts, DrainTimeout: time.Minute})
		s2Done <- s2ServeResult{rep, err}
	}()
	s2Addr := <-s2Ready

	client, err := NewServeClient(pubs, ServeClientOptions{
		Tenant: 9, S1Addr: s1Addr, S2Addr: s2Addr, Seed: 721,
		MaxRetries: 3, Backoff: 5 * time.Millisecond, AttemptTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	votes := make([][]float64, users)
	for u := range votes {
		votes[u] = oneHot(cfg.Classes, 1)
	}
	if _, err := client.Do(ctx, votes); err != nil {
		t.Fatalf("first query within quota: %v", err)
	}
	if _, err := client.Do(ctx, votes); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("second query: got %v, want ErrBudgetExhausted", err)
	}

	// Every configured quota is now exhausted: readiness flips.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code, state := healthzState(t, metricsAddr); code == http.StatusServiceUnavailable && state == "budget-exhausted" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported budget-exhausted")
		}
		time.Sleep(10 * time.Millisecond)
	}

	close(drainCh)
	r1 := <-s1Done
	<-s2Done
	if r1.err != nil {
		t.Fatalf("S1 serve: %v", r1.err)
	}
	if got := r1.rep.Admissions["budget-exhausted"]; got < 1 {
		t.Errorf("budget-exhausted refusals %d, want >= 1", got)
	}
	if len(r1.rep.Tenants) != 1 || r1.rep.Tenants[0].Tenant != 9 || r1.rep.Tenants[0].Queries != 1 {
		t.Fatalf("tenant spends %+v, want one committed query for tenant 9", r1.rep.Tenants)
	}

	// The durable ledger reloads to exactly the committed spend.
	b, err := openLedger(ledgerPath, map[int64]float64{9: quota}, 0, delta)
	if err != nil {
		t.Fatalf("reload ledger: %v", err)
	}
	defer b.close()
	spends := b.spends()
	if len(spends) != 1 || spends[0] != r1.rep.Tenants[0] {
		t.Fatalf("reloaded ledger %+v != report %+v", spends, r1.rep.Tenants)
	}
	if err := b.reserve(9, cost); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("reloaded ledger still admits tenant 9: %v", err)
	}
}
