package deploy

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// TestTraceCapabilityParity pins the wire-parity contract for capTrace: the
// bit is advertised iff journaling is on, and a trace mismatch between the
// servers is rejected at the hello in both directions.
func TestTraceCapabilityParity(t *testing.T) {
	_, _, _, cfg := testSetup(t, 2)
	plain := ServerOptions{Instances: 1}
	traced := ServerOptions{Instances: 1, JournalPath: "j.jsonl"}

	if caps := plain.helloCaps(cfg); caps&capTrace != 0 {
		t.Fatalf("untraced hello caps = %d advertise capTrace; the bit must stay off the wire", caps)
	}
	if caps := traced.helloCaps(cfg); caps&capTrace == 0 {
		t.Fatalf("traced hello caps = %d, want capTrace (%d) set", traced.helloCaps(cfg), capTrace)
	}
	// Agreement in both configurations is accepted ...
	if err := checkPeerCaps(plain.helloCaps(cfg), plain, cfg); err != nil {
		t.Errorf("untraced pair rejected: %v", err)
	}
	if err := checkPeerCaps(traced.helloCaps(cfg), traced, cfg); err != nil {
		t.Errorf("traced pair rejected: %v", err)
	}
	// ... and a mismatch is caught whichever side enables -journal.
	if err := checkPeerCaps(plain.helloCaps(cfg), traced, cfg); err == nil {
		t.Error("untraced S2 hello accepted by a traced S1")
	}
	if err := checkPeerCaps(traced.helloCaps(cfg), plain, cfg); err == nil {
		t.Error("traced S2 hello accepted by an untraced S1")
	}
}

// TestMintTraceID checks determinism, stream separation and rendering.
func TestMintTraceID(t *testing.T) {
	a, err := mintTraceID(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mintTraceID(42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed minted %d then %d; trace IDs must be reproducible", a, b)
	}
	if a <= 0 {
		t.Errorf("minted ID %d, want positive 63-bit", a)
	}
	c, err := mintTraceID(43)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Errorf("seeds 42 and 43 minted the same ID %d", a)
	}
	random, err := mintTraceID(0)
	if err != nil {
		t.Fatal(err)
	}
	if random <= 0 {
		t.Errorf("unseeded mint returned %d, want positive", random)
	}
	if got := traceIDString(0x1f); got != "t-000000000000001f" {
		t.Errorf("traceIDString(0x1f) = %q", got)
	}
	if got := traceIDString(0); got != "" {
		t.Errorf("traceIDString(0) = %q, want empty (untraced)", got)
	}
}

// TestTraceState checks the publish-once semantics user connections rely on.
func TestTraceState(t *testing.T) {
	ts := newTraceState()
	if ts.idString() != "" {
		t.Errorf("unset state renders %q, want empty", ts.idString())
	}
	if !ts.put(5) {
		t.Fatal("first put did not win")
	}
	if ts.put(9) {
		t.Fatal("second put won; the ID must be immutable after adoption")
	}
	id, err := ts.get(context.Background())
	if err != nil || id != 5 {
		t.Fatalf("get = %d, %v; want the first published ID 5", id, err)
	}
	if got := ts.idString(); got != "t-0000000000000005" {
		t.Errorf("idString = %q", got)
	}

	// A reader against an unset state is bounded by its context.
	blocked := newTraceState()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := blocked.get(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("get on unset state with dead ctx = %v, want context.Canceled", err)
	}
}

// TestTraceContextFrame round-trips the ctrl frame over an in-memory pair
// and checks malformed frames are fatal (never retried).
func TestTraceContextFrame(t *testing.T) {
	ctx := context.Background()
	a, b := transport.Pair()
	defer a.Close()
	defer b.Close()

	if err := sendTraceContext(ctx, a, 0x1234); err != nil {
		t.Fatal(err)
	}
	id, err := recvTraceContext(ctx, b)
	if err != nil || id != 0x1234 {
		t.Fatalf("round trip = %d, %v; want 0x1234", id, err)
	}

	bad := []*transport.Message{
		{Kind: transport.KindControl, Flags: []int64{ctrlTraceContext}},       // missing ID
		{Kind: transport.KindControl, Flags: []int64{ctrlUploadDone, 7}},      // wrong code
		{Kind: transport.KindControl, Flags: []int64{ctrlTraceContext, -1}},   // negative ID
		{Kind: transport.KindControl, Flags: []int64{ctrlTraceContext, 1, 2}}, // trailing junk
	}
	for i, msg := range bad {
		if err := a.Send(ctx, msg); err != nil {
			t.Fatal(err)
		}
		_, err := recvTraceContext(ctx, b)
		if err == nil {
			t.Fatalf("malformed frame %d accepted", i)
		}
		var fatal *transport.FatalError
		if !errors.As(err, &fatal) {
			t.Errorf("malformed frame %d error %v is not fatal; a reconnect would replay it forever", i, err)
		}
	}
}

// TestTracedDeploymentEndToEnd runs a full two-server deployment with
// journaling enabled everywhere and checks the observability acceptance
// criteria on the files left behind: every journal verifies, all five
// processes share one trace ID, and the per-query span bytes written to
// disk sum exactly to the query totals (the transport-meter invariant,
// extended to the journal).
func TestTracedDeploymentEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment test is slow in -short mode")
	}
	const (
		users     = 3
		instances = 2
	)
	s1File, s2File, pubFile, cfg := testSetup(t, users)
	dir := t.TempDir()
	s1Journal := filepath.Join(dir, "s1.jsonl")
	s2Journal := filepath.Join(dir, "s2.jsonl")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	s1Ready := make(chan string, 1)
	s1Done := make(chan error, 1)
	go func() {
		_, err := RunS1(ctx, s1File, ServerOptions{
			ListenAddr: "127.0.0.1:0", Instances: instances, Seed: 201,
			Ready: s1Ready, JournalPath: s1Journal,
		})
		s1Done <- err
	}()
	s1Addr := <-s1Ready

	s2Ready := make(chan string, 1)
	s2Done := make(chan error, 1)
	go func() {
		_, err := RunS2(ctx, s2File, ServerOptions{
			ListenAddr: "127.0.0.1:0", PeerAddr: s1Addr, Instances: instances,
			Seed: 202, Ready: s2Ready, JournalPath: s2Journal,
		})
		s2Done <- err
	}()
	s2Addr := <-s2Ready

	// Unanimous class 2 on instance 0, split on instance 1.
	userJournals := make([]string, users)
	for u := 0; u < users; u++ {
		votes := [][]float64{oneHot(cfg.Classes, 2), oneHot(cfg.Classes, u%2)}
		userJournals[u] = filepath.Join(dir, "user"+string(rune('0'+u))+".jsonl")
		if err := SubmitVotes(ctx, pubFile, UserOptions{
			User: u, S1Addr: s1Addr, S2Addr: s2Addr, Seed: int64(300 + u),
			JournalPath: userJournals[u],
		}, votes); err != nil {
			t.Fatalf("user %d: %v", u, err)
		}
	}
	if err := <-s1Done; err != nil {
		t.Fatalf("S1: %v", err)
	}
	if err := <-s2Done; err != nil {
		t.Fatalf("S2: %v", err)
	}

	paths := append([]string{s1Journal, s2Journal}, userJournals...)
	traces := map[string]bool{}
	for _, path := range paths {
		if n, err := obs.VerifyJournalFile(path); err != nil || n == 0 {
			t.Fatalf("%s: verified %d records, err %v; every journal must chain-verify", path, n, err)
		}
		evs, err := obs.ReadJournalFile(path)
		if err != nil {
			t.Fatal(err)
		}
		anchors := 0
		for _, ev := range evs {
			if ev.Trace == "" {
				t.Fatalf("%s: event %+v missing the trace stamp", path, ev)
			}
			traces[ev.Trace] = true
			if ev.Type == obs.EventTraceBegin {
				anchors++
			}
		}
		if anchors != 1 {
			t.Errorf("%s: %d trace-begin anchors, want exactly 1 for timeline alignment", path, anchors)
		}
	}
	if len(traces) != 1 {
		t.Fatalf("journals carry %d distinct trace IDs %v, want the single S1-minted ID everywhere", len(traces), traces)
	}

	// Server journals: every instance closes with a query record whose byte
	// totals equal the sum of its journaled spans — the PR-2 meter
	// invariant must survive the trip to disk.
	for _, path := range []string{s1Journal, s2Journal} {
		evs, _ := obs.ReadJournalFile(path)
		type tally struct{ tx, rx, qTx, qRx int64 }
		perInstance := map[int]*tally{}
		quorums := 0
		for _, ev := range evs {
			switch ev.Type {
			case obs.EventSpan:
				tl := perInstance[ev.Instance]
				if tl == nil {
					tl = &tally{}
					perInstance[ev.Instance] = tl
				}
				tl.tx += ev.BytesSent
				tl.rx += ev.BytesReceived
			case obs.EventQuery:
				tl := perInstance[ev.Instance]
				if tl == nil {
					tl = &tally{}
					perInstance[ev.Instance] = tl
				}
				tl.qTx, tl.qRx = ev.BytesSent, ev.BytesReceived
			case obs.EventQuorum:
				quorums++
			}
		}
		if len(perInstance) != instances {
			t.Fatalf("%s journaled %d instances, want %d", path, len(perInstance), instances)
		}
		for i, tl := range perInstance {
			if tl.qTx == 0 && tl.qRx == 0 {
				t.Errorf("%s instance %d: query record reports zero traffic", path, i)
			}
			if tl.tx != tl.qTx || tl.rx != tl.qRx {
				t.Errorf("%s instance %d: span bytes tx=%d rx=%d differ from query totals %d/%d",
					path, i, tl.tx, tl.rx, tl.qTx, tl.qRx)
			}
		}
		if quorums != instances {
			t.Errorf("%s journaled %d quorum decisions, want one per instance", path, quorums)
		}
	}

	// User journals record the upload itself.
	for u, path := range userJournals {
		evs, _ := obs.ReadJournalFile(path)
		uploads := 0
		for _, ev := range evs {
			if ev.Type == obs.EventSpan && ev.MsgsSent > 0 {
				uploads++
			}
		}
		if uploads == 0 {
			t.Errorf("user %d journal has no upload span", u)
		}
	}
}
