package deploy

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// TestAcceptLoopCtxCancellation covers the failure path where the run
// context is cancelled while the accept loop is still collecting parties:
// the server must return promptly with the context error rather than hang.
func TestAcceptLoopCtxCancellation(t *testing.T) {
	s1File, _, _, _ := testSetup(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		_, err := RunS1(ctx, s1File, ServerOptions{
			ListenAddr: "127.0.0.1:0", Instances: 1, Ready: ready,
		})
		done <- err
	}()
	<-ready
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected error after cancellation")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error does not wrap context.Canceled: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not return after ctx cancellation")
	}
}

// TestUserDropsMidUpload covers a user connection that vanishes after
// uploading only part of its shares: the server keeps serving, then fails
// collection with an error naming how many submissions are missing.
func TestUserDropsMidUpload(t *testing.T) {
	s1File, _, pubFile, cfg := testSetup(t, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	const instances = 2
	go func() {
		_, err := RunS1(ctx, s1File, ServerOptions{
			ListenAddr: "127.0.0.1:0", Instances: instances, Ready: ready,
		})
		done <- err
	}()
	addr := <-ready

	// Peer connects so S1 advances to submission collection; the default
	// strategy is tournament, so the hello must advertise capBatched.
	peer, err := transport.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	if err := sendHelloCaps(ctx, peer, partyPeer, capBatched); err != nil {
		t.Fatal(err)
	}

	// User connects and uploads the half for instance 0 only, then drops.
	units, err := votesToUnits(oneHot(cfg.Classes, 1), cfg.Classes)
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := protocol.BuildSubmission(testRNG(600), testRNG(601), cfg, 0, units, pubFile.PK1, pubFile.PK2)
	if err != nil {
		t.Fatal(err)
	}
	user, err := transport.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := sendHello(ctx, user, partyUser); err != nil {
		t.Fatal(err)
	}
	msg, err := EncodeHalf(0, 0, sub.ToS1)
	if err != nil {
		t.Fatal(err)
	}
	if err := user.Send(ctx, msg); err != nil {
		t.Fatal(err)
	}
	user.Close() // drop mid-upload: instance 1's half never arrives

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected collection failure after user drop")
		}
		if !strings.Contains(err.Error(), "missing") {
			t.Fatalf("error does not report missing submissions: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not fail after user drop")
	}
}

// TestMismatchedParallelism runs S1 sequentially and S2 multiplexed. The
// wire formats are incompatible, so both servers must fail — and the
// surfaced errors must name the protocol phase that broke, via the trace.
func TestMismatchedParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment test is slow in -short mode")
	}
	const users = 2
	s1File, s2File, pubFile, cfg := testSetup(t, users)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	s1Ready := make(chan string, 1)
	s2Ready := make(chan string, 1)
	s1Done := make(chan error, 1)
	go func() {
		_, err := RunS1(ctx, s1File, ServerOptions{
			ListenAddr: "127.0.0.1:0", Instances: 1, Seed: 700,
			Parallelism: 1, Ready: s1Ready,
		})
		s1Done <- err
	}()
	s1Addr := <-s1Ready
	s2Done := make(chan error, 1)
	go func() {
		_, err := RunS2(ctx, s2File, ServerOptions{
			ListenAddr: "127.0.0.1:0", PeerAddr: s1Addr, Instances: 1, Seed: 701,
			Parallelism: 4, Ready: s2Ready,
		})
		s2Done <- err
	}()
	s2Addr := <-s2Ready

	for u := 0; u < users; u++ {
		if err := SubmitVotes(ctx, pubFile, UserOptions{
			User: u, S1Addr: s1Addr, S2Addr: s2Addr, Seed: int64(710 + u),
		}, [][]float64{oneHot(cfg.Classes, 2)}); err != nil {
			t.Fatalf("user %d: %v", u, err)
		}
	}

	err1 := <-s1Done
	err2 := <-s2Done
	if err1 == nil && err2 == nil {
		t.Fatal("expected at least one server to fail with mismatched parallelism")
	}
	// The error that surfaces must name the failing phase from the trace.
	phases := []string{
		protocol.StepSecureSum1, protocol.StepBlindPerm1, protocol.StepCompare1,
		protocol.StepThreshold, protocol.StepSecureSum2, protocol.StepBlindPerm2,
		protocol.StepCompare2, protocol.StepRestoration,
	}
	named := false
	for _, err := range []error{err1, err2} {
		if err == nil {
			continue
		}
		if !strings.Contains(err.Error(), `(phase "`) {
			t.Errorf("server error does not name a phase: %v", err)
			continue
		}
		for _, ph := range phases {
			if strings.Contains(err.Error(), ph) {
				named = true
			}
		}
	}
	if !named {
		t.Errorf("no surfaced error names a protocol phase: s1=%v s2=%v", err1, err2)
	}
}

// TestMetricsEndpointEndToEnd runs a full deployment with the admin
// endpoint enabled on S1 and scrapes it over real HTTP: /healthz must be
// 200, /metrics must expose the protocol's counter families.
func TestMetricsEndpointEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment test is slow in -short mode")
	}
	const users = 2
	s1File, s2File, pubFile, cfg := testSetup(t, users)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		// Backstop so a wedged deployment cannot hang the test forever.
		time.Sleep(2 * time.Minute)
		cancel()
	}()

	before := obs.Default.CounterValue("deploy_queries_total",
		obs.L("role", "s1"), obs.L("outcome", "consensus"))

	s1Ready := make(chan string, 1)
	s2Ready := make(chan string, 1)
	metricsReady := make(chan string, 1)
	type serverResult struct {
		outcomes []protocol.Outcome
		err      error
	}
	s1Done := make(chan serverResult, 1)
	go func() {
		out, err := RunS1(ctx, s1File, ServerOptions{
			ListenAddr: "127.0.0.1:0", Instances: 1, Seed: 800, Ready: s1Ready,
			MetricsAddr: "127.0.0.1:0", MetricsReady: metricsReady,
			MetricsLinger: time.Minute,
		})
		s1Done <- serverResult{out, err}
	}()
	s1Addr := <-s1Ready
	metricsAddr := <-metricsReady

	s2Done := make(chan serverResult, 1)
	go func() {
		out, err := RunS2(ctx, s2File, ServerOptions{
			ListenAddr: "127.0.0.1:0", PeerAddr: s1Addr, Instances: 1, Seed: 801, Ready: s2Ready,
		})
		s2Done <- serverResult{out, err}
	}()
	s2Addr := <-s2Ready

	for u := 0; u < users; u++ {
		if err := SubmitVotes(ctx, pubFile, UserOptions{
			User: u, S1Addr: s1Addr, S2Addr: s2Addr, Seed: int64(810 + u),
		}, [][]float64{oneHot(cfg.Classes, 3)}); err != nil {
			t.Fatalf("user %d: %v", u, err)
		}
	}

	// Wait for S1's query to complete (counter moves past its pre-test
	// value), then scrape the admin endpoint while it lingers.
	deadline := time.Now().Add(90 * time.Second)
	for obs.Default.CounterValue("deploy_queries_total",
		obs.L("role", "s1"), obs.L("outcome", "consensus")) <= before {
		if time.Now().After(deadline) {
			t.Fatal("query never completed")
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", metricsAddr))
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz returned %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/metrics", metricsAddr))
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics returned %d", resp.StatusCode)
	}
	for _, family := range []string{
		"paillier_encrypt_total", "paillier_decrypt_total", "paillier_add_total",
		"paillier_pool_hits_total", "dgk_comparisons_total", "dgk_encrypt_total",
		"transport_step_bytes_total", "transport_wire_bytes_total",
		"protocol_phase_seconds_bucket", "deploy_queries_total",
		"privconsensus_build_info",
	} {
		if !strings.Contains(string(text), family) {
			t.Errorf("/metrics missing family %q", family)
		}
	}

	// /debug/traces serves the ring of completed query traces as JSON.
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/traces", metricsAddr))
	if err != nil {
		t.Fatalf("debug/traces: %v", err)
	}
	var ring struct {
		Total  uint64            `json:"total"`
		Traces []*obs.QueryTrace `json:"traces"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ring)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode /debug/traces: %v", err)
	}
	if ring.Total == 0 || len(ring.Traces) == 0 {
		t.Fatalf("/debug/traces reports total=%d with %d traces; the completed query must be in the ring", ring.Total, len(ring.Traces))
	}
	last := ring.Traces[len(ring.Traces)-1]
	if len(last.Spans) == 0 {
		t.Errorf("ring trace %q has no phase spans", last.ID)
	}

	// Unblock the lingering admin endpoint and collect both servers.
	r2 := <-s2Done
	if r2.err != nil {
		t.Fatalf("S2: %v", r2.err)
	}
	cancel()
	r1 := <-s1Done
	if r1.err != nil {
		t.Fatalf("S1: %v", r1.err)
	}
	if !r1.outcomes[0].Consensus || r1.outcomes[0].Label != 3 {
		t.Errorf("outcome %+v, want consensus on 3", r1.outcomes[0])
	}
}
