package deploy

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	mrand "math/rand"
	"time"

	"github.com/privconsensus/privconsensus/internal/keystore"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// ServeClientOptions configures one serve-mode query client. The client
// drives whole queries: it requests admission from S1, builds and uploads
// every user's encrypted halves for the granted query ID, and blocks on
// the result.
type ServeClientOptions struct {
	// Tenant is the ε-budget account the client's queries bill to.
	Tenant int64
	// S1Addr and S2Addr are the servers' listen addresses.
	S1Addr string
	S2Addr string
	// Seed, when non-zero, makes share/noise/nonce randomness
	// deterministic.
	Seed int64
	// MaxRetries bounds per-phase retries (admission, upload, result
	// wait); every phase is idempotent on the servers, so replays after a
	// lost reply are safe.
	MaxRetries int
	// Backoff is the delay before the first retry (default 50ms),
	// doubling per retry.
	Backoff time.Duration
	// AttemptTimeout bounds each phase attempt (default 2m).
	AttemptTimeout time.Duration
	// FaultSpec, when non-empty, injects deterministic faults into the
	// client's connections. Testing only.
	FaultSpec string
	// LogLevel and Logf mirror UserOptions.
	LogLevel string
	Logf     func(format string, args ...any)
	// Packing overrides the key files' slot-packing mode ("on"/"off"/"").
	Packing string
}

func (o ServeClientOptions) attemptTimeout() time.Duration {
	if o.AttemptTimeout > 0 {
		return o.AttemptTimeout
	}
	return 2 * time.Minute
}

func (o ServeClientOptions) log(lv logLevel, format string, args ...any) {
	if o.Logf == nil {
		return
	}
	min, err := parseLogLevel(o.LogLevel)
	if err != nil {
		min = levelInfo
	}
	if lv < min {
		return
	}
	if lv == levelWarn {
		format = "WARN " + format
	}
	o.Logf(format, args...)
}

// ServeResult is one resolved serve-mode query.
type ServeResult struct {
	// QID is the server-assigned query ID; Epoch the key epoch it was
	// admitted under.
	QID   int
	Epoch int
	// Consensus and Label mirror protocol.Outcome (Label -1 without
	// consensus).
	Consensus bool
	Label     int
	// Attempts is the server-side attempt count for the query.
	Attempts int
	// AdmitWait is the client-observed admission latency: from the first
	// admission dial to the grant, including redials.
	AdmitWait time.Duration
}

// ServeClient submits whole queries to a serve-mode server pair. Not safe
// for concurrent use; run one client per worker (queries pipeline across
// workers — collection of one query overlaps the protocol phases of
// another).
type ServeClient struct {
	pubs      []*keystore.PublicFile // indexed by epoch
	opts      ServeClientOptions
	cfg       protocol.Config
	inj       *transport.FaultInjector
	cryptoRNG io.Reader
	noiseRNG  *mrand.Rand
	nonceRNG  *mrand.Rand
}

// NewServeClient validates the per-epoch public key files (one per
// provisioned epoch, matching the servers' key files) and prepares the
// client's randomness streams.
func NewServeClient(pubs []*keystore.PublicFile, opts ServeClientOptions) (*ServeClient, error) {
	if len(pubs) == 0 {
		return nil, fmt.Errorf("deploy: serve client needs at least one epoch public key file")
	}
	if err := checkPackingMode(opts.Packing); err != nil {
		return nil, err
	}
	cfg := pubs[0].Config
	applyPacking(&cfg, opts.Packing)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for i, pub := range pubs {
		if err := pub.Validate(); err != nil {
			return nil, fmt.Errorf("deploy: epoch %d public keys: %w", i, err)
		}
		if pub.Config != pubs[0].Config {
			return nil, fmt.Errorf("deploy: epoch %d public key config differs from epoch 0", i)
		}
	}
	if opts.Tenant < 0 {
		return nil, fmt.Errorf("deploy: negative tenant %d", opts.Tenant)
	}
	if _, err := parseLogLevel(opts.LogLevel); err != nil {
		return nil, err
	}
	c := &ServeClient{pubs: pubs, opts: opts, cfg: cfg, cryptoRNG: newRNG(opts.Seed)}
	noiseSeed := opts.Seed * 7919
	if opts.Seed == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, fmt.Errorf("deploy: seed noise rng: %w", err)
		}
		noiseSeed = int64(binary.BigEndian.Uint64(b[:]))
	}
	c.noiseRNG = mrand.New(mrand.NewSource(noiseSeed))
	c.nonceRNG = mrand.New(mrand.NewSource(noiseSeed ^ 0x5ee6a7e))
	if opts.FaultSpec != "" {
		spec, err := transport.ParseFaultSpec(opts.FaultSpec)
		if err != nil {
			return nil, err
		}
		c.inj = transport.NewFaultInjector(spec)
	}
	return c, nil
}

// Do runs one whole query: admission, the per-user encrypted uploads for
// the granted query ID, and the blocking result wait. votes[user][class]
// are the users' prediction vectors in [0, 1]. Typed admission refusals
// surface as errors matching ErrBudgetExhausted, ErrDraining,
// ErrOverloaded or ErrServeUnavailable.
func (c *ServeClient) Do(ctx context.Context, votes [][]float64) (*ServeResult, error) {
	if len(votes) != c.cfg.Users {
		return nil, fmt.Errorf("deploy: %d vote vectors for %d users", len(votes), c.cfg.Users)
	}
	nonce := c.nonceRNG.Int63()
	admitStart := time.Now()
	qid, epoch, err := c.admit(ctx, nonce)
	if err != nil {
		return nil, err
	}
	admitWait := time.Since(admitStart)
	if epoch < 0 || epoch >= len(c.pubs) {
		return nil, fmt.Errorf("deploy: query %d admitted under unprovisioned epoch %d", qid, epoch)
	}
	msgs1, msgs2, err := c.buildUploads(qid, epoch, votes)
	if err != nil {
		return nil, err
	}
	if err := c.upload(ctx, "S1", c.opts.S1Addr, msgs1); err != nil {
		return nil, err
	}
	if err := c.upload(ctx, "S2", c.opts.S2Addr, msgs2); err != nil {
		return nil, err
	}
	res, err := c.await(ctx, qid, epoch)
	if res != nil {
		res.AdmitWait = admitWait
	}
	return res, err
}

// admit requests admission, replaying the same (tenant, nonce) across
// redials so a lost reply cannot double-admit.
func (c *ServeClient) admit(ctx context.Context, nonce int64) (qid, epoch int, err error) {
	var reply []int64
	err = c.phase(ctx, "admit", func(actx context.Context, conn transport.Conn) error {
		if err := transport.SendControl(actx, conn, ctrlAdmitRequest, c.opts.Tenant, nonce); err != nil {
			return err
		}
		r, err := transport.ExpectControl(actx, conn, ctrlAdmitReply)
		if err != nil {
			return err
		}
		if len(r) < 3 {
			return transport.MarkFatal(fmt.Errorf("deploy: short admit reply %v", r))
		}
		reply = r
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	if aerr := admitError(reply[0]); aerr != nil {
		return 0, 0, fmt.Errorf("deploy: admission refused: %w", aerr)
	}
	return int(reply[1]), int(reply[2]), nil
}

// buildUploads encrypts every user's halves for the granted query ID
// under the epoch's public keys.
func (c *ServeClient) buildUploads(qid, epoch int, votes [][]float64) (msgs1, msgs2 []*transport.Message, err error) {
	pub := c.pubs[epoch]
	msgs1 = make([]*transport.Message, 0, c.cfg.Users)
	msgs2 = make([]*transport.Message, 0, c.cfg.Users)
	for user, vote := range votes {
		units, err := votesToUnits(vote, c.cfg.Classes)
		if err != nil {
			return nil, nil, fmt.Errorf("deploy: user %d: %w", user, err)
		}
		sub, _, err := protocol.BuildSubmission(c.cryptoRNG, c.noiseRNG, c.cfg, user, units, pub.PK1, pub.PK2)
		if err != nil {
			return nil, nil, fmt.Errorf("deploy: build submission for user %d: %w", user, err)
		}
		m1, err := encodeSubmission(c.cfg, user, qid, sub.ToS1)
		if err != nil {
			return nil, nil, err
		}
		m2, err := encodeSubmission(c.cfg, user, qid, sub.ToS2)
		if err != nil {
			return nil, nil, err
		}
		msgs1 = append(msgs1, m1)
		msgs2 = append(msgs2, m2)
	}
	return msgs1, msgs2, nil
}

// upload replays one server's frames until the done/ack flush barrier
// succeeds; the server deduplicates (user, query) cells, so replays after
// a mid-upload reset cannot double-count a vote.
func (c *ServeClient) upload(ctx context.Context, server, addr string, msgs []*transport.Message) error {
	err := c.phaseAt(ctx, "upload-"+server, addr, func(actx context.Context, conn transport.Conn) error {
		for _, m := range msgs {
			if err := conn.Send(actx, m); err != nil {
				return err
			}
		}
		if err := transport.SendControl(actx, conn, ctrlUploadDone, -1); err != nil {
			return err
		}
		_, err := transport.ExpectControl(actx, conn, ctrlUploadAck)
		return err
	})
	if err != nil {
		return fmt.Errorf("deploy: upload to %s: %w", server, err)
	}
	return nil
}

// await blocks on the query's result; the wait is idempotent (results
// stay queryable), so a dropped connection simply re-asks.
func (c *ServeClient) await(ctx context.Context, qid, epoch int) (*ServeResult, error) {
	var reply []int64
	err := c.phase(ctx, "result", func(actx context.Context, conn transport.Conn) error {
		if err := transport.SendControl(actx, conn, ctrlResultWait, int64(qid)); err != nil {
			return err
		}
		r, err := transport.ExpectControl(actx, conn, ctrlResultReply)
		if err != nil {
			return err
		}
		if len(r) < 4 || int(r[0]) != qid {
			return transport.MarkFatal(fmt.Errorf("deploy: bad result reply %v for query %d", r, qid))
		}
		reply = r
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("deploy: result for query %d: %w", qid, err)
	}
	res := &ServeResult{QID: qid, Epoch: epoch, Label: int(reply[2]), Attempts: int(reply[3])}
	switch reply[1] {
	case resultConsensus:
		res.Consensus = true
	case resultNoConsensus:
		res.Label = -1
	case resultQuorumMiss:
		return res, fmt.Errorf("deploy: query %d: %w", qid, protocol.ErrQuorumNotMet)
	case resultUnknown:
		return res, fmt.Errorf("deploy: query %d unknown to the server", qid)
	default:
		return res, fmt.Errorf("deploy: query %d after %d attempts: %w", qid, res.Attempts, ErrQueryFailed)
	}
	return res, nil
}

// phase runs one S1 request/response exchange with per-attempt redial.
func (c *ServeClient) phase(ctx context.Context, name string, f func(context.Context, transport.Conn) error) error {
	return c.phaseAt(ctx, name, c.opts.S1Addr, f)
}

// phaseAt runs one idempotent exchange against addr: each attempt dials a
// fresh connection, sends the serve hello and runs f under the attempt
// deadline.
func (c *ServeClient) phaseAt(ctx context.Context, name, addr string, f func(context.Context, transport.Conn) error) error {
	opts := c.opts
	var lastErr error
	for attempt := 0; attempt <= opts.MaxRetries; attempt++ {
		if attempt > 0 {
			retriesTotal("client", name).Inc()
			sleepCtx(ctx, backoffDelay(opts.Backoff, attempt))
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("deploy: %s: %w", name, err)
		}
		err := func() error {
			actx, cancel := context.WithTimeout(ctx, opts.attemptTimeout())
			defer cancel()
			d := transport.Dialer{AttemptTimeout: opts.attemptTimeout(), Faults: c.inj, Seed: opts.Seed + opts.Tenant + 31}
			conn, err := d.Dial(actx, addr)
			if err != nil {
				return err
			}
			defer conn.Close()
			stop := context.AfterFunc(actx, func() { conn.Close() })
			defer stop()
			if err := sendHelloCaps(actx, conn, partyUser, capServe); err != nil {
				return err
			}
			return f(actx, conn)
		}()
		if err == nil {
			return nil
		}
		lastErr = err
		if !attemptRetryable(ctx, err) {
			return fmt.Errorf("deploy: %s: %w", name, err)
		}
		opts.log(levelWarn, "serve client %s attempt %d failed, will retry: %v", name, attempt+1, err)
	}
	return fmt.Errorf("deploy: %s failed after %d attempts: %w", name, opts.MaxRetries+1, lastErr)
}
