package deploy

import (
	"context"
	"errors"
	"math/big"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// TestChaosUserDropoutSchedule runs a 20-user partial-participation
// deployment through a seeded dropout schedule: 25% of the users never
// connect, 10% disconnect mid-upload (and replay through the resilient
// client), and 5% send malformed shares that server-side validation must
// reject. The acceptance bar: the run terminates, every instance either
// reaches the correct consensus label over the agreed participant set or
// fails cleanly with ErrQuorumNotMet, the two servers never disagree, and
// the hostile submissions are counted as rejected.
func TestChaosUserDropoutSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos deployment test is slow in -short mode")
	}
	const (
		users     = 20
		instances = 2
		// The dropout schedule, seeded by user index: 15..19 never connect
		// (25%), 12..13 reset mid-upload and replay (10%), 14 sends
		// malformed shares (5%), 0..11 are honest.
		firstFlaky    = 12
		malformedUser = 14
		firstAbsent   = 15
	)
	s1File, s2File, pubFile, cfg := testSetup(t, users)

	rejectedBefore := submissionsRejected("bad-length").Value() +
		submissionsRejected("out-of-ring").Value()

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	partial := func(listen, peer string, seed int64, ready chan string) ServerOptions {
		return ServerOptions{
			ListenAddr:     listen,
			PeerAddr:       peer,
			Instances:      instances,
			Seed:           seed,
			Ready:          ready,
			Quorum:         0.5, // 10 of 20
			SubmitDeadline: 20 * time.Second,
			MaxRetries:     4,
			Backoff:        5 * time.Millisecond,
			AttemptTimeout: 45 * time.Second,
		}
	}
	type repResult struct {
		rep *Report
		err error
	}
	s1Ready := make(chan string, 1)
	s1Done := make(chan repResult, 1)
	go func() {
		rep, err := RunS1Report(ctx, s1File, partial("127.0.0.1:0", "", 901, s1Ready))
		s1Done <- repResult{rep, err}
	}()
	s1Addr := <-s1Ready
	s2Ready := make(chan string, 1)
	s2Done := make(chan repResult, 1)
	go func() {
		rep, err := RunS2Report(ctx, s2File, partial("127.0.0.1:0", s1Addr, 902, s2Ready))
		s2Done <- repResult{rep, err}
	}()
	s2Addr := <-s2Ready

	// Honest and flaky users all vote class 1 unanimously; any instance
	// that runs must therefore report consensus on label 1 over whatever
	// subset was agreed — a wrong label is a hard failure, not chaos noise.
	votes := make([][]float64, instances)
	for i := range votes {
		votes[i] = oneHot(cfg.Classes, 1)
	}
	present := firstAbsent - 1 // users 0..13 upload; 14 is counted separately
	userErr := make(chan error, present)
	for u := 0; u < firstAbsent; u++ {
		if u == malformedUser {
			continue
		}
		go func(u int) {
			opts := UserOptions{
				User:           u,
				S1Addr:         s1Addr,
				S2Addr:         s2Addr,
				Seed:           int64(910 + u),
				MaxRetries:     8,
				Backoff:        2 * time.Millisecond,
				AttemptTimeout: 30 * time.Second,
			}
			if u >= firstFlaky {
				// Mid-upload disconnects: a bounded seeded reset schedule
				// on the client's own connections; the resilient upload
				// replays and the collector dedups.
				opts.FaultSpec = "seed=13,reset=0.3,max=2"
			}
			userErr <- SubmitVotes(ctx, pubFile, opts, votes)
		}(u)
	}
	// The malformed user: well-framed wire messages whose payloads violate
	// the submission contract — a wrong vote-vector length for instance 0
	// and out-of-ring ciphertexts for instance 1. Both must be rejected and
	// excluded from the participant set without breaking the server.
	sendMalformed(ctx, t, s1Addr, malformedUser, cfg)
	sendMalformed(ctx, t, s2Addr, malformedUser, cfg)

	for u := 0; u < present; u++ {
		if err := <-userErr; err != nil {
			t.Fatalf("user submit under dropout schedule: %v", err)
		}
	}

	r1 := <-s1Done
	r2 := <-s2Done
	if r1.err != nil {
		t.Fatalf("S1 structural failure: %v", r1.err)
	}
	if r2.err != nil {
		t.Fatalf("S2 structural failure: %v", r2.err)
	}

	quorum := ServerOptions{Quorum: 0.5}.quorumCount(users)
	for i := 0; i < instances; i++ {
		a, b := r1.rep.Results[i], r2.rep.Results[i]
		switch {
		case a.Err == nil && b.Err == nil:
			if a.Outcome != b.Outcome {
				t.Errorf("instance %d: servers disagree: %+v vs %+v", i, a.Outcome, b.Outcome)
			}
			if !a.Outcome.Consensus || a.Outcome.Label != 1 {
				t.Errorf("instance %d: outcome %+v, want consensus on label 1 over the agreed set", i, a.Outcome)
			}
			if a.Participants < quorum || a.Participants > present {
				t.Errorf("instance %d: %d participants outside [%d, %d]", i, a.Participants, quorum, present)
			}
			if a.Participants+a.Dropped != users {
				t.Errorf("instance %d: participants %d + dropped %d != %d users", i, a.Participants, a.Dropped, users)
			}
		case errors.Is(a.Err, protocol.ErrQuorumNotMet) || errors.Is(b.Err, protocol.ErrQuorumNotMet):
			t.Logf("instance %d cleanly missed quorum: s1=%v s2=%v", i, a.Err, b.Err)
		default:
			t.Errorf("instance %d did not fail cleanly: s1=%v s2=%v", i, a.Err, b.Err)
		}
	}

	rejectedAfter := submissionsRejected("bad-length").Value() +
		submissionsRejected("out-of-ring").Value()
	if rejectedAfter <= rejectedBefore {
		t.Error("malformed submissions were not counted as rejected")
	}
}

// sendMalformed delivers two hostile-but-well-framed submission frames to
// one server: a vector of the wrong ciphertext count, and ciphertexts far
// outside the Paillier ring. In packed mode the frames are self-consistent
// KindPacked frames with the same two defects, so both wire modes exercise
// the same bad-length and out-of-ring rejection counters.
func sendMalformed(ctx context.Context, t *testing.T, addr string, user int, cfg protocol.Config) {
	t.Helper()
	conn, err := transport.Dial(ctx, addr)
	if err != nil {
		t.Fatalf("malformed user dial: %v", err)
	}
	defer conn.Close()
	if err := sendHello(ctx, conn, partyUser); err != nil {
		t.Fatalf("malformed user hello: %v", err)
	}
	frame := func(instance, k int, val *big.Int) *transport.Message {
		values := make([]*big.Int, 3*k)
		for i := range values {
			values[i] = val
		}
		if cfg.Packing {
			return &transport.Message{
				Kind: transport.KindPacked,
				Flags: []int64{int64(user), int64(instance), int64(cfg.Classes),
					int64(cfg.PackedWidth()), int64(k)},
				Values: values,
			}
		}
		return &transport.Message{
			Kind:   transport.KindShares,
			Flags:  []int64{int64(user), int64(instance), int64(k)},
			Values: values,
		}
	}
	// Instance 0: wrong per-sequence ciphertext count. Instance 1: values
	// no 64-bit (or production-size) Paillier ring can contain.
	perVec := cfg.Classes
	if cfg.Packing {
		perVec = cfg.PackedCiphertexts()
	}
	huge := new(big.Int).Lsh(big.NewInt(1), 4100)
	for _, m := range []*transport.Message{
		frame(0, perVec+1, big.NewInt(7)),
		frame(1, perVec, huge),
	} {
		if err := conn.Send(ctx, m); err != nil {
			t.Fatalf("malformed user send: %v", err)
		}
	}
}
