package deploy

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/privconsensus/privconsensus/internal/dgk"
	"github.com/privconsensus/privconsensus/internal/keystore"
	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// queriesTotal counts completed deploy-mode queries by role and outcome.
func queriesTotal(role, outcome string) *obs.Counter {
	return obs.Default.Counter("deploy_queries_total",
		"Completed deploy-mode protocol queries.",
		obs.L("role", role), obs.L("outcome", outcome))
}

// ServerOptions configures one protocol server process.
type ServerOptions struct {
	// ListenAddr accepts user submissions (and, on S1, the S2 peer
	// connection).
	ListenAddr string
	// PeerAddr is S1's address; only S2 dials it.
	PeerAddr string
	// Instances is the number of query instances to run.
	Instances int
	// Seed, when non-zero, makes protocol randomness deterministic.
	Seed int64
	// Parallelism, when non-zero, overrides the key file's protocol
	// parallelism: 1 runs the original sequential single-stream protocol,
	// anything else multiplexes the peer link and runs DGK comparisons
	// concurrently. The setting changes the wire format, so both server
	// processes must resolve to the same mode.
	Parallelism int
	// MetricsAddr, when non-empty, serves the observability admin endpoint
	// (/metrics, /healthz, /debug/pprof/*, /debug/vars) on that address.
	MetricsAddr string
	// MetricsReady, when non-nil, receives the bound admin address once it
	// is serving (lets tests and scripts use port 0).
	MetricsReady chan<- string
	// MetricsLinger keeps the admin endpoint up for this long after the
	// last instance finishes (bounded by ctx), so scrapers can read final
	// counters from a short-lived run.
	MetricsLinger time.Duration
	// Logf receives progress lines; nil silences logging with no
	// formatting cost.
	Logf func(format string, args ...any)
	// Ready, when non-nil, receives the bound listen address once the
	// server is accepting (lets tests use port 0).
	Ready chan<- string
}

// announceReady reports the bound address to the Ready channel, if any.
func (o ServerOptions) announceReady(addr string) {
	if o.Ready != nil {
		o.Ready <- addr
	}
}

// logLevel tags deploy log lines.
type logLevel int

const (
	levelInfo logLevel = iota
	levelWarn
)

// log is the single leveled logging helper every deploy log site goes
// through. A nil Logf returns before any formatting work happens; warnings
// are prefixed so a plain sink still distinguishes them.
func (o ServerOptions) log(lv logLevel, format string, args ...any) {
	if o.Logf == nil {
		return
	}
	if lv == levelWarn {
		format = "WARN " + format
	}
	o.Logf(format, args...)
}

// validate checks the options.
func (o ServerOptions) validate() error {
	if o.Instances < 1 {
		return fmt.Errorf("deploy: need at least 1 instance, got %d", o.Instances)
	}
	return nil
}

// adminHandle is a running admin endpoint tied to one server run.
type adminHandle struct {
	srv    *obs.AdminServer
	linger time.Duration
}

// startAdmin serves the observability endpoint if MetricsAddr is set.
func (o ServerOptions) startAdmin() (*adminHandle, error) {
	if o.MetricsAddr == "" {
		return nil, nil
	}
	srv, err := obs.StartAdmin(o.MetricsAddr, nil)
	if err != nil {
		return nil, err
	}
	o.log(levelInfo, "metrics endpoint on http://%s/metrics", srv.Addr)
	if o.MetricsReady != nil {
		o.MetricsReady <- srv.Addr
	}
	return &adminHandle{srv: srv, linger: o.linger()}, nil
}

// linger returns the configured post-run admin lifetime.
func (o ServerOptions) linger() time.Duration { return o.MetricsLinger }

// close keeps the endpoint up for the linger window (cut short when ctx
// ends), then shuts it down. Safe on a nil handle.
func (h *adminHandle) close(ctx context.Context) {
	if h == nil {
		return
	}
	if h.linger > 0 {
		select {
		case <-time.After(h.linger):
		case <-ctx.Done():
		}
	}
	h.srv.Close()
}

// runInstance executes one query instance with full observability: a fresh
// meter and tracer, phase spans from the protocol engine, traffic bridged
// into the trace, a one-line summary log, and errors that name the failing
// phase. The summary logs quantities only — never votes, shares or keys.
func runInstance(ctx context.Context, role string, i int, opts ServerOptions,
	run func(ctx context.Context, meter *transport.Meter) (*protocol.Outcome, error)) (*protocol.Outcome, error) {
	meter := transport.NewMeter()
	tracer := obs.NewTracer(fmt.Sprintf("%s-q%d", role, i))
	paillier.WatchOps(tracer)
	dgk.WatchOps(tracer)
	out, err := run(obs.WithTracer(ctx, tracer), meter)
	meter.FillTrace(tracer)
	if err != nil {
		phase := tracer.OpenPhase()
		tracer.Finish("error", err)
		queriesTotal(role, "error").Inc()
		opts.log(levelWarn, "%s", tracer.Trace().Summary())
		if phase != "" {
			return nil, fmt.Errorf("deploy: %s instance %d (phase %q): %w", role, i, phase, err)
		}
		return nil, fmt.Errorf("deploy: %s instance %d: %w", role, i, err)
	}
	result := "no-consensus"
	if out.Consensus {
		result = fmt.Sprintf("consensus label=%d", out.Label)
	}
	tracer.Finish(result, nil)
	queriesTotal(role, result0(out)).Inc()
	opts.log(levelInfo, "%s", tracer.Trace().Summary())
	return out, nil
}

// result0 maps an outcome to its metric label.
func result0(out *protocol.Outcome) string {
	if out.Consensus {
		return "consensus"
	}
	return "no-consensus"
}

// RunS1 runs server S1: it listens for all users and for S2, collects the
// submissions, executes Alg. 5 once per instance over the peer connection,
// and returns the outcomes.
func RunS1(ctx context.Context, file *keystore.S1File, opts ServerOptions) ([]protocol.Outcome, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	keys, err := file.KeysS1()
	if err != nil {
		return nil, err
	}
	cfg := file.Config
	if opts.Parallelism != 0 {
		cfg.Parallelism = opts.Parallelism
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	admin, err := opts.startAdmin()
	if err != nil {
		return nil, err
	}
	defer admin.close(ctx)

	l, err := transport.Listen(opts.ListenAddr)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	opts.log(levelInfo, "S1 listening on %s", l.Addr())
	opts.announceReady(l.Addr())

	col := newCollector(cfg.Users, opts.Instances, cfg.Classes)
	peerCh := make(chan transport.Conn, 1)
	acceptErr := make(chan error, 1)
	acceptCtx, stopAccept := context.WithCancel(ctx)
	defer stopAccept()

	go acceptLoop(acceptCtx, l, col, peerCh, acceptErr, opts)

	// Wait for the peer and all submissions.
	var peer transport.Conn
	select {
	case peer = <-peerCh:
	case err := <-acceptErr:
		return nil, err
	case <-ctx.Done():
		return nil, fmt.Errorf("deploy: waiting for S2: %w", ctx.Err())
	}
	defer peer.Close()
	opts.log(levelInfo, "S1 connected to peer S2")
	if err := col.wait(ctx); err != nil {
		return nil, err
	}
	stopAccept()
	opts.log(levelInfo, "S1 received all %d×%d submissions", cfg.Users, opts.Instances)

	rng := newRNG(opts.Seed)
	outcomes := make([]protocol.Outcome, opts.Instances)
	for i := 0; i < opts.Instances; i++ {
		out, err := runInstance(ctx, "s1", i, opts, func(qctx context.Context, meter *transport.Meter) (*protocol.Outcome, error) {
			return protocol.RunS1(qctx, rng, cfg, keys, peer, col.instance(i), meter)
		})
		if err != nil {
			return nil, err
		}
		outcomes[i] = *out
	}
	return outcomes, nil
}

// RunS2 runs server S2: it listens for users on its own address, dials S1
// for the protocol channel, and mirrors S1's per-instance execution.
func RunS2(ctx context.Context, file *keystore.S2File, opts ServerOptions) ([]protocol.Outcome, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.PeerAddr == "" {
		return nil, fmt.Errorf("deploy: S2 requires the S1 peer address")
	}
	keys, err := file.KeysS2()
	if err != nil {
		return nil, err
	}
	cfg := file.Config
	if opts.Parallelism != 0 {
		cfg.Parallelism = opts.Parallelism
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	admin, err := opts.startAdmin()
	if err != nil {
		return nil, err
	}
	defer admin.close(ctx)

	l, err := transport.Listen(opts.ListenAddr)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	opts.log(levelInfo, "S2 listening on %s", l.Addr())
	opts.announceReady(l.Addr())

	col := newCollector(cfg.Users, opts.Instances, cfg.Classes)
	acceptErr := make(chan error, 1)
	acceptCtx, stopAccept := context.WithCancel(ctx)
	defer stopAccept()
	go acceptLoop(acceptCtx, l, col, nil, acceptErr, opts)

	peer, err := transport.Dial(ctx, opts.PeerAddr)
	if err != nil {
		return nil, fmt.Errorf("deploy: dial S1: %w", err)
	}
	defer peer.Close()
	if err := sendHello(ctx, peer, partyPeer); err != nil {
		return nil, err
	}
	opts.log(levelInfo, "S2 connected to peer S1 at %s", opts.PeerAddr)

	if err := col.wait(ctx); err != nil {
		return nil, err
	}
	stopAccept()
	opts.log(levelInfo, "S2 received all %d×%d submissions", cfg.Users, opts.Instances)

	// Derive a distinct deterministic stream from S1's only when seeded;
	// seed 0 must stay crypto/rand.
	seed := opts.Seed
	if seed != 0 {
		seed++
	}
	rng := newRNG(seed)
	outcomes := make([]protocol.Outcome, opts.Instances)
	for i := 0; i < opts.Instances; i++ {
		out, err := runInstance(ctx, "s2", i, opts, func(qctx context.Context, meter *transport.Meter) (*protocol.Outcome, error) {
			return protocol.RunS2(qctx, rng, cfg, keys, peer, col.instance(i), meter)
		})
		if err != nil {
			return nil, err
		}
		outcomes[i] = *out
	}
	return outcomes, nil
}

// acceptLoop classifies inbound connections by their hello frame: user
// connections feed the collector, the (single) peer connection is handed
// to peerCh. Errors on individual user connections are logged and the
// connection dropped; structural errors abort via errCh.
func acceptLoop(ctx context.Context, l *transport.Listener, col *collector,
	peerCh chan<- transport.Conn, errCh chan<- error, opts ServerOptions) {
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-ctx.Done():
			default:
				select {
				case errCh <- fmt.Errorf("deploy: accept: %w", err):
				default:
				}
			}
			return
		}
		go func(conn transport.Conn) {
			party, err := recvHello(ctx, conn)
			if err != nil {
				opts.log(levelWarn, "dropping connection with bad hello: %v", err)
				conn.Close()
				return
			}
			switch party {
			case partyPeer:
				if peerCh == nil {
					opts.log(levelWarn, "unexpected peer hello on this server; dropping")
					conn.Close()
					return
				}
				select {
				case peerCh <- conn:
				default:
					opts.log(levelWarn, "duplicate peer connection; dropping")
					conn.Close()
				}
			case partyUser:
				if err := serveUserConn(ctx, conn, col); err != nil {
					opts.log(levelWarn, "user connection error: %v", err)
				}
				conn.Close()
			}
		}(conn)
	}
}

// DefaultLogger returns a stdlib-backed log sink for the CLIs with
// microsecond timestamps. prefix typically identifies the role ("s1: ");
// per-query lines already carry the query ID (query=s1-q3) from the trace
// summary.
func DefaultLogger(prefix string) func(string, ...any) {
	l := log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	return func(format string, args ...any) {
		l.Printf(prefix+format, args...)
	}
}
