package deploy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/big"
	"os"
	"strings"
	"time"

	"github.com/privconsensus/privconsensus/internal/dgk"
	"github.com/privconsensus/privconsensus/internal/ingest"
	"github.com/privconsensus/privconsensus/internal/keystore"
	"github.com/privconsensus/privconsensus/internal/mathutil"
	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// queriesTotal counts completed deploy-mode queries by role and outcome.
func queriesTotal(role, outcome string) *obs.Counter {
	return obs.Default.Counter("deploy_queries_total",
		"Completed deploy-mode protocol queries.",
		obs.L("role", role), obs.L("outcome", outcome))
}

// ServerOptions configures one protocol server process.
type ServerOptions struct {
	// ListenAddr accepts user submissions (and, on S1, the S2 peer
	// connection).
	ListenAddr string
	// PeerAddr is S1's address; only S2 dials it.
	PeerAddr string
	// Instances is the number of query instances to run.
	Instances int
	// Seed, when non-zero, makes protocol randomness deterministic.
	Seed int64
	// Parallelism, when non-zero, overrides the key file's protocol
	// parallelism: 1 runs the original sequential single-stream protocol,
	// anything else multiplexes the peer link and runs DGK comparisons
	// concurrently. The setting changes the wire format, so both server
	// processes must resolve to the same mode.
	Parallelism int
	// ArgmaxStrategy, when non-empty, overrides the key file's argmax
	// strategy (protocol.StrategyTournament or protocol.StrategyAllPairs;
	// empty resolves to tournament). The strategy changes the wire format,
	// so both server processes must resolve to the same one — the peer
	// hello carries it as a capability bit and S1 rejects a mismatch.
	ArgmaxStrategy string
	// Packing overrides the key file's slot-packing mode: "on", "off", or
	// "" to keep the key file's setting. Packing changes the wire format
	// for submissions and the aggregation phase, so both servers, every
	// relay and every user must resolve to the same mode — the peer hello
	// carries it as a capability bit and S1 rejects a mismatch.
	Packing string
	// MetricsAddr, when non-empty, serves the observability admin endpoint
	// (/metrics, /healthz, /debug/pprof/*, /debug/vars) on that address.
	MetricsAddr string
	// MetricsReady, when non-nil, receives the bound admin address once it
	// is serving (lets tests and scripts use port 0).
	MetricsReady chan<- string
	// MetricsLinger keeps the admin endpoint up for this long after the
	// last instance finishes (bounded by ctx), so scrapers can read final
	// counters from a short-lived run.
	MetricsLinger time.Duration
	// Logf receives progress lines; nil silences logging with no
	// formatting cost.
	Logf func(format string, args ...any)
	// Ready, when non-nil, receives the bound listen address once the
	// server is accepting (lets tests use port 0).
	Ready chan<- string
	// MaxRetries enables session resilience: each query instance may be
	// retried up to this many times on transient I/O failures, with the
	// peer link re-established between attempts. 0 (the default) disables
	// the session protocol entirely and keeps the wire format identical
	// to the pre-resilience protocol. Both servers must agree on whether
	// resilience is on, like Parallelism.
	MaxRetries int
	// Backoff is the delay before the first retry (default 50ms); it
	// doubles per retry, capped at 16×.
	Backoff time.Duration
	// AttemptTimeout bounds every attempt and every reconnect wait
	// (default 2m), so a stalled attempt is recycled instead of hanging.
	AttemptTimeout time.Duration
	// FaultSpec, when non-empty, injects deterministic faults into every
	// connection this server accepts or dials (see
	// transport.ParseFaultSpec). Testing only.
	FaultSpec string
	// Quorum enables partial participation: the minimum number of users a
	// query instance needs to run. A value in (0, 1) is a fraction of the
	// configured users (rounded up); >= 1 an absolute count. An instance
	// released with fewer participants fails cleanly with
	// protocol.ErrQuorumNotMet instead of running. Both servers must agree
	// on the partial-participation settings, like Parallelism.
	Quorum float64
	// SubmitDeadline bounds how long the collector waits for user
	// submissions: when it elapses, every instance proceeds with whoever
	// showed up (subject to Quorum). 0 with Quorum set falls back to
	// AttemptTimeout as the submission window; 0 with Quorum unset keeps
	// the full-participation wait (the default, wire-identical to the
	// pre-partial protocol).
	SubmitDeadline time.Duration
	// JournalPath, when non-empty, appends every query's spans and
	// lifecycle events (rejections, retries, faults, quorum decisions, δ
	// corrections) to a hash-chained JSONL journal at this path, and
	// enables cross-process trace propagation: S1 mints a per-run trace ID
	// and pushes it to S2 and tracing users over a capability-negotiated
	// ctrl frame. Both servers must agree on whether tracing is on, like
	// Parallelism. Empty (the default) keeps the wire byte-for-byte the
	// untraced protocol.
	JournalPath string
	// LogLevel filters Logf output: "debug", "info" (the default), "warn"
	// or "silent".
	LogLevel string
}

// resilient reports whether the session-resilience protocol is enabled.
func (o ServerOptions) resilient() bool { return o.MaxRetries > 0 }

// attemptTimeout returns the per-attempt deadline with its default.
func (o ServerOptions) attemptTimeout() time.Duration {
	if o.AttemptTimeout > 0 {
		return o.AttemptTimeout
	}
	return 2 * time.Minute
}

// faults builds the server's fault injector from FaultSpec (nil when
// unset).
func (o ServerOptions) faults() (*transport.FaultInjector, error) {
	if o.FaultSpec == "" {
		return nil, nil
	}
	spec, err := transport.ParseFaultSpec(o.FaultSpec)
	if err != nil {
		return nil, err
	}
	if !spec.Enabled() {
		return nil, nil
	}
	return transport.NewFaultInjector(spec), nil
}

// announceReady reports the bound address to the Ready channel, if any.
func (o ServerOptions) announceReady(addr string) {
	if o.Ready != nil {
		o.Ready <- addr
	}
}

// logLevel tags deploy log lines.
type logLevel int

const (
	levelDebug logLevel = iota
	levelInfo
	levelWarn
	levelSilent // threshold only: no line logs at this level
)

// parseLogLevel resolves a -log-level value ("" defaults to info).
func parseLogLevel(s string) (logLevel, error) {
	switch s {
	case "debug":
		return levelDebug, nil
	case "", "info":
		return levelInfo, nil
	case "warn":
		return levelWarn, nil
	case "silent":
		return levelSilent, nil
	}
	return levelInfo, fmt.Errorf("deploy: unknown log level %q (want debug, info, warn or silent)", s)
}

// minLevel resolves the configured threshold; unknown values were caught
// by validate, so here they just fall back to info.
func (o ServerOptions) minLevel() logLevel {
	lv, err := parseLogLevel(o.LogLevel)
	if err != nil {
		return levelInfo
	}
	return lv
}

// log is the single leveled logging helper every deploy log site goes
// through. A nil Logf or a line below the configured threshold returns
// before any formatting work happens; warnings are prefixed so a plain
// sink still distinguishes them.
func (o ServerOptions) log(lv logLevel, format string, args ...any) {
	if o.Logf == nil || lv < o.minLevel() {
		return
	}
	if lv == levelWarn {
		format = "WARN " + format
	}
	o.Logf(format, args...)
}

// validate checks the options.
func (o ServerOptions) validate() error {
	if o.Instances < 1 {
		return fmt.Errorf("deploy: need at least 1 instance, got %d", o.Instances)
	}
	if o.Quorum < 0 {
		return fmt.Errorf("deploy: negative quorum %g", o.Quorum)
	}
	if o.SubmitDeadline < 0 {
		return fmt.Errorf("deploy: negative submit deadline %v", o.SubmitDeadline)
	}
	if _, err := parseLogLevel(o.LogLevel); err != nil {
		return err
	}
	if err := checkPackingMode(o.Packing); err != nil {
		return err
	}
	return nil
}

// checkPackingMode validates a -packed override value.
func checkPackingMode(mode string) error {
	switch mode {
	case "", "on", "off":
		return nil
	}
	return fmt.Errorf("deploy: unknown packing mode %q (want \"on\", \"off\" or empty)", mode)
}

// applyPacking resolves a -packed override onto the config ("" keeps the
// key file's setting).
func applyPacking(cfg *protocol.Config, mode string) {
	switch mode {
	case "on":
		cfg.Packing = true
	case "off":
		cfg.Packing = false
	}
}

// adminHandle is a running admin endpoint tied to one server run.
type adminHandle struct {
	srv    *obs.AdminServer
	linger time.Duration
}

// startAdmin serves the observability endpoint if MetricsAddr is set.
func (o ServerOptions) startAdmin() (*adminHandle, error) {
	if o.MetricsAddr == "" {
		return nil, nil
	}
	srv, err := obs.StartAdmin(o.MetricsAddr, nil)
	if err != nil {
		return nil, err
	}
	o.log(levelInfo, "metrics endpoint on http://%s/metrics", srv.Addr)
	if o.MetricsReady != nil {
		o.MetricsReady <- srv.Addr
	}
	return &adminHandle{srv: srv, linger: o.linger()}, nil
}

// linger returns the configured post-run admin lifetime.
func (o ServerOptions) linger() time.Duration { return o.MetricsLinger }

// close keeps the endpoint up for the linger window (cut short when ctx
// ends), then shuts it down. Safe on a nil handle.
func (h *adminHandle) close(ctx context.Context) {
	if h == nil {
		return
	}
	if h.linger > 0 {
		select {
		case <-time.After(h.linger):
		case <-ctx.Done():
		}
	}
	h.srv.Close()
}

// runInstance executes one query instance with full observability: a fresh
// meter and tracer, phase spans from the protocol engine, traffic bridged
// into the trace, a one-line summary log, errors that name the failing
// phase, and — when journaling is on — the completed trace appended to the
// event journal and the /debug/traces ring. The summary and journal record
// quantities only — never votes, shares or keys.
func runInstance(ctx context.Context, s *serverSetup, role string, i, attempt, participants, dropped int, opts ServerOptions,
	run func(ctx context.Context, meter *transport.Meter) (*protocol.Outcome, error)) (*protocol.Outcome, error) {
	meter := transport.NewMeter()
	tracer := obs.NewTracer(fmt.Sprintf("%s-q%d", role, i))
	tracer.SetAttempt(attempt + 1)
	tracer.SetParticipants(participants, dropped)
	paillier.WatchOps(tracer)
	dgk.WatchOps(tracer)
	mathutil.WatchOps(tracer)
	out, err := run(obs.WithTracer(ctx, tracer), meter)
	meter.FillTrace(tracer)
	if err != nil {
		phase := tracer.OpenPhase()
		tracer.Finish("error", err)
		queriesTotal(role, "error").Inc()
		finishInstanceTrace(s, tracer, i, attempt, opts, levelWarn)
		if phase != "" {
			return nil, fmt.Errorf("deploy: %s instance %d (phase %q): %w", role, i, phase, err)
		}
		return nil, fmt.Errorf("deploy: %s instance %d: %w", role, i, err)
	}
	result := "no-consensus"
	if out.Consensus {
		result = fmt.Sprintf("consensus label=%d", out.Label)
	}
	tracer.Finish(result, nil)
	queriesTotal(role, result0(out)).Inc()
	finishInstanceTrace(s, tracer, i, attempt, opts, levelInfo)
	return out, nil
}

// finishInstanceTrace publishes a sealed per-instance trace: summary log
// line, /debug/traces ring, and — when journaling is on — the span and
// annotation events with the query's closing record.
func finishInstanceTrace(s *serverSetup, tracer *obs.Tracer, i, attempt int, opts ServerOptions, lv logLevel) {
	qt := tracer.Trace()
	opts.log(lv, "%s", qt.Summary())
	obs.DefaultTraces.Add(qt)
	if s == nil || s.journal == nil {
		return
	}
	if err := s.journal.AppendTrace(i, attempt+1, qt); err != nil {
		opts.log(levelWarn, "journal append failed: %v", err)
	}
}

// result0 maps an outcome to its metric label.
func result0(out *protocol.Outcome) string {
	if out.Consensus {
		return "consensus"
	}
	return "no-consensus"
}

// serverSetup bundles the state shared by both servers' run paths.
type serverSetup struct {
	cfg     protocol.Config
	admin   *adminHandle
	l       *transport.Listener
	col     *collector
	faults  *transport.FaultInjector
	journal *obs.Journal
	trace   *traceState
}

// setupServer performs the option validation, admin endpoint, listener,
// collector, journal and trace-state setup common to S1 and S2. ring is
// the N² modulus every stored ciphertext must live in (the peer's Paillier
// key — submissions held by one server are encrypted under the other
// server's public key).
func setupServer(ctx context.Context, role string, cfg protocol.Config, opts ServerOptions, ring *big.Int) (*serverSetup, error) {
	if opts.Parallelism != 0 {
		cfg.Parallelism = opts.Parallelism
	}
	if opts.ArgmaxStrategy != "" {
		cfg.ArgmaxStrategy = opts.ArgmaxStrategy
	}
	applyPacking(&cfg, opts.Packing)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	obs.SetBuildInfo(nil, cfg.ResolvedArgmaxStrategy(), cfg.ResolvedParallelism())
	inj, err := opts.faults()
	if err != nil {
		return nil, err
	}
	admin, err := opts.startAdmin()
	if err != nil {
		return nil, err
	}
	s := &serverSetup{
		cfg:    cfg,
		admin:  admin,
		faults: inj,
		trace:  newTraceState(),
	}
	if opts.traced() {
		s.journal, err = obs.OpenJournal(opts.JournalPath, obs.JournalOptions{Role: strings.ToLower(role)})
		if err != nil {
			admin.close(ctx)
			return nil, err
		}
		opts.log(levelDebug, "%s journaling to %s", role, opts.JournalPath)
	}
	switch {
	case !opts.traced():
		// Untraced servers answer tracing users immediately with ID 0.
		s.trace.put(0)
	case role == "S1":
		// S1 mints the run's trace identity at startup, so the accept loop
		// can hand it to S2 and users without waiting.
		id, err := mintTraceID(opts.Seed)
		if err != nil {
			s.journal.Close()
			admin.close(ctx)
			return nil, err
		}
		s.adoptTraceID(id, opts)
	}
	// S2 traced: the ID arrives from S1 on the first peer connection.
	if s.journal != nil {
		inj.SetObserver(func(kind string) {
			s.journalEvent(opts, obs.Event{Type: obs.EventFault, Instance: -1, Note: kind})
		})
	}
	l, err := transport.Listen(opts.ListenAddr)
	if err != nil {
		s.journal.Close()
		admin.close(ctx)
		return nil, err
	}
	l.SetFaults(inj)
	opts.log(levelInfo, "%s listening on %s", role, l.Addr())
	opts.announceReady(l.Addr())
	s.l = l
	perVec := cfg.Classes
	if cfg.Packing {
		perVec = cfg.PackedCiphertexts()
	}
	s.col = newCollector(cfg.Users, opts.Instances, perVec, ring)
	if cfg.Packing {
		s.col.packed = &ingest.PackedParams{
			Width:    cfg.PackedWidth(),
			PerVec:   cfg.PackedCiphertexts(),
			Headroom: cfg.PackedHeadroomBits(),
		}
		s.col.packedClasses = cfg.Classes
	}
	if s.journal != nil {
		s.col.events = func(reason string) {
			s.journalEvent(opts, obs.Event{Type: obs.EventRejection, Instance: -1, Note: reason})
		}
	}
	return s, nil
}

// collectSubmissions waits for user submissions per the participation mode:
// full participation by default, or the quorum/deadline release when
// partial participation is enabled. role is the metric label ("s1"/"s2").
func collectSubmissions(ctx context.Context, s *serverSetup, opts ServerOptions, role string) error {
	if !opts.partial() {
		if err := s.col.wait(ctx); err != nil {
			return err
		}
		opts.log(levelInfo, "%s received all %d×%d submissions", strings.ToUpper(role), s.cfg.Users, opts.Instances)
		return nil
	}
	if err := s.col.waitQuorum(ctx, opts.submitWindow(), role); err != nil {
		return err
	}
	got, want := s.col.counts()
	opts.log(levelInfo, "%s released submissions with %d of %d cells filled (quorum %d of %d users per instance)",
		strings.ToUpper(role), got, want, opts.quorumCount(s.cfg.Users), s.cfg.Users)
	return nil
}

// prepareSubs resolves one instance's submissions on either server as
// aggregation groups (relay batches whole, direct users as singletons): in
// partial mode it runs the participant exchange (S1 proposes, S2
// intersects) and masks the grid by the agreed set; otherwise it returns
// the full grid. It reports the participant count alongside, and
// protocol.ErrQuorumNotMet (no protocol traffic follows) when the agreed
// set is below quorum.
func prepareSubs(ctx context.Context, s *serverSetup, opts ServerOptions, role string,
	peer transport.Conn, i int) ([]protocol.Group, int, error) {
	if !opts.partial() {
		// Full participation: the quorum decision is trivial but still
		// journaled so every instance's timeline starts the same way.
		s.journalEvent(opts, obs.Event{Type: obs.EventQuorum, Instance: i,
			Note: fmt.Sprintf("participants=%d dropped=0 quorum=%d", s.cfg.Users, s.cfg.Users)})
		groups, err := s.col.instanceGroups(i)
		if err != nil {
			return nil, 0, err
		}
		return groups, s.cfg.Users, nil
	}
	local := s.col.bitmap(i)
	var (
		agreed *big.Int
		err    error
	)
	if role == "s1" {
		agreed, err = exchangeParticipantsS1(ctx, peer, i, local)
	} else {
		agreed, err = exchangeParticipantsS2(ctx, peer, i, local)
	}
	if err != nil {
		return nil, 0, err
	}
	participants := popcount(agreed)
	obs.Participants(role).Set(float64(participants))
	s.journalEvent(opts, obs.Event{Type: obs.EventQuorum, Instance: i,
		Note: fmt.Sprintf("participants=%d dropped=%d quorum=%d",
			participants, s.cfg.Users-participants, opts.quorumCount(s.cfg.Users))})
	if participants < opts.quorumCount(s.cfg.Users) {
		queriesTotal(role, "quorum-not-met").Inc()
		opts.log(levelWarn, "%s instance %d released %d of %d users, below quorum %d",
			role, i, participants, s.cfg.Users, opts.quorumCount(s.cfg.Users))
		return nil, participants, fmt.Errorf("deploy: instance %d has %d of %d participants: %w",
			i, participants, s.cfg.Users, protocol.ErrQuorumNotMet)
	}
	groups, err := s.col.maskedGroups(i, agreed)
	if err != nil {
		return nil, participants, err
	}
	return groups, participants, nil
}

// RunS1 runs server S1: it listens for all users and for S2, collects the
// submissions, executes Alg. 5 once per instance over the peer connection,
// and returns the outcomes. Any failed instance is returned as an error;
// use RunS1Report to get per-instance results with graceful degradation.
func RunS1(ctx context.Context, file *keystore.S1File, opts ServerOptions) ([]protocol.Outcome, error) {
	rep, err := RunS1Report(ctx, file, opts)
	if err != nil {
		return nil, err
	}
	if ferr := rep.FirstErr(); ferr != nil {
		return nil, ferr
	}
	return rep.Outcomes(), nil
}

// RunS1Report runs server S1 and returns a per-instance Report. With
// MaxRetries == 0 it speaks the original wire protocol and aborts on the
// first instance error; with MaxRetries > 0 it leads the resilient session
// protocol — transient I/O failures are retried on a fresh peer connection
// up to the budget, and an instance that exhausts its budget is recorded
// as failed while the rest of the batch completes.
func RunS1Report(ctx context.Context, file *keystore.S1File, opts ServerOptions) (*Report, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	keys, err := file.KeysS1()
	if err != nil {
		return nil, err
	}
	keys.Precompute() // build fixed-base tables once at key load
	s, err := setupServer(ctx, "S1", file.Config, opts, ringOf(keys.PeerPub))
	if err != nil {
		return nil, err
	}
	defer s.admin.close(ctx)
	defer s.journal.Close()
	defer s.l.Close()

	var (
		peerCh chan peerConn
		ps     *peerSource
	)
	if opts.resilient() {
		ps = newPeerSource()
		defer ps.close()
	} else {
		peerCh = make(chan peerConn, 1)
	}
	acceptErr := make(chan error, 1)
	acceptCtx, stopAccept := context.WithCancel(ctx)
	defer stopAccept()
	go acceptLoop(acceptCtx, s, peerCh, ps, acceptErr, opts)

	if !opts.resilient() {
		return runS1Legacy(ctx, keys, s, opts, peerCh, acceptErr, stopAccept)
	}

	// Resilient path: claim the initial peer link, verify it speaks the
	// session protocol, then lead the per-instance session. The accept
	// loop keeps running so S2 reconnections land in the peerSource.
	awaitCtx, cancel := context.WithTimeout(ctx, opts.attemptTimeout())
	peer, caps, err := ps.await(awaitCtx)
	cancel()
	if err != nil {
		select {
		case aerr := <-acceptErr:
			return nil, aerr
		default:
		}
		return nil, err
	}
	if err := checkPeerCaps(caps, opts, s.cfg); err != nil {
		peer.Close()
		return nil, err
	}
	opts.log(levelInfo, "S1 connected to peer S2 (resilient session, budget %d retries)", opts.MaxRetries)
	if err := collectSubmissions(ctx, s, opts, "s1"); err != nil {
		peer.Close()
		return nil, err
	}
	return runS1Session(ctx, keys, s, opts, ps, peer)
}

// ringOf returns the Paillier ciphertext ring bound N² (nil for a nil key).
func ringOf(pk *paillier.PublicKey) *big.Int {
	if pk == nil {
		return nil
	}
	return pk.N2
}

// runS1Legacy is the pre-resilience S1 flow: single peer connection,
// sequential instances, abort on first error. Its wire format is
// byte-for-byte the original protocol.
func runS1Legacy(ctx context.Context, keys protocol.KeysS1, s *serverSetup, opts ServerOptions,
	peerCh chan peerConn, acceptErr chan error, stopAccept func()) (*Report, error) {
	var pc peerConn
	select {
	case pc = <-peerCh:
	case err := <-acceptErr:
		return nil, err
	case <-ctx.Done():
		return nil, fmt.Errorf("deploy: waiting for S2: %w", ctx.Err())
	}
	peer := pc.conn
	defer peer.Close()
	if err := checkPeerCaps(pc.caps, opts, s.cfg); err != nil {
		return nil, err
	}
	opts.log(levelInfo, "S1 connected to peer S2")
	if err := collectSubmissions(ctx, s, opts, "s1"); err != nil {
		return nil, err
	}
	stopAccept()

	rng := newRNG(opts.Seed)
	results := make([]InstanceResult, 0, opts.Instances)
	for i := 0; i < opts.Instances; i++ {
		groups, participants, err := prepareSubs(ctx, s, opts, "s1", peer, i)
		if err != nil {
			if errors.Is(err, protocol.ErrQuorumNotMet) {
				results = append(results, quorumMissResult(i, 1, participants, s.cfg.Users, err))
				continue
			}
			return nil, err
		}
		out, err := runInstance(ctx, s, "s1", i, 0, participants, s.cfg.Users-participants, opts,
			func(qctx context.Context, meter *transport.Meter) (*protocol.Outcome, error) {
				return protocol.RunS1Groups(qctx, rng, s.cfg, keys, peer, groups, meter)
			})
		if err != nil {
			return nil, err
		}
		results = append(results, InstanceResult{Instance: i, Outcome: *out, Attempts: 1,
			Participants: participants, Dropped: s.cfg.Users - participants})
	}
	return &Report{Results: results}, nil
}

// quorumMissResult is the clean per-instance failure for a below-quorum
// release: no protocol ran, the error is terminal, and the participant
// counts are preserved for the report.
func quorumMissResult(i, attempts, participants, users int, err error) InstanceResult {
	return InstanceResult{
		Instance:     i,
		Outcome:      protocol.Outcome{Consensus: false, Label: -1, Participants: participants},
		Attempts:     attempts,
		Participants: participants,
		Dropped:      users - participants,
		Err:          err,
	}
}

// runS1Session leads the resilient session: for each instance it announces
// a begin frame carrying the previous instance's authoritative status,
// runs the protocol under the attempt deadline, and on a transient failure
// discards the connection and retries on a fresh one. Every wait is
// bounded, so the loop terminates even if the peer vanishes.
func runS1Session(ctx context.Context, keys protocol.KeysS1, s *serverSetup, opts ServerOptions,
	ps *peerSource, peer transport.Conn) (*Report, error) {
	rng := newRNG(opts.Seed)
	results := make([]InstanceResult, opts.Instances)
	prev := statusNone
	for i := 0; i < opts.Instances; i++ {
		res := InstanceResult{Instance: i, Outcome: protocol.Outcome{Consensus: false, Label: -1}}
		var lastErr error
		participants := s.cfg.Users
		for attempt := 0; attempt <= opts.MaxRetries; attempt++ {
			res.Attempts = attempt + 1
			if attempt > 0 {
				retriesTotal("s1", "instance").Inc()
				s.journalEvent(opts, obs.Event{Type: obs.EventRetry, Instance: i, Attempt: attempt + 1, Note: "instance"})
				sleepCtx(ctx, backoffDelay(opts.Backoff, attempt))
			}
			if err := ctx.Err(); err != nil {
				lastErr = err
				break
			}
			if peer == nil {
				awaitCtx, cancel := context.WithTimeout(ctx, opts.attemptTimeout())
				var err error
				peer, _, err = ps.await(awaitCtx)
				cancel()
				if err != nil {
					lastErr = err
					retriesTotal("s1", "reconnect").Inc()
					s.journalEvent(opts, obs.Event{Type: obs.EventRetry, Instance: i, Note: "reconnect"})
					continue
				}
			} else {
				peer = ps.takeNewer(peer)
			}
			actx, cancel := context.WithTimeout(ctx, opts.attemptTimeout())
			out, err := func() (*protocol.Outcome, error) {
				if err := sendBegin(actx, peer, i, attempt, prev); err != nil {
					return nil, fmt.Errorf("deploy: begin instance %d: %w", i, err)
				}
				groups, p, err := prepareSubs(actx, s, opts, "s1", peer, i)
				participants = p
				if err != nil {
					return nil, err
				}
				return runInstance(actx, s, "s1", i, attempt, participants, s.cfg.Users-participants, opts,
					func(qctx context.Context, meter *transport.Meter) (*protocol.Outcome, error) {
						return protocol.RunS1Groups(qctx, rng, s.cfg, keys, peer, groups, meter)
					})
			}()
			cancel()
			if err == nil {
				res.Outcome = *out
				lastErr = nil
				break
			}
			lastErr = err
			if errors.Is(err, protocol.ErrQuorumNotMet) {
				// Nothing went wrong on the wire and both servers reached
				// the same verdict; keep the connection and stop retrying.
				break
			}
			// An attempt that failed mid-protocol leaves unknown bytes in
			// flight; always start the next attempt on a fresh connection.
			peer.Close()
			peer = nil
			if !attemptRetryable(ctx, err) {
				break
			}
			opts.log(levelWarn, "S1 instance %d attempt %d failed, will retry: %v", i, attempt+1, err)
		}
		res.Participants = participants
		res.Dropped = s.cfg.Users - participants
		if lastErr != nil {
			res.Err = lastErr
			if !errors.Is(lastErr, protocol.ErrQuorumNotMet) {
				queriesFailed("s1").Inc()
			}
			opts.log(levelWarn, "S1 instance %d failed after %d attempts: %v", i, res.Attempts, lastErr)
			prev = statusFailed
		} else {
			prev = statusOK
		}
		results[i] = res
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("deploy: run cancelled after instance %d: %w", i, err)
		}
	}
	peer = s1SendEnd(ctx, s, opts, ps, peer, prev)
	if peer != nil {
		peer.Close()
	}
	return &Report{Results: results}, nil
}

// s1SendEnd delivers the end-of-session frame best-effort, reconnecting
// within the retry budget. S2 has a local fallback when the frame is lost,
// so failure here is logged, not fatal.
func s1SendEnd(ctx context.Context, s *serverSetup, opts ServerOptions, ps *peerSource, peer transport.Conn, lastStatus int64) transport.Conn {
	var lastErr error
	for try := 0; try <= opts.MaxRetries; try++ {
		if err := ctx.Err(); err != nil {
			lastErr = err
			break
		}
		if peer == nil {
			awaitCtx, cancel := context.WithTimeout(ctx, opts.attemptTimeout())
			var err error
			peer, _, err = ps.await(awaitCtx)
			cancel()
			if err != nil {
				lastErr = err
				break
			}
		} else {
			peer = ps.takeNewer(peer)
		}
		ectx, cancel := context.WithTimeout(ctx, opts.attemptTimeout())
		err := sendEnd(ectx, peer, lastStatus)
		cancel()
		if err == nil {
			return peer
		}
		lastErr = err
		peer.Close()
		peer = nil
		if !attemptRetryable(ctx, err) {
			break
		}
		retriesTotal("s1", "reconnect").Inc()
		s.journalEvent(opts, obs.Event{Type: obs.EventRetry, Instance: -1, Note: "reconnect"})
	}
	opts.log(levelWarn, "S1 could not deliver end-of-session to S2: %v", lastErr)
	return peer
}

// RunS2 runs server S2: it listens for users on its own address, dials S1
// for the protocol channel, and mirrors S1's per-instance execution. Any
// failed instance is returned as an error; use RunS2Report for
// per-instance results.
func RunS2(ctx context.Context, file *keystore.S2File, opts ServerOptions) ([]protocol.Outcome, error) {
	rep, err := RunS2Report(ctx, file, opts)
	if err != nil {
		return nil, err
	}
	if ferr := rep.FirstErr(); ferr != nil {
		return nil, ferr
	}
	return rep.Outcomes(), nil
}

// RunS2Report runs server S2 and returns a per-instance Report. With
// MaxRetries > 0 it follows S1's resilient session: it re-runs any
// instance S1 re-announces (replays are idempotent — the outcome is a
// deterministic function of the submissions) and re-establishes the peer
// link, within the retry budget, whenever it drops.
func RunS2Report(ctx context.Context, file *keystore.S2File, opts ServerOptions) (*Report, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.PeerAddr == "" {
		return nil, fmt.Errorf("deploy: S2 requires the S1 peer address")
	}
	keys, err := file.KeysS2()
	if err != nil {
		return nil, err
	}
	keys.Precompute() // build fixed-base tables once at key load
	s, err := setupServer(ctx, "S2", file.Config, opts, ringOf(keys.PeerPub))
	if err != nil {
		return nil, err
	}
	defer s.admin.close(ctx)
	defer s.journal.Close()
	defer s.l.Close()

	// Long-lived comparison pools: created once for the whole run so the
	// offline precompute (DGK bit-encryption material or h^r nonces,
	// depending on the strategy) refills in the gaps between instances
	// instead of being rebuilt per query. Nil when UseDGKPool is off.
	pools, err := protocol.NewS2Pools(s.cfg, keys)
	if err != nil {
		return nil, err
	}
	defer pools.Close()

	acceptErr := make(chan error, 1)
	acceptCtx, stopAccept := context.WithCancel(ctx)
	defer stopAccept()
	go acceptLoop(acceptCtx, s, nil, nil, acceptErr, opts)

	// Derive a distinct deterministic stream from S1's only when seeded;
	// seed 0 must stay crypto/rand.
	seed := opts.Seed
	if seed != 0 {
		seed++
	}
	rng := newRNG(seed)

	if !opts.resilient() {
		peer, err := transport.Dial(ctx, opts.PeerAddr)
		if err != nil {
			return nil, fmt.Errorf("deploy: dial S1: %w", err)
		}
		defer peer.Close()
		if err := sendHelloCaps(ctx, peer, partyPeer, opts.helloCaps(s.cfg)); err != nil {
			return nil, err
		}
		if opts.traced() {
			id, err := recvTraceContext(ctx, peer)
			if err != nil {
				return nil, err
			}
			s.adoptTraceID(id, opts)
		}
		opts.log(levelInfo, "S2 connected to peer S1 at %s", opts.PeerAddr)
		if err := collectSubmissions(ctx, s, opts, "s2"); err != nil {
			return nil, err
		}
		stopAccept()

		results := make([]InstanceResult, 0, opts.Instances)
		for i := 0; i < opts.Instances; i++ {
			groups, participants, err := prepareSubs(ctx, s, opts, "s2", peer, i)
			if err != nil {
				if errors.Is(err, protocol.ErrQuorumNotMet) {
					results = append(results, quorumMissResult(i, 1, participants, s.cfg.Users, err))
					continue
				}
				return nil, err
			}
			out, err := runInstance(ctx, s, "s2", i, 0, participants, s.cfg.Users-participants, opts,
				func(qctx context.Context, meter *transport.Meter) (*protocol.Outcome, error) {
					return protocol.RunS2GroupsWithPools(qctx, rng, s.cfg, keys, peer, groups, meter, pools)
				})
			if err != nil {
				return nil, err
			}
			results = append(results, InstanceResult{Instance: i, Outcome: *out, Attempts: 1,
				Participants: participants, Dropped: s.cfg.Users - participants})
		}
		return &Report{Results: results}, nil
	}

	connect := func() (transport.Conn, error) {
		d := transport.Dialer{
			Attempts:       opts.MaxRetries + 1,
			Backoff:        opts.Backoff,
			AttemptTimeout: opts.attemptTimeout(),
			Seed:           opts.Seed + 17,
			Faults:         s.faults,
		}
		conn, err := d.Dial(ctx, opts.PeerAddr)
		if err != nil {
			return nil, fmt.Errorf("deploy: dial S1: %w", err)
		}
		if err := sendHelloCaps(ctx, conn, partyPeer, opts.helloCaps(s.cfg)); err != nil {
			conn.Close()
			return nil, err
		}
		if opts.traced() {
			// Every (re)connection replays the trace frame; adoption is
			// idempotent, so replays after the first are no-ops.
			id, err := recvTraceContext(ctx, conn)
			if err != nil {
				conn.Close()
				return nil, err
			}
			s.adoptTraceID(id, opts)
		}
		return conn, nil
	}
	peer, err := connect()
	if err != nil {
		return nil, err
	}
	opts.log(levelInfo, "S2 connected to peer S1 at %s (resilient session)", opts.PeerAddr)
	if err := collectSubmissions(ctx, s, opts, "s2"); err != nil {
		peer.Close()
		return nil, err
	}
	stopAccept()
	return runS2Session(ctx, keys, rng, s, opts, peer, connect, pools)
}

// runS2Session follows S1's session frames: every begin frame (re)runs the
// named instance, every frame carries the authoritative status of the
// previous instance, and the end frame closes the session. Connection
// failures reconnect within a consecutive-failure budget; if the budget
// exhausts (S1 is gone and the end frame was lost), the report is
// assembled from local results.
func runS2Session(ctx context.Context, keys protocol.KeysS2, rng io.Reader, s *serverSetup, opts ServerOptions,
	peer transport.Conn, connect func() (transport.Conn, error), pools *protocol.S2Pools) (*Report, error) {
	n := opts.Instances
	statuses := make([]int64, n)
	outcomes := make([]*protocol.Outcome, n)
	attempts := make([]int, n)
	localErrs := make([]error, n)
	participants := make([]int, n)
	for i := range participants {
		participants[i] = s.cfg.Users
	}
	consecFail := 0
	sawEnd := false

	for !sawEnd {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("deploy: run cancelled: %w", err)
		}
		if peer == nil {
			if consecFail > opts.MaxRetries {
				opts.log(levelWarn, "S2 reconnect budget exhausted; assembling report from local results")
				break
			}
			retriesTotal("s2", "reconnect").Inc()
			s.journalEvent(opts, obs.Event{Type: obs.EventRetry, Instance: -1, Note: "reconnect"})
			sleepCtx(ctx, backoffDelay(opts.Backoff, consecFail))
			var err error
			peer, err = connect()
			if err != nil {
				consecFail++
				opts.log(levelWarn, "S2 reconnect to S1 failed: %v", err)
				if !attemptRetryable(ctx, err) && ctx.Err() != nil {
					return nil, err
				}
				continue
			}
		}
		fctx, cancel := context.WithTimeout(ctx, opts.attemptTimeout())
		frame, err := recvSessionFrame(fctx, peer)
		cancel()
		if err != nil {
			peer.Close()
			peer = nil
			if !attemptRetryable(ctx, err) {
				return nil, fmt.Errorf("deploy: s2 session: %w", err)
			}
			consecFail++
			continue
		}
		consecFail = 0
		switch frame.code {
		case ctrlEndSession:
			statuses[n-1] = frame.status
			sawEnd = true
		case ctrlBeginInstance:
			i := frame.instance
			if i < 0 || i >= n {
				peer.Close()
				return nil, fmt.Errorf("deploy: s2 session: begin for instance %d outside [0, %d)", i, n)
			}
			if i > 0 {
				statuses[i-1] = frame.status
			}
			if frame.attempt > 0 {
				retriesTotal("s2", "instance").Inc()
				s.journalEvent(opts, obs.Event{Type: obs.EventRetry, Instance: i, Attempt: frame.attempt + 1, Note: "instance"})
			}
			attempts[i]++
			actx, cancel := context.WithTimeout(ctx, opts.attemptTimeout())
			out, err := func() (*protocol.Outcome, error) {
				groups, p, err := prepareSubs(actx, s, opts, "s2", peer, i)
				participants[i] = p
				if err != nil {
					return nil, err
				}
				return runInstance(actx, s, "s2", i, frame.attempt, p, s.cfg.Users-p, opts,
					func(qctx context.Context, meter *transport.Meter) (*protocol.Outcome, error) {
						return protocol.RunS2GroupsWithPools(qctx, rng, s.cfg, keys, peer, groups, meter, pools)
					})
			}()
			cancel()
			if err != nil {
				localErrs[i] = err
				if errors.Is(err, protocol.ErrQuorumNotMet) {
					// Both servers agreed the instance cannot run; the wire
					// is clean, so keep the connection and await the next
					// frame.
					outcomes[i] = nil
					continue
				}
				peer.Close()
				peer = nil
				if !attemptRetryable(ctx, err) {
					return nil, err
				}
				consecFail++
				opts.log(levelWarn, "S2 instance %d attempt failed, awaiting replay: %v", i, err)
				continue
			}
			outcomes[i] = out
			localErrs[i] = nil
		}
	}
	if peer != nil {
		peer.Close()
	}

	results := make([]InstanceResult, n)
	for i := 0; i < n; i++ {
		res := InstanceResult{
			Instance:     i,
			Outcome:      protocol.Outcome{Consensus: false, Label: -1},
			Attempts:     attempts[i],
			Participants: participants[i],
			Dropped:      s.cfg.Users - participants[i],
		}
		switch {
		case statuses[i] == statusOK && outcomes[i] != nil:
			res.Outcome = *outcomes[i]
		case statuses[i] == statusOK:
			// S1 committed the instance but our local run never finished
			// (e.g. the final volley was lost). The label exists at S1.
			res.Err = fmt.Errorf("deploy: s2 instance %d: peer reported success but the local run did not complete: %w",
				i, firstNonNil(localErrs[i], errPeerGone))
		case errors.Is(localErrs[i], protocol.ErrQuorumNotMet):
			// A quorum miss is a clean local verdict, not a delivery
			// failure; surface it regardless of the peer status.
			res.Err = localErrs[i]
		case statuses[i] == statusFailed:
			res.Err = fmt.Errorf("deploy: s2 instance %d: %w", i, firstNonNil(localErrs[i], errors.New("peer reported failure")))
		case outcomes[i] != nil && localErrs[i] == nil:
			// No authoritative status (end frame lost) but the local run
			// completed; the outcome is deterministic, so trust it.
			res.Outcome = *outcomes[i]
		default:
			res.Err = fmt.Errorf("deploy: s2 instance %d never completed: %w", i, firstNonNil(localErrs[i], errPeerGone))
		}
		if res.Err != nil && !errors.Is(res.Err, protocol.ErrQuorumNotMet) {
			queriesFailed("s2").Inc()
		}
		results[i] = res
	}
	return &Report{Results: results}, nil
}

// firstNonNil returns the first non-nil error.
func firstNonNil(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// peerConn is an accepted peer connection together with the capability
// flags from its hello frame.
type peerConn struct {
	conn transport.Conn
	caps int64
}

// acceptLoop classifies inbound connections by their hello frame: user
// connections feed the collector, peer connections go to the peerSource
// (resilient mode, where reconnections replace the previous link) or to
// peerCh (legacy mode, where a duplicate peer is dropped). Errors on
// individual user connections are logged and the connection dropped;
// structural errors abort via errCh.
func acceptLoop(ctx context.Context, s *serverSetup, peerCh chan<- peerConn, ps *peerSource,
	errCh chan<- error, opts ServerOptions) {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			select {
			case <-ctx.Done():
			default:
				select {
				case errCh <- fmt.Errorf("deploy: accept: %w", err):
				default:
				}
			}
			return
		}
		go func(conn transport.Conn) {
			party, caps, err := recvHello(ctx, conn)
			if err != nil {
				opts.log(levelWarn, "dropping connection with bad hello: %v", err)
				conn.Close()
				return
			}
			switch party {
			case partyPeer:
				// A tracing peer expects the trace frame right after its
				// hello, on every connection — reconnects included, so a
				// reset link cannot leave S2 without the trace identity.
				if caps&capTrace != 0 && opts.traced() {
					if err := replyTraceContext(ctx, s, conn); err != nil {
						opts.log(levelWarn, "peer trace context send failed: %v", err)
						conn.Close()
						return
					}
				}
				if ps != nil {
					ps.offer(conn, caps)
					return
				}
				if peerCh == nil {
					opts.log(levelWarn, "unexpected peer hello on this server; dropping")
					conn.Close()
					return
				}
				select {
				case peerCh <- peerConn{conn: conn, caps: caps}:
				default:
					opts.log(levelWarn, "duplicate peer connection; dropping")
					conn.Close()
				}
			case partyRelay:
				// An ingestion-tier relay delivering pre-summed batches. The
				// capability bit is mandatory so a relay can never feed a
				// server that does not understand combined frames silently.
				if caps&ingest.CapPresum == 0 {
					opts.log(levelWarn, "relay hello without presum capability; dropping")
					conn.Close()
					return
				}
				// The packed bit must agree with the server's resolved mode:
				// a mixed tree would silently mix frame grammars.
				if (caps&ingest.CapPacked != 0) != s.cfg.Packing {
					opts.log(levelWarn, "relay hello packing capability mismatch (relay packed=%v, server packed=%v); dropping",
						caps&ingest.CapPacked != 0, s.cfg.Packing)
					conn.Close()
					return
				}
				serveRelayConn(ctx, conn, s, opts)
				conn.Close()
			case partyUser:
				// A tracing user asked for the run's trace identity; an
				// untraced server answers immediately with ID 0 (its trace
				// state is pre-published at setup), a traced S2 answers once
				// S1 has delivered the ID.
				if caps&capTrace != 0 {
					if err := replyTraceContext(ctx, s, conn); err != nil {
						opts.log(levelWarn, "user trace context send failed: %v", err)
						conn.Close()
						return
					}
				}
				if err := serveUserConn(ctx, conn, s.col); err != nil {
					opts.log(levelWarn, "user connection error: %v", err)
				}
				conn.Close()
			}
		}(conn)
	}
}

// replyTraceContext answers a capTrace hello with the run's trace ID,
// blocking (bounded by ctx) until the ID is known.
func replyTraceContext(ctx context.Context, s *serverSetup, conn transport.Conn) error {
	id, err := s.trace.get(ctx)
	if err != nil {
		return err
	}
	return sendTraceContext(ctx, conn, id)
}

// DefaultLogger returns a stdlib-backed log sink for the CLIs with
// microsecond timestamps. prefix typically identifies the role ("s1: ");
// per-query lines already carry the query ID (query=s1-q3) from the trace
// summary.
func DefaultLogger(prefix string) func(string, ...any) {
	l := log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	return func(format string, args ...any) {
		l.Printf(prefix+format, args...)
	}
}
