package deploy

import (
	"context"
	"fmt"
	"log"

	"github.com/privconsensus/privconsensus/internal/keystore"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// ServerOptions configures one protocol server process.
type ServerOptions struct {
	// ListenAddr accepts user submissions (and, on S1, the S2 peer
	// connection).
	ListenAddr string
	// PeerAddr is S1's address; only S2 dials it.
	PeerAddr string
	// Instances is the number of query instances to run.
	Instances int
	// Seed, when non-zero, makes protocol randomness deterministic.
	Seed int64
	// Parallelism, when non-zero, overrides the key file's protocol
	// parallelism: 1 runs the original sequential single-stream protocol,
	// anything else multiplexes the peer link and runs DGK comparisons
	// concurrently. The setting changes the wire format, so both server
	// processes must resolve to the same mode.
	Parallelism int
	// Logf receives progress lines; nil silences logging.
	Logf func(format string, args ...any)
	// Ready, when non-nil, receives the bound listen address once the
	// server is accepting (lets tests use port 0).
	Ready chan<- string
}

// announceReady reports the bound address to the Ready channel, if any.
func (o ServerOptions) announceReady(addr string) {
	if o.Ready != nil {
		o.Ready <- addr
	}
}

// logf logs through the configured sink.
func (o ServerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// validate checks the options.
func (o ServerOptions) validate() error {
	if o.Instances < 1 {
		return fmt.Errorf("deploy: need at least 1 instance, got %d", o.Instances)
	}
	return nil
}

// RunS1 runs server S1: it listens for all users and for S2, collects the
// submissions, executes Alg. 5 once per instance over the peer connection,
// and returns the outcomes.
func RunS1(ctx context.Context, file *keystore.S1File, opts ServerOptions) ([]protocol.Outcome, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	keys, err := file.KeysS1()
	if err != nil {
		return nil, err
	}
	cfg := file.Config
	if opts.Parallelism != 0 {
		cfg.Parallelism = opts.Parallelism
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	l, err := transport.Listen(opts.ListenAddr)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	opts.logf("S1 listening on %s", l.Addr())
	opts.announceReady(l.Addr())

	col := newCollector(cfg.Users, opts.Instances, cfg.Classes)
	peerCh := make(chan transport.Conn, 1)
	acceptErr := make(chan error, 1)
	acceptCtx, stopAccept := context.WithCancel(ctx)
	defer stopAccept()

	go acceptLoop(acceptCtx, l, col, peerCh, acceptErr, opts)

	// Wait for the peer and all submissions.
	var peer transport.Conn
	select {
	case peer = <-peerCh:
	case err := <-acceptErr:
		return nil, err
	case <-ctx.Done():
		return nil, fmt.Errorf("deploy: waiting for S2: %w", ctx.Err())
	}
	defer peer.Close()
	opts.logf("S1 connected to peer S2")
	if err := col.wait(ctx); err != nil {
		return nil, err
	}
	stopAccept()
	opts.logf("S1 received all %d×%d submissions", cfg.Users, opts.Instances)

	rng := newRNG(opts.Seed)
	outcomes := make([]protocol.Outcome, opts.Instances)
	for i := 0; i < opts.Instances; i++ {
		out, err := protocol.RunS1(ctx, rng, cfg, keys, peer, col.instance(i), nil)
		if err != nil {
			return nil, fmt.Errorf("deploy: S1 instance %d: %w", i, err)
		}
		outcomes[i] = *out
		opts.logf("S1 instance %d: consensus=%v label=%d", i, out.Consensus, out.Label)
	}
	return outcomes, nil
}

// RunS2 runs server S2: it listens for users on its own address, dials S1
// for the protocol channel, and mirrors S1's per-instance execution.
func RunS2(ctx context.Context, file *keystore.S2File, opts ServerOptions) ([]protocol.Outcome, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.PeerAddr == "" {
		return nil, fmt.Errorf("deploy: S2 requires the S1 peer address")
	}
	keys, err := file.KeysS2()
	if err != nil {
		return nil, err
	}
	cfg := file.Config
	if opts.Parallelism != 0 {
		cfg.Parallelism = opts.Parallelism
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	l, err := transport.Listen(opts.ListenAddr)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	opts.logf("S2 listening on %s", l.Addr())
	opts.announceReady(l.Addr())

	col := newCollector(cfg.Users, opts.Instances, cfg.Classes)
	acceptErr := make(chan error, 1)
	acceptCtx, stopAccept := context.WithCancel(ctx)
	defer stopAccept()
	go acceptLoop(acceptCtx, l, col, nil, acceptErr, opts)

	peer, err := transport.Dial(ctx, opts.PeerAddr)
	if err != nil {
		return nil, fmt.Errorf("deploy: dial S1: %w", err)
	}
	defer peer.Close()
	if err := sendHello(ctx, peer, partyPeer); err != nil {
		return nil, err
	}
	opts.logf("S2 connected to peer S1 at %s", opts.PeerAddr)

	if err := col.wait(ctx); err != nil {
		return nil, err
	}
	stopAccept()
	opts.logf("S2 received all %d×%d submissions", cfg.Users, opts.Instances)

	// Derive a distinct deterministic stream from S1's only when seeded;
	// seed 0 must stay crypto/rand.
	seed := opts.Seed
	if seed != 0 {
		seed++
	}
	rng := newRNG(seed)
	outcomes := make([]protocol.Outcome, opts.Instances)
	for i := 0; i < opts.Instances; i++ {
		out, err := protocol.RunS2(ctx, rng, cfg, keys, peer, col.instance(i), nil)
		if err != nil {
			return nil, fmt.Errorf("deploy: S2 instance %d: %w", i, err)
		}
		outcomes[i] = *out
		opts.logf("S2 instance %d: consensus=%v label=%d", i, out.Consensus, out.Label)
	}
	return outcomes, nil
}

// acceptLoop classifies inbound connections by their hello frame: user
// connections feed the collector, the (single) peer connection is handed
// to peerCh. Errors on individual user connections are logged and the
// connection dropped; structural errors abort via errCh.
func acceptLoop(ctx context.Context, l *transport.Listener, col *collector,
	peerCh chan<- transport.Conn, errCh chan<- error, opts ServerOptions) {
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-ctx.Done():
			default:
				select {
				case errCh <- fmt.Errorf("deploy: accept: %w", err):
				default:
				}
			}
			return
		}
		go func(conn transport.Conn) {
			party, err := recvHello(ctx, conn)
			if err != nil {
				opts.logf("dropping connection with bad hello: %v", err)
				conn.Close()
				return
			}
			switch party {
			case partyPeer:
				if peerCh == nil {
					opts.logf("unexpected peer hello on this server; dropping")
					conn.Close()
					return
				}
				select {
				case peerCh <- conn:
				default:
					opts.logf("duplicate peer connection; dropping")
					conn.Close()
				}
			case partyUser:
				if err := serveUserConn(ctx, conn, col); err != nil {
					opts.logf("user connection error: %v", err)
				}
				conn.Close()
			}
		}(conn)
	}
}

// DefaultLogger returns a stdlib-backed log sink for the CLIs.
func DefaultLogger(prefix string) func(string, ...any) {
	return func(format string, args ...any) {
		log.Printf(prefix+format, args...)
	}
}
