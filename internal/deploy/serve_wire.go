package deploy

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/privconsensus/privconsensus/internal/transport"
)

// Continuous-operation (serve mode) wire vocabulary.
//
// Serve mode is capability-negotiated: a client that wants streaming
// admission advertises capServe in its hello, and the serve-control link
// S2 dials to S1 additionally carries capServeCtl. A deployment that
// never sets these bits speaks the batch wire byte for byte — none of
// the frames below ever appear.
//
// Three handshakes share the control-frame grammar (Flags[0] = code):
//
//	admission (client → S1):
//	    [120, tenant, nonce]           admit request; nonce makes the
//	                                   request idempotent across redials
//	    [121, status, qid, epoch]      admit reply; on refusal qid is 0
//	                                   and status names the typed reason
//	    [122, qid]                     result wait (blocks)
//	    [123, qid, status, label, attempts]  result reply
//
//	serve control (S1 → S2, request/response on the dedicated ctl link):
//	    [124, qid, epoch, tenant] / [125, qid, status]    announce query
//	    [126, epoch] / [127, epoch, status]               epoch prepare
//	    [128, epoch] / [127, epoch, status]               epoch commit
//	    [129, epoch] / [127, epoch, status]               epoch retire
//	    [130, 0]     / [127, 0, status]                   drain
//
//	session (S1 → S2, protocol link): the resilient-session begin/end
//	    frames (100/101) with the query ID in the instance slot.
const (
	// capServe marks a hello from a party speaking the serve-mode
	// admission grammar (clients) or serving it (the S2 protocol link).
	capServe int64 = 64
	// capServeCtl marks S2's dedicated serve-control connection to S1.
	capServeCtl int64 = 128

	ctrlAdmitRequest  int64 = 120
	ctrlAdmitReply    int64 = 121
	ctrlResultWait    int64 = 122
	ctrlResultReply   int64 = 123
	ctrlServeAnnounce int64 = 124
	ctrlServeAck      int64 = 125
	ctrlEpochPrepare  int64 = 126
	ctrlEpochAck      int64 = 127
	ctrlEpochCommit   int64 = 128
	ctrlEpochRetire   int64 = 129
	ctrlServeDrain    int64 = 130
)

// Admission decision statuses ([121] Flags[1]). Every refusal is typed
// and leaves no protocol bytes spent: the client may retry later
// (draining, overloaded, unavailable) or must wait for budget
// replenishment that serve mode never grants (budget-exhausted).
const (
	admitOK              int64 = 0
	admitBudgetExhausted int64 = 1
	admitDraining        int64 = 2
	admitOverloaded      int64 = 3
	admitUnavailable     int64 = 4
)

// Result statuses ([123] Flags[2]).
const (
	resultConsensus   int64 = 0
	resultNoConsensus int64 = 1
	resultFailed      int64 = 2
	resultQuorumMiss  int64 = 3
	resultUnknown     int64 = 4
)

// Typed admission refusals. All are retryable in the transport sense —
// the server refused cleanly before any protocol traffic — but only
// ErrBudgetExhausted is permanent for the tenant.
var (
	// ErrBudgetExhausted reports that admitting the query would push the
	// tenant's cumulative (ε, δ)-DP spend past its quota.
	ErrBudgetExhausted = errors.New("deploy: tenant privacy budget exhausted")
	// ErrDraining reports that the server has stopped admitting (graceful
	// shutdown in progress); in-flight queries still complete.
	ErrDraining = errors.New("deploy: server draining, not admitting")
	// ErrOverloaded reports that the in-flight admission window is full.
	ErrOverloaded = errors.New("deploy: admission window full")
	// ErrServeUnavailable reports that S1 could not coordinate the
	// admission with S2 (serve-control link down); retry after backoff.
	ErrServeUnavailable = errors.New("deploy: serve control plane unavailable")
	// ErrQueryFailed reports that an admitted query exhausted the server's
	// retry budget without completing the protocol. The query is resolved
	// and its worst-case spend committed; resubmitting is a new query.
	ErrQueryFailed = errors.New("deploy: query failed after exhausting retries")
)

// admitError maps a typed admission status to its error (nil for admitOK).
func admitError(status int64) error {
	switch status {
	case admitOK:
		return nil
	case admitBudgetExhausted:
		return ErrBudgetExhausted
	case admitDraining:
		return ErrDraining
	case admitOverloaded:
		return ErrOverloaded
	case admitUnavailable:
		return ErrServeUnavailable
	default:
		return fmt.Errorf("deploy: unknown admission status %d", status)
	}
}

// admitDecision is the metric/journal label of an admission status.
func admitDecision(status int64) string {
	switch status {
	case admitOK:
		return "admitted"
	case admitBudgetExhausted:
		return "budget-exhausted"
	case admitDraining:
		return "draining"
	case admitOverloaded:
		return "overloaded"
	case admitUnavailable:
		return "unavailable"
	default:
		return "unknown"
	}
}

// ServeOptions configures one continuously-operating server. The embedded
// ServerOptions supplies the transport, observability, resilience and
// participation settings; Instances is ignored (serve mode admits an
// unbounded stream of queries).
type ServeOptions struct {
	ServerOptions

	// Tenants maps tenant IDs to their (ε, δ)-DP quota. A tenant absent
	// from the map falls back to DefaultQuota.
	Tenants map[int64]float64
	// DefaultQuota is the ε quota for tenants not listed in Tenants;
	// 0 means unlimited.
	DefaultQuota float64
	// Delta is the δ at which quotas are evaluated (default 1e-6).
	Delta float64
	// LedgerPath, when non-empty, persists the per-tenant spend ledger
	// (fsync + exclusive lock, like the engine accountant). Empty keeps
	// the ledger in memory — quotas still apply within the run.
	LedgerPath string
	// MaxInFlight bounds admitted-but-unresolved queries (default 4);
	// admissions beyond it are refused with the typed overloaded status.
	MaxInFlight int
	// RotateAfter, when > 0, triggers one epoch rotation after that many
	// granted admissions (requires a provisioned next epoch key file).
	RotateAfter int
	// RotateCh, when non-nil, triggers an epoch rotation per received
	// value (SIGHUP in cmd/server, explicit nudges in tests).
	RotateCh <-chan struct{}
	// DrainCh, when non-nil, starts a graceful drain when it is closed
	// or receives a value: stop admitting, finish in-flight queries,
	// flush the ledger and journal, return the report.
	DrainCh <-chan struct{}
	// DrainTimeout bounds the drain phase (default 2× AttemptTimeout);
	// queries still unresolved when it fires fail cleanly.
	DrainTimeout time.Duration
}

// delta returns the quota δ with its default.
func (o ServeOptions) delta() float64 {
	if o.Delta > 0 {
		return o.Delta
	}
	return 1e-6
}

// maxInFlight returns the admission window with its default.
func (o ServeOptions) maxInFlight() int {
	if o.MaxInFlight > 0 {
		return o.MaxInFlight
	}
	return 4
}

// drainTimeout returns the drain bound with its default.
func (o ServeOptions) drainTimeout() time.Duration {
	if o.DrainTimeout > 0 {
		return o.DrainTimeout
	}
	return 2 * o.attemptTimeout()
}

// validateServe checks the serve-specific options; the embedded batch
// options are validated by the caller with Instances pinned to 1 (serve
// mode has no instance count).
func (o ServeOptions) validateServe() error {
	if o.MaxInFlight < 0 {
		return fmt.Errorf("deploy: negative max in-flight %d", o.MaxInFlight)
	}
	if o.RotateAfter < 0 {
		return fmt.Errorf("deploy: negative rotate-after %d", o.RotateAfter)
	}
	if o.Delta < 0 || o.Delta >= 1 {
		return fmt.Errorf("deploy: quota delta %g outside (0, 1)", o.Delta)
	}
	if o.DefaultQuota < 0 {
		return fmt.Errorf("deploy: negative default quota %g", o.DefaultQuota)
	}
	for t, q := range o.Tenants {
		if q < 0 {
			return fmt.Errorf("deploy: negative quota %g for tenant %d", q, t)
		}
	}
	return nil
}

// sendCtl sends a serve-control request and awaits the expected ack code,
// returning the ack arguments.
func sendCtl(ctx context.Context, conn transport.Conn, ackCode int64, code int64, args ...int64) ([]int64, error) {
	if err := transport.SendControl(ctx, conn, code, args...); err != nil {
		return nil, err
	}
	return transport.ExpectControl(ctx, conn, ackCode)
}
