package deploy

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"

	"github.com/privconsensus/privconsensus/internal/dp"
	"github.com/privconsensus/privconsensus/internal/fsx"
	"github.com/privconsensus/privconsensus/internal/obs"
)

// budgetLedger is the serve-mode admission controller's durable per-tenant
// privacy accountant. Admission reserves the worst-case cost of one query
// (SVT + RNM at the configured sigmas) against the tenant's quota;
// completion commits the actual spend (SVT always — conservative, matching
// the engine — RNM only when a label was released) and releases the
// reservation. With a path the committed state is persisted after every
// commit with the same fsync + exclusive-lock discipline as the engine
// accountant; reservations are in-memory only, so a crash forgets
// reservations but never committed spend.
type budgetLedger struct {
	mu           sync.Mutex
	path         string
	lock         *fsx.Lock
	tenants      map[int64]*dp.Accountant
	reserved     map[int64]float64 // coefficient reserved by in-flight queries
	quotas       map[int64]float64
	defaultQuota float64
	delta        float64
}

// ledgerState is the persisted JSON shape. Tenant keys are decimal
// strings (JSON objects cannot key on integers).
type ledgerState struct {
	Version int                       `json:"version"`
	Tenants map[string]*dp.Accountant `json:"tenants"`
}

// openLedger builds the ledger, reloading and locking the state file when
// path is non-empty.
func openLedger(path string, quotas map[int64]float64, defaultQuota, delta float64) (*budgetLedger, error) {
	b := &budgetLedger{
		path:         path,
		tenants:      make(map[int64]*dp.Accountant),
		reserved:     make(map[int64]float64),
		quotas:       quotas,
		defaultQuota: defaultQuota,
		delta:        delta,
	}
	if path == "" {
		return b, nil
	}
	lock, err := fsx.Acquire(path)
	if err != nil {
		if errors.Is(err, fsx.ErrLocked) {
			return nil, fmt.Errorf("deploy: ledger %s is in use by another server: %w", path, err)
		}
		return nil, fmt.Errorf("deploy: lock ledger: %w", err)
	}
	b.lock = lock
	raw, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// First run: the file appears on the first committed spend.
	case err != nil:
		lock.Unlock()
		return nil, fmt.Errorf("deploy: load ledger: %w", err)
	default:
		var st ledgerState
		if err := json.Unmarshal(raw, &st); err != nil {
			lock.Unlock()
			return nil, fmt.Errorf("deploy: load ledger %s: %w", path, err)
		}
		for key, acct := range st.Tenants {
			id, err := strconv.ParseInt(key, 10, 64)
			if err != nil || acct == nil {
				lock.Unlock()
				return nil, fmt.Errorf("deploy: ledger %s: bad tenant key %q", path, key)
			}
			b.tenants[id] = acct
		}
	}
	return b, nil
}

// close releases the state lock. Idempotent.
func (b *budgetLedger) close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.lock == nil {
		return nil
	}
	lock := b.lock
	b.lock = nil
	return lock.Unlock()
}

// quota returns tenant's ε quota (0 = unlimited).
func (b *budgetLedger) quota(tenant int64) float64 {
	if q, ok := b.quotas[tenant]; ok {
		return q
	}
	return b.defaultQuota
}

// queryCost returns the worst-case linear-RDP coefficient of one query:
// the SVT threshold check plus a released label's RNM. Zero sigmas mean
// accounting is off (infinite per-query ε) and cost nothing.
func queryCost(sigma1, sigma2 float64) float64 {
	cost := 0.0
	if sigma1 > 0 {
		cost += 9 / (2 * sigma1 * sigma1)
	}
	if sigma2 > 0 {
		cost += 1 / (sigma2 * sigma2)
	}
	return cost
}

// reserve admits cost against tenant's quota: it fails with
// ErrBudgetExhausted when the committed + already-reserved + new spend
// would exceed the quota at δ, otherwise it records the reservation.
func (b *budgetLedger) reserve(tenant int64, cost float64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	quota := b.quota(tenant)
	if quota <= 0 {
		b.reserved[tenant] += cost
		return nil
	}
	committed := 0.0
	if acct := b.tenants[tenant]; acct != nil {
		committed = acct.Coefficient()
	}
	projected := dp.NewAccountant()
	if err := projected.AddLinear(committed + b.reserved[tenant] + cost); err != nil {
		return fmt.Errorf("deploy: project tenant %d spend: %w", tenant, err)
	}
	eps, _, err := projected.Epsilon(b.delta)
	if err != nil {
		return fmt.Errorf("deploy: project tenant %d spend: %w", tenant, err)
	}
	if eps > quota {
		return fmt.Errorf("%w: tenant %d projected eps %.4g > quota %.4g (delta %g)",
			ErrBudgetExhausted, tenant, eps, quota, b.delta)
	}
	b.reserved[tenant] += cost
	return nil
}

// unreserve releases a reservation without committing spend (the
// admission was rolled back before the query registered).
func (b *budgetLedger) unreserve(tenant int64, cost float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.releaseLocked(tenant, cost)
}

func (b *budgetLedger) releaseLocked(tenant int64, cost float64) {
	if r := b.reserved[tenant] - cost; r > 1e-12 {
		b.reserved[tenant] = r
	} else {
		delete(b.reserved, tenant)
	}
}

// commit records the actual spend of one finished query — the SVT check
// always, the RNM release only when released is true — persists the
// ledger, releases the query's reservation and refreshes the tenant's
// ε gauge. The spend is recorded in memory even when persistence fails,
// so the live view only ever over-counts the durable state.
func (b *budgetLedger) commit(tenant int64, cost, sigma1, sigma2 float64, released bool) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	acct := b.tenants[tenant]
	if acct == nil {
		acct = dp.NewAccountant()
		b.tenants[tenant] = acct
	}
	if sigma1 > 0 {
		if err := acct.AddSVT(sigma1); err != nil {
			return err
		}
	}
	if released && sigma2 > 0 {
		if err := acct.AddRNM(sigma2); err != nil {
			return err
		}
	}
	b.releaseLocked(tenant, cost)
	if eps, _, err := acct.Epsilon(b.delta); err == nil {
		obs.TenantEpsilon(strconv.FormatInt(tenant, 10)).Set(eps)
	}
	return b.persistLocked()
}

// persistLocked rewrites the state file (fsync + atomic rename). Callers
// hold mu.
func (b *budgetLedger) persistLocked() error {
	if b.path == "" {
		return nil
	}
	if b.lock == nil {
		return fmt.Errorf("deploy: ledger %s is closed", b.path)
	}
	st := ledgerState{Version: 1, Tenants: make(map[string]*dp.Accountant, len(b.tenants))}
	for id, acct := range b.tenants {
		st.Tenants[strconv.FormatInt(id, 10)] = acct
	}
	raw, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("deploy: encode ledger: %w", err)
	}
	if err := fsx.WriteFileSync(b.path, append(raw, '\n'), 0o600); err != nil {
		return fmt.Errorf("deploy: persist ledger: %w", err)
	}
	return nil
}

// exhausted reports whether every tenant with a finite quota can no
// longer afford one more query of the given cost — the healthz
// budget-exhausted readiness condition. With no finite quotas it is
// always false.
func (b *budgetLedger) exhausted(cost float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	finite := false
	for tenant, quota := range b.quotas {
		if quota <= 0 {
			continue
		}
		finite = true
		committed := 0.0
		if acct := b.tenants[tenant]; acct != nil {
			committed = acct.Coefficient()
		}
		projected := dp.NewAccountant()
		if projected.AddLinear(committed+b.reserved[tenant]+cost) != nil {
			continue
		}
		eps, _, err := projected.Epsilon(b.delta)
		if err != nil || eps <= quota {
			return false
		}
	}
	if b.defaultQuota > 0 {
		// Unlisted tenants admit under the default quota, so the service
		// as a whole is never exhausted for fresh tenants.
		return false
	}
	return finite
}

// TenantSpend is one tenant's committed ledger state, exported for
// reports and the soak's journal-replay assertion.
type TenantSpend struct {
	Tenant      int64   `json:"tenant"`
	Coefficient float64 `json:"coefficient"`
	Queries     int     `json:"queries"`
	Releases    int     `json:"releases"`
	Epsilon     float64 `json:"epsilon"`
}

// spends returns the committed per-tenant state, sorted by tenant ID.
func (b *budgetLedger) spends() []TenantSpend {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]TenantSpend, 0, len(b.tenants))
	for id, acct := range b.tenants {
		q, r := acct.Counts()
		ts := TenantSpend{Tenant: id, Coefficient: acct.Coefficient(), Queries: q, Releases: r}
		if eps, _, err := acct.Epsilon(b.delta); err == nil {
			ts.Epsilon = eps
		}
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
