package deploy

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// Session resilience for the two-server deployment.
//
// When ServerOptions.MaxRetries > 0 the peer link runs a thin session
// protocol on top of the Alg. 5 messages: S1 leads, announcing each query
// instance with a begin frame before running it, and closing the session
// with an end frame. Both frames are idempotent — an instance announced
// twice (because an attempt died mid-run) is simply re-executed by S2, and
// the consensus outcome is a deterministic function of the collected
// submissions, so replays always reproduce the same label. A failed
// attempt always discards the connection; retries run on a fresh one, so
// no attempt ever sees another attempt's leftover bytes.
//
// With MaxRetries == 0 (the default) none of these frames are emitted and
// the wire format is byte-for-byte the pre-resilience protocol.

// Session control codes, carried in Flags[0] of KindControl frames
// exchanged after the hello.
const (
	ctrlBeginInstance int64 = 100 // [code, instance, attempt, prevStatus] S1→S2
	ctrlEndSession    int64 = 101 // [code, lastStatus]                    S1→S2
	ctrlUploadDone    int64 = 102 // [code, user]                          user→server
	ctrlUploadAck     int64 = 103 // [code, user]                          server→user
)

// Authoritative per-instance statuses, propagated S1→S2 in begin/end
// frames.
const (
	statusNone   int64 = 0
	statusOK     int64 = 1
	statusFailed int64 = 2
)

// capResilient is the optional second hello flag advertising that the
// sender speaks the session protocol. Legacy hellos carry exactly one
// flag; the resilient hello is the only wire change visible before any
// retry happens.
const capResilient int64 = 1

// retriesTotal counts retry attempts by role and scope (scope: instance,
// reconnect, upload).
func retriesTotal(role, scope string) *obs.Counter {
	return obs.Default.Counter("retries_total",
		"Retry attempts, by role and scope.",
		obs.L("role", role), obs.L("scope", scope))
}

// queriesFailed counts query instances that exhausted their retry budget.
func queriesFailed(role string) *obs.Counter {
	return obs.Default.Counter("queries_failed_total",
		"Query instances that failed after exhausting the retry budget.",
		obs.L("role", role))
}

// sendBegin announces (or re-announces) instance i, attempt a, carrying
// the authoritative status of the previous instance.
func sendBegin(ctx context.Context, conn transport.Conn, instance, attempt int, prevStatus int64) error {
	return conn.Send(ctx, &transport.Message{
		Kind:  transport.KindControl,
		Flags: []int64{ctrlBeginInstance, int64(instance), int64(attempt), prevStatus},
	})
}

// sendEnd closes the session, carrying the status of the last instance.
func sendEnd(ctx context.Context, conn transport.Conn, lastStatus int64) error {
	return conn.Send(ctx, &transport.Message{
		Kind:  transport.KindControl,
		Flags: []int64{ctrlEndSession, lastStatus},
	})
}

// sessionFrame is a decoded begin or end frame.
type sessionFrame struct {
	code     int64
	instance int
	attempt  int
	status   int64 // prevStatus on begin, lastStatus on end
}

// recvSessionFrame reads the next begin/end frame on the peer link.
func recvSessionFrame(ctx context.Context, conn transport.Conn) (sessionFrame, error) {
	msg, err := transport.ExpectKind(ctx, conn, transport.KindControl)
	if err != nil {
		return sessionFrame{}, err
	}
	switch {
	case len(msg.Flags) == 4 && msg.Flags[0] == ctrlBeginInstance:
		return sessionFrame{
			code:     ctrlBeginInstance,
			instance: int(msg.Flags[1]),
			attempt:  int(msg.Flags[2]),
			status:   msg.Flags[3],
		}, nil
	case len(msg.Flags) == 2 && msg.Flags[0] == ctrlEndSession:
		return sessionFrame{code: ctrlEndSession, status: msg.Flags[1]}, nil
	}
	return sessionFrame{}, transport.MarkFatal(fmt.Errorf("deploy: malformed session frame %v", msg.Flags))
}

// peerSource hands the freshest peer connection to the S1 session loop.
// The accept loop offers reconnections as they arrive; older unclaimed
// connections are closed, so the consumer always converges on the newest
// link after a reset.
type peerSource struct {
	mu      sync.Mutex
	pending transport.Conn
	caps    int64
	notify  chan struct{}
}

func newPeerSource() *peerSource {
	return &peerSource{notify: make(chan struct{}, 1)}
}

// offer installs a new peer connection, replacing (and closing) any
// unclaimed one.
func (ps *peerSource) offer(conn transport.Conn, caps int64) {
	ps.mu.Lock()
	if ps.pending != nil {
		ps.pending.Close()
	}
	ps.pending = conn
	ps.caps = caps
	ps.mu.Unlock()
	select {
	case ps.notify <- struct{}{}:
	default:
	}
}

// await blocks for a peer connection (bounded by ctx) and returns it with
// the capability flag from its hello.
func (ps *peerSource) await(ctx context.Context) (transport.Conn, int64, error) {
	for {
		ps.mu.Lock()
		conn, caps := ps.pending, ps.caps
		ps.pending = nil
		ps.mu.Unlock()
		if conn != nil {
			return conn, caps, nil
		}
		select {
		case <-ps.notify:
		case <-ctx.Done():
			return nil, 0, fmt.Errorf("deploy: waiting for S2: %w", ctx.Err())
		}
	}
}

// takeNewer swaps current for a fresher pending connection if the peer has
// reconnected since current was claimed; otherwise returns current.
func (ps *peerSource) takeNewer(current transport.Conn) transport.Conn {
	ps.mu.Lock()
	conn := ps.pending
	ps.pending = nil
	ps.mu.Unlock()
	if conn == nil {
		return current
	}
	if current != nil {
		current.Close()
	}
	return conn
}

// close releases any unclaimed connection.
func (ps *peerSource) close() {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.pending != nil {
		ps.pending.Close()
		ps.pending = nil
	}
}

// InstanceResult is the per-query-instance entry of a deployment Report.
type InstanceResult struct {
	// Instance is the query instance index.
	Instance int
	// Outcome is the consensus outcome; meaningful only when Err is nil.
	// Failed instances carry the placeholder {Consensus: false, Label: -1}.
	Outcome protocol.Outcome
	// Attempts is how many attempts the instance took (1 = no retries).
	Attempts int
	// Participants is how many users' submissions the instance aggregated;
	// Dropped is how many configured users were excluded (dropout,
	// rejection, or quorum release). Participants == Users and Dropped == 0
	// under full participation.
	Participants int
	Dropped      int
	// Err is non-nil when the instance exhausted its retry budget (or, for
	// partial participation, when it is protocol.ErrQuorumNotMet); it names
	// the failing phase.
	Err error
}

// Report is the full result of a resilient server run: one entry per
// instance, in order, each either succeeded or cleanly failed.
type Report struct {
	Results []InstanceResult
}

// Outcomes returns the per-instance outcomes in order; failed instances
// carry the placeholder {Consensus: false, Label: -1}.
func (r *Report) Outcomes() []protocol.Outcome {
	out := make([]protocol.Outcome, len(r.Results))
	for i, res := range r.Results {
		out[i] = res.Outcome
	}
	return out
}

// Failed returns the instances that did not complete.
func (r *Report) Failed() []InstanceResult {
	var out []InstanceResult
	for _, res := range r.Results {
		if res.Err != nil {
			out = append(out, res)
		}
	}
	return out
}

// FirstErr returns the first failed instance's error, or nil.
func (r *Report) FirstErr() error {
	for _, res := range r.Results {
		if res.Err != nil {
			return fmt.Errorf("deploy: instance %d failed after %d attempts: %w",
				res.Instance, res.Attempts, res.Err)
		}
	}
	return nil
}

// attemptRetryable decides whether a failed instance attempt may be
// retried: the parent context must still be live (a cancelled run stops
// immediately) and the error must classify as transient I/O. Per-attempt
// deadline expiry counts as transient — recycling stalled attempts is what
// the deadline is for.
func attemptRetryable(parent context.Context, err error) bool {
	if parent.Err() != nil {
		return false
	}
	return transport.IsRetryable(err)
}

// backoffDelay is the sleep before retry attempt a (1-based), doubling
// from base and capped at 16×base.
func backoffDelay(base time.Duration, a int) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	d := base << uint(a-1)
	if maxD := 16 * base; d > maxD || d <= 0 {
		d = maxD
	}
	return d
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// errPeerGone marks reconnect-budget exhaustion on the S2 side.
var errPeerGone = errors.New("deploy: peer reconnect budget exhausted")
