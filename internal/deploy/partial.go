package deploy

import (
	"context"
	"fmt"
	"math"
	"math/big"
	"math/bits"
	"time"

	"github.com/privconsensus/privconsensus/internal/ingest"
	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// Partial participation for the two-server deployment.
//
// When ServerOptions.Quorum or ServerOptions.SubmitDeadline is set the
// collector releases the protocol before every user has submitted, and each
// query instance runs over the subset of users that actually showed up.
// Correctness then hinges on S1 and S2 summing the *same* subset: the
// servers agree on it per instance with a participant-bitmap exchange on
// the peer link, before any protocol message:
//
//	participants := Message{Kind: KindControl,
//	                        Flags: [104, instance], Values: [bitmap]}  S1→S2
//	ack          := Message{Kind: KindControl,
//	                        Flags: [105, instance], Values: [agreed]}  S2→S1
//
// bitmap bit u is set iff user u's validated submission for the instance is
// held locally. S2 replies with the intersection of S1's proposal and its
// own set; S1 verifies the agreed set is a subset of its proposal. Any
// malformed frame or non-subset ack is marked fatal (transport.MarkFatal):
// a retry cannot fix a peer that disagrees about who participated. With
// both options unset none of these frames are emitted and the wire format
// is byte-for-byte the full-participation protocol.

// capPartial is the hello capability bit advertising partial participation.
// Both servers must agree, like capResilient: the exchange frames change
// the peer wire format.
const capPartial int64 = 2

// capBatched is the hello capability bit advertising the tournament argmax
// with batched DGK comparison frames. It is advertised whenever the
// resolved strategy is tournament (the default); a server pinned to the
// all-pairs oracle omits it, keeping that hello byte-for-byte the legacy
// format. Both servers must resolve to the same strategy: the bracket
// schedule and the batch frames change the peer wire format.
const capBatched int64 = 4

// capPacked is the hello capability bit advertising slot-packed
// submissions (bit 5, shared with the ingestion tier's relay hello). Both
// servers must resolve to the same packing mode: packed submissions change
// the submit frame grammar and insert the blinded unpack round into the
// peer wire format.
const capPacked int64 = ingest.CapPacked

// Participant exchange control codes (Flags[0] of KindControl frames).
const (
	ctrlParticipants    int64 = 104 // [code, instance] + Values [bitmap]  S1→S2
	ctrlParticipantsAck int64 = 105 // [code, instance] + Values [agreed]  S2→S1
)

// submissionsRejected counts submissions the collector refused, by reason
// (unknown-user, bad-instance, bad-length, out-of-ring, duplicate, late).
func submissionsRejected(reason string) *obs.Counter {
	return obs.Default.Counter("privconsensus_submissions_rejected_total",
		"User submissions rejected by server-side validation.",
		obs.L("reason", reason))
}

// helloCaps returns the capability flags this server advertises (S2) or
// expects (S1) in the peer hello. cfg is the resolved protocol config (after
// any ServerOptions overrides): the argmax strategy lives there rather than
// in the options.
func (o ServerOptions) helloCaps(cfg protocol.Config) int64 {
	caps := int64(0)
	if o.resilient() {
		caps |= capResilient
	}
	if o.partial() {
		caps |= capPartial
	}
	if cfg.ResolvedArgmaxStrategy() == protocol.StrategyTournament {
		caps |= capBatched
	}
	if o.traced() {
		caps |= capTrace
	}
	if cfg.Packing {
		caps |= capPacked
	}
	return caps
}

// partial reports whether partial participation is enabled.
func (o ServerOptions) partial() bool { return o.Quorum > 0 || o.SubmitDeadline > 0 }

// quorumCount resolves the Quorum option against the configured user count:
// (0,1) is a fraction rounded up, >= 1 an absolute count, 0 means any
// participation (1). The result is clamped to [1, users].
func (o ServerOptions) quorumCount(users int) int {
	q := 1
	switch {
	case o.Quorum <= 0:
	case o.Quorum < 1:
		q = int(math.Ceil(o.Quorum * float64(users)))
	default:
		q = int(math.Round(o.Quorum))
	}
	if q < 1 {
		q = 1
	}
	if q > users {
		q = users
	}
	return q
}

// submitWindow is the collector release deadline: SubmitDeadline, or the
// attempt timeout when only Quorum was set.
func (o ServerOptions) submitWindow() time.Duration {
	if o.SubmitDeadline > 0 {
		return o.SubmitDeadline
	}
	return o.attemptTimeout()
}

// checkPeerCaps verifies (on S1) that S2's advertised capabilities match
// this server's session options and resolved protocol config; mismatches
// would desynchronize the wire.
func checkPeerCaps(caps int64, opts ServerOptions, cfg protocol.Config) error {
	if opts.resilient() && caps&capResilient == 0 {
		return fmt.Errorf("deploy: peer S2 did not advertise session resilience; run both servers with the same -max-retries")
	}
	if opts.partial() != (caps&capPartial != 0) {
		return fmt.Errorf("deploy: S1 and S2 disagree on partial participation; run both servers with the same -quorum and -submit-deadline")
	}
	tournament := cfg.ResolvedArgmaxStrategy() == protocol.StrategyTournament
	if tournament != (caps&capBatched != 0) {
		return fmt.Errorf("deploy: S1 and S2 disagree on the argmax strategy; run both servers with the same -argmax")
	}
	if opts.traced() != (caps&capTrace != 0) {
		return fmt.Errorf("deploy: S1 and S2 disagree on trace journaling; run both servers with the same -journal setting")
	}
	if cfg.Packing != (caps&capPacked != 0) {
		return fmt.Errorf("deploy: S1 and S2 disagree on slot packing; run both servers with the same -packed setting")
	}
	return nil
}

// popcount returns the number of set bits in a participant bitmap.
func popcount(bm *big.Int) int {
	n := 0
	for _, w := range bm.Bits() {
		n += bits.OnesCount(uint(w))
	}
	return n
}

// bitmapIndices returns the set bit positions below users, ascending.
func bitmapIndices(bm *big.Int, users int) []int {
	out := make([]int, 0, popcount(bm))
	for u := 0; u < users; u++ {
		if bm.Bit(u) == 1 {
			out = append(out, u)
		}
	}
	return out
}

// exchangeParticipantsS1 proposes S1's local participant set for one
// instance and returns the agreed set from S2's ack. An ack that is not a
// subset of the proposal is a fatal protocol mismatch: it would make the
// servers sum different share subsets and decrypt garbage.
func exchangeParticipantsS1(ctx context.Context, conn transport.Conn, instance int, proposal *big.Int) (*big.Int, error) {
	err := conn.Send(ctx, &transport.Message{
		Kind:   transport.KindControl,
		Flags:  []int64{ctrlParticipants, int64(instance)},
		Values: []*big.Int{proposal},
	})
	if err != nil {
		return nil, fmt.Errorf("deploy: send participants for instance %d: %w", instance, err)
	}
	msg, err := transport.ExpectKind(ctx, conn, transport.KindControl)
	if err != nil {
		return nil, fmt.Errorf("deploy: participants ack for instance %d: %w", instance, err)
	}
	if len(msg.Flags) != 2 || msg.Flags[0] != ctrlParticipantsAck ||
		msg.Flags[1] != int64(instance) || len(msg.Values) != 1 || msg.Values[0] == nil {
		return nil, transport.MarkFatal(fmt.Errorf("deploy: malformed participants ack %v for instance %d", msg.Flags, instance))
	}
	agreed := msg.Values[0]
	if agreed.Sign() < 0 || new(big.Int).AndNot(agreed, proposal).Sign() != 0 {
		return nil, transport.MarkFatal(fmt.Errorf("deploy: instance %d participant bitmap mismatch (agreed set is not a subset of the proposal): %w",
			instance, protocol.ErrPeerMismatch))
	}
	return agreed, nil
}

// exchangeParticipantsS2 receives S1's proposal for one instance, replies
// with the intersection against S2's local set, and returns it.
func exchangeParticipantsS2(ctx context.Context, conn transport.Conn, instance int, local *big.Int) (*big.Int, error) {
	msg, err := transport.ExpectKind(ctx, conn, transport.KindControl)
	if err != nil {
		return nil, fmt.Errorf("deploy: participants for instance %d: %w", instance, err)
	}
	if len(msg.Flags) != 2 || msg.Flags[0] != ctrlParticipants || len(msg.Values) != 1 || msg.Values[0] == nil {
		return nil, transport.MarkFatal(fmt.Errorf("deploy: malformed participants frame %v for instance %d", msg.Flags, instance))
	}
	if msg.Flags[1] != int64(instance) {
		return nil, transport.MarkFatal(fmt.Errorf("deploy: participants frame for instance %d while running instance %d: %w",
			msg.Flags[1], instance, protocol.ErrPeerMismatch))
	}
	proposal := msg.Values[0]
	if proposal.Sign() < 0 {
		return nil, transport.MarkFatal(fmt.Errorf("deploy: negative participant bitmap for instance %d", instance))
	}
	agreed := new(big.Int).And(proposal, local)
	err = conn.Send(ctx, &transport.Message{
		Kind:   transport.KindControl,
		Flags:  []int64{ctrlParticipantsAck, int64(instance)},
		Values: []*big.Int{agreed},
	})
	if err != nil {
		return nil, fmt.Errorf("deploy: send participants ack for instance %d: %w", instance, err)
	}
	return agreed, nil
}
