package deploy

import (
	"context"
	"errors"
	"math/big"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// testHalf builds a well-shaped submission half whose ciphertexts all carry
// the given value (no real crypto — collector validation only looks at
// shape and ring membership).
func testHalf(classes int, val int64) protocol.SubmissionHalf {
	group := func() []*paillier.Ciphertext {
		out := make([]*paillier.Ciphertext, classes)
		for i := range out {
			out[i] = &paillier.Ciphertext{C: big.NewInt(val)}
		}
		return out
	}
	return protocol.SubmissionHalf{Votes: group(), Thresh: group(), Noisy: group()}
}

// TestCollectorValidation drives every rejection path of the hardened
// ingestion: hostile frames are refused with the right reason and never
// enter the grid, while the one tolerated case (byte-identical replay)
// keeps exact-once semantics.
func TestCollectorValidation(t *testing.T) {
	const classes = 3
	ring := big.NewInt(1000)
	col := newCollector(2, 2, classes, ring)

	reject := func(name string, user, instance int, h protocol.SubmissionHalf) {
		t.Helper()
		err := col.add(user, instance, h)
		if !errors.Is(err, errRejectedSubmission) {
			t.Errorf("%s: err = %v, want rejection", name, err)
		}
	}
	reject("unknown user", -1, 0, testHalf(classes, 5))
	reject("unknown user high", 2, 0, testHalf(classes, 5))
	reject("bad instance", 0, 7, testHalf(classes, 5))
	reject("bad length", 0, 0, testHalf(classes+1, 5))
	reject("out of ring", 0, 0, testHalf(classes, 1000))
	reject("negative ciphertext", 0, 0, testHalf(classes, -3))

	if err := col.add(0, 0, testHalf(classes, 5)); err != nil {
		t.Fatalf("valid submission rejected: %v", err)
	}
	// Byte-identical replay: tolerated duplicate, still one participant.
	if err := col.add(0, 0, testHalf(classes, 5)); !errors.Is(err, errDuplicateSubmission) {
		t.Errorf("identical replay: err = %v, want duplicate sentinel", err)
	}
	// Conflicting resubmission: first write wins.
	reject("conflicting resubmission", 0, 0, testHalf(classes, 6))
	if bm := col.bitmap(0); popcount(bm) != 1 || bm.Bit(0) != 1 {
		t.Errorf("bitmap after replays = %v, want only user 0", bm)
	}
	got, _ := col.counts()
	if got != 1 {
		t.Errorf("counts after replays = %d cells, want 1", got)
	}

	// After release, anything new is late; the stored grid stays frozen.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := col.waitQuorum(ctx, time.Millisecond, "s1"); err != nil {
		t.Fatal(err)
	}
	reject("late", 1, 0, testHalf(classes, 5))
	// An identical replay of a pre-release submission is still tolerated
	// after release (the reconnecting user is not a new participant).
	if err := col.add(0, 0, testHalf(classes, 5)); !errors.Is(err, errDuplicateSubmission) {
		t.Errorf("post-release identical replay: err = %v, want duplicate sentinel", err)
	}
}

// TestCollectorDedupReplay asserts the exact-once guarantee the resilient
// upload leans on: a reconnect replay counts as one participant and leaves
// the stored bytes untouched, so the aggregated sum cannot double-spend a
// vote.
func TestCollectorDedupReplay(t *testing.T) {
	const classes = 2
	col := newCollector(3, 1, classes, nil)
	h := testHalf(classes, 42)
	if err := col.add(1, 0, h); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // replayed upload after reconnects
		if err := col.add(1, 0, testHalf(classes, 42)); !errors.Is(err, errDuplicateSubmission) {
			t.Fatalf("replay %d: err = %v, want duplicate sentinel", i, err)
		}
	}
	bm := col.bitmap(0)
	if popcount(bm) != 1 {
		t.Fatalf("replays inflated the participant set: bitmap %v", bm)
	}
	groups, err := col.maskedGroups(0, bm)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0].Members) != 1 || groups[0].Members[0] != 1 {
		t.Fatalf("masked groups = %+v, want the single user 1", groups)
	}
	if !groups[0].Half.Present() || !halfEqual(groups[0].Half, h) {
		t.Error("stored submission bytes changed across replays")
	}
}

// TestParticipantExchange runs the bitmap agreement over a live pipe: the
// agreed set is the intersection of the two servers' local sets on both
// ends.
func TestParticipantExchange(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	a, b := transport.Pair()
	defer a.Close()
	defer b.Close()

	bits := func(idx ...int) *big.Int {
		bm := new(big.Int)
		for _, u := range idx {
			bm.SetBit(bm, u, 1)
		}
		return bm
	}
	type res struct {
		agreed *big.Int
		err    error
	}
	ch := make(chan res, 1)
	go func() {
		agreed, err := exchangeParticipantsS1(ctx, a, 4, bits(0, 2, 3))
		ch <- res{agreed, err}
	}()
	agreed2, err := exchangeParticipantsS2(ctx, b, 4, bits(0, 1, 3))
	if err != nil {
		t.Fatalf("S2 exchange: %v", err)
	}
	r1 := <-ch
	if r1.err != nil {
		t.Fatalf("S1 exchange: %v", r1.err)
	}
	want := bits(0, 3)
	if r1.agreed.Cmp(want) != 0 || agreed2.Cmp(want) != 0 {
		t.Errorf("agreed sets %v / %v, want %v on both ends", r1.agreed, agreed2, want)
	}
}

// TestParticipantExchangeMismatchIsFatal: an ack claiming users S1 never
// proposed means the servers would sum different subsets — S1 must classify
// it fatal (non-retryable) instead of running the protocol.
func TestParticipantExchangeMismatchIsFatal(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	a, b := transport.Pair()
	defer a.Close()
	defer b.Close()

	go func() {
		// Hostile S2: acks with a superset of the proposal.
		if _, err := transport.ExpectKind(ctx, b, transport.KindControl); err != nil {
			return
		}
		_ = b.Send(ctx, &transport.Message{
			Kind:   transport.KindControl,
			Flags:  []int64{ctrlParticipantsAck, 0},
			Values: []*big.Int{big.NewInt(0b111)},
		})
	}()
	_, err := exchangeParticipantsS1(ctx, a, 0, big.NewInt(0b011))
	if err == nil {
		t.Fatal("non-subset ack accepted")
	}
	if !errors.Is(err, protocol.ErrPeerMismatch) {
		t.Errorf("err = %v, want ErrPeerMismatch", err)
	}
	if transport.IsRetryable(err) {
		t.Errorf("bitmap mismatch classified retryable: %v", err)
	}

	// Malformed frame on the S2 side: wrong instance index is fatal too.
	c, d := transport.Pair()
	defer c.Close()
	defer d.Close()
	go func() {
		_ = c.Send(ctx, &transport.Message{
			Kind:   transport.KindControl,
			Flags:  []int64{ctrlParticipants, 9},
			Values: []*big.Int{big.NewInt(1)},
		})
	}()
	_, err = exchangeParticipantsS2(ctx, d, 2, big.NewInt(1))
	if err == nil || transport.IsRetryable(err) {
		t.Errorf("cross-instance participants frame not fatal: %v", err)
	}
}

// TestQuorumCountResolution covers the fraction/absolute/clamping rules.
func TestQuorumCountResolution(t *testing.T) {
	cases := []struct {
		quorum float64
		users  int
		want   int
	}{
		{0, 10, 1},     // any participation
		{0.5, 10, 5},   // fraction
		{0.51, 10, 6},  // fraction rounds up
		{0.05, 10, 1},  // tiny fraction still needs someone
		{1, 10, 1},     // absolute one
		{7, 10, 7},     // absolute count
		{25, 10, 10},   // clamped to users
		{0.9999, 3, 3}, // fraction ceil hits users
		{2.4, 10, 2},   // absolute rounds
	}
	for _, c := range cases {
		got := ServerOptions{Quorum: c.quorum}.quorumCount(c.users)
		if got != c.want {
			t.Errorf("quorumCount(%g, %d users) = %d, want %d", c.quorum, c.users, got, c.want)
		}
	}
}

// TestPartialModeOffIsInert: with Quorum and SubmitDeadline unset the hello
// advertises nothing and instance preparation never touches the peer link —
// the nil conn below would panic on any send — so the wire format stays the
// pre-partial protocol byte for byte.
func TestPartialModeOffIsInert(t *testing.T) {
	opts := ServerOptions{Instances: 1}
	if opts.partial() {
		t.Fatal("default options report partial participation")
	}
	const classes = 2
	cfg := protocol.DefaultConfig(2)
	cfg.Classes = classes
	// The all-pairs oracle keeps the hello byte-for-byte legacy: no caps.
	oracle := cfg
	oracle.ArgmaxStrategy = protocol.StrategyAllPairs
	if caps := opts.helloCaps(oracle); caps != 0 {
		t.Fatalf("all-pairs hello caps = %d, want 0 (legacy one-flag hello)", caps)
	}
	if err := checkPeerCaps(0, opts, oracle); err != nil {
		t.Fatalf("legacy hello rejected: %v", err)
	}
	// The default strategy is tournament, advertised as capBatched.
	if caps := opts.helloCaps(cfg); caps != capBatched {
		t.Fatalf("default hello caps = %d, want capBatched (%d)", caps, capBatched)
	}
	if err := checkPeerCaps(capBatched, opts, cfg); err != nil {
		t.Fatalf("tournament hello rejected by tournament server: %v", err)
	}
	// Strategy mismatch is caught at the hello, both directions.
	if err := checkPeerCaps(0, opts, cfg); err == nil {
		t.Error("legacy hello accepted by a tournament server")
	}
	if err := checkPeerCaps(capBatched, opts, oracle); err == nil {
		t.Error("tournament hello accepted by an all-pairs server")
	}
	col := newCollector(2, 1, classes, nil)
	for u := 0; u < 2; u++ {
		if err := col.add(u, 0, testHalf(classes, int64(u+1))); err != nil {
			t.Fatal(err)
		}
	}
	s := &serverSetup{cfg: cfg, col: col}
	subs, participants, err := prepareSubs(context.Background(), s, opts, "s1", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if participants != 2 || len(subs) != 2 || !subs[0].Half.Present() || !subs[1].Half.Present() {
		t.Errorf("full-participation prepare returned %d participants, %d groups", participants, len(subs))
	}

	// Mode mismatch is caught at the hello: a partial S2 against a plain S1.
	if err := checkPeerCaps(capPartial|capBatched, opts, cfg); err == nil {
		t.Error("partial-capability hello accepted by a full-participation server")
	}
	partialOpts := ServerOptions{Instances: 1, Quorum: 0.5}
	if err := checkPeerCaps(capBatched, partialOpts, cfg); err == nil {
		t.Error("legacy hello accepted by a partial-participation server")
	}
}

// TestPartialDeploymentEndToEnd runs the full two-server TCP deployment
// with a submit deadline while one configured user never shows up: both
// instances must complete over the two present users and report the same
// participant-aware outcome.
func TestPartialDeploymentEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-endpoint deployment test is slow in -short mode")
	}
	const users = 3
	s1File, s2File, pubFile, cfg := testSetup(t, users)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	const instances = 2
	partial := func(listen, peer string, seed int64, ready chan string) ServerOptions {
		return ServerOptions{
			ListenAddr:     listen,
			PeerAddr:       peer,
			Instances:      instances,
			Seed:           seed,
			Ready:          ready,
			Quorum:         0.5,
			SubmitDeadline: 5 * time.Second,
			AttemptTimeout: 45 * time.Second,
		}
	}

	type repResult struct {
		rep *Report
		err error
	}
	s1Ready := make(chan string, 1)
	s1Done := make(chan repResult, 1)
	go func() {
		rep, err := RunS1Report(ctx, s1File, partial("127.0.0.1:0", "", 211, s1Ready))
		s1Done <- repResult{rep, err}
	}()
	s1Addr := <-s1Ready

	s2Ready := make(chan string, 1)
	s2Done := make(chan repResult, 1)
	go func() {
		rep, err := RunS2Report(ctx, s2File, partial("127.0.0.1:0", s1Addr, 212, s2Ready))
		s2Done <- repResult{rep, err}
	}()
	s2Addr := <-s2Ready

	// Users 0 and 1 vote class 2 on both instances; user 2 never connects.
	userErr := make(chan error, 2)
	for u := 0; u < 2; u++ {
		go func(u int) {
			votes := [][]float64{oneHot(cfg.Classes, 2), oneHot(cfg.Classes, 2)}
			userErr <- SubmitVotes(ctx, pubFile, UserOptions{
				User: u, S1Addr: s1Addr, S2Addr: s2Addr, Seed: int64(320 + u),
			}, votes)
		}(u)
	}
	for u := 0; u < 2; u++ {
		if err := <-userErr; err != nil {
			t.Fatalf("user submit: %v", err)
		}
	}

	r1 := <-s1Done
	r2 := <-s2Done
	if r1.err != nil {
		t.Fatalf("S1: %v", r1.err)
	}
	if r2.err != nil {
		t.Fatalf("S2: %v", r2.err)
	}
	for i := 0; i < instances; i++ {
		a, b := r1.rep.Results[i], r2.rep.Results[i]
		if a.Err != nil || b.Err != nil {
			t.Fatalf("instance %d failed: s1=%v s2=%v", i, a.Err, b.Err)
		}
		if a.Outcome != b.Outcome {
			t.Errorf("instance %d: servers disagree: %+v vs %+v", i, a.Outcome, b.Outcome)
		}
		if a.Participants != 2 || a.Dropped != 1 {
			t.Errorf("instance %d: participants=%d dropped=%d, want 2/1", i, a.Participants, a.Dropped)
		}
		// Unanimous among the participants and T = 50% of 2 participants:
		// the dropout must not block consensus.
		if !a.Outcome.Consensus || a.Outcome.Label != 2 {
			t.Errorf("instance %d: outcome %+v, want consensus on 2 over the partial set", i, a.Outcome)
		}
		if a.Outcome.Participants != 2 {
			t.Errorf("instance %d: outcome participants = %d, want 2", i, a.Outcome.Participants)
		}
	}
}

// TestQuorumNotMetEndToEnd: with a quorum above the turnout both servers
// must release at the deadline, agree the instance cannot run, fail it with
// ErrQuorumNotMet — and not hang or tear down the deployment.
func TestQuorumNotMetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-endpoint deployment test is slow in -short mode")
	}
	const users = 3
	s1File, s2File, pubFile, cfg := testSetup(t, users)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	opts := func(listen, peer string, seed int64, ready chan string) ServerOptions {
		return ServerOptions{
			ListenAddr:     listen,
			PeerAddr:       peer,
			Instances:      1,
			Seed:           seed,
			Ready:          ready,
			Quorum:         3, // all three users — but only one shows up
			SubmitDeadline: 2 * time.Second,
			AttemptTimeout: 30 * time.Second,
		}
	}
	type repResult struct {
		rep *Report
		err error
	}
	s1Ready := make(chan string, 1)
	s1Done := make(chan repResult, 1)
	go func() {
		rep, err := RunS1Report(ctx, s1File, opts("127.0.0.1:0", "", 221, s1Ready))
		s1Done <- repResult{rep, err}
	}()
	s1Addr := <-s1Ready
	s2Ready := make(chan string, 1)
	s2Done := make(chan repResult, 1)
	go func() {
		rep, err := RunS2Report(ctx, s2File, opts("127.0.0.1:0", s1Addr, 222, s2Ready))
		s2Done <- repResult{rep, err}
	}()
	s2Addr := <-s2Ready

	if err := SubmitVotes(ctx, pubFile, UserOptions{
		User: 0, S1Addr: s1Addr, S2Addr: s2Addr, Seed: 330,
	}, [][]float64{oneHot(cfg.Classes, 1)}); err != nil {
		t.Fatalf("user submit: %v", err)
	}

	r1 := <-s1Done
	r2 := <-s2Done
	if r1.err != nil {
		t.Fatalf("S1 structural failure: %v", r1.err)
	}
	if r2.err != nil {
		t.Fatalf("S2 structural failure: %v", r2.err)
	}
	for role, rep := range map[string]*Report{"s1": r1.rep, "s2": r2.rep} {
		res := rep.Results[0]
		if !errors.Is(res.Err, protocol.ErrQuorumNotMet) {
			t.Errorf("%s instance 0: err = %v, want ErrQuorumNotMet", role, res.Err)
		}
		if res.Participants != 1 || res.Dropped != 2 {
			t.Errorf("%s instance 0: participants=%d dropped=%d, want 1/2", role, res.Participants, res.Dropped)
		}
		if res.Outcome.Consensus || res.Outcome.Label != -1 {
			t.Errorf("%s instance 0: outcome %+v, want the clean placeholder", role, res.Outcome)
		}
	}
}
