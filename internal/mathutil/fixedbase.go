package mathutil

// Fixed-base and simultaneous modular-exponentiation kernels for the
// protocol hot path. Every protocol phase bottoms out in big.Int.Exp with a
// base that is fixed for the lifetime of a key (DGK's g and h, Paillier's
// blinding base), so a windowed precomputation table turns each
// exponentiation into a short chain of multiplications with no squarings:
//
//	base^e = Π_i base^(d_i · 2^(w·i))   where e = Σ_i d_i · 2^(w·i)
//
// with every factor base^(d · 2^(w·i)) looked up from the table. For a
// t-bit exponent and window w this costs ~t/w multiplications against the
// ~1.3t of a generic square-and-multiply.
//
// For one-shot base pairs, MultiExp implements Shamir's simultaneous
// exponentiation: a^x · b^y over a single shared squaring chain.
//
// Tables are immutable after construction and safe for concurrent use
// without locks; build them once per (base, modulus) at key-load time and
// share them across worker pools.

import (
	"errors"
	"fmt"
	"math/big"
)

// Errors returned by the fixed-base kernel constructors.
var (
	ErrEvenModulus = errors.New("mathutil: fixed-base modulus must be odd")
	ErrBadModulus  = errors.New("mathutil: fixed-base modulus must be > 2")
	ErrBadMaxBits  = errors.New("mathutil: fixed-base maxBits must be positive")
	ErrNilBase     = errors.New("mathutil: fixed-base base must be non-nil")
)

// FixedBaseExp answers modular exponentiations for one fixed (base,
// modulus) pair from a windowed precomputation table. The table holds
// base^(d · 2^(w·i)) mod m for every window position i and digit d, so an
// in-range exponentiation performs only table lookups and multiplications.
// Exponents that are negative or wider than maxBits fall back to
// big.Int.Exp (never truncate); the two paths are distinguishable through
// the privconsensus_fixedbase_{hits,fallbacks}_total counters.
type FixedBaseExp struct {
	base    *big.Int
	modulus *big.Int
	window  uint
	digits  int
	maxBits int
	// table[i][d-1] = base^(d · 2^(window·i)) mod modulus, d in [1, 2^window).
	table [][]*big.Int
}

// windowFor picks the window width: wider windows mean fewer multiplications
// per exponentiation ( ceil(maxBits/w) ) but 2^w - 1 table entries per
// window position. The widths below keep tables at a few thousand entries —
// hundreds of KB at protocol moduli — while minimizing the multiplication
// count.
func windowFor(maxBits int) uint {
	switch {
	case maxBits <= 16:
		return 2
	case maxBits <= 48:
		return 4
	case maxBits <= 240:
		return 6
	default:
		return 7
	}
}

// NewFixedBaseExp precomputes the window table for base^e mod modulus with
// exponents up to maxBits bits. The modulus must be odd (matching the
// Montgomery-friendly moduli of the crypto packages) and > 2. The table is
// immutable once built and safe for lock-free concurrent reads.
func NewFixedBaseExp(base, modulus *big.Int, maxBits int) (*FixedBaseExp, error) {
	if base == nil {
		return nil, ErrNilBase
	}
	if modulus == nil || modulus.Cmp(Two) <= 0 {
		return nil, fmt.Errorf("%w, got %v", ErrBadModulus, modulus)
	}
	if modulus.Bit(0) == 0 {
		return nil, fmt.Errorf("%w, got %v", ErrEvenModulus, modulus)
	}
	if maxBits <= 0 {
		return nil, fmt.Errorf("%w, got %d", ErrBadMaxBits, maxBits)
	}
	m := new(big.Int).Set(modulus)
	b := new(big.Int).Mod(base, m)
	w := windowFor(maxBits)
	digits := (maxBits + int(w) - 1) / int(w)
	table := make([][]*big.Int, digits)
	cur := new(big.Int).Set(b) // base^(2^(w·i)) as i advances
	for i := 0; i < digits; i++ {
		row := make([]*big.Int, (1<<w)-1)
		row[0] = new(big.Int).Set(cur)
		for d := 2; d < 1<<w; d++ {
			row[d-1] = new(big.Int).Mul(row[d-2], cur)
			row[d-1].Mod(row[d-1], m)
		}
		table[i] = row
		if i < digits-1 {
			for j := uint(0); j < w; j++ {
				cur.Mul(cur, cur)
				cur.Mod(cur, m)
			}
		}
	}
	fixedBaseTables.Inc()
	return &FixedBaseExp{
		base: b, modulus: m,
		window: w, digits: digits, maxBits: maxBits,
		table: table,
	}, nil
}

// MaxBits reports the widest exponent the table covers.
func (f *FixedBaseExp) MaxBits() int { return f.maxBits }

// Modulus returns the table's modulus. Callers must not mutate it.
func (f *FixedBaseExp) Modulus() *big.Int { return f.modulus }

// Exp returns base^e mod modulus. Exponents in [0, 2^maxBits) are answered
// from the table with only multiplications; anything else (negative, nil or
// oversized) falls back to big.Int.Exp so results are never truncated.
func (f *FixedBaseExp) Exp(e *big.Int) *big.Int {
	if e == nil {
		e = Zero
	}
	if e.Sign() < 0 || e.BitLen() > f.maxBits {
		fixedBaseFallbacks.Inc()
		return new(big.Int).Exp(f.base, e, f.modulus)
	}
	fixedBaseHits.Inc()
	// The accumulator starts as a copy of the first live table entry and
	// the product scratch is reused across iterations, so a warm walk costs
	// one Mul and one Mod per nonzero digit with no per-step allocations.
	var acc, prod big.Int
	started := false
	for i := 0; i < f.digits; i++ {
		d := f.digit(e, i)
		if d == 0 {
			continue
		}
		entry := f.table[i][d-1]
		if !started {
			acc.Set(entry)
			started = true
			continue
		}
		prod.Mul(&acc, entry)
		acc.Mod(&prod, f.modulus)
	}
	if !started {
		acc.SetInt64(1) // e == 0 (modulus > 2, so 1 needs no reduction)
	}
	return &acc
}

// MulExp returns f.base^x · g.base^y mod the shared modulus — the
// fixed-base form of a simultaneous exponentiation, used for DGK's
// g^m · h^r. Both tables must share one modulus; mismatched tables fall
// back to composing the per-table results modulo f's modulus.
func (f *FixedBaseExp) MulExp(g *FixedBaseExp, x, y *big.Int) *big.Int {
	out := f.Exp(x)
	out.Mul(out, g.Exp(y))
	return out.Mod(out, f.modulus)
}

// digit extracts the i-th base-2^window digit of e.
func (f *FixedBaseExp) digit(e *big.Int, i int) uint {
	off := i * int(f.window)
	var d uint
	for j := 0; j < int(f.window); j++ {
		d |= e.Bit(off+j) << j
	}
	return d
}

// MultiExp computes a^x · b^y mod m for one-shot bases using Shamir's
// simultaneous square-and-multiply: one shared squaring chain of
// max(|x|, |y|) squarings instead of two, with a^b precombined. The result
// equals the composition Exp(a,x,m) · Exp(b,y,m) mod m exactly (the
// differential fuzz targets enforce this).
//
// m must be positive and the exponents non-negative; negative exponents
// fall back to the big.Int.Exp composition (which yields modular inverses
// when they exist and nil otherwise), and a nil or non-positive m returns
// nil.
func MultiExp(a, x, b, y, m *big.Int) *big.Int {
	if a == nil || b == nil || x == nil || y == nil || m == nil || m.Sign() <= 0 {
		return nil
	}
	if x.Sign() < 0 || y.Sign() < 0 {
		ax := new(big.Int).Exp(a, x, m)
		if ax == nil {
			return nil
		}
		by := new(big.Int).Exp(b, y, m)
		if by == nil {
			return nil
		}
		ax.Mul(ax, by)
		return ax.Mod(ax, m)
	}
	am := new(big.Int).Mod(a, m)
	bm := new(big.Int).Mod(b, m)
	ab := new(big.Int).Mul(am, bm)
	ab.Mod(ab, m)
	acc := new(big.Int).Mod(One, m) // 0 when m == 1, matching big.Int.Exp
	n := x.BitLen()
	if y.BitLen() > n {
		n = y.BitLen()
	}
	for i := n - 1; i >= 0; i-- {
		acc.Mul(acc, acc)
		acc.Mod(acc, m)
		var factor *big.Int
		switch {
		case x.Bit(i) == 1 && y.Bit(i) == 1:
			factor = ab
		case x.Bit(i) == 1:
			factor = am
		case y.Bit(i) == 1:
			factor = bm
		default:
			continue
		}
		acc.Mul(acc, factor)
		acc.Mod(acc, m)
	}
	return acc
}
