// Package mathutil provides big-integer helpers shared by the cryptographic
// packages: random sampling, prime generation, and modular arithmetic with
// signed-value encodings.
//
// All randomness is drawn from an injected io.Reader so that tests can run
// deterministically; production callers pass crypto/rand.Reader.
package mathutil

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Common small constants, shared to avoid re-allocation. Callers must not
// mutate them.
var (
	Zero = big.NewInt(0)
	One  = big.NewInt(1)
	Two  = big.NewInt(2)
)

// ErrNoInverse is returned when a modular inverse does not exist.
var ErrNoInverse = errors.New("mathutil: modular inverse does not exist")

// RandInt returns a uniformly random integer in [0, max). max must be > 0.
func RandInt(rng io.Reader, max *big.Int) (*big.Int, error) {
	if max.Sign() <= 0 {
		return nil, fmt.Errorf("mathutil: RandInt bound must be positive, got %v", max)
	}
	if rng == nil {
		rng = rand.Reader
	}
	n, err := rand.Int(rng, max)
	if err != nil {
		return nil, fmt.Errorf("mathutil: sample random int: %w", err)
	}
	return n, nil
}

// RandBits returns a uniformly random integer with at most bits bits,
// i.e. in [0, 2^bits).
func RandBits(rng io.Reader, bits int) (*big.Int, error) {
	if bits <= 0 {
		return nil, fmt.Errorf("mathutil: RandBits needs positive bit count, got %d", bits)
	}
	bound := new(big.Int).Lsh(One, uint(bits))
	return RandInt(rng, bound)
}

// RandUnit returns a uniformly random element of the multiplicative group
// Z_n^*, i.e. an integer in [1, n) coprime to n.
func RandUnit(rng io.Reader, n *big.Int) (*big.Int, error) {
	if n.Cmp(Two) < 0 {
		return nil, fmt.Errorf("mathutil: RandUnit modulus must be >= 2, got %v", n)
	}
	gcd := new(big.Int)
	for i := 0; i < 1000; i++ {
		r, err := RandInt(rng, n)
		if err != nil {
			return nil, err
		}
		if r.Sign() == 0 {
			continue
		}
		gcd.GCD(nil, nil, r, n)
		if gcd.Cmp(One) == 0 {
			return r, nil
		}
	}
	return nil, errors.New("mathutil: failed to sample a unit after 1000 attempts")
}

// RandPrime returns a random prime of exactly bits bits.
func RandPrime(rng io.Reader, bits int) (*big.Int, error) {
	if bits < 2 {
		return nil, fmt.Errorf("mathutil: prime bit length must be >= 2, got %d", bits)
	}
	if rng == nil {
		rng = rand.Reader
	}
	p, err := rand.Prime(rng, bits)
	if err != nil {
		return nil, fmt.Errorf("mathutil: generate %d-bit prime: %w", bits, err)
	}
	return p, nil
}

// ModInverse returns a^{-1} mod n, or ErrNoInverse if gcd(a, n) != 1.
func ModInverse(a, n *big.Int) (*big.Int, error) {
	inv := new(big.Int).ModInverse(a, n)
	if inv == nil {
		return nil, ErrNoInverse
	}
	return inv, nil
}

// Mod returns a mod n normalized to [0, n).
func Mod(a, n *big.Int) *big.Int {
	return new(big.Int).Mod(a, n)
}

// ToSigned interprets v in [0, n) as a signed residue in [-n/2, n/2):
// values above n/2 are mapped to v - n. This is the standard encoding for
// signed plaintexts in additively homomorphic schemes.
func ToSigned(v, n *big.Int) *big.Int {
	half := new(big.Int).Rsh(n, 1)
	out := new(big.Int).Mod(v, n)
	if out.Cmp(half) >= 0 {
		out.Sub(out, n)
	}
	return out
}

// FromSigned maps a signed value into [0, n) by reducing mod n.
func FromSigned(v, n *big.Int) *big.Int {
	return new(big.Int).Mod(v, n)
}

// CRTParams holds precomputed values for recombining residues mod p and q
// into a residue mod p*q via the Chinese Remainder Theorem.
type CRTParams struct {
	P, Q *big.Int
	// QInvP = q^{-1} mod p.
	QInvP *big.Int
	N     *big.Int // p * q
}

// NewCRTParams precomputes CRT recombination constants for coprime p, q.
func NewCRTParams(p, q *big.Int) (*CRTParams, error) {
	qInvP, err := ModInverse(q, p)
	if err != nil {
		return nil, fmt.Errorf("mathutil: p and q are not coprime: %w", err)
	}
	return &CRTParams{
		P:     new(big.Int).Set(p),
		Q:     new(big.Int).Set(q),
		QInvP: qInvP,
		N:     new(big.Int).Mul(p, q),
	}, nil
}

// Combine returns the unique x in [0, p*q) with x = xp mod p and x = xq mod q.
func (c *CRTParams) Combine(xp, xq *big.Int) *big.Int {
	// x = xq + q * ((xp - xq) * qInvP mod p)
	diff := new(big.Int).Sub(xp, xq)
	diff.Mod(diff, c.P)
	diff.Mul(diff, c.QInvP)
	diff.Mod(diff, c.P)
	diff.Mul(diff, c.Q)
	diff.Add(diff, xq)
	return diff.Mod(diff, c.N)
}

// Bits decomposes v into exactly width little-endian bits. It returns an
// error if v is negative or does not fit in width bits.
func Bits(v *big.Int, width int) ([]uint8, error) {
	if v.Sign() < 0 {
		return nil, fmt.Errorf("mathutil: Bits requires non-negative value, got %v", v)
	}
	if v.BitLen() > width {
		return nil, fmt.Errorf("mathutil: value %v exceeds %d bits", v, width)
	}
	bits := make([]uint8, width)
	for i := 0; i < width; i++ {
		bits[i] = uint8(v.Bit(i))
	}
	return bits, nil
}

// FromBits recomposes little-endian bits into an integer.
func FromBits(bits []uint8) *big.Int {
	v := new(big.Int)
	for i, b := range bits {
		if b != 0 {
			v.SetBit(v, i, 1)
		}
	}
	return v
}
