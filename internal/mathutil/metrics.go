package mathutil

import "github.com/privconsensus/privconsensus/internal/obs"

// Kernel counters on the obs default registry. They count exponentiation
// operations only — never exponents, bases or key material. The hit/fallback
// split makes the fixed-base speedup visible in /metrics: a healthy
// deployment answers nearly every fixed-base call from a table.
var (
	fixedBaseHits = obs.Default.Counter("privconsensus_fixedbase_hits_total",
		"Modular exponentiations answered from a fixed-base window table (multiplications only).")
	fixedBaseFallbacks = obs.Default.Counter("privconsensus_fixedbase_fallbacks_total",
		"Fixed-base exponentiations that fell back to big.Int.Exp (negative or wider-than-table exponent).")
	fixedBaseTables = obs.Default.Counter("privconsensus_fixedbase_tables_total",
		"Fixed-base window tables built (once per base/modulus pair per key).")
)

// WatchOps registers the fixed-base kernel counters on a tracer so each
// QueryTrace span records how much exponentiation work the tables absorbed.
func WatchOps(t *obs.Tracer) {
	t.Watch("fixedbase_hit", fixedBaseHits)
	t.Watch("fixedbase_fallback", fixedBaseFallbacks)
}
