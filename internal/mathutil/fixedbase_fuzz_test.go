package mathutil

import (
	"math/big"
	"testing"
)

// Differential fuzzing for the fixed-base kernels: on every input the
// optimized path must agree exactly with math/big's Exp, which serves as the
// reference implementation. Inputs are capped (the harness feeds arbitrary
// byte strings) so a single iteration stays fast enough for the CI budget.

const fuzzMaxBytes = 64 // 512-bit operands, matching protocol key sizes

func clampBytes(b []byte) []byte {
	if len(b) > fuzzMaxBytes {
		return b[:fuzzMaxBytes]
	}
	return b
}

// FuzzFixedBaseExp builds a table from fuzzed (base, modulus) material and
// checks Exp against big.Int.Exp for a fuzzed exponent — covering both the
// table walk (exponent within maxBits) and the oversized-exponent fallback,
// since maxBits comes from the fuzzer too.
func FuzzFixedBaseExp(f *testing.F) {
	f.Add([]byte{3}, []byte{101}, []byte{77}, uint8(16))
	f.Add([]byte{2}, []byte{0xff, 0xff}, []byte{0x12, 0x34, 0x56}, uint8(8))
	f.Add([]byte{0}, []byte{9}, []byte{0}, uint8(1))
	f.Add([]byte{0xfe, 0x12}, []byte{0xab, 0xcd, 0xef}, []byte{0xff, 0xff, 0xff, 0xff, 0xff}, uint8(40))
	f.Fuzz(func(t *testing.T, baseB, modB, expB []byte, maxBits uint8) {
		base := new(big.Int).SetBytes(clampBytes(baseB))
		m := new(big.Int).SetBytes(clampBytes(modB))
		m.SetBit(m, 0, 1) // force odd so construction can succeed
		e := new(big.Int).SetBytes(clampBytes(expB))
		fb, err := NewFixedBaseExp(base, m, int(maxBits))
		if err != nil {
			// Constructor rejections (m <= 2, maxBits == 0) are valid
			// outcomes for fuzzed input, not failures.
			return
		}
		got := fb.Exp(e)
		want := new(big.Int).Exp(base, e, m)
		if got.Cmp(want) != 0 {
			t.Fatalf("FixedBaseExp(base=%v, m=%v, maxBits=%d).Exp(%v) = %v, want %v",
				base, m, maxBits, e, got, want)
		}
	})
}

// FuzzMultiExp checks Shamir's simultaneous exponentiation against the
// two-Exp composition a^x · b^y mod m for arbitrary operands.
func FuzzMultiExp(f *testing.F) {
	f.Add([]byte{2}, []byte{10}, []byte{3}, []byte{4}, []byte{101})
	f.Add([]byte{0}, []byte{0}, []byte{0}, []byte{0}, []byte{1})
	f.Add([]byte{0xff}, []byte{0xff, 0xff}, []byte{0x7f}, []byte{0x80}, []byte{0xab, 0xcd})
	f.Fuzz(func(t *testing.T, aB, xB, bB, yB, mB []byte) {
		a := new(big.Int).SetBytes(clampBytes(aB))
		x := new(big.Int).SetBytes(clampBytes(xB))
		b := new(big.Int).SetBytes(clampBytes(bB))
		y := new(big.Int).SetBytes(clampBytes(yB))
		m := new(big.Int).SetBytes(clampBytes(mB))
		got := MultiExp(a, x, b, y, m)
		if m.Sign() <= 0 {
			if got != nil {
				t.Fatalf("MultiExp with m=%v: got %v, want nil", m, got)
			}
			return
		}
		want := new(big.Int).Exp(a, x, m)
		want.Mul(want, new(big.Int).Exp(b, y, m))
		want.Mod(want, m)
		if got == nil || got.Cmp(want) != 0 {
			t.Fatalf("MultiExp(a=%v, x=%v, b=%v, y=%v, m=%v) = %v, want %v",
				a, x, b, y, m, got, want)
		}
	})
}
