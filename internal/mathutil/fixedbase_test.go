package mathutil

import (
	"errors"
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"github.com/privconsensus/privconsensus/internal/obs"
)

// refExp is the reference the fixed-base kernel must agree with.
func refExp(base, e, m *big.Int) *big.Int { return new(big.Int).Exp(base, e, m) }

func mustTable(t *testing.T, base, m *big.Int, maxBits int) *FixedBaseExp {
	t.Helper()
	f, err := NewFixedBaseExp(base, m, maxBits)
	if err != nil {
		t.Fatalf("NewFixedBaseExp(%v, %v, %d): %v", base, m, maxBits, err)
	}
	return f
}

func TestFixedBaseExpMatchesBigIntExp(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	moduli := []*big.Int{
		big.NewInt(3), big.NewInt(101), big.NewInt(1<<31 - 1),
		new(big.Int).SetUint64(0xfffffffffffffffb), // odd, near 2^64
	}
	for _, m := range moduli {
		for _, maxBits := range []int{1, 8, 17, 63, 200, 300} {
			base := new(big.Int).Rand(rng, m)
			f := mustTable(t, base, m, maxBits)
			for trial := 0; trial < 25; trial++ {
				bits := rng.Intn(maxBits + 1)
				e := new(big.Int).Rand(rng, new(big.Int).Lsh(One, uint(bits)))
				got := f.Exp(e)
				want := refExp(base, e, m)
				if got.Cmp(want) != 0 {
					t.Fatalf("m=%v maxBits=%d e=%v: got %v, want %v", m, maxBits, e, got, want)
				}
			}
		}
	}
}

func TestFixedBaseExpZeroExponent(t *testing.T) {
	f := mustTable(t, big.NewInt(7), big.NewInt(101), 64)
	if got := f.Exp(Zero); got.Cmp(One) != 0 {
		t.Fatalf("base^0: got %v, want 1", got)
	}
	if got := f.Exp(nil); got.Cmp(One) != 0 {
		t.Fatalf("base^nil: got %v, want 1", got)
	}
}

func TestFixedBaseExpZeroBase(t *testing.T) {
	// base ≡ 0 mod m: 0^0 = 1, 0^e = 0 for e > 0 (matching big.Int.Exp).
	f := mustTable(t, big.NewInt(101), big.NewInt(101), 16)
	if got := f.Exp(Zero); got.Cmp(One) != 0 {
		t.Fatalf("0^0: got %v, want 1", got)
	}
	if got := f.Exp(big.NewInt(5)); got.Sign() != 0 {
		t.Fatalf("0^5: got %v, want 0", got)
	}
}

// TestFixedBaseExpOversizedFallsBack checks that an exponent wider than the
// table capacity is answered exactly via the big.Int.Exp fallback — never
// truncated — and that the fallback counter registers the miss.
func TestFixedBaseExpOversizedFallsBack(t *testing.T) {
	m := big.NewInt(1<<31 - 1)
	base := big.NewInt(123456789)
	f := mustTable(t, base, m, 32)

	e := new(big.Int).Lsh(One, 200) // far beyond the 32-bit table
	e.Add(e, big.NewInt(12345))

	hitsBefore := obs.Default.CounterValue("privconsensus_fixedbase_hits_total")
	fallbacksBefore := obs.Default.CounterValue("privconsensus_fixedbase_fallbacks_total")

	got := f.Exp(e)
	want := refExp(base, e, m)
	if got.Cmp(want) != 0 {
		t.Fatalf("oversized exponent: got %v, want %v (truncated table walk?)", got, want)
	}
	if d := obs.Default.CounterValue("privconsensus_fixedbase_fallbacks_total") - fallbacksBefore; d != 1 {
		t.Fatalf("fallback counter moved by %d, want 1", d)
	}
	if d := obs.Default.CounterValue("privconsensus_fixedbase_hits_total") - hitsBefore; d != 0 {
		t.Fatalf("hit counter moved by %d on a fallback, want 0", d)
	}

	// Negative exponents also fall back; with gcd(base, m) = 1 the modular
	// inverse path must match big.Int.Exp exactly.
	neg := big.NewInt(-7)
	if got, want := f.Exp(neg), refExp(base, neg, m); got.Cmp(want) != 0 {
		t.Fatalf("negative exponent: got %v, want %v", got, want)
	}

	// In-range exponents keep hitting the table.
	small := big.NewInt(99)
	if got, want := f.Exp(small), refExp(base, small, m); got.Cmp(want) != 0 {
		t.Fatalf("in-range exponent after fallback: got %v, want %v", got, want)
	}
	if d := obs.Default.CounterValue("privconsensus_fixedbase_hits_total") - hitsBefore; d != 1 {
		t.Fatalf("hit counter moved by %d after in-range Exp, want 1", d)
	}
}

func TestFixedBaseExpBoundaryWidth(t *testing.T) {
	// Exponent of exactly maxBits bits is still a table hit; maxBits+1 is not.
	m := big.NewInt(1009)
	f := mustTable(t, big.NewInt(11), m, 10)
	edge := new(big.Int).Sub(new(big.Int).Lsh(One, 10), One) // 2^10 - 1
	if got, want := f.Exp(edge), refExp(big.NewInt(11), edge, m); got.Cmp(want) != 0 {
		t.Fatalf("edge exponent: got %v, want %v", got, want)
	}
	over := new(big.Int).Lsh(One, 10) // 11 bits
	if got, want := f.Exp(over), refExp(big.NewInt(11), over, m); got.Cmp(want) != 0 {
		t.Fatalf("just-over exponent: got %v, want %v", got, want)
	}
}

func TestNewFixedBaseExpRejectsBadInputs(t *testing.T) {
	base := big.NewInt(7)
	cases := []struct {
		name    string
		base    *big.Int
		modulus *big.Int
		maxBits int
		wantErr error
	}{
		{"nil base", nil, big.NewInt(101), 8, ErrNilBase},
		{"nil modulus", base, nil, 8, ErrBadModulus},
		{"modulus 0", base, big.NewInt(0), 8, ErrBadModulus},
		{"modulus 1", base, big.NewInt(1), 8, ErrBadModulus},
		{"modulus 2", base, big.NewInt(2), 8, ErrBadModulus},
		{"negative modulus", base, big.NewInt(-101), 8, ErrBadModulus},
		{"even modulus", base, big.NewInt(100), 8, ErrEvenModulus},
		{"zero maxBits", base, big.NewInt(101), 0, ErrBadMaxBits},
		{"negative maxBits", base, big.NewInt(101), -3, ErrBadMaxBits},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := NewFixedBaseExp(tc.base, tc.modulus, tc.maxBits)
			if f != nil || err == nil {
				t.Fatalf("got (%v, %v), want nil table and error", f, err)
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("got error %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestFixedBaseExpConcurrent exercises one shared table from many goroutines
// so `go test -race` proves the lock-free read path: the table is immutable
// after construction and Exp allocates only private scratch.
func TestFixedBaseExpConcurrent(t *testing.T) {
	m, _ := new(big.Int).SetString("ffffffffffffffffffffffffffffff61", 16) // odd 128-bit
	f := mustTable(t, big.NewInt(3), m, 128)
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				e := new(big.Int).Rand(rng, new(big.Int).Lsh(One, 128))
				if got, want := f.Exp(e), refExp(big.NewInt(3), e, m); got.Cmp(want) != 0 {
					errs <- "mismatch for e=" + e.String()
					return
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

func TestMulExpMatchesComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := big.NewInt(1<<31 - 1)
	a, b := big.NewInt(123), big.NewInt(456789)
	fa := mustTable(t, a, m, 60)
	fb := mustTable(t, b, m, 60)
	for i := 0; i < 50; i++ {
		x := new(big.Int).Rand(rng, new(big.Int).Lsh(One, 60))
		y := new(big.Int).Rand(rng, new(big.Int).Lsh(One, 60))
		got := fa.MulExp(fb, x, y)
		want := refExp(a, x, m)
		want.Mul(want, refExp(b, y, m))
		want.Mod(want, m)
		if got.Cmp(want) != 0 {
			t.Fatalf("MulExp(x=%v, y=%v): got %v, want %v", x, y, got, want)
		}
	}
}

func TestMultiExpMatchesComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	moduli := []*big.Int{big.NewInt(1), big.NewInt(3), big.NewInt(1009), big.NewInt(1<<31 - 1)}
	for _, m := range moduli {
		for i := 0; i < 40; i++ {
			a := new(big.Int).Rand(rng, new(big.Int).Lsh(One, 96))
			b := new(big.Int).Rand(rng, new(big.Int).Lsh(One, 96))
			x := new(big.Int).Rand(rng, new(big.Int).Lsh(One, 72))
			y := new(big.Int).Rand(rng, new(big.Int).Lsh(One, 72))
			got := MultiExp(a, x, b, y, m)
			want := refExp(a, x, m)
			want.Mul(want, refExp(b, y, m))
			want.Mod(want, m)
			if got == nil || got.Cmp(want) != 0 {
				t.Fatalf("m=%v a=%v x=%v b=%v y=%v: got %v, want %v", m, a, x, b, y, got, want)
			}
		}
	}
}

func TestMultiExpEdgeCases(t *testing.T) {
	m := big.NewInt(101)
	if got := MultiExp(big.NewInt(2), Zero, big.NewInt(3), Zero, m); got.Cmp(One) != 0 {
		t.Fatalf("a^0·b^0: got %v, want 1", got)
	}
	if got := MultiExp(big.NewInt(2), Zero, big.NewInt(3), Zero, One); got.Sign() != 0 {
		t.Fatalf("mod 1: got %v, want 0", got)
	}
	// Nil inputs and non-positive moduli yield nil, mirroring big.Int.Exp's
	// nil result for impossible requests.
	for _, bad := range []*big.Int{nil, Zero, big.NewInt(-5)} {
		if got := MultiExp(big.NewInt(2), One, big.NewInt(3), One, bad); got != nil {
			t.Fatalf("bad modulus %v: got %v, want nil", bad, got)
		}
	}
	if got := MultiExp(nil, One, big.NewInt(3), One, m); got != nil {
		t.Fatalf("nil base: got %v, want nil", got)
	}
	// Negative exponent with invertible base matches the inverse composition.
	got := MultiExp(big.NewInt(2), big.NewInt(-3), big.NewInt(3), big.NewInt(4), m)
	want := refExp(big.NewInt(2), big.NewInt(-3), m)
	want.Mul(want, refExp(big.NewInt(3), big.NewInt(4), m))
	want.Mod(want, m)
	if got == nil || got.Cmp(want) != 0 {
		t.Fatalf("negative exponent: got %v, want %v", got, want)
	}
	// Negative exponent with a non-invertible base has no answer: nil.
	if got := MultiExp(big.NewInt(0), big.NewInt(-1), big.NewInt(3), One, m); got != nil {
		t.Fatalf("non-invertible negative exponent: got %v, want nil", got)
	}
}

func BenchmarkFixedBaseExp(b *testing.B) {
	m, _ := new(big.Int).SetString("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff61", 16)
	f, err := NewFixedBaseExp(big.NewInt(3), m, 256)
	if err != nil {
		b.Fatal(err)
	}
	e := new(big.Int).Sub(new(big.Int).Lsh(One, 256), big.NewInt(12345))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Exp(e)
	}
}

func BenchmarkBigIntExpBaseline(b *testing.B) {
	m, _ := new(big.Int).SetString("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff61", 16)
	base := big.NewInt(3)
	e := new(big.Int).Sub(new(big.Int).Lsh(One, 256), big.NewInt(12345))
	out := new(big.Int)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Exp(base, e, m)
	}
}
