package mathutil

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// testRNG returns a deterministic io.Reader for reproducible tests.
func testRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func TestRandIntRange(t *testing.T) {
	rng := testRNG(1)
	max := big.NewInt(1000)
	for i := 0; i < 200; i++ {
		v, err := RandInt(rng, max)
		if err != nil {
			t.Fatalf("RandInt: %v", err)
		}
		if v.Sign() < 0 || v.Cmp(max) >= 0 {
			t.Fatalf("RandInt out of range: %v", v)
		}
	}
}

func TestRandIntRejectsNonPositive(t *testing.T) {
	if _, err := RandInt(testRNG(1), big.NewInt(0)); err == nil {
		t.Fatal("expected error for zero bound")
	}
	if _, err := RandInt(testRNG(1), big.NewInt(-5)); err == nil {
		t.Fatal("expected error for negative bound")
	}
}

func TestRandBits(t *testing.T) {
	rng := testRNG(2)
	for bits := 1; bits <= 64; bits *= 2 {
		v, err := RandBits(rng, bits)
		if err != nil {
			t.Fatalf("RandBits(%d): %v", bits, err)
		}
		if v.BitLen() > bits {
			t.Fatalf("RandBits(%d) produced %d-bit value", bits, v.BitLen())
		}
	}
	if _, err := RandBits(rng, 0); err == nil {
		t.Fatal("expected error for zero bit count")
	}
}

func TestRandUnitCoprime(t *testing.T) {
	rng := testRNG(3)
	n := big.NewInt(35) // 5 * 7
	gcd := new(big.Int)
	for i := 0; i < 100; i++ {
		u, err := RandUnit(rng, n)
		if err != nil {
			t.Fatalf("RandUnit: %v", err)
		}
		gcd.GCD(nil, nil, u, n)
		if gcd.Cmp(One) != 0 {
			t.Fatalf("RandUnit returned non-unit %v", u)
		}
	}
}

func TestRandPrime(t *testing.T) {
	rng := testRNG(4)
	p, err := RandPrime(rng, 64)
	if err != nil {
		t.Fatalf("RandPrime: %v", err)
	}
	if p.BitLen() != 64 {
		t.Fatalf("expected 64-bit prime, got %d bits", p.BitLen())
	}
	if !p.ProbablyPrime(32) {
		t.Fatalf("RandPrime returned composite %v", p)
	}
}

func TestModInverse(t *testing.T) {
	inv, err := ModInverse(big.NewInt(3), big.NewInt(7))
	if err != nil {
		t.Fatalf("ModInverse: %v", err)
	}
	if inv.Cmp(big.NewInt(5)) != 0 {
		t.Fatalf("3^-1 mod 7 = %v, want 5", inv)
	}
	if _, err := ModInverse(big.NewInt(2), big.NewInt(4)); err == nil {
		t.Fatal("expected ErrNoInverse for gcd > 1")
	}
}

func TestSignedRoundTrip(t *testing.T) {
	n := big.NewInt(1 << 20)
	cases := []int64{0, 1, -1, 12345, -12345, 1<<19 - 1, -(1 << 19)}
	for _, c := range cases {
		v := big.NewInt(c)
		enc := FromSigned(v, n)
		dec := ToSigned(enc, n)
		if dec.Cmp(v) != 0 {
			t.Errorf("signed round trip %d -> %v -> %v", c, enc, dec)
		}
	}
}

func TestSignedRoundTripQuick(t *testing.T) {
	n := new(big.Int).Lsh(One, 40)
	f := func(x int32) bool {
		v := big.NewInt(int64(x))
		return ToSigned(FromSigned(v, n), n).Cmp(v) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRTCombine(t *testing.T) {
	p := big.NewInt(101)
	q := big.NewInt(103)
	crt, err := NewCRTParams(p, q)
	if err != nil {
		t.Fatalf("NewCRTParams: %v", err)
	}
	for _, want := range []int64{0, 1, 100, 5000, 101*103 - 1} {
		x := big.NewInt(want)
		xp := new(big.Int).Mod(x, p)
		xq := new(big.Int).Mod(x, q)
		got := crt.Combine(xp, xq)
		if got.Cmp(x) != 0 {
			t.Errorf("Combine(%v mod p, %v mod q) = %v, want %v", xp, xq, got, want)
		}
	}
}

func TestCRTCombineQuick(t *testing.T) {
	p := big.NewInt(65537)
	q := big.NewInt(65539)
	crt, err := NewCRTParams(p, q)
	if err != nil {
		t.Fatalf("NewCRTParams: %v", err)
	}
	n := new(big.Int).Mul(p, q)
	f := func(raw uint32) bool {
		x := new(big.Int).Mod(big.NewInt(int64(raw)), n)
		xp := new(big.Int).Mod(x, p)
		xq := new(big.Int).Mod(x, q)
		return crt.Combine(xp, xq).Cmp(x) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRTRejectsNonCoprime(t *testing.T) {
	if _, err := NewCRTParams(big.NewInt(6), big.NewInt(9)); err == nil {
		t.Fatal("expected error for non-coprime moduli")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	v := big.NewInt(0b1011001)
	bits, err := Bits(v, 10)
	if err != nil {
		t.Fatalf("Bits: %v", err)
	}
	if len(bits) != 10 {
		t.Fatalf("expected 10 bits, got %d", len(bits))
	}
	if got := FromBits(bits); got.Cmp(v) != 0 {
		t.Fatalf("FromBits(Bits(v)) = %v, want %v", got, v)
	}
}

func TestBitsRejectsOversize(t *testing.T) {
	if _, err := Bits(big.NewInt(256), 8); err == nil {
		t.Fatal("expected error for value exceeding width")
	}
	if _, err := Bits(big.NewInt(-1), 8); err == nil {
		t.Fatal("expected error for negative value")
	}
}

func TestBitsRoundTripQuick(t *testing.T) {
	f := func(raw uint32) bool {
		v := new(big.Int).SetUint64(uint64(raw))
		bits, err := Bits(v, 32)
		if err != nil {
			return false
		}
		return FromBits(bits).Cmp(v) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
