package paillier

import (
	"encoding/json"
	"fmt"
	"math/big"
)

// JSON serialization of key material, used by the keystore to persist keys
// across the multi-process deployment (cmd/keygen, cmd/server, cmd/user).
// Big integers are encoded as decimal strings.

// publicKeyJSON is the wire form of a PublicKey.
type publicKeyJSON struct {
	N string `json:"n"`
}

// MarshalJSON implements json.Marshaler.
func (pk *PublicKey) MarshalJSON() ([]byte, error) {
	if pk.N == nil {
		return nil, fmt.Errorf("paillier: cannot marshal zero public key")
	}
	return json.Marshal(publicKeyJSON{N: pk.N.String()})
}

// UnmarshalJSON implements json.Unmarshaler.
func (pk *PublicKey) UnmarshalJSON(data []byte) error {
	var raw publicKeyJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("paillier: decode public key: %w", err)
	}
	n, ok := new(big.Int).SetString(raw.N, 10)
	if !ok || n.Sign() <= 0 {
		return fmt.Errorf("paillier: invalid modulus %q", raw.N)
	}
	pk.N = n
	pk.N2 = new(big.Int).Mul(n, n)
	pk.G = new(big.Int).Add(n, big.NewInt(1))
	pk.pre = &precomp{}
	return nil
}

// privateKeyJSON is the wire form of a PrivateKey: the factorization is
// sufficient to rebuild all derived constants.
type privateKeyJSON struct {
	P string `json:"p"`
	Q string `json:"q"`
}

// MarshalJSON implements json.Marshaler.
func (k *PrivateKey) MarshalJSON() ([]byte, error) {
	if k.p == nil || k.q == nil {
		return nil, fmt.Errorf("paillier: cannot marshal zero private key")
	}
	return json.Marshal(privateKeyJSON{P: k.p.String(), Q: k.q.String()})
}

// UnmarshalJSON implements json.Unmarshaler.
func (k *PrivateKey) UnmarshalJSON(data []byte) error {
	var raw privateKeyJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("paillier: decode private key: %w", err)
	}
	p, ok := new(big.Int).SetString(raw.P, 10)
	if !ok || p.Sign() <= 0 {
		return fmt.Errorf("paillier: invalid prime p")
	}
	q, ok := new(big.Int).SetString(raw.Q, 10)
	if !ok || q.Sign() <= 0 {
		return fmt.Errorf("paillier: invalid prime q")
	}
	if !p.ProbablyPrime(32) || !q.ProbablyPrime(32) {
		return fmt.Errorf("paillier: key factors are not prime")
	}
	rebuilt, err := newPrivateKey(p, q)
	if err != nil {
		return fmt.Errorf("paillier: rebuild private key: %w", err)
	}
	*k = *rebuilt
	return nil
}
