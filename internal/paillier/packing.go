// Slot packing: encode many small signed values into one Paillier
// plaintext so a K-length vector costs ⌈K/slots⌉ ciphertexts instead of
// K. Homomorphic addition of packed ciphertexts adds slot-wise because
// each slot is wide enough that per-slot sums can never carry into the
// neighbouring slot — the width is derived from the worst-case sum
// (per-value magnitude bound × participant count, plus statistical
// blinding headroom), so overflow is impossible by construction.
package paillier

import (
	"errors"
	"fmt"
	"math/big"
)

// Packing errors.
var (
	ErrPackingShape = errors.New("paillier: packing layout does not fit plaintext space")
	ErrSlotRange    = errors.New("paillier: value outside packing slot range")
)

// Packing describes a slot layout: Count logical values, laid out
// little-endian (value j occupies bits [j*Width, (j+1)*Width) of its
// plaintext), Slots values per plaintext.
//
// Pack biases every value by Bias so negative shares become
// non-negative slot contents; a sum of n packed plaintexts therefore
// carries sum_j + n*Bias in slot j, which the consumer strips with the
// public participant count. Max bounds the per-value biased magnitude
// (2*Bias) so that Width — sized for the sum, not the addend — always
// has headroom left for the statistical blind added before an
// interactive unpack.
type Packing struct {
	Width int      // bits per slot (sized for blinded sums)
	Slots int      // values per plaintext
	Count int      // number of logical values
	Bias  *big.Int // added to each value before packing
	Max   *big.Int // exclusive bound on a biased per-value slot (2*Bias)
}

// Plaintexts returns the number of packed plaintexts the layout needs.
func (p Packing) Plaintexts() int {
	if p.Slots <= 0 {
		return 0
	}
	return (p.Count + p.Slots - 1) / p.Slots
}

// validate checks the layout is internally consistent for a modulus of
// the given bit length (0 skips the modulus check).
func (p Packing) validate(modBits int) error {
	if p.Width <= 0 || p.Slots <= 0 || p.Count <= 0 || p.Bias == nil || p.Max == nil {
		return fmt.Errorf("%w: width=%d slots=%d count=%d", ErrPackingShape, p.Width, p.Slots, p.Count)
	}
	if modBits > 0 && p.Slots*p.Width > modBits-2 {
		return fmt.Errorf("%w: %d slots × %d bits exceeds %d-bit plaintexts", ErrPackingShape, p.Slots, p.Width, modBits)
	}
	return nil
}

// Pack encodes values (len must equal Count) into Plaintexts() packed
// plaintexts, biasing each value by Bias and rejecting any value whose
// biased form falls outside [0, Max).
func (p Packing) Pack(values []*big.Int) ([]*big.Int, error) {
	if err := p.validate(0); err != nil {
		return nil, err
	}
	if len(values) != p.Count {
		return nil, fmt.Errorf("%w: got %d values, layout holds %d", ErrPackingShape, len(values), p.Count)
	}
	out := make([]*big.Int, p.Plaintexts())
	for i := range out {
		out[i] = new(big.Int)
	}
	biased := new(big.Int)
	for j, v := range values {
		if v == nil {
			return nil, fmt.Errorf("%w: nil value at slot %d", ErrSlotRange, j)
		}
		biased.Add(v, p.Bias)
		if biased.Sign() < 0 || biased.Cmp(p.Max) >= 0 {
			return nil, fmt.Errorf("%w: slot %d value %v", ErrSlotRange, j, v)
		}
		shifted := new(big.Int).Lsh(biased, uint((j%p.Slots)*p.Width))
		out[j/p.Slots].Or(out[j/p.Slots], shifted)
	}
	return out, nil
}

// PackRaw encodes already non-negative values without biasing, each
// bounded by the full slot width. Used for slot-aligned blinding masks.
func (p Packing) PackRaw(values []*big.Int) ([]*big.Int, error) {
	if err := p.validate(0); err != nil {
		return nil, err
	}
	if len(values) != p.Count {
		return nil, fmt.Errorf("%w: got %d values, layout holds %d", ErrPackingShape, len(values), p.Count)
	}
	limit := new(big.Int).Lsh(oneInt, uint(p.Width))
	out := make([]*big.Int, p.Plaintexts())
	for i := range out {
		out[i] = new(big.Int)
	}
	for j, v := range values {
		if v == nil || v.Sign() < 0 || v.Cmp(limit) >= 0 {
			return nil, fmt.Errorf("%w: raw slot %d", ErrSlotRange, j)
		}
		shifted := new(big.Int).Lsh(v, uint((j%p.Slots)*p.Width))
		out[j/p.Slots].Or(out[j/p.Slots], shifted)
	}
	return out, nil
}

// Split decodes packed plaintexts back into Count raw slot values, each
// in [0, 2^Width). It is the inverse of summing packed plaintexts: slot
// j of the result is sum_j + n*Bias (+ any blind the caller added).
func (p Packing) Split(packed []*big.Int) ([]*big.Int, error) {
	if err := p.validate(0); err != nil {
		return nil, err
	}
	if len(packed) != p.Plaintexts() {
		return nil, fmt.Errorf("%w: got %d plaintexts, layout needs %d", ErrPackingShape, len(packed), p.Plaintexts())
	}
	mask := new(big.Int).Lsh(oneInt, uint(p.Width))
	mask.Sub(mask, oneInt)
	out := make([]*big.Int, p.Count)
	for j := 0; j < p.Count; j++ {
		word := packed[j/p.Slots]
		if word == nil || word.Sign() < 0 {
			return nil, fmt.Errorf("%w: plaintext %d", ErrSlotRange, j/p.Slots)
		}
		v := new(big.Int).Rsh(word, uint((j%p.Slots)*p.Width))
		out[j] = v.And(v, mask)
	}
	return out, nil
}

var oneInt = big.NewInt(1)
