package paillier

import (
	"math/big"
	"testing"
)

// TestTableBlindingRoundTrip exercises the fixed-base blinding path
// explicitly (tables warmed up front) across a spread of messages,
// including the signed extremes.
func TestTableBlindingRoundTrip(t *testing.T) {
	key := testKey(t, 64)
	pk := key.Public()
	pk.Precompute()
	rng := testRNG(31)
	halfN := new(big.Int).Rsh(pk.N, 1)
	msgs := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(123456),
		new(big.Int).Sub(halfN, big.NewInt(1)),
	}
	for _, m := range msgs {
		c, err := pk.Encrypt(rng, m)
		if err != nil {
			t.Fatalf("Encrypt(%v): %v", m, err)
		}
		got, err := key.Decrypt(c)
		if err != nil {
			t.Fatalf("Decrypt(%v): %v", m, err)
		}
		if got.Cmp(m) != 0 {
			t.Fatalf("round trip: got %v, want %v", got, m)
		}
	}
}

// TestBlindingFallbackWithoutTables covers the r^N fallback a key without
// precomp state uses (e.g. a zero-value PublicKey populated field by
// field): ciphertexts must still decrypt, and the two blinding styles must
// be homomorphically compatible.
func TestBlindingFallbackWithoutTables(t *testing.T) {
	key := testKey(t, 64)
	warm := key.Public()
	warm.Precompute()
	bare := &PublicKey{N: warm.N, N2: warm.N2, G: warm.G} // no pre holder
	rng := testRNG(32)

	cBare, err := bare.Encrypt(rng, big.NewInt(17))
	if err != nil {
		t.Fatalf("fallback Encrypt: %v", err)
	}
	if got, err := key.Decrypt(cBare); err != nil || got.Int64() != 17 {
		t.Fatalf("fallback round trip: got (%v, %v), want 17", got, err)
	}

	cWarm, err := warm.Encrypt(rng, big.NewInt(25))
	if err != nil {
		t.Fatalf("table Encrypt: %v", err)
	}
	sum, err := warm.Add(cWarm, cBare)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := key.Decrypt(sum); err != nil || got.Int64() != 42 {
		t.Fatalf("mixed-blinding Add: got (%v, %v), want 42", got, err)
	}
}

// TestRerandomizeTablePath checks Rerandomize (which now draws its factor
// through the blinding table) still preserves the plaintext and changes the
// ciphertext bytes.
func TestRerandomizeTablePath(t *testing.T) {
	key := testKey(t, 64)
	pk := key.Public()
	pk.Precompute()
	rng := testRNG(33)
	c, err := pk.Encrypt(rng, big.NewInt(9))
	if err != nil {
		t.Fatal(err)
	}
	r, err := pk.Rerandomize(rng, c)
	if err != nil {
		t.Fatal(err)
	}
	if r.C.Cmp(c.C) == 0 {
		t.Fatal("Rerandomize left the ciphertext unchanged")
	}
	if got, err := key.Decrypt(r); err != nil || got.Int64() != 9 {
		t.Fatalf("rerandomized decrypt: got (%v, %v), want 9", got, err)
	}
}
