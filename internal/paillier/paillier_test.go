package paillier

import (
	"context"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// testKey generates a small key for fast tests.
func testKey(t testing.TB, bits int) *PrivateKey {
	t.Helper()
	key, err := GenerateKey(testRNG(42), bits)
	if err != nil {
		t.Fatalf("GenerateKey(%d): %v", bits, err)
	}
	return key
}

func TestGenerateKeyRejectsTinyKeys(t *testing.T) {
	if _, err := GenerateKey(testRNG(1), 8); err == nil {
		t.Fatal("expected error for 8-bit key")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key := testKey(t, 64)
	rng := testRNG(1)
	for _, m := range []int64{0, 1, 2, 1000, 123456789} {
		msg := big.NewInt(m)
		c, err := key.Encrypt(rng, msg)
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		got, err := key.Decrypt(c)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if got.Cmp(msg) != 0 {
			t.Errorf("round trip %d -> %v", m, got)
		}
	}
}

func TestDecryptMatchesSlowPath(t *testing.T) {
	key := testKey(t, 64)
	rng := testRNG(2)
	for i := 0; i < 20; i++ {
		m := big.NewInt(int64(i * 9973))
		c, err := key.Encrypt(rng, m)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := key.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := key.DecryptSlow(c)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Cmp(slow) != 0 {
			t.Fatalf("CRT decrypt %v != slow decrypt %v", fast, slow)
		}
	}
}

func TestEncryptRejectsOutOfRange(t *testing.T) {
	key := testKey(t, 64)
	rng := testRNG(3)
	if _, err := key.Encrypt(rng, new(big.Int).Set(key.N)); err == nil {
		t.Error("expected error for m = n")
	}
	if _, err := key.Encrypt(rng, big.NewInt(-1)); err == nil {
		t.Error("expected error for negative m")
	}
	if _, err := key.Encrypt(rng, nil); err == nil {
		t.Error("expected error for nil m")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	key := testKey(t, 64)
	rng := testRNG(4)
	a, b := big.NewInt(1234), big.NewInt(8765)
	ca, _ := key.Encrypt(rng, a)
	cb, _ := key.Encrypt(rng, b)
	sum, err := key.Add(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := key.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(9999)) != 0 {
		t.Errorf("E[a]+E[b] decrypts to %v, want 9999", got)
	}
}

func TestHomomorphicAddQuick(t *testing.T) {
	key := testKey(t, 72)
	rng := testRNG(5)
	f := func(x, y uint16) bool {
		a, b := big.NewInt(int64(x)), big.NewInt(int64(y))
		ca, err := key.Encrypt(rng, a)
		if err != nil {
			return false
		}
		cb, err := key.Encrypt(rng, b)
		if err != nil {
			return false
		}
		sum, err := key.Add(ca, cb)
		if err != nil {
			return false
		}
		got, err := key.Decrypt(sum)
		if err != nil {
			return false
		}
		return got.Cmp(new(big.Int).Add(a, b)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestScalarMulQuick(t *testing.T) {
	key := testKey(t, 72)
	rng := testRNG(6)
	f := func(x uint16, k uint8) bool {
		m := big.NewInt(int64(x))
		c, err := key.Encrypt(rng, m)
		if err != nil {
			return false
		}
		scaled, err := key.ScalarMul(c, big.NewInt(int64(k)))
		if err != nil {
			return false
		}
		got, err := key.Decrypt(scaled)
		if err != nil {
			return false
		}
		want := new(big.Int).Mul(m, big.NewInt(int64(k)))
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAddPlainAndSub(t *testing.T) {
	key := testKey(t, 64)
	rng := testRNG(7)
	c, _ := key.Encrypt(rng, big.NewInt(500))
	shifted, err := key.AddPlain(c, big.NewInt(-200))
	if err != nil {
		t.Fatal(err)
	}
	got, err := key.DecryptSigned(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(300)) != 0 {
		t.Errorf("AddPlain(-200) on E[500] = %v, want 300", got)
	}

	c2, _ := key.Encrypt(rng, big.NewInt(900))
	diff, err := key.Sub(c2, c)
	if err != nil {
		t.Fatal(err)
	}
	got, err = key.DecryptSigned(diff)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(400)) != 0 {
		t.Errorf("E[900]-E[500] = %v, want 400", got)
	}
}

func TestSignedEncryption(t *testing.T) {
	key := testKey(t, 64)
	rng := testRNG(8)
	for _, m := range []int64{-1, -1000, -123456, 0, 77} {
		c, err := key.EncryptSigned(rng, big.NewInt(m))
		if err != nil {
			t.Fatalf("EncryptSigned(%d): %v", m, err)
		}
		got, err := key.DecryptSigned(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(big.NewInt(m)) != 0 {
			t.Errorf("signed round trip %d -> %v", m, got)
		}
	}
}

func TestNegativeArithmetic(t *testing.T) {
	key := testKey(t, 64)
	rng := testRNG(9)
	ca, _ := key.EncryptSigned(rng, big.NewInt(-30))
	cb, _ := key.EncryptSigned(rng, big.NewInt(10))
	sum, err := key.Add(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := key.DecryptSigned(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(-20)) != 0 {
		t.Errorf("E[-30]+E[10] = %v, want -20", got)
	}
	neg, err := key.Neg(ca)
	if err != nil {
		t.Fatal(err)
	}
	got, err = key.DecryptSigned(neg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(30)) != 0 {
		t.Errorf("Neg(E[-30]) = %v, want 30", got)
	}
}

func TestRerandomizePreservesPlaintextChangesCiphertext(t *testing.T) {
	key := testKey(t, 64)
	rng := testRNG(10)
	c, _ := key.Encrypt(rng, big.NewInt(321))
	r, err := key.Rerandomize(rng, c)
	if err != nil {
		t.Fatal(err)
	}
	if r.C.Cmp(c.C) == 0 {
		t.Error("rerandomized ciphertext should differ")
	}
	got, err := key.Decrypt(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(321)) != 0 {
		t.Errorf("rerandomized plaintext = %v, want 321", got)
	}
}

func TestVectorHelpers(t *testing.T) {
	key := testKey(t, 64)
	rng := testRNG(11)
	ms := []*big.Int{big.NewInt(1), big.NewInt(2), big.NewInt(3)}
	cs, err := key.EncryptVector(rng, ms)
	if err != nil {
		t.Fatal(err)
	}
	got, err := key.DecryptVector(cs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms {
		if got[i].Cmp(ms[i]) != 0 {
			t.Errorf("element %d: %v != %v", i, got[i], ms[i])
		}
	}

	signed := []*big.Int{big.NewInt(-5), big.NewInt(5)}
	cs2, err := key.EncryptSignedVector(rng, signed)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := key.DecryptSignedVector(cs2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range signed {
		if got2[i].Cmp(signed[i]) != 0 {
			t.Errorf("signed element %d: %v != %v", i, got2[i], signed[i])
		}
	}
}

func TestCiphertextValidation(t *testing.T) {
	key := testKey(t, 64)
	if _, err := key.Decrypt(nil); err == nil {
		t.Error("expected error decrypting nil")
	}
	if _, err := key.Decrypt(&Ciphertext{}); err == nil {
		t.Error("expected error decrypting empty ciphertext")
	}
	huge := &Ciphertext{C: new(big.Int).Add(key.N2, big.NewInt(1))}
	if _, err := key.Decrypt(huge); err == nil {
		t.Error("expected error decrypting out-of-range ciphertext")
	}
}

func TestCiphertextBytesRoundTrip(t *testing.T) {
	key := testKey(t, 64)
	rng := testRNG(12)
	c, _ := key.Encrypt(rng, big.NewInt(424242))
	back := CiphertextFromBytes(c.Bytes())
	got, err := key.Decrypt(back)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(424242)) != 0 {
		t.Errorf("bytes round trip = %v, want 424242", got)
	}
	var nilC *Ciphertext
	if nilC.Bytes() != nil {
		t.Error("nil ciphertext should serialize to nil")
	}
}

func TestCloneIndependence(t *testing.T) {
	key := testKey(t, 64)
	rng := testRNG(13)
	c, _ := key.Encrypt(rng, big.NewInt(7))
	clone := c.Clone()
	clone.C.Add(clone.C, big.NewInt(1))
	if c.C.Cmp(clone.C) == 0 {
		t.Error("clone should be independent of original")
	}
}

// Property: the full signed-arithmetic algebra holds: for random signed
// a, b and scalar k, Dec(E(a) + E(b)*k) == a + b*k.
func TestSignedAlgebraQuick(t *testing.T) {
	key := testKey(t, 72)
	rng := testRNG(77)
	f := func(a, b int16, k int8) bool {
		ca, err := key.EncryptSigned(rng, big.NewInt(int64(a)))
		if err != nil {
			return false
		}
		cb, err := key.EncryptSigned(rng, big.NewInt(int64(b)))
		if err != nil {
			return false
		}
		scaled, err := key.ScalarMul(cb, big.NewInt(int64(k)))
		if err != nil {
			return false
		}
		sum, err := key.Add(ca, scaled)
		if err != nil {
			return false
		}
		got, err := key.DecryptSigned(sum)
		if err != nil {
			return false
		}
		want := int64(a) + int64(b)*int64(k)
		return got.Int64() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Ciphertexts must be probabilistic: encrypting the same message twice
// yields different ciphertexts (IND-CPA smoke check).
func TestEncryptionIsProbabilistic(t *testing.T) {
	key := testKey(t, 64)
	rng := testRNG(78)
	m := big.NewInt(7)
	c1, err := key.Encrypt(rng, m)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := key.Encrypt(rng, m)
	if err != nil {
		t.Fatal(err)
	}
	if c1.C.Cmp(c2.C) == 0 {
		t.Error("two encryptions of the same message are identical")
	}
}

func TestNoncePoolEncrypt(t *testing.T) {
	key := testKey(t, 64)
	pool, err := NewNoncePool(testRNG(14), key.Public(), 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ctx := context.Background()
	for _, m := range []int64{0, 1, 999} {
		c, err := pool.Encrypt(ctx, big.NewInt(m))
		if err != nil {
			t.Fatalf("pool encrypt %d: %v", m, err)
		}
		got, err := key.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(big.NewInt(m)) != 0 {
			t.Errorf("pooled round trip %d -> %v", m, got)
		}
	}
	ms := []*big.Int{big.NewInt(4), big.NewInt(5)}
	cs, err := pool.EncryptVector(ctx, ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("expected 2 ciphertexts, got %d", len(cs))
	}
}

func TestNoncePoolValidation(t *testing.T) {
	key := testKey(t, 64)
	if _, err := NewNoncePool(testRNG(1), key.Public(), 0, 1); err == nil {
		t.Error("expected error for zero capacity")
	}
	if _, err := NewNoncePool(testRNG(1), key.Public(), 4, 0); err == nil {
		t.Error("expected error for zero workers")
	}
}

func TestNoncePoolContextCancel(t *testing.T) {
	key := testKey(t, 64)
	pool, err := NewNoncePool(testRNG(15), key.Public(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Drain whatever was buffered, then a cancelled context must surface.
	for i := 0; i < 10; i++ {
		if _, err := pool.Encrypt(ctx, big.NewInt(1)); err != nil {
			return // got the expected cancellation
		}
	}
	t.Error("expected context cancellation error")
}
