// Package paillier implements the Paillier additively homomorphic
// cryptosystem used to aggregate secret-shared votes (§III-B of the paper).
//
// Supported operations mirror Eqs. (1)-(2):
//
//	E[m1 + m2] = E[m1] * E[m2] mod n^2
//	E[a * m1]  = E[m1]^a mod n^2
//
// Decryption uses the CRT acceleration, and encryption can draw its
// random blinding factors from a pre-generated pool (the paper's "table of
// random numbers" optimization, §VI-A) to parallelize encryption.
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"github.com/privconsensus/privconsensus/internal/mathutil"
)

// Errors returned by the package.
var (
	ErrKeyTooSmall    = errors.New("paillier: key size must be at least 16 bits")
	ErrMessageRange   = errors.New("paillier: message outside plaintext space")
	ErrCiphertextNil  = errors.New("paillier: nil ciphertext")
	ErrWrongKey       = errors.New("paillier: ciphertext does not match key modulus")
	ErrNoPrivateKey   = errors.New("paillier: operation requires the private key")
	ErrInvalidKeyPair = errors.New("paillier: invalid key material")
)

// PublicKey is the Paillier public key pk = (n, g) with g = n + 1.
type PublicKey struct {
	N  *big.Int // modulus n = p*q
	N2 *big.Int // n^2, cached
	G  *big.Int // generator g = n + 1
}

// PrivateKey holds the factorization-based secret key with CRT constants.
type PrivateKey struct {
	PublicKey
	p, q *big.Int
	// CRT decryption constants.
	pSquared, qSquared *big.Int
	pMinus1, qMinus1   *big.Int
	hp, hq             *big.Int // L_p(g^{p-1} mod p^2)^{-1} mod p, likewise for q
	crt                *mathutil.CRTParams
}

// Ciphertext is a Paillier ciphertext: a value in Z_{n^2}^*.
type Ciphertext struct {
	C *big.Int
}

// Clone returns an independent copy of the ciphertext.
func (c *Ciphertext) Clone() *Ciphertext {
	if c == nil || c.C == nil {
		return nil
	}
	return &Ciphertext{C: new(big.Int).Set(c.C)}
}

// GenerateKey creates a Paillier key pair whose modulus n has the given bit
// length. The paper's prototype uses 64-bit keys; production deployments
// should use >= 2048. rng defaults to crypto/rand.Reader.
func GenerateKey(rng io.Reader, bits int) (*PrivateKey, error) {
	if bits < 16 {
		return nil, ErrKeyTooSmall
	}
	if rng == nil {
		rng = rand.Reader
	}
	half := bits / 2
	for attempts := 0; attempts < 200; attempts++ {
		p, err := mathutil.RandPrime(rng, half)
		if err != nil {
			return nil, err
		}
		q, err := mathutil.RandPrime(rng, bits-half)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		key, err := newPrivateKey(p, q)
		if err != nil {
			continue // rare degenerate pair; resample
		}
		return key, nil
	}
	return nil, errors.New("paillier: failed to generate key pair after 200 attempts")
}

// newPrivateKey assembles a key pair from primes p, q.
func newPrivateKey(p, q *big.Int) (*PrivateKey, error) {
	n := new(big.Int).Mul(p, q)
	n2 := new(big.Int).Mul(n, n)
	g := new(big.Int).Add(n, mathutil.One)

	pSq := new(big.Int).Mul(p, p)
	qSq := new(big.Int).Mul(q, q)
	pm1 := new(big.Int).Sub(p, mathutil.One)
	qm1 := new(big.Int).Sub(q, mathutil.One)

	// hp = L_p(g^{p-1} mod p^2)^{-1} mod p where L_p(x) = (x-1)/p.
	hp, err := hConstant(g, pm1, p, pSq)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidKeyPair, err)
	}
	hq, err := hConstant(g, qm1, q, qSq)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidKeyPair, err)
	}
	crt, err := mathutil.NewCRTParams(p, q)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidKeyPair, err)
	}
	return &PrivateKey{
		PublicKey: PublicKey{N: n, N2: n2, G: g},
		p:         p, q: q,
		pSquared: pSq, qSquared: qSq,
		pMinus1: pm1, qMinus1: qm1,
		hp: hp, hq: hq,
		crt: crt,
	}, nil
}

// hConstant computes L_s(g^{s-1} mod s^2)^{-1} mod s with L_s(x) = (x-1)/s.
func hConstant(g, sm1, s, sSq *big.Int) (*big.Int, error) {
	x := new(big.Int).Exp(g, sm1, sSq)
	l := lFunction(x, s)
	return mathutil.ModInverse(l, s)
}

// lFunction computes L(x) = (x - 1) / s.
func lFunction(x, s *big.Int) *big.Int {
	out := new(big.Int).Sub(x, mathutil.One)
	return out.Div(out, s)
}

// Public returns the public part of the key.
func (k *PrivateKey) Public() *PublicKey {
	pub := k.PublicKey
	return &pub
}

// validateMessage checks m is in [0, n).
func (pk *PublicKey) validateMessage(m *big.Int) error {
	if m == nil || m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return fmt.Errorf("%w: m=%v n=%v", ErrMessageRange, m, pk.N)
	}
	return nil
}

// Encrypt encrypts m in [0, n) with fresh randomness from rng.
func (pk *PublicKey) Encrypt(rng io.Reader, m *big.Int) (*Ciphertext, error) {
	if err := pk.validateMessage(m); err != nil {
		return nil, err
	}
	r, err := mathutil.RandUnit(rng, pk.N)
	if err != nil {
		return nil, fmt.Errorf("paillier: sample blinding factor: %w", err)
	}
	return pk.encryptWithNonce(m, r), nil
}

// encryptWithNonce computes g^m * r^n mod n^2. With g = n+1,
// g^m = 1 + m*n mod n^2, which avoids one full exponentiation.
func (pk *PublicKey) encryptWithNonce(m, r *big.Int) *Ciphertext {
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, mathutil.One)
	gm.Mod(gm, pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c := gm.Mul(gm, rn)
	c.Mod(c, pk.N2)
	encOps.Inc()
	return &Ciphertext{C: c}
}

// EncryptSigned encrypts a possibly negative message by reducing it into
// [0, n); Decrypt-Signed recovers the signed value.
func (pk *PublicKey) EncryptSigned(rng io.Reader, m *big.Int) (*Ciphertext, error) {
	return pk.Encrypt(rng, mathutil.FromSigned(m, pk.N))
}

// EncryptVector encrypts each element of ms.
func (pk *PublicKey) EncryptVector(rng io.Reader, ms []*big.Int) ([]*Ciphertext, error) {
	out := make([]*Ciphertext, len(ms))
	for i, m := range ms {
		c, err := pk.Encrypt(rng, m)
		if err != nil {
			return nil, fmt.Errorf("paillier: encrypt element %d: %w", i, err)
		}
		out[i] = c
	}
	return out, nil
}

// EncryptSignedVector encrypts each (possibly negative) element of ms.
func (pk *PublicKey) EncryptSignedVector(rng io.Reader, ms []*big.Int) ([]*Ciphertext, error) {
	out := make([]*Ciphertext, len(ms))
	for i, m := range ms {
		c, err := pk.EncryptSigned(rng, m)
		if err != nil {
			return nil, fmt.Errorf("paillier: encrypt element %d: %w", i, err)
		}
		out[i] = c
	}
	return out, nil
}

// validateCiphertext checks c is usable under this key.
func (pk *PublicKey) validateCiphertext(c *Ciphertext) error {
	if c == nil || c.C == nil {
		return ErrCiphertextNil
	}
	if c.C.Sign() < 0 || c.C.Cmp(pk.N2) >= 0 {
		return ErrWrongKey
	}
	return nil
}

// Add returns the ciphertext of m1 + m2 given ciphertexts of m1 and m2
// (Eq. 1: homomorphic addition is ciphertext multiplication).
func (pk *PublicKey) Add(c1, c2 *Ciphertext) (*Ciphertext, error) {
	if err := pk.validateCiphertext(c1); err != nil {
		return nil, err
	}
	if err := pk.validateCiphertext(c2); err != nil {
		return nil, err
	}
	out := new(big.Int).Mul(c1.C, c2.C)
	out.Mod(out, pk.N2)
	addOps.Inc()
	return &Ciphertext{C: out}, nil
}

// AddPlain returns the ciphertext of m + k for plaintext k (possibly
// negative; it is reduced into Z_n).
func (pk *PublicKey) AddPlain(c *Ciphertext, k *big.Int) (*Ciphertext, error) {
	if err := pk.validateCiphertext(c); err != nil {
		return nil, err
	}
	kMod := mathutil.FromSigned(k, pk.N)
	// E[k] with unit randomness r=1: g^k = 1 + k*n mod n^2.
	gk := new(big.Int).Mul(kMod, pk.N)
	gk.Add(gk, mathutil.One)
	gk.Mod(gk, pk.N2)
	out := gk.Mul(gk, c.C)
	out.Mod(out, pk.N2)
	addOps.Inc()
	return &Ciphertext{C: out}, nil
}

// ScalarMul returns the ciphertext of a*m (Eq. 2). Negative a is reduced
// into Z_n, yielding the signed-residue semantics of mathutil.ToSigned.
func (pk *PublicKey) ScalarMul(c *Ciphertext, a *big.Int) (*Ciphertext, error) {
	if err := pk.validateCiphertext(c); err != nil {
		return nil, err
	}
	aMod := mathutil.FromSigned(a, pk.N)
	out := new(big.Int).Exp(c.C, aMod, pk.N2)
	mulOps.Inc()
	return &Ciphertext{C: out}, nil
}

// Neg returns the ciphertext of -m.
func (pk *PublicKey) Neg(c *Ciphertext) (*Ciphertext, error) {
	return pk.ScalarMul(c, big.NewInt(-1))
}

// Sub returns the ciphertext of m1 - m2.
func (pk *PublicKey) Sub(c1, c2 *Ciphertext) (*Ciphertext, error) {
	n2, err := pk.Neg(c2)
	if err != nil {
		return nil, err
	}
	return pk.Add(c1, n2)
}

// Rerandomize multiplies c by a fresh encryption of zero, producing an
// unlinkable ciphertext of the same plaintext.
func (pk *PublicKey) Rerandomize(rng io.Reader, c *Ciphertext) (*Ciphertext, error) {
	if err := pk.validateCiphertext(c); err != nil {
		return nil, err
	}
	zero, err := pk.Encrypt(rng, mathutil.Zero)
	if err != nil {
		return nil, err
	}
	return pk.Add(c, zero)
}

// Decrypt recovers the plaintext in [0, n) using CRT acceleration.
func (k *PrivateKey) Decrypt(c *Ciphertext) (*big.Int, error) {
	if err := k.validateCiphertext(c); err != nil {
		return nil, err
	}
	// mp = L_p(c^{p-1} mod p^2) * hp mod p
	cp := new(big.Int).Exp(c.C, k.pMinus1, k.pSquared)
	mp := lFunction(cp, k.p)
	mp.Mul(mp, k.hp)
	mp.Mod(mp, k.p)

	cq := new(big.Int).Exp(c.C, k.qMinus1, k.qSquared)
	mq := lFunction(cq, k.q)
	mq.Mul(mq, k.hq)
	mq.Mod(mq, k.q)

	decOps.Inc()
	return k.crt.Combine(mp, mq), nil
}

// DecryptSlow recovers the plaintext without CRT, used to cross-check the
// fast path and as the baseline in the CRT ablation benchmark.
func (k *PrivateKey) DecryptSlow(c *Ciphertext) (*big.Int, error) {
	if err := k.validateCiphertext(c); err != nil {
		return nil, err
	}
	lambda := new(big.Int).Mul(k.pMinus1, k.qMinus1) // lcm works too; (p-1)(q-1) is a multiple
	x := new(big.Int).Exp(c.C, lambda, k.N2)
	l := lFunction(x, k.N)
	// mu = L(g^lambda mod n^2)^{-1} mod n
	gl := new(big.Int).Exp(k.G, lambda, k.N2)
	mu, err := mathutil.ModInverse(lFunction(gl, k.N), k.N)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidKeyPair, err)
	}
	l.Mul(l, mu)
	decOps.Inc()
	return l.Mod(l, k.N), nil
}

// DecryptSigned recovers a signed plaintext in [-n/2, n/2).
func (k *PrivateKey) DecryptSigned(c *Ciphertext) (*big.Int, error) {
	m, err := k.Decrypt(c)
	if err != nil {
		return nil, err
	}
	return mathutil.ToSigned(m, k.N), nil
}

// DecryptVector decrypts each element.
func (k *PrivateKey) DecryptVector(cs []*Ciphertext) ([]*big.Int, error) {
	out := make([]*big.Int, len(cs))
	for i, c := range cs {
		m, err := k.Decrypt(c)
		if err != nil {
			return nil, fmt.Errorf("paillier: decrypt element %d: %w", i, err)
		}
		out[i] = m
	}
	return out, nil
}

// DecryptSignedVector decrypts each element as a signed residue.
func (k *PrivateKey) DecryptSignedVector(cs []*Ciphertext) ([]*big.Int, error) {
	out := make([]*big.Int, len(cs))
	for i, c := range cs {
		m, err := k.DecryptSigned(c)
		if err != nil {
			return nil, fmt.Errorf("paillier: decrypt element %d: %w", i, err)
		}
		out[i] = m
	}
	return out, nil
}

// Bytes returns a canonical encoding of the ciphertext value.
func (c *Ciphertext) Bytes() []byte {
	if c == nil || c.C == nil {
		return nil
	}
	return c.C.Bytes()
}

// CiphertextFromBytes reconstructs a ciphertext from Bytes output.
func CiphertextFromBytes(b []byte) *Ciphertext {
	return &Ciphertext{C: new(big.Int).SetBytes(b)}
}
