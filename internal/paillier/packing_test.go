package paillier

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func testPacking(t *testing.T) Packing {
	t.Helper()
	bias := new(big.Int).Lsh(big.NewInt(1), 20)
	return Packing{
		Width: 50,
		Slots: 4,
		Count: 10,
		Bias:  bias,
		Max:   new(big.Int).Lsh(bias, 1),
	}
}

func TestPackSplitRoundTrip(t *testing.T) {
	p := testPacking(t)
	values := make([]*big.Int, p.Count)
	for i := range values {
		values[i] = big.NewInt(int64((i - 5) * 99991))
	}
	packed, err := p.Pack(values)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	if got, want := len(packed), 3; got != want {
		t.Fatalf("plaintexts = %d, want %d", got, want)
	}
	slots, err := p.Split(packed)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	for i, s := range slots {
		want := new(big.Int).Add(values[i], p.Bias)
		if s.Cmp(want) != 0 {
			t.Fatalf("slot %d = %v, want %v", i, s, want)
		}
	}
}

func TestPackedSumsAddSlotwise(t *testing.T) {
	p := testPacking(t)
	const users = 7
	sums := make([]*big.Int, p.Count)
	acc := make([]*big.Int, p.Plaintexts())
	for i := range sums {
		sums[i] = new(big.Int)
	}
	for i := range acc {
		acc[i] = new(big.Int)
	}
	for u := 0; u < users; u++ {
		values := make([]*big.Int, p.Count)
		for i := range values {
			v := int64((u+1)*(i+1)) - 40
			values[i] = big.NewInt(v)
			sums[i].Add(sums[i], values[i])
		}
		packed, err := p.Pack(values)
		if err != nil {
			t.Fatalf("Pack user %d: %v", u, err)
		}
		for i, w := range packed {
			acc[i].Add(acc[i], w)
		}
	}
	slots, err := p.Split(acc)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	nBias := new(big.Int).Mul(big.NewInt(users), p.Bias)
	for i, s := range slots {
		got := new(big.Int).Sub(s, nBias)
		if got.Cmp(sums[i]) != 0 {
			t.Fatalf("slot %d sum = %v, want %v", i, got, sums[i])
		}
	}
}

func TestPackRejectsOutOfRange(t *testing.T) {
	p := testPacking(t)
	values := make([]*big.Int, p.Count)
	for i := range values {
		values[i] = big.NewInt(0)
	}
	values[3] = new(big.Int).Neg(new(big.Int).Add(p.Bias, big.NewInt(1)))
	if _, err := p.Pack(values); err == nil {
		t.Fatal("Pack accepted value below -Bias")
	}
	values[3] = new(big.Int).Set(p.Bias) // biased = 2*Bias = Max
	if _, err := p.Pack(values); err == nil {
		t.Fatal("Pack accepted value at Max")
	}
	values[3] = big.NewInt(0)
	if _, err := p.Pack(values[:p.Count-1]); err == nil {
		t.Fatal("Pack accepted short vector")
	}
}

func TestPackRawBlindsRoundTrip(t *testing.T) {
	p := testPacking(t)
	blinds := make([]*big.Int, p.Count)
	for i := range blinds {
		b, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), uint(p.Width-1)))
		if err != nil {
			t.Fatal(err)
		}
		blinds[i] = b
	}
	packed, err := p.PackRaw(blinds)
	if err != nil {
		t.Fatalf("PackRaw: %v", err)
	}
	slots, err := p.Split(packed)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	for i, s := range slots {
		if s.Cmp(blinds[i]) != 0 {
			t.Fatalf("blind %d = %v, want %v", i, s, blinds[i])
		}
	}
	too := make([]*big.Int, p.Count)
	for i := range too {
		too[i] = big.NewInt(0)
	}
	too[0] = new(big.Int).Lsh(big.NewInt(1), uint(p.Width))
	if _, err := p.PackRaw(too); err == nil {
		t.Fatal("PackRaw accepted full-width overflow")
	}
}

func TestPackedHomomorphicAggregation(t *testing.T) {
	key, err := GenerateKey(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	pk := key.Public()
	p := testPacking(t)
	const users = 5
	sums := make([]*big.Int, p.Count)
	for i := range sums {
		sums[i] = new(big.Int)
	}
	var agg []*Ciphertext
	scratch := new(big.Int)
	for u := 0; u < users; u++ {
		values := make([]*big.Int, p.Count)
		for i := range values {
			values[i] = big.NewInt(int64(u*13 - i*7))
			sums[i].Add(sums[i], values[i])
		}
		packed, err := p.Pack(values)
		if err != nil {
			t.Fatal(err)
		}
		cts, err := pk.EncryptVector(rand.Reader, packed)
		if err != nil {
			t.Fatal(err)
		}
		if agg == nil {
			agg = make([]*Ciphertext, len(cts))
			for i, c := range cts {
				agg[i] = c.Clone()
			}
			continue
		}
		for i, c := range cts {
			if err := pk.AddInto(agg[i], c, scratch); err != nil {
				t.Fatal(err)
			}
		}
	}
	plain := make([]*big.Int, len(agg))
	for i, c := range agg {
		m, err := key.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		plain[i] = m
	}
	slots, err := p.Split(plain)
	if err != nil {
		t.Fatal(err)
	}
	nBias := new(big.Int).Mul(big.NewInt(users), p.Bias)
	for i, s := range slots {
		got := new(big.Int).Sub(s, nBias)
		if got.Cmp(sums[i]) != 0 {
			t.Fatalf("aggregated slot %d = %v, want %v", i, got, sums[i])
		}
	}
}

func TestAddIntoMatchesAdd(t *testing.T) {
	key, err := GenerateKey(rand.Reader, 128)
	if err != nil {
		t.Fatal(err)
	}
	pk := key.Public()
	c1, err := pk.Encrypt(rand.Reader, big.NewInt(1234))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := pk.Encrypt(rand.Reader, big.NewInt(4321))
	if err != nil {
		t.Fatal(err)
	}
	want, err := pk.Add(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	acc := c1.Clone()
	if err := pk.AddInto(acc, c2, new(big.Int)); err != nil {
		t.Fatal(err)
	}
	if acc.C.Cmp(want.C) != 0 {
		t.Fatalf("AddInto = %v, want %v", acc.C, want.C)
	}
	m, err := key.Decrypt(acc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Int64() != 5555 {
		t.Fatalf("decrypt = %v, want 5555", m)
	}
	if err := pk.AddInto(nil, c2, new(big.Int)); err == nil {
		t.Fatal("AddInto accepted nil accumulator")
	}
}

// BenchmarkAggregateAdd vs BenchmarkAggregateAddInto proves the
// satellite alloc reduction: AddInto reuses the accumulator's and the
// scratch's storage instead of allocating a fresh big.Int per fold.
func benchCiphertexts(b *testing.B) (*PublicKey, []*Ciphertext) {
	b.Helper()
	key, err := GenerateKey(rand.Reader, 512)
	if err != nil {
		b.Fatal(err)
	}
	pk := key.Public()
	cts := make([]*Ciphertext, 64)
	for i := range cts {
		c, err := pk.Encrypt(rand.Reader, big.NewInt(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		cts[i] = c
	}
	return pk, cts
}

func BenchmarkAggregateAdd(b *testing.B) {
	pk, cts := benchCiphertexts(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := cts[0].Clone()
		for _, c := range cts[1:] {
			out, err := pk.Add(acc, c)
			if err != nil {
				b.Fatal(err)
			}
			acc = out
		}
	}
}

func BenchmarkAggregateAddInto(b *testing.B) {
	pk, cts := benchCiphertexts(b)
	scratch := new(big.Int)
	acc := cts[0].Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.C.Set(cts[0].C)
		for _, c := range cts[1:] {
			if err := pk.AddInto(acc, c, scratch); err != nil {
				b.Fatal(err)
			}
		}
	}
}
