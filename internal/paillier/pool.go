package paillier

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
)

// NoncePool pre-generates the expensive r^n mod n^2 blinding factors so that
// bulk encryption becomes a cheap multiply. This mirrors the paper's fix for
// the serialized random-number-generation bottleneck (§VI-A "Encrypt numbers
// efficiently"): a table of random values is produced ahead of time and
// consumed by encrypting workers.
//
// A NoncePool owns background worker goroutines; call Close to stop them.
type NoncePool struct {
	pk      *PublicKey
	nonces  chan *big.Int
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	fillErr error
	errOnce sync.Once
}

// ErrPoolClosed is returned when drawing from a closed pool.
var ErrPoolClosed = errors.New("paillier: nonce pool closed")

// NewNoncePool starts workers goroutines that keep up to capacity
// precomputed blinding factors available. rng must be safe for concurrent
// use when workers > 1 (crypto/rand.Reader is; pass workers=1 for
// deterministic test readers).
func NewNoncePool(rng io.Reader, pk *PublicKey, capacity, workers int) (*NoncePool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("paillier: pool capacity must be positive, got %d", capacity)
	}
	if workers <= 0 {
		return nil, fmt.Errorf("paillier: pool workers must be positive, got %d", workers)
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &NoncePool{
		pk:     pk,
		nonces: make(chan *big.Int, capacity),
		cancel: cancel,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.fill(ctx, rng)
	}
	return p, nil
}

// fill keeps the pool topped up until the context is cancelled.
func (p *NoncePool) fill(ctx context.Context, rng io.Reader) {
	defer p.wg.Done()
	for {
		// freshNonce refills through the key's shared fixed-base blinding
		// table when available, a multiplication chain instead of a full
		// square-and-multiply per draw.
		rn, err := p.pk.freshNonce(rng)
		if err != nil {
			p.errOnce.Do(func() { p.fillErr = err })
			return
		}
		select {
		case p.nonces <- rn:
			poolRefills.Inc()
		case <-ctx.Done():
			return
		}
	}
}

// Next returns a precomputed blinding factor r^n mod n^2, blocking until one
// is available. A draw satisfied without waiting counts as a pool hit; one
// that has to block for a refill worker counts as a miss.
func (p *NoncePool) Next(ctx context.Context) (*big.Int, error) {
	select {
	case rn, ok := <-p.nonces:
		if !ok {
			return nil, ErrPoolClosed
		}
		poolHits.Inc()
		return rn, nil
	default:
	}
	poolMisses.Inc()
	select {
	case rn, ok := <-p.nonces:
		if !ok {
			return nil, ErrPoolClosed
		}
		return rn, nil
	case <-ctx.Done():
		if p.fillErr != nil {
			return nil, p.fillErr
		}
		return nil, ctx.Err()
	}
}

// Encrypt encrypts m using a pooled blinding factor.
func (p *NoncePool) Encrypt(ctx context.Context, m *big.Int) (*Ciphertext, error) {
	if err := p.pk.validateMessage(m); err != nil {
		return nil, err
	}
	rn, err := p.Next(ctx)
	if err != nil {
		return nil, err
	}
	return p.pk.seal(m, rn), nil
}

// EncryptVector encrypts each element of ms with pooled nonces.
func (p *NoncePool) EncryptVector(ctx context.Context, ms []*big.Int) ([]*Ciphertext, error) {
	out := make([]*Ciphertext, len(ms))
	for i, m := range ms {
		c, err := p.Encrypt(ctx, m)
		if err != nil {
			return nil, fmt.Errorf("paillier: pooled encrypt element %d: %w", i, err)
		}
		out[i] = c
	}
	return out, nil
}

// Close stops the background workers and drains the pool.
func (p *NoncePool) Close() {
	p.cancel()
	p.wg.Wait()
	close(p.nonces)
	for range p.nonces {
		// Drain remaining nonces so their memory is reclaimable promptly.
	}
}
