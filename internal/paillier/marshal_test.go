package paillier

import (
	"encoding/json"
	"math/big"
	"testing"
)

func TestPublicKeyJSONRoundTrip(t *testing.T) {
	key := testKey(t, 64)
	data, err := json.Marshal(key.Public())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back PublicKey
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.N.Cmp(key.N) != 0 || back.N2.Cmp(key.N2) != 0 || back.G.Cmp(key.G) != 0 {
		t.Error("public key fields not preserved")
	}
	// The reloaded key must encrypt values the original can decrypt.
	c, err := back.Encrypt(testRNG(1), big.NewInt(4242))
	if err != nil {
		t.Fatal(err)
	}
	m, err := key.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Int64() != 4242 {
		t.Errorf("cross-key round trip = %v", m)
	}
}

func TestPrivateKeyJSONRoundTrip(t *testing.T) {
	key := testKey(t, 64)
	data, err := json.Marshal(key)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back PrivateKey
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	// The reloaded key must decrypt ciphertexts from the original.
	c, err := key.Encrypt(testRNG(2), big.NewInt(99999))
	if err != nil {
		t.Fatal(err)
	}
	m, err := back.Decrypt(c)
	if err != nil {
		t.Fatalf("decrypt with reloaded key: %v", err)
	}
	if m.Int64() != 99999 {
		t.Errorf("reloaded decrypt = %v", m)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var pk PublicKey
	if err := json.Unmarshal([]byte(`{"n":"-5"}`), &pk); err == nil {
		t.Error("expected error for negative modulus")
	}
	if err := json.Unmarshal([]byte(`{"n":"zzz"}`), &pk); err == nil {
		t.Error("expected error for non-numeric modulus")
	}
	var k PrivateKey
	if err := json.Unmarshal([]byte(`{"p":"4","q":"9"}`), &k); err == nil {
		t.Error("expected error for composite factors")
	}
	if err := json.Unmarshal([]byte(`not json`), &k); err == nil {
		t.Error("expected error for invalid JSON")
	}
}

func TestMarshalZeroKeys(t *testing.T) {
	var pk PublicKey
	if _, err := json.Marshal(&pk); err == nil {
		t.Error("expected error marshaling zero public key")
	}
	var k PrivateKey
	if _, err := json.Marshal(&k); err == nil {
		t.Error("expected error marshaling zero private key")
	}
}
