package paillier

import "github.com/privconsensus/privconsensus/internal/obs"

// Process-wide operation counters on the obs default registry. They count
// only operations — never plaintexts, nonces or key material.
var (
	encOps = obs.Default.Counter("paillier_encrypt_total",
		"Paillier encryptions, fresh-nonce and pooled.")
	decOps = obs.Default.Counter("paillier_decrypt_total",
		"Paillier decryptions, CRT and slow path.")
	addOps = obs.Default.Counter("paillier_add_total",
		"Homomorphic additions (ciphertext multiplications), including AddPlain.")
	mulOps = obs.Default.Counter("paillier_scalarmul_total",
		"Homomorphic scalar multiplications (ciphertext exponentiations).")
	poolHits = obs.Default.Counter("paillier_pool_hits_total",
		"Nonce pool draws satisfied without blocking.")
	poolMisses = obs.Default.Counter("paillier_pool_misses_total",
		"Nonce pool draws that had to wait for a refill worker.")
	poolRefills = obs.Default.Counter("paillier_pool_refills_total",
		"Blinding factors precomputed by nonce pool workers.")
)

// WatchOps registers this package's operation counters on a tracer so each
// QueryTrace span records the Paillier work done during its phase.
func WatchOps(t *obs.Tracer) {
	t.Watch("paillier_enc", encOps)
	t.Watch("paillier_dec", decOps)
	t.Watch("paillier_add", addOps)
	t.Watch("paillier_scalarmul", mulOps)
	t.Watch("paillier_pool_miss", poolMisses)
}
