package experiments

import (
	"fmt"
	"math/big"
	"math/rand"
	"time"

	"github.com/privconsensus/privconsensus/internal/dgk"
	"github.com/privconsensus/privconsensus/internal/paillier"
)

// Crypto micro-kernel timings recorded alongside the protocol benchmark so
// the regression guard can watch the fixed-base exponentiation path
// directly. Both measurements deliberately bypass the nonce pools: a pooled
// encryption is a single multiply, which would hide a regression in the
// kernels the pools themselves refill through.

// MicroBenchResult holds single-threaded mean encryption times.
type MicroBenchResult struct {
	// PaillierEncNs is one fresh-nonce Paillier encryption (512-bit key).
	PaillierEncNs int64
	// DGKEncNs is one fresh-nonce DGK encryption at the protocol's default
	// parameters (NBits 192, TBits 40, u 1009, l 56).
	DGKEncNs int64
}

// microIters balances stable means against `make bench` wall time.
const microIters = 200

// MicroBench measures the crypto micro-kernels with warmed fixed-base
// tables, mirroring BenchmarkPaillierEnc / BenchmarkDGKEnc from the root
// bench suite.
func MicroBench() (*MicroBenchResult, error) {
	rng := rand.New(rand.NewSource(7))
	pKey, err := paillier.GenerateKey(rng, 512)
	if err != nil {
		return nil, fmt.Errorf("experiments: microbench Paillier key: %w", err)
	}
	pPub := pKey.Public()
	pPub.Precompute()
	msg := big.NewInt(123456)
	start := time.Now()
	for i := 0; i < microIters; i++ {
		if _, err := pPub.Encrypt(rng, msg); err != nil {
			return nil, fmt.Errorf("experiments: microbench Paillier enc: %w", err)
		}
	}
	paillierNs := time.Since(start).Nanoseconds() / microIters

	dRng := rand.New(rand.NewSource(8))
	dKey, err := dgk.GenerateKey(dRng, dgk.Params{NBits: 192, TBits: 40, U: 1009, L: 56})
	if err != nil {
		return nil, fmt.Errorf("experiments: microbench DGK key: %w", err)
	}
	dPub := dKey.Public()
	dPub.Precompute()
	one := big.NewInt(1)
	start = time.Now()
	for i := 0; i < microIters; i++ {
		if _, err := dPub.Encrypt(dRng, one); err != nil {
			return nil, fmt.Errorf("experiments: microbench DGK enc: %w", err)
		}
	}
	dgkNs := time.Since(start).Nanoseconds() / microIters

	return &MicroBenchResult{PaillierEncNs: paillierNs, DGKEncNs: dgkNs}, nil
}
