package experiments

import (
	"fmt"
	"math"

	"github.com/privconsensus/privconsensus/internal/dataset"
	"github.com/privconsensus/privconsensus/internal/dp"
)

// Fig3 ablation: epsilon-matched baseline.
//
// The paper compares consensus and baseline "under the same differential
// privacy scheme and the same privacy level", which its figures realize as
// identical noise deviations. Because the consensus mechanism additionally
// pays the Sparse Vector Technique cost (9/2σ₁² per query versus the
// baseline's 1/σ₂²), equal sigmas give the two methods *different* total
// epsilons. This ablation instead recalibrates the baseline's noise so its
// total (ε, δ=1e-6) spend equals the consensus run's, the strictest
// reading of "same privacy level".

// EpsMatchedCell compares consensus and the epsilon-matched baseline at
// one (users, privacy level) point.
type EpsMatchedCell struct {
	Users int
	Level string
	// Epsilon is the consensus run's total spend that the baseline was
	// matched to.
	Epsilon float64
	// BaselineSigma is the recalibrated RNM deviation.
	BaselineSigma float64
	// Label and student accuracy of each method at that common epsilon.
	ConsensusLabelAcc   float64
	BaselineLabelAcc    float64
	ConsensusStudentAcc float64
	BaselineStudentAcc  float64
}

// Fig3EpsilonMatched runs the epsilon-matched comparison over the
// configured user counts and privacy levels on SVHN-like data.
func Fig3EpsilonMatched(opts Options) ([]EpsMatchedCell, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	spec := dataset.SVHNLike()
	var out []EpsMatchedCell
	for _, level := range PrivacyLevels() {
		for _, users := range opts.Users {
			cons := opts.baseConfig(spec, users, dataset.DivisionEven)
			cons.Sigma1, cons.Sigma2 = level.Sigma1, level.Sigma2
			consRes, err := runAveraged(cons, opts.Reps)
			if err != nil {
				return nil, fmt.Errorf("experiments: epsmatch consensus users=%d: %w", users, err)
			}
			if consRes.Epsilon <= 0 {
				return nil, fmt.Errorf("experiments: consensus run reported no epsilon")
			}

			// Match the baseline's total spend: Q queries, each an RNM
			// invocation with coefficient 1/sigma^2.
			coef, err := dp.CoefficientForEpsilon(consRes.Epsilon, 1e-6)
			if err != nil {
				return nil, err
			}
			baseSigma := math.Sqrt(float64(opts.Queries) / coef)

			base := opts.baseConfig(spec, users, dataset.DivisionEven)
			base.UseConsensus = false
			base.Sigma1 = 0
			base.Sigma2 = baseSigma
			baseRes, err := runAveraged(base, opts.Reps)
			if err != nil {
				return nil, fmt.Errorf("experiments: epsmatch baseline users=%d: %w", users, err)
			}

			out = append(out, EpsMatchedCell{
				Users: users, Level: level.Name,
				Epsilon:             consRes.Epsilon,
				BaselineSigma:       baseSigma,
				ConsensusLabelAcc:   consRes.LabelAccuracy,
				BaselineLabelAcc:    baseRes.LabelAccuracy,
				ConsensusStudentAcc: consRes.StudentAccuracy,
				BaselineStudentAcc:  baseRes.StudentAccuracy,
			})
		}
	}
	return out, nil
}
