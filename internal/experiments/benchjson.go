package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// BenchPhase is the machine-readable form of one protocol step's cost.
type BenchPhase struct {
	Step             string  `json:"step"`
	AvgNs            int64   `json:"avg_ns"`
	AvgBytesPerParty int64   `json:"avg_bytes_per_party"`
	AvgMsgs          float64 `json:"avg_msgs"`
}

// BenchJSON is the machine-readable protocol benchmark record written as
// BENCH_protocol.json. The schema field versions the layout so downstream
// tooling can detect changes.
type BenchJSON struct {
	Schema      string `json:"schema"`
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`

	Instances int `json:"instances"`
	Users     int `json:"users"`
	Classes   int `json:"classes"`
	// Parallelism is the configured worker bound (0 = NumCPU).
	Parallelism int   `json:"parallelism"`
	UseDGKPool  bool  `json:"use_dgk_pool"`
	Seed        int64 `json:"seed"`

	// NsPerOp is the mean end-to-end time of one query instance.
	NsPerOp int64 `json:"ns_per_op"`
	// BytesPerOp is the mean server-to-server bytes one party sends per
	// instance (sum of the per-step averages).
	BytesPerOp int64 `json:"bytes_per_op"`
	// UserToServerBytes are the per-user uploads for the two secure sums.
	UserToServerBytes  int64 `json:"user_to_server_bytes"`
	UserToServerBytes2 int64 `json:"user_to_server_bytes2"`
	ConsensusInstances int   `json:"consensus_instances"`

	// Crypto micro-kernel timings (schema v2): mean single-threaded
	// fresh-nonce encryption cost with pools bypassed, the direct view of
	// the fixed-base exponentiation path. See MicroBench.
	PaillierEncNs int64 `json:"paillier_enc_ns"`
	DGKEncNs      int64 `json:"dgk_enc_ns"`

	Phases []BenchPhase `json:"phases"`
}

// BenchJSONFrom converts a benchmark result into its JSON record.
func BenchJSONFrom(res *ProtocolBenchResult) BenchJSON {
	out := BenchJSON{
		Schema:             "privconsensus/protocol-bench/v2",
		GeneratedAt:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:          runtime.Version(),
		GOOS:               runtime.GOOS,
		GOARCH:             runtime.GOARCH,
		NumCPU:             runtime.NumCPU(),
		Instances:          res.Config.Instances,
		Users:              res.Config.Users,
		Classes:            res.Config.Classes,
		Parallelism:        res.Config.Parallelism,
		UseDGKPool:         res.Config.UseDGKPool,
		Seed:               res.Config.Seed,
		NsPerOp:            res.Overall.Nanoseconds(),
		UserToServerBytes:  res.UserToServerBytes,
		UserToServerBytes2: res.UserToServerBytes2,
		ConsensusInstances: res.Consensus,
	}
	for _, s := range res.Steps {
		out.BytesPerOp += s.AvgBytesPerParty
		out.Phases = append(out.Phases, BenchPhase{
			Step:             s.Step,
			AvgNs:            s.AvgTime.Nanoseconds(),
			AvgBytesPerParty: s.AvgBytesPerParty,
			AvgMsgs:          s.Msgs,
		})
	}
	return out
}

// WriteBenchJSON writes the benchmark record to path, indented for diffing.
// It also runs the crypto micro-benchmarks so the record carries the
// fixed-base kernel timings the regression guard watches.
func WriteBenchJSON(path string, res *ProtocolBenchResult) error {
	out := BenchJSONFrom(res)
	micro, err := MicroBench()
	if err != nil {
		return err
	}
	out.PaillierEncNs = micro.PaillierEncNs
	out.DGKEncNs = micro.DGKEncNs
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: marshal bench json: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
