package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// BenchPhase is the machine-readable form of one protocol step's cost.
type BenchPhase struct {
	Step             string  `json:"step"`
	AvgNs            int64   `json:"avg_ns"`
	AvgBytesPerParty int64   `json:"avg_bytes_per_party"`
	AvgMsgs          float64 `json:"avg_msgs"`
}

// BenchJSON is the machine-readable protocol benchmark record written as
// BENCH_protocol.json. The schema field versions the layout so downstream
// tooling can detect changes.
type BenchJSON struct {
	Schema      string `json:"schema"`
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`

	Instances int `json:"instances"`
	Users     int `json:"users"`
	Classes   int `json:"classes"`
	// Parallelism is the configured worker bound (0 = NumCPU).
	Parallelism int   `json:"parallelism"`
	UseDGKPool  bool  `json:"use_dgk_pool"`
	Seed        int64 `json:"seed"`
	// ArgmaxStrategy (schema v3) names the comparison schedule the primary
	// record measured: "tournament" (batched bracket) or "allpairs". The
	// regression guard only compares phase timings between records of the
	// same strategy.
	ArgmaxStrategy string `json:"argmax_strategy"`
	// Packing (schema v4) reports whether the primary record measured
	// slot-packed submissions. The guard only compares phase timings
	// between records of the same mode: packing moves the submission cost
	// off the users and adds the blinded unpack exchange.
	Packing bool `json:"packing"`

	// NsPerOp is the mean end-to-end time of one query instance.
	NsPerOp int64 `json:"ns_per_op"`
	// BytesPerOp is the mean server-to-server bytes one party sends per
	// instance (sum of the per-step averages).
	BytesPerOp int64 `json:"bytes_per_op"`
	// UserToServerBytes are the per-user uploads for the two secure sums.
	UserToServerBytes  int64 `json:"user_to_server_bytes"`
	UserToServerBytes2 int64 `json:"user_to_server_bytes2"`
	ConsensusInstances int   `json:"consensus_instances"`

	// Per-user upload sizing (schema v4): one user's full submission
	// (both halves) measured with packing off and on at the same workload
	// shape and a packed-capable key size (packed_paillier_bits). The
	// guard checks the packed upload stays >= 4x smaller with >= 2x fewer
	// user-side Paillier encryptions.
	PackedPaillierBits         int   `json:"packed_paillier_bits"`
	BytesPerUserUnpacked       int64 `json:"bytes_per_user_unpacked"`
	BytesPerUserPacked         int64 `json:"bytes_per_user_packed"`
	EncryptionsPerUserUnpacked int   `json:"encryptions_per_user_unpacked"`
	EncryptionsPerUserPacked   int   `json:"encryptions_per_user_packed"`

	// Crypto micro-kernel timings (schema v2): mean single-threaded
	// fresh-nonce encryption cost with pools bypassed, the direct view of
	// the fixed-base exponentiation path. See MicroBench.
	PaillierEncNs int64 `json:"paillier_enc_ns"`
	DGKEncNs      int64 `json:"dgk_enc_ns"`

	Phases []BenchPhase `json:"phases"`

	// Oracle record (schema v3): the same workload re-run under the
	// all-pairs strategy, so one file carries per-phase avg_msgs for both
	// schedules. These fields sit after Phases on purpose — the guard's
	// line-oriented first-match extraction must always hit the primary
	// record first. Omitted when the oracle run was skipped.
	AllPairsNsPerOp int64        `json:"allpairs_ns_per_op,omitempty"`
	AllPairsPhases  []BenchPhase `json:"allpairs_phases,omitempty"`
}

// BenchJSONFrom converts a benchmark result into its JSON record.
func BenchJSONFrom(res *ProtocolBenchResult) BenchJSON {
	out := BenchJSON{
		Schema:             "privconsensus/protocol-bench/v4",
		GeneratedAt:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:          runtime.Version(),
		GOOS:               runtime.GOOS,
		GOARCH:             runtime.GOARCH,
		NumCPU:             runtime.NumCPU(),
		Instances:          res.Config.Instances,
		Users:              res.Config.Users,
		Classes:            res.Config.Classes,
		Parallelism:        res.Config.Parallelism,
		UseDGKPool:         res.Config.UseDGKPool,
		Seed:               res.Config.Seed,
		ArgmaxStrategy:     res.Config.ResolvedArgmaxStrategy(),
		Packing:            res.Config.Packing,
		NsPerOp:            res.Overall.Nanoseconds(),
		UserToServerBytes:  res.UserToServerBytes,
		UserToServerBytes2: res.UserToServerBytes2,
		ConsensusInstances: res.Consensus,
	}
	for _, s := range res.Steps {
		out.BytesPerOp += s.AvgBytesPerParty
		out.Phases = append(out.Phases, BenchPhase{
			Step:             s.Step,
			AvgNs:            s.AvgTime.Nanoseconds(),
			AvgBytesPerParty: s.AvgBytesPerParty,
			AvgMsgs:          s.Msgs,
		})
	}
	return out
}

// packedSizeBits is the Paillier modulus used for the packed-vs-unpacked
// upload sizing in the bench record: large enough for the packed slot width
// at the paper's statistical parameter, unlike the 64-bit prototype keys
// the timing runs use.
const packedSizeBits = 1024

// WriteBenchJSON writes the benchmark record to path, indented for diffing.
// res is the primary run (the configured strategy); oracle, when non-nil, is
// the same workload under the all-pairs schedule and lands in the
// allpairs_* fields so one record carries both strategies' per-phase costs.
// It also runs the crypto micro-benchmarks and the packed-vs-unpacked
// upload sizing so the record carries the fixed-base kernel timings and the
// bytes_per_user_{packed,unpacked} figures the regression guard watches.
func WriteBenchJSON(path string, res, oracle *ProtocolBenchResult) error {
	out := BenchJSONFrom(res)
	if oracle != nil {
		oj := BenchJSONFrom(oracle)
		out.AllPairsNsPerOp = oj.NsPerOp
		out.AllPairsPhases = oj.Phases
	}
	micro, err := MicroBench()
	if err != nil {
		return err
	}
	out.PaillierEncNs = micro.PaillierEncNs
	out.DGKEncNs = micro.DGKEncNs
	sizes, err := MeasurePackedSizes(res.Config.Users, res.Config.Classes, packedSizeBits, res.Config.Seed)
	if err != nil {
		return err
	}
	out.PackedPaillierBits = sizes.PaillierBits
	out.BytesPerUserUnpacked = sizes.UnpackedBytes
	out.BytesPerUserPacked = sizes.PackedBytes
	out.EncryptionsPerUserUnpacked = sizes.UnpackedEncryptions
	out.EncryptionsPerUserPacked = sizes.PackedEncryptions
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: marshal bench json: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
