package experiments

import (
	"fmt"

	"github.com/privconsensus/privconsensus/internal/dataset"
	"github.com/privconsensus/privconsensus/internal/pate"
)

// unevenDivisions lists the paper's three uneven distributions.
func unevenDivisions() []dataset.Division {
	return []dataset.Division{dataset.Division28, dataset.Division37, dataset.Division46}
}

// Table3Cell is one cell of Table III: proportion of retained samples and
// label accuracy.
type Table3Cell struct {
	Users     int
	Division  dataset.Division
	Retention float64
	LabelAcc  float64
}

// Table3 reproduces Table III (SVHN): retained proportion / label accuracy
// across user counts and uneven divisions at T = 60%.
func Table3(opts Options) ([]Table3Cell, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	spec := dataset.SVHNLike()
	var out []Table3Cell
	for _, users := range opts.Users {
		for _, div := range unevenDivisions() {
			cfg := opts.baseConfig(spec, users, div)
			res, err := runAveraged(cfg, opts.Reps)
			if err != nil {
				return nil, fmt.Errorf("experiments: table3 users=%d div=%v: %w", users, div, err)
			}
			out = append(out, Table3Cell{
				Users: users, Division: div,
				Retention: res.Retention, LabelAcc: res.LabelAccuracy,
			})
		}
	}
	return out, nil
}

// Fig2 reproduces Fig. 2: user accuracy under even and uneven data
// distributions, for the MNIST-like and SVHN-like datasets. The returned
// figures are (a) even, then one per division with majority/minority
// series.
func Fig2(opts Options) ([]Figure, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	specs := []dataset.Spec{dataset.MNISTLike(), dataset.SVHNLike()}

	even := Figure{ID: "fig2a", Title: "User accuracy, even distribution",
		XLabel: "users", YLabel: "user accuracy"}
	for _, spec := range specs {
		s := Series{Name: spec.Name}
		for _, users := range opts.Users {
			cfg := opts.baseConfig(spec, users, dataset.DivisionEven)
			res, err := runAveraged(cfg, opts.Reps)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig2 even %s users=%d: %w", spec.Name, users, err)
			}
			s.X = append(s.X, float64(users))
			s.Y = append(s.Y, res.UserAccMean)
		}
		even.Series = append(even.Series, s)
	}
	figures := []Figure{even}

	ids := []string{"fig2b", "fig2c", "fig2d"}
	for di, div := range unevenDivisions() {
		fig := Figure{ID: ids[di], Title: fmt.Sprintf("User accuracy, division %v", div),
			XLabel: "users", YLabel: "user accuracy"}
		for _, spec := range specs {
			maj := Series{Name: spec.Name + "/majority"}
			minr := Series{Name: spec.Name + "/minority"}
			for _, users := range opts.Users {
				cfg := opts.baseConfig(spec, users, div)
				res, err := runAveraged(cfg, opts.Reps)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig2 %v %s users=%d: %w", div, spec.Name, users, err)
				}
				maj.X = append(maj.X, float64(users))
				maj.Y = append(maj.Y, res.MajorityAcc)
				minr.X = append(minr.X, float64(users))
				minr.Y = append(minr.Y, res.MinorityAcc)
			}
			fig.Series = append(fig.Series, maj, minr)
		}
		figures = append(figures, fig)
	}
	return figures, nil
}

// Fig3 reproduces Fig. 3: label accuracy and aggregator accuracy for the
// MNIST-like and SVHN-like datasets under even distribution, comparing the
// consensus protocol against the noisy-argmax baseline across privacy
// levels.
func Fig3(opts Options) ([]Figure, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var figures []Figure
	ids := map[string][2]string{
		"mnist": {"fig3a", "fig3b"},
		"svhn":  {"fig3c", "fig3d"},
	}
	for _, name := range []string{"mnist", "svhn"} {
		spec, err := specByName(name)
		if err != nil {
			return nil, err
		}
		labelFig := Figure{ID: ids[name][0], Title: "Label accuracy (" + name + ")",
			XLabel: "users", YLabel: "label accuracy"}
		aggFig := Figure{ID: ids[name][1], Title: "Aggregator accuracy (" + name + ")",
			XLabel: "users", YLabel: "aggregator accuracy"}
		for _, level := range PrivacyLevels() {
			for _, consensus := range []bool{true, false} {
				method := "consensus"
				if !consensus {
					method = "baseline"
				}
				labelSeries := Series{Name: fmt.Sprintf("%s/%s", method, level.Name)}
				aggSeries := Series{Name: labelSeries.Name}
				for _, users := range opts.Users {
					cfg := opts.baseConfig(spec, users, dataset.DivisionEven)
					cfg.UseConsensus = consensus
					cfg.Sigma1, cfg.Sigma2 = level.Sigma1, level.Sigma2
					res, err := runAveraged(cfg, opts.Reps)
					if err != nil {
						return nil, fmt.Errorf("experiments: fig3 %s %s users=%d: %w", name, method, users, err)
					}
					labelSeries.X = append(labelSeries.X, float64(users))
					labelSeries.Y = append(labelSeries.Y, res.LabelAccuracy)
					aggSeries.X = append(aggSeries.X, float64(users))
					aggSeries.Y = append(aggSeries.Y, res.StudentAccuracy)
				}
				labelFig.Series = append(labelFig.Series, labelSeries)
				aggFig.Series = append(aggFig.Series, aggSeries)
			}
		}
		figures = append(figures, labelFig, aggFig)
	}
	return figures, nil
}

// Fig4 reproduces Fig. 4: aggregator accuracy with one-hot versus softmax
// teacher votes (consensus method, even distribution).
func Fig4(opts Options) ([]Figure, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var figures []Figure
	ids := map[string][2]string{
		"mnist": {"fig4a", "fig4b"},
		"svhn":  {"fig4c", "fig4d"},
	}
	for _, name := range []string{"mnist", "svhn"} {
		spec, err := specByName(name)
		if err != nil {
			return nil, err
		}
		for vi, vt := range []pate.VoteType{pate.OneHot, pate.Softmax} {
			fig := Figure{ID: ids[name][vi],
				Title:  fmt.Sprintf("Aggregator accuracy with %v labels (%s)", vt, name),
				XLabel: "users", YLabel: "aggregator accuracy"}
			for _, level := range PrivacyLevels() {
				s := Series{Name: level.Name}
				for _, users := range opts.Users {
					cfg := opts.baseConfig(spec, users, dataset.DivisionEven)
					cfg.VoteType = vt
					cfg.Sigma1, cfg.Sigma2 = level.Sigma1, level.Sigma2
					res, err := runAveraged(cfg, opts.Reps)
					if err != nil {
						return nil, fmt.Errorf("experiments: fig4 %s %v users=%d: %w", name, vt, users, err)
					}
					s.X = append(s.X, float64(users))
					s.Y = append(s.Y, res.StudentAccuracy)
				}
				fig.Series = append(fig.Series, s)
			}
			figures = append(figures, fig)
		}
	}
	return figures, nil
}

// Fig5Thresholds lists the swept consensus thresholds (30%..90%).
func Fig5Thresholds() []float64 {
	return []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
}

// Fig5 reproduces Fig. 5: (a)(b) aggregator accuracy across voting
// thresholds at a fixed privacy level (the paper fixes ε = 8.19,
// δ = 1e-6), and (c)(d) aggregator accuracy under uneven distributions.
func Fig5(opts Options) ([]Figure, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var figures []Figure
	thrIDs := map[string]string{"mnist": "fig5a", "svhn": "fig5b"}
	unevenIDs := map[string]string{"mnist": "fig5c", "svhn": "fig5d"}
	for _, name := range []string{"mnist", "svhn"} {
		spec, err := specByName(name)
		if err != nil {
			return nil, err
		}
		// (a)(b): threshold sweep; one series per user count.
		fig := Figure{ID: thrIDs[name],
			Title:  "Aggregator accuracy vs threshold (" + name + ")",
			XLabel: "threshold (fraction of users)", YLabel: "aggregator accuracy"}
		for _, users := range opts.Users {
			s := Series{Name: fmt.Sprintf("%d users", users)}
			for _, thr := range Fig5Thresholds() {
				cfg := opts.baseConfig(spec, users, dataset.DivisionEven)
				cfg.ThresholdFrac = thr
				res, err := runAveraged(cfg, opts.Reps)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig5 %s users=%d thr=%g: %w", name, users, thr, err)
				}
				s.X = append(s.X, thr)
				s.Y = append(s.Y, res.StudentAccuracy)
			}
			fig.Series = append(fig.Series, s)
		}
		figures = append(figures, fig)

		// (c)(d): uneven distributions; one series per division.
		ufig := Figure{ID: unevenIDs[name],
			Title:  "Aggregator accuracy, uneven distribution (" + name + ")",
			XLabel: "users", YLabel: "aggregator accuracy"}
		for _, div := range unevenDivisions() {
			s := Series{Name: div.String()}
			for _, users := range opts.Users {
				cfg := opts.baseConfig(spec, users, div)
				res, err := runAveraged(cfg, opts.Reps)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig5 uneven %s %v users=%d: %w", name, div, users, err)
				}
				s.X = append(s.X, float64(users))
				s.Y = append(s.Y, res.StudentAccuracy)
			}
			ufig.Series = append(ufig.Series, s)
		}
		figures = append(figures, ufig)
	}
	return figures, nil
}

// Fig6 reproduces Fig. 6 (CelebA-like): label and aggregator accuracy under
// even and uneven distributions.
func Fig6(opts Options) ([]Figure, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	spec := dataset.CelebAAttrSpec()
	run := func(users int, div dataset.Division) (*pate.AttrResult, error) {
		cfg := pate.AttrPipelineConfig{
			Spec:          spec,
			Scale:         opts.Scale,
			Users:         users,
			Division:      div,
			Queries:       opts.Queries,
			UseConsensus:  true,
			ThresholdFrac: 0.6,
			Sigma1:        4,
			Sigma2:        4,
			Train:         opts.Train,
			Seed:          opts.Seed,
		}
		return pate.RunAttrPipeline(cfg)
	}

	labelEven := Figure{ID: "fig6a", Title: "Label accuracy, even (CelebA)",
		XLabel: "users", YLabel: "label accuracy"}
	aggEven := Figure{ID: "fig6b", Title: "Aggregator accuracy, even (CelebA)",
		XLabel: "users", YLabel: "aggregator accuracy"}
	evenLabel := Series{Name: "even"}
	evenAgg := Series{Name: "even"}
	for _, users := range opts.Users {
		res, err := run(users, dataset.DivisionEven)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6 even users=%d: %w", users, err)
		}
		evenLabel.X = append(evenLabel.X, float64(users))
		evenLabel.Y = append(evenLabel.Y, res.LabelAccuracy)
		evenAgg.X = append(evenAgg.X, float64(users))
		evenAgg.Y = append(evenAgg.Y, res.StudentAccuracy)
	}
	labelEven.Series = append(labelEven.Series, evenLabel)
	aggEven.Series = append(aggEven.Series, evenAgg)

	labelUneven := Figure{ID: "fig6c", Title: "Label accuracy, uneven (CelebA)",
		XLabel: "users", YLabel: "label accuracy"}
	aggUneven := Figure{ID: "fig6d", Title: "Aggregator accuracy, uneven (CelebA)",
		XLabel: "users", YLabel: "aggregator accuracy"}
	for _, div := range unevenDivisions() {
		ls := Series{Name: div.String()}
		as := Series{Name: div.String()}
		for _, users := range opts.Users {
			res, err := run(users, div)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig6 %v users=%d: %w", div, users, err)
			}
			ls.X = append(ls.X, float64(users))
			ls.Y = append(ls.Y, res.LabelAccuracy)
			as.X = append(as.X, float64(users))
			as.Y = append(as.Y, res.StudentAccuracy)
		}
		labelUneven.Series = append(labelUneven.Series, ls)
		aggUneven.Series = append(aggUneven.Series, as)
	}
	return []Figure{labelEven, aggEven, labelUneven, aggUneven}, nil
}
