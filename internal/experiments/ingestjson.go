package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// IngestJSON is the machine-readable ingestion benchmark record written as
// BENCH_ingest.json by cmd/loadgen. The schema field versions the layout;
// scripts/ingest_guard.sh compares records only when every shape key below
// matches, so changing the workload shape never trips the regression guard.
type IngestJSON struct {
	Schema      string `json:"schema"`
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`

	// Shape keys: two records are comparable only when all of these match.
	Mode         string `json:"mode"` // "tree" or "direct"
	Users        int    `json:"users"`
	Relays       int    `json:"relays"`
	Levels       int    `json:"levels"`
	Batch        int    `json:"batch"`
	Workers      int    `json:"workers"`
	Arrival      string `json:"arrival"`
	PaillierBits int    `json:"paillier_bits"`
	Classes      int    `json:"classes"`
	Instances    int    `json:"instances"`
	Seed         int64  `json:"seed"`
	// Packing (schema v2) reports whether the measured run used
	// slot-packed submissions; packed and unpacked runs move very
	// different byte volumes, so it is a shape key.
	Packing bool `json:"packing"`

	// ElapsedNs is the wall time from the first frame sent to the last
	// upload confirmed.
	ElapsedNs int64 `json:"elapsed_ns"`
	// ThroughputUsersPerSec is Users / Elapsed — the harness's primary
	// number, watched by the regression guard.
	ThroughputUsersPerSec float64 `json:"throughput_users_per_sec"`
	// Ack percentiles are per-user confirmation latencies: from the first
	// frame sent to both servers' halves durably acked.
	AckP50Ns int64 `json:"ack_p50_ns"`
	AckP95Ns int64 `json:"ack_p95_ns"`
	AckP99Ns int64 `json:"ack_p99_ns"`
	// Quorum waits are each sink's time from listening to the collector's
	// release — what a real query would have paid before protocol start.
	QuorumWaitS1Ns int64 `json:"quorum_wait_s1_ns"`
	QuorumWaitS2Ns int64 `json:"quorum_wait_s2_ns"`
	// Rehomes counts uploader endpoint failovers during the measured run
	// (expected 0 — the harness kills nothing).
	Rehomes int `json:"rehomes"`

	// BytesPerUser (schema v2) is the wire size of one user's upload for
	// one query instance (both submission halves) in the measured run's
	// packing mode.
	BytesPerUser int64 `json:"bytes_per_user"`

	// Parity: whether the relay tree and direct ingestion produced identical
	// consensus outcomes on a small full-protocol run.
	ParityChecked bool `json:"parity_checked"`
	ParityOK      bool `json:"parity_ok"`
	ParityUsers   int  `json:"parity_users"`

	// Packed comparison (schema v2): the same workload re-measured with
	// slot packing on, appended when the harness runs the compare arm so
	// one record carries the before/after numbers.
	PackedThroughputUsersPerSec float64 `json:"packed_throughput_users_per_sec,omitempty"`
	PackedAckP99Ns              int64   `json:"packed_ack_p99_ns,omitempty"`
	PackedBytesPerUser          int64   `json:"packed_bytes_per_user,omitempty"`

	// Serve-mode fields (-serve-rate): an open-loop admission benchmark
	// against a continuous-operation server pair. Mode is "serve" for
	// these records, so the shape-key comparison never mixes them with
	// ingestion runs. Admission percentiles are client-observed: first
	// admission dial to the grant, including redials.
	ServeQueries       int     `json:"serve_queries,omitempty"`
	ServeRateQPS       float64 `json:"serve_rate_qps,omitempty"`
	ServeAdmitted      int     `json:"serve_admitted,omitempty"`
	ServeRefused       int     `json:"serve_refused,omitempty"`
	ServeDrained       int     `json:"serve_drained,omitempty"`
	ServeFailed        int     `json:"serve_failed,omitempty"`
	ServeRotations     int     `json:"serve_rotations,omitempty"`
	ServeElapsedNs     int64   `json:"serve_elapsed_ns,omitempty"`
	ServeThroughputQPS float64 `json:"serve_throughput_qps,omitempty"`
	ServeAdmitP50Ns    int64   `json:"serve_admit_p50_ns,omitempty"`
	ServeAdmitP95Ns    int64   `json:"serve_admit_p95_ns,omitempty"`
	ServeAdmitP99Ns    int64   `json:"serve_admit_p99_ns,omitempty"`

	// Large-run fields (flat, so the guard's line extraction stays trivial):
	// a second measurement at -large scale, appended when requested.
	LargeUsers                 int     `json:"large_users,omitempty"`
	LargeElapsedNs             int64   `json:"large_elapsed_ns,omitempty"`
	LargeThroughputUsersPerSec float64 `json:"large_throughput_users_per_sec,omitempty"`
	LargeAckP99Ns              int64   `json:"large_ack_p99_ns,omitempty"`
	LargeQuorumWaitS1Ns        int64   `json:"large_quorum_wait_s1_ns,omitempty"`
}

// WriteIngestJSON stamps the environment fields and writes the record to
// path, indented for diffing.
func WriteIngestJSON(path string, rec IngestJSON) error {
	rec.Schema = "privconsensus/ingest-bench/v2"
	rec.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rec.GoVersion = runtime.Version()
	rec.GOOS = runtime.GOOS
	rec.GOARCH = runtime.GOARCH
	rec.NumCPU = runtime.NumCPU()
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: marshal ingest json: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
