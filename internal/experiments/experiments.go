// Package experiments regenerates every table and figure of the paper's
// evaluation section (§VI). Each experiment returns structured rows/series
// that cmd/experiments renders; bench_test.go wraps them as benchmarks.
//
// Experiment ids: table1, table2, table3, fig2, fig3, fig4, fig5, fig6
// (see DESIGN.md's experiment index).
package experiments

import (
	"fmt"

	"github.com/privconsensus/privconsensus/internal/dataset"
	"github.com/privconsensus/privconsensus/internal/ml"
	"github.com/privconsensus/privconsensus/internal/pate"
)

// Options are shared knobs for the accuracy experiments. The defaults run
// in seconds on a laptop; Full() approaches the paper's sample sizes.
type Options struct {
	// Scale multiplies dataset sample counts (1.0 = paper-sized).
	Scale float64
	// Queries is the aggregator's unlabeled pool size (paper: 9000).
	Queries int
	// Users lists the teacher counts to sweep (paper: 10..100).
	Users []int
	// Reps averages each cell over this many seeded repetitions.
	Reps int
	// Seed is the base RNG seed.
	Seed int64
	// Train configures teacher/student SGD.
	Train ml.TrainConfig
}

// DefaultOptions returns the quick profile used by tests and CI.
func DefaultOptions() Options {
	return Options{
		Scale:   0.02,
		Queries: 300,
		Users:   []int{10, 25, 50},
		Reps:    1,
		Seed:    1,
		Train:   ml.TrainConfig{Epochs: 15, LearnRate: 0.3, L2: 1e-4, BatchSize: 16},
	}
}

// FullOptions approximates the paper's scale (9000-query pool, five user
// counts). Expect minutes of runtime.
func FullOptions() Options {
	return Options{
		Scale:   0.3,
		Queries: 3000,
		Users:   []int{10, 25, 50, 75, 100},
		Reps:    1,
		Seed:    1,
		Train:   ml.DefaultTrainConfig(),
	}
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.Scale <= 0 || o.Scale > 1 {
		return fmt.Errorf("experiments: scale %g outside (0, 1]", o.Scale)
	}
	if o.Queries < 1 || o.Reps < 1 || len(o.Users) == 0 {
		return fmt.Errorf("experiments: invalid options %+v", o)
	}
	return o.Train.Validate()
}

// PrivacyLevel names one (sigma1, sigma2) noise setting. Larger sigmas mean
// more noise and a lower (stronger) epsilon.
type PrivacyLevel struct {
	Name   string
	Sigma1 float64
	Sigma2 float64
}

// PrivacyLevels returns the three noise settings swept in Figs. 3-4,
// ordered from least to most private.
func PrivacyLevels() []PrivacyLevel {
	return []PrivacyLevel{
		{Name: "low-noise", Sigma1: 2, Sigma2: 2},
		{Name: "mid-noise", Sigma1: 4, Sigma2: 4},
		{Name: "high-noise", Sigma1: 8, Sigma2: 8},
	}
}

// Series is one line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a reproduced paper figure: a set of series over a common axis.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// runAveraged runs the multiclass pipeline Reps times with distinct seeds
// and averages the results.
func runAveraged(cfg pate.PipelineConfig, reps int) (*pate.Result, error) {
	if reps < 1 {
		reps = 1
	}
	avg := &pate.Result{}
	for r := 0; r < reps; r++ {
		c := cfg
		c.Seed = cfg.Seed + int64(r)*7919
		res, err := pate.RunPipeline(c)
		if err != nil {
			return nil, err
		}
		avg.UserAccMean += res.UserAccMean / float64(reps)
		avg.MajorityAcc += res.MajorityAcc / float64(reps)
		avg.MinorityAcc += res.MinorityAcc / float64(reps)
		avg.LabelAccuracy += res.LabelAccuracy / float64(reps)
		avg.Retention += res.Retention / float64(reps)
		avg.StudentAccuracy += res.StudentAccuracy / float64(reps)
		avg.Epsilon += res.Epsilon / float64(reps)
		avg.Retained += res.Retained / reps
	}
	return avg, nil
}

// baseConfig assembles a pipeline config from the shared options.
func (o Options) baseConfig(spec dataset.Spec, users int, div dataset.Division) pate.PipelineConfig {
	return pate.PipelineConfig{
		Spec:          spec,
		Scale:         o.Scale,
		Users:         users,
		Division:      div,
		VoteType:      pate.OneHot,
		Queries:       o.Queries,
		UseConsensus:  true,
		ThresholdFrac: 0.6,
		Sigma1:        4,
		Sigma2:        4,
		Train:         o.Train,
		Seed:          o.Seed,
	}
}

// specByName resolves the paper's dataset names.
func specByName(name string) (dataset.Spec, error) {
	switch name {
	case "mnist":
		return dataset.MNISTLike(), nil
	case "svhn":
		return dataset.SVHNLike(), nil
	default:
		return dataset.Spec{}, fmt.Errorf("experiments: unknown dataset %q", name)
	}
}
