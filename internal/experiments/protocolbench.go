package experiments

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"time"

	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// ProtocolBenchConfig drives the Table I / Table II reproduction: run the
// full cryptographic protocol (Alg. 5) end to end for a number of query
// instances and record per-step time and traffic.
type ProtocolBenchConfig struct {
	Instances int
	Users     int
	Classes   int
	Seed      int64
	// ForceConsensus biases the votes so the threshold check passes and
	// every step (6)-(9) executes, as in the paper's measurements.
	ForceConsensus bool
	// UseDGKPool enables S2's pre-generated DGK nonce pool.
	UseDGKPool bool
	// Parallelism is forwarded to protocol.Config.Parallelism: 0 uses
	// runtime.NumCPU, 1 reproduces the original sequential single-stream
	// protocol, anything else multiplexes the transport and runs the DGK
	// comparison phases concurrently.
	Parallelism int
	// ArgmaxStrategy is forwarded to protocol.Config.ArgmaxStrategy:
	// empty or "tournament" runs the batched bracket, "allpairs" the
	// original all-pairs comparison schedule.
	ArgmaxStrategy string
	// Packing is forwarded to protocol.Config.Packing: true encodes each
	// submission sequence into slot-packed Paillier plaintexts. The key
	// must leave room for the packed slot width (see PaillierBits).
	Packing bool
	// PaillierBits overrides the protocol's Paillier modulus size (0 keeps
	// the 64-bit prototype default). Packed runs need larger keys: the
	// slot width derived from the worst-case sums does not fit a 64-bit
	// modulus at the default statistical parameter.
	PaillierBits int
}

// ResolvedArgmaxStrategy names the strategy the run actually uses.
func (c ProtocolBenchConfig) ResolvedArgmaxStrategy() string {
	if c.ArgmaxStrategy == "" {
		return protocol.StrategyTournament
	}
	return c.ArgmaxStrategy
}

// DefaultProtocolBenchConfig mirrors the paper's measurement workload shape
// (10 classes) at a small instance count.
func DefaultProtocolBenchConfig() ProtocolBenchConfig {
	return ProtocolBenchConfig{Instances: 5, Users: 10, Classes: 10, Seed: 1, ForceConsensus: true}
}

// StepRow is one row of Tables I and II.
type StepRow struct {
	Step string
	// AvgTime is the mean per-instance wall time of the step, summed over
	// both servers (Table I).
	AvgTime time.Duration
	// AvgBytesPerParty is the mean per-instance bytes a party sends in
	// this step (Table II's "message size per party").
	AvgBytesPerParty int64
	// Msgs is the mean per-instance message count.
	Msgs float64
}

// ProtocolBenchResult aggregates a protocol benchmark run.
type ProtocolBenchResult struct {
	Config ProtocolBenchConfig
	// Steps holds the server-to-server protocol steps in Alg. 5 order.
	Steps []StepRow
	// UserToServerBytes is the per-user upload for the first secure sum
	// (votes + threshold shares, step 2).
	UserToServerBytes int64
	// UserToServerBytes2 is the per-user upload for the second secure
	// sum (noisy shares, step 6).
	UserToServerBytes2 int64
	// Overall is the mean total per-instance runtime.
	Overall time.Duration
	// Consensus counts instances that passed the threshold.
	Consensus int
}

// stepOrder lists the server-to-server steps in Alg. 5 order.
func stepOrder() []string {
	return []string{
		protocol.StepBlindPerm1,
		protocol.StepCompare1,
		protocol.StepThreshold,
		protocol.StepBlindPerm2,
		protocol.StepCompare2,
		protocol.StepRestoration,
	}
}

// ProtocolBench runs the full crypto protocol cfg.Instances times over an
// in-memory transport and aggregates per-step metrics.
func ProtocolBench(cfg ProtocolBenchConfig) (*ProtocolBenchResult, error) {
	if cfg.Instances < 1 || cfg.Users < 1 || cfg.Classes < 2 {
		return nil, fmt.Errorf("experiments: invalid protocol bench config %+v", cfg)
	}
	pcfg := protocol.DefaultConfig(cfg.Users)
	pcfg.Classes = cfg.Classes
	pcfg.UseDGKPool = cfg.UseDGKPool
	pcfg.Parallelism = cfg.Parallelism
	pcfg.ArgmaxStrategy = cfg.ArgmaxStrategy
	pcfg.Packing = cfg.Packing
	if cfg.PaillierBits > 0 {
		pcfg.PaillierBits = cfg.PaillierBits
	}
	if err := pcfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	keys, err := protocol.GenerateKeys(rng, pcfg)
	if err != nil {
		return nil, err
	}

	meter := transport.NewMeter()
	res := &ProtocolBenchResult{Config: cfg}
	var overall time.Duration

	for inst := 0; inst < cfg.Instances; inst++ {
		subs, userBytes1, userBytes2, err := buildInstance(rng, pcfg, cfg, keys, inst)
		if err != nil {
			return nil, err
		}
		res.UserToServerBytes += userBytes1 / int64(cfg.Instances*cfg.Users)
		res.UserToServerBytes2 += userBytes2 / int64(cfg.Instances*cfg.Users)

		start := time.Now()
		out, err := runCryptoInstance(pcfg, keys, subs, meter, cfg.Seed+int64(inst))
		if err != nil {
			return nil, fmt.Errorf("experiments: instance %d: %w", inst, err)
		}
		overall += time.Since(start)
		if out.Consensus {
			res.Consensus++
		}
	}

	res.Overall = overall / time.Duration(cfg.Instances)
	for _, step := range stepOrder() {
		s, ok := meter.Step(step)
		if !ok {
			res.Steps = append(res.Steps, StepRow{Step: step})
			continue
		}
		// Steps (6)-(9) execute only on instances that reached
		// consensus; normalize them by that count so the per-instance
		// figures match the paper's always-consensus workload.
		denom := cfg.Instances
		switch step {
		case protocol.StepBlindPerm2, protocol.StepCompare2, protocol.StepRestoration:
			if res.Consensus > 0 {
				denom = res.Consensus
			}
		}
		res.Steps = append(res.Steps, StepRow{
			Step:             step,
			AvgTime:          s.Elapsed / time.Duration(denom),
			AvgBytesPerParty: s.BytesSent / int64(2*denom),
			Msgs:             float64(s.MsgsSent) / float64(denom),
		})
	}
	return res, nil
}

// buildInstance creates all users' submissions for one query instance.
func buildInstance(rng *rand.Rand, pcfg protocol.Config, cfg ProtocolBenchConfig,
	keys *protocol.Keys, inst int) ([]*protocol.Submission, int64, int64, error) {
	subs := make([]*protocol.Submission, cfg.Users)
	var bytes1, bytes2 int64
	majority := rng.Intn(cfg.Classes)
	for u := 0; u < cfg.Users; u++ {
		label := majority
		if !cfg.ForceConsensus {
			label = rng.Intn(cfg.Classes)
		}
		votes := make([]*big.Int, cfg.Classes)
		for i := range votes {
			votes[i] = big.NewInt(0)
		}
		votes[label] = big.NewInt(protocol.VoteScale)
		noise := rand.New(rand.NewSource(cfg.Seed + int64(inst*1000+u)))
		sub, _, err := protocol.BuildSubmission(rng, noise, pcfg, u, votes,
			keys.S1Paillier.Public(), keys.S2Paillier.Public())
		if err != nil {
			return nil, 0, 0, err
		}
		subs[u] = sub
		bytes1 += int64(halfBytes(sub.ToS1.Votes) + halfBytes(sub.ToS1.Thresh))
		bytes2 += int64(halfBytes(sub.ToS1.Noisy))
	}
	return subs, bytes1, bytes2, nil
}

// PackedSizes is one user's per-instance upload cost measured in both
// packing modes at the same workload shape: the wire bytes of both
// submission halves and the number of Paillier encryptions the user
// performs (Votes + Thresh + Noisy, both halves).
type PackedSizes struct {
	PaillierBits        int
	UnpackedBytes       int64
	PackedBytes         int64
	UnpackedEncryptions int
	PackedEncryptions   int
}

// MeasurePackedSizes builds one submission with packing off and one with
// packing on and reports their sizes. bits must leave room for the packed
// slot width — 1024 fits the paper's kappa=40 at C=10 — which the 64-bit
// prototype default does not.
func MeasurePackedSizes(users, classes, bits int, seed int64) (*PackedSizes, error) {
	base := protocol.DefaultConfig(users)
	base.Classes = classes
	base.PaillierBits = bits
	if err := base.Validate(); err != nil {
		return nil, err
	}
	keys, err := protocol.GenerateKeys(rand.New(rand.NewSource(seed)), base)
	if err != nil {
		return nil, err
	}
	votes := make([]*big.Int, classes)
	for i := range votes {
		votes[i] = big.NewInt(0)
	}
	votes[0] = big.NewInt(protocol.VoteScale)

	out := &PackedSizes{PaillierBits: bits}
	for _, packed := range []bool{false, true} {
		pcfg := base
		pcfg.Packing = packed
		if err := pcfg.Validate(); err != nil {
			return nil, err
		}
		sub, _, err := protocol.BuildSubmission(rand.New(rand.NewSource(seed+1)),
			rand.New(rand.NewSource(seed+2)), pcfg, 0, votes,
			keys.S1Paillier.Public(), keys.S2Paillier.Public())
		if err != nil {
			return nil, err
		}
		bytes := int64(protocol.SubmissionBytes(sub.ToS1) + protocol.SubmissionBytes(sub.ToS2))
		encs := len(sub.ToS1.Votes) + len(sub.ToS1.Thresh) + len(sub.ToS1.Noisy) +
			len(sub.ToS2.Votes) + len(sub.ToS2.Thresh) + len(sub.ToS2.Noisy)
		if packed {
			out.PackedBytes, out.PackedEncryptions = bytes, encs
		} else {
			out.UnpackedBytes, out.UnpackedEncryptions = bytes, encs
		}
	}
	return out, nil
}

// halfBytes sums the wire size of a ciphertext vector.
func halfBytes(cs []*paillier.Ciphertext) int {
	n := 0
	for _, c := range cs {
		n += 5 + len(c.Bytes())
	}
	return n
}

// runCryptoInstance executes one Alg. 5 run over an in-memory pair.
func runCryptoInstance(pcfg protocol.Config, keys *protocol.Keys,
	subs []*protocol.Submission, meter *transport.Meter, seed int64) (*protocol.Outcome, error) {
	connA, connB := transport.Pair()
	var c1, c2 transport.Conn = connA, connB
	if pcfg.Parallelism == 1 {
		// Sequential mode meters at the wire; with multiplexing the
		// protocol meters each stream itself at consume time, so the conns
		// stay raw to avoid double counting.
		c1 = transport.Metered(connA, meter, protocol.StepSecureSum1)
		c2 = transport.Metered(connB, nil, protocol.StepSecureSum1)
	}
	defer c1.Close()
	defer c2.Close()

	s1Subs := make([]protocol.SubmissionHalf, len(subs))
	s2Subs := make([]protocol.SubmissionHalf, len(subs))
	for i, s := range subs {
		s1Subs[i] = s.ToS1
		s2Subs[i] = s.ToS2
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	type result struct {
		out *protocol.Outcome
		err error
	}
	ch := make(chan result, 1)
	go func() {
		out, err := protocol.RunS1(ctx, rand.New(rand.NewSource(seed)), pcfg, keys.ForS1(), c1, s1Subs, meter)
		ch <- result{out, err}
	}()
	out2, err := protocol.RunS2(ctx, rand.New(rand.NewSource(seed+1)), pcfg, keys.ForS2(), c2, s2Subs, nil)
	if err != nil {
		return nil, err
	}
	r1 := <-ch
	if r1.err != nil {
		return nil, r1.err
	}
	if r1.out.Consensus != out2.Consensus || r1.out.Label != out2.Label {
		return nil, fmt.Errorf("experiments: servers disagree: %+v vs %+v", r1.out, out2)
	}
	return r1.out, nil
}
