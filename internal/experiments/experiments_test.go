package experiments

import (
	"testing"

	"github.com/privconsensus/privconsensus/internal/ml"
	"github.com/privconsensus/privconsensus/internal/protocol"
)

// tinyOptions keeps the accuracy experiments fast in unit tests.
func tinyOptions() Options {
	return Options{
		Scale:   0.008,
		Queries: 60,
		Users:   []int{5, 10},
		Reps:    1,
		Seed:    3,
		Train:   ml.TrainConfig{Epochs: 8, LearnRate: 0.3, L2: 1e-4, BatchSize: 16},
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
	if err := FullOptions().Validate(); err != nil {
		t.Errorf("full options invalid: %v", err)
	}
	bad := DefaultOptions()
	bad.Scale = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero scale")
	}
	bad = DefaultOptions()
	bad.Users = nil
	if err := bad.Validate(); err == nil {
		t.Error("expected error for no user counts")
	}
}

func TestPrivacyLevelsOrdered(t *testing.T) {
	levels := PrivacyLevels()
	if len(levels) < 2 {
		t.Fatal("need multiple privacy levels")
	}
	for i := 1; i < len(levels); i++ {
		if levels[i].Sigma1 <= levels[i-1].Sigma1 {
			t.Error("privacy levels should increase in noise")
		}
	}
}

func TestSpecByName(t *testing.T) {
	if _, err := specByName("mnist"); err != nil {
		t.Error(err)
	}
	if _, err := specByName("bogus"); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestProtocolBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("crypto protocol bench is slow in -short mode")
	}
	cfg := ProtocolBenchConfig{Instances: 1, Users: 4, Classes: 4, Seed: 5, ForceConsensus: true}
	res, err := ProtocolBench(cfg)
	if err != nil {
		t.Fatalf("ProtocolBench: %v", err)
	}
	if len(res.Steps) != 6 {
		t.Fatalf("expected 6 step rows, got %d", len(res.Steps))
	}
	if res.UserToServerBytes <= 0 || res.UserToServerBytes2 <= 0 {
		t.Errorf("user-to-server bytes not recorded: %+v", res)
	}
	if res.Overall <= 0 {
		t.Error("overall time not recorded")
	}
	// Table II shape: comparison traffic exceeds blind-and-permute and
	// restoration traffic.
	byStep := map[string]StepRow{}
	for _, s := range res.Steps {
		byStep[s.Step] = s
	}
	cmp := byStep[protocol.StepCompare1].AvgBytesPerParty
	bp := byStep[protocol.StepBlindPerm1].AvgBytesPerParty
	restore := byStep[protocol.StepRestoration].AvgBytesPerParty
	if res.Consensus > 0 {
		if cmp <= bp {
			t.Errorf("comparison bytes %d should exceed blind-and-permute bytes %d", cmp, bp)
		}
		if cmp <= restore {
			t.Errorf("comparison bytes %d should exceed restoration bytes %d", cmp, restore)
		}
	}
	if _, err := ProtocolBench(ProtocolBenchConfig{}); err == nil {
		t.Error("expected error for zero config")
	}
}

func TestTable3Shape(t *testing.T) {
	cells, err := Table3(tinyOptions())
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	// 2 user counts x 3 divisions.
	if len(cells) != 6 {
		t.Fatalf("expected 6 cells, got %d", len(cells))
	}
	for _, c := range cells {
		if c.Retention < 0 || c.Retention > 1 {
			t.Errorf("cell %+v: retention out of range", c)
		}
		if c.LabelAcc < 0 || c.LabelAcc > 1 {
			t.Errorf("cell %+v: label accuracy out of range", c)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	figs, err := Fig2(tinyOptions())
	if err != nil {
		t.Fatalf("Fig2: %v", err)
	}
	if len(figs) != 4 {
		t.Fatalf("expected 4 subfigures, got %d", len(figs))
	}
	if figs[0].ID != "fig2a" || len(figs[0].Series) != 2 {
		t.Errorf("fig2a malformed: %+v", figs[0])
	}
	// Uneven figures carry majority/minority series per dataset.
	if len(figs[1].Series) != 4 {
		t.Errorf("fig2b expected 4 series, got %d", len(figs[1].Series))
	}
	for _, f := range figs {
		for _, s := range f.Series {
			if len(s.X) != len(s.Y) || len(s.X) == 0 {
				t.Errorf("%s series %s malformed", f.ID, s.Name)
			}
		}
	}
}

func TestFig3Shape(t *testing.T) {
	opts := tinyOptions()
	opts.Users = []int{6}
	figs, err := Fig3(opts)
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	if len(figs) != 4 {
		t.Fatalf("expected 4 subfigures, got %d", len(figs))
	}
	// 3 privacy levels x 2 methods.
	if len(figs[0].Series) != 6 {
		t.Errorf("expected 6 series, got %d", len(figs[0].Series))
	}
}

func TestFig4Shape(t *testing.T) {
	opts := tinyOptions()
	opts.Users = []int{6}
	figs, err := Fig4(opts)
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	if len(figs) != 4 {
		t.Fatalf("expected 4 subfigures, got %d", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != len(PrivacyLevels()) {
			t.Errorf("%s: expected %d series, got %d", f.ID, len(PrivacyLevels()), len(f.Series))
		}
	}
}

func TestFig5Shape(t *testing.T) {
	opts := tinyOptions()
	opts.Users = []int{6}
	figs, err := Fig5(opts)
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	if len(figs) != 4 {
		t.Fatalf("expected 4 subfigures, got %d", len(figs))
	}
	// Threshold sweeps span the configured thresholds.
	if got := len(figs[0].Series[0].X); got != len(Fig5Thresholds()) {
		t.Errorf("threshold sweep has %d points", got)
	}
}

func TestFig3EpsilonMatched(t *testing.T) {
	opts := tinyOptions()
	opts.Users = []int{8}
	cells, err := Fig3EpsilonMatched(opts)
	if err != nil {
		t.Fatalf("Fig3EpsilonMatched: %v", err)
	}
	if len(cells) != len(PrivacyLevels()) {
		t.Fatalf("expected %d cells, got %d", len(PrivacyLevels()), len(cells))
	}
	for _, c := range cells {
		if c.Epsilon <= 0 || c.BaselineSigma <= 0 {
			t.Errorf("cell %+v: epsilon/sigma not computed", c)
		}
		// The matched baseline uses *less* noise than the consensus RNM
		// (it skips the SVT spend), so its sigma must be smaller than
		// sigma2... relative to the per-query budget. Sanity: positive
		// accuracies.
		if c.ConsensusLabelAcc <= 0 || c.BaselineLabelAcc <= 0 {
			t.Errorf("cell %+v: label accuracies missing", c)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	opts := tinyOptions()
	opts.Users = []int{5}
	opts.Queries = 20
	opts.Scale = 0.003
	figs, err := Fig6(opts)
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if len(figs) != 4 {
		t.Fatalf("expected 4 subfigures, got %d", len(figs))
	}
	if len(figs[2].Series) != 3 {
		t.Errorf("fig6c expected 3 division series, got %d", len(figs[2].Series))
	}
}
