package transport

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Meter accumulates per-step traffic statistics: bytes and message counts in
// each direction plus wall-clock time attributed to each step. It drives the
// reproduction of Tables I (per-step running time) and II (per-step message
// size). Meter is safe for concurrent use. Traffic is also fed into the
// process-wide obs registry (see metrics.go).
type Meter struct {
	mu    sync.Mutex
	steps map[string]*StepStats
	obs   map[string]*stepCounters
}

// StepStats aggregates traffic and timing for one protocol step.
type StepStats struct {
	Step          string
	BytesSent     int64
	BytesReceived int64
	MsgsSent      int64
	MsgsReceived  int64
	// Rounds counts completed send-then-receive volleys: a receive that
	// follows at least one send closes a round. Under concurrent mux
	// streams sharing a step label this is an approximation of the
	// lock-step round count.
	Rounds  int64
	Elapsed time.Duration

	lastWasSend bool
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{steps: make(map[string]*StepStats)}
}

// get returns the stats bucket for step, creating it if needed.
// Callers must hold mu.
func (m *Meter) get(step string) *StepStats {
	s, ok := m.steps[step]
	if !ok {
		s = &StepStats{Step: step}
		m.steps[step] = s
	}
	return s
}

// RecordSend attributes a sent message of size bytes to step.
func (m *Meter) RecordSend(step string, bytes int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.get(step)
	s.BytesSent += int64(bytes)
	s.MsgsSent++
	s.lastWasSend = true
	c := m.countersFor(step)
	c.bytesSent.Add(int64(bytes))
	c.msgsSent.Inc()
}

// RecordRecv attributes a received message of size bytes to step.
func (m *Meter) RecordRecv(step string, bytes int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.get(step)
	s.BytesReceived += int64(bytes)
	s.MsgsReceived++
	c := m.countersFor(step)
	c.bytesReceived.Add(int64(bytes))
	c.msgsReceived.Inc()
	if s.lastWasSend {
		s.Rounds++
		s.lastWasSend = false
		c.rounds.Inc()
	}
}

// RecordElapsed adds wall time to step.
func (m *Meter) RecordElapsed(step string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.get(step).Elapsed += d
}

// Time runs fn and attributes its wall time to step, returning fn's error.
func (m *Meter) Time(step string, fn func() error) error {
	start := time.Now()
	err := fn()
	m.RecordElapsed(step, time.Since(start))
	return err
}

// Snapshot returns a copy of the per-step stats, sorted by step name.
func (m *Meter) Snapshot() []StepStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]StepStats, 0, len(m.steps))
	for _, s := range m.steps {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// Step returns a copy of a single step's stats and whether it exists.
func (m *Meter) Step(step string) (StepStats, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.steps[step]
	if !ok {
		return StepStats{}, false
	}
	return *s, true
}

// Totals sums every step's traffic into one StepStats with Step == "total".
func (m *Meter) Totals() StepStats {
	t := StepStats{Step: "total"}
	for _, s := range m.Snapshot() {
		t.BytesSent += s.BytesSent
		t.BytesReceived += s.BytesReceived
		t.MsgsSent += s.MsgsSent
		t.MsgsReceived += s.MsgsReceived
		t.Rounds += s.Rounds
		t.Elapsed += s.Elapsed
	}
	return t
}

// String renders one line per step, sorted by step name — deterministic
// across runs, so it is usable in golden tests and log output.
func (m *Meter) String() string {
	var b strings.Builder
	for i, s := range m.Snapshot() {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s: sent=%dB/%d recvd=%dB/%d rounds=%d elapsed=%v",
			s.Step, s.BytesSent, s.MsgsSent, s.BytesReceived, s.MsgsReceived,
			s.Rounds, s.Elapsed.Round(time.Microsecond))
	}
	return b.String()
}

// Reset clears all accumulated stats.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.steps = make(map[string]*StepStats)
}

// meteredConn wraps a Conn, attributing traffic to a step label that the
// protocol layer updates as it advances through Alg. 5's steps.
type meteredConn struct {
	inner Conn
	meter *Meter

	mu   sync.Mutex
	step string
}

// Metered wraps conn so all traffic is recorded in meter under a step label
// settable via SetStep. If meter is nil, conn is returned unwrapped.
func Metered(conn Conn, meter *Meter, step string) *MeteredConn {
	return &MeteredConn{meteredConn{inner: conn, meter: meter, step: step}}
}

// MeteredConn is a Conn that attributes traffic to protocol steps.
type MeteredConn struct {
	meteredConn
}

var _ Conn = (*MeteredConn)(nil)

// SetStep changes the step label applied to subsequent traffic.
func (c *MeteredConn) SetStep(step string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.step = step
}

// currentStep returns the active step label.
func (c *MeteredConn) currentStep() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.step
}

// Send transmits msg and records its encoded size.
func (c *MeteredConn) Send(ctx context.Context, msg *Message) error {
	if err := c.inner.Send(ctx, msg); err != nil {
		return err
	}
	if c.meter != nil {
		c.meter.RecordSend(c.currentStep(), EncodedSize(msg))
	}
	return nil
}

// Recv receives the next message and records its encoded size.
func (c *MeteredConn) Recv(ctx context.Context) (*Message, error) {
	msg, err := c.inner.Recv(ctx)
	if err != nil {
		return nil, err
	}
	if c.meter != nil {
		c.meter.RecordRecv(c.currentStep(), EncodedSize(msg))
	}
	return msg, nil
}

// Close closes the underlying connection.
func (c *MeteredConn) Close() error { return c.inner.Close() }
