package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
)

// Wire format (all integers big-endian):
//
//	frame   := kind(1) nflags(4) flags(8*nflags) nvalues(4) value*
//	value   := sign(1) len(4) bytes(len)
//
// The codec is deliberately self-describing and bounded: readers reject
// frames whose declared sizes exceed maxElems / maxValueBytes so a corrupt
// or malicious peer cannot trigger unbounded allocation.

const (
	maxElems      = 1 << 20 // max flags or values per message
	maxValueBytes = 1 << 24 // max bytes per big integer (16 MiB)
)

// EncodedSize returns the exact number of payload bytes WriteMessage will
// produce for msg, used by the byte-accounting layer.
func EncodedSize(msg *Message) int {
	size := 1 + 4 + 8*len(msg.Flags) + 4
	for _, v := range msg.Values {
		size += 1 + 4
		if v != nil {
			size += len(v.Bytes())
		}
	}
	return size
}

// WriteMessage encodes msg onto w.
func WriteMessage(w io.Writer, msg *Message) error {
	if msg == nil {
		return fmt.Errorf("transport: cannot encode nil message")
	}
	buf := make([]byte, 0, EncodedSize(msg))
	buf = append(buf, byte(msg.Kind))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(msg.Flags)))
	for _, f := range msg.Flags {
		buf = binary.BigEndian.AppendUint64(buf, uint64(f))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(msg.Values)))
	for i, v := range msg.Values {
		if v == nil {
			return fmt.Errorf("transport: nil value at index %d", i)
		}
		sign := byte(0)
		if v.Sign() < 0 {
			sign = 1
		}
		vb := v.Bytes()
		buf = append(buf, sign)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(vb)))
		buf = append(buf, vb...)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	return nil
}

// ReadMessage decodes one message from r.
func ReadMessage(r io.Reader) (*Message, error) {
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("transport: read header: %w", err)
	}
	msg := &Message{Kind: MessageKind(head[0])}
	nflags := binary.BigEndian.Uint32(head[1:5])
	if nflags > maxElems {
		return nil, fmt.Errorf("transport: flag count %d exceeds limit", nflags)
	}
	if nflags > 0 {
		fb := make([]byte, 8*nflags)
		if _, err := io.ReadFull(r, fb); err != nil {
			return nil, fmt.Errorf("transport: read flags: %w", err)
		}
		msg.Flags = make([]int64, nflags)
		for i := range msg.Flags {
			msg.Flags[i] = int64(binary.BigEndian.Uint64(fb[8*i:]))
		}
	}
	var nvBuf [4]byte
	if _, err := io.ReadFull(r, nvBuf[:]); err != nil {
		return nil, fmt.Errorf("transport: read value count: %w", err)
	}
	nvalues := binary.BigEndian.Uint32(nvBuf[:])
	if nvalues > maxElems {
		return nil, fmt.Errorf("transport: value count %d exceeds limit", nvalues)
	}
	if nvalues > 0 {
		msg.Values = make([]*big.Int, nvalues)
		for i := range msg.Values {
			var vh [5]byte
			if _, err := io.ReadFull(r, vh[:]); err != nil {
				return nil, fmt.Errorf("transport: read value %d header: %w", i, err)
			}
			vlen := binary.BigEndian.Uint32(vh[1:5])
			if vlen > maxValueBytes {
				return nil, fmt.Errorf("transport: value %d size %d exceeds limit", i, vlen)
			}
			vb := make([]byte, vlen)
			if _, err := io.ReadFull(r, vb); err != nil {
				return nil, fmt.Errorf("transport: read value %d: %w", i, err)
			}
			v := new(big.Int).SetBytes(vb)
			if vh[0] == 1 {
				v.Neg(v)
			} else if vh[0] != 0 {
				return nil, fmt.Errorf("transport: value %d has invalid sign byte %d", i, vh[0])
			}
			msg.Values[i] = v
		}
	}
	return msg, nil
}
