package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Stream multiplexing: a Mux carries many independent ordered message
// streams over one underlying Conn by wrapping every message in a KindMux
// frame that prefixes the stream ID and the inner kind to the flags:
//
//	mux frame := Kind=KindMux  Flags=[stream, inner-kind, inner-flags...]
//	             Values=inner-values
//
// Each stream is itself a Conn, so existing lock-step sub-protocol code
// runs unchanged on a virtual stream while other streams make progress
// concurrently over the same socket.
//
// Reception is demand-driven: there is no background reader goroutine.
// A stream that wants a message first checks its own inbound queue, then
// competes for the single "pump" token; the token holder reads one frame
// from the underlying Conn and routes it to its target stream. Nothing is
// read from the Conn while no stream is waiting, so a Mux never steals
// frames that a later (non-multiplexed) phase of a connection expects.

// streamBacklog bounds how many frames may queue on one virtual stream
// before its owner consumes them. Lock-step protocols keep at most one
// frame in flight per stream; the allowance covers phase-boundary skew.
const streamBacklog = 64

// WrapMux encapsulates msg into a mux frame addressed to stream.
func WrapMux(stream int64, msg *Message) (*Message, error) {
	if msg == nil {
		return nil, errors.New("transport: cannot wrap nil message")
	}
	if stream < 0 {
		return nil, fmt.Errorf("transport: negative stream id %d", stream)
	}
	if msg.Kind == 0 || msg.Kind == KindMux {
		return nil, fmt.Errorf("transport: cannot wrap %v message in a mux frame", msg.Kind)
	}
	flags := make([]int64, 0, 2+len(msg.Flags))
	flags = append(flags, stream, int64(msg.Kind))
	flags = append(flags, msg.Flags...)
	return &Message{Kind: KindMux, Flags: flags, Values: msg.Values}, nil
}

// UnwrapMux splits a mux frame into its stream ID and inner message.
func UnwrapMux(msg *Message) (int64, *Message, error) {
	if msg == nil || msg.Kind != KindMux {
		got := MessageKind(0)
		if msg != nil {
			got = msg.Kind
		}
		return 0, nil, fmt.Errorf("transport: expected mux frame, got %v", got)
	}
	if len(msg.Flags) < 2 {
		return 0, nil, fmt.Errorf("transport: mux frame with %d flags (need >= 2)", len(msg.Flags))
	}
	stream, kind := msg.Flags[0], msg.Flags[1]
	if stream < 0 {
		return 0, nil, fmt.Errorf("transport: negative stream id %d", stream)
	}
	if kind < 1 || kind > 255 || MessageKind(kind) == KindMux {
		return 0, nil, fmt.Errorf("transport: invalid inner kind %d in mux frame", kind)
	}
	inner := &Message{Kind: MessageKind(kind), Values: msg.Values}
	if len(msg.Flags) > 2 {
		inner.Flags = msg.Flags[2:]
	}
	return stream, inner, nil
}

// muxFrame is a routed inbound message plus its wire size, so traffic is
// metered under the consuming stream's step label even when the frame was
// pumped while another stream was active.
type muxFrame struct {
	msg  *Message
	wire int
}

// Mux multiplexes independent ordered streams over one Conn. The zero
// value is not usable; create one with NewMux. A Mux and its streams are
// safe for concurrent use by any number of goroutines.
type Mux struct {
	conn  Conn
	meter *Meter

	sendMu sync.Mutex    // serializes Send on the underlying conn
	pump   chan struct{} // capacity-1 token electing the receiving stream

	mu      sync.Mutex
	streams map[int64]*MuxStream
	err     error
	done    chan struct{}
}

// NewMux wraps conn. When meter is non-nil, per-stream traffic is recorded
// under each stream's step label (see MuxStream.SetStep); received bytes
// are attributed when the owning stream consumes the frame, not when it
// happens to be read off the wire, so interleaved steps stay accurate.
// When meter is nil and conn has a SetStep method (e.g. a MeteredConn),
// stream labels are forwarded to it instead. The Mux does not own conn:
// closing the Mux closes conn, but callers may also keep using conn after
// all streams are drained and the Mux is abandoned.
func NewMux(conn Conn, meter *Meter) *Mux {
	return &Mux{
		conn:    conn,
		meter:   meter,
		pump:    make(chan struct{}, 1),
		streams: make(map[int64]*MuxStream),
		done:    make(chan struct{}),
	}
}

// Stream returns the virtual Conn for the given stream ID, creating it on
// first use. Both endpoints must agree on IDs; the protocol layer derives
// them deterministically.
func (m *Mux) Stream(id int64) *MuxStream {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.streams[id]
	if !ok {
		s = &MuxStream{
			mux:    m,
			id:     id,
			in:     make(chan muxFrame, streamBacklog),
			closed: make(chan struct{}),
		}
		m.streams[id] = s
	}
	return s
}

// Close fails all streams and closes the underlying connection.
func (m *Mux) Close() error {
	m.fail(ErrClosed)
	return m.conn.Close()
}

// Err returns the sticky failure, or nil while the mux is healthy.
func (m *Mux) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// fail poisons the mux: every blocked and future stream operation returns
// err. The first failure wins.
func (m *Mux) fail(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err == nil {
		m.err = err
		close(m.done)
	}
}

// MuxStream is one ordered virtual connection of a Mux. It implements
// Conn; messages within a stream are delivered in send order.
type MuxStream struct {
	mux *Mux
	id  int64
	in  chan muxFrame

	closeOnce sync.Once
	closed    chan struct{}

	mu   sync.Mutex
	step string
}

var _ Conn = (*MuxStream)(nil)

// ID returns the stream identifier.
func (s *MuxStream) ID() int64 { return s.id }

// SetStep labels this stream's subsequent traffic for metering. Without a
// mux-level meter the label is forwarded to the underlying connection when
// it supports one.
func (s *MuxStream) SetStep(step string) {
	s.mu.Lock()
	s.step = step
	s.mu.Unlock()
	if s.mux.meter == nil {
		if ss, ok := s.mux.conn.(interface{ SetStep(string) }); ok {
			ss.SetStep(step)
		}
	}
}

// Step returns the stream's current metering label.
func (s *MuxStream) Step() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.step
}

// Send wraps msg with this stream's ID and transmits it. Concurrent sends
// from different streams are serialized on the underlying connection.
func (s *MuxStream) Send(ctx context.Context, msg *Message) error {
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	m := s.mux
	select {
	case <-m.done:
		return m.Err()
	default:
	}
	wrapped, err := WrapMux(s.id, msg)
	if err != nil {
		return err
	}
	m.sendMu.Lock()
	err = m.conn.Send(ctx, wrapped)
	m.sendMu.Unlock()
	if err != nil {
		return err
	}
	if m.meter != nil {
		m.meter.RecordSend(s.Step(), EncodedSize(wrapped))
	}
	return nil
}

// Recv returns the next message addressed to this stream. While waiting it
// may act as the mux's receiver, routing frames to other streams.
func (s *MuxStream) Recv(ctx context.Context) (*Message, error) {
	m := s.mux
	for {
		// Queued frames are delivered even after a failure, so a stream
		// never loses messages that already arrived in order.
		select {
		case fr := <-s.in:
			return s.consume(fr), nil
		default:
		}
		// Fail fast before competing for the pump token: a ready closed /
		// done case must win over pumping a dead connection.
		select {
		case <-s.closed:
			return nil, ErrClosed
		case <-m.done:
			return nil, m.Err()
		default:
		}
		select {
		case fr := <-s.in:
			return s.consume(fr), nil
		case <-s.closed:
			return nil, ErrClosed
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-m.done:
			return nil, m.Err()
		case m.pump <- struct{}{}:
			fr, err := s.pumpLocked(ctx)
			<-m.pump
			if err != nil {
				return nil, err
			}
			if fr != nil {
				return s.consume(*fr), nil
			}
		}
	}
}

// pumpLocked runs with the pump token held: it re-checks this stream's
// queue (a frame may have been routed between the select and acquiring the
// token), then reads one frame from the underlying connection and routes
// it. A frame for this stream is returned directly; context errors abort
// only this call, while transport and protocol errors poison the mux.
func (s *MuxStream) pumpLocked(ctx context.Context) (*muxFrame, error) {
	select {
	case fr := <-s.in:
		return &fr, nil
	default:
	}
	m := s.mux
	raw, err := m.conn.Recv(ctx)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		m.fail(err)
		return nil, err
	}
	id, inner, err := UnwrapMux(raw)
	if err != nil {
		m.fail(err)
		return nil, err
	}
	fr := muxFrame{msg: inner, wire: EncodedSize(raw)}
	if id == s.id {
		return &fr, nil
	}
	target := m.Stream(id)
	select {
	case target.in <- fr:
		muxBacklog.Observe(float64(len(target.in)))
		return nil, nil
	default:
		err := fmt.Errorf("transport: mux stream %d backlog exceeds %d frames", id, streamBacklog)
		m.fail(err)
		return nil, err
	}
}

// consume records the frame's wire size under this stream's label and
// hands back the inner message.
func (s *MuxStream) consume(fr muxFrame) *Message {
	if s.mux.meter != nil {
		s.mux.meter.RecordRecv(s.Step(), fr.wire)
	}
	return fr.msg
}

// Close marks the stream closed; the mux and its other streams are
// unaffected.
func (s *MuxStream) Close() error {
	s.closeOnce.Do(func() { close(s.closed) })
	return nil
}
