package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Fault injection and retry support for chaos testing and session
// resilience.
//
// A FaultInjector wraps raw net.Conns below the message framing layer and
// injects the failure modes a production deployment sees — connection
// resets, read/write stalls, partial writes, delayed frames — from a
// deterministic seeded schedule, so a chaos run is reproducible. The
// Dialer adds exponential backoff with jitter and per-attempt timeouts on
// top of plain Dial. IsRetryable classifies errors into retryable I/O
// failures vs fatal protocol mismatches for the retry loops in
// internal/deploy.

// ErrInjected marks an error produced by fault injection. Injected faults
// are always classified as retryable.
var ErrInjected = errors.New("transport: injected fault")

// Fault kinds, used as the metric label on faults_injected_total.
const (
	faultReset   = "reset"
	faultStall   = "stall"
	faultPartial = "partial"
	faultDelay   = "delay"
)

// FaultSpec configures a FaultInjector. All probabilities are per I/O
// operation and must lie in [0, 1]; at most one fault fires per operation.
type FaultSpec struct {
	// Seed makes the schedule deterministic. Connections are numbered in
	// accept/dial order and each direction of each connection draws from
	// its own sub-stream, so a fixed seed gives a reproducible schedule
	// regardless of goroutine interleaving across connections.
	Seed int64
	// Reset closes the connection mid-operation (probability per op).
	Reset float64
	// Stall sleeps StallFor (jittered) before the operation completes.
	Stall float64
	// Partial writes only a prefix of the buffer, then resets. Applies to
	// writes only.
	Partial float64
	// Delay sleeps DelayFor (jittered) before the operation — modelling a
	// slow or delayed frame rather than a hard stall.
	Delay float64
	// StallFor is the stall duration (default 200ms). Always bounded, so
	// injected stalls can never hang a run that has timeouts.
	StallFor time.Duration
	// DelayFor is the delay duration (default 20ms).
	DelayFor time.Duration
	// Max bounds the total number of injected faults (0 = unlimited), so
	// a seeded chaos schedule is guaranteed to quiesce.
	Max int
}

// Enabled reports whether the spec can inject anything.
func (s FaultSpec) Enabled() bool {
	return s.Reset > 0 || s.Stall > 0 || s.Partial > 0 || s.Delay > 0
}

// Validate checks probability ranges and durations.
func (s FaultSpec) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"reset", s.Reset}, {"stall", s.Stall}, {"partial", s.Partial}, {"delay", s.Delay}} {
		if p.v < 0 || p.v > 1 || p.v != p.v {
			return fmt.Errorf("transport: fault probability %s=%v outside [0, 1]", p.name, p.v)
		}
	}
	if s.Reset+s.Stall+s.Partial+s.Delay > 1 {
		return fmt.Errorf("transport: fault probabilities sum to %v > 1", s.Reset+s.Stall+s.Partial+s.Delay)
	}
	if s.StallFor < 0 || s.DelayFor < 0 {
		return fmt.Errorf("transport: negative fault duration")
	}
	if s.Max < 0 {
		return fmt.Errorf("transport: negative fault budget")
	}
	return nil
}

// ParseFaultSpec parses the -fault-spec flag syntax: comma-separated
// key=value pairs, e.g.
//
//	seed=7,reset=0.02,stall=0.01,partial=0.01,delay=0.05,stall-ms=200,delay-ms=20,max=40
//
// Unknown keys are an error; the empty string is a valid disabled spec.
func ParseFaultSpec(s string) (FaultSpec, error) {
	spec := FaultSpec{}
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return spec, fmt.Errorf("transport: fault spec token %q is not key=value", tok)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch k {
		case "seed", "max", "stall-ms", "delay-ms":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return spec, fmt.Errorf("transport: fault spec %s=%q: %v", k, v, err)
			}
			switch k {
			case "seed":
				spec.Seed = n
			case "max":
				spec.Max = int(n)
			case "stall-ms":
				spec.StallFor = time.Duration(n) * time.Millisecond
			case "delay-ms":
				spec.DelayFor = time.Duration(n) * time.Millisecond
			}
		case "reset", "stall", "partial", "delay":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return spec, fmt.Errorf("transport: fault spec %s=%q: %v", k, v, err)
			}
			switch k {
			case "reset":
				spec.Reset = p
			case "stall":
				spec.Stall = p
			case "partial":
				spec.Partial = p
			case "delay":
				spec.Delay = p
			}
		default:
			return spec, fmt.Errorf("transport: unknown fault spec key %q", k)
		}
	}
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}

// String renders the spec back into ParseFaultSpec syntax (only the fields
// that differ from zero), so specs round-trip.
func (s FaultSpec) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if s.Seed != 0 {
		add("seed", strconv.FormatInt(s.Seed, 10))
	}
	if s.Reset != 0 {
		add("reset", strconv.FormatFloat(s.Reset, 'g', -1, 64))
	}
	if s.Stall != 0 {
		add("stall", strconv.FormatFloat(s.Stall, 'g', -1, 64))
	}
	if s.Partial != 0 {
		add("partial", strconv.FormatFloat(s.Partial, 'g', -1, 64))
	}
	if s.Delay != 0 {
		add("delay", strconv.FormatFloat(s.Delay, 'g', -1, 64))
	}
	if s.StallFor != 0 {
		add("stall-ms", strconv.FormatInt(s.StallFor.Milliseconds(), 10))
	}
	if s.DelayFor != 0 {
		add("delay-ms", strconv.FormatInt(s.DelayFor.Milliseconds(), 10))
	}
	if s.Max != 0 {
		add("max", strconv.Itoa(s.Max))
	}
	return strings.Join(parts, ",")
}

// FaultInjector hands out fault-wrapped connections according to one
// FaultSpec. Safe for concurrent use; the total injection count is bounded
// by the spec's Max budget across all wrapped connections.
type FaultInjector struct {
	spec     FaultSpec
	conns    atomic.Int64
	injected atomic.Int64
	budget   atomic.Int64 // remaining faults; < 0 means unlimited

	obsMu    sync.Mutex
	observer func(kind string)
}

// NewFaultInjector builds an injector for spec. A nil injector (or one for
// a disabled spec) wraps connections as no-ops.
func NewFaultInjector(spec FaultSpec) *FaultInjector {
	f := &FaultInjector{spec: spec}
	if spec.Max > 0 {
		f.budget.Store(int64(spec.Max))
	} else {
		f.budget.Store(-1)
	}
	return f
}

// Injected returns the number of faults injected so far.
func (f *FaultInjector) Injected() int64 {
	if f == nil {
		return 0
	}
	return f.injected.Load()
}

// SetObserver registers a callback invoked once per injected fault with
// the fault kind ("reset", "stall", "partial", "delay"). The deploy layer
// uses it to journal chaos faults; the callback runs on the I/O goroutine
// and must be fast and non-blocking.
func (f *FaultInjector) SetObserver(fn func(kind string)) {
	if f == nil {
		return
	}
	f.obsMu.Lock()
	f.observer = fn
	f.obsMu.Unlock()
}

// take consumes one unit of the fault budget; false means the budget is
// spent and no fault may fire.
func (f *FaultInjector) take(kind string) bool {
	for {
		left := f.budget.Load()
		if left < 0 {
			break // unlimited
		}
		if left == 0 {
			return false
		}
		if f.budget.CompareAndSwap(left, left-1) {
			break
		}
	}
	f.injected.Add(1)
	faultsInjected(kind).Inc()
	f.obsMu.Lock()
	fn := f.observer
	f.obsMu.Unlock()
	if fn != nil {
		fn(kind)
	}
	return true
}

// WrapNetConn wraps nc with the injector's fault schedule. A nil injector
// or disabled spec returns nc unchanged.
func (f *FaultInjector) WrapNetConn(nc net.Conn) net.Conn {
	if f == nil || !f.spec.Enabled() {
		return nc
	}
	id := f.conns.Add(1)
	return &faultNetConn{
		Conn: nc,
		inj:  f,
		rrng: rand.New(rand.NewSource(f.spec.Seed + id*1000003 + 1)),
		wrng: rand.New(rand.NewSource(f.spec.Seed + id*1000003 + 2)),
	}
}

// faultNetConn injects faults below the framing layer, where resets and
// partial writes corrupt streams the way real networks do. Each direction
// owns a seeded rng (reads and writes are independently serialized by the
// framing layer's mutexes, so per-direction draws are deterministic).
type faultNetConn struct {
	net.Conn
	inj *FaultInjector

	rmu, wmu   sync.Mutex
	rrng, wrng *rand.Rand
}

// faultAction is one scheduled fault.
type faultAction struct {
	kind  string
	sleep time.Duration
}

// decide draws one fault decision for an operation. write selects the
// write-side table (which includes partial writes).
func (c *faultNetConn) decide(rng *rand.Rand, write bool) (faultAction, bool) {
	spec := c.inj.spec
	r := rng.Float64()
	jitter := 0.5 + rng.Float64() // 0.5x .. 1.5x duration jitter
	cut := spec.Reset
	if r < cut {
		return faultAction{kind: faultReset}, c.inj.take(faultReset)
	}
	if write {
		cut += spec.Partial
		if r < cut {
			return faultAction{kind: faultPartial}, c.inj.take(faultPartial)
		}
	}
	cut += spec.Stall
	if r < cut {
		d := spec.StallFor
		if d == 0 {
			d = 200 * time.Millisecond
		}
		return faultAction{kind: faultStall, sleep: time.Duration(float64(d) * jitter)}, c.inj.take(faultStall)
	}
	cut += spec.Delay
	if r < cut {
		d := spec.DelayFor
		if d == 0 {
			d = 20 * time.Millisecond
		}
		return faultAction{kind: faultDelay, sleep: time.Duration(float64(d) * jitter)}, c.inj.take(faultDelay)
	}
	return faultAction{}, false
}

// injectedErr builds the error surfaced for a hard fault.
func injectedErr(kind string) error {
	return fmt.Errorf("%w: %s", ErrInjected, kind)
}

func (c *faultNetConn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	act, ok := c.decide(c.rrng, false)
	c.rmu.Unlock()
	if ok {
		switch act.kind {
		case faultReset:
			c.Conn.Close()
			return 0, injectedErr(faultReset)
		case faultStall, faultDelay:
			time.Sleep(act.sleep)
		}
	}
	return c.Conn.Read(p)
}

func (c *faultNetConn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	act, ok := c.decide(c.wrng, true)
	c.wmu.Unlock()
	if ok {
		switch act.kind {
		case faultReset:
			c.Conn.Close()
			return 0, injectedErr(faultReset)
		case faultPartial:
			n := 0
			if len(p) > 1 {
				c.wmu.Lock()
				n = 1 + c.wrng.Intn(len(p)-1)
				c.wmu.Unlock()
				n, _ = c.Conn.Write(p[:n])
			}
			c.Conn.Close()
			return n, injectedErr(faultPartial)
		case faultStall, faultDelay:
			time.Sleep(act.sleep)
		}
	}
	return c.Conn.Write(p)
}

// Dialer dials framed-message connections with exponential backoff, jitter
// and per-attempt timeouts. The zero value retries once with the defaults.
type Dialer struct {
	// Attempts is the total number of dial attempts (<= 0 means 1).
	Attempts int
	// Backoff is the delay before the first retry (default 50ms); it
	// doubles each retry up to MaxBackoff (default 2s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// AttemptTimeout bounds each dial attempt (default 10s).
	AttemptTimeout time.Duration
	// Seed drives the jitter stream deterministically (0 uses a fixed
	// default so retry storms still decorrelate per Dialer value).
	Seed int64
	// Faults, when non-nil, wraps dialed connections for chaos testing.
	Faults *FaultInjector
}

// backoffAfter returns the sleep before retry i (0-based), with ±25%
// jitter from rng.
func (d Dialer) backoffAfter(i int, rng *rand.Rand) time.Duration {
	base := d.Backoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxB := d.MaxBackoff
	if maxB <= 0 {
		maxB = 2 * time.Second
	}
	b := base << uint(i)
	if b > maxB || b <= 0 {
		b = maxB
	}
	jit := 0.75 + 0.5*rng.Float64()
	return time.Duration(float64(b) * jit)
}

// Dial connects to addr, retrying transient failures with backoff. The
// parent ctx bounds the whole loop; each attempt additionally gets
// AttemptTimeout.
func (d Dialer) Dial(ctx context.Context, addr string) (Conn, error) {
	attempts := d.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	timeout := d.AttemptTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	seed := d.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var lastErr error
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
		}
		if i > 0 {
			dialRetries.Inc()
			select {
			case <-time.After(d.backoffAfter(i-1, rng)):
			case <-ctx.Done():
				return nil, fmt.Errorf("transport: dial %s: %w", addr, ctx.Err())
			}
		}
		actx, cancel := context.WithTimeout(ctx, timeout)
		var nd net.Dialer
		nc, err := nd.DialContext(actx, "tcp", addr)
		cancel()
		if err == nil {
			return NewTCPConn(d.Faults.WrapNetConn(nc)), nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("transport: dial %s failed after %d attempts: %w", addr, attempts, lastErr)
}

// FatalError marks an error as non-retryable regardless of what it wraps:
// a protocol-level mismatch that a reconnect cannot fix. The message is
// the wrapped error's, unchanged.
type FatalError struct{ Err error }

func (e *FatalError) Error() string { return e.Err.Error() }
func (e *FatalError) Unwrap() error { return e.Err }

// MarkFatal wraps err so IsRetryable reports false even if the chain also
// contains a retryable I/O error. nil stays nil.
func MarkFatal(err error) error {
	if err == nil {
		return nil
	}
	return &FatalError{Err: err}
}

// IsRetryable classifies an error for the session-resilience retry loops:
// true for transient I/O failures a reconnect may fix (resets, EOFs,
// timeouts, closed connections, injected faults), false for everything
// else — in particular protocol mismatches, which stay wrong on a fresh
// connection. context.Canceled is never retryable (the caller gave up);
// context.DeadlineExceeded is retryable, because per-attempt deadlines are
// how stalled attempts get recycled — callers must check their parent
// context before retrying.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	var fatal *FatalError
	if errors.As(err, &fatal) {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, ErrInjected) || errors.Is(err, ErrClosed) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	for _, errno := range []syscall.Errno{
		syscall.ECONNRESET, syscall.ECONNREFUSED, syscall.ECONNABORTED,
		syscall.EPIPE, syscall.ETIMEDOUT,
	} {
		if errors.Is(err, errno) {
			return true
		}
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// FaultKinds returns the metric label values in stable order (for tests
// and docs).
func FaultKinds() []string {
	kinds := []string{faultReset, faultStall, faultPartial, faultDelay}
	sort.Strings(kinds)
	return kinds
}
