package transport

import (
	"bytes"
	"context"
	"math/big"
	"testing"
	"testing/quick"
	"time"
)

func msgOf(kind MessageKind, flags []int64, vals ...int64) *Message {
	m := &Message{Kind: kind, Flags: flags}
	for _, v := range vals {
		m.Values = append(m.Values, big.NewInt(v))
	}
	return m
}

func sameMessage(a, b *Message) bool {
	if a.Kind != b.Kind || len(a.Flags) != len(b.Flags) || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Flags {
		if a.Flags[i] != b.Flags[i] {
			return false
		}
	}
	for i := range a.Values {
		if a.Values[i].Cmp(b.Values[i]) != 0 {
			return false
		}
	}
	return true
}

func TestCodecRoundTrip(t *testing.T) {
	msgs := []*Message{
		msgOf(KindShares, nil, 1, 2, 3),
		msgOf(KindResult, []int64{1, -7}, -100, 0, 1<<62),
		{Kind: KindControl},
		msgOf(KindBits, []int64{0}, 0),
	}
	for _, m := range msgs {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("WriteMessage: %v", err)
		}
		if buf.Len() != EncodedSize(m) {
			t.Errorf("EncodedSize = %d, wrote %d bytes", EncodedSize(m), buf.Len())
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("ReadMessage: %v", err)
		}
		if !sameMessage(m, got) {
			t.Errorf("round trip mismatch: %+v vs %+v", m, got)
		}
	}
}

func TestCodecRoundTripQuick(t *testing.T) {
	f := func(kind uint8, flags []int64, raw [][]byte) bool {
		m := &Message{Kind: MessageKind(kind), Flags: flags}
		for _, rb := range raw {
			v := new(big.Int).SetBytes(rb)
			if len(rb) > 0 && rb[0]&1 == 1 {
				v.Neg(v)
			}
			m.Values = append(m.Values, v)
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			return false
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			return false
		}
		return sameMessage(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRejectsNilValue(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Kind: KindShares, Values: []*big.Int{nil}}); err == nil {
		t.Fatal("expected error for nil value")
	}
	if err := WriteMessage(&buf, nil); err == nil {
		t.Fatal("expected error for nil message")
	}
}

func TestCodecRejectsTruncatedFrames(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, msgOf(KindShares, []int64{5}, 42, 43)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if _, err := ReadMessage(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("expected error reading frame truncated at %d/%d bytes", cut, len(full))
		}
	}
}

func TestCodecRejectsOversizeDeclarations(t *testing.T) {
	// Hand-craft a header declaring an absurd flag count.
	frame := []byte{byte(KindShares), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadMessage(bytes.NewReader(frame)); err == nil {
		t.Fatal("expected error for oversize flag count")
	}
}

func TestMemPairExchange(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	ctx := context.Background()

	want := msgOf(KindPlainSeq, nil, 7, 8, 9)
	done := make(chan error, 1)
	go func() { done <- a.Send(ctx, want) }()
	got, err := b.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Send: %v", err)
	}
	if !sameMessage(want, got) {
		t.Errorf("message mismatch: %+v vs %+v", want, got)
	}
}

func TestMemPairOrdering(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	ctx := context.Background()
	const n = 20
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Send(ctx, msgOf(KindControl, []int64{int64(i)})); err != nil {
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		m, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if m.Flags[0] != int64(i) {
			t.Fatalf("out of order: got %d want %d", m.Flags[0], i)
		}
	}
}

func TestMemPairCloseUnblocksRecv(t *testing.T) {
	a, b := Pair()
	errs := make(chan error, 1)
	go func() {
		_, err := b.Recv(context.Background())
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("expected error after peer close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock after close")
	}
}

func TestMemPairContextCancel(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Recv(ctx); err == nil {
		t.Fatal("expected context error")
	}
	// Fill the one-slot buffer, then a second send must respect cancel.
	if err := a.Send(context.Background(), msgOf(KindControl, nil)); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, msgOf(KindControl, nil)); err == nil {
		t.Fatal("expected context error on blocked send")
	}
}

func TestTCPExchange(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	type acceptResult struct {
		conn Conn
		err  error
	}
	accepted := make(chan acceptResult, 1)
	go func() {
		c, err := l.Accept()
		accepted <- acceptResult{c, err}
	}()

	client, err := Dial(ctx, l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	res := <-accepted
	if res.err != nil {
		t.Fatalf("Accept: %v", res.err)
	}
	server := res.conn
	defer server.Close()

	want := msgOf(KindCipherSeq, []int64{3}, 1<<40, -9, 0)
	if err := client.Send(ctx, want); err != nil {
		t.Fatalf("client send: %v", err)
	}
	got, err := server.Recv(ctx)
	if err != nil {
		t.Fatalf("server recv: %v", err)
	}
	if !sameMessage(want, got) {
		t.Errorf("TCP round trip mismatch")
	}

	// And the reverse direction.
	if err := server.Send(ctx, msgOf(KindResult, []int64{1})); err != nil {
		t.Fatalf("server send: %v", err)
	}
	back, err := client.Recv(ctx)
	if err != nil {
		t.Fatalf("client recv: %v", err)
	}
	if back.Kind != KindResult {
		t.Errorf("unexpected kind %v", back.Kind)
	}
}

func TestTCPContextDeadline(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			defer c.Close()
			time.Sleep(time.Second) // never send
		}
	}()
	ctx := context.Background()
	client, err := Dial(ctx, l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, err := client.Recv(short); err == nil {
		t.Fatal("expected deadline error")
	}
}

func TestExpectKind(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	ctx := context.Background()
	go a.Send(ctx, msgOf(KindBits, nil, 1))
	if _, err := ExpectKind(ctx, b, KindResult); err == nil {
		t.Fatal("expected kind mismatch error")
	}
	go a.Send(ctx, msgOf(KindBits, nil, 1))
	if _, err := ExpectKind(ctx, b, KindBits); err != nil {
		t.Fatalf("ExpectKind: %v", err)
	}
}

func TestMeterAccounting(t *testing.T) {
	meter := NewMeter()
	a, b := Pair()
	ma := Metered(a, meter, "step1")
	mb := Metered(b, meter, "step1")
	defer ma.Close()
	defer mb.Close()
	ctx := context.Background()

	m := msgOf(KindShares, nil, 100, 200)
	go ma.Send(ctx, m)
	if _, err := mb.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	s, ok := meter.Step("step1")
	if !ok {
		t.Fatal("missing step1 stats")
	}
	wantBytes := int64(EncodedSize(m))
	if s.BytesSent != wantBytes || s.BytesReceived != wantBytes {
		t.Errorf("bytes sent/recv = %d/%d, want %d", s.BytesSent, s.BytesReceived, wantBytes)
	}
	if s.MsgsSent != 1 || s.MsgsReceived != 1 {
		t.Errorf("msgs sent/recv = %d/%d, want 1/1", s.MsgsSent, s.MsgsReceived)
	}

	ma.SetStep("step2")
	go ma.Send(ctx, m)
	mb.Recv(ctx)
	if _, ok := meter.Step("step2"); !ok {
		t.Error("SetStep did not switch attribution")
	}

	if err := meter.Time("timed", func() error { time.Sleep(time.Millisecond); return nil }); err != nil {
		t.Fatal(err)
	}
	ts, _ := meter.Step("timed")
	if ts.Elapsed <= 0 {
		t.Error("Time recorded no elapsed duration")
	}

	snap := meter.Snapshot()
	if len(snap) != 3 {
		t.Errorf("expected 3 steps in snapshot, got %d", len(snap))
	}
	meter.Reset()
	if len(meter.Snapshot()) != 0 {
		t.Error("Reset did not clear stats")
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	vals := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(999999999999999999),  // 18 nines: one segment
		big.NewInt(1000000000000000000), // needs two segments
		new(big.Int).Lsh(big.NewInt(1), 256),
	}
	for _, v := range vals {
		segs, err := Segment(v)
		if err != nil {
			t.Fatalf("Segment(%v): %v", v, err)
		}
		back, err := Recompose(segs)
		if err != nil {
			t.Fatalf("Recompose: %v", err)
		}
		if back.Cmp(v) != 0 {
			t.Errorf("segment round trip %v -> %v", v, back)
		}
	}
}

func TestSegmentRejectsNegative(t *testing.T) {
	if _, err := Segment(big.NewInt(-1)); err == nil {
		t.Fatal("expected error for negative value")
	}
	if _, err := Segment(nil); err == nil {
		t.Fatal("expected error for nil value")
	}
	if _, err := Recompose(nil); err == nil {
		t.Fatal("expected error for empty segments")
	}
	if _, err := Recompose([]int64{-3}); err == nil {
		t.Fatal("expected error for out-of-range segment")
	}
}

func TestSegmentVectorRoundTrip(t *testing.T) {
	vs := []*big.Int{big.NewInt(5), new(big.Int).Lsh(big.NewInt(7), 128), big.NewInt(0)}
	segs, counts, err := SegmentVector(vs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := RecomposeVector(segs, counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if back[i].Cmp(vs[i]) != 0 {
			t.Errorf("element %d: %v != %v", i, back[i], vs[i])
		}
	}
	if _, err := RecomposeVector(segs, []int{1}); err == nil {
		t.Error("expected error for trailing segments")
	}
	if _, err := RecomposeVector(segs[:1], counts); err == nil {
		t.Error("expected error for short segments")
	}
}

func TestSegmentQuick(t *testing.T) {
	f := func(raw []byte) bool {
		v := new(big.Int).SetBytes(raw)
		segs, err := Segment(v)
		if err != nil {
			return false
		}
		back, err := Recompose(segs)
		return err == nil && back.Cmp(v) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
