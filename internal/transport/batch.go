package transport

import (
	"context"
	"fmt"
	"math/big"
)

// Batched frames: one KindBatch frame carries `count` messages of a single
// inner kind so one round trip moves a whole phase of lock-step exchanges
// (e.g. every DGK comparison of a tournament bracket level). The layout is
// self-describing so items may differ in value and flag counts:
//
//	batch frame := Kind=KindBatch
//	               Flags=[inner-kind, count,
//	                      nvalues_0, nflags_0, flags_0...,
//	                      nvalues_1, nflags_1, flags_1..., ...]
//	               Values=values_0 ++ values_1 ++ ...
//
// Batch frames nest inside mux frames (a MuxStream Send/Recv of a KindBatch
// message works unchanged) but never inside each other, mirroring KindMux.

// WrapBatch packs items — all of the same kind — into one batch frame.
func WrapBatch(items []*Message) (*Message, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("transport: cannot batch zero messages")
	}
	nvals := 0
	nflags := 0
	var inner MessageKind
	for i, it := range items {
		if it == nil {
			return nil, fmt.Errorf("transport: nil message at batch index %d", i)
		}
		if i == 0 {
			inner = it.Kind
			if inner == 0 || inner == KindMux || inner == KindBatch {
				return nil, fmt.Errorf("transport: cannot wrap %v messages in a batch frame", inner)
			}
		}
		if it.Kind != inner {
			return nil, fmt.Errorf("transport: batch mixes kinds %v and %v", inner, it.Kind)
		}
		nvals += len(it.Values)
		nflags += len(it.Flags)
	}
	flags := make([]int64, 0, 2+2*len(items)+nflags)
	flags = append(flags, int64(inner), int64(len(items)))
	values := make([]*big.Int, 0, nvals)
	for _, it := range items {
		flags = append(flags, int64(len(it.Values)), int64(len(it.Flags)))
		flags = append(flags, it.Flags...)
		values = append(values, it.Values...)
	}
	return &Message{Kind: KindBatch, Flags: flags, Values: values}, nil
}

// OpenBatch splits a batch frame into its constituent messages. The item
// headers are validated against the frame's actual flag and value counts, so
// a malformed or malicious batch cannot cause out-of-range reads or
// unbounded allocation beyond the already-bounded frame.
func OpenBatch(msg *Message) ([]*Message, error) {
	if msg == nil || msg.Kind != KindBatch {
		got := MessageKind(0)
		if msg != nil {
			got = msg.Kind
		}
		return nil, fmt.Errorf("transport: expected batch frame, got %v", got)
	}
	if len(msg.Flags) < 2 {
		return nil, fmt.Errorf("transport: batch frame with %d flags (need >= 2)", len(msg.Flags))
	}
	kind, count := msg.Flags[0], msg.Flags[1]
	if kind < 1 || kind > 255 || MessageKind(kind) == KindMux || MessageKind(kind) == KindBatch {
		return nil, fmt.Errorf("transport: invalid inner kind %d in batch frame", kind)
	}
	if count < 1 || count > int64(len(msg.Flags)) {
		return nil, fmt.Errorf("transport: invalid batch count %d", count)
	}
	items := make([]*Message, 0, count)
	fi, vi := 2, 0
	for n := int64(0); n < count; n++ {
		if fi+2 > len(msg.Flags) {
			return nil, fmt.Errorf("transport: batch item %d header truncated", n)
		}
		nv, nf := msg.Flags[fi], msg.Flags[fi+1]
		fi += 2
		if nv < 0 || int64(vi)+nv > int64(len(msg.Values)) {
			return nil, fmt.Errorf("transport: batch item %d declares %d values beyond frame", n, nv)
		}
		if nf < 0 || int64(fi)+nf > int64(len(msg.Flags)) {
			return nil, fmt.Errorf("transport: batch item %d declares %d flags beyond frame", n, nf)
		}
		item := &Message{Kind: MessageKind(kind)}
		if nv > 0 {
			item.Values = msg.Values[vi : vi+int(nv)]
			vi += int(nv)
		}
		if nf > 0 {
			item.Flags = msg.Flags[fi : fi+int(nf)]
			fi += int(nf)
		}
		items = append(items, item)
	}
	if fi != len(msg.Flags) || vi != len(msg.Values) {
		return nil, fmt.Errorf("transport: batch frame has %d trailing flags and %d trailing values",
			len(msg.Flags)-fi, len(msg.Values)-vi)
	}
	return items, nil
}

// ExpectBatch receives one batch frame and verifies both the inner kind and
// the item count, the lock-step pattern of batched sub-protocols. Mismatches
// are protocol-level disagreements and therefore fatal, like ExpectKind.
func ExpectBatch(ctx context.Context, c Conn, inner MessageKind, count int) ([]*Message, error) {
	msg, err := ExpectKind(ctx, c, KindBatch)
	if err != nil {
		return nil, err
	}
	items, err := OpenBatch(msg)
	if err != nil {
		return nil, MarkFatal(err)
	}
	if items[0].Kind != inner {
		return nil, MarkFatal(fmt.Errorf("transport: expected batch of %v messages, got %v", inner, items[0].Kind))
	}
	if len(items) != count {
		return nil, MarkFatal(fmt.Errorf("transport: expected batch of %d messages, got %d", count, len(items)))
	}
	return items, nil
}
