package transport

import (
	"bytes"
	"testing"
)

// FuzzReadMessage checks that arbitrary byte streams never panic the codec
// or produce a message that fails to round-trip.
func FuzzReadMessage(f *testing.F) {
	// Seed with valid frames.
	seed := []*Message{
		{Kind: KindControl},
		msgOf(KindShares, []int64{1, -2}, 3, -4, 0),
		msgOf(KindBits, nil, 1, 0, 1, 1),
		mustWrapMux(f, 3, msgOf(KindResult, []int64{1})),
	}
	for _, m := range seed {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return // rejecting garbage is fine
		}
		// Anything accepted must re-encode and decode identically.
		var buf bytes.Buffer
		if err := WriteMessage(&buf, msg); err != nil {
			t.Fatalf("re-encode accepted message: %v", err)
		}
		back, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !sameMessage(msg, back) {
			t.Fatalf("round trip mismatch: %+v vs %+v", msg, back)
		}
	})
}

// mustWrapMux wraps a message for fuzz seeding.
func mustWrapMux(f *testing.F, stream int64, msg *Message) *Message {
	f.Helper()
	wrapped, err := WrapMux(stream, msg)
	if err != nil {
		f.Fatal(err)
	}
	return wrapped
}

// FuzzMuxUnwrap checks the stream-ID framing: any decodable mux frame must
// either be rejected or unwrap into an inner message that re-wraps to an
// identical frame.
func FuzzMuxUnwrap(f *testing.F) {
	seeds := []*Message{
		mustWrapMux(f, 0, msgOf(KindControl, nil)),
		mustWrapMux(f, 1, msgOf(KindBits, []int64{5}, 1, 0, 1)),
		mustWrapMux(f, 1<<40, msgOf(KindCipherSeq, []int64{2, -7}, 123456789)),
		msgOf(KindMux, []int64{0, int64(KindMux)}),   // nested: must reject
		msgOf(KindMux, []int64{-4, int64(KindBits)}), // negative stream
		msgOf(KindMux, []int64{9}),                   // short flags
	}
	for _, m := range seeds {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMessage(bytes.NewReader(data))
		if err != nil || msg.Kind != KindMux {
			return
		}
		stream, inner, err := UnwrapMux(msg)
		if err != nil {
			return // rejecting malformed mux flags is fine
		}
		back, err := WrapMux(stream, inner)
		if err != nil {
			t.Fatalf("re-wrap of unwrapped frame failed: %v", err)
		}
		if !sameMessage(msg, back) {
			t.Fatalf("wrap/unwrap round trip mismatch: %+v vs %+v", msg, back)
		}
	})
}

// FuzzSegmentRecompose checks the segmentation codec against arbitrary
// segment lists.
func FuzzSegmentRecompose(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Interpret raw bytes as a big integer; segment and recompose.
		v, err := Recompose(bytesToSegs(raw))
		if err != nil {
			return
		}
		segs, err := Segment(v)
		if err != nil {
			t.Fatalf("segment recomposed value: %v", err)
		}
		back, err := Recompose(segs)
		if err != nil || back.Cmp(v) != 0 {
			t.Fatalf("round trip mismatch: %v vs %v (%v)", v, back, err)
		}
	})
}

// bytesToSegs derives a segment list from fuzz bytes.
func bytesToSegs(raw []byte) []int64 {
	if len(raw) == 0 {
		return nil
	}
	segs := make([]int64, 0, len(raw)/4+1)
	var cur int64
	for i, b := range raw {
		cur = cur*251 + int64(b)
		if i%4 == 3 {
			segs = append(segs, cur%1000000000000000000)
			cur = 0
		}
	}
	segs = append(segs, cur%1000000000000000000)
	return segs
}
