package transport

import (
	"bytes"
	"context"
	"errors"
	"math/big"
	"testing"
)

func isFatalErr(err error) bool {
	var fatal *FatalError
	return errors.As(err, &fatal)
}

func TestBatchRoundTrip(t *testing.T) {
	items := []*Message{
		{Kind: KindBits, Values: []*big.Int{big.NewInt(10), big.NewInt(20)}},
		{Kind: KindBits, Values: []*big.Int{big.NewInt(30)}, Flags: []int64{7}},
		{Kind: KindBits, Flags: []int64{1, 2, 3}},
	}
	frame, err := WrapBatch(items)
	if err != nil {
		t.Fatalf("WrapBatch: %v", err)
	}
	if frame.Kind != KindBatch {
		t.Fatalf("frame kind = %v, want %v", frame.Kind, KindBatch)
	}
	got, err := OpenBatch(frame)
	if err != nil {
		t.Fatalf("OpenBatch: %v", err)
	}
	if len(got) != len(items) {
		t.Fatalf("got %d items, want %d", len(got), len(items))
	}
	for i, it := range got {
		if it.Kind != KindBits {
			t.Errorf("item %d kind = %v", i, it.Kind)
		}
		if len(it.Values) != len(items[i].Values) {
			t.Errorf("item %d: %d values, want %d", i, len(it.Values), len(items[i].Values))
			continue
		}
		for j, v := range it.Values {
			if v.Cmp(items[i].Values[j]) != 0 {
				t.Errorf("item %d value %d = %v, want %v", i, j, v, items[i].Values[j])
			}
		}
		if len(it.Flags) != len(items[i].Flags) {
			t.Errorf("item %d: %d flags, want %d", i, len(it.Flags), len(items[i].Flags))
			continue
		}
		for j, f := range it.Flags {
			if f != items[i].Flags[j] {
				t.Errorf("item %d flag %d = %d, want %d", i, j, f, items[i].Flags[j])
			}
		}
	}
}

func TestBatchRoundTripThroughCodec(t *testing.T) {
	// A batch frame must survive the wire codec: encode, decode, reopen.
	items := []*Message{
		{Kind: KindResult, Flags: []int64{1}},
		{Kind: KindResult, Flags: []int64{0}},
	}
	frame, err := WrapBatch(items)
	if err != nil {
		t.Fatalf("WrapBatch: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, frame); err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	got, err := OpenBatch(decoded)
	if err != nil {
		t.Fatalf("OpenBatch after codec: %v", err)
	}
	if len(got) != 2 || got[0].Flags[0] != 1 || got[1].Flags[0] != 0 {
		t.Fatalf("decoded batch = %+v", got)
	}
}

func TestWrapBatchRejects(t *testing.T) {
	cases := []struct {
		name  string
		items []*Message
	}{
		{"empty", nil},
		{"nil item", []*Message{nil}},
		{"zero kind", []*Message{{Kind: 0}}},
		{"mux", []*Message{{Kind: KindMux}}},
		{"nested batch", []*Message{{Kind: KindBatch}}},
		{"mixed kinds", []*Message{{Kind: KindBits}, {Kind: KindResult}}},
	}
	for _, tc := range cases {
		if _, err := WrapBatch(tc.items); err == nil {
			t.Errorf("%s: WrapBatch accepted invalid input", tc.name)
		}
	}
}

func TestOpenBatchRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		msg  *Message
	}{
		{"nil", nil},
		{"wrong kind", &Message{Kind: KindBits}},
		{"no header", &Message{Kind: KindBatch}},
		{"bad inner kind", &Message{Kind: KindBatch, Flags: []int64{0, 1, 0, 0}}},
		{"inner mux", &Message{Kind: KindBatch, Flags: []int64{int64(KindMux), 1, 0, 0}}},
		{"inner batch", &Message{Kind: KindBatch, Flags: []int64{int64(KindBatch), 1, 0, 0}}},
		{"zero count", &Message{Kind: KindBatch, Flags: []int64{int64(KindBits), 0}}},
		{"count overruns", &Message{Kind: KindBatch, Flags: []int64{int64(KindBits), 2, 0, 0}}},
		{"values overrun", &Message{Kind: KindBatch, Flags: []int64{int64(KindBits), 1, 3, 0}}},
		{"negative values", &Message{Kind: KindBatch, Flags: []int64{int64(KindBits), 1, -1, 0}}},
		{"flags overrun", &Message{Kind: KindBatch, Flags: []int64{int64(KindBits), 1, 0, 9}}},
		{"negative flags", &Message{Kind: KindBatch, Flags: []int64{int64(KindBits), 1, 0, -1}}},
		{"trailing flags", &Message{Kind: KindBatch, Flags: []int64{int64(KindBits), 1, 0, 0, 5}}},
		{"trailing values", &Message{Kind: KindBatch, Flags: []int64{int64(KindBits), 1, 0, 0},
			Values: []*big.Int{big.NewInt(1)}}},
	}
	for _, tc := range cases {
		if _, err := OpenBatch(tc.msg); err == nil {
			t.Errorf("%s: OpenBatch accepted malformed frame", tc.name)
		}
	}
}

func TestExpectBatch(t *testing.T) {
	ctx := context.Background()
	a, b := Pair()
	defer a.Close()
	defer b.Close()

	frame, err := WrapBatch([]*Message{
		{Kind: KindResult, Flags: []int64{1}},
		{Kind: KindResult, Flags: []int64{0}},
	})
	if err != nil {
		t.Fatalf("WrapBatch: %v", err)
	}
	go a.Send(ctx, frame)
	items, err := ExpectBatch(ctx, b, KindResult, 2)
	if err != nil {
		t.Fatalf("ExpectBatch: %v", err)
	}
	if len(items) != 2 {
		t.Fatalf("got %d items", len(items))
	}

	// Wrong count is fatal.
	go a.Send(ctx, frame)
	if _, err := ExpectBatch(ctx, b, KindResult, 3); err == nil || !isFatalErr(err) {
		t.Fatalf("count mismatch error = %v, want fatal", err)
	}

	// Wrong inner kind is fatal.
	go a.Send(ctx, frame)
	if _, err := ExpectBatch(ctx, b, KindBits, 2); err == nil || !isFatalErr(err) {
		t.Fatalf("kind mismatch error = %v, want fatal", err)
	}
}

func TestBatchInsideMux(t *testing.T) {
	// Batch frames must ride mux streams unchanged.
	frame, err := WrapBatch([]*Message{{Kind: KindBits, Values: []*big.Int{big.NewInt(42)}}})
	if err != nil {
		t.Fatalf("WrapBatch: %v", err)
	}
	wrapped, err := WrapMux(3, frame)
	if err != nil {
		t.Fatalf("WrapMux: %v", err)
	}
	stream, inner, err := UnwrapMux(wrapped)
	if err != nil {
		t.Fatalf("UnwrapMux: %v", err)
	}
	if stream != 3 {
		t.Fatalf("stream = %d, want 3", stream)
	}
	items, err := OpenBatch(inner)
	if err != nil {
		t.Fatalf("OpenBatch after mux round trip: %v", err)
	}
	if len(items) != 1 || items[0].Values[0].Int64() != 42 {
		t.Fatalf("items = %+v", items)
	}
}
