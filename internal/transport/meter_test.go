package transport

import (
	"strings"
	"testing"

	"github.com/privconsensus/privconsensus/internal/obs"
)

func TestMeterRounds(t *testing.T) {
	m := NewMeter()
	// send, send, recv => 1 round; recv with no preceding send => none.
	m.RecordSend("a", 10)
	m.RecordSend("a", 10)
	m.RecordRecv("a", 5)
	m.RecordRecv("a", 5)
	m.RecordSend("a", 10)
	m.RecordRecv("a", 5)
	m.RecordRecv("b", 1)
	sa, _ := m.Step("a")
	if sa.Rounds != 2 {
		t.Fatalf("step a rounds = %d, want 2", sa.Rounds)
	}
	sb, _ := m.Step("b")
	if sb.Rounds != 0 {
		t.Fatalf("step b rounds = %d, want 0", sb.Rounds)
	}
}

func TestMeterTotalsAndString(t *testing.T) {
	m := NewMeter()
	m.RecordSend("z-step", 100)
	m.RecordRecv("z-step", 50)
	m.RecordSend("a-step", 7)
	tot := m.Totals()
	if tot.BytesSent != 107 || tot.BytesReceived != 50 || tot.MsgsSent != 2 || tot.Rounds != 1 {
		t.Fatalf("totals wrong: %+v", tot)
	}
	s := m.String()
	ai, zi := strings.Index(s, "a-step:"), strings.Index(s, "z-step:")
	if ai < 0 || zi < 0 || ai > zi {
		t.Fatalf("String not sorted by step:\n%s", s)
	}
	if s != m.String() {
		t.Fatal("String not deterministic")
	}
	if !strings.Contains(s, "sent=100B/1") || !strings.Contains(s, "rounds=1") {
		t.Fatalf("String missing fields:\n%s", s)
	}
}

func TestMeterFillTrace(t *testing.T) {
	m := NewMeter()
	m.RecordSend("phase-x", 64)
	m.RecordRecv("phase-x", 32)
	m.RecordSend("phase-y", 8)
	tr := obs.NewTracer("q")
	tr.StartPhase("phase-x")
	tr.EndPhase("phase-x", nil)
	m.FillTrace(tr)
	q := tr.Trace()
	sent, recvd := q.TotalBytes()
	tot := m.Totals()
	if sent != tot.BytesSent || recvd != tot.BytesReceived {
		t.Fatalf("trace totals %d/%d != meter totals %d/%d", sent, recvd, tot.BytesSent, tot.BytesReceived)
	}
	sx, ok := q.Span("phase-x")
	if !ok || sx.BytesSent != 64 || sx.Rounds != 1 {
		t.Fatalf("phase-x span wrong: %+v ok=%v", sx, ok)
	}
	// phase-y never opened as a span but its traffic still lands in the trace.
	if _, ok := q.Span("phase-y"); !ok {
		t.Fatal("unopened phase missing from trace")
	}
}

func TestMeterFeedsObsRegistry(t *testing.T) {
	before := obs.Default.CounterValue("transport_step_bytes_total",
		obs.L("step", "obs-feed-test"), obs.L("dir", "sent"))
	m := NewMeter()
	m.RecordSend("obs-feed-test", 40)
	m.RecordRecv("obs-feed-test", 9)
	after := obs.Default.CounterValue("transport_step_bytes_total",
		obs.L("step", "obs-feed-test"), obs.L("dir", "sent"))
	if after-before != 40 {
		t.Fatalf("obs bridge delta = %d, want 40", after-before)
	}
	if r := obs.Default.CounterValue("transport_step_rounds_total",
		obs.L("step", "obs-feed-test")); r < 1 {
		t.Fatalf("rounds counter = %d, want >= 1", r)
	}
}
