package transport

import (
	"context"
	"errors"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

func TestParseFaultSpec(t *testing.T) {
	spec, err := ParseFaultSpec("seed=7,reset=0.03,stall=0.01,partial=0.01,delay=0.05,stall-ms=40,delay-ms=5,max=25")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := FaultSpec{
		Seed: 7, Reset: 0.03, Stall: 0.01, Partial: 0.01, Delay: 0.05,
		StallFor: 40 * time.Millisecond, DelayFor: 5 * time.Millisecond, Max: 25,
	}
	if spec != want {
		t.Fatalf("parsed %+v, want %+v", spec, want)
	}
	if !spec.Enabled() {
		t.Fatal("spec should be enabled")
	}

	empty, err := ParseFaultSpec("")
	if err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if empty.Enabled() {
		t.Fatal("empty spec should be disabled")
	}
}

func TestParseFaultSpecRejects(t *testing.T) {
	for _, bad := range []string{
		"reset",               // not key=value
		"bogus=1",             // unknown key
		"reset=2",             // probability out of range
		"reset=-0.1",          // negative probability
		"reset=NaN",           // NaN probability
		"reset=0.9,stall=0.9", // probabilities sum > 1
		"stall-ms=-5",         // negative duration
		"max=-1",              // negative budget
		"seed=abc",            // non-integer
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("ParseFaultSpec(%q) succeeded, want error", bad)
		}
	}
}

func TestFaultSpecStringRoundTrip(t *testing.T) {
	spec := FaultSpec{Seed: -3, Reset: 0.125, Delay: 0.5, DelayFor: 7 * time.Millisecond, Max: 9}
	back, err := ParseFaultSpec(spec.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", spec.String(), err)
	}
	if back != spec {
		t.Fatalf("round trip %q: got %+v, want %+v", spec.String(), back, spec)
	}
}

// pipeWithDrain returns a net.Pipe endpoint whose peer continuously drains
// writes, so Write never blocks on the synchronous pipe.
func pipeWithDrain(t *testing.T) net.Conn {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	go func() {
		buf := make([]byte, 1024)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	return a
}

func TestFaultBudgetBounds(t *testing.T) {
	inj := NewFaultInjector(FaultSpec{Seed: 1, Stall: 1, StallFor: time.Millisecond, Max: 3})
	c := inj.WrapNetConn(pipeWithDrain(t))
	for i := 0; i < 10; i++ {
		if _, err := c.Write([]byte("x")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if got := inj.Injected(); got != 3 {
		t.Fatalf("injected %d faults, want exactly the budget of 3", got)
	}
}

func TestFaultReset(t *testing.T) {
	inj := NewFaultInjector(FaultSpec{Seed: 1, Reset: 1, Max: 1})
	c := inj.WrapNetConn(pipeWithDrain(t))
	_, err := c.Write([]byte("x"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write error = %v, want ErrInjected", err)
	}
	if !IsRetryable(err) {
		t.Fatal("injected reset should be retryable")
	}
	// Budget spent: the next op hits the (now closed) underlying conn.
	if _, err := c.Write([]byte("x")); errors.Is(err, ErrInjected) {
		t.Fatalf("second write re-injected past budget: %v", err)
	}
}

func TestFaultPartialWrite(t *testing.T) {
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	got := make(chan int, 1)
	go func() {
		n := 0
		buf := make([]byte, 256)
		for {
			m, err := b.Read(buf)
			n += m
			if err != nil {
				got <- n
				return
			}
		}
	}()
	inj := NewFaultInjector(FaultSpec{Seed: 4, Partial: 1, Max: 1})
	c := inj.WrapNetConn(a)
	payload := make([]byte, 100)
	n, err := c.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write error = %v, want ErrInjected", err)
	}
	if n >= len(payload) {
		t.Fatalf("partial write reported %d of %d bytes", n, len(payload))
	}
	if received := <-got; received != n {
		t.Fatalf("peer saw %d bytes, writer reported %d", received, n)
	}
}

func TestFaultScheduleDeterministic(t *testing.T) {
	run := func() int64 {
		inj := NewFaultInjector(FaultSpec{Seed: 42, Stall: 0.3, Delay: 0.3, StallFor: time.Microsecond, DelayFor: time.Microsecond})
		c := inj.WrapNetConn(pipeWithDrain(t))
		for i := 0; i < 50; i++ {
			if _, err := c.Write([]byte("x")); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		return inj.Injected()
	}
	first, second := run(), run()
	if first != second || first == 0 {
		t.Fatalf("same seed injected %d then %d faults; want equal and nonzero", first, second)
	}
}

func TestWrapNetConnDisabled(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	var nilInj *FaultInjector
	if got := nilInj.WrapNetConn(a); got != a {
		t.Fatal("nil injector must return the conn unchanged")
	}
	if got := NewFaultInjector(FaultSpec{Seed: 9}).WrapNetConn(a); got != a {
		t.Fatal("disabled spec must return the conn unchanged")
	}
}

func TestListenerFaultWrapping(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	l.SetFaults(NewFaultInjector(FaultSpec{Seed: 2, Reset: 1, Max: 1}))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	dialErr := make(chan error, 1)
	go func() {
		c, err := Dial(ctx, l.Addr())
		if err == nil {
			defer c.Close()
			err = c.Send(ctx, &Message{Kind: KindControl, Flags: []int64{1}})
		}
		dialErr <- err
	}()
	sc, err := l.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	defer sc.Close()
	if _, err := sc.Recv(ctx); !errors.Is(err, ErrInjected) {
		t.Fatalf("recv on fault-wrapped conn = %v, want ErrInjected", err)
	}
	<-dialErr // client may or may not see the reset; just reap it
}

func TestIsRetryableClassification(t *testing.T) {
	retryable := []error{
		ErrInjected,
		ErrClosed,
		io.EOF,
		io.ErrUnexpectedEOF,
		context.DeadlineExceeded,
		syscall.ECONNRESET,
		syscall.ECONNREFUSED,
		syscall.EPIPE,
		&net.OpError{Op: "read", Err: errors.New("boom")},
	}
	for _, err := range retryable {
		if !IsRetryable(err) {
			t.Errorf("IsRetryable(%v) = false, want true", err)
		}
	}
	fatal := []error{
		nil,
		context.Canceled,
		errors.New("transport: expected bits message, got result"),
		MarkFatal(syscall.ECONNRESET), // fatal marker beats a retryable cause
	}
	for _, err := range fatal {
		if IsRetryable(err) {
			t.Errorf("IsRetryable(%v) = true, want false", err)
		}
	}
}

func TestMarkFatalPreservesMessage(t *testing.T) {
	base := errors.New("protocol mismatch")
	err := MarkFatal(base)
	if err.Error() != base.Error() {
		t.Fatalf("MarkFatal changed message: %q", err.Error())
	}
	if !errors.Is(err, base) {
		t.Fatal("MarkFatal must wrap the original error")
	}
	if MarkFatal(nil) != nil {
		t.Fatal("MarkFatal(nil) must be nil")
	}
}

func TestExpectKindMismatchIsFatal(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	ctx := context.Background()
	if err := a.Send(ctx, &Message{Kind: KindResult}); err != nil {
		t.Fatalf("send: %v", err)
	}
	_, err := ExpectKind(ctx, b, KindBits)
	if err == nil {
		t.Fatal("kind mismatch must error")
	}
	if IsRetryable(err) {
		t.Fatalf("kind mismatch must be fatal, got retryable: %v", err)
	}
}

func TestDialerRetriesThenFails(t *testing.T) {
	// Grab a port that refuses connections by closing a listener.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := l.Addr().String()
	l.Close()

	d := Dialer{Attempts: 3, Backoff: time.Millisecond, AttemptTimeout: time.Second, Seed: 5}
	start := time.Now()
	_, err = d.Dial(context.Background(), addr)
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if !IsRetryable(err) {
		t.Fatalf("connection-refused should classify retryable: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial loop took %v; backoff not bounded", elapsed)
	}
}

func TestDialerSucceedsAfterListenerAppears(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	go func() {
		if c, err := l.Accept(); err == nil {
			defer c.Close()
			ctx := context.Background()
			if msg, err := c.Recv(ctx); err == nil {
				c.Send(ctx, msg)
			}
		}
	}()

	d := Dialer{Attempts: 2, Backoff: time.Millisecond, Seed: 3}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := d.Dial(ctx, l.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(ctx, &Message{Kind: KindControl, Flags: []int64{7}}); err != nil {
		t.Fatalf("send: %v", err)
	}
	echo, err := c.Recv(ctx)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if echo.Kind != KindControl || len(echo.Flags) != 1 || echo.Flags[0] != 7 {
		t.Fatalf("echo mismatch: %+v", echo)
	}
}

func TestDialerCtxCancel(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := l.Addr().String()
	l.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := Dialer{Attempts: 100, Backoff: time.Second}
	if _, err := d.Dial(ctx, addr); !errors.Is(err, context.Canceled) {
		t.Fatalf("dial with cancelled ctx = %v, want context.Canceled", err)
	}
}

func FuzzFaultSpec(f *testing.F) {
	for _, s := range []string{
		"",
		"seed=7,reset=0.03,stall=0.01,partial=0.01,delay=0.05,stall-ms=40,delay-ms=5,max=25",
		"stall=0.5,stall-ms=10",
		"delay=1",
		"partial=0.25,seed=-4",
		"reset=2",
		"bogus=1",
		"reset",
		"seed=,max=",
		"reset=0.9,stall=0.9",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseFaultSpec(s)
		if err != nil {
			return // invalid inputs must simply error, never panic
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseFaultSpec(%q) accepted an invalid spec: %v", s, err)
		}
		rendered := spec.String()
		back, err := ParseFaultSpec(rendered)
		if err != nil {
			t.Fatalf("String() %q of parsed %q does not reparse: %v", rendered, s, err)
		}
		if back != spec {
			t.Fatalf("round trip via %q: got %+v, want %+v", rendered, back, spec)
		}
	})
}
