package transport

import (
	"fmt"
	"math/big"
)

// Segmentation codec mirroring the paper's workaround for passing Paillier
// ciphertexts through fixed-capacity tensor objects (§VI-A "Encrypted
// numbers converted to tensors"): a ciphertext too large for one unit is
// split into 18-decimal-digit segments before transmission and recomposed
// on receipt. In Go this is not needed for correctness (the codec handles
// arbitrary precision), but it is implemented faithfully so the message
// inflation it causes can be measured (BenchmarkTransportSegmentation).

// SegmentDigits is the decimal capacity of one transported unit, matching
// the paper's 18-digit segments (the largest power of ten below 2^63).
const SegmentDigits = 18

var segmentModulus = func() *big.Int {
	m := big.NewInt(10)
	m.Exp(m, big.NewInt(SegmentDigits), nil)
	return m
}()

// Segment splits a non-negative integer into little-endian base-10^18
// segments, each fitting in an int64 "tensor element". Zero encodes as a
// single zero segment.
func Segment(v *big.Int) ([]int64, error) {
	if v == nil || v.Sign() < 0 {
		return nil, fmt.Errorf("transport: cannot segment %v (must be non-negative)", v)
	}
	if v.Sign() == 0 {
		return []int64{0}, nil
	}
	var segs []int64
	rest := new(big.Int).Set(v)
	digit := new(big.Int)
	for rest.Sign() > 0 {
		rest.DivMod(rest, segmentModulus, digit)
		segs = append(segs, digit.Int64())
	}
	return segs, nil
}

// Recompose reverses Segment.
func Recompose(segs []int64) (*big.Int, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("transport: cannot recompose empty segment list")
	}
	out := new(big.Int)
	for i := len(segs) - 1; i >= 0; i-- {
		if segs[i] < 0 || segs[i] >= segmentModulus.Int64() {
			return nil, fmt.Errorf("transport: segment %d value %d out of range", i, segs[i])
		}
		out.Mul(out, segmentModulus)
		out.Add(out, big.NewInt(segs[i]))
	}
	return out, nil
}

// SegmentVector segments each element, returning the flattened segments and
// per-element segment counts needed to recompose.
func SegmentVector(vs []*big.Int) (segs []int64, counts []int, err error) {
	counts = make([]int, len(vs))
	for i, v := range vs {
		s, err := Segment(v)
		if err != nil {
			return nil, nil, fmt.Errorf("transport: segment element %d: %w", i, err)
		}
		counts[i] = len(s)
		segs = append(segs, s...)
	}
	return segs, counts, nil
}

// RecomposeVector reverses SegmentVector.
func RecomposeVector(segs []int64, counts []int) ([]*big.Int, error) {
	out := make([]*big.Int, len(counts))
	pos := 0
	for i, n := range counts {
		if n <= 0 || pos+n > len(segs) {
			return nil, fmt.Errorf("transport: invalid segment count %d at element %d", n, i)
		}
		v, err := Recompose(segs[pos : pos+n])
		if err != nil {
			return nil, fmt.Errorf("transport: recompose element %d: %w", i, err)
		}
		out[i] = v
		pos += n
	}
	if pos != len(segs) {
		return nil, fmt.Errorf("transport: %d trailing segments", len(segs)-pos)
	}
	return out, nil
}
