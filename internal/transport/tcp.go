package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// tcpConn wraps a net.Conn with length-prefixed message framing:
//
//	tcpFrame := payloadLen(4) payload
//
// where payload is the codec output of WriteMessage.
type tcpConn struct {
	nc net.Conn
	br *bufio.Reader

	sendMu sync.Mutex
	recvMu sync.Mutex

	closeOnce sync.Once
	closeErr  error
}

// NewTCPConn wraps an established net.Conn in the message framing protocol.
func NewTCPConn(nc net.Conn) Conn {
	return &tcpConn{nc: nc, br: bufio.NewReader(nc)}
}

// Dial connects to a listening peer at addr.
func Dial(ctx context.Context, addr string) (Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCPConn(nc), nil
}

// Listener accepts framed-message connections.
type Listener struct {
	nl     net.Listener
	faults *FaultInjector
}

// SetFaults installs a fault injector; subsequently accepted connections
// are wrapped in its fault schedule. Call before Accept; nil disables
// injection.
func (l *Listener) SetFaults(f *FaultInjector) { l.faults = f }

// Listen opens a TCP listener on addr (use "127.0.0.1:0" for an ephemeral
// test port).
func Listen(addr string) (*Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{nl: nl}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.nl.Addr().String() }

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return NewTCPConn(l.faults.WrapNetConn(nc)), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.nl.Close() }

func (c *tcpConn) Send(ctx context.Context, msg *Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if err := c.applyDeadline(ctx, c.nc.SetWriteDeadline); err != nil {
		return err
	}
	var lenBuf [4]byte
	size := EncodedSize(msg)
	binary.BigEndian.PutUint32(lenBuf[:], uint32(size))
	if _, err := c.nc.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("transport: write frame length: %w", err)
	}
	if err := WriteMessage(c.nc, msg); err != nil {
		return err
	}
	wireBytesSent.Add(int64(size) + 4)
	wireMsgsSent.Inc()
	return nil
}

func (c *tcpConn) Recv(ctx context.Context) (*Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if err := c.applyDeadline(ctx, c.nc.SetReadDeadline); err != nil {
		return nil, err
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(c.br, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("transport: read frame length: %w", err)
	}
	payloadLen := binary.BigEndian.Uint32(lenBuf[:])
	if payloadLen > maxValueBytes+1024 {
		return nil, fmt.Errorf("transport: frame size %d exceeds limit", payloadLen)
	}
	msg, err := ReadMessage(io.LimitReader(c.br, int64(payloadLen)))
	if err != nil {
		return nil, err
	}
	wireBytesReceived.Add(int64(payloadLen) + 4)
	wireMsgsReceived.Inc()
	return msg, nil
}

// applyDeadline maps a context deadline onto the socket.
func (c *tcpConn) applyDeadline(ctx context.Context, set func(time.Time) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if dl, ok := ctx.Deadline(); ok {
		return set(dl)
	}
	return set(time.Time{})
}

func (c *tcpConn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.nc.Close() })
	return c.closeErr
}
