// Package transport moves protocol messages between parties (users, S1, S2).
//
// It provides an in-process implementation for simulations and tests, a TCP
// implementation (stdlib net) for real deployments, a length-prefixed binary
// codec for sequences of big integers, and per-step byte/time accounting used
// to regenerate the paper's Tables I and II.
package transport

import (
	"context"
	"errors"
	"fmt"
	"math/big"
)

// Message is the unit exchanged between parties. Values carries big-integer
// payloads (ciphertexts, masked plaintexts, bits); Flags carries small
// scalar side-channel-free metadata such as protocol round markers.
type Message struct {
	// Kind tags the protocol message type (for sanity checking).
	Kind MessageKind
	// Values is the big-integer payload.
	Values []*big.Int
	// Flags carries small integers (e.g. comparison outcome bits).
	Flags []int64
}

// MessageKind enumerates protocol message types.
type MessageKind uint8

// Message kinds, one per distinct protocol hop.
const (
	KindShares MessageKind = iota + 1
	KindCipherSeq
	KindPlainSeq
	KindBits
	KindResult
	KindControl
	// KindMux wraps another message with a stream ID for multiplexed
	// links (see mux.go). Mux frames never nest.
	KindMux
	// KindBatch aggregates several same-kind messages into one frame so a
	// single round trip carries a whole phase of sub-protocol exchanges
	// (see batch.go). Batch frames may ride inside mux frames but never
	// nest in each other.
	KindBatch
	// KindPacked carries slot-packed submission material on the ingestion
	// path (see internal/ingest): the same shapes as KindShares frames
	// but with P packed ciphertexts per sequence instead of K per-class
	// ones, plus slot-layout flags. A distinct kind keeps the packed and
	// unpacked frame grammars unambiguous (their flag arities overlap).
	KindPacked
)

// String implements fmt.Stringer for diagnostics.
func (k MessageKind) String() string {
	switch k {
	case KindShares:
		return "shares"
	case KindCipherSeq:
		return "cipher-seq"
	case KindPlainSeq:
		return "plain-seq"
	case KindBits:
		return "bits"
	case KindResult:
		return "result"
	case KindControl:
		return "control"
	case KindMux:
		return "mux"
	case KindBatch:
		return "batch"
	case KindPacked:
		return "packed"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Conn is a bidirectional, ordered, reliable message channel between two
// parties. Implementations must be safe for one concurrent sender and one
// concurrent receiver.
type Conn interface {
	// Send transmits msg, blocking until accepted or ctx is done.
	Send(ctx context.Context, msg *Message) error
	// Recv blocks for the next message or until ctx is done.
	Recv(ctx context.Context) (*Message, error)
	// Close releases the connection; pending Recv calls fail.
	Close() error
}

// ErrClosed is returned for operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// ExpectKind receives a message and verifies its kind, a common pattern in
// the lock-step protocol implementations.
func ExpectKind(ctx context.Context, c Conn, want MessageKind) (*Message, error) {
	msg, err := c.Recv(ctx)
	if err != nil {
		return nil, err
	}
	if msg.Kind != want {
		// A kind mismatch is a protocol-level disagreement; reconnecting
		// cannot fix it, so the retry loops must treat it as fatal.
		return nil, MarkFatal(fmt.Errorf("transport: expected %v message, got %v", want, msg.Kind))
	}
	return msg, nil
}

// SendControl transmits a control frame whose Flags begin with code: the
// framing used by the session, admission and epoch handshakes.
func SendControl(ctx context.Context, c Conn, code int64, args ...int64) error {
	return c.Send(ctx, &Message{Kind: KindControl, Flags: append([]int64{code}, args...)})
}

// ExpectControl receives a control frame and verifies its code, returning
// the arguments after the code. Like a kind mismatch, a code mismatch is
// a protocol-level disagreement that reconnecting cannot fix, so it is
// marked fatal for the retry loops.
func ExpectControl(ctx context.Context, c Conn, want int64) ([]int64, error) {
	msg, err := ExpectKind(ctx, c, KindControl)
	if err != nil {
		return nil, err
	}
	if len(msg.Flags) < 1 {
		return nil, MarkFatal(errors.New("transport: control frame without code"))
	}
	if msg.Flags[0] != want {
		return nil, MarkFatal(fmt.Errorf("transport: expected control code %d, got %d", want, msg.Flags[0]))
	}
	return msg.Flags[1:], nil
}

// memConn is one end of an in-process connection pair.
type memConn struct {
	send chan<- *Message
	recv <-chan *Message
	done chan struct{}
	peer *memConn
}

// Pair returns two connected in-process endpoints. Messages sent on one are
// received on the other, in order. Buffering of one message per direction
// keeps strictly alternating protocols from deadlocking on a single
// goroutine boundary while still applying backpressure.
func Pair() (Conn, Conn) {
	ab := make(chan *Message, 1)
	ba := make(chan *Message, 1)
	a := &memConn{send: ab, recv: ba, done: make(chan struct{})}
	b := &memConn{send: ba, recv: ab, done: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (c *memConn) Send(ctx context.Context, msg *Message) error {
	if msg == nil {
		return errors.New("transport: nil message")
	}
	select {
	case <-c.done:
		return ErrClosed
	case <-c.peer.done:
		return ErrClosed
	default:
	}
	select {
	case c.send <- msg:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-c.done:
		return ErrClosed
	case <-c.peer.done:
		return ErrClosed
	}
}

func (c *memConn) Recv(ctx context.Context) (*Message, error) {
	// Drain any buffered message even if the peer has closed.
	select {
	case msg := <-c.recv:
		return msg, nil
	default:
	}
	select {
	case msg := <-c.recv:
		return msg, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.done:
		return nil, ErrClosed
	case <-c.peer.done:
		// Peer closed; one final drain attempt to avoid losing a
		// message raced with the close.
		select {
		case msg := <-c.recv:
			return msg, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *memConn) Close() error {
	select {
	case <-c.done:
		return nil
	default:
		close(c.done)
		return nil
	}
}
