package transport

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func muxTestCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestMuxWrapUnwrapRoundTrip(t *testing.T) {
	msg := msgOf(KindBits, []int64{7, -3}, 10, -20, 0)
	wrapped, err := WrapMux(42, msg)
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.Kind != KindMux {
		t.Fatalf("wrapped kind = %v", wrapped.Kind)
	}
	id, inner, err := UnwrapMux(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 {
		t.Fatalf("stream id = %d, want 42", id)
	}
	if !sameMessage(inner, msg) {
		t.Fatalf("inner %+v != original %+v", inner, msg)
	}
	// The mux overhead is exactly the two prefix flags.
	if got, want := EncodedSize(wrapped), EncodedSize(msg)+16; got != want {
		t.Fatalf("wrapped size %d, want %d", got, want)
	}
}

func TestMuxWrapRejects(t *testing.T) {
	if _, err := WrapMux(0, nil); err == nil {
		t.Error("nil message accepted")
	}
	if _, err := WrapMux(-1, msgOf(KindControl, nil)); err == nil {
		t.Error("negative stream accepted")
	}
	wrapped, err := WrapMux(1, msgOf(KindControl, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WrapMux(2, wrapped); err == nil {
		t.Error("nested mux frame accepted")
	}
}

func TestMuxUnwrapRejects(t *testing.T) {
	cases := []*Message{
		nil,
		msgOf(KindControl, []int64{1, 2}),                  // not a mux frame
		{Kind: KindMux, Flags: []int64{5}},                 // too few flags
		{Kind: KindMux, Flags: []int64{-1, 6}},             // negative stream
		{Kind: KindMux, Flags: []int64{0, 0}},              // zero inner kind
		{Kind: KindMux, Flags: []int64{0, 300}},            // inner kind out of range
		{Kind: KindMux, Flags: []int64{0, int64(KindMux)}}, // nested
	}
	for i, msg := range cases {
		if _, _, err := UnwrapMux(msg); err == nil {
			t.Errorf("case %d: accepted %+v", i, msg)
		}
	}
}

// Interleaved sends across streams must never reorder messages within one
// stream. The raw peer writes round-robin across three streams; each
// stream reader must see its own strictly increasing sequence.
func TestMuxInterleavedStreamsKeepOrder(t *testing.T) {
	connA, connB := Pair()
	defer connA.Close()
	defer connB.Close()
	ctx := muxTestCtx(t)
	m := NewMux(connA, nil)

	const streams, rounds = 3, 10
	errCh := make(chan error, streams+1)
	go func() {
		for r := 0; r < rounds; r++ {
			for st := 0; st < streams; st++ {
				wrapped, err := WrapMux(int64(st), msgOf(KindControl, []int64{int64(r)}))
				if err != nil {
					errCh <- err
					return
				}
				if err := connB.Send(ctx, wrapped); err != nil {
					errCh <- err
					return
				}
			}
		}
		errCh <- nil
	}()

	var wg sync.WaitGroup
	for st := 0; st < streams; st++ {
		wg.Add(1)
		go func(st int) {
			defer wg.Done()
			s := m.Stream(int64(st))
			for r := 0; r < rounds; r++ {
				msg, err := s.Recv(ctx)
				if err != nil {
					errCh <- fmt.Errorf("stream %d round %d: %w", st, r, err)
					return
				}
				if len(msg.Flags) != 1 || msg.Flags[0] != int64(r) {
					errCh <- fmt.Errorf("stream %d: got seq %v, want %d", st, msg.Flags, r)
					return
				}
			}
			errCh <- nil
		}(st)
	}
	wg.Wait()
	for i := 0; i < streams+1; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

// muxPingPong drives `streams` concurrent request/response streams over a
// muxed connection pair from both ends, the pattern the DGK comparison
// worker pool uses.
func muxPingPong(t *testing.T, a, b Conn, streams, rounds int) {
	t.Helper()
	ctx := muxTestCtx(t)
	ma, mb := NewMux(a, nil), NewMux(b, nil)
	errCh := make(chan error, 2*streams)
	var wg sync.WaitGroup
	for st := 0; st < streams; st++ {
		wg.Add(2)
		go func(st int) { // requester on a
			defer wg.Done()
			s := ma.Stream(int64(st))
			for r := 0; r < rounds; r++ {
				want := int64(st*1_000_000 + r)
				if err := s.Send(ctx, msgOf(KindControl, []int64{want})); err != nil {
					errCh <- fmt.Errorf("stream %d send: %w", st, err)
					return
				}
				msg, err := s.Recv(ctx)
				if err != nil {
					errCh <- fmt.Errorf("stream %d recv: %w", st, err)
					return
				}
				if len(msg.Flags) != 1 || msg.Flags[0] != want+1 {
					errCh <- fmt.Errorf("stream %d: echo %v, want %d", st, msg.Flags, want+1)
					return
				}
			}
			errCh <- nil
		}(st)
		go func(st int) { // echoer on b
			defer wg.Done()
			s := mb.Stream(int64(st))
			for r := 0; r < rounds; r++ {
				msg, err := s.Recv(ctx)
				if err != nil {
					errCh <- fmt.Errorf("echo %d recv: %w", st, err)
					return
				}
				if err := s.Send(ctx, msgOf(KindResult, []int64{msg.Flags[0] + 1})); err != nil {
					errCh <- fmt.Errorf("echo %d send: %w", st, err)
					return
				}
			}
			errCh <- nil
		}(st)
	}
	wg.Wait()
	for i := 0; i < 2*streams; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

func TestMuxConcurrentStreamsInMemory(t *testing.T) {
	connA, connB := Pair()
	defer connA.Close()
	defer connB.Close()
	muxPingPong(t, connA, connB, 8, 25)
}

func TestMuxConcurrentStreamsOverTCP(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx := muxTestCtx(t)
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- c
	}()
	connB, err := Dial(ctx, l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer connB.Close()
	connA, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	defer connA.Close()
	muxPingPong(t, connA, connB, 4, 10)
}

// Per-stream metering: sends record under the sending stream's label, and
// received bytes are attributed to the consuming stream even though a
// different stream may have pumped the frame off the wire.
func TestMuxMeterPerStream(t *testing.T) {
	connA, connB := Pair()
	defer connA.Close()
	defer connB.Close()
	ctx := muxTestCtx(t)
	meter := NewMeter()
	m := NewMux(connA, meter)
	peer := NewMux(connB, nil)

	s1, s2 := m.Stream(1), m.Stream(2)
	s1.SetStep("alpha")
	s2.SetStep("beta")

	done := make(chan error, 1)
	go func() { // peer echoes one message on each stream, beta first
		for _, id := range []int64{2, 1} {
			s := peer.Stream(id)
			msg, err := s.Recv(ctx)
			if err != nil {
				done <- err
				return
			}
			if err := s.Send(ctx, msg); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	payload := msgOf(KindControl, nil, 123456789)
	wrapped, err := WrapMux(1, payload)
	if err != nil {
		t.Fatal(err)
	}
	wireSize := EncodedSize(wrapped)

	if err := s2.Send(ctx, payload); err != nil {
		t.Fatal(err)
	}
	if err := s1.Send(ctx, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	for _, step := range []string{"alpha", "beta"} {
		s, ok := meter.Step(step)
		if !ok {
			t.Fatalf("no stats for step %q", step)
		}
		if s.BytesSent != int64(wireSize) || s.BytesReceived != int64(wireSize) {
			t.Errorf("step %q: sent %d recv %d, want %d each", step, s.BytesSent, s.BytesReceived, wireSize)
		}
		if s.MsgsSent != 1 || s.MsgsReceived != 1 {
			t.Errorf("step %q: msgs %d/%d, want 1/1", step, s.MsgsSent, s.MsgsReceived)
		}
	}
}

// A frame that is not mux-framed poisons the mux for every stream.
func TestMuxRejectsPlainFrame(t *testing.T) {
	connA, connB := Pair()
	defer connA.Close()
	defer connB.Close()
	ctx := muxTestCtx(t)
	m := NewMux(connA, nil)
	if err := connB.Send(ctx, msgOf(KindControl, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Stream(0).Recv(ctx); err == nil {
		t.Fatal("plain frame accepted by mux")
	}
	// The failure is sticky across streams.
	if _, err := m.Stream(7).Recv(ctx); err == nil {
		t.Fatal("expected sticky mux failure")
	}
	if err := m.Stream(7).Send(ctx, msgOf(KindControl, nil)); err == nil {
		t.Fatal("send on failed mux accepted")
	}
}

// Closing the underlying connection fails blocked stream receives.
func TestMuxUnderlyingClose(t *testing.T) {
	connA, connB := Pair()
	defer connA.Close()
	ctx := muxTestCtx(t)
	m := NewMux(connA, nil)
	errCh := make(chan error, 1)
	go func() {
		_, err := m.Stream(3).Recv(ctx)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	connB.Close()
	if err := <-errCh; err == nil {
		t.Fatal("Recv succeeded after peer close")
	}
}

// A queued frame survives a mux failure: in-order frames that already
// arrived are still delivered before the error surfaces.
func TestMuxDrainsQueuedFramesAfterFailure(t *testing.T) {
	connA, connB := Pair()
	defer connA.Close()
	defer connB.Close()
	ctx := muxTestCtx(t)
	m := NewMux(connA, nil)

	// Stream 0 pumps: it first routes a good frame to stream 5, then hits
	// a poison (unwrapped) frame that fails the mux.
	recvErr := make(chan error, 1)
	go func() {
		_, err := m.Stream(0).Recv(ctx)
		recvErr <- err
	}()
	good, err := WrapMux(5, msgOf(KindControl, []int64{1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := connB.Send(ctx, good); err != nil {
		t.Fatal(err)
	}
	if err := connB.Send(ctx, msgOf(KindControl, nil)); err != nil {
		t.Fatal(err)
	}
	if err := <-recvErr; err == nil {
		t.Fatal("expected mux failure from poison frame")
	}
	msg, err := m.Stream(5).Recv(ctx)
	if err != nil {
		t.Fatalf("queued frame lost after failure: %v", err)
	}
	if len(msg.Flags) != 1 || msg.Flags[0] != 1 {
		t.Fatalf("unexpected queued frame %+v", msg)
	}
	if _, err := m.Stream(5).Recv(ctx); err == nil {
		t.Fatal("expected failure once queue drained")
	}
}

func TestMuxStreamClose(t *testing.T) {
	connA, connB := Pair()
	defer connA.Close()
	defer connB.Close()
	ctx := muxTestCtx(t)
	m := NewMux(connA, nil)
	s := m.Stream(1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Send(ctx, msgOf(KindControl, nil)); err != ErrClosed {
		t.Fatalf("Send after close: %v", err)
	}
	if _, err := s.Recv(ctx); err != ErrClosed {
		t.Fatalf("Recv after close: %v", err)
	}
	// Other streams keep working.
	other := m.Stream(2)
	go func() {
		wrapped, _ := WrapMux(2, msgOf(KindControl, []int64{9}))
		connB.Send(ctx, wrapped)
	}()
	if _, err := other.Recv(ctx); err != nil {
		t.Fatalf("sibling stream broken by close: %v", err)
	}
}
