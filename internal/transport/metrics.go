package transport

import "github.com/privconsensus/privconsensus/internal/obs"

// Process-wide transport metrics, registered on the obs default registry.
// Wire counters live at the TCP framing layer and therefore cover all
// traffic (including deploy-mode user uploads); per-step counters are
// recorded by the Meter and cover the metered peer link.
var (
	wireBytesSent = obs.Default.Counter("transport_wire_bytes_total",
		"Total framed bytes on TCP transports, including the 4-byte length prefix.",
		obs.L("dir", "sent"))
	wireBytesReceived = obs.Default.Counter("transport_wire_bytes_total",
		"Total framed bytes on TCP transports, including the 4-byte length prefix.",
		obs.L("dir", "received"))
	wireMsgsSent = obs.Default.Counter("transport_wire_msgs_total",
		"Total messages on TCP transports.", obs.L("dir", "sent"))
	wireMsgsReceived = obs.Default.Counter("transport_wire_msgs_total",
		"Total messages on TCP transports.", obs.L("dir", "received"))

	muxBacklog = obs.Default.Histogram("transport_mux_backlog_frames",
		"Frames queued on a mux stream when the pump routed one to it.",
		obs.DepthBuckets())

	dialRetries = obs.Default.Counter("retries_total",
		"Retry attempts, by role and scope.",
		obs.L("role", "transport"), obs.L("scope", "dial"))
)

// faultsInjected returns (creating on first use) the injected-fault counter
// for a fault kind.
func faultsInjected(kind string) *obs.Counter {
	return obs.Default.Counter("faults_injected_total",
		"Faults injected by the transport fault injector, by kind.",
		obs.L("kind", kind))
}

// stepCounters caches the per-step obs series a Meter feeds, so the
// registry lookup happens once per (step, direction) instead of per message.
type stepCounters struct {
	bytesSent, bytesReceived *obs.Counter
	msgsSent, msgsReceived   *obs.Counter
	rounds                   *obs.Counter
}

// countersFor returns (creating on first use) the obs series for a step.
// Callers hold the meter's mutex.
func (m *Meter) countersFor(step string) *stepCounters {
	if m.obs == nil {
		m.obs = make(map[string]*stepCounters)
	}
	c, ok := m.obs[step]
	if !ok {
		c = &stepCounters{
			bytesSent: obs.Default.Counter("transport_step_bytes_total",
				"Peer-link bytes metered per protocol step.",
				obs.L("step", step), obs.L("dir", "sent")),
			bytesReceived: obs.Default.Counter("transport_step_bytes_total",
				"Peer-link bytes metered per protocol step.",
				obs.L("step", step), obs.L("dir", "received")),
			msgsSent: obs.Default.Counter("transport_step_msgs_total",
				"Peer-link messages metered per protocol step.",
				obs.L("step", step), obs.L("dir", "sent")),
			msgsReceived: obs.Default.Counter("transport_step_msgs_total",
				"Peer-link messages metered per protocol step.",
				obs.L("step", step), obs.L("dir", "received")),
			rounds: obs.Default.Counter("transport_step_rounds_total",
				"Completed send-then-receive volleys per protocol step.",
				obs.L("step", step)),
		}
		m.obs[step] = c
	}
	return c
}

// FillTrace attributes the meter's per-step traffic to the matching phase
// spans of a query trace. Step labels and phase names are the same strings
// (the protocol's step constants), so the trace's per-phase byte totals
// equal the meter's totals exactly.
func (m *Meter) FillTrace(t *obs.Tracer) {
	if m == nil || t == nil {
		return
	}
	for _, s := range m.Snapshot() {
		t.SetPhaseIO(s.Step, s.BytesSent, s.BytesReceived, s.MsgsSent, s.MsgsReceived, s.Rounds)
	}
}
