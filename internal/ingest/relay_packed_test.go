package ingest

import (
	"math/big"
	"math/rand"
	"testing"

	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// testPackedSide builds one slot-packed relay pipeline over a fresh small
// Paillier key.
func testPackedSide(t *testing.T, users, instances, classes, batch int, p *PackedParams) *side {
	t.Helper()
	sk, err := paillier.GenerateKey(rand.New(rand.NewSource(79)), 256)
	if err != nil {
		t.Fatal(err)
	}
	r := &relay{opts: Options{
		ListenS1: "x", ListenS2: "x", UpstreamS1: "x", UpstreamS2: "x",
		RelayID: 7, Users: users, Instances: instances, Classes: classes,
		BatchSize: batch, Packed: p,
	}.withDefaults()}
	return newSide(r, "s1", sk.Public(), "x")
}

// packedFrame encodes a packed submission frame with an arbitrary declared
// layout (hostile frames get to lie about classes, width and perVec).
func packedFrame(t *testing.T, user, instance, classes, width, perVec int, val int64) *transport.Message {
	t.Helper()
	msg, err := EncodePackedHalf(user, instance, classes, width, testHalf(perVec, val))
	if err != nil {
		t.Fatal(err)
	}
	return msg
}

// rejectedCount reads the relay rejection counter for one reason (global
// and cumulative, so tests diff against a snapshot).
func rejectedCount(reason string) int64 {
	return obs.Default.CounterValue("privconsensus_relay_rejected_total",
		obs.L("side", "s1"), obs.L("reason", reason))
}

// TestRelayPackedValidationReasons drives hostile packed user frames
// through a packed relay: a frame whose declared width cannot absorb even
// one contribution is slot-overflow, a layout that disagrees with the
// relay's is bad-width, and an unpacked frame on a packed relay is a mode
// mismatch (bad-frame). Each rejection must also tick
// privconsensus_relay_rejected_total under its reason.
func TestRelayPackedValidationReasons(t *testing.T) {
	p := &PackedParams{Width: 20, PerVec: 2, Headroom: 10}
	s := testPackedSide(t, 4, 2, 4, 3, p)
	cases := []struct {
		name   string
		msg    *transport.Message
		reason string
	}{
		{"mode-mismatch", userFrame(t, 0, 0, 4, 5), "bad-frame"},
		{"unknown-user", packedFrame(t, 9, 0, 4, 20, 2, 5), "unknown-user"},
		{"bad-instance", packedFrame(t, 0, 5, 4, 20, 2, 5), "bad-instance"},
		{"wrong-pervec", packedFrame(t, 0, 0, 4, 20, 3, 5), "bad-length"},
		// Width 10 equals the headroom: Capacity(10) = 0, so the frame
		// could not hold even its own user's contribution.
		{"slot-overflow", packedFrame(t, 0, 0, 4, 10, 2, 5), "slot-overflow"},
		{"wrong-width", packedFrame(t, 0, 0, 4, 21, 2, 5), "bad-width"},
		{"wrong-classes", packedFrame(t, 0, 0, 5, 20, 2, 5), "bad-width"},
	}
	for _, tc := range cases {
		before := rejectedCount(tc.reason)
		b, err := s.addUser(tc.msg)
		if b != nil {
			t.Errorf("%s: sealed a batch from a hostile frame", tc.name)
		}
		if got := rejectReason(t, err); got != tc.reason {
			t.Errorf("%s: reason = %q, want %q", tc.name, got, tc.reason)
		}
		if after := rejectedCount(tc.reason); after != before+1 {
			t.Errorf("%s: rejection counter %q moved %d -> %d, want +1", tc.name, tc.reason, before, after)
		}
	}
	// A layout-conforming frame is accepted — the hostile ones above did
	// not poison the pipeline.
	if _, err := s.addUser(packedFrame(t, 0, 0, 4, 20, 2, 5)); err != nil {
		t.Errorf("conforming packed frame rejected: %v", err)
	}
}

// TestRelayUnpackedRejectsPackedFrame is the mode mismatch in the other
// direction: an unpacked relay must refuse KindPacked frames as bad-frame
// rather than misparse them.
func TestRelayUnpackedRejectsPackedFrame(t *testing.T) {
	s, _ := testSide(t, 4, 1, 2, 3)
	if _, err := s.addUser(packedFrame(t, 0, 0, 2, 20, 2, 5)); rejectReason(t, err) != "bad-frame" {
		t.Errorf("packed frame on unpacked relay: %v", err)
	}
}

// TestRelayPackedChildValidation drives hostile packed combined batches
// through a packed mid-tier relay: a batch claiming more members than any
// slot of its declared width could have absorbed is slot-overflow, a
// disagreeing layout is bad-width, and an unpacked combined frame is a
// mode mismatch. All are acked BatchRejected so the child stops resending.
func TestRelayPackedChildValidation(t *testing.T) {
	p := &PackedParams{Width: 20, PerVec: 2, Headroom: 10}
	s := testPackedSide(t, 8, 1, 4, 100, p)
	packedChild := func(seq int64, bitmap int64, classes, width, perVec int) *transport.Message {
		t.Helper()
		msg, err := EncodePackedCombined(Combined{
			Relay: 3, Seq: seq, Instance: 0, Bitmap: big.NewInt(bitmap),
			Half: testHalf(perVec, 5), Width: width, Classes: classes,
		})
		if err != nil {
			t.Fatal(err)
		}
		return msg
	}
	cases := []struct {
		name   string
		msg    *transport.Message
		reason string
	}{
		{"wrong-pervec", packedChild(0, 0b11, 4, 20, 3), "bad-length"},
		// Width 11 absorbs Capacity(11) = 2 contributions; a bitmap
		// naming three members overflowed its own declared slots.
		{"slot-overflow", packedChild(1, 0b111, 4, 11, 2), "slot-overflow"},
		{"wrong-width", packedChild(2, 0b11, 4, 21, 2), "bad-width"},
		{"wrong-classes", packedChild(3, 0b11, 5, 20, 2), "bad-width"},
	}
	// Mode mismatch: an unpacked combined frame (Width = 0) on a packed
	// relay.
	unpacked, err := EncodeCombined(Combined{Relay: 3, Seq: 4, Instance: 0,
		Bitmap: big.NewInt(0b11), Half: testHalf(4, 5)})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		name   string
		msg    *transport.Message
		reason string
	}{"mode-mismatch", unpacked, "bad-frame"})

	for _, tc := range cases {
		before := rejectedCount(tc.reason)
		b, status, err := s.addChild(tc.msg)
		if b != nil {
			t.Errorf("%s: sealed a batch from a hostile child frame", tc.name)
		}
		if status != BatchRejected {
			t.Errorf("%s: ack status = %d, want BatchRejected", tc.name, status)
		}
		if got := rejectReason(t, err); got != tc.reason {
			t.Errorf("%s: reason = %q, want %q", tc.name, got, tc.reason)
		}
		if after := rejectedCount(tc.reason); after != before+1 {
			t.Errorf("%s: rejection counter %q moved %d -> %d, want +1", tc.name, tc.reason, before, after)
		}
	}
	// A conforming packed child batch still merges after the hostility.
	if _, status, err := s.addChild(packedChild(9, 0b11, 4, 20, 2)); err != nil || status != BatchAccepted {
		t.Errorf("conforming packed child batch refused: %v (status %d)", err, status)
	}
	// And the other mode mismatch: a packed combined frame on an unpacked
	// relay.
	u, _ := testSide(t, 8, 1, 4, 100)
	if _, status, err := u.addChild(packedChild(0, 0b11, 4, 20, 2)); rejectReason(t, err) != "bad-frame" || status != BatchRejected {
		t.Errorf("packed child batch on unpacked relay: %v (status %d)", err, status)
	}
}
