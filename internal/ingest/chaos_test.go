package ingest_test

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/deploy"
	"github.com/privconsensus/privconsensus/internal/ingest"
	"github.com/privconsensus/privconsensus/internal/keystore"
	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// relayChaosFaultSpec injects bounded delays into the surviving relay's
// accepted connections, so the re-homed uploads cross the fault injector
// without making the run nondeterministic (delays reorder nothing).
const relayChaosFaultSpec = "seed=9,delay=0.2,delay-ms=2,max=10"

// chaosUserFrames builds one user's two submission frames with
// deterministic randomness, so the direct and tree runs carry byte-identical
// submissions.
func chaosUserFrames(t *testing.T, cfg protocol.Config, pub *keystore.PublicFile, u, label int) (toS1, toS2 *transport.Message) {
	t.Helper()
	units := make([]*big.Int, cfg.Classes)
	for i := range units {
		units[i] = big.NewInt(0)
	}
	units[label] = big.NewInt(protocol.VoteScale)
	sub, _, err := protocol.BuildSubmission(rand.New(rand.NewSource(int64(900+u))),
		rand.New(rand.NewSource(int64(950+u))), cfg, u, units, pub.PK1, pub.PK2)
	if err != nil {
		t.Fatal(err)
	}
	encode := func(h protocol.SubmissionHalf) *transport.Message {
		if cfg.Packing {
			f, err := ingest.EncodePackedHalf(u, 0, cfg.Classes, cfg.PackedWidth(), h)
			if err != nil {
				t.Fatal(err)
			}
			return f
		}
		f, err := ingest.EncodeHalf(u, 0, h)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	return encode(sub.ToS1), encode(sub.ToS2)
}

// chaosServers starts the full S1/S2 protocol servers in partial mode and
// returns their addresses and report channels.
func chaosServers(ctx context.Context, t *testing.T, s1File *keystore.S1File, s2File *keystore.S2File,
	quorum float64, deadline time.Duration, j1, j2 string) (s1Addr, s2Addr string, s1Done, s2Done chan chaosReport) {
	t.Helper()
	s1Ready := make(chan string, 1)
	s2Ready := make(chan string, 1)
	s1Done = make(chan chaosReport, 1)
	s2Done = make(chan chaosReport, 1)
	base := deploy.ServerOptions{
		ListenAddr:     "127.0.0.1:0",
		Instances:      1,
		MaxRetries:     3,
		Backoff:        5 * time.Millisecond,
		AttemptTimeout: 30 * time.Second,
		Quorum:         quorum,
		SubmitDeadline: deadline,
	}
	go func() {
		opts := base
		opts.Seed = 601
		opts.Ready = s1Ready
		opts.JournalPath = j1
		rep, err := deploy.RunS1Report(ctx, s1File, opts)
		s1Done <- chaosReport{rep, err}
	}()
	s1Addr = <-s1Ready
	go func() {
		opts := base
		opts.Seed = 602
		opts.Ready = s2Ready
		opts.PeerAddr = s1Addr
		opts.JournalPath = j2
		rep, err := deploy.RunS2Report(ctx, s2File, opts)
		s2Done <- chaosReport{rep, err}
	}()
	s2Addr = <-s2Ready
	return s1Addr, s2Addr, s1Done, s2Done
}

type chaosReport struct {
	rep *deploy.Report
	err error
}

// uploadVia delivers one user's frames through the given endpoint lists
// (primary first), returning the uploader re-home counts.
func uploadVia(ctx context.Context, t *testing.T, f1, f2 *transport.Message, user int, eps1, eps2 []string) int {
	t.Helper()
	rehomes := 0
	for i, d := range []struct {
		frame *transport.Message
		eps   []string
	}{{f1, eps1}, {f2, eps2}} {
		up := &ingest.Uploader{Endpoints: d.eps, MaxRetries: 1, Backoff: 5 * time.Millisecond,
			AttemptTimeout: 5 * time.Second}
		if err := up.Send(ctx, d.frame); err != nil {
			t.Fatalf("user %d side %d send: %v", user, i, err)
		}
		if err := up.Confirm(ctx, int64(user)); err != nil {
			t.Fatalf("user %d side %d confirm: %v", user, i, err)
		}
		up.Close()
		rehomes += up.Rehomes
	}
	return rehomes
}

// acceptedBatches reads the server-side accepted relay-batch counter (the
// registry is global and cumulative, so callers diff against a snapshot).
func acceptedBatches() int64 {
	return obs.Default.CounterValue("privconsensus_relay_batches_total", obs.L("outcome", "accepted"))
}

// TestChaosRelayRehoming kills one of two relays mid-window and asserts the
// ingestion tree degrades, not fails: the surviving relay absorbs the
// re-homed leaves, both servers reach quorum with the same participant set
// as a direct no-failure run, and the consensus outcome and δ correction
// are identical — byte-determinism of the pre-sum under failure.
func TestChaosRelayRehoming(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos relay test is slow in -short mode")
	}
	const (
		users   = 6
		present = 5 // user 5 never submits, so δ != 0
		label   = 1
	)
	// ThresholdFrac 0.6 over 6 users makes the per-user T/2 offsets divide
	// unevenly, so the 5-participant δ correction is nonzero and journaled.
	s1File, s2File, pub, cfg := testSetupFrac(t, users, 0.6)
	journalDir := os.Getenv("CHAOS_JOURNAL_DIR")
	if journalDir == "" {
		journalDir = t.TempDir()
	} else if err := os.MkdirAll(journalDir, 0o755); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	runTree := func(mode string) (*deploy.Report, *deploy.Report) {
		j1 := filepath.Join(journalDir, fmt.Sprintf("ingest-%s-s1.jsonl", mode))
		j2 := filepath.Join(journalDir, fmt.Sprintf("ingest-%s-s2.jsonl", mode))
		s1Addr, s2Addr, s1Done, s2Done := chaosServers(ctx, t, s1File, s2File, present, 6*time.Second, j1, j2)

		if mode == "direct" {
			for u := 0; u < present; u++ {
				f1, f2 := chaosUserFrames(t, cfg, pub, u, label)
				uploadVia(ctx, t, f1, f2, u, []string{s1Addr}, []string{s2Addr})
			}
		} else {
			relayOpts := func(id int64, fault string) ingest.Options {
				return ingest.Options{
					UpstreamS1: s1Addr, UpstreamS2: s2Addr, RelayID: id,
					Users: users, Instances: 1, Classes: cfg.Classes,
					PK1: pub.PK1, PK2: pub.PK2, Packed: packedRelay(cfg),
					BatchSize: 1, FlushInterval: 10 * time.Millisecond,
					MaxRetries: 2, Backoff: 5 * time.Millisecond,
					Seed: id, FaultSpec: fault,
					JournalPath: filepath.Join(journalDir, fmt.Sprintf("ingest-relay%d.jsonl", id)),
				}
			}
			aCtx, killA := context.WithCancel(ctx)
			defer killA()
			a1, a2, aErr := startRelay(aCtx, t, relayOpts(1, ""))
			b1, b2, _ := startRelay(ctx, t, relayOpts(2, relayChaosFaultSpec))

			// Phase 1: three leaves homed on relay A; wait until their
			// batches are acked upstream, so killing A loses nothing.
			base := acceptedBatches()
			for u := 0; u < 3; u++ {
				f1, f2 := chaosUserFrames(t, cfg, pub, u, label)
				uploadVia(ctx, t, f1, f2, u, []string{a1, b1}, []string{a2, b2})
			}
			deadlineAt := time.Now().Add(5 * time.Second)
			for acceptedBatches() < base+6 {
				if time.Now().After(deadlineAt) {
					t.Fatalf("relay A forwarded %d of 6 batches before the kill window", acceptedBatches()-base)
				}
				time.Sleep(5 * time.Millisecond)
			}
			// Relay A dies mid-window.
			killA()
			<-aErr

			// Phase 2: the remaining leaves still list A first and must
			// re-home to the sibling B.
			rehomed := 0
			for u := 3; u < present; u++ {
				f1, f2 := chaosUserFrames(t, cfg, pub, u, label)
				rehomed += uploadVia(ctx, t, f1, f2, u, []string{a1, b1}, []string{a2, b2})
			}
			if rehomed == 0 {
				t.Error("no uploader re-homed after the relay death")
			}
		}

		r1 := <-s1Done
		r2 := <-s2Done
		if r1.err != nil || r2.err != nil {
			t.Fatalf("%s run: s1 err %v, s2 err %v", mode, r1.err, r2.err)
		}
		for _, j := range []string{j1, j2} {
			if n, err := obs.VerifyJournalFile(j); err != nil || n == 0 {
				t.Errorf("%s: %d records, err %v; the chain must verify", j, n, err)
			}
		}
		return r1.rep, r2.rep
	}

	direct1, direct2 := runTree("direct")
	tree1, tree2 := runTree("tree")

	// The tree (with a mid-window relay death) must be invisible in the
	// outcome: same consensus, same label, same participant count on both
	// servers as the no-relay baseline.
	for _, cmp := range []struct {
		name         string
		base, result *deploy.Report
	}{{"s1", direct1, tree1}, {"s2", direct2, tree2}} {
		b := cmp.base.Results[0]
		r := cmp.result.Results[0]
		if b.Err != nil || r.Err != nil {
			t.Fatalf("%s: instance errors: direct %v, tree %v", cmp.name, b.Err, r.Err)
		}
		if b.Outcome != r.Outcome {
			t.Errorf("%s: tree outcome %+v diverges from direct %+v", cmp.name, r.Outcome, b.Outcome)
		}
		if r.Outcome.Participants != present || !r.Outcome.Consensus || r.Outcome.Label != label {
			t.Errorf("%s: tree outcome %+v, want consensus on label %d with %d participants",
				cmp.name, r.Outcome, label, present)
		}
	}

	// The δ correction applied under partial participation must match
	// between the runs — the relay pre-sums preserved the participant set.
	directDelta := deltaNotes(t, filepath.Join(journalDir, "ingest-direct-s1.jsonl"))
	treeDelta := deltaNotes(t, filepath.Join(journalDir, "ingest-tree-s1.jsonl"))
	if len(directDelta) == 0 {
		t.Fatal("no δ-correction events journaled in the direct run")
	}
	if fmt.Sprint(directDelta) != fmt.Sprint(treeDelta) {
		t.Errorf("δ corrections diverge: direct %v, tree %v", directDelta, treeDelta)
	}

	// The surviving relay's journal must verify and carry forwarded-batch
	// events; the server journals must record the relay-batch ingestions.
	relayJournal := filepath.Join(journalDir, "ingest-relay2.jsonl")
	if n, err := obs.VerifyJournalFile(relayJournal); err != nil || n == 0 {
		t.Fatalf("relay journal: %d records, err %v", n, err)
	}
	if n := countEvents(t, relayJournal, obs.EventRelayBatch); n == 0 {
		t.Error("surviving relay journaled no forwarded batches")
	}
	if n := countEvents(t, filepath.Join(journalDir, "ingest-tree-s1.jsonl"), obs.EventRelayBatch); n == 0 {
		t.Error("S1 journaled no relay-batch ingestions in the tree run")
	}
}

// deltaNotes returns the δ-correction notes of a journal in order.
func deltaNotes(t *testing.T, path string) []string {
	t.Helper()
	evs, err := obs.ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var notes []string
	for _, ev := range evs {
		if ev.Type == obs.EventDelta {
			notes = append(notes, ev.Note)
		}
	}
	return notes
}

// countEvents counts a journal's events of one type.
func countEvents(t *testing.T, path string, typ string) int {
	t.Helper()
	evs, err := obs.ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ev := range evs {
		if ev.Type == typ {
			n++
		}
	}
	return n
}
