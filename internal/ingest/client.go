package ingest

import (
	"context"
	"fmt"
	"time"

	"github.com/privconsensus/privconsensus/internal/transport"
)

// Uploader delivers one user's submission frames to an ingestion endpoint
// with transparent failover. Endpoints are tried in order: the user's
// primary relay first, then siblings, with a direct server address as the
// final fallback. When an endpoint dies mid-upload the uploader re-homes to
// the next one and replays every frame not yet confirmed — the replay is
// safe because relays and servers dedup byte-identical frames (and at worst
// a conflicting overlap is rejected, never double-counted). Re-homing
// degrades ingestion latency, not participation.
type Uploader struct {
	// Endpoints are tried in order; the uploader sticks with one until it
	// exhausts MaxRetries against it.
	Endpoints []string
	// MaxRetries bounds recovery attempts per endpoint beyond the first
	// (default 2).
	MaxRetries int
	// Backoff is the delay before the first retry (default 25ms), doubling
	// per attempt against the same endpoint.
	Backoff time.Duration
	// AttemptTimeout bounds each dial (default 5s).
	AttemptTimeout time.Duration
	// Seed drives dial jitter deterministically.
	Seed int64
	// Logf receives progress lines; nil silences logging.
	Logf func(format string, args ...any)

	// Rehomes counts endpoint failovers performed by this uploader.
	Rehomes int

	conn     transport.Conn
	cur      int
	failures int
	pending  []*transport.Message
}

func (u *Uploader) log(format string, args ...any) {
	if u.Logf != nil {
		u.Logf(format, args...)
	}
}

func (u *Uploader) backoff() time.Duration {
	if u.Backoff > 0 {
		return u.Backoff
	}
	return 25 * time.Millisecond
}

func (u *Uploader) maxRetries() int {
	if u.MaxRetries > 0 {
		return u.MaxRetries
	}
	return 2
}

// connect dials the current endpoint and identifies as a user.
func (u *Uploader) connect(ctx context.Context) error {
	timeout := u.AttemptTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	d := transport.Dialer{Attempts: 1, AttemptTimeout: timeout, Seed: u.Seed}
	conn, err := d.Dial(ctx, u.Endpoints[u.cur])
	if err != nil {
		return err
	}
	if err := SendHello(ctx, conn, PartyUser, 0); err != nil {
		conn.Close()
		return err
	}
	u.conn = conn
	return nil
}

// recover re-establishes a connection, advancing to the next endpoint
// (re-homing) once the current one exhausts its retry budget, and replays
// every unconfirmed frame.
func (u *Uploader) recover(ctx context.Context) error {
	if len(u.Endpoints) == 0 {
		return fmt.Errorf("ingest: uploader has no endpoints")
	}
	for {
		if u.failures > u.maxRetries() {
			if u.cur+1 >= len(u.Endpoints) {
				return transport.MarkFatal(fmt.Errorf("ingest: all %d ingestion endpoints exhausted", len(u.Endpoints)))
			}
			u.cur++
			u.failures = 0
			u.Rehomes++
			rehomesTotal().Inc()
			u.log("uploader: re-homing to %s", u.Endpoints[u.cur])
		}
		if u.failures > 0 {
			select {
			case <-time.After(u.backoff() << uint(u.failures-1)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		err := u.connect(ctx)
		if err == nil {
			err = u.replay(ctx)
		}
		if err == nil {
			return nil
		}
		if u.conn != nil {
			u.conn.Close()
			u.conn = nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		u.failures++
		u.log("uploader: attempt against %s failed: %v", u.Endpoints[u.cur], err)
	}
}

// replay resends every unconfirmed frame on the fresh connection.
func (u *Uploader) replay(ctx context.Context) error {
	for _, msg := range u.pending {
		if err := u.conn.Send(ctx, msg); err != nil {
			return err
		}
	}
	return nil
}

// Send queues the frames as unconfirmed and delivers them, recovering (and
// re-homing if needed) on connection errors. Frames stay in the replay
// buffer until Confirm succeeds.
func (u *Uploader) Send(ctx context.Context, msgs ...*transport.Message) error {
	for _, msg := range msgs {
		u.pending = append(u.pending, msg)
		if u.conn != nil {
			if err := u.conn.Send(ctx, msg); err == nil {
				continue
			}
			u.conn.Close()
			u.conn = nil
			u.failures++
		}
		// recover replays all pending frames, including msg.
		if err := u.recover(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Confirm performs the done/ack exchange: once the endpoint acks, every
// frame sent so far is durably held by it and the replay buffer is cleared.
func (u *Uploader) Confirm(ctx context.Context, user int64) error {
	for {
		err := u.confirmOnce(ctx, user)
		if err == nil {
			u.pending = u.pending[:0]
			u.failures = 0
			return nil
		}
		if u.conn != nil {
			u.conn.Close()
			u.conn = nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		u.failures++
		if rerr := u.recover(ctx); rerr != nil {
			return rerr
		}
	}
}

func (u *Uploader) confirmOnce(ctx context.Context, user int64) error {
	if u.conn == nil {
		if err := u.recover(ctx); err != nil {
			return err
		}
	}
	done := &transport.Message{Kind: transport.KindControl, Flags: []int64{CtrlUploadDone, user}}
	if err := u.conn.Send(ctx, done); err != nil {
		return err
	}
	msg, err := transport.ExpectKind(ctx, u.conn, transport.KindControl)
	if err != nil {
		return err
	}
	if len(msg.Flags) < 1 || msg.Flags[0] != CtrlUploadAck {
		return fmt.Errorf("ingest: unexpected upload ack %v", msg.Flags)
	}
	return nil
}

// Close releases the connection; unconfirmed frames are forgotten.
func (u *Uploader) Close() {
	if u.conn != nil {
		u.conn.Close()
		u.conn = nil
	}
}
