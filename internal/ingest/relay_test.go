package ingest

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// testSide builds one relay pipeline over a fresh small Paillier key.
func testSide(t *testing.T, users, instances, classes, batch int) (*side, *paillier.PrivateKey) {
	t.Helper()
	sk, err := paillier.GenerateKey(rand.New(rand.NewSource(77)), 256)
	if err != nil {
		t.Fatal(err)
	}
	r := &relay{opts: Options{
		ListenS1: "x", ListenS2: "x", UpstreamS1: "x", UpstreamS2: "x",
		RelayID: 7, Users: users, Instances: instances, Classes: classes,
		BatchSize: batch,
	}.withDefaults()}
	return newSide(r, "s1", sk.Public(), "x"), sk
}

// userFrame encodes a shape-valid submission frame.
func userFrame(t *testing.T, user, instance, classes int, val int64) *transport.Message {
	t.Helper()
	msg, err := EncodeHalf(user, instance, testHalf(classes, val))
	if err != nil {
		t.Fatal(err)
	}
	return msg
}

// rejectReason extracts the rejection reason, failing on any other error
// shape.
func rejectReason(t *testing.T, err error) string {
	t.Helper()
	var re *rejectError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want a rejection", err)
	}
	return re.reason
}

func TestRelayValidationReasons(t *testing.T) {
	s, _ := testSide(t, 4, 2, 2, 3)
	cases := []struct {
		name   string
		msg    *transport.Message
		reason string
	}{
		{"unknown-user", userFrame(t, 9, 0, 2, 5), "unknown-user"},
		{"negative-user", userFrame(t, -1, 0, 2, 5), "unknown-user"},
		{"bad-instance", userFrame(t, 0, 5, 2, 5), "bad-instance"},
		{"bad-length", userFrame(t, 0, 0, 3, 5), "bad-length"},
	}
	for _, tc := range cases {
		b, err := s.addUser(tc.msg)
		if b != nil {
			t.Errorf("%s: sealed a batch from a hostile frame", tc.name)
		}
		if got := rejectReason(t, err); got != tc.reason {
			t.Errorf("%s: reason = %q, want %q", tc.name, got, tc.reason)
		}
	}
	// Out-of-ring: a ciphertext at N² exactly.
	big2 := testHalf(2, 1)
	big2.Votes[0] = &paillier.Ciphertext{C: new(big.Int).Set(s.ring)}
	msg, err := EncodeHalf(0, 0, big2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.addUser(msg); rejectReason(t, err) != "out-of-ring" {
		t.Errorf("out-of-ring frame accepted: %v", err)
	}
	// Undecodable frame.
	if _, err := s.addUser(&transport.Message{Kind: transport.KindShares, Flags: []int64{1}}); rejectReason(t, err) != "bad-frame" {
		t.Errorf("undecodable frame reason: %v", err)
	}
}

func TestRelayUserDedup(t *testing.T) {
	s, _ := testSide(t, 4, 1, 2, 10)
	first := userFrame(t, 1, 0, 2, 5)
	if _, err := s.addUser(first); err != nil {
		t.Fatal(err)
	}
	// Byte-identical replay is tolerated, not re-counted.
	if _, err := s.addUser(userFrame(t, 1, 0, 2, 5)); err != errReplay {
		t.Errorf("replay err = %v, want errReplay", err)
	}
	if n := s.insts[0].open.n; n != 1 {
		t.Errorf("replay inflated the open batch to %d members", n)
	}
	// A conflicting resubmission is a duplicate rejection.
	if _, err := s.addUser(userFrame(t, 1, 0, 2, 6)); rejectReason(t, err) != "duplicate" {
		t.Errorf("conflicting resubmission: %v", err)
	}
}

// TestRelayBatchSealing proves the pre-sum: after BatchSize users the side
// seals a combined frame whose bitmap names exactly the members and whose
// ciphertexts are the homomorphic (modular product) sums of theirs.
func TestRelayBatchSealing(t *testing.T) {
	s, sk := testSide(t, 8, 1, 2, 3)
	pk := sk.Public()
	var halves []protocol.SubmissionHalf
	var b *sealed
	for u := 0; u < 3; u++ {
		h := testHalf(2, int64(u+2))
		halves = append(halves, h)
		msg, err := EncodeHalf(u, 0, h)
		if err != nil {
			t.Fatal(err)
		}
		b, err = s.addUser(msg)
		if err != nil {
			t.Fatal(err)
		}
		if u < 2 && b != nil {
			t.Fatalf("batch sealed early at user %d", u)
		}
	}
	if b == nil {
		t.Fatal("batch did not seal at BatchSize")
	}
	c, err := DecodeCombined(b.msg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Relay != 7 || c.Seq != 0 || c.Users() != 3 || c.Bitmap.Int64() != 0b111 {
		t.Errorf("combined frame = relay %d seq %d bitmap %v", c.Relay, c.Seq, c.Bitmap)
	}
	// Expected sum of class 0 votes: the ciphertext product mod N².
	want := halves[0].Votes[0].Clone()
	for _, h := range halves[1:] {
		want, err = pk.Add(want, h.Votes[0])
		if err != nil {
			t.Fatal(err)
		}
	}
	if c.Half.Votes[0].C.Cmp(want.C) != 0 {
		t.Error("pre-sum differs from the direct homomorphic sum")
	}
	// The side's open state is reset; the next user starts batch seq 1.
	if s.insts[0].open != nil {
		t.Error("open batch not cleared after sealing")
	}
}

func TestRelayChildBatchMergeAndDedup(t *testing.T) {
	s, _ := testSide(t, 8, 1, 2, 100)
	child := Combined{Relay: 3, Seq: 0, Instance: 0, Bitmap: big.NewInt(0b11), Half: testHalf(2, 5)}
	msg, err := EncodeCombined(child)
	if err != nil {
		t.Fatal(err)
	}
	if _, status, err := s.addChild(msg); err != nil || status != BatchAccepted {
		t.Fatalf("child batch refused: %v (status %d)", err, status)
	}
	if s.insts[0].open.n != 2 || s.insts[0].covered.Int64() != 0b11 {
		t.Errorf("merge state: n=%d covered=%v", s.insts[0].open.n, s.insts[0].covered)
	}
	// Byte-identical replay: acked accepted, not re-merged.
	if _, status, err := s.addChild(msg); err != errReplay || status != BatchAccepted {
		t.Errorf("replay: err=%v status=%d", err, status)
	}
	if s.insts[0].open.n != 2 {
		t.Error("replay re-merged the batch")
	}
	// Conflicting reuse of the same (relay, seq) identity.
	conflict, _ := EncodeCombined(Combined{Relay: 3, Seq: 0, Instance: 0, Bitmap: big.NewInt(0b100), Half: testHalf(2, 9)})
	if _, status, err := s.addChild(conflict); rejectReason(t, err) != "duplicate" || status != BatchRejected {
		t.Errorf("conflicting identity: err=%v status=%d", err, status)
	}
	// Overlapping membership under a fresh identity.
	overlap, _ := EncodeCombined(Combined{Relay: 3, Seq: 1, Instance: 0, Bitmap: big.NewInt(0b110), Half: testHalf(2, 9)})
	if _, status, err := s.addChild(overlap); rejectReason(t, err) != "overlap" || status != BatchRejected {
		t.Errorf("overlapping batch: err=%v status=%d", err, status)
	}
	// Bitmap naming users beyond the grid.
	wide, _ := EncodeCombined(Combined{Relay: 3, Seq: 2, Instance: 0, Bitmap: new(big.Int).Lsh(big.NewInt(1), 20), Half: testHalf(2, 9)})
	if _, _, err := s.addChild(wide); rejectReason(t, err) != "unknown-user" {
		t.Errorf("wide bitmap: %v", err)
	}
}

func TestRelayOptionValidation(t *testing.T) {
	sk, err := paillier.GenerateKey(rand.New(rand.NewSource(78)), 256)
	if err != nil {
		t.Fatal(err)
	}
	pk := sk.Public()
	good := Options{ListenS1: "a", ListenS2: "b", UpstreamS1: "c", UpstreamS2: "d",
		Users: 1, Instances: 1, Classes: 2, PK1: pk, PK2: pk}
	if err := good.withDefaults().validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	for name, mut := range map[string]func(*Options){
		"no-listen":   func(o *Options) { o.ListenS1 = "" },
		"no-upstream": func(o *Options) { o.UpstreamS2 = "" },
		"no-users":    func(o *Options) { o.Users = 0 },
		"no-keys":     func(o *Options) { o.PK1 = nil },
	} {
		o := good
		mut(&o)
		if err := o.withDefaults().validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
