package ingest

import "github.com/privconsensus/privconsensus/internal/obs"

// Relay metric families. side is the destination server the traffic is
// bound for ("s1"/"s2"): each relay runs one independent pipeline per side.

// relayUsers counts user submission frames a relay accepted into a batch.
func relayUsers(side string) *obs.Counter {
	return obs.Default.Counter("privconsensus_relay_users_total",
		"User submission frames accepted into a relay batch.",
		obs.L("side", side))
}

// relayRejected counts frames a relay refused, by the same reason
// vocabulary the servers use (unknown-user, bad-instance, bad-length,
// out-of-ring, duplicate) plus the relay-specific overlap and bad-frame.
func relayRejected(side, reason string) *obs.Counter {
	return obs.Default.Counter("privconsensus_relay_rejected_total",
		"Frames rejected by relay-side validation.",
		obs.L("side", side), obs.L("reason", reason))
}

// relayBatchesOut counts combined frames a relay forwarded upstream, by
// outcome: acked (accepted upstream), rejected (upstream validation said
// no) or dropped (retry budget exhausted).
func relayBatchesOut(side, outcome string) *obs.Counter {
	return obs.Default.Counter("privconsensus_relay_batches_out_total",
		"Combined frames forwarded upstream by a relay.",
		obs.L("side", side), obs.L("outcome", outcome))
}

// relayBatchesIn counts combined frames a relay received from child relays,
// by outcome: accepted, replay (tolerated duplicate) or rejected.
func relayBatchesIn(side, outcome string) *obs.Counter {
	return obs.Default.Counter("privconsensus_relay_batches_in_total",
		"Combined frames received from child relays.",
		obs.L("side", side), obs.L("outcome", outcome))
}

// relayForwardRetries counts upstream delivery retries (reconnects and
// resends after a lost ack).
func relayForwardRetries(side string) *obs.Counter {
	return obs.Default.Counter("privconsensus_relay_forward_retries_total",
		"Upstream batch delivery retries.",
		obs.L("side", side))
}

// rehomesTotal counts uploader failovers to the next endpoint in its list —
// a leaf re-homing away from a dead relay.
func rehomesTotal() *obs.Counter {
	return obs.Default.Counter("privconsensus_rehomes_total",
		"Uploader failovers to a sibling endpoint after exhausting retries.")
}
