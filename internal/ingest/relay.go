package ingest

import (
	"context"
	"fmt"
	"math/big"
	"sync"
	"time"

	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// Options configures one relay node. A relay mirrors the two-server split:
// it listens on two addresses — one for frames bound for S1 (encrypted
// under pk2), one for frames bound for S2 (encrypted under pk1) — and
// forwards each side's combined batches to the matching upstream, which is
// either the server itself (two-level tree) or a parent relay (three-level
// tree).
type Options struct {
	// ListenS1/ListenS2 accept user and child-relay frames bound for the
	// respective server.
	ListenS1 string
	ListenS2 string
	// UpstreamS1/UpstreamS2 are the parent addresses the combined frames
	// are forwarded to.
	UpstreamS1 string
	UpstreamS2 string
	// RelayID identifies this relay in combined frames and acks. Every
	// relay in a tree must use a distinct ID.
	RelayID int64
	// Users, Instances and Classes bound the validation grid, exactly as
	// on the servers.
	Users     int
	Instances int
	Classes   int
	// PK1 and PK2 are the servers' Paillier public keys. Frames bound for
	// S1 are encrypted under pk2 and pre-summed with it; frames bound for
	// S2 under pk1.
	PK1 *paillier.PublicKey
	PK2 *paillier.PublicKey
	// Packed, when non-nil, switches the relay to slot-packed frames:
	// only KindPacked frames matching this layout are accepted (unpacked
	// frames are rejected as bad-frame, and vice versa when nil), and
	// combined batches are forwarded packed. Derive the fields from the
	// protocol config: Width = PackedWidth(), PerVec = PackedCiphertexts(),
	// Headroom = PackedHeadroomBits().
	Packed *PackedParams
	// BatchSize seals a batch after this many users (default 64).
	BatchSize int
	// FlushInterval seals a non-empty open batch at least this often
	// (default 50ms), bounding the latency a quorum deadline can lose to
	// batching.
	FlushInterval time.Duration
	// MaxRetries bounds upstream delivery attempts per batch beyond the
	// first (default 2). A batch that exhausts the budget is dropped and
	// counted; its users are expected to re-home.
	MaxRetries int
	// Backoff is the delay before the first upstream retry (default
	// 50ms), doubling per retry.
	Backoff time.Duration
	// AttemptTimeout bounds each upstream dial (default 10s).
	AttemptTimeout time.Duration
	// FaultSpec, when non-empty, injects deterministic faults into every
	// accepted connection (see transport.ParseFaultSpec). Testing only.
	FaultSpec string
	// JournalPath, when non-empty, appends relay lifecycle events
	// (rejections, forwarded batches) to a hash-chained JSONL journal.
	JournalPath string
	// Seed drives retry jitter deterministically.
	Seed int64
	// Logf receives progress lines; nil silences logging.
	Logf func(format string, args ...any)
	// ReadyS1/ReadyS2, when non-nil, receive the bound listen addresses
	// once the relay is accepting (lets tests use port 0).
	ReadyS1 chan<- string
	ReadyS2 chan<- string
}

// PackedParams is the slot layout a packed-mode relay validates frames
// against without needing any key material beyond the public keys.
type PackedParams struct {
	// Width is the expected slot width in bits.
	Width int
	// PerVec is the expected packed ciphertext count per sequence.
	PerVec int
	// Headroom is the per-slot bit budget reserved above the user count:
	// the bias bits plus the blinding bits plus carry guards. A slot of
	// width W absorbs at most 2^(W-Headroom) per-user contributions
	// before a sum can overflow into the neighbouring slot.
	Headroom int
}

// Capacity returns how many per-user contributions a slot of the declared
// width can absorb without overflow, given the configured headroom.
func (p *PackedParams) Capacity(width int) int {
	sh := width - p.Headroom
	switch {
	case sh <= 0:
		return 0
	case sh >= 31:
		return 1 << 30 // far beyond any supported user count
	default:
		return 1 << sh
	}
}

// withDefaults resolves option defaults.
func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 50 * time.Millisecond
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 10 * time.Second
	}
	return o
}

// validate checks the options.
func (o Options) validate() error {
	if o.ListenS1 == "" || o.ListenS2 == "" {
		return fmt.Errorf("ingest: relay needs both listen addresses")
	}
	if o.UpstreamS1 == "" || o.UpstreamS2 == "" {
		return fmt.Errorf("ingest: relay needs both upstream addresses")
	}
	if o.Users < 1 || o.Instances < 1 || o.Classes < 2 {
		return fmt.Errorf("ingest: relay needs users >= 1, instances >= 1, classes >= 2 (got %d/%d/%d)",
			o.Users, o.Instances, o.Classes)
	}
	if o.PK1 == nil || o.PK2 == nil {
		return fmt.Errorf("ingest: relay needs both server public keys")
	}
	if p := o.Packed; p != nil {
		if p.Width < 1 || p.PerVec < 1 || p.Headroom < 1 || p.Headroom >= p.Width {
			return fmt.Errorf("ingest: relay packed layout needs 1 <= headroom < width and perVec >= 1 (got width=%d perVec=%d headroom=%d)",
				p.Width, p.PerVec, p.Headroom)
		}
		if o.Users > p.Capacity(p.Width) {
			return fmt.Errorf("ingest: relay packed layout width %d cannot absorb %d users", p.Width, o.Users)
		}
	}
	return nil
}

// log emits a progress line when a sink is configured.
func (o Options) log(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Relay is one running relay node.
type relay struct {
	opts    Options
	journal *obs.Journal
	sides   [2]*side
}

// sealed is one batch ready for upstream delivery.
type sealed struct {
	instance int
	seq      int64
	users    int
	msg      *transport.Message
}

// childKey identifies a child relay's batch for replay dedup.
type childKey struct {
	relay int64
	seq   int64
}

// openBatch accumulates the running homomorphic sums of one instance's
// in-progress batch.
type openBatch struct {
	bm   *big.Int
	sums [3][]*paillier.Ciphertext // votes, thresh, noisy
	n    int
}

// sideInstance is one instance's ingestion state on one side.
type sideInstance struct {
	// covered has bit u set iff user u's frame (direct or via a child
	// batch) is already summed into some batch on this side.
	covered *big.Int
	// digests keys replay dedup for directly-ingested users. Child-batch
	// members have no per-user digest; the covered bit alone rejects a
	// second identity for them.
	digests map[int][32]byte
	open    *openBatch
}

// side is one destination pipeline of a relay (everything bound for S1, or
// everything bound for S2).
type side struct {
	name     string // "s1" or "s2"
	pk       *paillier.PublicKey
	ring     *big.Int
	upstream string
	r        *relay

	mu        sync.Mutex
	insts     []*sideInstance
	nextSeq   int64
	childSeen map[childKey][32]byte

	out chan *sealed
}

// newSide builds one destination pipeline.
func newSide(r *relay, name string, pk *paillier.PublicKey, upstream string) *side {
	s := &side{
		name:      name,
		pk:        pk,
		ring:      pk.N2,
		upstream:  upstream,
		r:         r,
		insts:     make([]*sideInstance, r.opts.Instances),
		childSeen: make(map[childKey][32]byte),
		out:       make(chan *sealed, 256),
	}
	for i := range s.insts {
		s.insts[i] = &sideInstance{covered: new(big.Int), digests: make(map[int][32]byte)}
	}
	return s
}

// errRejected marks a frame refused by relay-side validation; the serving
// loop counts it and keeps the connection.
type rejectError struct {
	reason string
	err    error
}

func (e *rejectError) Error() string {
	return fmt.Sprintf("ingest: rejected (%s): %v", e.reason, e.err)
}
func (e *rejectError) Unwrap() error { return e.err }

// errReplay marks a tolerated byte-identical duplicate: not an error, not
// new data.
var errReplay = fmt.Errorf("ingest: duplicate frame replayed")

// reject counts and journals one refused frame.
func (s *side) reject(reason string, err error) error {
	relayRejected(s.name, reason).Inc()
	s.r.journalEvent(obs.Event{Type: obs.EventRejection, Instance: -1, Note: reason})
	return &rejectError{reason: reason, err: err}
}

// ringCheck verifies every ciphertext of a half lives in [0, N²).
func (s *side) ringCheck(half [3][]*paillier.Ciphertext) bool {
	for _, group := range half {
		for _, ct := range group {
			if ct == nil || ct.C == nil || ct.C.Sign() < 0 || ct.C.Cmp(s.ring) >= 0 {
				return false
			}
		}
	}
	return true
}

// addUser validates one directly-submitted user frame and folds it into the
// instance's open batch, sealing the batch when it reaches BatchSize. The
// validation order mirrors the server collector exactly: identity and shape
// first, ring membership, then exact-once semantics.
func (s *side) addUser(msg *transport.Message) (*sealed, error) {
	opts := s.r.opts
	var (
		user, instance int
		classes, width int
		half           protocol.SubmissionHalf
		err            error
	)
	if opts.Packed != nil {
		user, instance, classes, width, half, err = DecodePackedHalf(msg)
	} else {
		user, instance, half, err = DecodeHalf(msg)
		classes = len(half.Votes)
	}
	if err != nil {
		return nil, s.reject("bad-frame", err)
	}
	if user < 0 || user >= opts.Users {
		return nil, s.reject("unknown-user", fmt.Errorf("user index %d outside [0, %d)", user, opts.Users))
	}
	if instance < 0 || instance >= opts.Instances {
		return nil, s.reject("bad-instance", fmt.Errorf("instance index %d outside [0, %d)", instance, opts.Instances))
	}
	if p := opts.Packed; p != nil {
		if len(half.Votes) != p.PerVec {
			return nil, s.reject("bad-length", fmt.Errorf("packed submission has %d ciphertexts, want %d", len(half.Votes), p.PerVec))
		}
		// The frame's own declared width must leave room for at least one
		// contribution above the headroom before we even compare layouts.
		if p.Capacity(width) < 1 {
			return nil, s.reject("slot-overflow", fmt.Errorf("declared slot width %d leaves no room above %d headroom bits", width, p.Headroom))
		}
		if classes != opts.Classes || width != p.Width {
			return nil, s.reject("bad-width", fmt.Errorf("packed layout %d classes x %d bits, want %d x %d",
				classes, width, opts.Classes, p.Width))
		}
	} else if classes != opts.Classes {
		return nil, s.reject("bad-length", fmt.Errorf("submission has %d classes, want %d", classes, opts.Classes))
	}
	if !s.ringCheck([3][]*paillier.Ciphertext{half.Votes, half.Thresh, half.Noisy}) {
		return nil, s.reject("out-of-ring", fmt.Errorf("user %d instance %d ciphertext outside [0, N²)", user, instance))
	}
	digest := FrameDigest(msg)

	s.mu.Lock()
	inst := s.insts[instance]
	if inst.covered.Bit(user) == 1 {
		prev, direct := inst.digests[user]
		s.mu.Unlock()
		if direct && prev == digest {
			return nil, errReplay // idempotent retransmission after a reconnect
		}
		return nil, s.reject("duplicate", fmt.Errorf("conflicting resubmission from user %d for instance %d (first write wins)", user, instance))
	}
	bm := new(big.Int).SetBit(new(big.Int), user, 1)
	if err := s.mergeLocked(inst, bm, half, 1); err != nil {
		s.mu.Unlock()
		return nil, s.reject("bad-frame", err)
	}
	inst.digests[user] = digest
	out := s.maybeSealLocked(instance, inst, false)
	s.mu.Unlock()
	relayUsers(s.name).Inc()
	return out, nil
}

// addChild validates one child relay's combined frame and merges it into
// the instance's open batch. The returned ack status distinguishes a
// tolerated replay (acked again, not re-counted) from fresh data.
func (s *side) addChild(msg *transport.Message) (*sealed, int64, error) {
	opts := s.r.opts
	c, err := decodeChild(msg)
	if err != nil {
		relayBatchesIn(s.name, "rejected").Inc()
		return nil, BatchRejected, s.reject("bad-frame", err)
	}
	if (opts.Packed != nil) != (c.Width > 0) {
		relayBatchesIn(s.name, "rejected").Inc()
		return nil, BatchRejected, s.reject("bad-frame",
			fmt.Errorf("combined frame packing mode mismatch (frame packed=%v, relay packed=%v)", c.Width > 0, opts.Packed != nil))
	}
	if c.Instance < 0 || c.Instance >= opts.Instances {
		relayBatchesIn(s.name, "rejected").Inc()
		return nil, BatchRejected, s.reject("bad-instance", fmt.Errorf("instance index %d outside [0, %d)", c.Instance, opts.Instances))
	}
	if p := opts.Packed; p != nil {
		if len(c.Half.Votes) != p.PerVec {
			relayBatchesIn(s.name, "rejected").Inc()
			return nil, BatchRejected, s.reject("bad-length", fmt.Errorf("packed combined frame has %d ciphertexts, want %d", len(c.Half.Votes), p.PerVec))
		}
		// Overflow capacity is judged against the frame's own declared
		// width first: a batch claiming more members than any slot of
		// that width could have absorbed is structurally invalid even
		// before the layout comparison.
		if c.Users() > p.Capacity(c.Width) {
			relayBatchesIn(s.name, "rejected").Inc()
			return nil, BatchRejected, s.reject("slot-overflow",
				fmt.Errorf("batch relay=%d seq=%d sums %d users but width %d absorbs at most %d", c.Relay, c.Seq, c.Users(), c.Width, p.Capacity(c.Width)))
		}
		if c.Classes != opts.Classes || c.Width != p.Width {
			relayBatchesIn(s.name, "rejected").Inc()
			return nil, BatchRejected, s.reject("bad-width", fmt.Errorf("packed layout %d classes x %d bits, want %d x %d",
				c.Classes, c.Width, opts.Classes, p.Width))
		}
	} else if len(c.Half.Votes) != opts.Classes {
		relayBatchesIn(s.name, "rejected").Inc()
		return nil, BatchRejected, s.reject("bad-length", fmt.Errorf("combined frame has %d classes, want %d", len(c.Half.Votes), opts.Classes))
	}
	if c.Bitmap.BitLen() > opts.Users {
		relayBatchesIn(s.name, "rejected").Inc()
		return nil, BatchRejected, s.reject("unknown-user", fmt.Errorf("bitmap names users beyond [0, %d)", opts.Users))
	}
	if !s.ringCheck([3][]*paillier.Ciphertext{c.Half.Votes, c.Half.Thresh, c.Half.Noisy}) {
		relayBatchesIn(s.name, "rejected").Inc()
		return nil, BatchRejected, s.reject("out-of-ring", fmt.Errorf("relay %d seq %d ciphertext outside [0, N²)", c.Relay, c.Seq))
	}
	digest := FrameDigest(msg)
	key := childKey{relay: c.Relay, seq: c.Seq}

	s.mu.Lock()
	if prev, ok := s.childSeen[key]; ok {
		s.mu.Unlock()
		if prev == digest {
			relayBatchesIn(s.name, "replay").Inc()
			return nil, BatchAccepted, errReplay
		}
		relayBatchesIn(s.name, "rejected").Inc()
		return nil, BatchRejected, s.reject("duplicate", fmt.Errorf("conflicting reuse of batch identity relay=%d seq=%d", c.Relay, c.Seq))
	}
	inst := s.insts[c.Instance]
	if new(big.Int).And(inst.covered, c.Bitmap).Sign() != 0 {
		s.mu.Unlock()
		relayBatchesIn(s.name, "rejected").Inc()
		return nil, BatchRejected, s.reject("overlap", fmt.Errorf("batch relay=%d seq=%d repeats already-covered users", c.Relay, c.Seq))
	}
	if err := s.mergeLocked(inst, c.Bitmap, c.Half, c.Users()); err != nil {
		s.mu.Unlock()
		relayBatchesIn(s.name, "rejected").Inc()
		return nil, BatchRejected, s.reject("bad-frame", err)
	}
	s.childSeen[key] = digest
	out := s.maybeSealLocked(c.Instance, inst, false)
	s.mu.Unlock()
	relayBatchesIn(s.name, "accepted").Inc()
	return out, BatchAccepted, nil
}

// mergeLocked folds a (bitmap, half, weight) unit into the instance's open
// batch. Caller holds s.mu. weight is the number of users the unit covers.
func (s *side) mergeLocked(inst *sideInstance, bm *big.Int, half protocol.SubmissionHalf, weight int) error {
	if inst.open == nil {
		inst.open = &openBatch{bm: new(big.Int)}
	}
	o := inst.open
	fields := [3][]*paillier.Ciphertext{half.Votes, half.Thresh, half.Noisy}
	// One scratch big.Int serves every fold of this frame: the
	// accumulators are private to the open batch, so in-place AddInto
	// avoids the two allocations per element that Add would make.
	scratch := new(big.Int)
	for fi, vec := range fields {
		if o.sums[fi] == nil {
			acc := make([]*paillier.Ciphertext, len(vec))
			for i, ct := range vec {
				acc[i] = ct.Clone()
			}
			o.sums[fi] = acc
			continue
		}
		for i, ct := range vec {
			if err := s.pk.AddInto(o.sums[fi][i], ct, scratch); err != nil {
				return fmt.Errorf("ingest: pre-sum class %d: %w", i, err)
			}
		}
	}
	o.bm.Or(o.bm, bm)
	o.n += weight
	inst.covered.Or(inst.covered, bm)
	return nil
}

// maybeSealLocked seals the instance's open batch when it reached
// BatchSize (or unconditionally with force). Caller holds s.mu; the caller
// pushes the returned batch outside the lock.
func (s *side) maybeSealLocked(instance int, inst *sideInstance, force bool) *sealed {
	o := inst.open
	if o == nil || o.n == 0 || (!force && o.n < s.r.opts.BatchSize) {
		return nil
	}
	inst.open = nil
	seq := s.nextSeq
	s.nextSeq++
	c := Combined{
		Relay:    s.r.opts.RelayID,
		Seq:      seq,
		Instance: instance,
		Bitmap:   o.bm,
		Half:     protocol.SubmissionHalf{Votes: o.sums[0], Thresh: o.sums[1], Noisy: o.sums[2]},
	}
	var msg *transport.Message
	var err error
	if p := s.r.opts.Packed; p != nil {
		c.Width = p.Width
		c.Classes = s.r.opts.Classes
		msg, err = EncodePackedCombined(c)
	} else {
		msg, err = EncodeCombined(c)
	}
	if err != nil {
		// Unreachable for batches built from validated frames.
		s.r.opts.log("relay %d: seal failed: %v", s.r.opts.RelayID, err)
		return nil
	}
	return &sealed{instance: instance, seq: seq, users: o.n, msg: msg}
}

// push hands a sealed batch to the forwarder, bounded by ctx.
func (s *side) push(ctx context.Context, b *sealed) {
	if b == nil {
		return
	}
	select {
	case s.out <- b:
	case <-ctx.Done():
	}
}

// flushLoop seals non-empty open batches every FlushInterval so a trickle
// of users is never stuck behind an unfilled batch.
func (s *side) flushLoop(ctx context.Context) {
	t := time.NewTicker(s.r.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			for i := range s.insts {
				s.mu.Lock()
				b := s.maybeSealLocked(i, s.insts[i], true)
				s.mu.Unlock()
				s.push(ctx, b)
			}
		case <-ctx.Done():
			return
		}
	}
}

// forwardLoop delivers sealed batches upstream in order, lock-step: send
// one combined frame, await its ack, retry on a fresh connection within the
// budget. A batch that exhausts the budget is dropped and counted — its
// users re-home to a sibling relay, which is the degradation the tree
// promises (slower ingestion, not lost participants).
func (s *side) forwardLoop(ctx context.Context) {
	opts := s.r.opts
	var conn transport.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		var b *sealed
		select {
		case b = <-s.out:
		case <-ctx.Done():
			return
		}
		delivered := false
		var status int64
		for attempt := 0; attempt <= opts.MaxRetries && !delivered; attempt++ {
			if attempt > 0 {
				relayForwardRetries(s.name).Inc()
				select {
				case <-time.After(opts.Backoff << uint(attempt-1)):
				case <-ctx.Done():
					return
				}
			}
			if conn == nil {
				c, err := s.dialUpstream(ctx)
				if err != nil {
					opts.log("relay %d/%s: upstream dial failed: %v", opts.RelayID, s.name, err)
					continue
				}
				conn = c
			}
			st, err := s.deliver(ctx, conn, b)
			if err != nil {
				conn.Close()
				conn = nil
				if !transport.IsRetryable(err) {
					opts.log("relay %d/%s: fatal upstream error: %v", opts.RelayID, s.name, err)
					break
				}
				continue
			}
			delivered = true
			status = st
		}
		switch {
		case !delivered:
			relayBatchesOut(s.name, "dropped").Inc()
			opts.log("relay %d/%s: dropped batch seq=%d (%d users) after exhausting retries",
				opts.RelayID, s.name, b.seq, b.users)
		case status == BatchRejected:
			relayBatchesOut(s.name, "rejected").Inc()
			opts.log("relay %d/%s: upstream rejected batch seq=%d (%d users)",
				opts.RelayID, s.name, b.seq, b.users)
		default:
			relayBatchesOut(s.name, "acked").Inc()
			s.r.journalEvent(obs.Event{Type: obs.EventRelayBatch, Instance: b.instance,
				Note: fmt.Sprintf("side=%s seq=%d users=%d", s.name, b.seq, b.users)})
		}
	}
}

// dialUpstream opens and identifies a fresh upstream connection.
func (s *side) dialUpstream(ctx context.Context) (transport.Conn, error) {
	opts := s.r.opts
	d := transport.Dialer{
		Attempts:       1,
		AttemptTimeout: opts.AttemptTimeout,
		Seed:           opts.Seed + opts.RelayID,
	}
	conn, err := d.Dial(ctx, s.upstream)
	if err != nil {
		return nil, err
	}
	caps := CapPresum
	if opts.Packed != nil {
		caps |= CapPacked
	}
	if err := SendHello(ctx, conn, PartyRelay, caps); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// deliver sends one combined frame and awaits its matching ack.
func (s *side) deliver(ctx context.Context, conn transport.Conn, b *sealed) (int64, error) {
	if err := conn.Send(ctx, b.msg); err != nil {
		return 0, err
	}
	msg, err := transport.ExpectKind(ctx, conn, transport.KindControl)
	if err != nil {
		return 0, err
	}
	if len(msg.Flags) != 4 || msg.Flags[0] != CtrlBatchAck ||
		msg.Flags[1] != s.r.opts.RelayID || msg.Flags[2] != b.seq {
		return 0, transport.MarkFatal(fmt.Errorf("ingest: unexpected batch ack %v for seq %d", msg.Flags, b.seq))
	}
	return msg.Flags[3], nil
}

// journalEvent appends one relay journal record; failures are logged, never
// fatal.
func (r *relay) journalEvent(ev obs.Event) {
	if r.journal == nil {
		return
	}
	if err := r.journal.Append(ev); err != nil {
		r.opts.log("relay %d: journal append failed: %v", r.opts.RelayID, err)
	}
}

// serve drains frames from one accepted connection into the side's
// pipeline. Users send 3-flag submit frames and optional done/ack
// exchanges; child relays send 5-flag combined frames, each acked.
func (s *side) serve(ctx context.Context, conn transport.Conn) {
	defer conn.Close()
	if _, _, err := RecvHello(ctx, conn); err != nil {
		s.r.opts.log("relay %d/%s: dropping connection with bad hello: %v", s.r.opts.RelayID, s.name, err)
		return
	}
	for {
		msg, err := conn.Recv(ctx)
		if err != nil {
			return // normal end of stream
		}
		switch {
		case msg.Kind == transport.KindControl && len(msg.Flags) >= 1 && msg.Flags[0] == CtrlUploadDone:
			user := int64(-1)
			if len(msg.Flags) >= 2 {
				user = msg.Flags[1]
			}
			ack := &transport.Message{Kind: transport.KindControl, Flags: []int64{CtrlUploadAck, user}}
			if err := conn.Send(ctx, ack); err != nil {
				return
			}
		case (msg.Kind == transport.KindShares && len(msg.Flags) == 5) ||
			(msg.Kind == transport.KindPacked && len(msg.Flags) == 7):
			c, errc := decodeChild(msg)
			b, status, err := s.addChild(msg)
			s.push(ctx, b)
			if errc != nil {
				// Undecodable child batches cannot be acked (no identity);
				// drop the frame, keep the connection.
				continue
			}
			if err != nil && err != errReplay {
				if _, ok := err.(*rejectError); !ok {
					return
				}
			}
			ack := &transport.Message{Kind: transport.KindControl,
				Flags: []int64{CtrlBatchAck, c.Relay, c.Seq, status}}
			if err := conn.Send(ctx, ack); err != nil {
				return
			}
		default:
			b, err := s.addUser(msg)
			s.push(ctx, b)
			if err != nil && err != errReplay {
				if _, ok := err.(*rejectError); !ok {
					s.r.opts.log("relay %d/%s: connection error: %v", s.r.opts.RelayID, s.name, err)
					return
				}
			}
		}
	}
}

// Run starts one relay node and blocks until ctx is cancelled or a
// listener fails. Batches still buffered when ctx ends are dropped — the
// relay is stateless by design; users that were never acked re-home.
func Run(ctx context.Context, opts Options) error {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return err
	}
	r := &relay{opts: opts}
	if opts.JournalPath != "" {
		j, err := obs.OpenJournal(opts.JournalPath, obs.JournalOptions{Role: fmt.Sprintf("relay%d", opts.RelayID)})
		if err != nil {
			return err
		}
		r.journal = j
		defer j.Close()
	}
	var inj *transport.FaultInjector
	if opts.FaultSpec != "" {
		spec, err := transport.ParseFaultSpec(opts.FaultSpec)
		if err != nil {
			return err
		}
		if spec.Enabled() {
			inj = transport.NewFaultInjector(spec)
		}
	}

	r.sides[0] = newSide(r, "s1", opts.PK2, opts.UpstreamS1)
	r.sides[1] = newSide(r, "s2", opts.PK1, opts.UpstreamS2)

	listens := [2]string{opts.ListenS1, opts.ListenS2}
	readies := [2]chan<- string{opts.ReadyS1, opts.ReadyS2}
	listeners := make([]*transport.Listener, 2)
	for i := range listeners {
		l, err := transport.Listen(listens[i])
		if err != nil {
			for _, prev := range listeners[:i] {
				prev.Close()
			}
			return err
		}
		l.SetFaults(inj)
		listeners[i] = l
		if readies[i] != nil {
			readies[i] <- l.Addr()
		}
	}
	opts.log("relay %d listening on %s (s1) and %s (s2)", opts.RelayID, listeners[0].Addr(), listeners[1].Addr())

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	acceptErr := make(chan error, 2)
	for i, s := range r.sides {
		wg.Add(2)
		go func(s *side) { defer wg.Done(); s.flushLoop(runCtx) }(s)
		go func(s *side) { defer wg.Done(); s.forwardLoop(runCtx) }(s)
		go func(l *transport.Listener, s *side) {
			for {
				conn, err := l.Accept()
				if err != nil {
					select {
					case <-runCtx.Done():
					default:
						select {
						case acceptErr <- fmt.Errorf("ingest: relay accept: %w", err):
						default:
						}
					}
					return
				}
				wg.Add(1)
				go func() { defer wg.Done(); s.serve(runCtx, conn) }()
			}
		}(listeners[i], s)
	}

	var err error
	select {
	case <-ctx.Done():
	case err = <-acceptErr:
	}
	cancel()
	for _, l := range listeners {
		l.Close()
	}
	wg.Wait()
	return err
}
