package ingest

import (
	"math/big"
	"testing"

	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/protocol"
)

// testHalf builds a well-shaped submission half whose ciphertexts all carry
// the given value (shape and ring validation only — no real crypto).
func testHalf(classes int, val int64) protocol.SubmissionHalf {
	group := func() []*paillier.Ciphertext {
		out := make([]*paillier.Ciphertext, classes)
		for i := range out {
			out[i] = &paillier.Ciphertext{C: big.NewInt(val)}
		}
		return out
	}
	return protocol.SubmissionHalf{Votes: group(), Thresh: group(), Noisy: group()}
}

func TestHalfRoundtrip(t *testing.T) {
	h := testHalf(3, 42)
	msg, err := EncodeHalf(5, 2, h)
	if err != nil {
		t.Fatal(err)
	}
	user, instance, got, err := DecodeHalf(msg)
	if err != nil {
		t.Fatal(err)
	}
	if user != 5 || instance != 2 || len(got.Votes) != 3 || got.Votes[0].C.Int64() != 42 {
		t.Errorf("roundtrip = user %d instance %d votes %v", user, instance, got.Votes)
	}
}

func TestCombinedRoundtrip(t *testing.T) {
	bm := big.NewInt(0b1011) // users 0, 1, 3
	c := Combined{Relay: 7, Seq: 12, Instance: 1, Bitmap: bm, Half: testHalf(2, 9)}
	if c.Users() != 3 {
		t.Fatalf("Users() = %d, want 3", c.Users())
	}
	msg, err := EncodeCombined(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCombined(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Relay != 7 || got.Seq != 12 || got.Instance != 1 ||
		got.Bitmap.Cmp(bm) != 0 || len(got.Half.Votes) != 2 {
		t.Errorf("roundtrip = %+v", got)
	}
}

func TestCombinedRejectsMalformedFrames(t *testing.T) {
	good, err := EncodeCombined(Combined{Relay: 1, Seq: 0, Instance: 0,
		Bitmap: big.NewInt(0b11), Half: testHalf(2, 5)})
	if err != nil {
		t.Fatal(err)
	}
	// Declared member count diverging from the bitmap population.
	bad := *good
	bad.Flags = append([]int64(nil), good.Flags...)
	bad.Flags[4] = 5
	if _, err := DecodeCombined(&bad); err == nil {
		t.Error("count/popcount mismatch accepted")
	}
	// Wrong flag arity (a per-user submit frame is not a combined frame).
	user, _ := EncodeHalf(0, 0, testHalf(2, 5))
	if _, err := DecodeCombined(user); err == nil {
		t.Error("3-flag user frame decoded as combined")
	}
	// Empty bitmap refused at encode time.
	if _, err := EncodeCombined(Combined{Relay: 1, Bitmap: new(big.Int), Half: testHalf(2, 5)}); err == nil {
		t.Error("empty bitmap encoded")
	}
	// Truncated values.
	bad2 := *good
	bad2.Values = good.Values[:3]
	if _, err := DecodeCombined(&bad2); err == nil {
		t.Error("truncated combined frame accepted")
	}
}

func TestFrameDigestDetectsTampering(t *testing.T) {
	msg, err := EncodeHalf(0, 0, testHalf(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	d1 := FrameDigest(msg)
	if d2 := FrameDigest(msg); d1 != d2 {
		t.Fatal("digest is not deterministic")
	}
	msg2, _ := EncodeHalf(0, 0, testHalf(2, 6))
	if FrameDigest(msg2) == d1 {
		t.Error("distinct frames share a digest")
	}
}

func TestBitmapHelpers(t *testing.T) {
	bm := big.NewInt(0b101001)
	if popcount(bm) != 3 {
		t.Errorf("popcount = %d, want 3", popcount(bm))
	}
	if popcount(nil) != 0 {
		t.Error("popcount(nil) != 0")
	}
	idx := BitmapIndices(bm, 6)
	want := []int{0, 3, 5}
	if len(idx) != len(want) {
		t.Fatalf("indices = %v, want %v", idx, want)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("indices = %v, want %v", idx, want)
		}
	}
}
