// Package ingest implements the tree-structured aggregator ingestion tier:
// stateless relay nodes that sit between users and the protocol servers,
// validate submission frames with the same hostile-input rules the servers
// apply, homomorphically pre-sum validated batches under the destination
// server's peer public key, and forward one combined submission plus a
// participant bitmap upstream. Because Paillier addition is ciphertext
// multiplication mod N² — commutative and associative — a relay's pre-sum
// aggregates to the byte-identical ciphertext vector the server would have
// computed from the individual frames, so the protocol outcome is exactly
// the direct-ingestion outcome (protocol.Group carries the pre-sum in).
//
// Wire protocol. Relays speak the deploy wire protocol on both ends:
//
//	hello    := Message{Kind: KindControl, Flags: [party (, caps)]}
//	submit   := Message{Kind: KindShares,
//	                    Flags: [user, instance, classes],
//	                    Values: votes || thresh || noisy}        (3K values)
//	combined := Message{Kind: KindShares,
//	                    Flags: [instance, classes, relay, seq, count],
//	                    Values: [bitmap] || votes || thresh || noisy}
//	batchAck := Message{Kind: KindControl,
//	                    Flags: [110, relay, seq, status]}
//
// A relay identifies itself upstream with PartyRelay and the CapPresum
// capability bit; the upstream (a parent relay or a server) acks every
// combined frame so the relay can retransmit over a reconnect. Replays are
// idempotent: a (relay, seq) pair with an identical frame digest is
// tolerated, a conflicting one is rejected first-write-wins.
package ingest

import (
	"context"
	"crypto/sha256"
	"fmt"
	"math/big"
	"math/bits"

	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// Party identifiers in hello frames. PartyUser and PartyPeer mirror the
// deploy package's wire constants; PartyRelay is new with the ingestion
// tier.
const (
	PartyUser  int64 = 1
	PartyPeer  int64 = 2
	PartyRelay int64 = 3
)

// CapPresum is the hello capability bit a relay advertises upstream: the
// connection carries combined (pre-summed) frames and expects per-batch
// acks. An acceptor that does not recognize the bit drops the connection,
// so a relay can never feed a pre-capability server silently.
const CapPresum int64 = 16

// CapPacked is the hello capability bit marking a connection that
// carries slot-packed submission frames (KindPacked grammar below). The
// servers' peer hello also exchanges it so both servers agree on the
// packing mode before any submission is accepted; a mismatch drops the
// connection rather than silently mixing frame grammars.
const CapPacked int64 = 32

// Control codes on the user/relay ingestion path. CtrlUploadDone and
// CtrlUploadAck mirror the deploy session protocol (a relay answers them on
// behalf of the server so resilient user uploads confirm against the relay
// that holds their frames); CtrlBatchAck is new with the ingestion tier.
const (
	CtrlUploadDone int64 = 102
	CtrlUploadAck  int64 = 103
	// CtrlBatchAck confirms one combined frame upstream:
	// Flags [110, relay, seq, status] with status 0 = accepted (or
	// tolerated replay), 1 = rejected by upstream validation.
	CtrlBatchAck int64 = 110
)

// Batch ack statuses (Flags[3] of a CtrlBatchAck frame).
const (
	BatchAccepted int64 = 0
	BatchRejected int64 = 1
)

// EncodeHalf packs one user's submission half for one instance into a wire
// message. This is the canonical encoder for the deploy submit frame; the
// deploy package delegates here.
func EncodeHalf(user, instance int, h protocol.SubmissionHalf) (*transport.Message, error) {
	k := len(h.Votes)
	if k == 0 || len(h.Thresh) != k || len(h.Noisy) != k {
		return nil, fmt.Errorf("ingest: malformed submission half (%d/%d/%d ciphertexts)",
			len(h.Votes), len(h.Thresh), len(h.Noisy))
	}
	values := make([]*big.Int, 0, 3*k)
	for _, group := range [][]*paillier.Ciphertext{h.Votes, h.Thresh, h.Noisy} {
		for _, c := range group {
			if c == nil || c.C == nil {
				return nil, fmt.Errorf("ingest: nil ciphertext in submission")
			}
			values = append(values, c.C)
		}
	}
	return &transport.Message{
		Kind:   transport.KindShares,
		Flags:  []int64{int64(user), int64(instance), int64(k)},
		Values: values,
	}, nil
}

// DecodeHalf unpacks a wire submission frame.
func DecodeHalf(msg *transport.Message) (user, instance int, half protocol.SubmissionHalf, err error) {
	if msg.Kind != transport.KindShares || len(msg.Flags) != 3 {
		return 0, 0, half, fmt.Errorf("ingest: malformed submission frame")
	}
	k := int(msg.Flags[2])
	if k <= 0 || len(msg.Values) != 3*k {
		return 0, 0, half, fmt.Errorf("ingest: submission frame has %d values for %d classes", len(msg.Values), k)
	}
	half.Votes = toCiphertexts(msg.Values[:k])
	half.Thresh = toCiphertexts(msg.Values[k : 2*k])
	half.Noisy = toCiphertexts(msg.Values[2*k:])
	return int(msg.Flags[0]), int(msg.Flags[1]), half, nil
}

// EncodePackedHalf packs one user's slot-packed submission half into its
// wire frame: Flags [user, instance, classes, width, perVec] and 3*perVec
// packed ciphertexts. classes and width describe the slot layout so
// relays can validate shape and overflow capacity without key material.
func EncodePackedHalf(user, instance, classes, width int, h protocol.SubmissionHalf) (*transport.Message, error) {
	p := len(h.Votes)
	if p == 0 || len(h.Thresh) != p || len(h.Noisy) != p {
		return nil, fmt.Errorf("ingest: malformed packed half (%d/%d/%d ciphertexts)",
			len(h.Votes), len(h.Thresh), len(h.Noisy))
	}
	if classes < 2 || width < 1 {
		return nil, fmt.Errorf("ingest: packed half needs classes >= 2 and width >= 1 (got %d/%d)", classes, width)
	}
	values := make([]*big.Int, 0, 3*p)
	for _, group := range [][]*paillier.Ciphertext{h.Votes, h.Thresh, h.Noisy} {
		for _, c := range group {
			if c == nil || c.C == nil {
				return nil, fmt.Errorf("ingest: nil ciphertext in packed submission")
			}
			values = append(values, c.C)
		}
	}
	return &transport.Message{
		Kind:   transport.KindPacked,
		Flags:  []int64{int64(user), int64(instance), int64(classes), int64(width), int64(p)},
		Values: values,
	}, nil
}

// DecodePackedHalf unpacks a packed wire submission frame.
func DecodePackedHalf(msg *transport.Message) (user, instance, classes, width int, half protocol.SubmissionHalf, err error) {
	if msg.Kind != transport.KindPacked || len(msg.Flags) != 5 {
		return 0, 0, 0, 0, half, fmt.Errorf("ingest: malformed packed submission frame")
	}
	classes = int(msg.Flags[2])
	width = int(msg.Flags[3])
	p := int(msg.Flags[4])
	if classes < 2 || width < 1 || p <= 0 || len(msg.Values) != 3*p {
		return 0, 0, 0, 0, half, fmt.Errorf("ingest: packed frame has %d values for %d packed ciphertexts", len(msg.Values), p)
	}
	half.Votes = toCiphertexts(msg.Values[:p])
	half.Thresh = toCiphertexts(msg.Values[p : 2*p])
	half.Noisy = toCiphertexts(msg.Values[2*p:])
	return int(msg.Flags[0]), int(msg.Flags[1]), classes, width, half, nil
}

// toCiphertexts wraps raw wire values as ciphertexts (unvalidated; ring
// membership is the collector's job).
func toCiphertexts(vs []*big.Int) []*paillier.Ciphertext {
	out := make([]*paillier.Ciphertext, len(vs))
	for i, v := range vs {
		out[i] = &paillier.Ciphertext{C: v}
	}
	return out
}

// Combined is one relay batch: the homomorphic sum of the bitmap members'
// submission halves for one instance, attested by relay Relay with
// per-relay sequence number Seq.
type Combined struct {
	Relay    int64
	Seq      int64
	Instance int
	// Bitmap has bit u set iff user u's validated frame is summed into
	// Half.
	Bitmap *big.Int
	Half   protocol.SubmissionHalf
	// Width > 0 marks Half as slot-packed with that slot width; Classes
	// then carries the logical class count K (len(Half.Votes) is the
	// packed ciphertext count P). Unpacked frames leave Width zero.
	Width   int
	Classes int
}

// Users returns the number of members in the batch.
func (c Combined) Users() int { return popcount(c.Bitmap) }

// EncodeCombined packs a relay batch into its wire frame. The frame is
// distinguished from a per-user submit frame by its flag count (5 vs 3).
func EncodeCombined(c Combined) (*transport.Message, error) {
	k := len(c.Half.Votes)
	if k == 0 || len(c.Half.Thresh) != k || len(c.Half.Noisy) != k {
		return nil, fmt.Errorf("ingest: malformed combined half (%d/%d/%d ciphertexts)",
			len(c.Half.Votes), len(c.Half.Thresh), len(c.Half.Noisy))
	}
	if c.Bitmap == nil || c.Bitmap.Sign() <= 0 {
		return nil, fmt.Errorf("ingest: combined frame needs a non-empty participant bitmap")
	}
	values := make([]*big.Int, 0, 1+3*k)
	values = append(values, c.Bitmap)
	for _, group := range [][]*paillier.Ciphertext{c.Half.Votes, c.Half.Thresh, c.Half.Noisy} {
		for _, ct := range group {
			if ct == nil || ct.C == nil {
				return nil, fmt.Errorf("ingest: nil ciphertext in combined frame")
			}
			values = append(values, ct.C)
		}
	}
	return &transport.Message{
		Kind:   transport.KindShares,
		Flags:  []int64{int64(c.Instance), int64(k), c.Relay, c.Seq, int64(popcount(c.Bitmap))},
		Values: values,
	}, nil
}

// DecodeCombined unpacks and shape-checks a combined frame. The declared
// member count must match the bitmap population — a mismatch means the
// frame was corrupted or forged.
func DecodeCombined(msg *transport.Message) (Combined, error) {
	var c Combined
	if msg.Kind != transport.KindShares || len(msg.Flags) != 5 {
		return c, fmt.Errorf("ingest: malformed combined frame")
	}
	k := int(msg.Flags[1])
	if k <= 0 || len(msg.Values) != 1+3*k {
		return c, fmt.Errorf("ingest: combined frame has %d values for %d classes", len(msg.Values), k)
	}
	bm := msg.Values[0]
	if bm == nil || bm.Sign() <= 0 {
		return c, fmt.Errorf("ingest: combined frame bitmap is empty or negative")
	}
	if want := int(msg.Flags[4]); popcount(bm) != want {
		return c, fmt.Errorf("ingest: combined frame declares %d members but bitmap has %d", want, popcount(bm))
	}
	c.Instance = int(msg.Flags[0])
	c.Relay = msg.Flags[2]
	c.Seq = msg.Flags[3]
	c.Bitmap = bm
	c.Classes = k
	cts := msg.Values[1:]
	c.Half.Votes = toCiphertexts(cts[:k])
	c.Half.Thresh = toCiphertexts(cts[k : 2*k])
	c.Half.Noisy = toCiphertexts(cts[2*k:])
	return c, nil
}

// EncodePackedCombined packs a slot-packed relay batch into its wire
// frame: Flags [instance, classes, relay, seq, count, width, perVec]
// and bitmap + 3*perVec values. The 7-flag arity distinguishes it from
// a 5-flag packed per-user submit frame.
func EncodePackedCombined(c Combined) (*transport.Message, error) {
	p := len(c.Half.Votes)
	if p == 0 || len(c.Half.Thresh) != p || len(c.Half.Noisy) != p {
		return nil, fmt.Errorf("ingest: malformed packed combined half (%d/%d/%d ciphertexts)",
			len(c.Half.Votes), len(c.Half.Thresh), len(c.Half.Noisy))
	}
	if c.Width < 1 || c.Classes < 2 {
		return nil, fmt.Errorf("ingest: packed combined frame needs width >= 1 and classes >= 2 (got %d/%d)", c.Width, c.Classes)
	}
	if c.Bitmap == nil || c.Bitmap.Sign() <= 0 {
		return nil, fmt.Errorf("ingest: packed combined frame needs a non-empty participant bitmap")
	}
	values := make([]*big.Int, 0, 1+3*p)
	values = append(values, c.Bitmap)
	for _, group := range [][]*paillier.Ciphertext{c.Half.Votes, c.Half.Thresh, c.Half.Noisy} {
		for _, ct := range group {
			if ct == nil || ct.C == nil {
				return nil, fmt.Errorf("ingest: nil ciphertext in packed combined frame")
			}
			values = append(values, ct.C)
		}
	}
	return &transport.Message{
		Kind: transport.KindPacked,
		Flags: []int64{int64(c.Instance), int64(c.Classes), c.Relay, c.Seq,
			int64(popcount(c.Bitmap)), int64(c.Width), int64(p)},
		Values: values,
	}, nil
}

// decodeChild decodes a combined frame in whichever grammar the frame
// kind declares; mode validation against the relay/server configuration
// happens in the caller.
func decodeChild(msg *transport.Message) (Combined, error) {
	if msg.Kind == transport.KindPacked {
		return DecodePackedCombined(msg)
	}
	return DecodeCombined(msg)
}

// DecodePackedCombined unpacks and shape-checks a packed combined frame.
func DecodePackedCombined(msg *transport.Message) (Combined, error) {
	var c Combined
	if msg.Kind != transport.KindPacked || len(msg.Flags) != 7 {
		return c, fmt.Errorf("ingest: malformed packed combined frame")
	}
	k := int(msg.Flags[1])
	width := int(msg.Flags[5])
	p := int(msg.Flags[6])
	if k < 2 || width < 1 || p <= 0 || len(msg.Values) != 1+3*p {
		return c, fmt.Errorf("ingest: packed combined frame has %d values for %d packed ciphertexts", len(msg.Values), p)
	}
	bm := msg.Values[0]
	if bm == nil || bm.Sign() <= 0 {
		return c, fmt.Errorf("ingest: packed combined frame bitmap is empty or negative")
	}
	if want := int(msg.Flags[4]); popcount(bm) != want {
		return c, fmt.Errorf("ingest: packed combined frame declares %d members but bitmap has %d", want, popcount(bm))
	}
	c.Instance = int(msg.Flags[0])
	c.Relay = msg.Flags[2]
	c.Seq = msg.Flags[3]
	c.Bitmap = bm
	c.Classes = k
	c.Width = width
	cts := msg.Values[1:]
	c.Half.Votes = toCiphertexts(cts[:p])
	c.Half.Thresh = toCiphertexts(cts[p : 2*p])
	c.Half.Noisy = toCiphertexts(cts[2*p:])
	return c, nil
}

// FrameDigest is the canonical content digest of one wire frame: SHA-256
// over the frame's codec encoding. Relays and servers key their replay
// dedup on it, so a byte-identical retransmission (after a reconnect) is
// tolerated while a conflicting reuse of the same identity is rejected.
func FrameDigest(msg *transport.Message) [32]byte {
	h := sha256.New()
	// The codec encoding is deterministic; an encode error (nil value)
	// cannot happen for frames that passed Encode*/Decode*.
	_ = transport.WriteMessage(h, msg)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// SendHello identifies this connection's party (and capabilities) to the
// acceptor, in the deploy hello wire format.
func SendHello(ctx context.Context, conn transport.Conn, party, caps int64) error {
	flags := []int64{party}
	if caps != 0 {
		flags = append(flags, caps)
	}
	return conn.Send(ctx, &transport.Message{Kind: transport.KindControl, Flags: flags})
}

// RecvHello reads and validates a hello frame on a relay's ingestion
// listener: users and child relays are welcome, anything else is not.
func RecvHello(ctx context.Context, conn transport.Conn) (party, caps int64, err error) {
	msg, err := transport.ExpectKind(ctx, conn, transport.KindControl)
	if err != nil {
		return 0, 0, fmt.Errorf("ingest: hello: %w", err)
	}
	if len(msg.Flags) < 1 || len(msg.Flags) > 2 ||
		(msg.Flags[0] != PartyUser && msg.Flags[0] != PartyRelay) {
		return 0, 0, fmt.Errorf("ingest: invalid hello frame")
	}
	if len(msg.Flags) == 2 {
		caps = msg.Flags[1]
	}
	return msg.Flags[0], caps, nil
}

// popcount returns the number of set bits in a participant bitmap.
func popcount(bm *big.Int) int {
	if bm == nil {
		return 0
	}
	n := 0
	for _, w := range bm.Bits() {
		n += bits.OnesCount(uint(w))
	}
	return n
}

// BitmapIndices returns the set bit positions below users, ascending.
func BitmapIndices(bm *big.Int, users int) []int {
	out := make([]int, 0, popcount(bm))
	for u := 0; u < users; u++ {
		if bm.Bit(u) == 1 {
			out = append(out, u)
		}
	}
	return out
}
