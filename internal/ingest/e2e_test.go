// End-to-end ingestion-tree tests. The package is ingest_test so it can
// drive the deploy servers (deploy imports ingest, never the reverse).
package ingest_test

import (
	"context"
	"math/big"
	"math/rand"
	"os"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/deploy"
	"github.com/privconsensus/privconsensus/internal/dgk"
	"github.com/privconsensus/privconsensus/internal/ingest"
	"github.com/privconsensus/privconsensus/internal/keystore"
	"github.com/privconsensus/privconsensus/internal/protocol"
)

// testSetup generates key files for a small deployment (mirrors the deploy
// package's test fixture).
func testSetup(t *testing.T, users int) (*keystore.S1File, *keystore.S2File, *keystore.PublicFile, protocol.Config) {
	return testSetupFrac(t, users, 0.5)
}

// testSetupFrac is testSetup with a chosen threshold fraction (awkward
// fractions make the partial-participation δ correction nonzero).
func testSetupFrac(t *testing.T, users int, frac float64) (*keystore.S1File, *keystore.S2File, *keystore.PublicFile, protocol.Config) {
	t.Helper()
	cfg := protocol.DefaultConfig(users)
	cfg.Classes = 4
	cfg.Kappa = 24
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.ThresholdFrac = frac
	cfg.DGK = dgk.Params{NBits: 160, TBits: 32, U: 1009, L: 50}
	// CHAOS_PACKED=1 (the `make chaos-packed` lane) flips the deployment
	// to slot-packed submissions; see the deploy package's testSetup.
	if os.Getenv("CHAOS_PACKED") == "1" {
		cfg.Packing = true
	}
	keys, err := protocol.GenerateKeys(rand.New(rand.NewSource(200)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2, pub, err := keystore.Split(cfg, keys)
	if err != nil {
		t.Fatal(err)
	}
	return s1, s2, pub, cfg
}

// oneHot builds a one-hot float vote vector.
func oneHot(classes, label int) []float64 {
	v := make([]float64, classes)
	v[label] = 1
	return v
}

// packedRelay derives the relay's slot-layout validation parameters from
// the config, or nil when the deployment is unpacked.
func packedRelay(cfg protocol.Config) *ingest.PackedParams {
	if !cfg.Packing {
		return nil
	}
	return &ingest.PackedParams{
		Width:    cfg.PackedWidth(),
		PerVec:   cfg.PackedCiphertexts(),
		Headroom: cfg.PackedHeadroomBits(),
	}
}

// startRelay launches one relay and returns its bound listen addresses.
func startRelay(ctx context.Context, t *testing.T, opts ingest.Options) (s1Addr, s2Addr string, done <-chan error) {
	t.Helper()
	r1 := make(chan string, 1)
	r2 := make(chan string, 1)
	opts.ListenS1 = "127.0.0.1:0"
	opts.ListenS2 = "127.0.0.1:0"
	opts.ReadyS1 = r1
	opts.ReadyS2 = r2
	errCh := make(chan error, 1)
	go func() { errCh <- ingest.Run(ctx, opts) }()
	select {
	case s1Addr = <-r1:
	case err := <-errCh:
		t.Fatalf("relay did not start: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("relay start timed out")
	}
	s2Addr = <-r2
	return s1Addr, s2Addr, errCh
}

// TestTreeIngestionEndToEnd drives 12 users through two relays into the
// servers' ingestion path and asserts both sinks assemble the complete
// participant bitmap — the tree is invisible downstream of the collector.
func TestTreeIngestionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-endpoint ingestion test is slow in -short mode")
	}
	const users = 12
	_, _, pub, cfg := testSetup(t, users)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Sinks: the two servers' ingestion paths, full participation.
	sinkReady := [2]chan string{make(chan string, 1), make(chan string, 1)}
	type sinkResult struct {
		rep *deploy.IngestReport
		err error
	}
	sinkDone := [2]chan sinkResult{make(chan sinkResult, 1), make(chan sinkResult, 1)}
	sinks := []struct {
		role string
		ring *big.Int
	}{
		{"s1", pub.PK2.N2}, // S1 holds halves encrypted under pk2
		{"s2", pub.PK1.N2},
	}
	for i, sk := range sinks {
		i, sk := i, sk
		go func() {
			rep, err := deploy.RunIngest(ctx, sk.role, cfg, sk.ring, deploy.ServerOptions{
				ListenAddr: "127.0.0.1:0", Instances: 1, Ready: sinkReady[i],
			})
			sinkDone[i] <- sinkResult{rep, err}
		}()
	}
	s1Addr := <-sinkReady[0]
	s2Addr := <-sinkReady[1]

	// Two leaf relays splitting the user population.
	relayOpts := func(id int64) ingest.Options {
		return ingest.Options{
			UpstreamS1: s1Addr, UpstreamS2: s2Addr, RelayID: id,
			Users: users, Instances: 1, Classes: cfg.Classes,
			PK1: pub.PK1, PK2: pub.PK2, Packed: packedRelay(cfg),
			BatchSize: 4, FlushInterval: 20 * time.Millisecond, Seed: id,
		}
	}
	relCtx, relCancel := context.WithCancel(ctx)
	defer relCancel()
	a1, a2, _ := startRelay(relCtx, t, relayOpts(1))
	b1, b2, _ := startRelay(relCtx, t, relayOpts(2))

	// Users 0–5 via relay A, 6–11 via relay B, through the standard client.
	for u := 0; u < users; u++ {
		s1, s2 := a1, a2
		if u >= 6 {
			s1, s2 = b1, b2
		}
		err := deploy.SubmitVotes(ctx, pub, deploy.UserOptions{
			User: u, S1Addr: s1, S2Addr: s2, Seed: int64(300 + u), MaxRetries: 2,
		}, [][]float64{oneHot(cfg.Classes, u%cfg.Classes)})
		if err != nil {
			t.Fatalf("user %d: %v", u, err)
		}
	}

	for i := range sinkDone {
		res := <-sinkDone[i]
		if res.err != nil {
			t.Fatalf("sink %d: %v", i, res.err)
		}
		inst := res.rep.Instances[0]
		if inst.Participants != users {
			t.Errorf("sink %d ingested %d of %d users", i, inst.Participants, users)
		}
		for u := 0; u < users; u++ {
			if inst.Bitmap.Bit(u) != 1 {
				t.Errorf("sink %d missing user %d in the participant bitmap", i, u)
			}
		}
	}
}
