package fixedpoint

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeExact(t *testing.T) {
	// Values with at most 16 fractional bits round-trip exactly.
	cases := []float64{0, 1, -1, 0.5, -0.5, 123.25, -4096.0625, 32767.99998474121, -32768}
	for _, c := range cases {
		enc, err := Encode(c)
		if err != nil {
			t.Fatalf("Encode(%g): %v", c, err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%d): %v", enc, err)
		}
		if dec != c {
			t.Errorf("round trip %g -> %d -> %g", c, enc, dec)
		}
	}
}

func TestEncodeRange(t *testing.T) {
	if _, err := Encode(32768); err == nil {
		t.Error("expected error at upper bound")
	}
	if _, err := Encode(-32769); err == nil {
		t.Error("expected error below lower bound")
	}
	if _, err := Encode(math.NaN()); err == nil {
		t.Error("expected error for NaN")
	}
	if _, err := Encode(math.Inf(1)); err == nil {
		t.Error("expected error for +Inf")
	}
	if _, err := Encode(-32768); err != nil {
		t.Errorf("lower bound should be encodable: %v", err)
	}
}

func TestEncodeZeroIsOffset(t *testing.T) {
	enc, err := Encode(0)
	if err != nil {
		t.Fatal(err)
	}
	if enc != Offset {
		t.Fatalf("Encode(0) = %d, want %d", enc, uint64(Offset))
	}
}

func TestEncodeClamped(t *testing.T) {
	if got := EncodeClamped(1e9); got != EncodeClamped(MaxFloat-1e-9) {
		t.Errorf("clamp high: got %d", got)
	}
	low := EncodeClamped(-1e9)
	wantLow, _ := Encode(MinFloat)
	if low != wantLow {
		t.Errorf("clamp low: got %d want %d", low, wantLow)
	}
	if got := EncodeClamped(math.NaN()); got != Offset {
		t.Errorf("NaN should clamp to zero encoding, got %d", got)
	}
}

func TestDecodeRejectsOversize(t *testing.T) {
	if _, err := Decode(1 << 33); err == nil {
		t.Error("expected error for > 32-bit encoded value")
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(raw int32) bool {
		// Map raw int32 into the representable range with 16 fractional bits.
		r := float64(raw) / Scale / 2 // within (-2^15, 2^15)
		enc, err := Encode(r)
		if err != nil {
			return false
		}
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		return math.Abs(dec-r) < 1.0/Scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneQuick(t *testing.T) {
	f := func(a, b int16) bool {
		fa, fb := float64(a)/4, float64(b)/4
		ea, err1 := Encode(fa)
		eb, err2 := Encode(fb)
		if err1 != nil || err2 != nil {
			return false
		}
		if fa < fb {
			return ea < eb
		}
		if fa > fb {
			return ea > eb
		}
		return ea == eb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeVector(t *testing.T) {
	vs, err := EncodeVector([]float64{0, 1.5, -2.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 {
		t.Fatalf("expected 3 elements, got %d", len(vs))
	}
	got, err := DecodeBig(vs[1])
	if err != nil {
		t.Fatal(err)
	}
	if got != 1.5 {
		t.Errorf("DecodeBig = %g, want 1.5", got)
	}
	if _, err := EncodeVector([]float64{1e9}); err == nil {
		t.Error("expected error for out-of-range element")
	}
}

func TestDecodeSum(t *testing.T) {
	vals := []float64{1.5, -0.25, 3}
	sum := new(big.Int)
	for _, v := range vals {
		e, err := EncodeBig(v)
		if err != nil {
			t.Fatal(err)
		}
		sum.Add(sum, e)
	}
	got, err := DecodeSum(sum, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4.25) > 1e-9 {
		t.Errorf("DecodeSum = %g, want 4.25", got)
	}
	if _, err := DecodeSum(sum, -1); err == nil {
		t.Error("expected error for negative count")
	}
}

func TestEncodeUnits(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{0, 0},
		{1, Scale},
		{0.5, Scale / 2},
		{-1, -Scale},
		{-0.25, -Scale / 4},
	}
	for _, c := range cases {
		got, err := EncodeUnits(c.in)
		if err != nil {
			t.Fatalf("EncodeUnits(%g): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("EncodeUnits(%g) = %d, want %d", c.in, got, c.want)
		}
		if back := DecodeUnits(got); back != c.in {
			t.Errorf("DecodeUnits(%d) = %g, want %g", got, back, c.in)
		}
	}
	if _, err := EncodeUnits(1e9); err == nil {
		t.Error("expected range error")
	}
}

func TestEncodeUnitsMatchesPaperEncoding(t *testing.T) {
	// EncodeUnits must be exactly the paper's Eq. (8) minus the 2^31
	// offset for every representable value.
	for _, r := range []float64{0, 0.125, -3.5, 100.0625, -32768} {
		paper, err := Encode(r)
		if err != nil {
			t.Fatal(err)
		}
		units, err := EncodeUnits(r)
		if err != nil {
			t.Fatal(err)
		}
		if units != int64(paper)-Offset {
			t.Errorf("EncodeUnits(%g) = %d, paper form gives %d", r, units, int64(paper)-Offset)
		}
	}
}

func TestDecodeBigRejectsNegative(t *testing.T) {
	if _, err := DecodeBig(big.NewInt(-1)); err == nil {
		t.Error("expected error for negative big value")
	}
}
