// Package fixedpoint converts float predictions to the 32-bit unsigned
// fixed-point integers required by the Paillier/DGK pipeline, following
// Eq. (8) of the paper:
//
//	R^I = R * 2^16 + 2^31,  for R in [-2^15, 2^15)
//
// i.e. 16 fractional bits, a sign offset of 2^31, and saturation at the
// range boundaries. The fractional part below 2^-16 is truncated.
package fixedpoint

import (
	"errors"
	"fmt"
	"math"
	"math/big"
)

const (
	// FracBits is the number of fractional bits retained.
	FracBits = 16
	// Scale is 2^FracBits.
	Scale = 1 << FracBits
	// Offset is the sign offset 2^31 making encoded values non-negative.
	Offset = 1 << 31
	// MinFloat and MaxFloat bound the representable range [-2^15, 2^15).
	MinFloat = -(1 << 15)
	MaxFloat = 1 << 15
	// MaxEncoded is the largest encodable integer (exclusive bound 2^32).
	MaxEncoded = 1<<32 - 1
)

// ErrOutOfRange is returned by Encode for values outside [-2^15, 2^15).
var ErrOutOfRange = errors.New("fixedpoint: value out of range [-2^15, 2^15)")

// Encode converts a float in [-2^15, 2^15) to its fixed-point integer form.
func Encode(r float64) (uint64, error) {
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0, fmt.Errorf("fixedpoint: cannot encode %v", r)
	}
	if r < MinFloat || r >= MaxFloat {
		return 0, fmt.Errorf("%w: %g", ErrOutOfRange, r)
	}
	// Truncate toward negative infinity so the decode is exact for
	// representable values and biased by < 2^-16 otherwise.
	scaled := math.Floor(r * Scale)
	return uint64(int64(scaled) + Offset), nil
}

// EncodeClamped encodes r, saturating values outside the representable range
// instead of failing. NaN encodes as zero.
func EncodeClamped(r float64) uint64 {
	switch {
	case math.IsNaN(r):
		r = 0
	case r < MinFloat:
		r = MinFloat
	case r >= MaxFloat:
		r = math.Nextafter(MaxFloat, 0)
	}
	v, err := Encode(r)
	if err != nil {
		// Unreachable after clamping; return the midpoint encoding of 0.
		return Offset
	}
	return v
}

// Decode converts a fixed-point integer back to its float value.
func Decode(v uint64) (float64, error) {
	if v > MaxEncoded {
		return 0, fmt.Errorf("fixedpoint: encoded value %d exceeds 32 bits", v)
	}
	return float64(int64(v)-Offset) / Scale, nil
}

// EncodeUnits converts a float to signed fixed-point units (R * 2^16,
// truncated) WITHOUT the 2^31 sign offset of Eq. (8). The protocol layer
// uses signed Paillier residues, which handle negative values natively;
// the paper's offset exists only because its pipeline required unsigned
// plaintexts (and must be compensated after every homomorphic sum, cf.
// DecodeSum).
func EncodeUnits(r float64) (int64, error) {
	v, err := Encode(r)
	if err != nil {
		return 0, err
	}
	return int64(v) - Offset, nil
}

// DecodeUnits converts signed fixed-point units back to a float.
func DecodeUnits(units int64) float64 {
	return float64(units) / Scale
}

// EncodeBig encodes r as a big.Int, for direct use in homomorphic plaintexts.
func EncodeBig(r float64) (*big.Int, error) {
	v, err := Encode(r)
	if err != nil {
		return nil, err
	}
	return new(big.Int).SetUint64(v), nil
}

// DecodeBig decodes a big.Int produced by EncodeBig.
func DecodeBig(v *big.Int) (float64, error) {
	if v.Sign() < 0 || !v.IsUint64() {
		return 0, fmt.Errorf("fixedpoint: %v is not a valid encoded value", v)
	}
	return Decode(v.Uint64())
}

// EncodeVector encodes each element of rs. It fails on the first
// out-of-range element.
func EncodeVector(rs []float64) ([]*big.Int, error) {
	out := make([]*big.Int, len(rs))
	for i, r := range rs {
		v, err := EncodeBig(r)
		if err != nil {
			return nil, fmt.Errorf("fixedpoint: element %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// DecodeSum decodes the sum of n encoded values: summing n encodings adds
// n*Offset, which must be removed before scaling down.
func DecodeSum(sum *big.Int, n int) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("fixedpoint: negative addend count %d", n)
	}
	adj := new(big.Int).Sub(sum, new(big.Int).Mul(big.NewInt(Offset), big.NewInt(int64(n))))
	f := new(big.Float).SetInt(adj)
	f.Quo(f, big.NewFloat(Scale))
	out, _ := f.Float64()
	return out, nil
}
