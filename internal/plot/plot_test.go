package plot

import (
	"math"
	"strings"
	"testing"
)

func sampleChart() Chart {
	return Chart{
		Title:  "Accuracy vs users",
		XLabel: "users",
		YLabel: "accuracy",
		Series: []Series{
			{Name: "consensus", X: []float64{10, 25, 50}, Y: []float64{0.8, 0.9, 0.95}},
			{Name: "baseline", X: []float64{10, 25, 50}, Y: []float64{0.75, 0.85, 0.88}},
		},
	}
}

func TestRenderSVGBasics(t *testing.T) {
	out, err := RenderSVG(sampleChart())
	if err != nil {
		t.Fatalf("RenderSVG: %v", err)
	}
	svg := string(out)
	for _, want := range []string{
		"<svg", "</svg>", "Accuracy vs users", "consensus", "baseline",
		"polyline", "circle", "users", "accuracy",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("expected 2 polylines, got %d", strings.Count(svg, "<polyline"))
	}
	// 6 data points total.
	if strings.Count(svg, "<circle") != 6 {
		t.Errorf("expected 6 markers, got %d", strings.Count(svg, "<circle"))
	}
}

func TestRenderSVGValidation(t *testing.T) {
	if _, err := RenderSVG(Chart{Title: "empty"}); err == nil {
		t.Error("expected error for no series")
	}
	bad := sampleChart()
	bad.Series[0].Y = bad.Series[0].Y[:2]
	if _, err := RenderSVG(bad); err == nil {
		t.Error("expected error for mismatched lengths")
	}
	nan := sampleChart()
	nan.Series[0].Y[1] = math.NaN()
	if _, err := RenderSVG(nan); err == nil {
		t.Error("expected error for NaN point")
	}
	inf := sampleChart()
	inf.Series[1].X[0] = math.Inf(1)
	if _, err := RenderSVG(inf); err == nil {
		t.Error("expected error for infinite point")
	}
}

func TestRenderSVGDegenerateRanges(t *testing.T) {
	// Single point and constant series must still render.
	c := Chart{
		Title: "degenerate",
		Series: []Series{
			{Name: "point", X: []float64{5}, Y: []float64{0.5}},
			{Name: "flat", X: []float64{1, 2, 3}, Y: []float64{0.5, 0.5, 0.5}},
		},
	}
	out, err := RenderSVG(c)
	if err != nil {
		t.Fatalf("RenderSVG degenerate: %v", err)
	}
	if !strings.Contains(string(out), "<svg") {
		t.Error("not an SVG")
	}
}

func TestRenderSVGEscapesMarkup(t *testing.T) {
	c := sampleChart()
	c.Title = `<script>alert("x")</script>`
	c.Series[0].Name = "a & b < c"
	out, err := RenderSVG(c)
	if err != nil {
		t.Fatal(err)
	}
	svg := string(out)
	if strings.Contains(svg, "<script>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a &amp; b &lt; c") {
		t.Error("series name not escaped")
	}
}

func TestRenderSVGCustomSize(t *testing.T) {
	c := sampleChart()
	c.Width, c.Height = 800, 600
	out, err := RenderSVG(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `width="800" height="600"`) {
		t.Error("custom size not applied")
	}
}

func TestFormatTick(t *testing.T) {
	if formatTick(12345) != "12345" {
		t.Errorf("large tick: %s", formatTick(12345))
	}
	if formatTick(12.34) != "12.3" {
		t.Errorf("medium tick: %s", formatTick(12.34))
	}
	if formatTick(0.567) != "0.57" {
		t.Errorf("small tick: %s", formatTick(0.567))
	}
}
