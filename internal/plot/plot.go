// Package plot renders the experiment harness's figures as self-contained
// SVG line charts (no dependencies), so `cmd/experiments -svg` can emit
// visual artifacts next to the CSV series.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one polyline.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart describes a figure to render.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height in pixels (0 selects 640x420).
	Width, Height int
}

// palette holds distinguishable line colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// layout constants (pixels).
const (
	marginLeft   = 64
	marginRight  = 16
	marginTop    = 40
	marginBottom = 48
	legendRowH   = 16
)

// RenderSVG draws the chart. Every series must have matching X/Y lengths
// and at least one point.
func RenderSVG(c Chart) ([]byte, error) {
	if len(c.Series) == 0 {
		return nil, fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 420
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			return nil, fmt.Errorf("plot: series %q has %d x / %d y points", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.X[i], 0) || math.IsInf(s.Y[i], 0) {
				return nil, fmt.Errorf("plot: series %q has non-finite point %d", s.Name, i)
			}
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	// Pad degenerate ranges so single points render.
	if maxX == minX {
		maxX, minX = maxX+1, minX-1
	}
	if maxY == minY {
		maxY, minY = maxY+0.5, minY-0.5
	}
	// Add 5% headroom on Y.
	pad := (maxY - minY) * 0.05
	minY, maxY = minY-pad, maxY+pad

	plotW := float64(width - marginLeft - marginRight)
	plotH := float64(height - marginTop - marginBottom)
	toX := func(x float64) float64 { return marginLeft + (x-minX)/(maxX-minX)*plotW }
	toY := func(y float64) float64 { return marginTop + plotH - (y-minY)/(maxY-minY)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>`+"\n", marginLeft, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, height-marginBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, height-marginBottom, width-marginRight, height-marginBottom)

	// Ticks and gridlines: 5 on each axis.
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		px := toX(fx)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n",
			px, marginTop, px, height-marginBottom)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px, height-marginBottom+14, formatTick(fx))

		fy := minY + (maxY-minY)*float64(i)/4
		py := toY(fy)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginLeft, py, width-marginRight, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, py+3, formatTick(fy))
	}

	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
		float64(marginLeft)+plotW/2, height-10, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-size="11" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		float64(marginTop)+plotH/2, float64(marginTop)+plotH/2, escape(c.YLabel))

	// Series polylines, markers and legend.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var points []string
		for i := range s.X {
			points = append(points, fmt.Sprintf("%.1f,%.1f", toX(s.X[i]), toY(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n",
			color, strings.Join(points, " "))
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n",
				toX(s.X[i]), toY(s.Y[i]), color)
		}
		ly := marginTop + 4 + si*legendRowH
		lx := width - marginRight - 170
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly, lx+18, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10">%s</text>`+"\n",
			lx+24, ly+3, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return []byte(b.String()), nil
}

// formatTick renders an axis value compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// escape sanitizes text for SVG embedding.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
