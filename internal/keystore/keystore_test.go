package keystore

import (
	"context"
	"math/big"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/dgk"
	"github.com/privconsensus/privconsensus/internal/protocol"
	"github.com/privconsensus/privconsensus/internal/transport"
)

func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// testConfig returns a small protocol configuration.
func testConfig(users int) protocol.Config {
	cfg := protocol.DefaultConfig(users)
	cfg.Classes = 3
	cfg.Kappa = 24
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.DGK = dgk.Params{NBits: 160, TBits: 32, U: 1009, L: 50}
	return cfg
}

func TestSplitAndViews(t *testing.T) {
	cfg := testConfig(2)
	keys, err := protocol.GenerateKeys(testRNG(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2, pub, err := Split(cfg, keys)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if _, err := s1.KeysS1(); err != nil {
		t.Errorf("KeysS1: %v", err)
	}
	if _, err := s2.KeysS2(); err != nil {
		t.Errorf("KeysS2: %v", err)
	}
	if err := pub.Validate(); err != nil {
		t.Errorf("public validate: %v", err)
	}
	if _, _, _, err := Split(cfg, nil); err == nil {
		t.Error("expected error for nil keys")
	}
	bad := cfg
	bad.Classes = 0
	if _, _, _, err := Split(bad, keys); err == nil {
		t.Error("expected error for invalid config")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := testConfig(2)
	keys, err := protocol.GenerateKeys(testRNG(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2, pub, err := Split(cfg, keys)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s1Path := filepath.Join(dir, "s1.json")
	s2Path := filepath.Join(dir, "s2.json")
	pubPath := filepath.Join(dir, "public.json")
	if err := Save(s1Path, s1, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := Save(s2Path, s2, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := Save(pubPath, pub, 0o644); err != nil {
		t.Fatal(err)
	}

	var s1Back S1File
	var s2Back S2File
	var pubBack PublicFile
	if err := Load(s1Path, &s1Back); err != nil {
		t.Fatal(err)
	}
	if err := Load(s2Path, &s2Back); err != nil {
		t.Fatal(err)
	}
	if err := Load(pubPath, &pubBack); err != nil {
		t.Fatal(err)
	}
	if s1Back.Config.Classes != cfg.Classes || s2Back.Config.Users != cfg.Users {
		t.Error("config not preserved")
	}
	if pubBack.PK1.N.Cmp(keys.S1Paillier.N) != 0 {
		t.Error("pk1 modulus not preserved")
	}
	if pubBack.PK2.N.Cmp(keys.S2Paillier.N) != 0 {
		t.Error("pk2 modulus not preserved")
	}

	// The reloaded keys must actually run the protocol: full Alg. 5 with
	// loaded S1/S2 key material.
	runWithLoadedKeys(t, cfg, &s1Back, &s2Back, &pubBack)
}

// runWithLoadedKeys executes one protocol instance using only reloaded key
// material, proving serialization preserved every derived constant.
func runWithLoadedKeys(t *testing.T, cfg protocol.Config, s1 *S1File, s2 *S2File, pub *PublicFile) {
	t.Helper()
	keys1, err := s1.KeysS1()
	if err != nil {
		t.Fatal(err)
	}
	keys2, err := s2.KeysS2()
	if err != nil {
		t.Fatal(err)
	}

	votes := make([]*big.Int, cfg.Classes)
	for i := range votes {
		votes[i] = big.NewInt(0)
	}
	votes[1] = big.NewInt(protocol.VoteScale)
	subs := make([]protocol.SubmissionHalf, cfg.Users)
	subs2 := make([]protocol.SubmissionHalf, cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		sub, _, err := protocol.BuildSubmission(testRNG(int64(10+u)), testRNG(int64(20+u)), cfg, u, votes, pub.PK1, pub.PK2)
		if err != nil {
			t.Fatal(err)
		}
		subs[u] = sub.ToS1
		subs2[u] = sub.ToS2
	}
	connA, connB := transport.Pair()
	defer connA.Close()
	defer connB.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	type res struct {
		out *protocol.Outcome
		err error
	}
	ch := make(chan res, 1)
	go func() {
		out, err := protocol.RunS1(ctx, testRNG(30), cfg, keys1, connA, subs, nil)
		ch <- res{out, err}
	}()
	out2, err := protocol.RunS2(ctx, testRNG(31), cfg, keys2, connB, subs2, nil)
	if err != nil {
		t.Fatalf("RunS2 with loaded keys: %v", err)
	}
	r1 := <-ch
	if r1.err != nil {
		t.Fatalf("RunS1 with loaded keys: %v", r1.err)
	}
	if !out2.Consensus || out2.Label != 1 {
		t.Fatalf("loaded-key outcome %+v, want consensus on 1", out2)
	}
	_ = r1
}

func TestValidateRejectsBadFiles(t *testing.T) {
	if err := (&S1File{Version: 99}).validate(); err == nil {
		t.Error("expected version error")
	}
	if err := (&S2File{Version: Version}).validate(); err == nil {
		t.Error("expected incomplete-file error")
	}
	if err := (&PublicFile{Version: Version}).Validate(); err == nil {
		t.Error("expected incomplete-bundle error")
	}
	if _, err := (&S1File{Version: Version}).KeysS1(); err == nil {
		t.Error("expected error from incomplete S1 file")
	}
	if _, err := (&S2File{Version: Version}).KeysS2(); err == nil {
		t.Error("expected error from incomplete S2 file")
	}
}

func TestLoadMissingFile(t *testing.T) {
	var f S1File
	if err := Load(filepath.Join(t.TempDir(), "missing.json"), &f); err == nil {
		t.Error("expected error for missing file")
	}
}
