// Package keystore persists protocol key material for the multi-process
// deployment: a dealer generates all keys once (cmd/keygen), each server
// loads only its own view, and users load the public bundle. Files are
// JSON; private-key files should be chmod 0600.
package keystore

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/privconsensus/privconsensus/internal/dgk"
	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/protocol"
)

// Version tags the file format.
const Version = 1

// S1File is the key material server S1 may hold: its own Paillier private
// key, S2's Paillier public key, and the DGK public key.
type S1File struct {
	Version     int                  `json:"version"`
	Config      protocol.Config      `json:"config"`
	Paillier    *paillier.PrivateKey `json:"paillier"`
	PeerPublic  *paillier.PublicKey  `json:"peerPublic"`
	DGKPublic   *dgk.PublicKey       `json:"dgkPublic"`
	Description string               `json:"description,omitempty"`
}

// S2File is the key material server S2 may hold: its own Paillier private
// key, S1's public key, and the full DGK private key.
type S2File struct {
	Version     int                  `json:"version"`
	Config      protocol.Config      `json:"config"`
	Paillier    *paillier.PrivateKey `json:"paillier"`
	PeerPublic  *paillier.PublicKey  `json:"peerPublic"`
	DGK         *dgk.PrivateKey      `json:"dgk"`
	Description string               `json:"description,omitempty"`
}

// PublicFile is the bundle users need: both servers' Paillier public keys.
type PublicFile struct {
	Version int                 `json:"version"`
	Config  protocol.Config     `json:"config"`
	PK1     *paillier.PublicKey `json:"pk1"`
	PK2     *paillier.PublicKey `json:"pk2"`
}

// Split decomposes dealer-generated keys into the three per-party files,
// embedding the protocol configuration so all parties agree on it.
func Split(cfg protocol.Config, keys *protocol.Keys) (*S1File, *S2File, *PublicFile, error) {
	if keys == nil || keys.S1Paillier == nil || keys.S2Paillier == nil || keys.S2DGK == nil {
		return nil, nil, nil, fmt.Errorf("keystore: incomplete key material")
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, nil, err
	}
	s1 := &S1File{
		Version:    Version,
		Config:     cfg,
		Paillier:   keys.S1Paillier,
		PeerPublic: keys.S2Paillier.Public(),
		DGKPublic:  keys.S2DGK.Public(),
	}
	s2 := &S2File{
		Version:    Version,
		Config:     cfg,
		Paillier:   keys.S2Paillier,
		PeerPublic: keys.S1Paillier.Public(),
		DGK:        keys.S2DGK,
	}
	pub := &PublicFile{
		Version: Version,
		Config:  cfg,
		PK1:     keys.S1Paillier.Public(),
		PK2:     keys.S2Paillier.Public(),
	}
	return s1, s2, pub, nil
}

// KeysS1 converts the file into the protocol engine's S1 view.
func (f *S1File) KeysS1() (protocol.KeysS1, error) {
	if err := f.validate(); err != nil {
		return protocol.KeysS1{}, err
	}
	return protocol.KeysS1{Own: f.Paillier, PeerPub: f.PeerPublic, DGKPub: f.DGKPublic}, nil
}

// validate checks file integrity.
func (f *S1File) validate() error {
	if f.Version != Version {
		return fmt.Errorf("keystore: unsupported S1 file version %d", f.Version)
	}
	if f.Paillier == nil || f.PeerPublic == nil || f.DGKPublic == nil {
		return fmt.Errorf("keystore: incomplete S1 key file")
	}
	return nil
}

// KeysS2 converts the file into the protocol engine's S2 view.
func (f *S2File) KeysS2() (protocol.KeysS2, error) {
	if err := f.validate(); err != nil {
		return protocol.KeysS2{}, err
	}
	return protocol.KeysS2{Own: f.Paillier, PeerPub: f.PeerPublic, DGK: f.DGK}, nil
}

// validate checks file integrity.
func (f *S2File) validate() error {
	if f.Version != Version {
		return fmt.Errorf("keystore: unsupported S2 file version %d", f.Version)
	}
	if f.Paillier == nil || f.PeerPublic == nil || f.DGK == nil {
		return fmt.Errorf("keystore: incomplete S2 key file")
	}
	return nil
}

// Validate checks the public bundle.
func (f *PublicFile) Validate() error {
	if f.Version != Version {
		return fmt.Errorf("keystore: unsupported public file version %d", f.Version)
	}
	if f.PK1 == nil || f.PK2 == nil {
		return fmt.Errorf("keystore: incomplete public key bundle")
	}
	return nil
}

// Save writes v as indented JSON to path with the given mode.
func Save(path string, v any, mode os.FileMode) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("keystore: encode %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(data, '\n'), mode); err != nil {
		return fmt.Errorf("keystore: write %s: %w", path, err)
	}
	return nil
}

// Load reads JSON from path into v.
func Load(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("keystore: read %s: %w", path, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("keystore: decode %s: %w", path, err)
	}
	return nil
}
