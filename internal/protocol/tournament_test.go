package protocol

import (
	"context"
	"math/big"
	"math/bits"
	"math/rand"
	"testing"

	"github.com/privconsensus/privconsensus/internal/transport"
)

func TestTournamentRounds(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 10: 4, 16: 4, 17: 5, 32: 5}
	for k, want := range cases {
		if got := tournamentRounds(k); got != want {
			t.Errorf("tournamentRounds(%d) = %d, want %d", k, got, want)
		}
	}
}

// localTournament runs tournamentArgmax with comparisons evaluated locally
// on plaintext values, returning the winner plus the exact comparison and
// round counts.
func localTournament(t *testing.T, cfg Config, values []int64) (winner, comparisons, rounds int) {
	t.Helper()
	seq := make([]*big.Int, len(values))
	for i, v := range values {
		seq[i] = big.NewInt(v)
	}
	sess := &muxSession{par: 1}
	w, err := tournamentArgmax(context.Background(), cfg, sess, seq, false,
		func(_ context.Context, _ transport.Conn, diffs []*big.Int) ([]bool, error) {
			rounds++
			comparisons += len(diffs)
			out := make([]bool, len(diffs))
			for i, d := range diffs {
				out[i] = d.Sign() >= 0
			}
			return out, nil
		})
	if err != nil {
		t.Fatalf("tournamentArgmax: %v", err)
	}
	return w, comparisons, rounds
}

// The bracket must use exactly C-1 comparisons in exactly ceil(log2(C))
// rounds — the tentpole's complexity claim, asserted tightly.
func TestTournamentComparisonAndRoundCounts(t *testing.T) {
	for _, classes := range []int{2, 3, 4, 5, 7, 8, 10, 16, 32, 33} {
		cfg := testConfig(2)
		cfg.Classes = classes
		values := make([]int64, classes)
		for i := range values {
			values[i] = int64((i * 7919) % 1000)
		}
		_, comparisons, rounds := localTournament(t, cfg, values)
		if comparisons != classes-1 {
			t.Errorf("C=%d: %d comparisons, want %d", classes, comparisons, classes-1)
		}
		wantRounds := bits.Len(uint(classes - 1))
		if rounds != wantRounds {
			t.Errorf("C=%d: %d rounds, want %d", classes, rounds, wantRounds)
		}
	}
}

// allPairsWinner evaluates the all-pairs schedule locally: the same >= bits
// argmaxJobs/argmaxWinner would release, folded through winsMatrix.
func allPairsWinner(t *testing.T, cfg Config, values []int64) int {
	t.Helper()
	wins := newWinsMatrix(cfg.Classes)
	for p := 0; p < cfg.Classes; p++ {
		for q := p + 1; q < cfg.Classes; q++ {
			wins.set(p, q, values[p] >= values[q])
		}
	}
	w, err := wins.winner()
	if err != nil {
		t.Fatalf("all-pairs winner: %v", err)
	}
	return w
}

// Selection-layer parity: on identical sequences — ties included — the
// tournament champion must equal the all-pairs winner, since both resolve
// ties to the lowest position. This is what makes the released label
// strategy-independent.
func TestTournamentMatchesAllPairsWithTies(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for _, classes := range []int{2, 3, 4, 5, 8, 10, 17} {
		cfg := testConfig(2)
		cfg.Classes = classes
		for trial := 0; trial < 50; trial++ {
			values := make([]int64, classes)
			for i := range values {
				// Draw from a small range so tied maxima are common.
				values[i] = int64(rng.Intn(4))
			}
			tw, _, _ := localTournament(t, cfg, values)
			aw := allPairsWinner(t, cfg, values)
			if tw != aw {
				t.Fatalf("C=%d values=%v: tournament winner %d != all-pairs winner %d",
					classes, values, tw, aw)
			}
		}
	}
}

// Full-protocol parity: both strategies must release the same label for the
// same inputs and noise draws, at sequential and concurrent parallelism.
// Vote vectors are randomized per trial; aggregated maxima are unique by
// construction (distinct per-class base votes), since with a tied maximum
// each strategy legitimately resolves the tie through its own permutation
// draw.
func TestFullProtocolStrategyParity(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol runs are slow in -short mode")
	}
	cfg := testConfig(5)
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.ThresholdFrac = 0.5
	keys, err := GenerateKeys(testRNG(500), cfg)
	if err != nil {
		t.Fatal(err)
	}
	voteRng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 2; trial++ {
		lead := voteRng.Intn(cfg.Classes)
		votes := make([][]*big.Int, cfg.Users)
		for u := range votes {
			if u < 3 { // majority class
				votes[u] = oneHotVotes(cfg.Classes, lead)
			} else {
				votes[u] = oneHotVotes(cfg.Classes, voteRng.Intn(cfg.Classes))
			}
		}
		for _, par := range []int{1, 4} {
			var labels [2]int
			var consensus [2]bool
			for si, strategy := range []string{StrategyTournament, StrategyAllPairs} {
				scfg := cfg
				scfg.ArgmaxStrategy = strategy
				scfg.Parallelism = par
				subs, _ := buildAll(t, scfg, keys, votes, int64(510+trial))
				out1, out2 := runInstance(t, scfg, keys, subs, nil)
				if *out1 != *out2 {
					t.Fatalf("trial %d par %d %s: servers disagree: %+v vs %+v",
						trial, par, strategy, out1, out2)
				}
				labels[si] = out1.Label
				consensus[si] = out1.Consensus
			}
			if labels[0] != labels[1] || consensus[0] != consensus[1] {
				t.Fatalf("trial %d par %d: tournament released (%v, %d), all-pairs (%v, %d)",
					trial, par, consensus[0], labels[0], consensus[1], labels[1])
			}
			if consensus[0] && labels[0] != lead {
				t.Fatalf("trial %d par %d: released label %d, want majority class %d",
					trial, par, labels[0], lead)
			}
		}
	}
}

// Tied vote vectors through the full crypto path: each strategy must still
// agree across servers and release a label from the tied maximal set.
func TestFullProtocolTiedVotesBothStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol runs are slow in -short mode")
	}
	cfg := testConfig(4)
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.ThresholdFrac = 0.4
	keys, err := GenerateKeys(testRNG(520), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Classes 1 and 2 tie at two votes each.
	votes := [][]*big.Int{
		oneHotVotes(cfg.Classes, 1),
		oneHotVotes(cfg.Classes, 1),
		oneHotVotes(cfg.Classes, 2),
		oneHotVotes(cfg.Classes, 2),
	}
	for _, strategy := range []string{StrategyTournament, StrategyAllPairs} {
		scfg := cfg
		scfg.ArgmaxStrategy = strategy
		subs, _ := buildAll(t, scfg, keys, votes, 521)
		out1, out2 := runInstance(t, scfg, keys, subs, nil)
		if *out1 != *out2 {
			t.Fatalf("%s: servers disagree on tied votes: %+v vs %+v", strategy, out1, out2)
		}
		if !out1.Consensus || (out1.Label != 1 && out1.Label != 2) {
			t.Fatalf("%s: tied outcome %+v, want consensus on class 1 or 2", strategy, out1)
		}
	}
}

// The tournament path with the material pool enabled must reach the same
// decisions.
func TestFullProtocolTournamentWithMaterialPool(t *testing.T) {
	cfg := testConfig(4)
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.ThresholdFrac = 0.5
	cfg.UseDGKPool = true
	keys, err := GenerateKeys(testRNG(530), cfg)
	if err != nil {
		t.Fatal(err)
	}
	votes := [][]*big.Int{
		oneHotVotes(cfg.Classes, 2),
		oneHotVotes(cfg.Classes, 2),
		oneHotVotes(cfg.Classes, 2),
		oneHotVotes(cfg.Classes, 0),
	}
	subs, _ := buildAll(t, cfg, keys, votes, 531)
	out1, out2 := runInstance(t, cfg, keys, subs, nil)
	if *out1 != *out2 || !out1.Consensus || out1.Label != 2 {
		t.Fatalf("material-pool outcome %+v/%+v, want consensus on 2", out1, out2)
	}
}

// Long-lived pools must survive multiple instances (the deploy layer's
// usage pattern: one S2Pools per server process).
func TestRunS2WithPoolsReuse(t *testing.T) {
	cfg := testConfig(3)
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.ThresholdFrac = 0.5
	cfg.UseDGKPool = true
	keys, err := GenerateKeys(testRNG(540), cfg)
	if err != nil {
		t.Fatal(err)
	}
	pools, err := NewS2Pools(cfg, keys.ForS2())
	if err != nil {
		t.Fatal(err)
	}
	if pools == nil {
		t.Fatal("UseDGKPool must build pools")
	}
	defer pools.Close()

	votes := [][]*big.Int{
		oneHotVotes(cfg.Classes, 1),
		oneHotVotes(cfg.Classes, 1),
		oneHotVotes(cfg.Classes, 0),
	}
	for instance := 0; instance < 2; instance++ {
		subs, _ := buildAll(t, cfg, keys, votes, int64(541+instance))
		connA, connB := transport.Pair()
		s1Subs := make([]SubmissionHalf, len(subs))
		s2Subs := make([]SubmissionHalf, len(subs))
		for i, s := range subs {
			s1Subs[i] = s.ToS1
			s2Subs[i] = s.ToS2
		}
		ctx := context.Background()
		type result struct {
			out *Outcome
			err error
		}
		ch := make(chan result, 1)
		go func() {
			out, err := RunS1(ctx, testRNG(550), cfg, keys.ForS1(), connA, s1Subs, nil)
			ch <- result{out, err}
		}()
		out2, err := RunS2WithPools(ctx, testRNG(551), cfg, keys.ForS2(), connB, s2Subs, nil, pools)
		if err != nil {
			t.Fatalf("instance %d: RunS2WithPools: %v", instance, err)
		}
		r1 := <-ch
		connA.Close()
		connB.Close()
		if r1.err != nil {
			t.Fatalf("instance %d: RunS1: %v", instance, r1.err)
		}
		if *r1.out != *out2 || !out2.Consensus || out2.Label != 1 {
			t.Fatalf("instance %d: outcome %+v/%+v, want consensus on 1", instance, r1.out, out2)
		}
	}
}

// NewS2Pools must be a no-op without UseDGKPool and build the right pool
// kind per strategy.
func TestNewS2PoolsStrategySelection(t *testing.T) {
	cfg := testConfig(3)
	keys, err := GenerateKeys(testRNG(560), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p, err := NewS2Pools(cfg, keys.ForS2()); err != nil || p != nil {
		t.Fatalf("pools without UseDGKPool = (%v, %v), want (nil, nil)", p, err)
	}
	cfg.UseDGKPool = true
	p, err := NewS2Pools(cfg, keys.ForS2())
	if err != nil {
		t.Fatal(err)
	}
	if p.material == nil || p.nonces != nil {
		t.Error("tournament strategy must build a material pool, not a nonce pool")
	}
	p.Close()
	cfg.ArgmaxStrategy = StrategyAllPairs
	p, err = NewS2Pools(cfg, keys.ForS2())
	if err != nil {
		t.Fatal(err)
	}
	if p.nonces == nil || p.material != nil {
		t.Error("all-pairs strategy must build a nonce pool, not a material pool")
	}
	p.Close()
}

func TestConfigValidateArgmaxStrategy(t *testing.T) {
	cfg := testConfig(3)
	for _, ok := range []string{"", StrategyTournament, StrategyAllPairs} {
		cfg.ArgmaxStrategy = ok
		if err := cfg.Validate(); err != nil {
			t.Errorf("strategy %q rejected: %v", ok, err)
		}
	}
	cfg.ArgmaxStrategy = "bubble"
	if err := cfg.Validate(); err == nil {
		t.Error("expected validation error for unknown strategy")
	}
	cfg.ArgmaxStrategy = ""
	if got := cfg.ResolvedArgmaxStrategy(); got != StrategyTournament {
		t.Errorf("default strategy = %q, want tournament", got)
	}
}
