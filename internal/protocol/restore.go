package protocol

import (
	"context"
	"fmt"
	"io"
	"math/big"

	"github.com/privconsensus/privconsensus/internal/mathutil"
	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/perm"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// Restoration (Alg. 3). Both servers know the permuted index pi(i~*) of the
// label with the highest noisy vote; the sub-protocol maps it back through
// pi = pi1 ∘ pi2 without revealing either permutation share, ending with
// both servers learning i~* and nothing else.
//
// The one-hot vector travels: S2 encrypts pi(e) under pk2 -> S1 strips pi1
// and masks with r1 -> S2 decrypts blindly -> S1 unmasks and re-encrypts
// under pk1 -> S2 strips pi2 and masks with r2 -> S1 decrypts blindly and
// returns -> S2 unmasks and reads off the index.

// restoreS1 runs S1's side of Alg. 3, returning the restored label index
// that S2 announces at the end.
func restoreS1(ctx context.Context, rng io.Reader, cfg Config, keys KeysS1,
	conn transport.Conn, pi1 perm.Permutation) (int, error) {
	k := cfg.Classes
	pk2 := keys.PeerPub

	// Step 1 happens at S2; receive E_pk2[pi(e)].
	msg, err := transport.ExpectKind(ctx, conn, transport.KindCipherSeq)
	if err != nil {
		return -1, fmt.Errorf("protocol: restore step 1 recv: %w", err)
	}
	if len(msg.Values) != k {
		return -1, fmt.Errorf("%w: restore step 1 expected %d values, got %d", ErrPeerMismatch, k, len(msg.Values))
	}

	// Step 2: revert pi1 and add an encrypted vector mask r1.
	unpermuted, err := pi1.ApplyInverse(msg.Values)
	if err != nil {
		return -1, err
	}
	r1 := make([]*big.Int, k)
	masked := make([]*big.Int, k)
	for i := 0; i < k; i++ {
		r, err := mathutil.RandBits(rng, cfg.Kappa)
		if err != nil {
			return -1, fmt.Errorf("protocol: sample restoration r1: %w", err)
		}
		r1[i] = r
		c, err := pk2.AddPlain(&paillier.Ciphertext{C: unpermuted[i]}, r)
		if err != nil {
			return -1, fmt.Errorf("protocol: restore step 2 mask: %w", err)
		}
		masked[i] = c.C
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindCipherSeq, Values: masked}); err != nil {
		return -1, fmt.Errorf("protocol: restore step 2 send: %w", err)
	}

	// Step 3 happens at S2; receive plaintext pi2(e) + r1.
	msg, err = transport.ExpectKind(ctx, conn, transport.KindPlainSeq)
	if err != nil {
		return -1, fmt.Errorf("protocol: restore step 3 recv: %w", err)
	}
	if len(msg.Values) != k {
		return -1, fmt.Errorf("%w: restore step 3 expected %d values, got %d", ErrPeerMismatch, k, len(msg.Values))
	}

	// Step 4: strip r1 and re-encrypt under pk1.
	pk1 := keys.Own.Public()
	reenc := make([]*big.Int, k)
	for i := 0; i < k; i++ {
		v := new(big.Int).Sub(msg.Values[i], r1[i])
		c, err := pk1.EncryptSigned(rng, v)
		if err != nil {
			return -1, fmt.Errorf("protocol: restore step 4 encrypt: %w", err)
		}
		reenc[i] = c.C
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindCipherSeq, Values: reenc}); err != nil {
		return -1, fmt.Errorf("protocol: restore step 4 send: %w", err)
	}

	// Step 5 happens at S2; receive E_pk1[e + r2].
	msg, err = transport.ExpectKind(ctx, conn, transport.KindCipherSeq)
	if err != nil {
		return -1, fmt.Errorf("protocol: restore step 5 recv: %w", err)
	}
	if len(msg.Values) != k {
		return -1, fmt.Errorf("%w: restore step 5 expected %d values, got %d", ErrPeerMismatch, k, len(msg.Values))
	}

	// Step 6: decrypt blindly (r2 hides the position) and return.
	plain := make([]*big.Int, k)
	for i := 0; i < k; i++ {
		v, err := keys.Own.DecryptSigned(&paillier.Ciphertext{C: msg.Values[i]})
		if err != nil {
			return -1, fmt.Errorf("protocol: restore step 6 decrypt: %w", err)
		}
		plain[i] = v
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindPlainSeq, Values: plain}); err != nil {
		return -1, fmt.Errorf("protocol: restore step 6 send: %w", err)
	}

	// S2 announces the restored label.
	res, err := transport.ExpectKind(ctx, conn, transport.KindResult)
	if err != nil {
		return -1, fmt.Errorf("protocol: restore result recv: %w", err)
	}
	if len(res.Flags) != 1 || res.Flags[0] < 0 || res.Flags[0] >= int64(k) {
		return -1, fmt.Errorf("%w: restored label out of range", ErrPeerMismatch)
	}
	return int(res.Flags[0]), nil
}

// restoreS2 runs S2's side of Alg. 3 for the permuted winning position
// permutedIdx, returning the restored original label index.
func restoreS2(ctx context.Context, rng io.Reader, cfg Config, keys KeysS2,
	conn transport.Conn, pi2 perm.Permutation, permutedIdx int) (int, error) {
	k := cfg.Classes
	if permutedIdx < 0 || permutedIdx >= k {
		return -1, fmt.Errorf("protocol: permuted index %d outside [0, %d)", permutedIdx, k)
	}

	// Step 1: encrypt the permuted one-hot vector under pk2 (own key).
	oneHot, err := perm.OneHot(k, permutedIdx)
	if err != nil {
		return -1, err
	}
	pk2 := keys.Own.Public()
	enc := make([]*big.Int, k)
	for i := 0; i < k; i++ {
		c, err := pk2.Encrypt(rng, oneHot[i])
		if err != nil {
			return -1, fmt.Errorf("protocol: restore step 1 encrypt: %w", err)
		}
		enc[i] = c.C
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindCipherSeq, Values: enc}); err != nil {
		return -1, fmt.Errorf("protocol: restore step 1 send: %w", err)
	}

	// Step 3: receive E_pk2[pi2(e) + r1], decrypt, return plaintext.
	msg, err := transport.ExpectKind(ctx, conn, transport.KindCipherSeq)
	if err != nil {
		return -1, fmt.Errorf("protocol: restore step 3 recv: %w", err)
	}
	if len(msg.Values) != k {
		return -1, fmt.Errorf("%w: restore step 3 expected %d values, got %d", ErrPeerMismatch, k, len(msg.Values))
	}
	plain := make([]*big.Int, k)
	for i := 0; i < k; i++ {
		v, err := keys.Own.DecryptSigned(&paillier.Ciphertext{C: msg.Values[i]})
		if err != nil {
			return -1, fmt.Errorf("protocol: restore step 3 decrypt: %w", err)
		}
		plain[i] = v
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindPlainSeq, Values: plain}); err != nil {
		return -1, fmt.Errorf("protocol: restore step 3 send: %w", err)
	}

	// Step 5: receive E_pk1[pi2(e)], revert pi2, add vector mask r2.
	msg, err = transport.ExpectKind(ctx, conn, transport.KindCipherSeq)
	if err != nil {
		return -1, fmt.Errorf("protocol: restore step 5 recv: %w", err)
	}
	if len(msg.Values) != k {
		return -1, fmt.Errorf("%w: restore step 5 expected %d values, got %d", ErrPeerMismatch, k, len(msg.Values))
	}
	unpermuted, err := pi2.ApplyInverse(msg.Values)
	if err != nil {
		return -1, err
	}
	pk1 := keys.PeerPub
	r2 := make([]*big.Int, k)
	masked := make([]*big.Int, k)
	for i := 0; i < k; i++ {
		r, err := mathutil.RandBits(rng, cfg.Kappa)
		if err != nil {
			return -1, fmt.Errorf("protocol: sample restoration r2: %w", err)
		}
		r2[i] = r
		c, err := pk1.AddPlain(&paillier.Ciphertext{C: unpermuted[i]}, r)
		if err != nil {
			return -1, fmt.Errorf("protocol: restore step 5 mask: %w", err)
		}
		masked[i] = c.C
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindCipherSeq, Values: masked}); err != nil {
		return -1, fmt.Errorf("protocol: restore step 5 send: %w", err)
	}

	// Step 7: receive plaintext e + r2, strip r2, read off the index.
	msg, err = transport.ExpectKind(ctx, conn, transport.KindPlainSeq)
	if err != nil {
		return -1, fmt.Errorf("protocol: restore step 7 recv: %w", err)
	}
	if len(msg.Values) != k {
		return -1, fmt.Errorf("%w: restore step 7 expected %d values, got %d", ErrPeerMismatch, k, len(msg.Values))
	}
	oneHotOut := make([]*big.Int, k)
	for i := 0; i < k; i++ {
		oneHotOut[i] = new(big.Int).Sub(msg.Values[i], r2[i])
	}
	label, err := perm.ArgOne(oneHotOut)
	if err != nil {
		return -1, fmt.Errorf("protocol: restoration produced a non-one-hot vector: %w", err)
	}

	// Announce the restored label to S1.
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindResult, Flags: []int64{int64(label)}}); err != nil {
		return -1, fmt.Errorf("protocol: restore result send: %w", err)
	}
	return label, nil
}
