package protocol

import (
	"context"
	"math/big"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/perm"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// encryptSeq encrypts a signed sequence under pk.
func encryptSeq(t *testing.T, pk *paillier.PublicKey, vals []int64) []*paillier.Ciphertext {
	t.Helper()
	seq := make([]*big.Int, len(vals))
	for i, v := range vals {
		seq[i] = big.NewInt(v)
	}
	out, err := pk.EncryptSignedVector(testRNG(55), seq)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// runBlindPermute executes Alg. 2 directly over an in-memory pair for the
// given plaintext share sequences, returning both results.
func runBlindPermute(t *testing.T, cfg Config, keys *Keys, aSeqs, bSeqs [][]int64) (*bpResultS1, *bpResultS2) {
	t.Helper()
	encA := make([][]*paillier.Ciphertext, len(aSeqs))
	for s, vals := range aSeqs {
		encA[s] = encryptSeq(t, keys.S2Paillier.Public(), vals) // S1 holds E_pk2[a]
	}
	encB := make([][]*paillier.Ciphertext, len(bSeqs))
	for s, vals := range bSeqs {
		encB[s] = encryptSeq(t, keys.S1Paillier.Public(), vals) // S2 holds E_pk1[b]
	}

	connA, connB := transport.Pair()
	defer connA.Close()
	defer connB.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	type s1res struct {
		r   *bpResultS1
		err error
	}
	ch := make(chan s1res, 1)
	go func() {
		r, err := blindPermuteS1(ctx, testRNG(56), cfg, keys.ForS1(), connA, encA)
		ch <- s1res{r, err}
	}()
	r2, err := blindPermuteS2(ctx, testRNG(57), cfg, keys.ForS2(), connB, encB)
	if err != nil {
		t.Fatalf("blindPermuteS2: %v", err)
	}
	r1 := <-ch
	if r1.err != nil {
		t.Fatalf("blindPermuteS1: %v", r1.err)
	}
	return r1.r, r2
}

// Blind-and-Permute correctness: undoing the combined permutation and the
// common bias must recover the original share sums, and both output pairs
// must share the same permutation and bias.
func TestBlindPermuteIdentity(t *testing.T) {
	cfg := testConfig(3)
	keys, err := GenerateKeys(testRNG(50), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two sequence pairs, as in Alg. 5 step 3. c = a + b per class.
	aSeqs := [][]int64{{10, -20, 30, 5}, {100, 200, -300, 7}}
	bSeqs := [][]int64{{1, 2, 3, 4}, {-50, 60, 70, 80}}

	r1, r2 := runBlindPermute(t, cfg, keys, aSeqs, bSeqs)
	if len(r1.Plain) != 2 || len(r2.Plain) != 2 {
		t.Fatalf("expected 2 output sequences each, got %d/%d", len(r1.Plain), len(r2.Plain))
	}

	pi, err := r1.Pi1.Compose(r2.Pi2)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		// Sum the two servers' outputs: pi(a + r) + pi(b + r) = pi(c + 2r).
		summed := make([]*big.Int, cfg.Classes)
		for p := 0; p < cfg.Classes; p++ {
			summed[p] = new(big.Int).Add(r1.Plain[s][p], r2.Plain[s][p])
		}
		unpermuted, err := pi.ApplyInverse(summed)
		if err != nil {
			t.Fatal(err)
		}
		// The bias 2r is constant across the sequence: subtract it via
		// position 0 and compare against c.
		c0 := aSeqs[s][0] + bSeqs[s][0]
		bias := new(big.Int).Sub(unpermuted[0], big.NewInt(c0))
		if bias.Sign() < 0 {
			t.Fatalf("sequence %d: negative bias %v (masks must be non-negative)", s, bias)
		}
		for i := 0; i < cfg.Classes; i++ {
			want := new(big.Int).Add(big.NewInt(aSeqs[s][i]+bSeqs[s][i]), bias)
			if unpermuted[i].Cmp(want) != 0 {
				t.Errorf("sequence %d class %d: got %v, want %v", s, i, unpermuted[i], want)
			}
		}
	}

	// Pairwise differences on each server's own output must equal the
	// true share differences (the property the DGK comparison relies on).
	for s := 0; s < 2; s++ {
		for p := 0; p < cfg.Classes; p++ {
			for q := 0; q < cfg.Classes; q++ {
				i, err := pi.Preimage(p)
				if err != nil {
					t.Fatal(err)
				}
				j, err := pi.Preimage(q)
				if err != nil {
					t.Fatal(err)
				}
				d1 := new(big.Int).Sub(r1.Plain[s][p], r1.Plain[s][q])
				if d1.Cmp(big.NewInt(aSeqs[s][i]-aSeqs[s][j])) != 0 {
					t.Fatalf("S1 difference (%d,%d) does not cancel the bias", p, q)
				}
				d2 := new(big.Int).Sub(r2.Plain[s][p], r2.Plain[s][q])
				if d2.Cmp(big.NewInt(bSeqs[s][i]-bSeqs[s][j])) != 0 {
					t.Fatalf("S2 difference (%d,%d) does not cancel the bias", p, q)
				}
			}
		}
	}
}

func TestBlindPermuteRejectsBadLengths(t *testing.T) {
	cfg := testConfig(2)
	keys, err := GenerateKeys(testRNG(51), cfg)
	if err != nil {
		t.Fatal(err)
	}
	connA, _ := transport.Pair()
	defer connA.Close()
	short := [][]*paillier.Ciphertext{encryptSeq(t, keys.S2Paillier.Public(), []int64{1})}
	if _, err := blindPermuteS1(context.Background(), testRNG(52), cfg, keys.ForS1(), connA, short); err == nil {
		t.Fatal("expected length error")
	}
}

// Restoration correctness: for every permuted index, Alg. 3 recovers the
// original class index at both servers.
func TestRestorationRoundTrip(t *testing.T) {
	cfg := testConfig(3)
	keys, err := GenerateKeys(testRNG(53), cfg)
	if err != nil {
		t.Fatal(err)
	}
	pi1, err := perm.New(testRNG(54), cfg.Classes)
	if err != nil {
		t.Fatal(err)
	}
	pi2, err := perm.New(testRNG(58), cfg.Classes)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := pi1.Compose(pi2)
	if err != nil {
		t.Fatal(err)
	}

	for label := 0; label < cfg.Classes; label++ {
		permutedIdx, err := pi.Image(label)
		if err != nil {
			t.Fatal(err)
		}
		connA, connB := transport.Pair()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)

		type res struct {
			label int
			err   error
		}
		ch := make(chan res, 1)
		go func() {
			l, err := restoreS1(ctx, testRNG(59), cfg, keys.ForS1(), connA, pi1)
			ch <- res{l, err}
		}()
		got2, err := restoreS2(ctx, testRNG(60), cfg, keys.ForS2(), connB, pi2, permutedIdx)
		if err != nil {
			t.Fatalf("restoreS2(label=%d): %v", label, err)
		}
		r1 := <-ch
		cancel()
		connA.Close()
		connB.Close()
		if r1.err != nil {
			t.Fatalf("restoreS1(label=%d): %v", label, r1.err)
		}
		if got2 != label || r1.label != label {
			t.Errorf("restoration of label %d: S1=%d S2=%d", label, r1.label, got2)
		}
	}
}

func TestRestorationRejectsBadIndex(t *testing.T) {
	cfg := testConfig(2)
	keys, err := GenerateKeys(testRNG(61), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, connB := transport.Pair()
	defer connB.Close()
	pi2 := perm.Identity(cfg.Classes)
	if _, err := restoreS2(context.Background(), testRNG(62), cfg, keys.ForS2(), connB, pi2, cfg.Classes); err == nil {
		t.Fatal("expected index range error")
	}
	if _, err := restoreS2(context.Background(), testRNG(63), cfg, keys.ForS2(), connB, pi2, -1); err == nil {
		t.Fatal("expected index range error")
	}
}

// The full protocol also runs over real TCP sockets.
func TestFullProtocolOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP protocol run is slow in -short mode")
	}
	cfg := testConfig(3)
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.ThresholdFrac = 0.5
	keys, err := GenerateKeys(testRNG(64), cfg)
	if err != nil {
		t.Fatal(err)
	}
	votes := [][]*big.Int{
		oneHotVotes(cfg.Classes, 3),
		oneHotVotes(cfg.Classes, 3),
		oneHotVotes(cfg.Classes, 1),
	}
	subs, _ := buildAll(t, cfg, keys, votes, 65)
	s1Subs := make([]SubmissionHalf, len(subs))
	s2Subs := make([]SubmissionHalf, len(subs))
	for i, s := range subs {
		s1Subs[i] = s.ToS1
		s2Subs[i] = s.ToS2
	}

	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	type res struct {
		out *Outcome
		err error
	}
	ch := make(chan res, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			ch <- res{nil, err}
			return
		}
		defer conn.Close()
		out, err := RunS1(ctx, testRNG(66), cfg, keys.ForS1(), conn, s1Subs, nil)
		ch <- res{out, err}
	}()

	conn, err := transport.Dial(ctx, l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	out2, err := RunS2(ctx, testRNG(67), cfg, keys.ForS2(), conn, s2Subs, nil)
	if err != nil {
		t.Fatalf("RunS2 over TCP: %v", err)
	}
	r1 := <-ch
	if r1.err != nil {
		t.Fatalf("RunS1 over TCP: %v", r1.err)
	}
	if *r1.out != *out2 {
		t.Fatalf("servers disagree over TCP: %+v vs %+v", r1.out, out2)
	}
	if !out2.Consensus || out2.Label != 3 {
		t.Fatalf("TCP outcome %+v, want consensus on 3", out2)
	}
}
