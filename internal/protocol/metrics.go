package protocol

import "github.com/privconsensus/privconsensus/internal/obs"

// Protocol-level metrics on the obs default registry.
var (
	cmpWorkersHist = obs.Default.Histogram("protocol_comparison_workers",
		"Worker-pool size used for each concurrent comparison phase.",
		obs.DepthBuckets())
	cmpJobsTotal = obs.Default.Counter("protocol_comparison_jobs_total",
		"DGK comparison jobs executed across all phases.")
	cmpInflight = obs.Default.Gauge("protocol_comparisons_inflight",
		"Comparisons currently executing on mux streams.")
	cmpTournament = obs.Default.Counter("privconsensus_comparisons_total",
		"Secure comparisons executed, labelled by argmax strategy.",
		obs.L("strategy", StrategyTournament))
	cmpAllPairs = obs.Default.Counter("privconsensus_comparisons_total",
		"Secure comparisons executed, labelled by argmax strategy.",
		obs.L("strategy", StrategyAllPairs))
)

// strategyComparisons returns the per-strategy comparison counter for cfg.
func strategyComparisons(cfg Config) *obs.Counter {
	if cfg.tournament() {
		return cmpTournament
	}
	return cmpAllPairs
}

// phaseSeconds returns the wall-time histogram for one protocol step.
func phaseSeconds(step string) *obs.Histogram {
	return obs.Default.Histogram("protocol_phase_seconds",
		"Wall time of each protocol phase.",
		obs.DurationBuckets(), obs.L("step", step))
}
