// Package protocol implements the paper's primary contribution: the Private
// Consensus Protocol (Alg. 5) together with its Blind-and-Permute (Alg. 2)
// and Restoration (Alg. 3) sub-protocols, run between two non-colluding
// servers S1 and S2 over a transport.Conn.
//
// Value representation: every vote, mask and noise term is an integer in
// fixed-point "vote units" with VoteScale units per vote, so one-hot and
// softmax (probabilistic) predictions flow through the same pipeline and the
// homomorphic arithmetic is exact.
package protocol

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/big"
	"math/rand"
	"runtime"

	"github.com/privconsensus/privconsensus/internal/dgk"
	"github.com/privconsensus/privconsensus/internal/dp"
	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/secshare"
)

// VoteScale is the number of integer units per vote (2^16 fractional bits,
// matching the paper's fixed-point precision, Eq. 8).
const VoteScale = 1 << 16

// Step labels used for metering, matching Alg. 5's step numbers and the
// rows of Tables I and II.
const (
	StepSecureSum1  = "secure-sum(2)"
	StepUnpack1     = "packed-unpack(2)"
	StepBlindPerm1  = "blind-and-permute(3)"
	StepCompare1    = "secure-comparison(4)"
	StepThreshold   = "threshold-checking(5)"
	StepSecureSum2  = "secure-sum(6)"
	StepUnpack2     = "packed-unpack(6)"
	StepBlindPerm2  = "blind-and-permute(7)"
	StepCompare2    = "secure-comparison(8)"
	StepRestoration = "restoration(9)"
)

// Argmax strategy names for Config.ArgmaxStrategy.
const (
	// StrategyTournament runs the secure-comparison phases as a blinded
	// single-elimination bracket: C-1 comparisons in ceil(log2(C)) levels,
	// each level's comparisons batched into one frame per round trip.
	StrategyTournament = "tournament"
	// StrategyAllPairs runs the original all-pairs Eq. 7 schedule —
	// C(C-1)/2 comparisons, one wire exchange each — preserving the
	// pre-tournament wire format byte for byte. It serves as the parity
	// oracle for the tournament path.
	StrategyAllPairs = "allpairs"
)

// Errors returned by the package.
var (
	ErrBadConfig    = errors.New("protocol: invalid configuration")
	ErrVoteRange    = errors.New("protocol: vote outside [0, VoteScale]")
	ErrNoConsensus  = errors.New("protocol: threshold not met")
	ErrPeerMismatch = errors.New("protocol: peers disagree on protocol state")
	// ErrQuorumNotMet reports that a query released with fewer participants
	// than the configured quorum and was not run. It is terminal for the
	// instance: retrying cannot conjure the missing submissions.
	ErrQuorumNotMet = errors.New("protocol: quorum not met")
)

// Config parameterizes one run of the private consensus protocol.
type Config struct {
	// Classes is K, the number of labels.
	Classes int
	// Users is |U|.
	Users int
	// ThresholdFrac is the consensus threshold T as a fraction of the
	// total users (the paper defaults to 0.6).
	ThresholdFrac float64
	// Sigma1 is the SVT noise deviation in votes.
	Sigma1 float64
	// Sigma2 is the Report Noisy Maximum deviation in votes.
	Sigma2 float64
	// Kappa is the statistical share-masking bit length.
	Kappa int
	// PaillierBits is the Paillier modulus size (the paper uses 64).
	PaillierBits int
	// DGK parameterizes the comparison cryptosystem.
	DGK dgk.Params
	// AbsoluteThreshold keeps the consensus threshold T at
	// ThresholdFrac*Users even when a query runs over a partial
	// participant set (nil entries in the submission slice). The default
	// (false) re-scales T to ThresholdFrac*|participants|, preserving the
	// paper's fraction-of-voters semantics under dropout. At full
	// participation the two modes are byte-for-byte identical on the wire:
	// the post-decryption adjustment both modes apply is exactly zero.
	AbsoluteThreshold bool
	// ThresholdAllPositions runs the DGK threshold check at every
	// permuted position rather than only at pi(i*). This matches the
	// traffic ratios of the paper's Table II and avoids revealing
	// timing-wise which position was checked.
	ThresholdAllPositions bool
	// UseDGKPool lets S2 draw its DGK bit-encryption blinding factors
	// from a concurrently pre-generated pool (the paper's randomness
	// table optimization, §VI-A, applied to the dominant comparison
	// cost). The pool uses crypto/rand; protocol decisions are
	// unaffected.
	UseDGKPool bool
	// DGKPoolCapacity sizes the pool (0 sizes it from the number of
	// comparisons one instance performs: comparisonBudget() * DGK.L).
	DGKPoolCapacity int
	// ArgmaxStrategy selects the secure-comparison schedule:
	// StrategyTournament (the default when empty) or StrategyAllPairs.
	// Both servers must configure the same strategy — the wire formats
	// differ — and the deploy layer's capability hello enforces this.
	// The released label is identical under either strategy, including
	// on ties: both resolve them to the lowest permuted position.
	ArgmaxStrategy string
	// Packing slot-packs each K-length submission sequence into
	// ⌈K/slots⌉ Paillier plaintexts (slot width derived from Users,
	// Kappa and VoteScale so worst-case sums cannot overflow a slot), so
	// a user uploads ~3 ciphertexts per half instead of 3K and relays
	// and servers aggregate packed. Aggregation then ends with one
	// blinded interactive unpack round per secure-sum phase. Both
	// servers must agree (the capability hello enforces it); off, the
	// wire format is byte-for-byte identical to unpacked deployments.
	// Requires PaillierBits large enough for at least one slot per
	// plaintext — Validate rejects infeasible combinations (the paper's
	// 64-bit toy keys cannot pack).
	Packing bool
	// Parallelism bounds the number of concurrent DGK comparisons and
	// CPU-bound crypto workers (homomorphic aggregation, Paillier
	// re-randomization). 0 selects runtime.NumCPU(). The value 1
	// reproduces the original single-stream sequential protocol byte for
	// byte; any other value (including 0) multiplexes the peer link, so
	// both servers must agree on whether Parallelism is 1. Comparison
	// outcomes and the released label are identical at every setting.
	Parallelism int
}

// DefaultConfig mirrors the paper's experimental setup: 10 classes,
// threshold 60%, 64-bit Paillier keys.
func DefaultConfig(users int) Config {
	return Config{
		Classes:               10,
		Users:                 users,
		ThresholdFrac:         0.6,
		Sigma1:                4,
		Sigma2:                2,
		Kappa:                 40,
		PaillierBits:          64,
		DGK:                   dgk.Params{NBits: 192, TBits: 40, U: 1009, L: 56},
		ThresholdAllPositions: true,
	}
}

// Validate checks the configuration, including that all protocol
// intermediate values fit within the DGK comparison bit length.
func (c Config) Validate() error {
	if c.Classes < 2 {
		return fmt.Errorf("%w: need at least 2 classes, got %d", ErrBadConfig, c.Classes)
	}
	if c.Users < 1 {
		return fmt.Errorf("%w: need at least 1 user, got %d", ErrBadConfig, c.Users)
	}
	if c.ThresholdFrac < 0 || c.ThresholdFrac > 1 {
		return fmt.Errorf("%w: threshold fraction %g outside [0, 1]", ErrBadConfig, c.ThresholdFrac)
	}
	if c.Sigma1 < 0 || c.Sigma2 < 0 {
		return fmt.Errorf("%w: negative sigma", ErrBadConfig)
	}
	if c.Kappa < 8 {
		return fmt.Errorf("%w: kappa %d too small (min 8)", ErrBadConfig, c.Kappa)
	}
	if c.PaillierBits < 16 {
		return fmt.Errorf("%w: Paillier key %d bits too small", ErrBadConfig, c.PaillierBits)
	}
	if err := c.DGK.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	// Bound the largest signed value the DGK comparison ever sees:
	// differences of two masked aggregated sequences plus noise.
	bound := c.valueBound()
	if bound.BitLen() >= c.DGK.L-1 {
		return fmt.Errorf("%w: values up to %d bits exceed DGK bit length %d",
			ErrBadConfig, bound.BitLen(), c.DGK.L)
	}
	// The Paillier plaintext ring must hold the same signed values.
	if bound.BitLen() >= c.PaillierBits-2 {
		return fmt.Errorf("%w: values up to %d bits exceed Paillier plaintext space (%d-bit modulus)",
			ErrBadConfig, bound.BitLen(), c.PaillierBits)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("%w: negative parallelism %d", ErrBadConfig, c.Parallelism)
	}
	if c.Packing && c.packedSlotsPerPlaintext() < 1 {
		return fmt.Errorf("%w: packed slot width %d bits does not fit %d-bit Paillier plaintexts; use a larger key",
			ErrBadConfig, c.PackedWidth(), c.PaillierBits)
	}
	switch c.ArgmaxStrategy {
	case "", StrategyTournament, StrategyAllPairs:
	default:
		return fmt.Errorf("%w: unknown argmax strategy %q", ErrBadConfig, c.ArgmaxStrategy)
	}
	return nil
}

// ResolvedArgmaxStrategy resolves the configured strategy ("" defaults to
// the tournament schedule).
func (c Config) ResolvedArgmaxStrategy() string {
	if c.ArgmaxStrategy == "" {
		return StrategyTournament
	}
	return c.ArgmaxStrategy
}

// tournament reports whether the tournament argmax schedule is in effect.
func (c Config) tournament() bool { return c.ResolvedArgmaxStrategy() == StrategyTournament }

// ResolvedParallelism resolves the configured worker bound (0 = NumCPU),
// for identity labels such as the build-info gauge.
func (c Config) ResolvedParallelism() int { return c.parallelism() }

// parallelism resolves the configured worker bound (0 = NumCPU).
func (c Config) parallelism() int {
	if c.Parallelism == 0 {
		if n := runtime.NumCPU(); n > 1 {
			return n
		}
		return 1
	}
	return c.Parallelism
}

// muxEnabled reports whether the peer link is multiplexed. It depends only
// on the configured value — never on the local core count — so both
// servers always make the same choice.
func (c Config) muxEnabled() bool { return c.Parallelism != 1 }

// comparisonBudget counts the DGK comparisons one Alg. 5 instance performs
// under the configured argmax strategy: two argmax phases — K-1 comparisons
// each for the tournament bracket, K(K-1)/2 each for all-pairs — plus the
// threshold checks (all K positions, or just one). Sizing pools from this
// keeps the default tournament deployment from over-provisioning 10x for a
// schedule it never runs.
func (c Config) comparisonBudget() int {
	n := 2 * (c.Classes - 1)
	if !c.tournament() {
		n = c.Classes * (c.Classes - 1)
	}
	if c.ThresholdAllPositions {
		return n + c.Classes
	}
	return n + 1
}

// valueBound returns an upper bound on |v| for any value v entering a DGK
// comparison: masked aggregated share differences plus aggregate noise.
func (c Config) valueBound() *big.Int {
	users := big.NewInt(int64(c.Users))
	// Per-user share magnitude: vote (<= VoteScale) + masking 2^kappa.
	perUser := new(big.Int).Lsh(big.NewInt(1), uint(c.Kappa))
	perUser.Add(perUser, big.NewInt(VoteScale))
	agg := new(big.Int).Mul(users, perUser)
	// Scalar blind masks r1 + r2 (2 * 2^kappa).
	agg.Add(agg, new(big.Int).Lsh(big.NewInt(1), uint(c.Kappa+1)))
	// Noise: clamped to +-noiseClamp() per position, doubled in recombination.
	agg.Add(agg, new(big.Int).Lsh(c.noiseClamp(), 1))
	// Threshold offset <= T/2 <= users*VoteScale/2.
	agg.Add(agg, new(big.Int).Mul(users, big.NewInt(VoteScale/2)))
	// Partial-participation threshold adjustment: |H - O_P| <= T/2.
	agg.Add(agg, new(big.Int).Mul(users, big.NewInt(VoteScale/2)))
	// Differences double the magnitude.
	return agg.Lsh(agg, 1)
}

// packedSlotBound bounds |v| for any single per-user value entering a
// packed slot. The largest case is a threshold share a - offset + z1:
// |a| < 2^kappa + VoteScale (vote minus uniform mask), offset <=
// VoteScale/2 + 1, |z1| <= 2^kappa, so 2^(kappa+1) + 2*VoteScale + 2
// covers every share type with slack.
func (c Config) packedSlotBound() *big.Int {
	b := new(big.Int).Lsh(big.NewInt(1), uint(c.Kappa+1))
	return b.Add(b, big.NewInt(2*VoteScale+2))
}

// packedBiasBits is the bit length of the per-slot bias 2^biasBits that
// shifts signed per-user values into [0, 2^(biasBits+1)).
func (c Config) packedBiasBits() int { return c.packedSlotBound().BitLen() }

// packedSumBits bounds the bit length of a slot after summing all Users
// biased contributions.
func (c Config) packedSumBits() int {
	sum := new(big.Int).Lsh(big.NewInt(int64(c.Users)), uint(c.packedBiasBits()+1))
	return sum.BitLen()
}

// PackedWidth returns the slot width W in bits: the worst-case biased
// sum plus kappa bits of statistical blinding headroom for the
// interactive unpack, plus one carry guard bit. Sums (and blinded sums)
// can therefore never cross into the neighbouring slot.
func (c Config) PackedWidth() int { return c.packedSumBits() + c.Kappa + 1 }

// packedSlotsPerPlaintext returns how many W-bit slots fit one Paillier
// plaintext, leaving two guard bits below the modulus.
func (c Config) packedSlotsPerPlaintext() int {
	w := c.PackedWidth()
	if w <= 0 || c.PaillierBits-2 < w {
		return 0
	}
	return (c.PaillierBits - 2) / w
}

// PackedCiphertexts returns P, the number of packed ciphertexts each
// K-length sequence costs (0 when the layout is infeasible).
func (c Config) PackedCiphertexts() int {
	s := c.packedSlotsPerPlaintext()
	if s <= 0 {
		return 0
	}
	return (c.Classes + s - 1) / s
}

// PackedHeadroomBits returns W minus the bits available for counting
// participants: a packed frame declaring member count above
// 2^(W - headroom) could overflow a slot of its declared width, which
// is what relay-side slot-overflow rejection checks.
func (c Config) PackedHeadroomBits() int { return c.Kappa + 1 + c.packedBiasBits() + 1 }

// packedLayout builds the paillier slot-packing codec for this config.
func (c Config) packedLayout() paillier.Packing {
	biasBits := c.packedBiasBits()
	return paillier.Packing{
		Width: c.PackedWidth(),
		Slots: c.packedSlotsPerPlaintext(),
		Count: c.Classes,
		Bias:  new(big.Int).Lsh(big.NewInt(1), uint(biasBits)),
		Max:   new(big.Int).Lsh(big.NewInt(1), uint(biasBits+1)),
	}
}

// noiseClamp bounds the magnitude of any integer noise share: 2^kappa
// units. Exceeding it has probability < exp(-2^20) for realistic sigmas;
// clamping keeps the bit-length analysis airtight.
func (c Config) noiseClamp() *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), uint(c.Kappa))
}

// ThresholdUnits returns T in vote units, rounded to the nearest even
// integer so T/2 is exact.
func (c Config) ThresholdUnits() *big.Int {
	t := int64(math.Round(c.ThresholdFrac * float64(c.Users) * VoteScale / 2))
	return big.NewInt(2 * t)
}

// PerUserOffset returns user u's share of T/2 such that the offsets of all
// users sum exactly to T/2: floor division with the remainder spread over
// the first users.
func (c Config) PerUserOffset(user int) (*big.Int, error) {
	if user < 0 || user >= c.Users {
		return nil, fmt.Errorf("protocol: user index %d outside [0, %d)", user, c.Users)
	}
	half := new(big.Int).Rsh(c.ThresholdUnits(), 1)
	q, r := new(big.Int).DivMod(half, big.NewInt(int64(c.Users)), new(big.Int))
	if int64(user) < r.Int64() {
		q.Add(q, big.NewInt(1))
	}
	return q, nil
}

// ParticipantThresholdUnits returns T in vote units for a query answered by
// `participants` users, per the configured threshold mode: in absolute mode
// T stays at ThresholdUnits() regardless of participation; otherwise it
// scales to ThresholdFrac of the participants who actually showed up.
// Rounded to the nearest even integer so T/2 is exact.
func (c Config) ParticipantThresholdUnits(participants int) *big.Int {
	if c.AbsoluteThreshold {
		return c.ThresholdUnits()
	}
	t := int64(math.Round(c.ThresholdFrac * float64(participants) * VoteScale / 2))
	return big.NewInt(2 * t)
}

// thresholdAdjustment returns delta = H - O_P, where H is half the target
// threshold for the participant set P and O_P is the sum of the per-user
// T/(2|U|) offsets the participants baked into their threshold shares.
// The DGK threshold comparison natively decides c_P + 2*Z1 >= 2*O_P; S1
// subtracting delta from its decrypted threshold sequence while S2 adds it
// shifts the decision to c_P + 2*Z1 >= 2*H exactly. At full participation
// O_P = T/2 and delta = 0 in both threshold modes, so the full-participation
// wire format is untouched.
func (c Config) thresholdAdjustment(participants []int) (*big.Int, error) {
	h := new(big.Int).Rsh(c.ParticipantThresholdUnits(len(participants)), 1)
	op := new(big.Int)
	for _, u := range participants {
		off, err := c.PerUserOffset(u)
		if err != nil {
			return nil, err
		}
		op.Add(op, off)
	}
	return h.Sub(h, op), nil
}

// Present reports whether the half carries a submission: zero-value halves
// mark users that dropped out of a partial-participation query.
func (h SubmissionHalf) Present() bool { return len(h.Votes) > 0 }

// ParticipantIndices returns the indices of the present submissions in a
// full-length (Users-sized) submission slice, in ascending order.
func ParticipantIndices(subs []SubmissionHalf) []int {
	out := make([]int, 0, len(subs))
	for u, h := range subs {
		if h.Present() {
			out = append(out, u)
		}
	}
	return out
}

// Group is one pre-aggregated ingestion unit entering Alg. 5: the
// homomorphic sum of the listed members' submission halves. Direct user
// submissions are singleton groups; a relay's combined frame (see
// internal/ingest) arrives as one multi-member group. Paillier addition is
// ciphertext multiplication mod N^2 — commutative and associative — so any
// grouping of the same participant set aggregates to the byte-identical
// ciphertext vector, which is what makes relay pre-summing transparent to
// the protocol.
type Group struct {
	// Members are the user indices whose shares Half sums. Every user must
	// appear in exactly one group per query instance.
	Members []int
	// Half is the homomorphic sum of the members' submission halves.
	Half SubmissionHalf
}

// GroupSingletons lifts a full-length (Users-sized) submission slice into
// one singleton group per present submission; nil halves mark dropped
// users, exactly as in RunS1/RunS2.
func GroupSingletons(subs []SubmissionHalf) []Group {
	out := make([]Group, 0, len(subs))
	for u, h := range subs {
		if h.Present() {
			out = append(out, Group{Members: []int{u}, Half: h})
		}
	}
	return out
}

// Keys bundles all key material for a protocol deployment. S1 owns the
// (pk1, sk1) Paillier pair, S2 owns (pk2, sk2) and the DGK key.
type Keys struct {
	S1Paillier *paillier.PrivateKey
	S2Paillier *paillier.PrivateKey
	S2DGK      *dgk.PrivateKey
}

// GenerateKeys creates all key material for cfg.
func GenerateKeys(rng io.Reader, cfg Config) (*Keys, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k1, err := paillier.GenerateKey(rng, cfg.PaillierBits)
	if err != nil {
		return nil, fmt.Errorf("protocol: S1 Paillier key: %w", err)
	}
	k2, err := paillier.GenerateKey(rng, cfg.PaillierBits)
	if err != nil {
		return nil, fmt.Errorf("protocol: S2 Paillier key: %w", err)
	}
	dk, err := dgk.GenerateKey(rng, cfg.DGK)
	if err != nil {
		return nil, fmt.Errorf("protocol: S2 DGK key: %w", err)
	}
	return &Keys{S1Paillier: k1, S2Paillier: k2, S2DGK: dk}, nil
}

// KeysS1 is the key material visible to S1.
type KeysS1 struct {
	Own     *paillier.PrivateKey // (pk1, sk1)
	PeerPub *paillier.PublicKey  // pk2
	DGKPub  *dgk.PublicKey
}

// Precompute warms the fixed-base exponentiation tables behind every key in
// S1's view so the first query does not pay the table-build cost inside a
// protocol phase. Idempotent and safe to call concurrently.
func (k KeysS1) Precompute() {
	if k.Own != nil {
		k.Own.Precompute()
	}
	if k.PeerPub != nil {
		k.PeerPub.Precompute()
	}
	if k.DGKPub != nil {
		k.DGKPub.Precompute()
	}
}

// KeysS2 is the key material visible to S2.
type KeysS2 struct {
	Own     *paillier.PrivateKey // (pk2, sk2)
	PeerPub *paillier.PublicKey  // pk1
	DGK     *dgk.PrivateKey
}

// Precompute warms the fixed-base exponentiation tables in S2's view; see
// KeysS1.Precompute.
func (k KeysS2) Precompute() {
	if k.Own != nil {
		k.Own.Precompute()
	}
	if k.PeerPub != nil {
		k.PeerPub.Precompute()
	}
	if k.DGK != nil {
		k.DGK.Precompute()
	}
}

// Zeroize destroys S1's private key material in place (epoch retirement
// after a serve-mode key rotation). Public peer keys are left intact.
func (k KeysS1) Zeroize() {
	if k.Own != nil {
		k.Own.Zeroize()
	}
}

// Zeroize destroys S2's private key material — the Paillier secret key
// and the DGK secret key — in place. Public peer keys are left intact.
func (k KeysS2) Zeroize() {
	if k.Own != nil {
		k.Own.Zeroize()
	}
	if k.DGK != nil {
		k.DGK.Zeroize()
	}
}

// ForS1 extracts S1's view of the keys.
func (k *Keys) ForS1() KeysS1 {
	return KeysS1{Own: k.S1Paillier, PeerPub: k.S2Paillier.Public(), DGKPub: k.S2DGK.Public()}
}

// ForS2 extracts S2's view of the keys.
func (k *Keys) ForS2() KeysS2 {
	return KeysS2{Own: k.S2Paillier, PeerPub: k.S1Paillier.Public(), DGK: k.S2DGK}
}

// SubmissionHalf is the encrypted material one user sends to one server for
// one query instance (Alg. 5 setup + both Secure Sum steps).
type SubmissionHalf struct {
	// Votes is E[share] of the user's prediction vector.
	Votes []*paillier.Ciphertext
	// Thresh is E[share -/+ T/(2|U|) +/- z1] (sign depends on server).
	Thresh []*paillier.Ciphertext
	// Noisy is E[share + z2] for the Report Noisy Maximum phase.
	Noisy []*paillier.Ciphertext
}

// Submission is one user's full encrypted contribution: ToS1 is encrypted
// under pk2 (so S1 cannot read it), ToS2 under pk1.
type Submission struct {
	ToS1 SubmissionHalf
	ToS2 SubmissionHalf
}

// Disclosure carries the plaintext values underlying a Submission, used
// only by tests and by the plaintext reference path.
type Disclosure struct {
	Votes []*big.Int // vote units
	Z1    []*big.Int // per-class SVT noise shares (units)
	Z2    []*big.Int // per-class RNM noise shares (units)
}

// BuildSubmission constructs user `user`'s encrypted submission for one
// instance. votes must be a Classes-length vector in vote units, each
// element in [0, VoteScale]. cryptoRNG supplies encryption randomness;
// noiseRNG supplies the user's local Gaussian noise (§IV-D). pk1 and pk2
// are the servers' Paillier public keys: material destined for S1 is
// encrypted under pk2 and vice versa, so neither server can read what it
// stores.
func BuildSubmission(cryptoRNG io.Reader, noiseRNG *rand.Rand, cfg Config, user int,
	votes []*big.Int, pk1, pk2 *paillier.PublicKey) (*Submission, *Disclosure, error) {
	if len(votes) != cfg.Classes {
		return nil, nil, fmt.Errorf("protocol: votes length %d != classes %d", len(votes), cfg.Classes)
	}
	for i, v := range votes {
		if v == nil || v.Sign() < 0 || v.Cmp(big.NewInt(VoteScale)) > 0 {
			return nil, nil, fmt.Errorf("%w: class %d value %v", ErrVoteRange, i, v)
		}
	}
	offset, err := cfg.PerUserOffset(user)
	if err != nil {
		return nil, nil, err
	}

	a, b, err := secshare.Split(cryptoRNG, votes, cfg.Kappa)
	if err != nil {
		return nil, nil, fmt.Errorf("protocol: split votes: %w", err)
	}

	z1, err := cfg.sampleNoiseShares(noiseRNG, cfg.Sigma1)
	if err != nil {
		return nil, nil, err
	}
	z2, err := cfg.sampleNoiseShares(noiseRNG, cfg.Sigma2)
	if err != nil {
		return nil, nil, err
	}

	threshS1, threshS2, err := secshare.ThresholdShares(a, b, z1, offset)
	if err != nil {
		return nil, nil, err
	}
	noisyS1, noisyS2, err := secshare.NoisyShares(a, b, z2)
	if err != nil {
		return nil, nil, err
	}

	sub := &Submission{}
	if cfg.Packing {
		layout := cfg.packedLayout()
		enc := func(pk *paillier.PublicKey, vals []*big.Int, what string) ([]*paillier.Ciphertext, error) {
			packed, perr := layout.Pack(vals)
			if perr != nil {
				return nil, fmt.Errorf("protocol: pack %s: %w", what, perr)
			}
			cts, eerr := pk.EncryptVector(cryptoRNG, packed)
			if eerr != nil {
				return nil, fmt.Errorf("protocol: encrypt packed %s: %w", what, eerr)
			}
			return cts, nil
		}
		if sub.ToS1.Votes, err = enc(pk2, a, "a shares"); err != nil {
			return nil, nil, err
		}
		if sub.ToS1.Thresh, err = enc(pk2, threshS1, "threshold shares for S1"); err != nil {
			return nil, nil, err
		}
		if sub.ToS1.Noisy, err = enc(pk2, noisyS1, "noisy shares for S1"); err != nil {
			return nil, nil, err
		}
		if sub.ToS2.Votes, err = enc(pk1, b, "b shares"); err != nil {
			return nil, nil, err
		}
		if sub.ToS2.Thresh, err = enc(pk1, threshS2, "threshold shares for S2"); err != nil {
			return nil, nil, err
		}
		if sub.ToS2.Noisy, err = enc(pk1, noisyS2, "noisy shares for S2"); err != nil {
			return nil, nil, err
		}
		return sub, &Disclosure{Votes: votes, Z1: z1, Z2: z2}, nil
	}
	if sub.ToS1.Votes, err = pk2.EncryptSignedVector(cryptoRNG, a); err != nil {
		return nil, nil, fmt.Errorf("protocol: encrypt a shares: %w", err)
	}
	if sub.ToS1.Thresh, err = pk2.EncryptSignedVector(cryptoRNG, threshS1); err != nil {
		return nil, nil, fmt.Errorf("protocol: encrypt threshold shares for S1: %w", err)
	}
	if sub.ToS1.Noisy, err = pk2.EncryptSignedVector(cryptoRNG, noisyS1); err != nil {
		return nil, nil, fmt.Errorf("protocol: encrypt noisy shares for S1: %w", err)
	}
	if sub.ToS2.Votes, err = pk1.EncryptSignedVector(cryptoRNG, b); err != nil {
		return nil, nil, fmt.Errorf("protocol: encrypt b shares: %w", err)
	}
	if sub.ToS2.Thresh, err = pk1.EncryptSignedVector(cryptoRNG, threshS2); err != nil {
		return nil, nil, fmt.Errorf("protocol: encrypt threshold shares for S2: %w", err)
	}
	if sub.ToS2.Noisy, err = pk1.EncryptSignedVector(cryptoRNG, noisyS2); err != nil {
		return nil, nil, fmt.Errorf("protocol: encrypt noisy shares for S2: %w", err)
	}
	return sub, &Disclosure{Votes: votes, Z1: z1, Z2: z2}, nil
}

// SubmissionBytes returns the encoded wire size of one submission half as
// it would cross the user-to-server link, for Table II accounting. It sums
// the half's actual ciphertexts, so packed halves (P ciphertexts per
// sequence) report their packed size, not the 3K unpacked equivalent.
func SubmissionBytes(h SubmissionHalf) int {
	size := 0
	for _, group := range [][]*paillier.Ciphertext{h.Votes, h.Thresh, h.Noisy} {
		for _, c := range group {
			// sign byte + 4-byte length + payload, as in the codec.
			size += 5 + len(c.Bytes())
		}
	}
	return size
}

// PlainOutcome is the plaintext reference implementation of Alg. 4 / Alg. 5
// given the aggregated votes and aggregated noise share vectors (all in
// vote units). The crypto path must produce the identical decision for the
// same noise draws; tests assert this.
//
// Tie-breaking: the lowest index among maximal elements wins. The crypto
// path breaks ties by permuted position, i.e. uniformly at random among the
// tied classes, so exact-match tests use tie-free inputs.
func PlainOutcome(votes, z1, z2 []*big.Int, thresholdUnits *big.Int) (consensus bool, label int, err error) {
	if len(votes) == 0 || len(votes) != len(z1) || len(votes) != len(z2) {
		return false, -1, fmt.Errorf("protocol: length mismatch votes=%d z1=%d z2=%d", len(votes), len(z1), len(z2))
	}
	iStar := argmaxBig(votes)
	// SVT check: c_{i*} + 2*Σz1_{i*} >= T (the factor 2 comes from the
	// +z1/-z1 share construction; dp calibrates variances accordingly).
	check := new(big.Int).Add(votes[iStar], new(big.Int).Lsh(z1[iStar], 1))
	if check.Cmp(thresholdUnits) < 0 {
		return false, -1, nil
	}
	noisy := make([]*big.Int, len(votes))
	for i := range votes {
		noisy[i] = new(big.Int).Add(votes[i], new(big.Int).Lsh(z2[i], 1))
	}
	return true, argmaxBig(noisy), nil
}

// argmaxBig returns the lowest index attaining the maximum.
func argmaxBig(vs []*big.Int) int {
	best := 0
	for i := 1; i < len(vs); i++ {
		if vs[i].Cmp(vs[best]) > 0 {
			best = i
		}
	}
	return best
}

// AggregateDisclosures sums per-user plaintext disclosures for the
// reference path.
func AggregateDisclosures(ds []*Disclosure) (votes, z1, z2 []*big.Int, err error) {
	if len(ds) == 0 {
		return nil, nil, nil, fmt.Errorf("protocol: no disclosures")
	}
	vv := make([][]*big.Int, len(ds))
	zz1 := make([][]*big.Int, len(ds))
	zz2 := make([][]*big.Int, len(ds))
	for i, d := range ds {
		vv[i], zz1[i], zz2[i] = d.Votes, d.Z1, d.Z2
	}
	if votes, err = secshare.SumShares(vv); err != nil {
		return nil, nil, nil, err
	}
	if z1, err = secshare.SumShares(zz1); err != nil {
		return nil, nil, nil, err
	}
	if z2, err = secshare.SumShares(zz2); err != nil {
		return nil, nil, nil, err
	}
	return votes, z1, z2, nil
}

// sampleNoiseShares draws the per-user, per-class Gaussian noise shares in
// integer units, clamped to the configured bound.
func (c Config) sampleNoiseShares(noiseRNG *rand.Rand, sigmaVotes float64) ([]*big.Int, error) {
	out := make([]*big.Int, c.Classes)
	if sigmaVotes == 0 {
		for i := range out {
			out[i] = big.NewInt(0)
		}
		return out, nil
	}
	perUser, err := dp.UserNoiseSigma1(sigmaVotes*VoteScale, c.Users)
	if err != nil {
		return nil, fmt.Errorf("protocol: noise calibration: %w", err)
	}
	clamp := c.noiseClamp()
	negClamp := new(big.Int).Neg(clamp)
	for i := range out {
		z := big.NewInt(int64(math.Round(dp.Gaussian(noiseRNG, perUser))))
		if z.Cmp(clamp) > 0 {
			z.Set(clamp)
		} else if z.Cmp(negClamp) < 0 {
			z.Set(negClamp)
		}
		out[i] = z
	}
	return out, nil
}
