package protocol

import (
	"math/big"
	"math/rand"
	"testing"
)

// packedTestConfig returns a packing-feasible test configuration: the
// 64-bit toy Paillier keys of testConfig cannot hold even one slot, so
// packed tests run with 256-bit keys.
func packedTestConfig(users int) Config {
	cfg := testConfig(users)
	cfg.PaillierBits = 256
	cfg.Packing = true
	return cfg
}

func TestPackedConfigValidation(t *testing.T) {
	cfg := DefaultConfig(5) // kappa=40: slot width ~87 bits
	cfg.Packing = true      // cannot fit a single slot in 64-bit keys
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted packing with 64-bit Paillier keys")
	}
	cfg = packedTestConfig(5)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate rejected feasible packed config: %v", err)
	}
	if s := cfg.packedSlotsPerPlaintext(); s < 2 {
		t.Fatalf("packedSlotsPerPlaintext = %d, want >= 2 at 256 bits", s)
	}
	if p := cfg.PackedCiphertexts(); p >= cfg.Classes {
		t.Fatalf("PackedCiphertexts = %d, want < Classes %d", p, cfg.Classes)
	}
	// Slot width must cover the worst-case blinded sum: sum bits plus
	// kappa blinding bits plus a carry guard.
	if w := cfg.PackedWidth(); w != cfg.packedSumBits()+cfg.Kappa+1 {
		t.Fatalf("PackedWidth = %d, want sumBits+kappa+1 = %d", w, cfg.packedSumBits()+cfg.Kappa+1)
	}
}

func TestPackedBuildSubmissionShape(t *testing.T) {
	cfg := packedTestConfig(5)
	keys, err := GenerateKeys(testRNG(70), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := BuildSubmission(testRNG(71), testRNG(72), cfg, 0,
		oneHotVotes(cfg.Classes, 1), keys.S1Paillier.Public(), keys.S2Paillier.Public())
	if err != nil {
		t.Fatalf("BuildSubmission: %v", err)
	}
	p := cfg.PackedCiphertexts()
	for name, vec := range map[string][]int{
		"ToS1": {len(sub.ToS1.Votes), len(sub.ToS1.Thresh), len(sub.ToS1.Noisy)},
		"ToS2": {len(sub.ToS2.Votes), len(sub.ToS2.Thresh), len(sub.ToS2.Noisy)},
	} {
		for i, n := range vec {
			if n != p {
				t.Fatalf("%s vector %d has %d ciphertexts, want %d", name, i, n, p)
			}
		}
	}
	// Hostile inputs are rejected before any packing happens.
	bad := oneHotVotes(cfg.Classes, 1)
	bad[0] = big.NewInt(VoteScale + 1)
	if _, _, err := BuildSubmission(testRNG(73), testRNG(74), cfg, 0, bad,
		keys.S1Paillier.Public(), keys.S2Paillier.Public()); err == nil {
		t.Fatal("BuildSubmission accepted out-of-range vote in packed mode")
	}
}

func TestPackedProtocolConsensusNoNoise(t *testing.T) {
	cfg := packedTestConfig(5)
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.ThresholdFrac = 0.6
	keys, err := GenerateKeys(testRNG(75), cfg)
	if err != nil {
		t.Fatal(err)
	}
	votes := [][]*big.Int{
		oneHotVotes(cfg.Classes, 2),
		oneHotVotes(cfg.Classes, 2),
		oneHotVotes(cfg.Classes, 2),
		oneHotVotes(cfg.Classes, 2),
		oneHotVotes(cfg.Classes, 0),
	}
	subs, _ := buildAll(t, cfg, keys, votes, 76)
	out1, out2 := runInstance(t, cfg, keys, subs, nil)
	if *out1 != *out2 {
		t.Fatalf("servers disagree: %+v vs %+v", out1, out2)
	}
	if !out1.Consensus || out1.Label != 2 {
		t.Fatalf("outcome = %+v, want consensus on label 2", out1)
	}
}

// Differential: identical vote/noise draws must yield identical outcomes
// packed and unpacked (at the same key size, so only packing differs).
func TestPackedMatchesUnpackedOutcomes(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol runs are slow in -short mode")
	}
	for trial := 0; trial < 3; trial++ {
		base := packedTestConfig(4)
		base.Sigma1, base.Sigma2 = 2.0, 1.5
		base.ThresholdFrac = 0.5
		keys, err := GenerateKeys(testRNG(int64(80+trial)), base)
		if err != nil {
			t.Fatal(err)
		}
		votes := make([][]*big.Int, base.Users)
		voteRng := rand.New(rand.NewSource(int64(90 + trial)))
		for u := range votes {
			votes[u] = oneHotVotes(base.Classes, voteRng.Intn(base.Classes))
		}

		packedCfg := base
		plainCfg := base
		plainCfg.Packing = false

		// Same build seeds: the share splits and noise draws happen before
		// encryption, so both modes carry identical plaintext contributions.
		packedSubs, discs := buildAll(t, packedCfg, keys, votes, int64(100+trial))
		plainSubs, _ := buildAll(t, plainCfg, keys, votes, int64(100+trial))

		aggVotes, _, z2, err := AggregateDisclosures(discs)
		if err != nil {
			t.Fatal(err)
		}
		// Skip draws whose noisy maxima tie: permuted tie-breaking then
		// legitimately differs between the two runs' permutations.
		noisy := make([]*big.Int, base.Classes)
		for i := range noisy {
			noisy[i] = new(big.Int).Add(aggVotes[i], new(big.Int).Lsh(z2[i], 1))
		}
		iStar := argmaxBig(noisy)
		unique := true
		for i, v := range noisy {
			if i != iStar && v.Cmp(noisy[iStar]) == 0 {
				unique = false
			}
		}
		vStar := argmaxBig(aggVotes)
		for i, v := range aggVotes {
			if i != vStar && v.Cmp(aggVotes[vStar]) == 0 {
				unique = false
			}
		}
		if !unique {
			continue
		}

		packedOut1, packedOut2 := runInstance(t, packedCfg, keys, packedSubs, nil)
		plainOut1, plainOut2 := runInstance(t, plainCfg, keys, plainSubs, nil)
		if *packedOut1 != *packedOut2 {
			t.Fatalf("trial %d: packed servers disagree: %+v vs %+v", trial, packedOut1, packedOut2)
		}
		if *plainOut1 != *plainOut2 {
			t.Fatalf("trial %d: unpacked servers disagree: %+v vs %+v", trial, plainOut1, plainOut2)
		}
		if *packedOut1 != *plainOut1 {
			t.Fatalf("trial %d: packed outcome %+v != unpacked outcome %+v", trial, packedOut1, plainOut1)
		}
	}
}

// Packing × partial participation: quorum-miss subsets (with the δ
// threshold correction they trigger) decide identically packed and
// unpacked.
func TestPackedPartialParticipationMatchesUnpacked(t *testing.T) {
	base := packedTestConfig(6)
	base.Sigma1, base.Sigma2 = 0, 0
	base.ThresholdFrac = 0.6
	keys, err := GenerateKeys(testRNG(110), base)
	if err != nil {
		t.Fatal(err)
	}
	votes := [][]*big.Int{
		oneHotVotes(base.Classes, 1),
		oneHotVotes(base.Classes, 3), // dropped
		oneHotVotes(base.Classes, 1),
		oneHotVotes(base.Classes, 1),
		oneHotVotes(base.Classes, 3), // dropped
		oneHotVotes(base.Classes, 0),
	}
	plainCfg := base
	plainCfg.Packing = false
	packedSubs, _ := buildAll(t, base, keys, votes, 111)
	plainSubs, _ := buildAll(t, plainCfg, keys, votes, 111)

	for _, participants := range [][]int{{0, 2, 3, 5}, {0, 2, 3}, {2, 5}} {
		packedOut, packedOut2 := runInstance(t, base, keys, maskSubmissions(packedSubs, participants), nil)
		plainOut, _ := runInstance(t, plainCfg, keys, maskSubmissions(plainSubs, participants), nil)
		if *packedOut != *packedOut2 {
			t.Fatalf("participants %v: packed servers disagree: %+v vs %+v", participants, packedOut, packedOut2)
		}
		if *packedOut != *plainOut {
			t.Fatalf("participants %v: packed %+v != unpacked %+v", participants, packedOut, plainOut)
		}
		if packedOut.Participants != len(participants) {
			t.Fatalf("participants %v: recorded %d", participants, packedOut.Participants)
		}
	}
}

// At the paper's C=10 with production-size keys, packing must cut the
// per-user upload by >= 4x and the encryption count by >= 2x.
func TestPackedSubmissionSizeReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-bit key generation is slow in -short mode")
	}
	cfg := DefaultConfig(10)
	cfg.PaillierBits = 1024
	cfg.Packing = true
	plainCfg := cfg
	plainCfg.Packing = false
	keys, err := GenerateKeys(testRNG(120), cfg)
	if err != nil {
		t.Fatal(err)
	}
	packedSub, _, err := BuildSubmission(testRNG(121), testRNG(122), cfg, 0,
		oneHotVotes(cfg.Classes, 1), keys.S1Paillier.Public(), keys.S2Paillier.Public())
	if err != nil {
		t.Fatal(err)
	}
	plainSub, _, err := BuildSubmission(testRNG(121), testRNG(122), plainCfg, 0,
		oneHotVotes(cfg.Classes, 1), keys.S1Paillier.Public(), keys.S2Paillier.Public())
	if err != nil {
		t.Fatal(err)
	}
	packedBytes := SubmissionBytes(packedSub.ToS1) + SubmissionBytes(packedSub.ToS2)
	plainBytes := SubmissionBytes(plainSub.ToS1) + SubmissionBytes(plainSub.ToS2)
	if packedBytes*4 > plainBytes {
		t.Fatalf("packed upload %d bytes, unpacked %d: less than 4x smaller", packedBytes, plainBytes)
	}
	packedCts := len(packedSub.ToS1.Votes) + len(packedSub.ToS1.Thresh) + len(packedSub.ToS1.Noisy) +
		len(packedSub.ToS2.Votes) + len(packedSub.ToS2.Thresh) + len(packedSub.ToS2.Noisy)
	plainCts := 6 * cfg.Classes
	if packedCts*2 > plainCts {
		t.Fatalf("packed submission uses %d encryptions, unpacked %d: less than 2x fewer", packedCts, plainCts)
	}
}
