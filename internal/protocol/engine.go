package protocol

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"sort"
	"time"

	"github.com/privconsensus/privconsensus/internal/dgk"

	"github.com/privconsensus/privconsensus/internal/obs"
	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// Outcome is the result of one Alg. 5 execution, identical at both servers.
type Outcome struct {
	// Consensus reports whether the noisy highest vote passed the
	// threshold check (Alg. 5 step 5).
	Consensus bool
	// Label is the released label i~* (the argmax of the noisy votes),
	// or -1 when no consensus was reached.
	Label int
	// Participants is the number of submissions aggregated into this
	// outcome (== Users at full participation).
	Participants int
}

// comparerS1 abstracts S1's side of a signed secure comparison, single and
// batched (satisfied by *dgk.PublicKey).
type comparerS1 interface {
	CompareSignedA(context.Context, io.Reader, transport.Conn, *big.Int) (bool, error)
	CompareSignedBatchA(context.Context, io.Reader, transport.Conn, []*big.Int, int) ([]bool, error)
}

// comparerS2 abstracts S2's side (satisfied by *dgk.PrivateKey and the
// pooled variant below).
type comparerS2 interface {
	CompareSignedB(context.Context, io.Reader, transport.Conn, *big.Int) (bool, error)
	CompareSignedBatchB(context.Context, io.Reader, transport.Conn, []*big.Int, int) ([]bool, error)
}

// pooledComparerS2 draws S2's bit-encryption work from precomputed pools:
// h^r nonces for the single-comparison path, full comparison material for
// the batched path. Either pool may be nil, falling back to on-demand
// encryption with rng.
type pooledComparerS2 struct {
	key      *dgk.PrivateKey
	pool     *dgk.NoncePool
	material *dgk.MaterialPool
}

// CompareSignedB implements comparerS2.
func (p pooledComparerS2) CompareSignedB(ctx context.Context, rng io.Reader, conn transport.Conn, v *big.Int) (bool, error) {
	if p.material != nil {
		return p.key.CompareSignedBMaterial(ctx, p.material, conn, v)
	}
	if p.pool != nil {
		return p.key.CompareSignedBPooled(ctx, p.pool, conn, v)
	}
	return p.key.CompareSignedB(ctx, rng, conn, v)
}

// CompareSignedBatchB implements comparerS2.
func (p pooledComparerS2) CompareSignedBatchB(ctx context.Context, rng io.Reader, conn transport.Conn, vals []*big.Int, par int) ([]bool, error) {
	if p.material != nil {
		return p.key.CompareSignedBatchBMaterial(ctx, p.material, conn, vals, par)
	}
	return p.key.CompareSignedBatchB(ctx, rng, conn, vals, par)
}

// stepSetter lets the engine advance the metering label on metered conns.
type stepSetter interface{ SetStep(string) }

// setStep updates the traffic-attribution label if conn supports it.
func setStep(conn transport.Conn, step string) {
	if s, ok := conn.(stepSetter); ok {
		s.SetStep(step)
	}
}

// timeStep attributes fn's wall time to step in meter (nil meter OK), opens
// a matching phase span on the ambient tracer (see obs.WithTracer), and
// feeds the per-phase duration histogram. Step labels double as trace phase
// names, so meter and trace report the same per-phase quantities.
func timeStep(ctx context.Context, meter *transport.Meter, step string, fn func() error) error {
	tr := obs.TracerFrom(ctx)
	if tr != nil {
		tr.StartPhase(step)
	}
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	if meter != nil {
		meter.RecordElapsed(step, elapsed)
	}
	if tr != nil {
		tr.EndPhase(step, err)
	}
	phaseSeconds(step).Observe(elapsed.Seconds())
	return err
}

// RunS1 executes S1's role in the Private Consensus Protocol (Alg. 5) for
// one query instance. subs holds every user's ToS1 half (encrypted under
// pk2); nil halves mark dropped users. meter may be nil.
func RunS1(ctx context.Context, rng io.Reader, cfg Config, keys KeysS1,
	conn transport.Conn, subs []SubmissionHalf, meter *transport.Meter) (*Outcome, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(subs) != cfg.Users {
		return nil, fmt.Errorf("protocol: got %d submissions, want %d", len(subs), cfg.Users)
	}
	return RunS1Groups(ctx, rng, cfg, keys, conn, GroupSingletons(subs), meter)
}

// RunS1Groups is RunS1 over pre-aggregated ingestion groups (see Group):
// each group contributes one summed half covering all its members. The
// aggregate — and therefore the whole transcript and outcome — is
// byte-identical to running RunS1 with the same users submitting directly.
func RunS1Groups(ctx context.Context, rng io.Reader, cfg Config, keys KeysS1,
	conn transport.Conn, groups []Group, meter *transport.Meter) (*Outcome, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	keys.Precompute() // warm fixed-base tables before the first phase
	sess := newMuxSession(cfg, conn, meter)
	if sess.mux != nil {
		// math/rand sources are not safe for concurrent draws.
		rng = &lockedReader{r: rng}
	}
	conn = sess.seq
	par := cfg.parallelism()

	// Partial participation: aggregate only the present subset. Both
	// servers must mask the same subset (the deploy layer agrees on it via
	// the participant bitmap exchange, whole groups at a time).
	active, participants, adjust, err := groupInputs(cfg, groups)
	if err != nil {
		return nil, err
	}

	// Step 2: Secure Sum — aggregate user shares homomorphically.
	var aggVotes, aggThresh, aggNoisy []*paillier.Ciphertext
	err = timeStep(ctx, meter, StepSecureSum1, func() error {
		var err error
		aggVotes, err = aggregate(keys.PeerPub, active, par, func(h SubmissionHalf) []*paillier.Ciphertext { return h.Votes })
		if err != nil {
			return err
		}
		aggThresh, err = aggregate(keys.PeerPub, active, par, func(h SubmissionHalf) []*paillier.Ciphertext { return h.Thresh })
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("protocol: S1 secure sum: %w", err)
	}

	// Packed mode: one blinded interactive unpack turns the packed
	// aggregates into the per-class ciphertexts the remaining steps need.
	if cfg.Packing {
		setStep(conn, StepUnpack1)
		err = timeStep(ctx, meter, StepUnpack1, func() error {
			out, uerr := unpackS1(ctx, rng, cfg, keys, conn, [][]*paillier.Ciphertext{aggVotes, aggThresh}, len(participants))
			if uerr != nil {
				return uerr
			}
			aggVotes, aggThresh = out[0], out[1]
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("protocol: S1 packed unpack: %w", err)
		}
	}

	// Step 3: Blind-and-Permute the vote and threshold sequences together.
	setStep(conn, StepBlindPerm1)
	var bp *bpResultS1
	err = timeStep(ctx, meter, StepBlindPerm1, func() error {
		var err error
		bp, err = blindPermuteS1(ctx, rng, cfg, keys, conn, [][]*paillier.Ciphertext{aggVotes, aggThresh})
		return err
	})
	if err != nil {
		return nil, err
	}
	votesSeq, threshSeq := bp.Plain[0], bp.Plain[1]
	// Shift the threshold decision from the baked-in 2*O_P to the target
	// 2*H (see thresholdAdjustment): S1 subtracts delta at every position,
	// S2 adds it, so the comparison bias stays position-independent. At
	// full participation delta is zero and nothing changes.
	if adjust.Sign() != 0 {
		for _, v := range threshSeq {
			v.Sub(v, adjust)
		}
		// δ is public under the protocol's threat model (it derives from
		// the agreed participant count, not from any vote), so recording
		// it in the trace does not leak.
		if tr := obs.TracerFrom(ctx); tr != nil {
			tr.RecordEvent(obs.EventDelta, fmt.Sprintf("delta=%s participants=%d", adjust, len(participants)))
		}
	}

	// Step 4: Secure Comparison — all-pairs DGK to find pi(i*).
	setStep(conn, StepCompare1)
	var pStar int
	err = timeStep(ctx, meter, StepCompare1, func() error {
		var err error
		pStar, err = argmaxPermutedS1(ctx, rng, cfg, keys.DGKPub, sess, StepCompare1, votesSeq)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("protocol: S1 comparison phase 1: %w", err)
	}

	// Step 5: Threshold Checking at pi(i*) (optionally at all positions).
	setStep(conn, StepThreshold)
	var pass bool
	err = timeStep(ctx, meter, StepThreshold, func() error {
		var err error
		pass, err = thresholdCheckS1(ctx, rng, cfg, keys.DGKPub, sess, threshSeq, pStar)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("protocol: S1 threshold check: %w", err)
	}
	if !pass {
		return &Outcome{Consensus: false, Label: -1, Participants: len(participants)}, nil
	}

	// Step 6: second Secure Sum (noisy shares).
	err = timeStep(ctx, meter, StepSecureSum2, func() error {
		var err error
		aggNoisy, err = aggregate(keys.PeerPub, active, par, func(h SubmissionHalf) []*paillier.Ciphertext { return h.Noisy })
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("protocol: S1 secure sum 2: %w", err)
	}

	if cfg.Packing {
		setStep(conn, StepUnpack2)
		err = timeStep(ctx, meter, StepUnpack2, func() error {
			out, uerr := unpackS1(ctx, rng, cfg, keys, conn, [][]*paillier.Ciphertext{aggNoisy}, len(participants))
			if uerr != nil {
				return uerr
			}
			aggNoisy = out[0]
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("protocol: S1 packed unpack 2: %w", err)
		}
	}

	// Step 7: fresh Blind-and-Permute on the noisy votes.
	setStep(conn, StepBlindPerm2)
	var bp2 *bpResultS1
	err = timeStep(ctx, meter, StepBlindPerm2, func() error {
		var err error
		bp2, err = blindPermuteS1(ctx, rng, cfg, keys, conn, [][]*paillier.Ciphertext{aggNoisy})
		return err
	})
	if err != nil {
		return nil, err
	}

	// Step 8: Secure Comparison to find pi'(i~*).
	setStep(conn, StepCompare2)
	var pTilde int
	err = timeStep(ctx, meter, StepCompare2, func() error {
		var err error
		pTilde, err = argmaxPermutedS1(ctx, rng, cfg, keys.DGKPub, sess, StepCompare2, bp2.Plain[0])
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("protocol: S1 comparison phase 2: %w", err)
	}
	_ = pTilde // S1's share of the knowledge is pi1'; restoration reveals the label.

	// Step 9: Restoration.
	setStep(conn, StepRestoration)
	var label int
	err = timeStep(ctx, meter, StepRestoration, func() error {
		var err error
		label, err = restoreS1(ctx, rng, cfg, keys, conn, bp2.Pi1)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &Outcome{Consensus: true, Label: label, Participants: len(participants)}, nil
}

// S2Pools holds S2's precomputed DGK comparison material, kept warm by
// background refill workers. Created once per server process and passed to
// RunS2WithPools, the pools outlive individual instances: the offline phase
// (bit-encryption precompute) runs between queries, leaving the online
// phase mostly table walks.
type S2Pools struct {
	nonces   *dgk.NoncePool
	material *dgk.MaterialPool
}

// NewS2Pools builds the pools the configured strategy draws from: full
// comparison material for the batched tournament schedule, h^r nonces for
// the all-pairs schedule. Returns (nil, nil) when cfg.UseDGKPool is false —
// on-demand encryption needs no pools.
func NewS2Pools(cfg Config, keys KeysS2) (*S2Pools, error) {
	if !cfg.UseDGKPool {
		return nil, nil
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	workers := 2
	if par := cfg.parallelism(); par > workers {
		workers = par
	}
	if cfg.tournament() {
		// One material item covers a whole comparison (L bit-encryption
		// pairs), so capacity is counted in comparisons: one instance's
		// comparisonBudget by default, or the configured nonce-count
		// capacity converted at L nonces per comparison.
		capacity := cfg.comparisonBudget()
		if cfg.DGKPoolCapacity > 0 {
			capacity = (cfg.DGKPoolCapacity + cfg.DGK.L - 1) / cfg.DGK.L
		}
		mp, err := dgk.NewMaterialPool(nil, keys.DGK.Public(), capacity, workers)
		if err != nil {
			return nil, fmt.Errorf("protocol: DGK material pool: %w", err)
		}
		return &S2Pools{material: mp}, nil
	}
	capacity := cfg.DGKPoolCapacity
	if capacity <= 0 {
		// Every comparison consumes L nonces; cover the full instance
		// (both argmax phases plus threshold checks, per the
		// strategy-aware comparisonBudget) so the pool never drains into
		// on-demand generation.
		capacity = cfg.comparisonBudget() * cfg.DGK.L
	}
	np, err := dgk.NewNoncePool(nil, keys.DGK.Public(), capacity, workers)
	if err != nil {
		return nil, fmt.Errorf("protocol: DGK pool: %w", err)
	}
	return &S2Pools{nonces: np}, nil
}

// Close stops the background refill workers and releases buffered material.
func (p *S2Pools) Close() {
	if p == nil {
		return
	}
	if p.nonces != nil {
		p.nonces.Close()
	}
	if p.material != nil {
		p.material.Close()
	}
}

// RunS2 executes S2's role in Alg. 5. subs holds every user's ToS2 half
// (encrypted under pk1). Pools (when enabled) live only for this instance;
// long-running servers should hold an S2Pools and call RunS2WithPools so
// precompute overlaps the idle time between queries.
func RunS2(ctx context.Context, rng io.Reader, cfg Config, keys KeysS2,
	conn transport.Conn, subs []SubmissionHalf, meter *transport.Meter) (*Outcome, error) {
	return RunS2WithPools(ctx, rng, cfg, keys, conn, subs, meter, nil)
}

// RunS2WithPools is RunS2 drawing comparison material from caller-owned
// pools. pools may be nil: ephemeral pools are then created per cfg and
// closed when the instance finishes.
func RunS2WithPools(ctx context.Context, rng io.Reader, cfg Config, keys KeysS2,
	conn transport.Conn, subs []SubmissionHalf, meter *transport.Meter, pools *S2Pools) (*Outcome, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(subs) != cfg.Users {
		return nil, fmt.Errorf("protocol: got %d submissions, want %d", len(subs), cfg.Users)
	}
	return RunS2GroupsWithPools(ctx, rng, cfg, keys, conn, GroupSingletons(subs), meter, pools)
}

// RunS2Groups is RunS2 over pre-aggregated ingestion groups; see
// RunS1Groups.
func RunS2Groups(ctx context.Context, rng io.Reader, cfg Config, keys KeysS2,
	conn transport.Conn, groups []Group, meter *transport.Meter) (*Outcome, error) {
	return RunS2GroupsWithPools(ctx, rng, cfg, keys, conn, groups, meter, nil)
}

// RunS2GroupsWithPools is RunS2WithPools over pre-aggregated ingestion
// groups; see RunS1Groups.
func RunS2GroupsWithPools(ctx context.Context, rng io.Reader, cfg Config, keys KeysS2,
	conn transport.Conn, groups []Group, meter *transport.Meter, pools *S2Pools) (*Outcome, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	keys.Precompute() // warm fixed-base tables before the first phase
	sess := newMuxSession(cfg, conn, meter)
	if sess.mux != nil {
		// math/rand sources are not safe for concurrent draws.
		rng = &lockedReader{r: rng}
	}
	conn = sess.seq
	par := cfg.parallelism()

	// Partial participation: mirror RunS1Groups' subset masking exactly.
	active, participants, adjust, err := groupInputs(cfg, groups)
	if err != nil {
		return nil, err
	}

	// Optional randomness-table optimization for the DGK comparisons:
	// caller-owned pools when provided, ephemeral per-instance ones
	// otherwise.
	if pools == nil {
		p, err := NewS2Pools(cfg, keys)
		if err != nil {
			return nil, err
		}
		if p != nil {
			defer p.Close()
		}
		pools = p
	}
	var cmpB comparerS2 = keys.DGK
	if pools != nil {
		cmpB = pooledComparerS2{key: keys.DGK, pool: pools.nonces, material: pools.material}
	}

	var aggVotes, aggThresh, aggNoisy []*paillier.Ciphertext
	err = timeStep(ctx, meter, StepSecureSum1, func() error {
		var err error
		aggVotes, err = aggregate(keys.PeerPub, active, par, func(h SubmissionHalf) []*paillier.Ciphertext { return h.Votes })
		if err != nil {
			return err
		}
		aggThresh, err = aggregate(keys.PeerPub, active, par, func(h SubmissionHalf) []*paillier.Ciphertext { return h.Thresh })
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("protocol: S2 secure sum: %w", err)
	}

	if cfg.Packing {
		setStep(conn, StepUnpack1)
		err = timeStep(ctx, meter, StepUnpack1, func() error {
			out, uerr := unpackS2(ctx, rng, cfg, keys, conn, [][]*paillier.Ciphertext{aggVotes, aggThresh}, len(participants))
			if uerr != nil {
				return uerr
			}
			aggVotes, aggThresh = out[0], out[1]
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("protocol: S2 packed unpack: %w", err)
		}
	}

	setStep(conn, StepBlindPerm1)
	var bp *bpResultS2
	err = timeStep(ctx, meter, StepBlindPerm1, func() error {
		var err error
		bp, err = blindPermuteS2(ctx, rng, cfg, keys, conn, [][]*paillier.Ciphertext{aggVotes, aggThresh})
		return err
	})
	if err != nil {
		return nil, err
	}
	votesSeq, threshSeq := bp.Plain[0], bp.Plain[1]
	// S2 adds the same delta S1 subtracts; see the RunS1 comment.
	if adjust.Sign() != 0 {
		for _, v := range threshSeq {
			v.Add(v, adjust)
		}
		if tr := obs.TracerFrom(ctx); tr != nil {
			tr.RecordEvent(obs.EventDelta, fmt.Sprintf("delta=%s participants=%d", adjust, len(participants)))
		}
	}

	setStep(conn, StepCompare1)
	var pStar int
	err = timeStep(ctx, meter, StepCompare1, func() error {
		var err error
		pStar, err = argmaxPermutedS2(ctx, rng, cfg, cmpB, sess, StepCompare1, votesSeq)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("protocol: S2 comparison phase 1: %w", err)
	}

	setStep(conn, StepThreshold)
	var pass bool
	err = timeStep(ctx, meter, StepThreshold, func() error {
		var err error
		pass, err = thresholdCheckS2(ctx, rng, cfg, cmpB, sess, threshSeq, pStar)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("protocol: S2 threshold check: %w", err)
	}
	if !pass {
		return &Outcome{Consensus: false, Label: -1, Participants: len(participants)}, nil
	}

	err = timeStep(ctx, meter, StepSecureSum2, func() error {
		var err error
		aggNoisy, err = aggregate(keys.PeerPub, active, par, func(h SubmissionHalf) []*paillier.Ciphertext { return h.Noisy })
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("protocol: S2 secure sum 2: %w", err)
	}

	if cfg.Packing {
		setStep(conn, StepUnpack2)
		err = timeStep(ctx, meter, StepUnpack2, func() error {
			out, uerr := unpackS2(ctx, rng, cfg, keys, conn, [][]*paillier.Ciphertext{aggNoisy}, len(participants))
			if uerr != nil {
				return uerr
			}
			aggNoisy = out[0]
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("protocol: S2 packed unpack 2: %w", err)
		}
	}

	setStep(conn, StepBlindPerm2)
	var bp2 *bpResultS2
	err = timeStep(ctx, meter, StepBlindPerm2, func() error {
		var err error
		bp2, err = blindPermuteS2(ctx, rng, cfg, keys, conn, [][]*paillier.Ciphertext{aggNoisy})
		return err
	})
	if err != nil {
		return nil, err
	}

	setStep(conn, StepCompare2)
	var pTilde int
	err = timeStep(ctx, meter, StepCompare2, func() error {
		var err error
		pTilde, err = argmaxPermutedS2(ctx, rng, cfg, cmpB, sess, StepCompare2, bp2.Plain[0])
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("protocol: S2 comparison phase 2: %w", err)
	}

	setStep(conn, StepRestoration)
	var label int
	err = timeStep(ctx, meter, StepRestoration, func() error {
		var err error
		label, err = restoreS2(ctx, rng, cfg, keys, conn, bp2.Pi2, pTilde)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &Outcome{Consensus: true, Label: label, Participants: len(participants)}, nil
}

// groupInputs resolves the ingestion groups of one query instance into the
// dense half slice to aggregate, the sorted participant indices, and the
// threshold adjustment delta for that participant set. Groups must be
// non-empty, disjoint, in range, and carry all three ciphertext vectors.
func groupInputs(cfg Config, groups []Group) ([]SubmissionHalf, []int, *big.Int, error) {
	if len(groups) == 0 {
		return nil, nil, nil, fmt.Errorf("protocol: no participating submissions")
	}
	seen := make(map[int]bool)
	participants := make([]int, 0, len(groups))
	active := make([]SubmissionHalf, 0, len(groups))
	for gi, g := range groups {
		if len(g.Members) == 0 {
			return nil, nil, nil, fmt.Errorf("protocol: group %d has no members", gi)
		}
		for _, u := range g.Members {
			if u < 0 || u >= cfg.Users {
				return nil, nil, nil, fmt.Errorf("protocol: group %d member %d outside [0, %d)", gi, u, cfg.Users)
			}
			if seen[u] {
				return nil, nil, nil, fmt.Errorf("protocol: user %d appears in more than one group", u)
			}
			seen[u] = true
			participants = append(participants, u)
		}
		h := g.Half
		perVec := cfg.Classes
		if cfg.Packing {
			perVec = cfg.PackedCiphertexts()
		}
		if !h.Present() || len(h.Votes) != perVec || len(h.Thresh) != perVec || len(h.Noisy) != perVec {
			return nil, nil, nil, fmt.Errorf("protocol: group %d submission half is incomplete", gi)
		}
		active = append(active, h)
	}
	sort.Ints(participants)
	adjust, err := cfg.thresholdAdjustment(participants)
	if err != nil {
		return nil, nil, nil, err
	}
	return active, participants, adjust, nil
}

// aggregate homomorphically sums one field of every user's submission
// half. With par > 1 the users are split into chunks summed concurrently
// and the chunk partials combined in a tree; Paillier addition is
// ciphertext multiplication mod N^2 — associative and commutative — so
// every grouping yields the identical ciphertext vector.
func aggregate(pk *paillier.PublicKey, subs []SubmissionHalf, par int, field func(SubmissionHalf) []*paillier.Ciphertext) ([]*paillier.Ciphertext, error) {
	k := len(field(subs[0]))
	for u := 1; u < len(subs); u++ {
		if n := len(field(subs[u])); n != k {
			return nil, fmt.Errorf("protocol: user %d vector length %d != %d", u, n, k)
		}
	}
	// sumRange folds users [lo, hi) into a fresh ciphertext vector,
	// accumulating in place with one scratch big.Int per chunk so the hot
	// loop does not allocate a fresh product per addition.
	sumRange := func(lo, hi int) ([]*paillier.Ciphertext, error) {
		acc := make([]*paillier.Ciphertext, k)
		for i, c := range field(subs[lo]) {
			acc[i] = c.Clone()
		}
		scratch := new(big.Int)
		for u := lo + 1; u < hi; u++ {
			for i, c := range field(subs[u]) {
				if err := pk.AddInto(acc[i], c, scratch); err != nil {
					return nil, fmt.Errorf("protocol: aggregate user %d class %d: %w", u, i, err)
				}
			}
		}
		return acc, nil
	}
	if par <= 1 || len(subs) < 4 {
		return sumRange(0, len(subs))
	}

	chunkSize := (len(subs) + par - 1) / par
	bounds := make([][2]int, 0, par)
	for lo := 0; lo < len(subs); lo += chunkSize {
		bounds = append(bounds, [2]int{lo, min(lo+chunkSize, len(subs))})
	}
	partials := make([][]*paillier.Ciphertext, len(bounds))
	err := parallelFor(par, len(bounds), func(ci int) error {
		acc, err := sumRange(bounds[ci][0], bounds[ci][1])
		if err != nil {
			return err
		}
		partials[ci] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Tree-combine the chunk partials pairwise.
	for len(partials) > 1 {
		half := (len(partials) + 1) / 2
		next := make([][]*paillier.Ciphertext, half)
		err := parallelFor(par, half, func(j int) error {
			a := partials[2*j]
			if 2*j+1 == len(partials) {
				next[j] = a
				return nil
			}
			b := partials[2*j+1]
			scratch := new(big.Int)
			for i := range a {
				if err := pk.AddInto(a[i], b[i], scratch); err != nil {
					return fmt.Errorf("protocol: aggregate combine class %d: %w", i, err)
				}
			}
			next[j] = a
			return nil
		})
		if err != nil {
			return nil, err
		}
		partials = next
	}
	return partials[0], nil
}

// argmaxPermutedS1 finds the permuted position of the maximum, S1 side.
// Both parties derive the same result. The default tournament strategy runs
// the bracket of tournament.go with one batched exchange per level; the
// all-pairs strategy runs the original Eq. 7 schedule, one exchange per
// pair.
//
// In either schedule, for the pair (p, q), p < q, S1 supplies seq[p] -
// seq[q] and S2 supplies its seq[q] - seq[p]; the comparison bit is (c_p'
// >= c_q') because the common scalar bias cancels in each party's
// difference.
func argmaxPermutedS1(ctx context.Context, rng io.Reader, cfg Config, pub comparerS1,
	sess *muxSession, step string, seq []*big.Int) (int, error) {
	if cfg.tournament() {
		return tournamentArgmax(ctx, cfg, sess, seq, false,
			func(ctx context.Context, conn transport.Conn, diffs []*big.Int) ([]bool, error) {
				return pub.CompareSignedBatchA(ctx, rng, conn, diffs, sess.batchPar())
			})
	}
	jobs := argmaxJobs(cfg, seq, false)
	geqs, err := sess.runComparisons(ctx, step, jobs, func(ctx context.Context, conn transport.Conn, d *big.Int) (bool, error) {
		return pub.CompareSignedA(ctx, rng, conn, d)
	})
	if err != nil {
		return -1, err
	}
	strategyComparisons(cfg).Add(int64(len(jobs)))
	return argmaxWinner(cfg, geqs)
}

// argmaxPermutedS2 is the S2 (DGK key owner) side of argmaxPermutedS1.
func argmaxPermutedS2(ctx context.Context, rng io.Reader, cfg Config, key comparerS2,
	sess *muxSession, step string, seq []*big.Int) (int, error) {
	if cfg.tournament() {
		return tournamentArgmax(ctx, cfg, sess, seq, true,
			func(ctx context.Context, conn transport.Conn, diffs []*big.Int) ([]bool, error) {
				return key.CompareSignedBatchB(ctx, rng, conn, diffs, sess.batchPar())
			})
	}
	jobs := argmaxJobs(cfg, seq, true)
	geqs, err := sess.runComparisons(ctx, step, jobs, func(ctx context.Context, conn transport.Conn, d *big.Int) (bool, error) {
		return key.CompareSignedB(ctx, rng, conn, d)
	})
	if err != nil {
		return -1, err
	}
	strategyComparisons(cfg).Add(int64(len(jobs)))
	return argmaxWinner(cfg, geqs)
}

// argmaxJobs builds the all-pairs comparison jobs in the (p, q), p < q,
// row-major order both servers share. S2 (the DGK "B" party) negates the
// differences so one >= bit answers both parties.
func argmaxJobs(cfg Config, seq []*big.Int, negate bool) []cmpJob {
	k := cfg.Classes
	jobs := make([]cmpJob, 0, k*(k-1)/2)
	for p := 0; p < k; p++ {
		for q := p + 1; q < k; q++ {
			d := new(big.Int)
			if negate {
				d.Sub(seq[q], seq[p])
			} else {
				d.Sub(seq[p], seq[q])
			}
			jobs = append(jobs, cmpJob{tag: fmt.Sprintf("compare pair (%d,%d)", p, q), diff: d})
		}
	}
	return jobs
}

// argmaxWinner folds the per-pair >= bits (in argmaxJobs order) into the
// winning permuted position.
func argmaxWinner(cfg Config, geqs []bool) (int, error) {
	k := cfg.Classes
	wins := newWinsMatrix(k)
	i := 0
	for p := 0; p < k; p++ {
		for q := p + 1; q < k; q++ {
			wins.set(p, q, geqs[i])
			i++
		}
	}
	return wins.winner()
}

// winsMatrix records pairwise >= outcomes; ties are awarded to the lower
// permuted position so both servers resolve them identically.
type winsMatrix struct {
	k    int
	beat [][]bool
}

func newWinsMatrix(k int) *winsMatrix {
	m := &winsMatrix{k: k, beat: make([][]bool, k)}
	for i := range m.beat {
		m.beat[i] = make([]bool, k)
	}
	return m
}

// set records the outcome of the (p, q) comparison (p < q): geq means
// value_p >= value_q.
func (m *winsMatrix) set(p, q int, geq bool) {
	m.beat[p][q] = geq
	m.beat[q][p] = !geq
}

// winner returns the position that beats every other position.
func (m *winsMatrix) winner() (int, error) {
	for p := 0; p < m.k; p++ {
		all := true
		for q := 0; q < m.k; q++ {
			if q != p && !m.beat[p][q] {
				all = false
				break
			}
		}
		if all {
			return p, nil
		}
	}
	// Unreachable for outcomes derived from a total preorder.
	return -1, fmt.Errorf("protocol: comparison outcomes are inconsistent (no total winner)")
}

// thresholdCheckS1 runs the Alg. 5 step 5 DGK check, S1 side: at each
// checked position p the parties compare S1's threshSeq[p] against S2's,
// which decides c_p + 2*z1_p >= T since the shared bias r' cancels. Only
// the bit at pStar matters; with ThresholdAllPositions every position is
// checked so traffic does not depend on pStar.
// Under the tournament strategy the whole check is one batched exchange;
// under all-pairs it keeps the original one-exchange-per-position wire
// format.
func thresholdCheckS1(ctx context.Context, rng io.Reader, cfg Config, pub comparerS1,
	sess *muxSession, threshSeq []*big.Int, pStar int) (bool, error) {
	positions := checkPositions(cfg, pStar)
	jobs := thresholdJobs(positions, threshSeq)
	var geqs []bool
	var err error
	if cfg.tournament() {
		geqs, err = pub.CompareSignedBatchA(ctx, rng, sess.seq, jobDiffs(jobs), sess.batchPar())
		cmpJobsTotal.Add(int64(len(jobs)))
	} else {
		geqs, err = sess.runComparisons(ctx, StepThreshold, jobs,
			func(ctx context.Context, conn transport.Conn, d *big.Int) (bool, error) {
				return pub.CompareSignedA(ctx, rng, conn, d)
			})
	}
	if err != nil {
		return false, err
	}
	strategyComparisons(cfg).Add(int64(len(jobs)))
	return thresholdPass(positions, geqs, pStar), nil
}

// thresholdCheckS2 is the S2 side of thresholdCheckS1.
func thresholdCheckS2(ctx context.Context, rng io.Reader, cfg Config, key comparerS2,
	sess *muxSession, threshSeq []*big.Int, pStar int) (bool, error) {
	positions := checkPositions(cfg, pStar)
	jobs := thresholdJobs(positions, threshSeq)
	var geqs []bool
	var err error
	if cfg.tournament() {
		geqs, err = key.CompareSignedBatchB(ctx, rng, sess.seq, jobDiffs(jobs), sess.batchPar())
		cmpJobsTotal.Add(int64(len(jobs)))
	} else {
		geqs, err = sess.runComparisons(ctx, StepThreshold, jobs,
			func(ctx context.Context, conn transport.Conn, d *big.Int) (bool, error) {
				return key.CompareSignedB(ctx, rng, conn, d)
			})
	}
	if err != nil {
		return false, err
	}
	strategyComparisons(cfg).Add(int64(len(jobs)))
	return thresholdPass(positions, geqs, pStar), nil
}

// jobDiffs projects a job list onto its comparison inputs for the batched
// exchanges.
func jobDiffs(jobs []cmpJob) []*big.Int {
	diffs := make([]*big.Int, len(jobs))
	for i, j := range jobs {
		diffs[i] = j.diff
	}
	return diffs
}

// thresholdJobs builds one comparison job per checked permuted position.
func thresholdJobs(positions []int, threshSeq []*big.Int) []cmpJob {
	jobs := make([]cmpJob, len(positions))
	for i, p := range positions {
		jobs[i] = cmpJob{tag: fmt.Sprintf("threshold position %d", p), diff: threshSeq[p]}
	}
	return jobs
}

// thresholdPass extracts the deciding bit: only the comparison at pStar
// matters, the rest exist to keep traffic independent of pStar.
func thresholdPass(positions []int, geqs []bool, pStar int) bool {
	for i, p := range positions {
		if p == pStar {
			return geqs[i]
		}
	}
	return false
}

// checkPositions returns the permuted positions to threshold-check.
func checkPositions(cfg Config, pStar int) []int {
	if !cfg.ThresholdAllPositions {
		return []int{pStar}
	}
	out := make([]int, cfg.Classes)
	for i := range out {
		out[i] = i
	}
	return out
}
