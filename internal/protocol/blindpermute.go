package protocol

import (
	"context"
	"fmt"
	"io"
	"math/big"

	"github.com/privconsensus/privconsensus/internal/mathutil"
	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/perm"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// Blind-and-Permute (Alg. 2). S1 enters holding sequences encrypted under
// pk2, S2 enters holding the matching sequences encrypted under pk1. Both
// leave holding plaintext sequences permuted by the shared-but-unknown
// permutation pi = pi1 ∘ pi2 and biased by a common scalar r = r1 + r2 per
// sequence pair:
//
//	S1: pi(a + r)    S2: pi(b + r)
//
// The masks r1, r2 are scalars (one per sequence pair) because pairwise
// comparisons must cancel them (the paper's "common bias"); the re-encryption
// blind r3 is a full vector since it cancels exactly (DESIGN.md note 1).
//
// Multiple sequence pairs run under the same (pi1, pi2) in one invocation,
// as Alg. 5 step 3 requires for the vote and threshold sequences.

// bpResultS1 is S1's output of one Blind-and-Permute invocation.
type bpResultS1 struct {
	// Plain[s] = pi(seq_s + r_s) as signed integers.
	Plain [][]*big.Int
	// Pi1 is S1's private permutation share, needed for Restoration.
	Pi1 perm.Permutation
}

// bpResultS2 is S2's output.
type bpResultS2 struct {
	Plain [][]*big.Int
	Pi2   perm.Permutation
}

// blindPermuteS1 runs S1's side of Alg. 2 over conn for the given encrypted
// sequences (all under pk2).
func blindPermuteS1(ctx context.Context, rng io.Reader, cfg Config, keys KeysS1,
	conn transport.Conn, seqs [][]*paillier.Ciphertext) (*bpResultS1, error) {
	k := cfg.Classes
	nSeq := len(seqs)
	for s, seq := range seqs {
		if len(seq) != k {
			return nil, fmt.Errorf("protocol: sequence %d has length %d, want %d", s, len(seq), k)
		}
	}
	pk2 := keys.PeerPub

	// Step 1: add scalar mask r1_s to each sequence and ship to S2.
	r1 := make([]*big.Int, nSeq)
	masked := make([]*big.Int, 0, nSeq*k)
	for s, seq := range seqs {
		r, err := mathutil.RandBits(rng, cfg.Kappa)
		if err != nil {
			return nil, fmt.Errorf("protocol: sample r1: %w", err)
		}
		r1[s] = r
		for _, c := range seq {
			mc, err := pk2.AddPlain(c, r)
			if err != nil {
				return nil, fmt.Errorf("protocol: mask sequence %d: %w", s, err)
			}
			masked = append(masked, mc.C)
		}
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindCipherSeq, Values: masked, Flags: []int64{int64(nSeq)}}); err != nil {
		return nil, fmt.Errorf("protocol: B&P step 1 send: %w", err)
	}

	// Step 2 happens at S2; receive pi2-permuted plaintext sequences.
	msg, err := transport.ExpectKind(ctx, conn, transport.KindPlainSeq)
	if err != nil {
		return nil, fmt.Errorf("protocol: B&P step 2 recv: %w", err)
	}
	if len(msg.Values) != nSeq*k {
		return nil, fmt.Errorf("%w: B&P step 2 expected %d values, got %d", ErrPeerMismatch, nSeq*k, len(msg.Values))
	}

	// Step 3: apply pi1 to each sequence; these are S1's outputs.
	pi1, err := perm.New(rng, k)
	if err != nil {
		return nil, fmt.Errorf("protocol: sample pi1: %w", err)
	}
	out := make([][]*big.Int, nSeq)
	for s := 0; s < nSeq; s++ {
		seq := msg.Values[s*k : (s+1)*k]
		permuted, err := pi1.Apply(seq)
		if err != nil {
			return nil, err
		}
		out[s] = permuted
	}

	// Step 3 (cont.): send E_pk1[r1_s] so S2 can build its own sequences.
	pk1 := keys.Own.Public()
	encR1 := make([]*big.Int, nSeq)
	for s, r := range r1 {
		c, err := pk1.Encrypt(rng, r)
		if err != nil {
			return nil, fmt.Errorf("protocol: encrypt r1: %w", err)
		}
		encR1[s] = c.C
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindCipherSeq, Values: encR1}); err != nil {
		return nil, fmt.Errorf("protocol: B&P step 3 send: %w", err)
	}

	// Step 4 happens at S2; receive E_pk1[pi2(b + r1 + r2) + r3] and
	// E_pk2[-r3].
	msg, err = transport.ExpectKind(ctx, conn, transport.KindCipherSeq)
	if err != nil {
		return nil, fmt.Errorf("protocol: B&P step 4 recv: %w", err)
	}
	if len(msg.Values) != 2*nSeq*k {
		return nil, fmt.Errorf("%w: B&P step 4 expected %d values, got %d", ErrPeerMismatch, 2*nSeq*k, len(msg.Values))
	}

	// Step 5: decrypt with sk1, re-encrypt under pk2, cancel r3, permute
	// by pi1, return to S2. The per-element decrypt/re-encrypt is the
	// CPU-heavy re-randomization loop; it fans out across workers.
	processed := make([]*big.Int, nSeq*k)
	if err := parallelFor(cfg.parallelism(), nSeq*k, func(idx int) error {
		s, i := idx/k, idx%k
		blinded := msg.Values[s*k+i]
		negR3 := msg.Values[(nSeq+s)*k+i]
		plain, err := keys.Own.DecryptSigned(&paillier.Ciphertext{C: blinded})
		if err != nil {
			return fmt.Errorf("protocol: B&P step 5 decrypt: %w", err)
		}
		re, err := pk2.EncryptSigned(rng, plain)
		if err != nil {
			return fmt.Errorf("protocol: B&P step 5 re-encrypt: %w", err)
		}
		cancelled, err := pk2.Add(re, &paillier.Ciphertext{C: negR3})
		if err != nil {
			return fmt.Errorf("protocol: B&P step 5 cancel r3: %w", err)
		}
		processed[idx] = cancelled.C
		return nil
	}); err != nil {
		return nil, err
	}
	reencrypted := make([]*big.Int, 0, nSeq*k)
	for s := 0; s < nSeq; s++ {
		permuted, err := pi1.Apply(processed[s*k : (s+1)*k])
		if err != nil {
			return nil, err
		}
		reencrypted = append(reencrypted, permuted...)
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindCipherSeq, Values: reencrypted}); err != nil {
		return nil, fmt.Errorf("protocol: B&P step 5 send: %w", err)
	}

	return &bpResultS1{Plain: out, Pi1: pi1}, nil
}

// blindPermuteS2 runs S2's side of Alg. 2 for the matching sequences (all
// under pk1).
func blindPermuteS2(ctx context.Context, rng io.Reader, cfg Config, keys KeysS2,
	conn transport.Conn, seqs [][]*paillier.Ciphertext) (*bpResultS2, error) {
	k := cfg.Classes
	nSeq := len(seqs)
	for s, seq := range seqs {
		if len(seq) != k {
			return nil, fmt.Errorf("protocol: sequence %d has length %d, want %d", s, len(seq), k)
		}
	}
	pk1 := keys.PeerPub

	// Step 2: receive E_pk2[a + r1], decrypt, add r2, permute by pi2.
	msg, err := transport.ExpectKind(ctx, conn, transport.KindCipherSeq)
	if err != nil {
		return nil, fmt.Errorf("protocol: B&P step 2 recv: %w", err)
	}
	if len(msg.Flags) != 1 || msg.Flags[0] != int64(nSeq) || len(msg.Values) != nSeq*k {
		return nil, fmt.Errorf("%w: B&P step 2 malformed batch", ErrPeerMismatch)
	}
	pi2, err := perm.New(rng, k)
	if err != nil {
		return nil, fmt.Errorf("protocol: sample pi2: %w", err)
	}
	// The masks draw from rng up front (fixed order), then the Paillier
	// decryptions — randomness-free — fan out across workers.
	r2 := make([]*big.Int, nSeq)
	for s := 0; s < nSeq; s++ {
		r, err := mathutil.RandBits(rng, cfg.Kappa)
		if err != nil {
			return nil, fmt.Errorf("protocol: sample r2: %w", err)
		}
		r2[s] = r
	}
	decrypted := make([]*big.Int, nSeq*k)
	if err := parallelFor(cfg.parallelism(), nSeq*k, func(idx int) error {
		plain, err := keys.Own.DecryptSigned(&paillier.Ciphertext{C: msg.Values[idx]})
		if err != nil {
			return fmt.Errorf("protocol: B&P step 2 decrypt: %w", err)
		}
		decrypted[idx] = plain.Add(plain, r2[idx/k])
		return nil
	}); err != nil {
		return nil, err
	}
	plainOut := make([]*big.Int, 0, nSeq*k)
	for s := 0; s < nSeq; s++ {
		permuted, err := pi2.Apply(decrypted[s*k : (s+1)*k])
		if err != nil {
			return nil, err
		}
		plainOut = append(plainOut, permuted...)
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindPlainSeq, Values: plainOut}); err != nil {
		return nil, fmt.Errorf("protocol: B&P step 2 send: %w", err)
	}

	// Step 3 (cont.): receive E_pk1[r1_s].
	msg, err = transport.ExpectKind(ctx, conn, transport.KindCipherSeq)
	if err != nil {
		return nil, fmt.Errorf("protocol: B&P step 3 recv: %w", err)
	}
	if len(msg.Values) != nSeq {
		return nil, fmt.Errorf("%w: B&P step 3 expected %d masks, got %d", ErrPeerMismatch, nSeq, len(msg.Values))
	}
	encR1 := msg.Values

	// Step 4: build E_pk1[pi2(b + r1 + r2) + r3], plus E_pk2[-r3].
	r3 := make([][]*big.Int, nSeq)
	payload := make([]*big.Int, 0, 2*nSeq*k)
	for s := 0; s < nSeq; s++ {
		seq := make([]*big.Int, k)
		for i := 0; i < k; i++ {
			c, err := pk1.Add(seqs[s][i], &paillier.Ciphertext{C: encR1[s]})
			if err != nil {
				return nil, fmt.Errorf("protocol: B&P step 4 add r1: %w", err)
			}
			c, err = pk1.AddPlain(c, r2[s])
			if err != nil {
				return nil, fmt.Errorf("protocol: B&P step 4 add r2: %w", err)
			}
			seq[i] = c.C
		}
		permuted, err := pi2.Apply(seq)
		if err != nil {
			return nil, err
		}
		r3[s] = make([]*big.Int, k)
		for i := 0; i < k; i++ {
			mask, err := mathutil.RandBits(rng, cfg.Kappa)
			if err != nil {
				return nil, fmt.Errorf("protocol: sample r3: %w", err)
			}
			r3[s][i] = mask
			c, err := pk1.AddPlain(&paillier.Ciphertext{C: permuted[i]}, mask)
			if err != nil {
				return nil, fmt.Errorf("protocol: B&P step 4 add r3: %w", err)
			}
			permuted[i] = c.C
		}
		payload = append(payload, permuted...)
	}
	// Fresh encryptions of -r3 dominate step 4's CPU cost; fan out.
	pk2own := keys.Own.Public()
	encNegR3 := make([]*big.Int, nSeq*k)
	if err := parallelFor(cfg.parallelism(), nSeq*k, func(idx int) error {
		s, i := idx/k, idx%k
		c, err := pk2own.EncryptSigned(rng, new(big.Int).Neg(r3[s][i]))
		if err != nil {
			return fmt.Errorf("protocol: B&P step 4 encrypt -r3: %w", err)
		}
		encNegR3[idx] = c.C
		return nil
	}); err != nil {
		return nil, err
	}
	payload = append(payload, encNegR3...)
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindCipherSeq, Values: payload}); err != nil {
		return nil, fmt.Errorf("protocol: B&P step 4 send: %w", err)
	}

	// Step 6: receive E_pk2[pi(b + r1 + r2)] and decrypt.
	msg, err = transport.ExpectKind(ctx, conn, transport.KindCipherSeq)
	if err != nil {
		return nil, fmt.Errorf("protocol: B&P step 6 recv: %w", err)
	}
	if len(msg.Values) != nSeq*k {
		return nil, fmt.Errorf("%w: B&P step 6 expected %d values, got %d", ErrPeerMismatch, nSeq*k, len(msg.Values))
	}
	final := make([]*big.Int, nSeq*k)
	if err := parallelFor(cfg.parallelism(), nSeq*k, func(idx int) error {
		plain, err := keys.Own.DecryptSigned(&paillier.Ciphertext{C: msg.Values[idx]})
		if err != nil {
			return fmt.Errorf("protocol: B&P step 6 decrypt: %w", err)
		}
		final[idx] = plain
		return nil
	}); err != nil {
		return nil, err
	}
	out := make([][]*big.Int, nSeq)
	for s := 0; s < nSeq; s++ {
		out[s] = final[s*k : (s+1)*k]
	}
	return &bpResultS2{Plain: out, Pi2: pi2}, nil
}
