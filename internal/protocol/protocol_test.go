package protocol

import (
	"math/big"
	"math/rand"
	"testing"

	"github.com/privconsensus/privconsensus/internal/dgk"
	"github.com/privconsensus/privconsensus/internal/secshare"
)

func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// testConfig returns a small, fast configuration for protocol tests.
func testConfig(users int) Config {
	cfg := DefaultConfig(users)
	cfg.Classes = 4
	cfg.Kappa = 24
	cfg.DGK = dgk.Params{NBits: 160, TBits: 32, U: 1009, L: 50}
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(10)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"one class", func(c *Config) { c.Classes = 1 }},
		{"zero users", func(c *Config) { c.Users = 0 }},
		{"threshold > 1", func(c *Config) { c.ThresholdFrac = 1.5 }},
		{"negative sigma", func(c *Config) { c.Sigma1 = -1 }},
		{"tiny kappa", func(c *Config) { c.Kappa = 2 }},
		{"tiny paillier", func(c *Config) { c.PaillierBits = 8 }},
		{"bad dgk", func(c *Config) { c.DGK.U = 6 }},
		{"values overflow dgk", func(c *Config) { c.DGK.L = 20 }},
		{"values overflow paillier", func(c *Config) { c.PaillierBits = 30; c.Kappa = 30 }},
	}
	for _, c := range cases {
		cfg := testConfig(10)
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestThresholdUnits(t *testing.T) {
	cfg := testConfig(10)
	cfg.ThresholdFrac = 0.6
	tu := cfg.ThresholdUnits()
	// 0.6 * 10 users * 65536 = 393216, already even.
	if tu.Cmp(big.NewInt(393216)) != 0 {
		t.Errorf("ThresholdUnits = %v, want 393216", tu)
	}
	if tu.Bit(0) != 0 {
		t.Error("threshold must be even")
	}
}

func TestPerUserOffsetsSumToHalfThreshold(t *testing.T) {
	for _, users := range []int{1, 3, 7, 10, 99} {
		cfg := DefaultConfig(users)
		cfg.ThresholdFrac = 0.57 // awkward fraction to force rounding
		half := new(big.Int).Rsh(cfg.ThresholdUnits(), 1)
		sum := new(big.Int)
		for u := 0; u < users; u++ {
			off, err := cfg.PerUserOffset(u)
			if err != nil {
				t.Fatalf("PerUserOffset(%d): %v", u, err)
			}
			sum.Add(sum, off)
		}
		if sum.Cmp(half) != 0 {
			t.Errorf("users=%d: offsets sum %v != T/2 %v", users, sum, half)
		}
	}
	cfg := DefaultConfig(5)
	if _, err := cfg.PerUserOffset(5); err == nil {
		t.Error("expected range error")
	}
	if _, err := cfg.PerUserOffset(-1); err == nil {
		t.Error("expected range error")
	}
}

func oneHotVotes(classes, label int) []*big.Int {
	out := make([]*big.Int, classes)
	for i := range out {
		out[i] = big.NewInt(0)
	}
	out[label] = big.NewInt(VoteScale)
	return out
}

func TestBuildSubmissionShareIdentities(t *testing.T) {
	cfg := testConfig(3)
	cfg.Sigma1, cfg.Sigma2 = 1.5, 1.0
	keys, err := GenerateKeys(testRNG(1), cfg)
	if err != nil {
		t.Fatalf("GenerateKeys: %v", err)
	}
	rng := testRNG(2)
	noise := testRNG(3)

	votes := oneHotVotes(cfg.Classes, 2)
	sub, disc, err := BuildSubmission(rng, noise, cfg, 0, votes, keys.S1Paillier.Public(), keys.S2Paillier.Public())
	if err != nil {
		t.Fatalf("BuildSubmission: %v", err)
	}

	// Decrypt both halves and verify the share identities.
	a, err := keys.S2Paillier.DecryptSignedVector(sub.ToS1.Votes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := keys.S1Paillier.DecryptSignedVector(sub.ToS2.Votes)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := secshare.Recombine(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range votes {
		if rec[i].Cmp(votes[i]) != 0 {
			t.Errorf("vote share recombination class %d: %v != %v", i, rec[i], votes[i])
		}
	}

	// Threshold halves: toS1 + toS2 = votes - 0 (offsets cancel: off - off)
	// plus nothing... actually toS1+toS2 = a - off + z1 + off - b... no:
	// toS1 = a - off + z1, toS2 = off - b - z1, so toS1 + toS2 = a - b.
	// Verify instead toS1 - (-toS2) identities via the aggregate:
	// toS1 - toS2 = a + b + 2z1 - 2off = votes + 2z1 - 2off.
	ts1, err := keys.S2Paillier.DecryptSignedVector(sub.ToS1.Thresh)
	if err != nil {
		t.Fatal(err)
	}
	ts2, err := keys.S1Paillier.DecryptSignedVector(sub.ToS2.Thresh)
	if err != nil {
		t.Fatal(err)
	}
	off, err := cfg.PerUserOffset(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range votes {
		diff := new(big.Int).Sub(ts1[i], ts2[i])
		want := new(big.Int).Add(votes[i], new(big.Int).Lsh(disc.Z1[i], 1))
		want.Sub(want, new(big.Int).Lsh(off, 1))
		if diff.Cmp(want) != 0 {
			t.Errorf("threshold identity class %d: %v != %v", i, diff, want)
		}
	}

	// Noisy halves: toS1 + toS2 = votes + 2*z2.
	n1, err := keys.S2Paillier.DecryptSignedVector(sub.ToS1.Noisy)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := keys.S1Paillier.DecryptSignedVector(sub.ToS2.Noisy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range votes {
		sum := new(big.Int).Add(n1[i], n2[i])
		want := new(big.Int).Add(votes[i], new(big.Int).Lsh(disc.Z2[i], 1))
		if sum.Cmp(want) != 0 {
			t.Errorf("noisy identity class %d: %v != %v", i, sum, want)
		}
	}
}

func TestBuildSubmissionValidation(t *testing.T) {
	cfg := testConfig(2)
	keys, err := GenerateKeys(testRNG(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	pk1, pk2 := keys.S1Paillier.Public(), keys.S2Paillier.Public()
	rng, noise := testRNG(5), testRNG(6)

	if _, _, err := BuildSubmission(rng, noise, cfg, 0, oneHotVotes(3, 0), pk1, pk2); err == nil {
		t.Error("expected error for wrong vote length")
	}
	bad := oneHotVotes(cfg.Classes, 0)
	bad[1] = big.NewInt(-1)
	if _, _, err := BuildSubmission(rng, noise, cfg, 0, bad, pk1, pk2); err == nil {
		t.Error("expected error for negative vote")
	}
	bad[1] = big.NewInt(VoteScale + 1)
	if _, _, err := BuildSubmission(rng, noise, cfg, 0, bad, pk1, pk2); err == nil {
		t.Error("expected error for oversized vote")
	}
	if _, _, err := BuildSubmission(rng, noise, cfg, 9, oneHotVotes(cfg.Classes, 0), pk1, pk2); err == nil {
		t.Error("expected error for bad user index")
	}
}

func TestPlainOutcome(t *testing.T) {
	zeros := func(k int) []*big.Int {
		out := make([]*big.Int, k)
		for i := range out {
			out[i] = big.NewInt(0)
		}
		return out
	}
	votes := []*big.Int{big.NewInt(100), big.NewInt(400), big.NewInt(300)}

	// Threshold below max: consensus, label = argmax.
	ok, label, err := PlainOutcome(votes, zeros(3), zeros(3), big.NewInt(350))
	if err != nil || !ok || label != 1 {
		t.Errorf("PlainOutcome = %v, %d, %v; want true, 1", ok, label, err)
	}
	// Threshold above max: no consensus.
	ok, label, err = PlainOutcome(votes, zeros(3), zeros(3), big.NewInt(500))
	if err != nil || ok || label != -1 {
		t.Errorf("PlainOutcome = %v, %d, %v; want false, -1", ok, label, err)
	}
	// Noise flips the released label (z2 moves class 2 above class 1).
	z2 := []*big.Int{big.NewInt(0), big.NewInt(0), big.NewInt(60)}
	ok, label, err = PlainOutcome(votes, zeros(3), z2, big.NewInt(100))
	if err != nil || !ok || label != 2 {
		t.Errorf("PlainOutcome with z2 = %v, %d, %v; want true, 2", ok, label, err)
	}
	// Noise rescues a below-threshold check.
	z1 := []*big.Int{big.NewInt(0), big.NewInt(60), big.NewInt(0)}
	ok, _, err = PlainOutcome(votes, z1, zeros(3), big.NewInt(500))
	if err != nil || !ok {
		t.Errorf("PlainOutcome with z1 = %v, %v; want true", ok, err)
	}
	// Validation.
	if _, _, err := PlainOutcome(votes, zeros(2), zeros(3), big.NewInt(1)); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, _, err := PlainOutcome(nil, nil, nil, big.NewInt(1)); err == nil {
		t.Error("expected empty input error")
	}
}

func TestAggregateDisclosures(t *testing.T) {
	d1 := &Disclosure{
		Votes: []*big.Int{big.NewInt(1), big.NewInt(2)},
		Z1:    []*big.Int{big.NewInt(3), big.NewInt(4)},
		Z2:    []*big.Int{big.NewInt(5), big.NewInt(6)},
	}
	d2 := &Disclosure{
		Votes: []*big.Int{big.NewInt(10), big.NewInt(20)},
		Z1:    []*big.Int{big.NewInt(30), big.NewInt(40)},
		Z2:    []*big.Int{big.NewInt(50), big.NewInt(60)},
	}
	votes, z1, z2, err := AggregateDisclosures([]*Disclosure{d1, d2})
	if err != nil {
		t.Fatal(err)
	}
	if votes[0].Int64() != 11 || z1[1].Int64() != 44 || z2[0].Int64() != 55 {
		t.Errorf("aggregation wrong: %v %v %v", votes, z1, z2)
	}
	if _, _, _, err := AggregateDisclosures(nil); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestSubmissionBytesPositive(t *testing.T) {
	cfg := testConfig(2)
	keys, err := GenerateKeys(testRNG(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := BuildSubmission(testRNG(8), testRNG(9), cfg, 0,
		oneHotVotes(cfg.Classes, 1), keys.S1Paillier.Public(), keys.S2Paillier.Public())
	if err != nil {
		t.Fatal(err)
	}
	n := SubmissionBytes(sub.ToS1)
	// 3 vectors of Classes ciphertexts, each at least 5 bytes of framing.
	if n < 3*cfg.Classes*5 {
		t.Errorf("SubmissionBytes = %d, implausibly small", n)
	}
}

func TestNoiseSharesZeroSigma(t *testing.T) {
	cfg := testConfig(2)
	z, err := cfg.sampleNoiseShares(testRNG(10), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range z {
		if v.Sign() != 0 {
			t.Errorf("class %d: expected zero noise, got %v", i, v)
		}
	}
}

func TestNoiseSharesClamped(t *testing.T) {
	cfg := testConfig(2)
	cfg.Kappa = 8 // clamp at 256 units
	// Huge sigma so raw samples exceed the clamp routinely.
	z, err := cfg.sampleNoiseShares(testRNG(11), 1000)
	if err != nil {
		t.Fatal(err)
	}
	clamp := big.NewInt(256)
	for i, v := range z {
		if new(big.Int).Abs(v).Cmp(clamp) > 0 {
			t.Errorf("class %d: noise %v exceeds clamp", i, v)
		}
	}
}
