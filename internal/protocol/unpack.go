package protocol

import (
	"context"
	"fmt"
	"io"
	"math/big"

	"github.com/privconsensus/privconsensus/internal/mathutil"
	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/transport"
)

// Blinded interactive unpack. In packed mode each server finishes a
// secure-sum phase holding P packed ciphertexts per sequence instead of
// K per-class ones, but Blind-and-Permute and the DGK comparisons need
// per-class ciphertexts. Each server therefore adds a per-slot
// statistical blind (packed, so one AddPlain per ciphertext), ships the
// blinded aggregate to the key owner in one frame, and gets back K
// fresh per-class encryptions of the blinded slot values; stripping the
// blind (plus the public participant-count bias) homomorphically
// yields exactly the per-class aggregate ciphertexts the unpacked path
// aggregates directly. The decryptor only ever sees slot sums shifted
// by a uniform blind kappa bits wider than the sum bound — the same
// statistical-blinding argument as Blind-and-Permute's masked
// decryptions — and one round trip covers all sequences of a phase.
//
// Wire order on the (sequential) peer link:
//
//	1. S1 -> S2: S1's blinded packed aggregates  (nSeq*P values)
//	2. S2 -> S1: per-class re-encryptions under pk2 (nSeq*K values)
//	3. S2 -> S1: S2's blinded packed aggregates  (nSeq*P values)
//	4. S1 -> S2: per-class re-encryptions under pk1 (nSeq*K values)

// unpackBlinds draws one fresh blind per class for each sequence, each
// uniform in [0, 2^(Width-1)) — kappa bits wider than any slot sum.
func unpackBlinds(rng io.Reader, layout paillier.Packing, nSeq int) ([][]*big.Int, error) {
	out := make([][]*big.Int, nSeq)
	for s := range out {
		out[s] = make([]*big.Int, layout.Count)
		for j := range out[s] {
			r, err := mathutil.RandBits(rng, layout.Width-1)
			if err != nil {
				return nil, fmt.Errorf("protocol: sample unpack blind: %w", err)
			}
			out[s][j] = r
		}
	}
	return out, nil
}

// blindPacked masks each packed sequence with its slot-aligned blinds:
// one AddPlain per packed ciphertext.
func blindPacked(pk *paillier.PublicKey, layout paillier.Packing,
	seqs [][]*paillier.Ciphertext, blinds [][]*big.Int) ([]*big.Int, error) {
	p := layout.Plaintexts()
	out := make([]*big.Int, 0, len(seqs)*p)
	for s, seq := range seqs {
		if len(seq) != p {
			return nil, fmt.Errorf("protocol: packed sequence %d has %d ciphertexts, want %d", s, len(seq), p)
		}
		mask, err := layout.PackRaw(blinds[s])
		if err != nil {
			return nil, fmt.Errorf("protocol: pack unpack blinds: %w", err)
		}
		for i, c := range seq {
			mc, err := pk.AddPlain(c, mask[i])
			if err != nil {
				return nil, fmt.Errorf("protocol: blind packed sequence %d: %w", s, err)
			}
			out = append(out, mc.C)
		}
	}
	return out, nil
}

// reencryptSlots plays the key owner: decrypt each blinded packed
// aggregate, split it into slot values, and return fresh per-class
// encryptions of those (still blinded) values under encPK. All slot
// values are non-negative by construction, so the unsigned decrypt
// avoids the signed-residue boundary that full-width packed plaintexts
// would otherwise straddle.
func reencryptSlots(rng io.Reader, cfg Config, sk *paillier.PrivateKey, encPK *paillier.PublicKey,
	layout paillier.Packing, values []*big.Int, nSeq int) ([]*big.Int, error) {
	p := layout.Plaintexts()
	k := layout.Count
	slots := make([][]*big.Int, nSeq)
	if err := parallelFor(cfg.parallelism(), nSeq, func(s int) error {
		packed := make([]*big.Int, p)
		for i := 0; i < p; i++ {
			m, err := sk.Decrypt(&paillier.Ciphertext{C: values[s*p+i]})
			if err != nil {
				return fmt.Errorf("protocol: unpack decrypt: %w", err)
			}
			packed[i] = m
		}
		split, err := layout.Split(packed)
		if err != nil {
			return fmt.Errorf("protocol: unpack split: %w", err)
		}
		slots[s] = split
		return nil
	}); err != nil {
		return nil, err
	}
	out := make([]*big.Int, nSeq*k)
	if err := parallelFor(cfg.parallelism(), nSeq*k, func(idx int) error {
		c, err := encPK.Encrypt(rng, slots[idx/k][idx%k])
		if err != nil {
			return fmt.Errorf("protocol: unpack re-encrypt: %w", err)
		}
		out[idx] = c.C
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// stripBlinds removes the blinds and the aggregate bias from the
// returned per-class ciphertexts: slot j carried sum_j + n*Bias + r_j,
// so subtracting r_j + n*Bias leaves E[sum_j].
func stripBlinds(pk *paillier.PublicKey, layout paillier.Packing,
	values []*big.Int, blinds [][]*big.Int, nUsers int) ([][]*paillier.Ciphertext, error) {
	k := layout.Count
	nBias := new(big.Int).Mul(big.NewInt(int64(nUsers)), layout.Bias)
	out := make([][]*paillier.Ciphertext, len(blinds))
	for s := range blinds {
		out[s] = make([]*paillier.Ciphertext, k)
		for j := 0; j < k; j++ {
			strip := new(big.Int).Add(blinds[s][j], nBias)
			c, err := pk.AddPlain(&paillier.Ciphertext{C: values[s*k+j]}, strip.Neg(strip))
			if err != nil {
				return nil, fmt.Errorf("protocol: strip unpack blind: %w", err)
			}
			out[s][j] = c
		}
	}
	return out, nil
}

// unpackS1 runs S1's side of the blinded unpack for its packed
// aggregate sequences (under pk2), acting as key owner for S2's.
// nUsers is the (public) participant count whose per-user bias the
// strip removes. Returns per-class aggregate sequences under pk2.
func unpackS1(ctx context.Context, rng io.Reader, cfg Config, keys KeysS1,
	conn transport.Conn, seqs [][]*paillier.Ciphertext, nUsers int) ([][]*paillier.Ciphertext, error) {
	layout := cfg.packedLayout()
	nSeq := len(seqs)
	p := layout.Plaintexts()
	k := layout.Count

	// Step 1: blind own packed aggregates and ship to the key owner S2.
	blinds, err := unpackBlinds(rng, layout, nSeq)
	if err != nil {
		return nil, err
	}
	blinded, err := blindPacked(keys.PeerPub, layout, seqs, blinds)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindCipherSeq, Values: blinded, Flags: []int64{int64(nSeq)}}); err != nil {
		return nil, fmt.Errorf("protocol: unpack step 1 send: %w", err)
	}

	// Step 2: receive the per-class re-encryptions of our blinded slots.
	msg, err := transport.ExpectKind(ctx, conn, transport.KindCipherSeq)
	if err != nil {
		return nil, fmt.Errorf("protocol: unpack step 2 recv: %w", err)
	}
	if len(msg.Values) != nSeq*k {
		return nil, fmt.Errorf("%w: unpack step 2 expected %d values, got %d", ErrPeerMismatch, nSeq*k, len(msg.Values))
	}
	own := msg.Values

	// Step 3: receive S2's blinded packed aggregates (under pk1).
	msg, err = transport.ExpectKind(ctx, conn, transport.KindCipherSeq)
	if err != nil {
		return nil, fmt.Errorf("protocol: unpack step 3 recv: %w", err)
	}
	if len(msg.Flags) != 1 || msg.Flags[0] != int64(nSeq) || len(msg.Values) != nSeq*p {
		return nil, fmt.Errorf("%w: unpack step 3 malformed batch", ErrPeerMismatch)
	}

	// Step 4: decrypt, split, re-encrypt per class under pk1, return.
	re, err := reencryptSlots(rng, cfg, keys.Own, keys.Own.Public(), layout, msg.Values, nSeq)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindCipherSeq, Values: re}); err != nil {
		return nil, fmt.Errorf("protocol: unpack step 4 send: %w", err)
	}

	return stripBlinds(keys.PeerPub, layout, own, blinds, nUsers)
}

// unpackS2 runs S2's side: key owner for S1's packed aggregates, then
// holder for its own (under pk1). Returns per-class sequences under pk1.
func unpackS2(ctx context.Context, rng io.Reader, cfg Config, keys KeysS2,
	conn transport.Conn, seqs [][]*paillier.Ciphertext, nUsers int) ([][]*paillier.Ciphertext, error) {
	layout := cfg.packedLayout()
	nSeq := len(seqs)
	p := layout.Plaintexts()
	k := layout.Count

	// Step 1: receive S1's blinded packed aggregates (under pk2).
	msg, err := transport.ExpectKind(ctx, conn, transport.KindCipherSeq)
	if err != nil {
		return nil, fmt.Errorf("protocol: unpack step 1 recv: %w", err)
	}
	if len(msg.Flags) != 1 || msg.Flags[0] != int64(nSeq) || len(msg.Values) != nSeq*p {
		return nil, fmt.Errorf("%w: unpack step 1 malformed batch", ErrPeerMismatch)
	}

	// Step 2: decrypt, split, re-encrypt per class under pk2, return.
	re, err := reencryptSlots(rng, cfg, keys.Own, keys.Own.Public(), layout, msg.Values, nSeq)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindCipherSeq, Values: re}); err != nil {
		return nil, fmt.Errorf("protocol: unpack step 2 send: %w", err)
	}

	// Step 3: blind own packed aggregates and ship to the key owner S1.
	blinds, err := unpackBlinds(rng, layout, nSeq)
	if err != nil {
		return nil, err
	}
	blinded, err := blindPacked(keys.PeerPub, layout, seqs, blinds)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(ctx, &transport.Message{Kind: transport.KindCipherSeq, Values: blinded, Flags: []int64{int64(nSeq)}}); err != nil {
		return nil, fmt.Errorf("protocol: unpack step 3 send: %w", err)
	}

	// Step 4: receive our per-class re-encryptions and strip the blinds.
	msg, err = transport.ExpectKind(ctx, conn, transport.KindCipherSeq)
	if err != nil {
		return nil, fmt.Errorf("protocol: unpack step 4 recv: %w", err)
	}
	if len(msg.Values) != nSeq*k {
		return nil, fmt.Errorf("%w: unpack step 4 expected %d values, got %d", ErrPeerMismatch, nSeq*k, len(msg.Values))
	}
	return stripBlinds(keys.PeerPub, layout, msg.Values, blinds, nUsers)
}
