package protocol

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"sync"
	"sync/atomic"

	"github.com/privconsensus/privconsensus/internal/transport"
)

// Concurrency support for the protocol hot path. Two independent levers
// hang off Config.Parallelism:
//
//   - single-party CPU work (homomorphic aggregation, Paillier
//     re-randomization in Blind-and-Permute) fans out over parallelFor;
//   - the interactive DGK comparisons of one phase run concurrently, each
//     on its own transport mux stream (muxSession.runComparisons).
//
// Parallelism == 1 disables both and keeps the original sequential
// single-stream protocol byte for byte.

// parallelFor runs fn(0) .. fn(n-1). With par <= 1 the calls happen inline
// and in index order (preserving deterministic rng consumption for the
// sequential mode); otherwise up to par workers pull indices until done or
// until the first error, which is returned. fn must be safe for concurrent
// invocation when par > 1.
func parallelFor(par, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() {
						firstErr = err
						stop.Store(true)
					})
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// lockedReader serializes Read calls so a math/rand source can safely feed
// concurrent workers. Draw order across workers is scheduling-dependent,
// which only perturbs blinding randomness, never protocol outcomes.
type lockedReader struct {
	mu sync.Mutex
	r  io.Reader
}

func (l *lockedReader) Read(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Read(p)
}

// muxSession wraps the peer connection for one protocol run. With muxing
// disabled (Parallelism == 1) it is a transparent pass-through; otherwise
// the whole session is multiplexed: the lock-step steps travel on stream 0
// and each concurrent comparison of a phase gets its own stream. Stream
// IDs are assigned from a counter that advances identically on both
// servers, so the pair→stream mapping is deterministic.
type muxSession struct {
	// seq carries the sequential (lock-step) protocol steps: the raw conn
	// when muxing is disabled, stream 0 otherwise.
	seq transport.Conn
	mux *transport.Mux // nil when muxing is disabled
	par int            // worker bound for comparison phases
	// next is the first unassigned stream ID. Both servers reserve phase
	// streams in the same order, keeping assignments in lock step.
	next int64
}

// newMuxSession prepares the peer link according to cfg.Parallelism.
func newMuxSession(cfg Config, conn transport.Conn, meter *transport.Meter) *muxSession {
	if !cfg.muxEnabled() {
		return &muxSession{seq: conn, par: 1}
	}
	muxMeter := meter
	if _, ok := conn.(stepSetter); ok {
		// The caller already wrapped the conn in its own metering layer;
		// let that layer keep accounting to avoid double counting.
		muxMeter = nil
	}
	m := transport.NewMux(conn, muxMeter)
	return &muxSession{seq: m.Stream(0), mux: m, par: cfg.parallelism(), next: 1}
}

// batchPar bounds the CPU workers a batched comparison exchange may use: 1
// in the sequential mode (Parallelism == 1, preserving deterministic rng
// draw order), the session worker bound otherwise. Batched frames travel on
// the sequential conn either way — the wire format never depends on the
// worker count.
func (s *muxSession) batchPar() int {
	if s.mux == nil {
		return 1
	}
	return s.par
}

// cmpJob is one secure comparison of a concurrent phase.
type cmpJob struct {
	// tag labels the comparison in errors, e.g. "compare pair (2,5)".
	tag string
	// diff is this party's comparison input.
	diff *big.Int
}

// runComparisons executes one phase of DGK comparisons and returns the
// per-job >= bits in job order. Without a mux the jobs run sequentially,
// in order, over the session conn — the original wire behavior. With a mux
// they run over a bounded worker pool, job i of the phase on stream
// base+i; both servers build the job list in the same order and advance
// the same stream counter, so outcome i always pairs the same two values
// regardless of scheduling.
func (s *muxSession) runComparisons(ctx context.Context, step string, jobs []cmpJob,
	compare func(ctx context.Context, conn transport.Conn, diff *big.Int) (bool, error)) ([]bool, error) {
	out := make([]bool, len(jobs))
	if s.mux == nil {
		for i, job := range jobs {
			geq, err := compare(ctx, s.seq, job.diff)
			cmpJobsTotal.Inc()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", job.tag, err)
			}
			out[i] = geq
		}
		return out, nil
	}

	base := s.next
	s.next += int64(len(jobs))
	workers := s.par
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	cmpWorkersHist.Observe(float64(workers))
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(jobs) || wctx.Err() != nil {
					return
				}
				stream := s.mux.Stream(base + int64(i))
				stream.SetStep(step)
				cmpInflight.Add(1)
				geq, err := compare(wctx, stream, jobs[i].diff)
				cmpInflight.Add(-1)
				cmpJobsTotal.Inc()
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("%s: %w", jobs[i].tag, err)
						cancel()
					})
					return
				}
				out[i] = geq
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
