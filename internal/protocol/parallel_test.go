package protocol

import (
	"errors"
	"math/big"
	"sync"
	"testing"

	"github.com/privconsensus/privconsensus/internal/paillier"
	"github.com/privconsensus/privconsensus/internal/transport"
)

func TestParallelForSequentialOrder(t *testing.T) {
	var order []int
	if err := parallelFor(1, 5, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order = %v, want 0..4 in order", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("visited %d indices, want 5", len(order))
	}
}

func TestParallelForError(t *testing.T) {
	boom := errors.New("boom")
	for _, par := range []int{1, 4} {
		err := parallelFor(par, 100, func(i int) error {
			if i == 7 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("par=%d: err = %v, want boom", par, err)
		}
	}
}

func TestParallelForConcurrent(t *testing.T) {
	const n = 1000
	var mu sync.Mutex
	seen := make(map[int]int)
	if err := parallelFor(8, n, func(i int) error {
		mu.Lock()
		seen[i]++
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("visited %d distinct indices, want %d", len(seen), n)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestParallelForEmpty(t *testing.T) {
	called := false
	if err := parallelFor(4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn called for n=0")
	}
}

// Aggregation must yield bit-identical ciphertexts at every parallelism:
// Paillier addition is ciphertext multiplication mod N^2, which is
// associative and commutative, so the chunked tree reduction is exact.
func TestAggregateParallelMatchesSequential(t *testing.T) {
	cfg := testConfig(9)
	keys, err := GenerateKeys(testRNG(41), cfg)
	if err != nil {
		t.Fatal(err)
	}
	votes := make([][]*big.Int, cfg.Users)
	for u := range votes {
		votes[u] = oneHotVotes(cfg.Classes, u%cfg.Classes)
	}
	subs, _ := buildAll(t, cfg, keys, votes, 42)
	halves := make([]SubmissionHalf, len(subs))
	for i, s := range subs {
		halves[i] = s.ToS1
	}
	pk := keys.S2Paillier.Public()
	field := func(h SubmissionHalf) []*paillier.Ciphertext { return h.Votes }

	seq, err := aggregate(pk, halves, 1, field)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 16} {
		got, err := aggregate(pk, halves, par, field)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(got) != len(seq) {
			t.Fatalf("par=%d: %d classes, want %d", par, len(got), len(seq))
		}
		for i := range got {
			if got[i].C.Cmp(seq[i].C) != 0 {
				t.Errorf("par=%d class %d: parallel aggregate differs from sequential", par, i)
			}
		}
	}
}

func TestMuxSessionSequentialPassThrough(t *testing.T) {
	cfg := testConfig(3)
	cfg.Parallelism = 1
	connA, connB := transport.Pair()
	defer connA.Close()
	defer connB.Close()
	sess := newMuxSession(cfg, connA, nil)
	if sess.mux != nil {
		t.Error("Parallelism=1 must not multiplex")
	}
	if sess.seq != connA {
		t.Error("Parallelism=1 must hand back the raw conn")
	}

	cfg.Parallelism = 4
	sess = newMuxSession(cfg, connA, nil)
	if sess.mux == nil {
		t.Fatal("Parallelism=4 must multiplex")
	}
	if ms, ok := sess.seq.(*transport.MuxStream); !ok || ms.ID() != 0 {
		t.Error("sequential steps must ride stream 0")
	}
	if sess.next != 1 {
		t.Errorf("first reserved stream = %d, want 1", sess.next)
	}
}

func TestComparisonBudget(t *testing.T) {
	cfg := testConfig(5)
	cfg.Classes = 4
	cfg.ThresholdAllPositions = false
	// Tournament (the default): two argmax phases of K-1 bracket
	// comparisons each, plus a single threshold check.
	if got, want := cfg.comparisonBudget(), 2*3+1; got != want {
		t.Errorf("tournament budget = %d, want %d", got, want)
	}
	cfg.ThresholdAllPositions = true
	if got, want := cfg.comparisonBudget(), 2*3+4; got != want {
		t.Errorf("tournament all-positions budget = %d, want %d", got, want)
	}
	// All-pairs: two phases of K(K-1)/2 pairwise comparisons each, run by
	// one instance as K(K-1) total.
	cfg.ArgmaxStrategy = StrategyAllPairs
	cfg.ThresholdAllPositions = false
	if got, want := cfg.comparisonBudget(), 4*3+1; got != want {
		t.Errorf("all-pairs budget = %d, want %d", got, want)
	}
	cfg.ThresholdAllPositions = true
	if got, want := cfg.comparisonBudget(), 4*3+4; got != want {
		t.Errorf("all-pairs all-positions budget = %d, want %d", got, want)
	}
}

// The full protocol must reach identical outcomes at any parallelism: the
// same comparisons run, only their interleaving changes.
func TestFullProtocolParallelMatchesSequential(t *testing.T) {
	cfg := testConfig(6)
	keys, err := GenerateKeys(testRNG(12), cfg)
	if err != nil {
		t.Fatal(err)
	}
	votes := [][]*big.Int{
		oneHotVotes(cfg.Classes, 3),
		oneHotVotes(cfg.Classes, 3),
		oneHotVotes(cfg.Classes, 3),
		oneHotVotes(cfg.Classes, 3),
		oneHotVotes(cfg.Classes, 1),
		oneHotVotes(cfg.Classes, 0),
	}

	outcomes := make(map[int][2]*Outcome)
	for _, par := range []int{1, 4} {
		pcfg := cfg
		pcfg.Parallelism = par
		subs, _ := buildAll(t, pcfg, keys, votes, 77)
		out1, out2 := runInstance(t, pcfg, keys, subs, nil)
		outcomes[par] = [2]*Outcome{out1, out2}
	}
	seq, con := outcomes[1], outcomes[4]
	for side := 0; side < 2; side++ {
		if seq[side].Consensus != con[side].Consensus || seq[side].Label != con[side].Label {
			t.Errorf("server %d: parallel outcome (%v, %d) != sequential (%v, %d)",
				side+1, con[side].Consensus, con[side].Label, seq[side].Consensus, seq[side].Label)
		}
	}
	if !seq[0].Consensus || seq[0].Label != 3 {
		t.Errorf("expected consensus on label 3, got (%v, %d)", seq[0].Consensus, seq[0].Label)
	}
}

func TestConfigValidateNegativeParallelism(t *testing.T) {
	cfg := testConfig(4)
	cfg.Parallelism = -2
	if err := cfg.Validate(); err == nil {
		t.Error("expected validation error for negative parallelism")
	}
}
