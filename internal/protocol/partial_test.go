package protocol

import (
	"math/big"
	"testing"

	"github.com/privconsensus/privconsensus/internal/paillier"
)

// maskSubmissions zeroes the submissions of every user not in keep, the
// deploy-layer representation of dropped users.
func maskSubmissions(subs []*Submission, keep []int) []*Submission {
	keepSet := make(map[int]bool, len(keep))
	for _, u := range keep {
		keepSet[u] = true
	}
	out := make([]*Submission, len(subs))
	for u, s := range subs {
		if keepSet[u] {
			out[u] = s
		} else {
			out[u] = &Submission{}
		}
	}
	return out
}

// Fraction mode: with 4 of 6 users present and 3 of them voting class 1,
// the threshold re-scales to 0.6*4 = 2.4 votes, so consensus is reached.
func TestPartialParticipationFractionMode(t *testing.T) {
	cfg := testConfig(6)
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.ThresholdFrac = 0.6
	keys, err := GenerateKeys(testRNG(30), cfg)
	if err != nil {
		t.Fatalf("GenerateKeys: %v", err)
	}
	votes := [][]*big.Int{
		oneHotVotes(cfg.Classes, 1),
		oneHotVotes(cfg.Classes, 3), // dropped
		oneHotVotes(cfg.Classes, 1),
		oneHotVotes(cfg.Classes, 1),
		oneHotVotes(cfg.Classes, 3), // dropped
		oneHotVotes(cfg.Classes, 0),
	}
	subs, _ := buildAll(t, cfg, keys, votes, 31)
	participants := []int{0, 2, 3, 5}
	out1, out2 := runInstance(t, cfg, keys, maskSubmissions(subs, participants), nil)
	if *out1 != *out2 {
		t.Fatalf("servers disagree: %+v vs %+v", out1, out2)
	}
	if !out1.Consensus || out1.Label != 1 {
		t.Fatalf("outcome = %+v, want consensus on label 1", out1)
	}
	if out1.Participants != len(participants) {
		t.Fatalf("Participants = %d, want %d", out1.Participants, len(participants))
	}
}

// Absolute mode: the same 3-of-4 subset fails the full-population threshold
// 0.6*6 = 3.6 votes.
func TestPartialParticipationAbsoluteMode(t *testing.T) {
	cfg := testConfig(6)
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.ThresholdFrac = 0.6
	cfg.AbsoluteThreshold = true
	keys, err := GenerateKeys(testRNG(32), cfg)
	if err != nil {
		t.Fatalf("GenerateKeys: %v", err)
	}
	votes := [][]*big.Int{
		oneHotVotes(cfg.Classes, 1),
		oneHotVotes(cfg.Classes, 3), // dropped
		oneHotVotes(cfg.Classes, 1),
		oneHotVotes(cfg.Classes, 1),
		oneHotVotes(cfg.Classes, 3), // dropped
		oneHotVotes(cfg.Classes, 0),
	}
	subs, _ := buildAll(t, cfg, keys, votes, 33)
	out1, out2 := runInstance(t, cfg, keys, maskSubmissions(subs, []int{0, 2, 3, 5}), nil)
	if *out1 != *out2 {
		t.Fatalf("servers disagree: %+v vs %+v", out1, out2)
	}
	if out1.Consensus {
		t.Fatalf("outcome = %+v, want no consensus under absolute threshold", out1)
	}
	if out1.Participants != 4 {
		t.Fatalf("Participants = %d, want 4", out1.Participants)
	}
}

// The crypto path over a subset must match the plaintext reference over the
// same subset with the participant-scaled threshold, including noise.
func TestPartialParticipationMatchesPlainReference(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol runs are slow in -short mode")
	}
	cfg := testConfig(7)
	cfg.ThresholdFrac = 0.5
	keys, err := GenerateKeys(testRNG(40), cfg)
	if err != nil {
		t.Fatalf("GenerateKeys: %v", err)
	}
	for trial, participants := range [][]int{
		{0, 1, 2, 3, 4, 5, 6}, // full participation: delta must be zero
		{1, 2, 4, 5, 6},
		{0, 3, 6},
	} {
		votes := make([][]*big.Int, cfg.Users)
		for u := range votes {
			votes[u] = oneHotVotes(cfg.Classes, (u*3+trial)%cfg.Classes)
		}
		subs, discs := buildAll(t, cfg, keys, votes, int64(41+trial))
		kept := make([]*Disclosure, 0, len(participants))
		for _, u := range participants {
			kept = append(kept, discs[u])
		}
		aggVotes, z1, z2, err := AggregateDisclosures(kept)
		if err != nil {
			t.Fatalf("trial %d: AggregateDisclosures: %v", trial, err)
		}
		wantCons, wantLabel, err := PlainOutcome(aggVotes, z1, z2, cfg.ParticipantThresholdUnits(len(participants)))
		if err != nil {
			t.Fatalf("trial %d: PlainOutcome: %v", trial, err)
		}
		out1, out2 := runInstance(t, cfg, keys, maskSubmissions(subs, participants), nil)
		if *out1 != *out2 {
			t.Fatalf("trial %d: servers disagree: %+v vs %+v", trial, out1, out2)
		}
		if out1.Consensus != wantCons {
			t.Fatalf("trial %d: consensus = %v, want %v", trial, out1.Consensus, wantCons)
		}
		if wantCons && out1.Label != wantLabel {
			t.Fatalf("trial %d: label = %d, want %d", trial, out1.Label, wantLabel)
		}
	}
}

// ParticipantThresholdUnits at full participation equals ThresholdUnits in
// both modes, so the adjustment delta is zero and the wire is untouched.
func TestThresholdAdjustmentZeroAtFullParticipation(t *testing.T) {
	for _, abs := range []bool{false, true} {
		cfg := testConfig(9)
		cfg.ThresholdFrac = 0.61
		cfg.AbsoluteThreshold = abs
		all := make([]int, cfg.Users)
		for i := range all {
			all[i] = i
		}
		delta, err := cfg.thresholdAdjustment(all)
		if err != nil {
			t.Fatalf("abs=%v: %v", abs, err)
		}
		if delta.Sign() != 0 {
			t.Fatalf("abs=%v: delta = %v at full participation, want 0", abs, delta)
		}
	}
}

func TestParticipantIndices(t *testing.T) {
	subs := make([]SubmissionHalf, 4)
	subs[0].Votes = []*paillier.Ciphertext{{}}
	subs[3].Votes = []*paillier.Ciphertext{{}}
	got := ParticipantIndices(subs)
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("ParticipantIndices = %v, want [0 3]", got)
	}
	if subs[1].Present() || !subs[0].Present() {
		t.Fatal("Present misclassifies halves")
	}
}
