package protocol

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: PlainOutcome is invariant to a common additive shift of all
// votes relative to the threshold (shifting votes and T together).
func TestPlainOutcomeShiftInvariance(t *testing.T) {
	f := func(rawVotes [4]uint16, rawShift uint16, rawT uint16) bool {
		shift := int64(rawShift)
		votes := make([]*big.Int, 4)
		shifted := make([]*big.Int, 4)
		zeros := make([]*big.Int, 4)
		for i, v := range rawVotes {
			votes[i] = big.NewInt(int64(v))
			shifted[i] = big.NewInt(int64(v) + shift)
			zeros[i] = big.NewInt(0)
		}
		thr := big.NewInt(int64(rawT))
		thrShifted := big.NewInt(int64(rawT) + shift)
		ok1, l1, err1 := PlainOutcome(votes, zeros, zeros, thr)
		ok2, l2, err2 := PlainOutcome(shifted, zeros, zeros, thrShifted)
		if err1 != nil || err2 != nil {
			return false
		}
		return ok1 == ok2 && l1 == l2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: without noise, consensus holds iff max(votes) >= T and the
// label is the (first) argmax.
func TestPlainOutcomeNoNoiseSemantics(t *testing.T) {
	f := func(rawVotes [5]uint16, rawT uint16) bool {
		votes := make([]*big.Int, 5)
		zeros := make([]*big.Int, 5)
		maxV, maxI := int64(-1), 0
		for i, v := range rawVotes {
			votes[i] = big.NewInt(int64(v))
			zeros[i] = big.NewInt(0)
			if int64(v) > maxV {
				maxV, maxI = int64(v), i
			}
		}
		thr := big.NewInt(int64(rawT))
		ok, label, err := PlainOutcome(votes, zeros, zeros, thr)
		if err != nil {
			return false
		}
		wantOK := maxV >= int64(rawT)
		if ok != wantOK {
			return false
		}
		if ok && label != maxI {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: adding one user's votes can only increase each class total, so
// the threshold check is monotone in added agreeing votes.
func TestPlainOutcomeMonotoneInVotes(t *testing.T) {
	f := func(rawVotes [4]uint8, extra uint8) bool {
		votes := make([]*big.Int, 4)
		more := make([]*big.Int, 4)
		zeros := make([]*big.Int, 4)
		for i, v := range rawVotes {
			votes[i] = big.NewInt(int64(v))
			more[i] = big.NewInt(int64(v))
			zeros[i] = big.NewInt(0)
		}
		// Boost the current winner.
		w := argmaxBig(votes)
		more[w] = new(big.Int).Add(more[w], big.NewInt(int64(extra)))
		thr := big.NewInt(200)
		ok1, _, err1 := PlainOutcome(votes, zeros, zeros, thr)
		ok2, _, err2 := PlainOutcome(more, zeros, zeros, thr)
		if err1 != nil || err2 != nil {
			return false
		}
		// ok1 implies ok2.
		return !ok1 || ok2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property-based end-to-end check: for random tie-free vote profiles the
// full cryptographic protocol matches PlainOutcome exactly. Expensive, so
// only a few samples.
func TestFullProtocolQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("crypto property test is slow in -short mode")
	}
	cfg := testConfig(3)
	cfg.Sigma1, cfg.Sigma2 = 1.0, 1.0
	cfg.ThresholdFrac = 0.5
	keys, err := GenerateKeys(testRNG(300), cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		voteRng := rand.New(rand.NewSource(seed))
		votes := make([][]*big.Int, cfg.Users)
		for u := range votes {
			votes[u] = oneHotVotes(cfg.Classes, voteRng.Intn(cfg.Classes))
		}
		subs, discs := buildAll(t, cfg, keys, votes, seed+5000)
		aggVotes, z1, z2, err := AggregateDisclosures(discs)
		if err != nil {
			return false
		}
		// With tied maxima the crypto path may select a different tied
		// class as i*, whose z1 noise differs — a legitimate divergence
		// from the lowest-index plaintext reference. Only require exact
		// agreement for unique maxima; for ties just require the two
		// servers to agree.
		iStar := argmaxBig(aggVotes)
		uniqueMax := true
		for i, v := range aggVotes {
			if i != iStar && v.Cmp(aggVotes[iStar]) == 0 {
				uniqueMax = false
				break
			}
		}
		wantOK, wantLabel, err := PlainOutcome(aggVotes, z1, z2, cfg.ThresholdUnits())
		if err != nil {
			return false
		}
		out1, out2 := runInstance(t, cfg, keys, subs, nil)
		if *out1 != *out2 {
			return false
		}
		if !uniqueMax {
			return true
		}
		if out1.Consensus != wantOK {
			return false
		}
		if !wantOK {
			return true
		}
		// Accept any maximizer on ties.
		noisy := make([]*big.Int, cfg.Classes)
		for i := range noisy {
			noisy[i] = new(big.Int).Add(aggVotes[i], new(big.Int).Lsh(z2[i], 1))
		}
		maxVal := noisy[argmaxBig(noisy)]
		_ = wantLabel
		return noisy[out1.Label].Cmp(maxVal) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}
