package protocol

import (
	"context"
	"math/big"
	"math/rand"
	"testing"
	"time"

	"github.com/privconsensus/privconsensus/internal/transport"
)

// runInstance executes one full Alg. 5 run over an in-memory transport and
// returns both servers' outcomes.
func runInstance(t *testing.T, cfg Config, keys *Keys, subs []*Submission, meter *transport.Meter) (*Outcome, *Outcome) {
	t.Helper()
	connA, connB := transport.Pair()
	c1 := transport.Metered(connA, meter, StepSecureSum1)
	c2 := transport.Metered(connB, meter, StepSecureSum1)
	defer c1.Close()
	defer c2.Close()

	s1Subs := make([]SubmissionHalf, len(subs))
	s2Subs := make([]SubmissionHalf, len(subs))
	for i, s := range subs {
		s1Subs[i] = s.ToS1
		s2Subs[i] = s.ToS2
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	type result struct {
		out *Outcome
		err error
	}
	ch := make(chan result, 1)
	go func() {
		out, err := RunS1(ctx, testRNG(101), cfg, keys.ForS1(), c1, s1Subs, meter)
		ch <- result{out, err}
	}()
	out2, err := RunS2(ctx, testRNG(102), cfg, keys.ForS2(), c2, s2Subs, nil)
	if err != nil {
		t.Fatalf("RunS2: %v", err)
	}
	r1 := <-ch
	if r1.err != nil {
		t.Fatalf("RunS1: %v", r1.err)
	}
	return r1.out, out2
}

// buildAll constructs submissions + disclosures for a set of user votes.
func buildAll(t *testing.T, cfg Config, keys *Keys, votes [][]*big.Int, seed int64) ([]*Submission, []*Disclosure) {
	t.Helper()
	rng := testRNG(seed)
	noise := testRNG(seed + 1000)
	subs := make([]*Submission, len(votes))
	discs := make([]*Disclosure, len(votes))
	for u, v := range votes {
		sub, disc, err := BuildSubmission(rng, noise, cfg, u, v, keys.S1Paillier.Public(), keys.S2Paillier.Public())
		if err != nil {
			t.Fatalf("BuildSubmission user %d: %v", u, err)
		}
		subs[u] = sub
		discs[u] = disc
	}
	return subs, discs
}

func TestFullProtocolConsensusNoNoise(t *testing.T) {
	cfg := testConfig(5)
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.ThresholdFrac = 0.6 // need >= 3 of 5 votes
	keys, err := GenerateKeys(testRNG(20), cfg)
	if err != nil {
		t.Fatalf("GenerateKeys: %v", err)
	}

	// 4 of 5 users vote class 2: consensus with label 2.
	votes := [][]*big.Int{
		oneHotVotes(cfg.Classes, 2),
		oneHotVotes(cfg.Classes, 2),
		oneHotVotes(cfg.Classes, 2),
		oneHotVotes(cfg.Classes, 2),
		oneHotVotes(cfg.Classes, 0),
	}
	subs, _ := buildAll(t, cfg, keys, votes, 21)
	out1, out2 := runInstance(t, cfg, keys, subs, nil)
	if *out1 != *out2 {
		t.Fatalf("servers disagree: %+v vs %+v", out1, out2)
	}
	if !out1.Consensus || out1.Label != 2 {
		t.Fatalf("outcome = %+v, want consensus on label 2", out1)
	}
}

func TestFullProtocolNoConsensusNoNoise(t *testing.T) {
	cfg := testConfig(5)
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.ThresholdFrac = 0.6
	keys, err := GenerateKeys(testRNG(22), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Votes split 2/2/1: max is 2 < 3 required.
	votes := [][]*big.Int{
		oneHotVotes(cfg.Classes, 0),
		oneHotVotes(cfg.Classes, 0),
		oneHotVotes(cfg.Classes, 1),
		oneHotVotes(cfg.Classes, 1),
		oneHotVotes(cfg.Classes, 3),
	}
	subs, _ := buildAll(t, cfg, keys, votes, 23)
	out1, out2 := runInstance(t, cfg, keys, subs, nil)
	if *out1 != *out2 {
		t.Fatalf("servers disagree: %+v vs %+v", out1, out2)
	}
	if out1.Consensus || out1.Label != -1 {
		t.Fatalf("outcome = %+v, want no consensus", out1)
	}
}

// The crypto path must reproduce the plaintext reference decision exactly
// for identical noise draws.
func TestFullProtocolMatchesPlainReference(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol runs are slow in -short mode")
	}
	for trial := 0; trial < 3; trial++ {
		cfg := testConfig(4)
		cfg.Sigma1, cfg.Sigma2 = 2.0, 1.5
		cfg.ThresholdFrac = 0.5
		keys, err := GenerateKeys(testRNG(int64(30+trial)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		votes := make([][]*big.Int, cfg.Users)
		voteRng := rand.New(rand.NewSource(int64(40 + trial)))
		for u := range votes {
			votes[u] = oneHotVotes(cfg.Classes, voteRng.Intn(cfg.Classes))
		}
		subs, discs := buildAll(t, cfg, keys, votes, int64(50+trial))

		aggVotes, z1, z2, err := AggregateDisclosures(discs)
		if err != nil {
			t.Fatal(err)
		}
		wantOK, wantLabel, err := PlainOutcome(aggVotes, z1, z2, cfg.ThresholdUnits())
		if err != nil {
			t.Fatal(err)
		}

		out1, out2 := runInstance(t, cfg, keys, subs, nil)
		if *out1 != *out2 {
			t.Fatalf("trial %d: servers disagree: %+v vs %+v", trial, out1, out2)
		}
		// Exact agreement with the plaintext reference is only guaranteed
		// for a unique maximum (tied maxima carry different z1 noise
		// depending on which tied class the permuted argmax selects).
		iStar := argmaxBig(aggVotes)
		uniqueMax := true
		for i, v := range aggVotes {
			if i != iStar && v.Cmp(aggVotes[iStar]) == 0 {
				uniqueMax = false
				break
			}
		}
		if !uniqueMax {
			continue
		}
		if out1.Consensus != wantOK {
			t.Fatalf("trial %d: consensus = %v, plaintext reference = %v", trial, out1.Consensus, wantOK)
		}
		if !wantOK {
			continue
		}
		// With ties, the crypto path may break them differently; check
		// the label is a maximizer of the noisy votes.
		noisy := make([]*big.Int, cfg.Classes)
		for i := range noisy {
			noisy[i] = new(big.Int).Add(aggVotes[i], new(big.Int).Lsh(z2[i], 1))
		}
		maxVal := noisy[argmaxBig(noisy)]
		if noisy[out1.Label].Cmp(maxVal) != 0 {
			t.Fatalf("trial %d: crypto label %d (value %v) is not a maximizer (max %v, plain label %d)",
				trial, out1.Label, noisy[out1.Label], maxVal, wantLabel)
		}
	}
}

func TestFullProtocolSoftmaxVotes(t *testing.T) {
	cfg := testConfig(3)
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.ThresholdFrac = 0.4
	keys, err := GenerateKeys(testRNG(60), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Probabilistic votes in vote units (each sums to VoteScale).
	mk := func(ps ...float64) []*big.Int {
		out := make([]*big.Int, len(ps))
		for i, p := range ps {
			out[i] = big.NewInt(int64(p * VoteScale))
		}
		return out
	}
	votes := [][]*big.Int{
		mk(0.7, 0.1, 0.1, 0.1),
		mk(0.6, 0.2, 0.1, 0.1),
		mk(0.1, 0.3, 0.3, 0.3),
	}
	subs, discs := buildAll(t, cfg, keys, votes, 61)
	aggVotes, z1, z2, err := AggregateDisclosures(discs)
	if err != nil {
		t.Fatal(err)
	}
	wantOK, wantLabel, err := PlainOutcome(aggVotes, z1, z2, cfg.ThresholdUnits())
	if err != nil {
		t.Fatal(err)
	}
	out1, _ := runInstance(t, cfg, keys, subs, nil)
	if out1.Consensus != wantOK || (wantOK && out1.Label != wantLabel) {
		t.Fatalf("softmax outcome %+v, want ok=%v label=%d", out1, wantOK, wantLabel)
	}
	if !out1.Consensus || out1.Label != 0 {
		t.Fatalf("expected consensus on class 0, got %+v", out1)
	}
}

func TestFullProtocolMeterRecordsSteps(t *testing.T) {
	cfg := testConfig(3)
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.ThresholdFrac = 0.5
	keys, err := GenerateKeys(testRNG(70), cfg)
	if err != nil {
		t.Fatal(err)
	}
	votes := [][]*big.Int{
		oneHotVotes(cfg.Classes, 1),
		oneHotVotes(cfg.Classes, 1),
		oneHotVotes(cfg.Classes, 0),
	}
	subs, _ := buildAll(t, cfg, keys, votes, 71)
	meter := transport.NewMeter()
	out1, _ := runInstance(t, cfg, keys, subs, meter)
	if !out1.Consensus {
		t.Fatalf("expected consensus, got %+v", out1)
	}
	for _, step := range []string{
		StepBlindPerm1, StepCompare1, StepThreshold,
		StepBlindPerm2, StepCompare2, StepRestoration,
	} {
		s, ok := meter.Step(step)
		if !ok {
			t.Errorf("step %q not recorded", step)
			continue
		}
		if s.BytesSent == 0 && s.BytesReceived == 0 {
			t.Errorf("step %q recorded no traffic", step)
		}
	}
	// Comparison traffic must dominate blind-and-permute traffic, the
	// paper's Table II shape.
	cmp, _ := meter.Step(StepCompare1)
	bp, _ := meter.Step(StepBlindPerm1)
	if cmp.BytesSent+cmp.BytesReceived <= bp.BytesSent+bp.BytesReceived {
		t.Errorf("expected comparison traffic (%d) to exceed blind-and-permute traffic (%d)",
			cmp.BytesSent+cmp.BytesReceived, bp.BytesSent+bp.BytesReceived)
	}
}

// The binary (K=2) case — each CelebA attribute vote — must work end to
// end: the all-pairs comparison degenerates to a single DGK run.
func TestFullProtocolBinaryClasses(t *testing.T) {
	cfg := testConfig(5)
	cfg.Classes = 2
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.ThresholdFrac = 0.6
	keys, err := GenerateKeys(testRNG(130), cfg)
	if err != nil {
		t.Fatal(err)
	}
	votes := [][]*big.Int{
		oneHotVotes(2, 1), oneHotVotes(2, 1), oneHotVotes(2, 1),
		oneHotVotes(2, 1), oneHotVotes(2, 0),
	}
	subs, _ := buildAll(t, cfg, keys, votes, 131)
	out1, out2 := runInstance(t, cfg, keys, subs, nil)
	if *out1 != *out2 || !out1.Consensus || out1.Label != 1 {
		t.Fatalf("binary outcome %+v/%+v, want consensus on 1", out1, out2)
	}
}

// A single user is a degenerate but valid deployment (the paper's
// adversarial-aggregator discussion: querying one user).
func TestFullProtocolSingleUser(t *testing.T) {
	cfg := testConfig(1)
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.ThresholdFrac = 1.0
	keys, err := GenerateKeys(testRNG(132), cfg)
	if err != nil {
		t.Fatal(err)
	}
	votes := [][]*big.Int{oneHotVotes(cfg.Classes, 2)}
	subs, _ := buildAll(t, cfg, keys, votes, 133)
	out1, out2 := runInstance(t, cfg, keys, subs, nil)
	if *out1 != *out2 || !out1.Consensus || out1.Label != 2 {
		t.Fatalf("single-user outcome %+v/%+v, want consensus on 2", out1, out2)
	}
}

// Single-position threshold mode (ThresholdAllPositions=false) must reach
// the same decision with less comparison traffic.
func TestFullProtocolSinglePositionThreshold(t *testing.T) {
	cfg := testConfig(4)
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.ThresholdFrac = 0.5
	cfg.ThresholdAllPositions = false
	keys, err := GenerateKeys(testRNG(120), cfg)
	if err != nil {
		t.Fatal(err)
	}
	votes := [][]*big.Int{
		oneHotVotes(cfg.Classes, 3),
		oneHotVotes(cfg.Classes, 3),
		oneHotVotes(cfg.Classes, 3),
		oneHotVotes(cfg.Classes, 0),
	}
	subs, _ := buildAll(t, cfg, keys, votes, 121)
	meter := transport.NewMeter()
	out1, out2 := runInstance(t, cfg, keys, subs, meter)
	if *out1 != *out2 || !out1.Consensus || out1.Label != 3 {
		t.Fatalf("single-position outcome %+v/%+v, want consensus on 3", out1, out2)
	}
	// One threshold comparison instead of Classes of them.
	thr, ok := meter.Step(StepThreshold)
	if !ok {
		t.Fatal("threshold step not metered")
	}
	cmp, _ := meter.Step(StepCompare1)
	comparisons := cfg.Classes - 1 // tournament bracket comparisons in phase 4
	perComparison := float64(cmp.BytesSent) / float64(comparisons)
	if float64(thr.BytesSent) > 1.5*perComparison {
		t.Errorf("single-position threshold used %d bytes, expected ~%0.f (one comparison)",
			thr.BytesSent, perComparison)
	}
}

// The pooled-DGK engine must produce the same decisions as the plain one.
func TestFullProtocolWithDGKPool(t *testing.T) {
	cfg := testConfig(4)
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	cfg.ThresholdFrac = 0.5
	cfg.UseDGKPool = true
	keys, err := GenerateKeys(testRNG(110), cfg)
	if err != nil {
		t.Fatal(err)
	}
	votes := [][]*big.Int{
		oneHotVotes(cfg.Classes, 1),
		oneHotVotes(cfg.Classes, 1),
		oneHotVotes(cfg.Classes, 1),
		oneHotVotes(cfg.Classes, 2),
	}
	subs, _ := buildAll(t, cfg, keys, votes, 111)
	out1, out2 := runInstance(t, cfg, keys, subs, nil)
	if *out1 != *out2 {
		t.Fatalf("servers disagree with pool: %+v vs %+v", out1, out2)
	}
	if !out1.Consensus || out1.Label != 1 {
		t.Fatalf("pooled outcome %+v, want consensus on 1", out1)
	}
}

func TestRunRejectsWrongSubmissionCount(t *testing.T) {
	cfg := testConfig(3)
	keys, err := GenerateKeys(testRNG(80), cfg)
	if err != nil {
		t.Fatal(err)
	}
	connA, _ := transport.Pair()
	defer connA.Close()
	_, err = RunS1(context.Background(), testRNG(81), cfg, keys.ForS1(), connA, nil, nil)
	if err == nil {
		t.Fatal("expected submission-count error")
	}
}

func TestRunFailsOnClosedTransport(t *testing.T) {
	cfg := testConfig(2)
	cfg.Sigma1, cfg.Sigma2 = 0, 0
	keys, err := GenerateKeys(testRNG(90), cfg)
	if err != nil {
		t.Fatal(err)
	}
	votes := [][]*big.Int{oneHotVotes(cfg.Classes, 0), oneHotVotes(cfg.Classes, 0)}
	subs, _ := buildAll(t, cfg, keys, votes, 91)
	s1Subs := []SubmissionHalf{subs[0].ToS1, subs[1].ToS1}

	connA, connB := transport.Pair()
	connB.Close() // peer gone before the protocol starts
	defer connA.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := RunS1(ctx, testRNG(92), cfg, keys.ForS1(), connA, s1Subs, nil); err == nil {
		t.Fatal("expected transport error")
	}
}

func TestWinsMatrix(t *testing.T) {
	m := newWinsMatrix(3)
	// values: v0=5, v1=9, v2=9 -> pairwise: (0,1) false, (0,2) false, (1,2) tie -> true.
	m.set(0, 1, false)
	m.set(0, 2, false)
	m.set(1, 2, true)
	w, err := m.winner()
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 {
		t.Errorf("winner = %d, want 1 (tie broken to lower position)", w)
	}

	// Inconsistent outcomes (a cycle) must be detected.
	c := newWinsMatrix(3)
	c.set(0, 1, true)
	c.set(1, 2, true)
	c.set(0, 2, false)
	if _, err := c.winner(); err == nil {
		t.Error("expected inconsistency error for a comparison cycle")
	}
}

func TestCheckPositions(t *testing.T) {
	cfg := testConfig(2)
	cfg.ThresholdAllPositions = true
	if got := checkPositions(cfg, 2); len(got) != cfg.Classes {
		t.Errorf("all-positions mode returned %d positions", len(got))
	}
	cfg.ThresholdAllPositions = false
	got := checkPositions(cfg, 2)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("single-position mode returned %v", got)
	}
}
