package protocol

import (
	"context"
	"fmt"
	"math/big"
	"math/bits"

	"github.com/privconsensus/privconsensus/internal/transport"
)

// Tournament argmax: a blinded single-elimination bracket over the permuted
// sequence. Each level pairs the surviving positions in ascending order and
// runs all of the level's DGK comparisons as one batched three-frame
// exchange, so a phase costs K-1 comparisons in ceil(log2(K)) round trips
// instead of the all-pairs K(K-1)/2 comparisons in as many exchanges.
//
// The bracket runs entirely under the Blind-and-Permute cover: positions are
// permuted indices, values are blinded, and the comparison outcomes released
// per level are exactly the pairwise >= bits the all-pairs schedule also
// releases (a strict subset of them), so no new information leaks.
//
// Tie handling matches the all-pairs winner exactly: survivor lists stay
// ascending, every pair compares (lower, higher) position, and >= awards the
// tie to the lower position — so the champion is the lowest permuted
// position attaining the maximum, the same position winsMatrix.winner
// returns. The parity tests assert this on tied inputs.

// tournamentRounds returns the number of bracket levels for k entrants:
// ceil(log2(k)), 0 for a single entrant.
func tournamentRounds(k int) int {
	if k <= 1 {
		return 0
	}
	return bits.Len(uint(k - 1))
}

// tournamentLevelPairs pairs one level's ascending survivor list: (s[0],
// s[1]), (s[2], s[3]), ... An odd trailing survivor sits the level out (a
// bye) and is re-appended after the winners, which preserves ascending
// order because every winner precedes it.
func tournamentLevelPairs(survivors []int) [][2]int {
	pairs := make([][2]int, 0, len(survivors)/2)
	for j := 0; j+1 < len(survivors); j += 2 {
		pairs = append(pairs, [2]int{survivors[j], survivors[j+1]})
	}
	return pairs
}

// batchCompare runs one level's comparison inputs through a batched DGK
// exchange and returns the per-pair >= bits in input order. Implementations
// bind the party side (A or B) and its rng/key material.
type batchCompare func(ctx context.Context, conn transport.Conn, diffs []*big.Int) ([]bool, error)

// tournamentArgmax runs the bracket and returns the winning permuted
// position. Both servers call it with identical cfg and survivor evolution;
// the per-pair >= bits are the protocol's shared outcome, so both fold to
// the same champion. negate flips the difference direction for the DGK "B"
// party, as in argmaxJobs.
func tournamentArgmax(ctx context.Context, cfg Config, sess *muxSession, seq []*big.Int,
	negate bool, compare batchCompare) (int, error) {
	if len(seq) != cfg.Classes {
		return -1, fmt.Errorf("protocol: tournament over %d values, want %d", len(seq), cfg.Classes)
	}
	survivors := make([]int, cfg.Classes)
	for i := range survivors {
		survivors[i] = i
	}
	for len(survivors) > 1 {
		pairs := tournamentLevelPairs(survivors)
		diffs := make([]*big.Int, len(pairs))
		for i, pq := range pairs {
			d := new(big.Int)
			if negate {
				d.Sub(seq[pq[1]], seq[pq[0]])
			} else {
				d.Sub(seq[pq[0]], seq[pq[1]])
			}
			diffs[i] = d
		}
		geqs, err := compare(ctx, sess.seq, diffs)
		if err != nil {
			return -1, fmt.Errorf("tournament level of %d: %w", len(survivors), err)
		}
		if len(geqs) != len(pairs) {
			return -1, fmt.Errorf("protocol: tournament level returned %d outcomes for %d pairs",
				len(geqs), len(pairs))
		}
		cmpJobsTotal.Add(int64(len(pairs)))
		strategyComparisons(cfg).Add(int64(len(pairs)))
		next := make([]int, 0, (len(survivors)+1)/2)
		for i, pq := range pairs {
			if geqs[i] {
				next = append(next, pq[0]) // >= keeps the lower position
			} else {
				next = append(next, pq[1])
			}
		}
		if len(survivors)%2 == 1 {
			next = append(next, survivors[len(survivors)-1])
		}
		survivors = next
	}
	return survivors[0], nil
}
