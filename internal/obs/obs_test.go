package obs

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same (name, labels) returns the same series.
	if r.Counter("test_ops_total", "ops") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(3)
	g.Add(2.5)
	if got := g.Value(); got != 5.5 {
		t.Fatalf("gauge = %v, want 5.5", got)
	}

	var nilC *Counter
	nilC.Inc() // must not panic
	var nilG *Gauge
	nilG.Set(1)
	var nilH *Histogram
	nilH.Observe(1)
}

func TestLabelsDistinguishSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_bytes_total", "bytes", L("dir", "sent"))
	b := r.Counter("test_bytes_total", "bytes", L("dir", "received"))
	if a == b {
		t.Fatal("differently labelled series aliased")
	}
	a.Add(10)
	b.Add(20)
	if got := r.CounterValue("test_bytes_total", L("dir", "received")); got != 20 {
		t.Fatalf("CounterValue = %d, want 20", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 556.5 {
		t.Fatalf("sum = %v, want 556.5", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="10"} 3`,
		`test_latency_seconds_bucket{le="100"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		`test_latency_seconds_sum 556.5`,
		`test_latency_seconds_count 5`,
		"# TYPE test_latency_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestDisabledRegistryIsInert(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "t")
	h := r.Histogram("test_hist", "t", DepthBuckets())
	r.SetEnabled(false)
	c.Inc()
	h.Observe(1)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled registry recorded: counter=%d hist=%d", c.Value(), h.Count())
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("re-enabled counter = %d, want 1", c.Value())
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_b_total", "b").Add(2)
	r.Counter("test_a_total", "a", L("step", "x")).Add(1)
	r.Counter("test_a_total", "a", L("step", "w")).Add(3)
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if len(s1) != 3 || len(s2) != 3 {
		t.Fatalf("snapshot sizes %d/%d, want 3", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].Name != s2[i].Name || s1[i].Value != s2[i].Value {
			t.Fatalf("snapshots differ at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
	// Sorted: test_a{step=w}, test_a{step=x}, test_b.
	if s1[0].Labels[0].Value != "w" || s1[1].Labels[0].Value != "x" || s1[2].Name != "test_b_total" {
		t.Fatalf("snapshot order wrong: %+v", s1)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("test_conc_total", "c", L("worker", fmt.Sprint(i%2)))
			h := r.Histogram("test_conc_hist", "h", DepthBuckets())
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 8))
				if j%100 == 0 {
					r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	total := r.CounterValue("test_conc_total", L("worker", "0")) +
		r.CounterValue("test_conc_total", L("worker", "1"))
	if total != 8000 {
		t.Fatalf("concurrent counter total = %d, want 8000", total)
	}
}

func TestTracerSpans(t *testing.T) {
	reg := NewRegistry()
	ops := reg.Counter("test_tracer_ops_total", "ops")
	tr := NewTracer("q1")
	tr.Watch("enc", ops)

	tr.StartPhase("phase-a")
	ops.Add(3)
	tr.EndPhase("phase-a", nil)

	tr.StartPhase("phase-b")
	ops.Add(2)
	if got := tr.OpenPhase(); got != "phase-b" {
		t.Fatalf("OpenPhase = %q, want phase-b", got)
	}
	tr.Finish("done", errors.New("boom"))

	q := tr.Trace()
	if len(q.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(q.Spans))
	}
	if q.Spans[0].Ops["enc"] != 3 || q.Spans[1].Ops["enc"] != 2 {
		t.Fatalf("op deltas wrong: %+v", q.Spans)
	}
	if q.Spans[1].Err != "boom" || q.Err != "boom" {
		t.Fatalf("error not recorded: %+v", q)
	}
	if q.Result != "done" || q.Duration <= 0 {
		t.Fatalf("finish not sealed: %+v", q)
	}
	// After Finish, OpenPhase falls back to the last errored span.
	if got := tr.OpenPhase(); got != "phase-b" {
		t.Fatalf("OpenPhase after finish = %q, want phase-b", got)
	}
}

func TestTracerSetPhaseIOAndTotals(t *testing.T) {
	tr := NewTracer("q2")
	tr.StartPhase("phase-a")
	tr.EndPhase("phase-a", nil)
	tr.SetPhaseIO("phase-a", 100, 50, 3, 2, 2)
	tr.SetPhaseIO("phase-unopened", 7, 7, 1, 1, 1)
	tr.Finish("", nil)
	q := tr.Trace()
	sent, recvd := q.TotalBytes()
	if sent != 107 || recvd != 57 {
		t.Fatalf("totals = %d/%d, want 107/57", sent, recvd)
	}
	s, ok := q.Span("phase-a")
	if !ok || s.BytesSent != 100 || s.Rounds != 2 {
		t.Fatalf("phase-a span wrong: %+v ok=%v", s, ok)
	}
	sum := q.Summary()
	for _, want := range []string{"query=q2", "tx=107B", "rx=57B", "phase-a="} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q: %s", want, sum)
		}
	}
}

func TestTracerImplicitEndOnNextPhase(t *testing.T) {
	tr := NewTracer("q3")
	tr.StartPhase("a")
	tr.StartPhase("b") // implicitly ends "a"
	q := tr.Trace()
	if len(q.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(q.Spans))
	}
	if q.Spans[0].Duration < 0 {
		t.Fatalf("implicitly ended span has no duration: %+v", q.Spans[0])
	}
}

func TestTracerContext(t *testing.T) {
	tr := NewTracer("q4")
	ctx := WithTracer(t.Context(), tr)
	if TracerFrom(ctx) != tr {
		t.Fatal("TracerFrom did not round-trip")
	}
	if TracerFrom(t.Context()) != nil {
		t.Fatal("TracerFrom on bare context not nil")
	}
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_admin_total", "admin test counter").Add(42)
	srv, err := StartAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, "test_admin_total 42") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, body := get("/debug/vars"); code != http.StatusOK || !strings.Contains(body, "{") {
		t.Fatalf("/debug/vars = %d %q", code, body)
	}
}

func TestHistogramDefaultsAndPanics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_default_hist", "", nil) // defaults to DurationBuckets
	h.Observe(0.001)
	if h.Count() != 1 {
		t.Fatal("default-bucket histogram did not record")
	}
	mustPanic(t, "invalid name", func() { r.Counter("bad name", "") })
	mustPanic(t, "kind mismatch", func() { r.Gauge("test_default_hist", "") })
	mustPanic(t, "descending buckets", func() { r.Histogram("test_bad_buckets", "", []float64{2, 1}) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func BenchmarkCounterEnabled(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	r.SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_hist", "", DurationBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.01)
	}
}
