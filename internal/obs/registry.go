// Package obs is the repo's dependency-free observability layer: a
// concurrency-safe metrics registry exposed in Prometheus text format, a
// lightweight per-query span/trace recorder, and an HTTP admin mux serving
// /metrics, /healthz, /debug/pprof and /debug/vars.
//
// Everything is stdlib-only so the crypto primitives (paillier, dgk), the
// transport and the protocol engine can all register metrics without pulling
// external dependencies into the trust base.
//
// Privacy: instrumentation records *quantities* — operation counts, byte
// totals, durations, queue depths. It must never log plaintext votes,
// shares, blinding factors or key material; see docs/OBSERVABILITY.md.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, e.g. {Key: "step", Value: "secure-sum(2)"}.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates the registry's metric types.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing metric. A nil *Counter is a valid
// no-op, and a counter whose registry is disabled skips the atomic update,
// so instrumented hot paths stay cheap when observability is off.
type Counter struct {
	v  atomic.Int64
	on *atomic.Bool
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 || !c.on.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. Stored as float64 bits so Set
// and Add are lock-free.
type Gauge struct {
	bits atomic.Uint64
	on   *atomic.Bool
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil || !g.on.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Observations are
// lock-free: one atomic add on the owning bucket plus a CAS on the sum.
type Histogram struct {
	on      *atomic.Bool
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.on.Load() {
		return
	}
	// Buckets are few (tens); linear scan beats binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DurationBuckets covers protocol phase timings: 100µs up to 2 minutes in
// roughly 4x steps (seconds, as Prometheus convention dictates).
func DurationBuckets() []float64 {
	return []float64{0.0001, 0.0005, 0.002, 0.01, 0.05, 0.25, 1, 4, 15, 60, 120}
}

// SizeBuckets covers protocol message and step traffic sizes in bytes:
// 64 B up to 64 MB in 4x steps.
func SizeBuckets() []float64 {
	return []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216, 67108864}
}

// DepthBuckets covers small queue depths (mux backlogs, pool occupancy).
func DepthBuckets() []float64 {
	return []float64{0, 1, 2, 4, 8, 16, 32, 64}
}

// metric is one registered series: a name, an optional label set, and
// exactly one of the value types.
type metric struct {
	name   string
	help   string
	kind   metricKind
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics and renders them in Prometheus text format.
// Get-or-create accessors make registration idempotent, so packages can
// declare their metrics at init and tests can look the same series up by
// name. The zero value is not usable; use NewRegistry or the package Default.
type Registry struct {
	enabled atomic.Bool
	mu      sync.Mutex
	metrics map[string]*metric
}

// Default is the process-wide registry used by the instrumented packages.
var Default = NewRegistry()

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{metrics: make(map[string]*metric)}
	r.enabled.Store(true)
	return r
}

// SetEnabled toggles collection. While disabled, every Counter.Add,
// Gauge.Set and Histogram.Observe created from this registry is a cheap
// early return; already-recorded values remain readable.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether collection is on.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// seriesKey renders the unique identity of a series (name plus sorted
// labels) used as the registry map key.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// validName reports whether name is a legal Prometheus metric/label name.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register returns the series for (name, labels), creating it on first use.
// Registering an existing name with a different kind panics: that is a
// programming error, not a runtime condition.
func (r *Registry) register(name, help string, kind metricKind, labels []Label) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q on metric %q", l.Key, name))
		}
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := seriesKey(name, sorted)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind, labels: sorted}
	switch kind {
	case counterKind:
		m.c = &Counter{on: &r.enabled}
	case gaugeKind:
		m.g = &Gauge{on: &r.enabled}
	}
	r.metrics[key] = m
	return m
}

// Counter returns the counter for (name, labels), creating it on first use.
// help is recorded on first registration and ignored afterwards.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, counterKind, labels).c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, gaugeKind, labels).g
}

// Histogram returns the histogram for (name, labels), creating it on first
// use with the given bucket upper bounds (ascending; +Inf is implicit).
// Buckets are fixed at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	m := r.register(name, help, histogramKind, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.h == nil {
		if len(buckets) == 0 {
			buckets = DurationBuckets()
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
			}
		}
		m.h = &Histogram{
			on:     &r.enabled,
			bounds: append([]float64(nil), buckets...),
			counts: make([]atomic.Int64, len(buckets)+1),
		}
	}
	return m.h
}

// Point is one series value in a Snapshot.
type Point struct {
	Name   string
	Labels []Label
	Kind   string
	// Value is the counter value or gauge value; for histograms it is the
	// observation count (Sum carries the sum).
	Value float64
	Sum   float64
}

// Snapshot returns every registered series' current value, sorted by name
// then label set — deterministic across runs for golden tests.
func (r *Registry) Snapshot() []Point {
	r.mu.Lock()
	metrics := make([]*metric, 0, len(r.metrics))
	keys := make([]string, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		metrics = append(metrics, r.metrics[k])
	}
	r.mu.Unlock()

	out := make([]Point, 0, len(metrics))
	for _, m := range metrics {
		p := Point{Name: m.name, Labels: m.labels, Kind: m.kind.String()}
		switch m.kind {
		case counterKind:
			p.Value = float64(m.c.Value())
		case gaugeKind:
			p.Value = m.g.Value()
		case histogramKind:
			p.Value = float64(m.h.Count())
			p.Sum = m.h.Sum()
		}
		out = append(out, p)
	}
	return out
}

// CounterValue returns the value of a registered counter series, or 0 if it
// does not exist. Useful for tests and Engine.Stats.
func (r *Registry) CounterValue(name string, labels ...Label) int64 {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[seriesKey(name, sorted)]
	if !ok || m.kind != counterKind {
		return 0
	}
	return m.c.Value()
}

// WritePrometheus renders every series in the Prometheus text exposition
// format, grouped by metric family and sorted deterministically.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	byName := make(map[string][]*metric)
	names := make([]string, 0, len(r.metrics))
	for _, m := range r.metrics {
		if _, seen := byName[m.name]; !seen {
			names = append(names, m.name)
		}
		byName[m.name] = append(byName[m.name], m)
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		family := byName[name]
		sort.Slice(family, func(i, j int) bool {
			return seriesKey(family[i].name, family[i].labels) < seriesKey(family[j].name, family[j].labels)
		})
		if help := family[0].help; help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, strings.ReplaceAll(help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, family[0].kind)
		for _, m := range family {
			switch m.kind {
			case counterKind:
				fmt.Fprintf(&b, "%s %d\n", seriesKey(m.name, m.labels), m.c.Value())
			case gaugeKind:
				fmt.Fprintf(&b, "%s %s\n", seriesKey(m.name, m.labels), formatFloat(m.g.Value()))
			case histogramKind:
				writeHistogram(&b, m)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series with cumulative buckets.
func writeHistogram(b *strings.Builder, m *metric) {
	cum := int64(0)
	for i, bound := range m.h.bounds {
		cum += m.h.counts[i].Load()
		fmt.Fprintf(b, "%s %d\n", seriesKey(m.name+"_bucket", withLE(m.labels, formatFloat(bound))), cum)
	}
	cum += m.h.counts[len(m.h.bounds)].Load()
	fmt.Fprintf(b, "%s %d\n", seriesKey(m.name+"_bucket", withLE(m.labels, "+Inf")), cum)
	fmt.Fprintf(b, "%s %s\n", seriesKey(m.name+"_sum", m.labels), formatFloat(m.h.Sum()))
	fmt.Fprintf(b, "%s %d\n", seriesKey(m.name+"_count", m.labels), m.h.Count())
}

// withLE appends the le bucket label to a label set.
func withLE(labels []Label, le string) []Label {
	out := make([]Label, 0, len(labels)+1)
	out = append(out, labels...)
	return append(out, Label{Key: "le", Value: le})
}

// formatFloat renders a float the way Prometheus expects (no exponent for
// integral values in our ranges).
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
