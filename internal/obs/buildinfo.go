package obs

import (
	"runtime"
	"strconv"
)

// SetBuildInfo registers the privconsensus_build_info gauge on r (nil for
// Default): always 1, with the build and configuration identity carried as
// labels, the Prometheus idiom for joining identity onto other series.
func SetBuildInfo(r *Registry, argmax string, parallelism int) {
	if r == nil {
		r = Default
	}
	r.Gauge("privconsensus_build_info",
		"Always 1; labels carry the build and configuration identity.",
		L("goversion", runtime.Version()),
		L("argmax", argmax),
		L("parallelism", strconv.Itoa(parallelism))).Set(1)
}
