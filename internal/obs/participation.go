package obs

// Partial-participation metric families, shared by the deploy servers and
// the in-process engine. See docs/OBSERVABILITY.md § Metrics reference.

// Participants is the per-role gauge of how many users' submissions were
// aggregated into the most recently released query instance.
func Participants(role string) *Gauge {
	return Default.Gauge("privconsensus_participants",
		"Users aggregated into the most recently released query instance.",
		L("role", role))
}

// QuorumWaitSeconds observes how long the collector waited for user
// submissions before releasing the protocol (full participation, deadline
// expiry, or quorum release).
func QuorumWaitSeconds(role string) *Histogram {
	return Default.Histogram("privconsensus_quorum_wait_seconds",
		"Seconds spent waiting for user submissions before release.",
		DurationBuckets(), L("role", role))
}
