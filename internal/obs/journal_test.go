package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// journalLines reads a journal file's raw lines.
func journalLines(t *testing.T, path string) [][]byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
}

// TestJournalAppendAndVerify covers the happy path: events are stamped with
// role/trace/seq, chained, and the file verifies.
func TestJournalAppendAndVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path, JournalOptions{Role: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.BeginTrace("t-0000000000000001"); err != nil {
		t.Fatal(err)
	}
	// A second BeginTrace only restamps; no duplicate anchor.
	if err := j.BeginTrace("t-0000000000000001"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(Event{Type: EventRetry, Instance: i, Note: "reconnect"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	n, err := VerifyJournalFile(path)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if n != 4 {
		t.Fatalf("verified %d records, want 4 (1 anchor + 3 events)", n)
	}
	evs, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if evs[0].Type != EventTraceBegin || evs[0].Instance != -1 {
		t.Errorf("first record = %+v, want trace-begin anchor at instance -1", evs[0])
	}
	anchors := 0
	for i, ev := range evs {
		if ev.Type == EventTraceBegin {
			anchors++
		}
		if ev.Role != "s1" || ev.Trace != "t-0000000000000001" {
			t.Errorf("record %d: role=%q trace=%q, want stamped s1/t-…0001", i, ev.Role, ev.Trace)
		}
		if ev.Seq != uint64(i+1) {
			t.Errorf("record %d: seq=%d, want %d", i, ev.Seq, i+1)
		}
	}
	if anchors != 1 {
		t.Errorf("%d trace-begin anchors, want exactly 1", anchors)
	}
}

// TestJournalTornTailRecovery simulates a crash mid-append: the torn final
// line is tolerated by verify, dropped on reopen, and the chain continues
// from the last intact record.
func TestJournalTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path, JournalOptions{Role: "s2"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(Event{Type: EventFault, Instance: -1, Note: fmt.Sprintf("stall-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Crash artifact: half a record, no trailing newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":4,"t":12345,"type":"fa`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if n, err := VerifyJournalFile(path); err != nil || n != 3 {
		t.Fatalf("verify torn journal: n=%d err=%v, want 3 records and no error", n, err)
	}

	j2, err := OpenJournal(path, JournalOptions{Role: "s2"})
	if err != nil {
		t.Fatalf("reopen torn journal: %v", err)
	}
	if err := j2.Append(Event{Type: EventFault, Instance: -1, Note: "post-crash"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	n, err := VerifyJournalFile(path)
	if err != nil {
		t.Fatalf("verify after recovery: %v", err)
	}
	if n != 4 {
		t.Fatalf("verified %d records after recovery, want 4", n)
	}
	evs, _ := ReadJournalFile(path)
	if last := evs[len(evs)-1]; last.Seq != 4 || last.Note != "post-crash" {
		t.Errorf("post-recovery tail = %+v, want seq 4 continuing the chain", last)
	}
}

// TestJournalTamperDetected rewrites a mid-chain record's content and
// checks VerifyJournal names the damage; removing a record breaks the
// chain links too.
func TestJournalTamperDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path, JournalOptions{Role: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Append(Event{Type: EventRejection, Instance: -1, Note: fmt.Sprintf("reason-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	lines := journalLines(t, path)

	// Tamper 1: edit record 2's note in place (hash no longer matches).
	var ev Event
	if err := json.Unmarshal(lines[1], &ev); err != nil {
		t.Fatal(err)
	}
	ev.Note = "doctored"
	forged, _ := json.Marshal(ev)
	tampered := append([][]byte{}, lines...)
	tampered[1] = forged
	if _, err := VerifyJournal(bytes.NewReader(join(tampered))); err == nil ||
		!strings.Contains(err.Error(), "altered") {
		t.Errorf("content tamper: err = %v, want hash-mismatch report", err)
	}

	// Tamper 2: drop record 2 entirely (successor no longer chains).
	dropped := append(append([][]byte{}, lines[:1]...), lines[2:]...)
	if _, err := VerifyJournal(bytes.NewReader(join(dropped))); err == nil {
		t.Error("record removal went undetected")
	}

	// Tamper 3: a newline-terminated garbage line is NOT a tolerated torn
	// tail.
	garbled := append(append([][]byte{}, lines...), []byte("not json"))
	if _, err := VerifyJournal(bytes.NewReader(join(garbled))); err == nil {
		t.Error("terminated garbage line went undetected")
	}
}

func join(lines [][]byte) []byte {
	return append(bytes.Join(lines, []byte("\n")), '\n')
}

// TestJournalRotation drives the size-based rotation: the chain and
// sequence numbers continue into the fresh file, and the rotated pair
// verifies as one chain.
func TestJournalRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	// One record is ~200 bytes; 1200 forces exactly one rotation over 8
	// appends (a second rotation would drop the first segment — only the
	// latest <path>.1 is kept).
	j, err := OpenJournal(path, JournalOptions{Role: "s1", MaxBytes: 1200})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := j.Append(Event{Type: EventRetry, Instance: i, Note: "instance"}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	old, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatalf("rotation never happened: %v", err)
	}
	cur, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Each segment verifies on its own (the chain anchors at whatever Prev
	// the first record carries) ...
	if _, err := VerifyJournal(bytes.NewReader(old)); err != nil {
		t.Errorf("rotated segment: %v", err)
	}
	if _, err := VerifyJournal(bytes.NewReader(cur)); err != nil {
		t.Errorf("current segment: %v", err)
	}
	// ... and the concatenation verifies as one continuous chain of all 8
	// records.
	n, err := VerifyJournal(bytes.NewReader(append(old, cur...)))
	if err != nil {
		t.Fatalf("concatenated chain: %v", err)
	}
	if n != 8 {
		t.Fatalf("concatenated chain has %d records, want 8", n)
	}
}

// TestJournalAppendTrace journals a synthetic completed query and checks
// the span bytes written to disk equal the trace totals exactly.
func TestJournalAppendTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path, JournalOptions{Role: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer("s1-q0")
	tr.StartPhase("secure-sum(2)")
	tr.EndPhase("secure-sum(2)", nil)
	tr.StartPhase("argmax(5)")
	tr.RecordEvent(EventDelta, "delta=1 participants=2")
	tr.EndPhase("argmax(5)", nil)
	tr.SetPhaseIO("secure-sum(2)", 100, 50, 2, 2, 1)
	tr.SetPhaseIO("argmax(5)", 300, 250, 4, 4, 2)
	tr.Finish("consensus label=2", nil)
	qt := tr.Trace()
	if err := j.AppendTrace(0, 1, qt); err != nil {
		t.Fatal(err)
	}
	j.Close()

	if _, err := VerifyJournalFile(path); err != nil {
		t.Fatal(err)
	}
	evs, _ := ReadJournalFile(path)
	var spanTx, spanRx int64
	var spans, deltas, queries int
	for _, ev := range evs {
		switch ev.Type {
		case EventSpan:
			spans++
			spanTx += ev.BytesSent
			spanRx += ev.BytesReceived
			if ev.Query != "s1-q0" || ev.Instance != 0 || ev.Attempt != 1 {
				t.Errorf("span identity = %+v, want query s1-q0 instance 0 attempt 1", ev)
			}
			if ev.StartNs == 0 {
				t.Errorf("span %q has no start time for the Gantt", ev.Phase)
			}
		case EventDelta:
			deltas++
		case EventQuery:
			queries++
			wantTx, wantRx := qt.TotalBytes()
			if ev.BytesSent != wantTx || ev.BytesReceived != wantRx {
				t.Errorf("query totals tx=%d rx=%d, want %d/%d", ev.BytesSent, ev.BytesReceived, wantTx, wantRx)
			}
			if ev.Note != "consensus label=2" {
				t.Errorf("query note = %q", ev.Note)
			}
		}
	}
	if spans != 2 || deltas != 1 || queries != 1 {
		t.Fatalf("journaled %d spans, %d deltas, %d queries; want 2/1/1", spans, deltas, queries)
	}
	wantTx, wantRx := qt.TotalBytes()
	if spanTx != wantTx || spanRx != wantRx {
		t.Errorf("journaled span bytes tx=%d rx=%d differ from trace totals %d/%d (meter invariant broken on disk)",
			spanTx, spanRx, wantTx, wantRx)
	}
}

// TestTraceRing checks capacity, ordering and nil-safety of the
// /debug/traces ring buffer.
func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		r.Add(&QueryTrace{ID: fmt.Sprintf("q%d", i), Start: time.Unix(int64(i), 0)})
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
	got := r.Traces()
	if len(got) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(got))
	}
	for i, qt := range got {
		if want := fmt.Sprintf("q%d", i+2); qt.ID != want {
			t.Errorf("ring[%d] = %s, want %s (oldest-first of the last 3)", i, qt.ID, want)
		}
	}
	r.Add(nil) // nil traces are dropped, not stored
	if n := len(r.Traces()); n != 3 {
		t.Errorf("after Add(nil): %d traces, want 3", n)
	}
	var nilRing *TraceRing
	nilRing.Add(&QueryTrace{})
	if nilRing.Traces() != nil || nilRing.Total() != 0 {
		t.Error("nil ring is not a no-op")
	}
}
